/**
 * @file
 * Throughput tuning (paper Sec. 5.3): given two co-scheduled workloads,
 * sweep the priority pairs the kernel patch allows and report the one
 * that maximizes aggregate IPC — the paper's h264ref+mcf case study as
 * a reusable tool.
 *
 *   ./throughput_tuning --primary h264ref --secondary mcf
 */

#include <cstdio>
#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "exp/experiments.hh"
#include "fame/fame.hh"
#include "workloads/spec_proxy.hh"

int
main(int argc, char **argv)
{
    p5::Cli cli;
    cli.declare("primary", "h264ref",
                "first workload (h264ref, mcf, applu, equake)");
    cli.declare("secondary", "mcf", "second workload");
    cli.declare("maxdiff", "5", "largest priority difference to try");
    cli.parse(argc, argv);

    const auto prog_p = p5::makeSpecProxy(
        p5::specProxyFromName(cli.str("primary")));
    const auto prog_s = p5::makeSpecProxy(
        p5::specProxyFromName(cli.str("secondary")));

    p5::CoreParams core_params;
    p5::FameParams fame;

    p5::Table t("Priority sweep: " + cli.str("primary") + " + " +
                cli.str("secondary"));
    t.setColumns({"(PrioP,PrioS)", cli.str("primary") + " IPC",
                  cli.str("secondary") + " IPC", "total IPC",
                  "vs (4,4)"});

    const int maxdiff = static_cast<int>(cli.integer("maxdiff"));
    double base_total = 0.0;
    double best_total = 0.0;
    int best_diff = 0;

    for (int diff = -maxdiff; diff <= maxdiff; ++diff) {
        auto [pp, ps] = p5::prioPairForDiff(diff);
        p5::FameResult r =
            p5::runFame(core_params, &prog_p, &prog_s, pp, ps, fame);
        const double total = r.totalIpc();
        if (diff == 0)
            base_total = total;
        if (total > best_total) {
            best_total = total;
            best_diff = diff;
        }
        t.addRow({"(" + std::to_string(pp) + "," + std::to_string(ps) +
                      ")",
                  p5::Table::fmt(r.thread[0].avgIpc(), 3),
                  p5::Table::fmt(r.thread[1].avgIpc(), 3),
                  p5::Table::fmt(total, 3),
                  base_total > 0.0
                      ? p5::Table::fmtPercent(total / base_total - 1.0)
                      : "-"});
    }

    t.printAscii(std::cout);
    auto [bp, bs] = p5::prioPairForDiff(best_diff);
    std::printf("\nbest pair: (%d,%d), total IPC %.3f (%.1f%% over "
                "default priorities)\n",
                bp, bs, best_total,
                (best_total / base_total - 1.0) * 100.0);
    return 0;
}
