/**
 * @file
 * Transparent execution (paper Sec. 5.5): run a background job at
 * priority 1 under a foreground job and report the foreground's
 * slowdown versus single-thread mode plus the background's achieved
 * IPC — the data behind "can I soak up spare cycles for free?".
 *
 *   ./transparent_background --foreground ldint_mem --background cpu_int
 */

#include <cstdio>
#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "fame/fame.hh"
#include "ubench/ubench.hh"

int
main(int argc, char **argv)
{
    p5::Cli cli;
    cli.declare("foreground", "ldint_mem", "foreground micro-benchmark");
    cli.declare("background", "cpu_int", "background micro-benchmark");
    cli.parse(argc, argv);

    const auto fg =
        p5::makeUbench(p5::ubenchFromName(cli.str("foreground")));
    const auto bg =
        p5::makeUbench(p5::ubenchFromName(cli.str("background")));

    p5::CoreParams core_params;
    p5::FameParams fame;

    // Single-thread reference for the foreground.
    p5::FameResult st =
        p5::runFame(core_params, &fg, nullptr, 4, 0, fame);
    const double st_time = st.thread[0].avgExecTime();

    p5::Table t("Transparent execution: fg " + cli.str("foreground") +
                ", bg " + cli.str("background") + " at priority 1");
    t.setColumns({"fg priority", "fg exec time vs ST", "bg IPC"});

    for (int fg_prio : {6, 5, 4, 3, 2}) {
        p5::FameResult r =
            p5::runFame(core_params, &fg, &bg, fg_prio, 1, fame);
        t.addRow({std::to_string(fg_prio),
                  p5::Table::fmt(r.thread[0].avgExecTime() / st_time,
                                 3),
                  p5::Table::fmt(r.thread[1].avgIpc(), 3)});
    }
    t.printAscii(std::cout);

    std::printf("\nA ratio near 1.000 means the background is "
                "transparent to the foreground.\n");
    return 0;
}
