/**
 * @file
 * Rebalancing an unbalanced software pipeline with priorities (paper
 * Sec. 5.4.1, Table 4): an FFT producer feeds an LU consumer across an
 * iteration barrier; raising the long stage's priority shortens the
 * iteration until over-prioritization inverts the imbalance.
 *
 *   ./pipeline_rebalance --scale 0.5
 */

#include <cstdio>
#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "workloads/pipeline_app.hh"

int
main(int argc, char **argv)
{
    p5::Cli cli;
    cli.declare("scale", "1.0", "work multiplier for both stages");
    cli.declare("iterations", "6", "measured pipeline iterations");
    cli.parse(argc, argv);

    p5::CoreParams core_params;

    p5::Table t("FFT -> LU pipeline: iteration time under priorities");
    t.setColumns({"config", "FFT cycles", "LU cycles",
                  "iteration cycles", "vs single-thread"});

    p5::PipelineParams base;
    base.scale = cli.real("scale");
    base.iterations = static_cast<int>(cli.integer("iterations"));

    const p5::PipelineResult st =
        p5::PipelineApp(base).runSingleThread(core_params);
    t.addRow({"single-thread", p5::Table::fmt(st.fftCycles, 0),
              p5::Table::fmt(st.luCycles, 0),
              p5::Table::fmt(st.iterationCycles, 0), "1.000"});

    double best = st.iterationCycles;
    std::pair<int, int> best_pair{-1, -1};
    for (auto [pf, pl] : {std::pair{4, 4}, std::pair{5, 4},
                          std::pair{6, 4}, std::pair{6, 3}}) {
        p5::PipelineParams pp = base;
        pp.prioFft = pf;
        pp.prioLu = pl;
        p5::PipelineResult r = p5::PipelineApp(pp).runSmt(core_params);
        t.addRow({"SMT (" + std::to_string(pf) + "," +
                      std::to_string(pl) + ")",
                  p5::Table::fmt(r.fftCycles, 0),
                  p5::Table::fmt(r.luCycles, 0),
                  p5::Table::fmt(r.iterationCycles, 0),
                  p5::Table::fmt(r.iterationCycles / st.iterationCycles,
                                 3)});
        if (r.iterationCycles < best) {
            best = r.iterationCycles;
            best_pair = {pf, pl};
        }
    }
    t.printAscii(std::cout);

    if (best_pair.first > 0) {
        std::printf("\nbest configuration: (%d,%d), %.1f%% faster than "
                    "single-thread mode\n",
                    best_pair.first, best_pair.second,
                    (1.0 - best / st.iterationCycles) * 100.0);
    }
    return 0;
}
