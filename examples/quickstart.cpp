/**
 * @file
 * Quickstart: measure two micro-benchmarks co-scheduled on one SMT core
 * under a chosen software-controlled priority pair, FAME-style.
 *
 *   ./quickstart --pthread cpu_int --sthread ldint_mem --priop 6 --prios 2
 */

#include <cstdio>

#include "common/cli.hh"
#include "fame/fame.hh"
#include "ubench/ubench.hh"

int
main(int argc, char **argv)
{
    p5::Cli cli;
    cli.declare("pthread", "cpu_int", "primary thread micro-benchmark");
    cli.declare("sthread", "ldint_mem",
                "secondary micro-benchmark, or 'none' for ST mode");
    cli.declare("priop", "4", "primary thread priority (0-7)");
    cli.declare("prios", "4", "secondary thread priority (0-7)");
    cli.declare("reps", "10", "minimum FAME repetitions");
    cli.parse(argc, argv);

    const auto prog_p =
        p5::makeUbench(p5::ubenchFromName(cli.str("pthread")));
    const bool smt = cli.str("sthread") != "none";

    p5::CoreParams params;
    p5::FameParams fame;
    fame.minRepetitions =
        static_cast<std::uint64_t>(cli.integer("reps"));

    p5::FameResult res;
    if (smt) {
        const auto prog_s =
            p5::makeUbench(p5::ubenchFromName(cli.str("sthread")));
        res = p5::runFame(params, &prog_p, &prog_s,
                          static_cast<int>(cli.integer("priop")),
                          static_cast<int>(cli.integer("prios")), fame);
    } else {
        res = p5::runFame(params, &prog_p, nullptr,
                          static_cast<int>(cli.integer("priop")), 0,
                          fame);
    }

    std::printf("workload: %s (PThread)%s%s\n", cli.str("pthread").c_str(),
                smt ? " + " : " in ST mode",
                smt ? cli.str("sthread").c_str() : "");
    if (smt)
        std::printf("priorities: (%lld,%lld)\n",
                    static_cast<long long>(cli.integer("priop")),
                    static_cast<long long>(cli.integer("prios")));
    std::printf("simulated cycles: %llu (converged: %s)\n",
                static_cast<unsigned long long>(res.totalCycles),
                res.converged ? "yes" : "NO");
    for (int t = 0; t < p5::num_hw_threads; ++t) {
        const auto &m = res.thread[static_cast<size_t>(t)];
        if (!m.present)
            continue;
        std::printf(
            "thread %d: %llu reps, avg exec time %.0f cycles, IPC %.3f\n",
            t, static_cast<unsigned long long>(m.executions),
            m.avgExecTime(), m.avgIpc());
    }
    std::printf("total IPC: %.3f\n", res.totalIpc());
    return 0;
}
