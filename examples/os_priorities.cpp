/**
 * @file
 * The operating system's role (paper Sec. 4.3): demonstrates why the
 * stock Linux kernel makes priority experiments impossible — it resets
 * every thread to MEDIUM on each kernel entry — and what the paper's
 * kernel patch changes. Also shows the or-nop user-space interface and
 * the idle/spin-lock priority drops.
 */

#include <cstdio>
#include <iostream>

#include "common/cli.hh"
#include "common/table.hh"
#include "os/kernel.hh"
#include "ubench/ubench.hh"

namespace {

/** Run a prioritized pair under a kernel and report the achieved IPCs. */
void
demo(bool patched, p5::Table &t)
{
    const auto cpu = p5::makeUbench(p5::UbenchId::CpuInt);
    const auto mem = p5::makeUbench(p5::UbenchId::LdintMem);

    p5::CoreParams core_params;
    p5::SmtCore core(core_params);
    core.attachThread(0, &cpu, 4, p5::PrivilegeLevel::User);
    core.attachThread(1, &mem, 4, p5::PrivilegeLevel::User);

    p5::KernelParams kp;
    kp.patched = patched;
    kp.timerPeriod = 50'000; // frequent timer ticks
    p5::KernelSim kernel(&core, kp);

    // The experimenter asks for (6,2) through the /sys interface.
    bool p_ok = kernel.sysSetPriority(0, 6);
    bool s_ok = kernel.sysSetPriority(1, 2);

    kernel.run(400'000);

    t.addRow({patched ? "patched (paper Sec. 4.3)" : "stock 2.6.23",
              std::string(p_ok ? "yes" : "no (needs supervisor)"),
              std::string(s_ok ? "yes" : "yes (user level)"),
              "(" + std::to_string(core.priorityOf(0)) + "," +
                  std::to_string(core.priorityOf(1)) + ")",
              p5::Table::fmt(core.ipcOf(0), 3),
              std::to_string(kernel.priorityResets())});
}

} // namespace

int
main(int argc, char **argv)
{
    p5::Cli cli;
    cli.parse(argc, argv);

    p5::Table t("Setting priorities (6,2) under stock vs patched kernel");
    t.setColumns({"kernel", "prio 6 applied?", "prio 2 applied?",
                  "priorities after run", "cpu_int IPC",
                  "kernel priority resets"});
    demo(false, t);
    demo(true, t);
    t.printAscii(std::cout);

    std::printf(
        "\nThe stock kernel rejects priority 6 (supervisor-only) and "
        "resets priorities\nto MEDIUM at every interrupt; the patch "
        "exposes 1..6 and removes the resets,\nwhich is what makes the "
        "paper's characterization possible.\n");
    return 0;
}
