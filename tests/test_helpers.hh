/**
 * @file
 * Shared helpers for the core-level tests: tiny programs with known
 * shapes and a fast experiment configuration.
 */

#ifndef P5SIM_TESTS_TEST_HELPERS_HH
#define P5SIM_TESTS_TEST_HELPERS_HH

#include "check/check.hh"
#include "core/smt_core.hh"
#include "program/builder.hh"
#include "program/program.hh"

namespace p5::test {

/**
 * Arm the standard p5check invariant suite on @p core with violations
 * fatal, so any conservation or slot-conformance breach aborts the test
 * with a descriptive panic. A no-op beyond setFatal() in checked builds
 * (-DP5SIM_CHECK=ON), where every core is born with the suite armed.
 */
inline SmtCore &
withCheckers(SmtCore &core)
{
    check::installStandardCheckers(core);
    core.checks().setFatal(true);
    return core;
}

/** An endless stream of independent 1-cycle integer ops. */
inline SyntheticProgram
independentAlus(std::uint64_t iterations = 1000)
{
    ProgramBuilder b("indep_alu");
    b.beginPhase(iterations);
    for (RegIndex r = 0; r < 8; ++r)
        b.intAlu(r, 20); // all read r20: no chains
    return b.build();
}

/** A serial 1-cycle dependence chain (IPC ~1 in steady state). */
inline SyntheticProgram
serialChain(std::uint64_t iterations = 1000)
{
    ProgramBuilder b("serial_chain");
    b.beginPhase(iterations);
    for (int i = 0; i < 8; ++i)
        b.intAlu(0, 0); // r0 = f(r0): strict chain
    return b.build();
}

/** Pure nops (decode/commit bandwidth only). */
inline SyntheticProgram
nops(std::uint64_t iterations = 1000)
{
    ProgramBuilder b("nops");
    b.beginPhase(iterations);
    for (int i = 0; i < 10; ++i)
        b.nop();
    return b.build();
}

/** Loads that always miss to DRAM (distinct 2 MiB-spaced lines). */
inline SyntheticProgram
dramChase(std::uint64_t iterations = 100)
{
    ProgramBuilder b("dram_chase");
    // 2 MiB spacing lands every access in the same L2/L3 set family:
    // guaranteed misses everywhere with a tiny page set.
    int pat = b.memPattern(0, 2 * 1024 * 1024, 96 * 1024 * 1024);
    b.beginPhase(iterations);
    b.load(11, pat, 11); // self-chained
    b.intAlu(0, 11);
    b.nop();
    b.nop();
    return b.build();
}

/** A program with mispredicting branches (50% random). */
inline SyntheticProgram
randomBranches(std::uint64_t iterations = 500)
{
    ProgramBuilder b("random_branches");
    int dir = b.randomBranch(0.5, 42);
    b.beginPhase(iterations);
    b.intAlu(0, 1);
    b.branch(dir);
    b.intAlu(2, 3);
    b.intAlu(4, 5);
    return b.build();
}

/** A program that sets its own priority via or-nops. */
inline SyntheticProgram
prioNopProgram(int or_reg, std::uint64_t iterations = 10)
{
    ProgramBuilder b("prio_nop");
    b.beginPhase(iterations);
    b.prioNop(or_reg);
    for (int i = 0; i < 4; ++i)
        b.intAlu(0, 1);
    return b.build();
}

} // namespace p5::test

#endif // P5SIM_TESTS_TEST_HELPERS_HH
