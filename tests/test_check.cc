/**
 * @file
 * Tests of the p5check runtime-verification subsystem: failure records
 * and registry mechanics, the independently recomputed decode-slot
 * formula, conformance of the live core on every (PrioP, PrioS) pair,
 * and targeted corruption injections proving that each standard checker
 * detects its class of violation.
 *
 * The corruption tests drive a standalone collect-mode CheckRegistry by
 * hand (prime -> corrupt -> re-check) and never tick the core after
 * corrupting it, so they behave identically in -DP5SIM_CHECK=ON builds,
 * where the core's own registry is fatal.
 */

#include <gtest/gtest.h>

#include <memory>

#include "check/check.hh"
#include "check/checkers.hh"
#include "common/log.hh"
#include "core/smt_core.hh"
#include "isa/op_class.hh"
#include "test_helpers.hh"

namespace p5 {
namespace {

using check::CheckFailure;
using check::CheckRegistry;
using check::DecodeSlotChecker;

/** A core running two busy integer threads for @p cycles. */
std::unique_ptr<SmtCore>
busyCore(const SyntheticProgram &p, const SyntheticProgram &s,
         Cycle cycles)
{
    CoreParams params;
    auto core = std::make_unique<SmtCore>(params);
    core->attachThread(0, &p, 4);
    core->attachThread(1, &s, 4);
    core->run(cycles);
    return core;
}

// --- failure records and registry mechanics ---------------------------

TEST(CheckFailureTest, DescribeMentionsAllFields)
{
    CheckFailure f;
    f.cycle = 1234;
    f.tid = 1;
    f.checker = "gct";
    f.invariant = "capacity";
    f.expected = "<= 20 groups";
    f.actual = "21";
    const std::string msg = f.describe();
    EXPECT_NE(msg.find("1234"), std::string::npos) << msg;
    EXPECT_NE(msg.find("gct"), std::string::npos) << msg;
    EXPECT_NE(msg.find("capacity"), std::string::npos) << msg;
    EXPECT_NE(msg.find("<= 20 groups"), std::string::npos) << msg;
    EXPECT_NE(msg.find("21"), std::string::npos) << msg;
}

TEST(CheckRegistryTest, AddAndQueryCheckers)
{
    CheckRegistry reg;
    EXPECT_EQ(reg.numCheckers(), 0u);
    EXPECT_FALSE(reg.has("decode-slot"));
    reg.add(std::make_unique<DecodeSlotChecker>());
    EXPECT_EQ(reg.numCheckers(), 1u);
    EXPECT_TRUE(reg.has("decode-slot"));
    EXPECT_FALSE(reg.fatal());
}

TEST(CheckRegistryTest, InstallStandardCheckersIsIdempotent)
{
    CoreParams params;
    SmtCore core(params);
    check::installStandardCheckers(core);
    check::installStandardCheckers(core);
    EXPECT_EQ(core.checks().numCheckers(), 5u);
    for (const char *name : {"decode-slot", "gct", "flow", "mem", "ipc"})
        EXPECT_TRUE(core.checks().has(name)) << name;
}

TEST(CheckRegistryTest, HookRunsEveryTickOnceCreated)
{
#ifndef P5SIM_CHECK
    // Default builds only grow a registry when someone asks for one.
    {
        CoreParams params;
        SmtCore core(params);
        EXPECT_FALSE(core.hasChecks());
    }
#endif
    {
        // Every cycle reaches the registry: ticked cycles through
        // onCycle(), fast-forwarded idle gaps through onSkip().
        CoreParams params;
        SmtCore core(params);
        CheckRegistry &reg = core.checks();
        EXPECT_TRUE(core.hasChecks());
        core.run(50);
        EXPECT_EQ(reg.cyclesChecked() + reg.cyclesSkipped(), 50u);
    }
    {
        // Without fast-forward every cycle is a checked tick.
        CoreParams params;
        params.fastForward = false;
        SmtCore core(params);
        CheckRegistry &reg = core.checks();
        const std::uint64_t before = reg.cyclesChecked();
        core.run(50);
        EXPECT_EQ(reg.cyclesChecked(), before + 50);
        EXPECT_EQ(reg.cyclesSkipped(), 0u);
    }
}

TEST(CheckRegistryTest, CollectModeCapsStoredFailures)
{
    CheckRegistry reg;
    auto checker = std::make_unique<DecodeSlotChecker>();
    auto *slot = checker.get();
    reg.add(std::move(checker));

    // An idle-pair observation with decode activity violates
    // slot-activity-when-idle on every call.
    DecodeSlotChecker::Observation obs;
    obs.prioP = 0;
    obs.prioS = 0;
    obs.decoded[0] = 1;
    while (reg.failureCount() <= CheckRegistry::max_stored_failures)
        slot->check(obs);

    EXPECT_EQ(reg.failures().size(), CheckRegistry::max_stored_failures);
    EXPECT_GT(reg.failureCount(), CheckRegistry::max_stored_failures);

    reg.clearFailures();
    EXPECT_TRUE(reg.failures().empty());
    EXPECT_EQ(reg.failureCount(), 0u);
}

TEST(CheckRegistryTest, FailuresAreCountedByTheLogLayer)
{
    const std::uint64_t before = checkFailCount();
    CheckRegistry reg;
    auto checker = std::make_unique<DecodeSlotChecker>();
    auto *slot = checker.get();
    reg.add(std::move(checker));
    DecodeSlotChecker::Observation obs;
    obs.prioP = 0;
    obs.prioS = 0;
    obs.decoded[1] = 3;
    slot->check(obs);
    EXPECT_GT(checkFailCount(), before);
}

// --- the independent decode-slot formula ------------------------------

TEST(DecodeSlotFormulaTest, UnequalPairGivesRMinusOneToOne)
{
    // (6,2): |diff| = 4, R = 32 -> thread 0 owns 31 slots, thread 1 one
    // minority slot of minoritySlotWidth.
    int owned[2] = {0, 0};
    for (Cycle c = 0; c < 32; ++c) {
        auto g = DecodeSlotChecker::expectedGrant(6, 2, c, 5, 2);
        ASSERT_GE(g.owner, 0);
        ++owned[g.owner];
        EXPECT_EQ(g.maxWidth, g.owner == 0 ? 5 : 2);
    }
    EXPECT_EQ(owned[0], 31);
    EXPECT_EQ(owned[1], 1);
}

TEST(DecodeSlotFormulaTest, MirroredPairFavorsTheSecondary)
{
    int owned[2] = {0, 0};
    for (Cycle c = 0; c < 8; ++c) { // (3,5): R = 8
        auto g = DecodeSlotChecker::expectedGrant(3, 5, c, 5, 2);
        ASSERT_GE(g.owner, 0);
        ++owned[g.owner];
    }
    EXPECT_EQ(owned[0], 1);
    EXPECT_EQ(owned[1], 7);
}

TEST(DecodeSlotFormulaTest, EqualPrioritiesAlternateAtFullWidth)
{
    for (Cycle c = 0; c < 8; ++c) {
        auto g = DecodeSlotChecker::expectedGrant(4, 4, c, 5, 2);
        EXPECT_EQ(g.owner, static_cast<ThreadId>(c % 2));
        EXPECT_EQ(g.maxWidth, 5);
    }
}

TEST(DecodeSlotFormulaTest, SpecialPriorities)
{
    // Both off: nobody decodes.
    EXPECT_LT(DecodeSlotChecker::expectedGrant(0, 0, 7, 5, 2).owner, 0);

    // Priority 7 (or a shut-off sibling) is ST mode, every cycle.
    for (Cycle c = 0; c < 4; ++c) {
        EXPECT_EQ(DecodeSlotChecker::expectedGrant(7, 3, c, 5, 2).owner, 0);
        EXPECT_EQ(DecodeSlotChecker::expectedGrant(4, 0, c, 5, 2).owner, 0);
        EXPECT_EQ(DecodeSlotChecker::expectedGrant(2, 7, c, 5, 2).owner, 1);
        EXPECT_EQ(DecodeSlotChecker::expectedGrant(0, 5, c, 5, 2).owner, 1);
    }

    // Low-power (1,1): one single-instruction slot per 32 cycles,
    // alternating owner; idle otherwise.
    int grants = 0;
    for (Cycle c = 0; c < 64; ++c) {
        auto g = DecodeSlotChecker::expectedGrant(1, 1, c, 5, 2);
        if (g.owner >= 0) {
            ++grants;
            EXPECT_EQ(g.maxWidth, 1);
        }
    }
    EXPECT_EQ(grants, 2);
    EXPECT_NE(DecodeSlotChecker::expectedGrant(1, 1, 0, 5, 2).owner,
              DecodeSlotChecker::expectedGrant(1, 1, 32, 5, 2).owner);
}

// --- live-core conformance over every priority pair -------------------

/** All 36 Dual-mode pairs, 10k cycles each, full suite, zero failures. */
class SlotConformanceTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SlotConformanceTest, StandardCheckersStaySilent)
{
    const auto [prio_p, prio_s] = GetParam();
    CoreParams params;
    auto p = test::nops(100000);
    auto s = test::nops(100000);
    SmtCore core(params);
    check::installStandardCheckers(core);
    core.checks().setFatal(false);
    core.attachThread(0, &p, prio_p);
    core.attachThread(1, &s, prio_s);
    core.setPriorityPair(prio_p, prio_s);
    core.run(10000);
    EXPECT_EQ(core.checks().failureCount(), 0u)
        << core.checks().failures().front().describe();
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, SlotConformanceTest,
    ::testing::Combine(::testing::Range(1, 7), ::testing::Range(1, 7)),
    [](const auto &info) {
        return "P" + std::to_string(std::get<0>(info.param)) + "S" +
               std::to_string(std::get<1>(info.param));
    });

TEST(SlotConformanceExtraTest, SpecialModesStaySilent)
{
    // ST mode via priority 7, a shut-off sibling, and a mixed workload.
    struct Case
    {
        int prioP, prioS;
    };
    for (const Case c : {Case{7, 2}, Case{2, 7}, Case{6, 1}}) {
        CoreParams params;
        auto p = test::independentAlus(100000);
        auto s = test::serialChain(100000);
        SmtCore core(params);
        check::installStandardCheckers(core);
        core.checks().setFatal(false);
        core.attachThread(0, &p, c.prioP);
        core.attachThread(1, &s, c.prioS);
        core.run(5000);
        EXPECT_EQ(core.checks().failureCount(), 0u)
            << "(" << c.prioP << "," << c.prioS << "): "
            << core.checks().failures().front().describe();
    }
}

TEST(SlotConformanceExtraTest, MemoryBoundWorkloadStaysSilent)
{
    CoreParams params;
    auto p = test::dramChase(100000);
    auto s = test::randomBranches(100000);
    SmtCore core(params);
    check::installStandardCheckers(core);
    core.checks().setFatal(false);
    core.attachThread(0, &p, 5);
    core.attachThread(1, &s, 3);
    core.run(8000);
    EXPECT_EQ(core.checks().failureCount(), 0u)
        << core.checks().failures().front().describe();
}

// --- corruption injection: every checker must catch its violation -----

/**
 * Prime @p reg on @p core (baseline for the delta checkers), assert it
 * is silent on intact state, and return the cycle to re-check at.
 */
Cycle
primeSilent(CheckRegistry &reg, const SmtCore &core)
{
    reg.onCycle(core, core.cycle());
    EXPECT_EQ(reg.failureCount(), 0u);
    return core.cycle() + 1;
}

TEST(CheckCorruptionTest, GctCheckerCatchesLostGroup)
{
    auto p = test::independentAlus(100000);
    auto s = test::independentAlus(100000);
    auto core = busyCore(p, s, 200);
    while (core->gct().empty(0))
        core->tick();

    CheckRegistry reg;
    reg.add(std::make_unique<check::GctChecker>());
    const Cycle next = primeSilent(reg, *core);

    // Retire a group behind the core's back: the GCT no longer covers
    // the in-flight window.
    core->gct().popOldest(0);

    reg.onCycle(*core, next);
    ASSERT_GT(reg.failureCount(), 0u);
    EXPECT_EQ(reg.failures().front().checker, "gct");
}

TEST(CheckCorruptionTest, FlowCheckerCatchesForgedReadyEntry)
{
    auto p = test::independentAlus(100000);
    auto s = test::independentAlus(100000);
    auto core = busyCore(p, s, 200);

    // Find a window entry that is legitimately *not* in the ready
    // queues and forge a queue reference to it.
    const InFlight *victim = nullptr;
    for (Cycle guard = 0; guard < 1000 && !victim; ++guard) {
        for (const InFlight &e : core->thread(0).window)
            if (!e.inReadyQueue) {
                victim = &e;
                break;
            }
        if (!victim)
            core->tick();
    }
    ASSERT_NE(victim, nullptr);

    CheckRegistry reg;
    reg.add(std::make_unique<check::FlowChecker>());
    const Cycle next = primeSilent(reg, *core);

    core->readyQueue().push(FuClass::FX,
                            {victim->stamp, 0, victim->di.seq,
                             victim->epoch});

    reg.onCycle(*core, next);
    ASSERT_GT(reg.failureCount(), 0u);
    EXPECT_EQ(reg.failures().front().checker, "flow");
}

TEST(CheckCorruptionTest, MemCheckerCatchesPhantomFills)
{
    auto p = test::nops(100000);
    auto s = test::nops(100000);
    auto core = busyCore(p, s, 200);

    CheckRegistry reg;
    reg.add(std::make_unique<check::MemChecker>());
    const Cycle next = primeSilent(reg, *core);

    // Fill L1 lines that no miss ever requested.
    core->hierarchy().l1d().insert(0x10000);
    core->hierarchy().l1d().insert(0x20000);

    reg.onCycle(*core, next);
    ASSERT_GT(reg.failureCount(), 0u);
    EXPECT_EQ(reg.failures().front().checker, "mem");
}

TEST(CheckCorruptionTest, IpcCheckerCatchesCommitMiscount)
{
    auto p = test::independentAlus(100000);
    auto s = test::independentAlus(100000);
    auto core = busyCore(p, s, 200);

    CheckRegistry reg;
    reg.add(std::make_unique<check::IpcChecker>());
    const Cycle next = primeSilent(reg, *core);

    // Bump the architectural commit count without the stats counter.
    core->thread(0).committed += 3;

    reg.onCycle(*core, next);
    ASSERT_GT(reg.failureCount(), 0u);
    EXPECT_EQ(reg.failures().front().checker, "ipc");
}

TEST(CheckCorruptionTest, DecodeSlotCheckerCatchesSlotTheft)
{
    CheckRegistry reg;
    auto checker = std::make_unique<DecodeSlotChecker>();
    auto *slot = checker.get();
    reg.add(std::move(checker));

    // Cycle 0 of pair (6,2) belongs to thread 0; hand the sibling a
    // decode anyway.
    const auto expect = DecodeSlotChecker::expectedGrant(6, 2, 0, 5, 2);
    ASSERT_EQ(expect.owner, 0);
    DecodeSlotChecker::Observation obs;
    obs.prioP = 6;
    obs.prioS = 2;
    obs.granted[0] = 1;
    obs.decoded[0] = 1;
    obs.decoded[1] = 2;
    slot->check(obs);

    ASSERT_GT(reg.failureCount(), 0u);
    EXPECT_EQ(reg.failures().front().checker, "decode-slot");
    EXPECT_EQ(reg.failures().front().invariant, "sibling-decode");
}

TEST(CheckCorruptionTest, DecodeSlotCheckerCatchesOverwideDecode)
{
    CheckRegistry reg;
    auto checker = std::make_unique<DecodeSlotChecker>();
    auto *slot = checker.get();
    reg.add(std::move(checker));

    DecodeSlotChecker::Observation obs;
    obs.prioP = 4;
    obs.prioS = 2; // R = 8; cycle 0 -> thread 0 at full width
    obs.granted[0] = 1;
    obs.decoded[0] = 9; // wider than decodeWidth and groupSize
    slot->check(obs);

    ASSERT_GT(reg.failureCount(), 0u);
    EXPECT_EQ(reg.failures().front().invariant, "decode-width");
}

TEST(CheckDeathTest, FatalModePanicsOnViolation)
{
    auto p = test::independentAlus(100000);
    auto s = test::independentAlus(100000);
    auto core = busyCore(p, s, 200);

    CheckRegistry reg(/*fatal=*/true);
    reg.add(std::make_unique<check::IpcChecker>());
    reg.onCycle(*core, core->cycle()); // prime; intact state is silent

    core->thread(0).committed += 3;
    EXPECT_DEATH(reg.onCycle(*core, core->cycle() + 1),
                 "p5check violation");
}

} // namespace
} // namespace p5
