/**
 * @file
 * Cross-configuration property tests: core invariants that must hold
 * for every sensible parameterization, exercised over a grid of
 * geometries and workload mixes.
 */

#include <gtest/gtest.h>

#include "core/smt_core.hh"
#include "test_helpers.hh"
#include "ubench/ubench.hh"

namespace p5 {
namespace {

struct GridParam
{
    int decodeWidth;
    int gctGroups;
    int lmqEntries;
    bool balancer;
};

class CoreGridTest : public ::testing::TestWithParam<GridParam>
{
  protected:
    CoreParams
    makeParams() const
    {
        CoreParams p;
        const GridParam &g = GetParam();
        p.decodeWidth = g.decodeWidth;
        p.groupSize = g.decodeWidth;
        p.minoritySlotWidth = std::min(2, g.decodeWidth);
        p.gctGroups = g.gctGroups;
        p.lmqEntries = g.lmqEntries;
        p.balancer.enabled = g.balancer;
        p.balancer.lmqThreshold =
            std::min(p.balancer.lmqThreshold, g.lmqEntries);
        return p;
    }
};

TEST_P(CoreGridTest, MixedPairRunsSanely)
{
    CoreParams params = makeParams();
    auto p = test::randomBranches(200);
    auto s = test::dramChase(200);
    SmtCore core(params);
    test::withCheckers(core);
    core.attachThread(0, &p);
    core.attachThread(1, &s);
    core.run(30000);

    // Forward progress on both threads.
    EXPECT_GT(core.committedOf(0), 0u);
    EXPECT_GT(core.committedOf(1), 0u);

    // IPC can never exceed the decode width.
    EXPECT_LE(core.totalIpc(),
              static_cast<double>(params.decodeWidth));

    // Executions accounting is exact for in-order commit.
    EXPECT_EQ(core.executionsOf(0),
              core.committedOf(0) / p.instrsPerExecution());
    EXPECT_EQ(core.executionsOf(1),
              core.committedOf(1) / s.instrsPerExecution());
}

TEST_P(CoreGridTest, DeterministicUnderConfig)
{
    CoreParams params = makeParams();
    auto p = test::randomBranches(200);
    auto s = test::dramChase(200);
    std::uint64_t committed[2][2];
    for (int run = 0; run < 2; ++run) {
        SmtCore core(params);
        test::withCheckers(core);
        core.attachThread(0, &p);
        core.attachThread(1, &s);
        core.run(20000);
        committed[run][0] = core.committedOf(0);
        committed[run][1] = core.committedOf(1);
    }
    EXPECT_EQ(committed[0][0], committed[1][0]);
    EXPECT_EQ(committed[0][1], committed[1][1]);
}

TEST_P(CoreGridTest, PriorityOrderingHolds)
{
    CoreParams params = makeParams();
    auto p = test::nops(200);
    auto s = test::nops(200);

    double ipc_low, ipc_eq, ipc_high;
    {
        SmtCore core(params);
        test::withCheckers(core);
        core.attachThread(0, &p, 2);
        core.attachThread(1, &s, 6);
        core.run(20000);
        ipc_low = core.ipcOf(0);
    }
    {
        SmtCore core(params);
        test::withCheckers(core);
        core.attachThread(0, &p, 4);
        core.attachThread(1, &s, 4);
        core.run(20000);
        ipc_eq = core.ipcOf(0);
    }
    {
        SmtCore core(params);
        test::withCheckers(core);
        core.attachThread(0, &p, 6);
        core.attachThread(1, &s, 2);
        core.run(20000);
        ipc_high = core.ipcOf(0);
    }
    EXPECT_LT(ipc_low, ipc_eq);
    EXPECT_LT(ipc_eq, ipc_high);
}

TEST_P(CoreGridTest, SquashStormLeavesNoResidue)
{
    CoreParams params = makeParams();
    auto p = test::randomBranches(100);
    SmtCore core(params);
    test::withCheckers(core);
    core.attachThread(0, &p);
    core.run(25000);
    const std::uint64_t mispredicts =
        core.thread(0).mispredictsCtr.value();
    EXPECT_GT(mispredicts, 50u);

    // After a run full of squashes, detach and re-attach: the machine
    // must be reusable and behave like new.
    core.detachThread(0);
    auto q = test::serialChain(100);
    core.attachThread(0, &q);
    const std::uint64_t before = core.committedOf(0);
    core.run(5000);
    EXPECT_EQ(before, 0u);
    EXPECT_NEAR(static_cast<double>(core.committedOf(0)) / 5000.0, 1.0,
                0.2);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CoreGridTest,
    ::testing::Values(GridParam{5, 20, 8, true},
                      GridParam{5, 20, 8, false},
                      GridParam{4, 12, 4, true},
                      GridParam{2, 8, 2, true},
                      GridParam{8, 32, 16, true},
                      GridParam{5, 6, 1, true},
                      GridParam{1, 4, 2, true}),
    [](const ::testing::TestParamInfo<GridParam> &info) {
        const GridParam &g = info.param;
        return "w" + std::to_string(g.decodeWidth) + "g" +
               std::to_string(g.gctGroups) + "q" +
               std::to_string(g.lmqEntries) +
               (g.balancer ? "bal" : "nobal");
    });

/** Slot-allocator conservation: every cycle has at most one owner and
 *  active threads get their exact shares over any full window. */
class SlotConservationTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(SlotConservationTest, SharesSumToOne)
{
    auto [p, s] = GetParam();
    DecodeSlotAllocator a(5, 2);
    a.setPriorities(p, s);
    if (a.mode() != SlotMode::Dual)
        GTEST_SKIP();
    const int window = a.slotWindow();
    int counts[2] = {0, 0};
    for (Cycle c = 0; c < static_cast<Cycle>(window) * 4; ++c) {
        SlotGrant g = a.grantAt(c);
        ASSERT_GE(g.owner, 0);
        ASSERT_LE(g.owner, 1);
        ASSERT_GT(g.maxWidth, 0);
        ++counts[g.owner];
    }
    EXPECT_EQ(counts[0] + counts[1], window * 4);
    EXPECT_EQ(counts[0], static_cast<int>(a.primaryShare() * window * 4 +
                                          0.5));
}

INSTANTIATE_TEST_SUITE_P(AllSupervisorPairs, SlotConservationTest,
                         ::testing::Combine(::testing::Range(2, 7),
                                            ::testing::Range(2, 7)));

/** The or-nop path composes with every user-settable level. */
class OrNopLevelTest : public ::testing::TestWithParam<int>
{
};

TEST_P(OrNopLevelTest, UserLevelsApplySupervisorsDoNot)
{
    const int level = GetParam();
    CoreParams params;
    SmtCore core(params);
    test::withCheckers(core);
    auto prog = test::prioNopProgram(orNopRegister(level));
    core.attachThread(0, &prog, 4, PrivilegeLevel::User);
    core.run(300);
    if (level >= 2 && level <= 4)
        EXPECT_EQ(core.priorityOf(0), level);
    else
        EXPECT_EQ(core.priorityOf(0), 4);
}

INSTANTIATE_TEST_SUITE_P(Levels, OrNopLevelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

} // namespace
} // namespace p5
