/**
 * @file
 * Single-thread tests of the SMT core: correctness of decode, commit,
 * dependence tracking, branch recovery, priority nops, determinism.
 */

#include <gtest/gtest.h>

#include "core/smt_core.hh"
#include "test_helpers.hh"

namespace p5 {
namespace {

TEST(CoreBasic, FreshCoreIsIdle)
{
    CoreParams params;
    SmtCore core(params);
    core.run(100);
    EXPECT_EQ(core.committedOf(0), 0u);
    EXPECT_EQ(core.committedOf(1), 0u);
    EXPECT_EQ(core.cycle(), 100u);
}

TEST(CoreBasic, SingleThreadIsStMode)
{
    CoreParams params;
    SmtCore core(params);
    auto prog = test::nops();
    core.attachThread(0, &prog);
    EXPECT_EQ(core.arbiter().allocator().mode(), SlotMode::SingleP);
    EXPECT_EQ(core.priorityOf(0), default_priority);
    EXPECT_EQ(core.priorityOf(1), 0);
}

TEST(CoreBasic, NopsCommitAtDecodeBandwidth)
{
    CoreParams params;
    SmtCore core(params);
    auto prog = test::nops();
    core.attachThread(0, &prog);
    core.run(1000);
    // 5-wide decode, groups of 5, one group committed per cycle: the
    // steady-state IPC must be close to 5.
    EXPECT_GT(core.ipcOf(0), 4.0);
}

TEST(CoreBasic, SerialChainRunsAtOneIpc)
{
    CoreParams params;
    SmtCore core(params);
    auto prog = test::serialChain();
    core.attachThread(0, &prog);
    core.run(2000);
    EXPECT_NEAR(core.ipcOf(0), 1.0, 0.1);
}

TEST(CoreBasic, IndependentAlusBoundByFxUnits)
{
    CoreParams params;
    SmtCore core(params);
    auto prog = test::independentAlus();
    core.attachThread(0, &prog);
    core.run(2000);
    // 2 FX units: IPC ~2 despite 5-wide decode.
    EXPECT_NEAR(core.ipcOf(0), 2.0, 0.2);
}

TEST(CoreBasic, CommitIsInOrderAndExact)
{
    CoreParams params;
    SmtCore core(params);
    auto prog = test::serialChain(7); // 56 instrs per execution
    core.attachThread(0, &prog);
    EXPECT_TRUE(core.runUntilExecutions(0, 3, 100000));
    EXPECT_GE(core.committedOf(0), 3u * 56u);
    EXPECT_EQ(core.executionsOf(0), core.committedOf(0) / 56);
}

TEST(CoreBasic, DramChaseIsSlow)
{
    CoreParams params;
    SmtCore core(params);
    auto prog = test::dramChase();
    core.attachThread(0, &prog);
    core.run(50000);
    // Self-chained DRAM loads: ~4 instructions per ~230+ cycles.
    EXPECT_LT(core.ipcOf(0), 0.05);
    EXPECT_GT(core.committedOf(0), 0u);
}

TEST(CoreBasic, MispredictsRecoverCorrectly)
{
    CoreParams params;
    SmtCore core(params);
    auto prog = test::randomBranches();
    core.attachThread(0, &prog);
    core.run(20000);
    // Squashes happened but committed count still tracks the stream in
    // order: executions = committed / instrsPerExecution is exact.
    EXPECT_GT(core.thread(0).mispredictsCtr.value(), 10u);
    EXPECT_GT(core.thread(0).squashedCtr.value(), 0u);
    EXPECT_EQ(core.executionsOf(0),
              core.committedOf(0) / prog.instrsPerExecution());
    EXPECT_GT(core.committedOf(0), 0u);
}

TEST(CoreBasic, MispredictPenaltyReducesIpc)
{
    CoreParams params;
    SmtCore fast_core(params);
    auto predictable = [] {
        ProgramBuilder b("pred");
        int dir = b.neverTaken();
        b.beginPhase(500);
        b.intAlu(0, 1);
        b.branch(dir);
        b.intAlu(2, 3);
        b.intAlu(4, 5);
        return b.build();
    }();
    auto random = test::randomBranches();
    fast_core.attachThread(0, &predictable);
    fast_core.run(20000);

    SmtCore slow_core(params);
    slow_core.attachThread(0, &random);
    slow_core.run(20000);

    EXPECT_GT(fast_core.ipcOf(0), 1.5 * slow_core.ipcOf(0));
}

TEST(CoreBasic, DeterministicAcrossRuns)
{
    CoreParams params;
    auto prog = test::randomBranches();
    SmtCore a(params);
    SmtCore b(params);
    a.attachThread(0, &prog);
    b.attachThread(0, &prog);
    a.run(10000);
    b.run(10000);
    EXPECT_EQ(a.committedOf(0), b.committedOf(0));
    EXPECT_EQ(a.thread(0).mispredictsCtr.value(),
              b.thread(0).mispredictsCtr.value());
}

TEST(CoreBasic, PrioNopAppliedWithUserPrivilege)
{
    CoreParams params;
    SmtCore core(params);
    // "or 1,1,1" requests priority 2: user software may do that.
    auto prog = test::prioNopProgram(orNopRegister(2));
    core.attachThread(0, &prog, 4, PrivilegeLevel::User);
    core.run(200);
    EXPECT_EQ(core.priorityOf(0), 2);
    EXPECT_GT(core.thread(0).prioNopsApplied.value(), 0u);
}

TEST(CoreBasic, PrioNopIgnoredWithoutPrivilege)
{
    CoreParams params;
    SmtCore core(params);
    // "or 3,3,3" requests priority 6: supervisor-only, user nop.
    auto prog = test::prioNopProgram(orNopRegister(6));
    core.attachThread(0, &prog, 4, PrivilegeLevel::User);
    core.run(200);
    EXPECT_EQ(core.priorityOf(0), 4);
    EXPECT_GT(core.thread(0).prioNopsIgnored.value(), 0u);
}

TEST(CoreBasic, PrioNopAppliedWithSupervisor)
{
    CoreParams params;
    SmtCore core(params);
    auto prog = test::prioNopProgram(orNopRegister(6));
    core.attachThread(0, &prog, 4, PrivilegeLevel::Supervisor);
    core.run(200);
    EXPECT_EQ(core.priorityOf(0), 6);
}

TEST(CoreBasic, PrioNopListenerFires)
{
    CoreParams params;
    SmtCore core(params);
    auto prog = test::prioNopProgram(orNopRegister(3));
    core.attachThread(0, &prog, 4, PrivilegeLevel::User);
    int calls = 0;
    int seen_level = -1;
    core.setPrioNopListener([&](ThreadId, int level, bool applied) {
        ++calls;
        seen_level = level;
        EXPECT_TRUE(applied);
    });
    core.run(200);
    EXPECT_GT(calls, 0);
    EXPECT_EQ(seen_level, 3);
}

TEST(CoreBasic, RequestPriorityChecksPrivilege)
{
    CoreParams params;
    SmtCore core(params);
    auto prog = test::nops();
    core.attachThread(0, &prog);
    EXPECT_FALSE(core.requestPriority(0, 7, PrivilegeLevel::Supervisor));
    EXPECT_TRUE(core.requestPriority(0, 7, PrivilegeLevel::Hypervisor));
    EXPECT_EQ(core.priorityOf(0), 7);
    EXPECT_FALSE(core.requestPriority(0, 9, PrivilegeLevel::Hypervisor));
}

TEST(CoreBasic, DetachShutsThreadOff)
{
    CoreParams params;
    SmtCore core(params);
    auto prog = test::nops();
    core.attachThread(0, &prog);
    core.run(100);
    std::uint64_t committed = core.committedOf(0);
    EXPECT_GT(committed, 0u);
    core.detachThread(0);
    EXPECT_EQ(core.priorityOf(0), 0);
    core.run(100);
    EXPECT_FALSE(core.threadAttached(0));
}

TEST(CoreBasic, RunUntilExecutionsHonorsCap)
{
    CoreParams params;
    SmtCore core(params);
    auto prog = test::dramChase(1000);
    core.attachThread(0, &prog);
    EXPECT_FALSE(core.runUntilExecutions(0, 1000, 1000));
    EXPECT_LE(core.cycle(), 1100u);
}

TEST(CoreBasic, StatsExposeCoreCounters)
{
    CoreParams params;
    SmtCore core(params);
    auto prog = test::nops();
    core.attachThread(0, &prog);
    core.run(100);
    EXPECT_TRUE(core.stats().has("thread0.committed"));
    EXPECT_GT(core.stats().value("thread0.committed"), 0.0);
    EXPECT_TRUE(core.stats().has("gct.allocated"));
}

TEST(CoreBasic, LowPowerModeDecodesOnePerThirtyTwo)
{
    CoreParams params;
    SmtCore core(params);
    auto p0 = test::nops();
    auto p1 = test::nops();
    core.attachThread(0, &p0, 1);
    core.attachThread(1, &p1, 1);
    EXPECT_EQ(core.arbiter().allocator().mode(), SlotMode::LowPower);
    core.run(3200);
    const std::uint64_t total = core.committedOf(0) + core.committedOf(1);
    EXPECT_NEAR(static_cast<double>(total), 100.0, 15.0);
}

} // namespace
} // namespace p5
