/**
 * @file
 * End-to-end assertions of the paper's headline claims, at reduced
 * scale. These are the "shape" checks DESIGN.md promises.
 */

#include <gtest/gtest.h>

#include "fame/fame.hh"
#include "ubench/ubench.hh"

namespace p5 {
namespace {

struct Pair
{
    double ipcP;
    double ipcS;
    double execTimeP;

    double total() const { return ipcP + ipcS; }
};

Pair
run(UbenchId p, UbenchId s, int prio_p, int prio_s)
{
    static FameParams fame = [] {
        FameParams f;
        f.minRepetitions = 5;
        f.warmupRepetitions = 1;
        f.maiv = 0.03;
        f.warmupTolerance = 0.2;
        return f;
    }();
    SyntheticProgram pp = makeUbench(p);
    SyntheticProgram ps = makeUbench(s);
    CoreParams params;
    FameResult r = runFame(params, &pp, &ps, prio_p, prio_s, fame);
    return {r.thread[0].avgIpc(), r.thread[1].avgIpc(),
            r.thread[0].avgExecTime()};
}

// Claim (Sec. 1): "increasing the priority of a cpu-bound thread could
// reduce its execution time by 2.5x over the baseline" — for us the
// factor must at least clearly exceed 1.5x against a cpu-bound sibling.
TEST(PaperClaims, CpuBoundGainsFromPositivePriority)
{
    Pair base = run(UbenchId::CpuInt, UbenchId::CpuInt, 4, 4);
    Pair boosted = run(UbenchId::CpuInt, UbenchId::CpuInt, 6, 2);
    EXPECT_GT(base.execTimeP / boosted.execTimeP, 1.5);
}

// Claim: "increasing the priority of memory-bound threads causes an
// execution time reduction of 1.7x when run with other memory-bound
// threads".
TEST(PaperClaims, MemoryBoundGainsAgainstMemorySibling)
{
    Pair base = run(UbenchId::LdintMem, UbenchId::LdintMem, 4, 4);
    Pair boosted = run(UbenchId::LdintMem, UbenchId::LdintMem, 6, 2);
    const double factor = base.execTimeP / boosted.execTimeP;
    EXPECT_GT(factor, 1.4);
    EXPECT_LT(factor, 3.0);
}

// Claim: "by reducing the priority of a cpu-bound thread, its
// performance can decrease up to 42x when running with a memory-bound
// thread" — we assert > 10x.
TEST(PaperClaims, CpuBoundCollapsesAtDeepNegativePriority)
{
    Pair base = run(UbenchId::CpuInt, UbenchId::LdintMem, 4, 4);
    Pair starved = run(UbenchId::CpuInt, UbenchId::LdintMem, 1, 6);
    EXPECT_GT(starved.execTimeP / base.execTimeP, 10.0);
}

// Claim: "decreasing the priority of a memory-bound thread increases
// its execution time by 22x when running with another memory-bound
// thread, while increases less than 2.5x when running with the other
// benchmarks" (Fig. 3(f)).
TEST(PaperClaims, MemoryBoundSensitivityDependsOnSibling)
{
    Pair base_mem = run(UbenchId::LdintMem, UbenchId::LdintMem, 4, 4);
    Pair starved_mem = run(UbenchId::LdintMem, UbenchId::LdintMem, 1, 6);
    const double vs_mem = starved_mem.execTimeP / base_mem.execTimeP;

    Pair base_cpu = run(UbenchId::LdintMem, UbenchId::CpuInt, 4, 4);
    Pair starved_cpu = run(UbenchId::LdintMem, UbenchId::CpuInt, 1, 6);
    const double vs_cpu = starved_cpu.execTimeP / base_cpu.execTimeP;

    // Paper: 22x vs-mem, < 2.5x vs-cpu. Our model gives > 8x vs-mem
    // and ~3x vs-cpu (slightly above the paper's bound; recorded as a
    // known deviation in EXPERIMENTS.md). The *contrast* is the claim.
    EXPECT_GT(vs_mem, 8.0);
    EXPECT_LT(vs_cpu, 3.6);
    EXPECT_GT(vs_mem, 3.0 * vs_cpu);
}

// Claim: "the IPC throughput of the POWER5 improves up to 2x by using
// software-controlled priorities" — prioritizing the high-IPC thread
// of an ldint_l1 + ldint_mem pair shows it (Fig. 4).
TEST(PaperClaims, ThroughputCanNearlyDouble)
{
    Pair base = run(UbenchId::LdintL1, UbenchId::LdintMem, 4, 4);
    Pair best = run(UbenchId::LdintL1, UbenchId::LdintMem, 6, 2);
    EXPECT_GT(best.total() / base.total(), 1.5);
}

// Claim (Sec. 5.1): "a priority difference of +2 usually represents a
// point of relative saturation" for cpu-bound threads.
TEST(PaperClaims, SaturationNearPlusTwo)
{
    Pair base = run(UbenchId::CpuInt, UbenchId::CpuInt, 4, 4);
    Pair p2 = run(UbenchId::CpuInt, UbenchId::CpuInt, 6, 4);
    Pair p5 = run(UbenchId::CpuInt, UbenchId::CpuInt, 6, 1);
    const double gain2 = base.execTimeP / p2.execTimeP;
    const double gain5 = base.execTimeP / p5.execTimeP;
    EXPECT_GT(gain2, 0.80 * gain5);
}

// Claim (Sec. 5.5): a priority-1 background thread leaves a
// high-latency foreground thread nearly untouched...
TEST(PaperClaims, TransparentBackgroundUnderMemForeground)
{
    SyntheticProgram fg = makeUbench(UbenchId::LdintMem);
    SyntheticProgram st_fg = makeUbench(UbenchId::LdintMem);
    CoreParams params;
    FameParams fame;
    fame.minRepetitions = 5;
    fame.warmupRepetitions = 1;
    fame.maiv = 0.03;
    fame.warmupTolerance = 0.2;

    FameResult st = runFame(params, &st_fg, nullptr, 4, 0, fame);
    SyntheticProgram bg = makeUbench(UbenchId::CpuInt);
    FameResult with_bg = runFame(params, &fg, &bg, 6, 1, fame);

    const double impact = with_bg.thread[0].avgExecTime() /
                          st.thread[0].avgExecTime();
    EXPECT_LT(impact, 1.25);
    // ...while the background thread still gets work done.
    EXPECT_GT(with_bg.thread[1].avgIpc(), 0.02);
}

// ...and the background's effect grows as the foreground's priority
// advantage shrinks (paper Fig. 6(c)), while staying bounded.
TEST(PaperClaims, BackgroundEffectGrowsAsForegroundPriorityDrops)
{
    SyntheticProgram fg = makeUbench(UbenchId::LdintL1);
    SyntheticProgram st_fg = makeUbench(UbenchId::LdintL1);
    SyntheticProgram bg = makeUbench(UbenchId::LdintMem);
    CoreParams params;
    FameParams fame;
    fame.minRepetitions = 5;
    fame.warmupRepetitions = 1;
    fame.maiv = 0.03;
    fame.warmupTolerance = 0.2;

    FameResult st = runFame(params, &st_fg, nullptr, 4, 0, fame);
    const double st_time = st.thread[0].avgExecTime();

    double prev_impact = 0.0;
    for (int fg_prio : {6, 4, 2}) {
        FameResult r = runFame(params, &fg, &bg, fg_prio, 1, fame);
        const double impact = r.thread[0].avgExecTime() / st_time;
        EXPECT_GE(impact, prev_impact * 0.95)
            << "impact shrank at fg priority " << fg_prio;
        EXPECT_LT(impact, 2.0);
        prev_impact = impact;
    }
    // At (2,1) the background holds a quarter of the decode slots: the
    // foreground must feel it.
    EXPECT_GT(prev_impact, 1.05);
}

// Improving one thread costs the other more than it gains, often by an
// order of magnitude (Sec. 1, contribution 1).
TEST(PaperClaims, AsymmetricCostOfPrioritization)
{
    Pair base = run(UbenchId::CpuInt, UbenchId::CpuInt, 4, 4);
    Pair skew = run(UbenchId::CpuInt, UbenchId::CpuInt, 6, 2);
    const double gain = skew.ipcP / base.ipcP;
    const double loss = base.ipcS / skew.ipcS;
    EXPECT_GT(loss, gain);
}

} // namespace
} // namespace p5
