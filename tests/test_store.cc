/**
 * @file
 * Tests of the persistent content-addressed result store: fingerprint
 * stability, JSON round-trips, the sharded on-disk layout, atomic
 * publication, corruption quarantine, schema-version refusal, and the
 * SimRunner read-/write-through wiring (including concurrent sharded
 * writers over one shared directory).
 */

#include <sys/stat.h>

#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/experiments.hh"
#include "fame/sim_runner.hh"
#include "store/result_io.hh"
#include "store/result_store.hh"

namespace p5 {
namespace {

FameParams
fastFame()
{
    FameParams fame;
    fame.minRepetitions = 3;
    fame.warmupRepetitions = 1;
    fame.maiv = 0.05;
    fame.warmupTolerance = 0.25;
    return fame;
}

SimJob
fastPair(UbenchId p, UbenchId s, int prio_p, int prio_s)
{
    return SimJob::famePair(ProgramSpec::ubench(p, 0.5),
                            ProgramSpec::ubench(s, 0.5), prio_p, prio_s,
                            CoreParams{}, fastFame());
}

void
expectIdentical(const FameResult &a, const FameResult &b)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.hitCycleLimit, b.hitCycleLimit);
    for (std::size_t t = 0;
         t < static_cast<std::size_t>(num_hw_threads); ++t) {
        SCOPED_TRACE(t);
        EXPECT_EQ(a.thread[t].present, b.thread[t].present);
        EXPECT_EQ(a.thread[t].executions, b.thread[t].executions);
        EXPECT_EQ(a.thread[t].accountedCycles,
                  b.thread[t].accountedCycles);
        EXPECT_EQ(a.thread[t].accountedInstrs,
                  b.thread[t].accountedInstrs);
    }
}

/**
 * Fresh per-test store directory under the gtest temp root. TempDir()
 * survives across runs, so any store left by a previous (possibly
 * failed) run is removed first.
 */
std::string
storeDir(const std::string &name)
{
    const std::string dir =
        ::testing::TempDir() + "p5sim_store_" + name;
    DIR *top = ::opendir(dir.c_str());
    if (top) {
        while (const dirent *shard = ::readdir(top)) {
            const std::string sub = shard->d_name;
            if (sub == "." || sub == "..")
                continue;
            const std::string sub_path = dir + "/" + sub;
            DIR *inner = ::opendir(sub_path.c_str());
            if (inner) {
                while (const dirent *entry = ::readdir(inner)) {
                    const std::string file = entry->d_name;
                    if (file != "." && file != "..")
                        std::remove((sub_path + "/" + file).c_str());
                }
                ::closedir(inner);
                ::rmdir(sub_path.c_str());
            } else {
                std::remove(sub_path.c_str());
            }
        }
        ::closedir(top);
        ::rmdir(dir.c_str());
    }
    return dir;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

// --- addressing --------------------------------------------------------

TEST(ResultStore, FingerprintIsStableAndDiscriminating)
{
    const SimJob a = fastPair(UbenchId::CpuInt, UbenchId::LdintMem, 6, 2);
    const SimJob b = fastPair(UbenchId::CpuInt, UbenchId::LdintMem, 6, 2);
    EXPECT_EQ(ResultStore::fingerprintHex(a),
              ResultStore::fingerprintHex(b));

    const SimJob prio =
        fastPair(UbenchId::CpuInt, UbenchId::LdintMem, 6, 3);
    EXPECT_NE(ResultStore::fingerprintHex(a),
              ResultStore::fingerprintHex(prio));

    const std::string fp = ResultStore::fingerprintHex(a);
    ASSERT_EQ(fp.size(), 16u);
    for (char c : fp)
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << fp;

    // The store address and the RNG stream are distinct functions of
    // the key (distinct hash chains by construction).
    char seed_hex[17];
    std::snprintf(seed_hex, sizeof(seed_hex), "%016llx",
                  static_cast<unsigned long long>(a.rngSeed()));
    EXPECT_NE(fp, std::string(seed_hex));
}

TEST(ResultStore, LayoutShardsByFingerprintPrefixAndSchemaVersion)
{
    ResultStore store(storeDir("layout"), 3);
    const SimJob job =
        fastPair(UbenchId::CpuInt, UbenchId::CpuInt, 4, 4);
    const std::string fp = ResultStore::fingerprintHex(job);
    const std::string path = store.pathFor(fp);
    EXPECT_NE(path.find("/" + fp.substr(0, 2) + "/"),
              std::string::npos);
    EXPECT_NE(path.find(fp + "-v3.json"), std::string::npos);
}

TEST(ResultStore, AllocMixResultsAreNotStorable)
{
    EXPECT_FALSE(storableKind(SimJobKind::AllocMix));
    EXPECT_TRUE(storableKind(SimJobKind::FamePair));
    EXPECT_TRUE(storableKind(SimJobKind::PipelineSingleThread));
    EXPECT_TRUE(storableKind(SimJobKind::PipelineSmt));
}

// --- round trip --------------------------------------------------------

TEST(ResultStore, RoundTripsAFamePairBitIdentically)
{
    ResultStore store(storeDir("roundtrip"));
    const SimJob job =
        fastPair(UbenchId::CpuInt, UbenchId::LdintMem, 5, 4);
    const SimResult executed = job.execute();

    SimResult missed;
    EXPECT_FALSE(store.load(job, missed));
    EXPECT_EQ(store.misses(), 1u);

    StoreProvenance prov;
    prov.seed = 7;
    prov.sweep.emplace_back("core.lmq_entries", "8");
    store.put(job, executed, prov);
    EXPECT_EQ(store.writes(), 1u);
    EXPECT_TRUE(store.contains(job));
    EXPECT_EQ(store.countEntries(), 1u);

    SimResult loaded;
    ASSERT_TRUE(store.load(job, loaded));
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(loaded.kind, SimJobKind::FamePair);
    EXPECT_EQ(loaded.rngSeed, executed.rngSeed);
    expectIdentical(loaded.fame, executed.fame);

    // The stored document carries its provenance verbatim.
    JsonValue doc;
    ASSERT_TRUE(
        store.loadRaw(ResultStore::fingerprintHex(job), doc));
    EXPECT_EQ(doc.find("jobKey")->asString(), job.key());
    EXPECT_EQ(doc.find("seed")->asInt(), 7);
    EXPECT_EQ(doc.find("sweep")->find("core.lmq_entries")->asString(),
              "8");
}

TEST(ResultStore, RoundTripsAFullRangeRngSeed)
{
    // A seed above INT64_MAX must survive the JSON round trip exactly
    // (it travels as a decimal string; a JSON number would demote to
    // double and shear the low bits).
    SimResult result;
    result.kind = SimJobKind::PipelineSmt;
    result.rngSeed = 0xfedcba9876543210ULL;
    result.pipeline.fftCycles = 1.5;
    result.pipeline.luCycles = 2.5;
    result.pipeline.iterationCycles = 4.0;
    result.pipeline.hitCycleLimit = false;

    std::ostringstream os;
    {
        JsonWriter w(os);
        writeSimResult(w, result);
    }
    SimResult back;
    ASSERT_TRUE(readSimResult(parseJson(os.str()), back));
    EXPECT_EQ(back.rngSeed, 0xfedcba9876543210ULL);
    EXPECT_EQ(back.pipeline.fftCycles, 1.5);
    EXPECT_EQ(back.pipeline.iterationCycles, 4.0);
}

// --- corruption and quarantine -----------------------------------------

TEST(ResultStore, TruncatedFileIsQuarantinedAndResimulated)
{
    ResultStore store(storeDir("truncated"));
    const SimJob job =
        fastPair(UbenchId::CpuInt, UbenchId::CpuInt, 4, 4);
    const SimResult executed = job.execute();
    store.put(job, executed, StoreProvenance{});

    // Truncate the published file mid-document (a disk-level fault; a
    // killed writer cannot cause this thanks to the rename publish).
    const std::string path =
        store.pathFor(ResultStore::fingerprintHex(job));
    {
        std::ifstream is(path);
        std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        std::ofstream os(path, std::ios::trunc);
        os << text.substr(0, text.size() / 2);
    }

    SimResult out;
    EXPECT_FALSE(store.load(job, out));
    EXPECT_EQ(store.quarantined(), 1u);
    EXPECT_TRUE(fileExists(path + ".bad"));
    EXPECT_FALSE(store.contains(job));

    // The point re-stores and then loads cleanly again.
    store.put(job, executed, StoreProvenance{});
    ASSERT_TRUE(store.load(job, out));
    expectIdentical(out.fame, executed.fame);
}

TEST(ResultStore, NonJsonGarbageIsQuarantined)
{
    ResultStore store(storeDir("garbage"));
    const SimJob job =
        fastPair(UbenchId::BrHit, UbenchId::CpuInt, 4, 4);
    store.put(job, job.execute(), StoreProvenance{});

    const std::string path =
        store.pathFor(ResultStore::fingerprintHex(job));
    {
        std::ofstream os(path, std::ios::trunc);
        os << "this is not json at all";
    }
    SimResult out;
    EXPECT_FALSE(store.load(job, out));
    EXPECT_EQ(store.quarantined(), 1u);
    EXPECT_TRUE(fileExists(path + ".bad"));
}

TEST(ResultStore, MisplacedFileFailsTheJobKeyCheck)
{
    ResultStore store(storeDir("misplaced"));
    const SimJob a = fastPair(UbenchId::CpuInt, UbenchId::CpuInt, 5, 4);
    const SimJob b = fastPair(UbenchId::CpuInt, UbenchId::CpuInt, 4, 5);
    store.put(a, a.execute(), StoreProvenance{});

    // Plant a's (valid!) document at b's address — the moral
    // equivalent of a fingerprint collision. The embedded job key
    // must catch it.
    const std::string path_a =
        store.pathFor(ResultStore::fingerprintHex(a));
    const std::string path_b =
        store.pathFor(ResultStore::fingerprintHex(b));
    {
        std::ifstream is(path_a);
        std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        ::mkdir(path_b.substr(0, path_b.rfind('/')).c_str(), 0777);
        std::ofstream os(path_b);
        os << text;
    }
    SimResult out;
    EXPECT_FALSE(store.load(b, out));
    EXPECT_EQ(store.quarantined(), 1u);
}

// --- versioning --------------------------------------------------------

TEST(ResultStoreDeath, RefusesAStoreFromAnotherSchemaVersion)
{
    const std::string dir = storeDir("schema_mismatch");
    { ResultStore store(dir, 1); }
    EXPECT_EXIT(ResultStore(dir, 2), ::testing::ExitedWithCode(1),
                "schema version");
}

TEST(ResultStoreDeath, RefusesCorruptMetadata)
{
    const std::string dir = storeDir("bad_meta");
    { ResultStore store(dir); }
    {
        std::ofstream os(dir + "/store_meta.json", std::ios::trunc);
        os << "{broken";
    }
    EXPECT_EXIT(ResultStore{dir}, ::testing::ExitedWithCode(1),
                "corrupt store metadata");
}

TEST(ResultStore, DifferentSchemaVersionsNeverShareFiles)
{
    // Same fingerprint, different schema version in the *filename*:
    // even without the metadata guard the lookup could not hit.
    ResultStore v1(storeDir("v_one"), 1);
    ResultStore v2(storeDir("v_two"), 2);
    const SimJob job =
        fastPair(UbenchId::CpuInt, UbenchId::CpuInt, 4, 4);
    const std::string fp = ResultStore::fingerprintHex(job);
    EXPECT_NE(v1.pathFor(fp).substr(v1.dir().size()),
              v2.pathFor(fp).substr(v2.dir().size()));
}

// --- SimRunner wiring --------------------------------------------------

TEST(ResultStore, RunnerWritesThroughAndReadsBackAcrossCaches)
{
    const std::string dir = storeDir("runner");
    ResultStore store(dir);
    const SimJob job =
        fastPair(UbenchId::CpuInt, UbenchId::LdintMem, 4, 5);

    // First "process": cold cache, executes and writes through.
    ResultCache cache_a;
    SimRunner first(1, &cache_a);
    first.setStore(&store, /*read_through=*/false);
    const SimResult executed = first.runOne(job);
    EXPECT_EQ(store.writes(), 1u);

    // Second "process": fresh cache, read-through serves from disk
    // without simulating (writes stays put).
    ResultCache cache_b;
    SimRunner second(1, &cache_b);
    second.setStore(&store, /*read_through=*/true);
    const SimResult resumed = second.runOne(job);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.writes(), 1u);
    expectIdentical(resumed.fame, executed.fame);
}

TEST(ResultStore, WithoutResumeTheStoreIsWriteOnly)
{
    const std::string dir = storeDir("write_only");
    ResultStore store(dir);
    const SimJob job =
        fastPair(UbenchId::CpuInt, UbenchId::CpuInt, 3, 4);

    ResultCache cache_a;
    SimRunner first(1, &cache_a);
    first.setStore(&store, false);
    first.runOne(job);

    // No read-through: a fresh cache re-executes and re-publishes.
    ResultCache cache_b;
    SimRunner second(1, &cache_b);
    second.setStore(&store, false);
    second.runOne(job);
    EXPECT_EQ(store.hits(), 0u);
    EXPECT_EQ(store.writes(), 2u);
    EXPECT_EQ(store.countEntries(), 1u);
}

TEST(ResultStore, ConcurrentShardedWritersLoseNoPoints)
{
    // Two runners with independent caches (stand-ins for two --shard
    // processes) write disjoint halves of one sweep into one shared
    // store, concurrently. Every point must land exactly once.
    const std::string dir = storeDir("concurrent");
    ResultStore store_a(dir);
    ResultStore store_b(dir);

    // Moderate priority skews only: extreme pairs (e.g. 7 vs 1) starve
    // the low thread into the FAME cycle guard, which is correct but
    // takes minutes — wrong trade for a unit test.
    std::vector<SimJob> all;
    for (int prio_p : {3, 4, 5, 6})
        for (int prio_s : {4, 5})
            all.push_back(fastPair(UbenchId::CpuInt, UbenchId::CpuInt,
                                   prio_p, prio_s));
    std::vector<SimJob> shard0, shard1;
    for (std::size_t i = 0; i < all.size(); ++i)
        (i % 2 ? shard1 : shard0).push_back(all[i]);

    auto runShard = [](ResultStore &store,
                       const std::vector<SimJob> &jobs) {
        ResultCache cache;
        SimRunner runner(2, &cache);
        runner.setStore(&store, true);
        runner.run(jobs);
    };
    std::thread t0(runShard, std::ref(store_a), std::cref(shard0));
    std::thread t1(runShard, std::ref(store_b), std::cref(shard1));
    t0.join();
    t1.join();

    EXPECT_EQ(store_a.countEntries(), all.size());
    ResultStore verify(dir);
    for (const SimJob &job : all) {
        SimResult out;
        EXPECT_TRUE(verify.load(job, out))
            << ResultStore::fingerprintHex(job);
    }
    EXPECT_EQ(verify.hits(), all.size());
    EXPECT_EQ(verify.quarantined(), 0u);
}

} // namespace
} // namespace p5
