/**
 * @file
 * Tests for the common concurrency layer: ThreadPool (result delivery,
 * exception propagation, saturation), JobGraph (dependency ordering,
 * failure containment) and the thread safety of the log globals.
 */

#include <array>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/job_graph.hh"
#include "common/log.hh"
#include "common/thread_pool.hh"

namespace p5 {
namespace {

TEST(ThreadPool, DeliversResultsInSubmissionOrder)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ZeroWorkersSelectsHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workers(), ThreadPool::defaultWorkers());
    EXPECT_GE(pool.workers(), 1u);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures)
{
    ThreadPool pool(2);
    auto ok = pool.submit([] { return 7; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("job failed"); });
    EXPECT_EQ(ok.get(), 7);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, SaturationRunsEveryTask)
{
    // Far more tasks than workers; every task must run exactly once.
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 500; ++i)
        futures.push_back(pool.submit([&ran] {
            ran.fetch_add(1);
        }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(ran.load(), 500);
    EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 32; ++i)
            pool.submit([&ran] {
                std::this_thread::sleep_for(std::chrono::microseconds(100));
                ran.fetch_add(1);
            });
    }
    EXPECT_EQ(ran.load(), 32);
}

TEST(JobGraph, RespectsDependencyOrder)
{
    ThreadPool pool(4);
    JobGraph graph;
    std::atomic<int> stamp{0};
    std::array<int, 4> when{};

    // d depends on b and c, which both depend on a.
    auto a = graph.add([&] { when[0] = stamp.fetch_add(1); });
    auto b = graph.add([&] { when[1] = stamp.fetch_add(1); }, {a});
    auto c = graph.add([&] { when[2] = stamp.fetch_add(1); }, {a});
    graph.add([&] { when[3] = stamp.fetch_add(1); }, {b, c});
    graph.run(pool);

    EXPECT_LT(when[0], when[1]);
    EXPECT_LT(when[0], when[2]);
    EXPECT_GT(when[3], when[1]);
    EXPECT_GT(when[3], when[2]);
}

TEST(JobGraph, FailureSkipsDependentsAndRethrows)
{
    ThreadPool pool(2);
    JobGraph graph;
    std::atomic<bool> dependent_ran{false};
    auto bad = graph.add([] { throw std::runtime_error("node failed"); });
    graph.add([&] { dependent_ran = true; }, {bad});
    EXPECT_THROW(graph.run(pool), std::runtime_error);
    EXPECT_FALSE(dependent_ran.load());
}

TEST(JobGraph, ParallelRootsAllRun)
{
    ThreadPool pool(4);
    JobGraph graph;
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        graph.add([&ran] { ran.fetch_add(1); });
    graph.run(pool);
    EXPECT_EQ(ran.load(), 100);
}

TEST(Log, WarnCountAndLevelAreThreadSafe)
{
    // Concurrent simulations warn() and read the log level from many
    // threads; hammer both and check no update is lost. (Run silent so
    // the test log stays readable.)
    const LogLevel prev = setLogLevel(LogLevel::Silent);
    const std::uint64_t before = warnCount();

    constexpr int threads = 8;
    constexpr int perThread = 250;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t)
        workers.emplace_back([] {
            for (int i = 0; i < perThread; ++i) {
                warn("concurrent warn %d", i);
                (void)logLevel();
            }
        });
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(warnCount() - before,
              static_cast<std::uint64_t>(threads) * perThread);
    setLogLevel(prev);
}

} // namespace
} // namespace p5
