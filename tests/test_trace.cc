/**
 * @file
 * Equivalence and validation suite for the replayable trace frontend.
 *
 * The trace contract is that a dumped trace replayed through a
 * TraceProgram is indistinguishable from the synthetic generator that
 * recorded it: every fetched instruction byte-identical, every stat of
 * every priority pair bit-identical — with fast-forward on or off,
 * through checkpoint save/restore, checkpoint-forked FAME runs and
 * store-resumed batches. The validation half covers the loader's
 * corruption handling: header, checksum, version and record-bound
 * failures are rejected (and quarantined) rather than replayed.
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "ckpt/ckpt_io.hh"
#include "ckpt/ckpt_manager.hh"
#include "core/smt_core.hh"
#include "fame/fame.hh"
#include "fame/sim_runner.hh"
#include "program/trace.hh"
#include "store/result_store.hh"
#include "test_helpers.hh"
#include "ubench/ubench.hh"

namespace p5 {
namespace {

/** Fresh per-test trace path under the gtest temp root. */
std::string
tracePath(const std::string &name)
{
    const std::string path =
        ::testing::TempDir() + "p5sim_" + name + ".trace";
    std::remove(path.c_str());
    std::remove((path + ".bad").c_str());
    return path;
}

/**
 * Recorded executions that guarantee a @p cycles run never wraps the
 * trace: decode fetches at most decode_width instructions per cycle,
 * plus slack for the in-flight window after the last decode.
 */
std::uint64_t
dumpDepth(const SyntheticProgram &prog, Cycle cycles)
{
    const std::uint64_t fetch_bound =
        static_cast<std::uint64_t>(cycles) * 5 + 2000;
    return fetch_bound / prog.instrsPerExecution() + 2;
}

struct RunSnapshot
{
    Cycle cycle = 0;
    std::map<std::string, double> stats;
    std::array<std::uint64_t, num_hw_threads> committed{};
    std::array<std::uint64_t, num_hw_threads> executions{};
};

/** Run @p prog against itself and snapshot every observable. */
RunSnapshot
runPair(const InstrSource &prog, int prio_p, int prio_s,
        bool fast_forward, bool armed, Cycle cycles)
{
    CoreParams params;
    params.fastForward = fast_forward;
    SmtCore core(params);
    if (armed)
        test::withCheckers(core);
    core.attachThread(0, &prog, prio_p);
    core.attachThread(1, &prog, prio_s);
    core.run(cycles);

    RunSnapshot snap;
    snap.cycle = core.cycle();
    for (const std::string &name : core.stats().names())
        snap.stats.emplace(name, core.stats().value(name));
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        snap.committed[static_cast<size_t>(t)] = core.committedOf(t);
        snap.executions[static_cast<size_t>(t)] = core.executionsOf(t);
    }
    return snap;
}

void
expectIdentical(const RunSnapshot &replay, const RunSnapshot &synth,
                const std::string &label)
{
    EXPECT_EQ(replay.cycle, synth.cycle) << label;
    ASSERT_EQ(replay.stats.size(), synth.stats.size()) << label;
    for (const auto &[name, value] : synth.stats) {
        auto it = replay.stats.find(name);
        ASSERT_NE(it, replay.stats.end())
            << label << " missing " << name;
        EXPECT_EQ(it->second, value) << label << " stat " << name;
    }
    for (size_t t = 0; t < num_hw_threads; ++t) {
        EXPECT_EQ(replay.committed[t], synth.committed[t])
            << label << " committed thread " << t;
        EXPECT_EQ(replay.executions[t], synth.executions[t])
            << label << " executions thread " << t;
    }
}

void
expectSameFame(const FameResult &a, const FameResult &b,
               const std::string &label)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles) << label;
    EXPECT_EQ(a.converged, b.converged) << label;
    EXPECT_EQ(a.hitCycleLimit, b.hitCycleLimit) << label;
    for (std::size_t t = 0;
         t < static_cast<std::size_t>(num_hw_threads); ++t) {
        SCOPED_TRACE(label + " thread " + std::to_string(t));
        EXPECT_EQ(a.thread[t].present, b.thread[t].present);
        EXPECT_EQ(a.thread[t].executions, b.thread[t].executions);
        EXPECT_EQ(a.thread[t].accountedCycles,
                  b.thread[t].accountedCycles);
        EXPECT_EQ(a.thread[t].accountedInstrs,
                  b.thread[t].accountedInstrs);
    }
}

// --- instruction-level byte identity ------------------------------------

/**
 * The ground truth under every other test here: within the recorded
 * span, each instruction a trace stream materializes equals the
 * generator's in every field the core can observe.
 */
TEST(TraceStream, FetchesByteIdenticalInstructions)
{
    for (UbenchId id : presentedUbench()) {
        const SyntheticProgram prog = makeUbench(id, 0.25);
        const std::string path =
            tracePath(std::string("bytes_") + ubenchName(id));
        const std::uint64_t execs = 3;
        dumpTrace(prog, execs, path);
        const std::unique_ptr<TraceProgram> replay = loadTrace(path);

        InstrStream synth(&prog, 0);
        InstrStream traced(replay.get(), 0);
        const std::uint64_t span =
            execs * prog.instrsPerExecution();
        for (std::uint64_t i = 0; i < span; ++i) {
            const DynInstr a = synth.fetch();
            const DynInstr b = traced.fetch();
            const std::string at = std::string(ubenchName(id)) +
                                   " instr " + std::to_string(i);
            ASSERT_EQ(a.op, b.op) << at;
            ASSERT_EQ(a.dst, b.dst) << at;
            ASSERT_EQ(a.src0, b.src0) << at;
            ASSERT_EQ(a.src1, b.src1) << at;
            ASSERT_EQ(a.addr, b.addr) << at;
            ASSERT_EQ(a.branchTaken, b.branchTaken) << at;
            ASSERT_EQ(a.prioNopReg, b.prioNopReg) << at;
            ASSERT_EQ(a.pc, b.pc) << at;
            ASSERT_EQ(a.seq, b.seq) << at;
        }
        std::remove(path.c_str());
    }
}

/** Rewind and seek reproduce previously fetched trace instructions. */
TEST(TraceStream, RewindAndSeekReproduce)
{
    const SyntheticProgram prog = makeUbench(UbenchId::LdintMem, 0.25);
    const std::string path = tracePath("rewind");
    dumpTrace(prog, 2, path);
    const std::unique_ptr<TraceProgram> replay = loadTrace(path);

    InstrStream s(replay.get(), 0);
    std::vector<DynInstr> first;
    for (int i = 0; i < 200; ++i)
        first.push_back(s.fetch());

    s.rewindTo(37);
    for (int i = 37; i < 200; ++i) {
        const DynInstr d = s.fetch();
        EXPECT_EQ(d.seq, first[static_cast<size_t>(i)].seq);
        EXPECT_EQ(d.addr, first[static_cast<size_t>(i)].addr);
        EXPECT_EQ(d.op, first[static_cast<size_t>(i)].op);
    }

    s.seekTo(5);
    EXPECT_EQ(s.peek().addr, first[5].addr);
    s.seekTo(199);
    EXPECT_EQ(s.peek().addr, first[199].addr);
    std::remove(path.c_str());
}

// --- core-level equivalence ---------------------------------------------

/**
 * The headline sweep: all six presented benchmarks, all 36 priority
 * pairs, replayed stats bit-identical to the generator's.
 */
TEST(TraceEquivalence, BitIdenticalStatsAcrossAllPriorityPairs)
{
    constexpr Cycle run_cycles = 2500;
    for (UbenchId id : presentedUbench()) {
        const SyntheticProgram prog = makeUbench(id, 0.25);
        const std::string path =
            tracePath(std::string("sweep_") + ubenchName(id));
        dumpTrace(prog, dumpDepth(prog, run_cycles), path);
        const std::unique_ptr<TraceProgram> replay = loadTrace(path);
        for (int prio_p = 1; prio_p <= 6; ++prio_p) {
            for (int prio_s = 1; prio_s <= 6; ++prio_s) {
                const std::string label =
                    std::string(ubenchName(id)) + " trace (" +
                    std::to_string(prio_p) + "," +
                    std::to_string(prio_s) + ")";
                RunSnapshot synth = runPair(prog, prio_p, prio_s,
                                            true, false, run_cycles);
                RunSnapshot traced = runPair(*replay, prio_p, prio_s,
                                             true, false, run_cycles);
                expectIdentical(traced, synth, label);
            }
        }
        std::remove(path.c_str());
    }
}

/**
 * Replay composes with the fast-forward engine: trace-driven runs are
 * bit-identical between engine modes, with the fatal skip-aware p5check
 * suite armed on both.
 */
TEST(TraceEquivalence, FastForwardModesAgreeUnderCheckers)
{
    constexpr Cycle run_cycles = 2500;
    for (UbenchId id : presentedUbench()) {
        const SyntheticProgram prog = makeUbench(id, 0.25);
        const std::string path =
            tracePath(std::string("ff_") + ubenchName(id));
        dumpTrace(prog, dumpDepth(prog, run_cycles), path);
        const std::unique_ptr<TraceProgram> replay = loadTrace(path);
        const std::string label =
            std::string(ubenchName(id)) + " trace armed (4,4)";
        RunSnapshot slow =
            runPair(*replay, 4, 4, false, true, run_cycles);
        RunSnapshot fast =
            runPair(*replay, 4, 4, true, true, run_cycles);
        expectIdentical(fast, slow, label);
        std::remove(path.c_str());
    }
}

/**
 * The trace cursor survives checkpoint save/restore: a run resumed on
 * a fresh core (whose stream re-derives its position through the
 * virtual locate() path) matches the uninterrupted run observable for
 * observable.
 */
TEST(TraceEquivalence, CkptRoundTripResumesMidTrace)
{
    constexpr Cycle first_leg = 1500;
    constexpr Cycle second_leg = 1000;
    const SyntheticProgram prog = makeUbench(UbenchId::LdintMem, 0.25);
    const std::string path = tracePath("ckpt_cursor");
    dumpTrace(prog, dumpDepth(prog, first_leg + second_leg), path);
    const std::unique_ptr<TraceProgram> replay = loadTrace(path);

    // Uninterrupted reference.
    CoreParams params;
    SmtCore whole(params);
    whole.attachThread(0, replay.get(), 6);
    whole.attachThread(1, replay.get(), 2);
    whole.run(first_leg + second_leg);

    // Checkpointed at first_leg, restored onto a fresh core.
    SmtCore left(params);
    left.attachThread(0, replay.get(), 6);
    left.attachThread(1, replay.get(), 2);
    left.run(first_leg);
    CkptWriter w;
    left.saveState(w);

    SmtCore right(params);
    right.attachThread(0, replay.get(), 6);
    right.attachThread(1, replay.get(), 2);
    CkptReader r(w.data());
    right.restoreState(r);
    r.expectEnd();
    right.run(second_leg);

    EXPECT_EQ(right.cycle(), whole.cycle());
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        EXPECT_EQ(right.committedOf(t), whole.committedOf(t)) << t;
        EXPECT_EQ(right.executionsOf(t), whole.executionsOf(t)) << t;
    }
    for (const std::string &name : whole.stats().names())
        EXPECT_EQ(right.stats().value(name), whole.stats().value(name))
            << name;
    std::remove(path.c_str());
}

// --- FAME-level equivalence ---------------------------------------------

FameParams
fastFame()
{
    FameParams fame;
    fame.minRepetitions = 3;
    fame.warmupRepetitions = 1;
    fame.maiv = 0.05;
    fame.warmupTolerance = 0.25;
    return fame;
}

/**
 * Record deep enough for the FAME run of @p prog against itself: the
 * synthetic arm runs first to learn the cycle budget, then the dump
 * covers it with the same never-wrap bound as dumpDepth().
 */
std::string
dumpForFame(const SyntheticProgram &prog, const std::string &name,
            int prio_p, int prio_s)
{
    const FameResult probe =
        runFame(CoreParams{}, &prog, &prog, prio_p, prio_s, fastFame());
    const std::string path = tracePath(name);
    dumpTrace(prog,
              dumpDepth(prog, probe.totalCycles + 10000), path);
    return path;
}

/**
 * Checkpoint-forked FAME: several priority pairs of the trace pair-mix
 * share one warm-up through a CkptManager; each forked measurement is
 * bit-identical to its cold (unforked) twin, which in turn equals the
 * synthetic generator's.
 */
TEST(TraceFame, CheckpointForkedRunsMatchColdAndSynthetic)
{
    const SyntheticProgram prog = makeUbench(UbenchId::LdintMem, 0.5);
    const std::string path = dumpForFame(prog, "fame_fork", 6, 1);
    const std::unique_ptr<TraceProgram> replay = loadTrace(path);

    const FameParams fame = fastFame();
    const CoreParams core;
    const std::pair<int, int> pairs[] = {{4, 4}, {6, 2}, {2, 6}, {5, 3}};

    CkptManager mgr;
    for (const auto &[p, s] : pairs) {
        const std::string label = "pair (" + std::to_string(p) + "," +
                                  std::to_string(s) + ")";
        const FameResult synth =
            runFame(core, &prog, &prog, p, s, fame);
        const FameResult cold =
            runFame(core, replay.get(), replay.get(), p, s, fame);
        const FameResult forked =
            runFame(core, replay.get(), replay.get(), p, s, fame,
                    &mgr, "trace-fork-test");
        expectSameFame(cold, synth, label + " cold vs synthetic");
        expectSameFame(forked, cold, label + " forked vs cold");
    }
    EXPECT_EQ(mgr.warms(), 1u);
    EXPECT_EQ(mgr.memForks(), 3u);
    std::remove(path.c_str());
}

/**
 * Store-resumed FAME: trace jobs written through a persistent result
 * store are served back validated and bit-identical by a later
 * process (modeled as a fresh runner + cache), keyed by the trace's
 * content fingerprint.
 */
TEST(TraceFame, StoreResumedRunsAreServedBitIdentical)
{
    const SyntheticProgram prog = makeUbench(UbenchId::LdintMem, 0.5);
    const std::string path = dumpForFame(prog, "fame_store", 6, 2);

    const std::string dir =
        ::testing::TempDir() + "p5sim_trace_store";
    std::vector<SimJob> batch;
    for (const auto &[p, s] :
         std::initializer_list<std::pair<int, int>>{{4, 4}, {6, 2}}) {
        SimJob job = SimJob::famePair(
            ProgramSpec::trace(path), ProgramSpec::trace(path), p, s,
            CoreParams{}, fastFame());
        batch.push_back(std::move(job));
    }

    ResultStore store(dir);
    ResultCache cache_a;
    SimRunner first(1, &cache_a);
    first.setStore(&store, /*read_through=*/false);
    const std::vector<SimResult> ran = first.run(batch);
    EXPECT_EQ(store.writes(), batch.size());

    ResultCache cache_b;
    SimRunner second(1, &cache_b);
    second.setStore(&store, /*read_through=*/true);
    const std::vector<SimResult> resumed = second.run(batch);
    EXPECT_EQ(store.hits(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        expectSameFame(resumed[i].fame, ran[i].fame,
                       "stored point " + std::to_string(i));
    std::remove(path.c_str());
}

// --- identity -----------------------------------------------------------

TEST(TraceIdentity, KeysEmbedContentFingerprintNotPath)
{
    const SyntheticProgram prog = makeUbench(UbenchId::CpuInt, 0.25);
    const std::string a = tracePath("id_a");
    const std::string b = tracePath("id_b");
    dumpTrace(prog, 2, a);
    dumpTrace(prog, 2, b);

    // Identical content at different paths keys identically...
    const ProgramSpec sa = ProgramSpec::trace(a);
    const ProgramSpec sb = ProgramSpec::trace(b);
    EXPECT_EQ(sa.key(), sb.key());
    EXPECT_NE(sa.key().find("trace:fp="), std::string::npos);

    // ...different content keys differently...
    const SyntheticProgram other = makeUbench(UbenchId::CpuInt, 0.5);
    const std::string c = tracePath("id_c");
    dumpTrace(other, 2, c);
    EXPECT_NE(ProgramSpec::trace(c).key(), sa.key());

    // ...and a trace never aliases the benchmark that recorded it.
    EXPECT_NE(sa.key(), ProgramSpec::ubench(UbenchId::CpuInt, 0.25).key());

    std::remove(a.c_str());
    std::remove(b.c_str());
    std::remove(c.c_str());
}

/** Swapping the file underneath a keyed spec is fatal at build time. */
TEST(TraceIdentityDeath, FileSwapAfterKeyingIsFatal)
{
    const SyntheticProgram prog = makeUbench(UbenchId::CpuInt, 0.25);
    const std::string path = tracePath("swap");
    dumpTrace(prog, 2, path);
    const ProgramSpec spec = ProgramSpec::trace(path);

    const SyntheticProgram other = makeUbench(UbenchId::CpuInt, 0.5);
    dumpTrace(other, 2, path); // overwrite with different content
    EXPECT_DEATH(spec.build(), "changed since it was keyed");
    std::remove(path.c_str());
}

// --- validation ---------------------------------------------------------

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(is)),
                     std::istreambuf_iterator<char>());
    return text;
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream os(path, std::ios::binary);
    os << text;
}

TEST(TraceValidation, LoaderRejectsCorruptFiles)
{
    const SyntheticProgram prog = makeUbench(UbenchId::LdintMem, 0.25);
    const std::string good_path = tracePath("valid");
    dumpTrace(prog, 2, good_path);
    const std::string good = readFile(good_path);
    std::unique_ptr<TraceProgram> out;
    std::string why;

    // Pristine file loads.
    ASSERT_TRUE(tryLoadTrace(good_path, out, &why)) << why;

    const std::string bad_path = tracePath("corrupt");

    // Truncated payload: size no longer matches the header.
    writeFile(bad_path, good.substr(0, good.size() - 10));
    EXPECT_FALSE(tryLoadTrace(bad_path, out, &why));
    EXPECT_NE(why.find("payload"), std::string::npos) << why;

    // Garbage header.
    writeFile(bad_path, "not a trace at all\n");
    EXPECT_FALSE(tryLoadTrace(bad_path, out, &why));

    // Version skew: future versions are refused, not misparsed.
    std::string skewed = good;
    const std::string v1 = "\"version\": 1";
    const auto at = skewed.find(v1);
    ASSERT_NE(at, std::string::npos);
    skewed.replace(at, v1.size(), "\"version\":2");
    writeFile(bad_path, skewed);
    EXPECT_FALSE(tryLoadTrace(bad_path, out, &why));
    EXPECT_NE(why.find("version"), std::string::npos) << why;

    // Flipped payload byte: caught by the checksum.
    std::string flipped = good;
    flipped[flipped.size() - 20] =
        static_cast<char>(flipped[flipped.size() - 20] ^ 0x5a);
    writeFile(bad_path, flipped);
    EXPECT_FALSE(tryLoadTrace(bad_path, out, &why));
    EXPECT_NE(why.find("checksum"), std::string::npos) << why;

    std::remove(bad_path.c_str());
    std::remove(good_path.c_str());
}

TEST(TraceValidation, QuarantineFollowsBadFileDiscipline)
{
    const SyntheticProgram prog = makeUbench(UbenchId::CpuInt, 0.25);
    const std::string path = tracePath("quarantine");
    dumpTrace(prog, 2, path);
    writeFile(path, "garbage\n");

    const std::string bad = quarantineTrace(path);
    EXPECT_EQ(bad, path + ".bad");
    std::ifstream original(path);
    EXPECT_FALSE(original.good());
    std::ifstream moved(bad);
    EXPECT_TRUE(moved.good());
    std::remove(bad.c_str());
}

TEST(TraceValidationDeath, FatalWrappersNameTheProblem)
{
    const std::string path = tracePath("death");
    EXPECT_DEATH(readTraceHeader(path), "death");

    writeFile(path, "garbage\n");
    EXPECT_DEATH(loadTrace(path), "trace");

    const SyntheticProgram prog = makeUbench(UbenchId::CpuInt, 0.25);
    dumpTrace(prog, 2, path);
    std::string truncated = readFile(path);
    truncated.resize(truncated.size() / 2);
    writeFile(path, truncated);
    EXPECT_DEATH(loadTrace(path), "payload");
    std::remove(path.c_str());
}

} // namespace
} // namespace p5
