/**
 * @file
 * Unit tests for the common module: logging, RNG, statistics, table
 * rendering, CLI parsing.
 */

#include <algorithm>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "common/cli.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/parse.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace p5 {
namespace {

// --- log ---------------------------------------------------------------

TEST(Log, LevelRoundTrip)
{
    LogLevel old = setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(old);
    EXPECT_EQ(logLevel(), old);
}

TEST(Log, WarnCountsEvenWhenSuppressed)
{
    LogLevel old = setLogLevel(LogLevel::Silent);
    std::uint64_t before = warnCount();
    warn("suppressed warning %d", 42);
    EXPECT_EQ(warnCount(), before + 1);
    setLogLevel(old);
}

// --- rng ---------------------------------------------------------------

TEST(Rng, HashMixIsDeterministic)
{
    EXPECT_EQ(hashMix(12345), hashMix(12345));
    EXPECT_NE(hashMix(12345), hashMix(12346));
}

TEST(Rng, HashCombineOrderSensitive)
{
    EXPECT_NE(hashCombine(1, 2), hashCombine(2, 1));
}

TEST(Rng, SameSeedSameSequence)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(7), b(8);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(99);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowStaysBelow)
{
    Rng r(3);
    for (int i = 0; i < 1000; ++i)
        ASSERT_LT(r.below(17), 17u);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(5);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        if (r.chance(0.3))
            ++hits;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

// --- stats -------------------------------------------------------------

TEST(Stats, CounterBasics)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, AverageTracksMinMaxMean)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 6.0);
    EXPECT_EQ(a.count(), 3u);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Stats, DistributionBuckets)
{
    Distribution d(4, 10.0);
    d.sample(5.0);   // bucket 0
    d.sample(15.0);  // bucket 1
    d.sample(35.0);  // bucket 3
    d.sample(45.0);  // overflow
    d.sample(-1.0);  // underflow
    EXPECT_EQ(d.total(), 5u);
    EXPECT_EQ(d.bucket(0), 1u);
    EXPECT_EQ(d.bucket(1), 1u);
    EXPECT_EQ(d.bucket(2), 0u);
    EXPECT_EQ(d.bucket(3), 1u);
    EXPECT_EQ(d.overflow(), 1u);
    EXPECT_EQ(d.underflow(), 1u);
}

TEST(Stats, GroupCounterAndDerived)
{
    StatGroup g("test");
    Counter c;
    c += 3;
    g.registerCounter("events", &c);
    static double dummy_ctx = 2.5;
    g.registerDerived(
        "derived", [](const void *ctx) { return *static_cast<const double *>(ctx); },
        &dummy_ctx);
    EXPECT_TRUE(g.has("events"));
    EXPECT_FALSE(g.has("missing"));
    EXPECT_DOUBLE_EQ(g.value("events"), 3.0);
    EXPECT_DOUBLE_EQ(g.value("derived"), 2.5);
    EXPECT_EQ(g.names().size(), 2u);
}

TEST(Stats, GroupDumpFormat)
{
    StatGroup g("grp");
    Counter c;
    ++c;
    g.registerCounter("x", &c);
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "grp.x 1\n");
}

TEST(StatsDeath, UnknownStatIsFatal)
{
    StatGroup g("test");
    EXPECT_EXIT(g.value("nope"), ::testing::ExitedWithCode(1),
                "unknown stat");
}

// --- table -------------------------------------------------------------

TEST(Table, AsciiLayout)
{
    Table t("title");
    t.setColumns({"a", "bb"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printAscii(os);
    std::string out = os.str();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("| a "), std::string::npos);
    EXPECT_NE(out.find("| 1 "), std::string::npos);
}

TEST(Table, CsvEscaping)
{
    Table t;
    t.setColumns({"x", "y"});
    t.addRow({"a,b", "he said \"hi\""});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n\"a,b\",\"he said \"\"hi\"\"\"\n");
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::fmt(1.2345, 2), "1.23");
    EXPECT_EQ(Table::fmtFactor(2.0, 1), "2.0x");
    EXPECT_EQ(Table::fmtPercent(0.237), "23.7%");
}

TEST(Table, RowAccess)
{
    Table t;
    t.setColumns({"c"});
    t.addRow({"v"});
    EXPECT_EQ(t.numRows(), 1u);
    EXPECT_EQ(t.numColumns(), 1u);
    EXPECT_EQ(t.row(0)[0], "v");
}

// --- cli ---------------------------------------------------------------

TEST(Cli, DefaultsAndOverrides)
{
    Cli cli;
    cli.declare("num", "5", "a number");
    cli.declare("name", "foo", "a string");
    cli.declare("flag", "false", "a bool");
    const char *argv[] = {"prog", "--num=7", "--flag"};
    cli.parse(3, argv);
    EXPECT_EQ(cli.integer("num"), 7);
    EXPECT_EQ(cli.str("name"), "foo");
    EXPECT_TRUE(cli.boolean("flag"));
    EXPECT_TRUE(cli.isSet("num"));
    EXPECT_FALSE(cli.isSet("name"));
}

TEST(Cli, SpaceSeparatedValue)
{
    Cli cli;
    cli.declare("x", "0", "");
    const char *argv[] = {"prog", "--x", "42"};
    cli.parse(3, argv);
    EXPECT_EQ(cli.integer("x"), 42);
}

TEST(Cli, RealParsing)
{
    Cli cli;
    cli.declare("r", "1.5", "");
    const char *argv[] = {"prog", "--r=2.25"};
    cli.parse(2, argv);
    EXPECT_DOUBLE_EQ(cli.real("r"), 2.25);
}

TEST(CliDeath, UnknownFlagIsFatal)
{
    Cli cli;
    cli.declare("known", "0", "");
    const char *argv[] = {"prog", "--unknown=1"};
    EXPECT_EXIT(cli.parse(2, argv), ::testing::ExitedWithCode(1),
                "unknown flag");
}

TEST(CliDeath, BadIntegerIsFatal)
{
    Cli cli;
    cli.declare("n", "0", "");
    const char *argv[] = {"prog", "--n=abc"};
    cli.parse(2, argv);
    EXPECT_EXIT(cli.integer("n"), ::testing::ExitedWithCode(1),
                "expects an integer");
}

TEST(CliDeath, IntegerRejectsTrailingGarbageRangeAndEmpty)
{
    // "8x" silently truncating to 8 is exactly the bug class the
    // shared parse helpers exist to kill.
    const auto expectFatalInteger = [](const char *text) {
        Cli cli;
        cli.declare("n", "0", "");
        const std::string arg = std::string("--n=") + text;
        const char *argv[] = {"prog", arg.c_str()};
        cli.parse(2, argv);
        EXPECT_EXIT(cli.integer("n"), ::testing::ExitedWithCode(1),
                    "expects an integer")
            << text;
    };
    expectFatalInteger("8x");
    expectFatalInteger("1 2");
    expectFatalInteger("");
    expectFatalInteger("   ");
    expectFatalInteger("99999999999999999999999"); // ERANGE
    expectFatalInteger("0x");                      // truncated hex
}

TEST(CliDeath, RealRejectsTrailingGarbageAndOverflow)
{
    const auto expectFatalReal = [](const char *text) {
        Cli cli;
        cli.declare("r", "0.0", "");
        const std::string arg = std::string("--r=") + text;
        const char *argv[] = {"prog", arg.c_str()};
        cli.parse(2, argv);
        EXPECT_EXIT(cli.real("r"), ::testing::ExitedWithCode(1),
                    "expects a number")
            << text;
    };
    expectFatalReal("1.5x");
    expectFatalReal("");
    expectFatalReal("1e999999"); // ERANGE overflow
}

TEST(Parse, StatusCoversTheFailureTaxonomy)
{
    std::int64_t i = 0;
    EXPECT_EQ(parseInt64("42", i), ParseStatus::Ok);
    EXPECT_EQ(i, 42);
    EXPECT_EQ(parseInt64("-7", i), ParseStatus::Ok);
    EXPECT_EQ(i, -7);
    EXPECT_EQ(parseInt64("0x10", i), ParseStatus::Ok); // base 0: hex
    EXPECT_EQ(i, 16);
    EXPECT_EQ(parseInt64("", i), ParseStatus::Empty);
    EXPECT_EQ(parseInt64(" \t ", i), ParseStatus::Empty);
    EXPECT_EQ(parseInt64("8x", i), ParseStatus::Invalid);
    EXPECT_EQ(parseInt64("x8", i), ParseStatus::Invalid);
    EXPECT_EQ(parseInt64("99999999999999999999999", i),
              ParseStatus::OutOfRange);

    std::uint64_t u = 0;
    EXPECT_EQ(parseUint64("18446744073709551615", u), ParseStatus::Ok);
    EXPECT_EQ(u, 18446744073709551615ULL);
    // strtoull would happily wrap "-1" around; the helper must not.
    EXPECT_EQ(parseUint64("-1", u), ParseStatus::Invalid);
    EXPECT_EQ(parseUint64("18446744073709551616", u),
              ParseStatus::OutOfRange);
    EXPECT_EQ(parseUint64("12e", u), ParseStatus::Invalid);

    double d = 0.0;
    EXPECT_EQ(parseFloat64("2.5", d), ParseStatus::Ok);
    EXPECT_EQ(d, 2.5);
    EXPECT_EQ(parseFloat64("1e999999", d), ParseStatus::OutOfRange);
    EXPECT_EQ(parseFloat64("1.5meters", d), ParseStatus::Invalid);
    // Underflow quietly rounds toward zero — accepted by design.
    EXPECT_EQ(parseFloat64("1e-999999", d), ParseStatus::Ok);

    EXPECT_STREQ(parseStatusName(ParseStatus::Empty), "empty value");
    EXPECT_STREQ(parseStatusName(ParseStatus::Invalid),
                 "not a number (or trailing garbage)");
    EXPECT_STREQ(parseStatusName(ParseStatus::OutOfRange),
                 "out of range");
}

TEST(Cli, UsageListsFlags)
{
    Cli cli;
    cli.declare("alpha", "1", "the alpha flag");
    std::string usage = cli.usage("prog");
    EXPECT_NE(usage.find("--alpha"), std::string::npos);
    EXPECT_NE(usage.find("the alpha flag"), std::string::npos);
}

// --- json --------------------------------------------------------------

TEST(Json, NestedStructure)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.member("name", "p5sim");
        w.member("count", 3);
        w.member("ok", true);
        w.key("values").beginArray();
        w.value(1.5).value(2.0).null();
        w.endArray();
        w.key("nested").beginObject();
        w.member("inner", std::int64_t{-7});
        w.endObject();
        w.endObject();
    }
    const std::string out = os.str();
    EXPECT_NE(out.find("\"name\": \"p5sim\""), std::string::npos);
    EXPECT_NE(out.find("\"count\": 3"), std::string::npos);
    EXPECT_NE(out.find("\"ok\": true"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("null"), std::string::npos);
    EXPECT_NE(out.find("\"inner\": -7"), std::string::npos);
    // Balanced braces/brackets.
    EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
              std::count(out.begin(), out.end(), '}'));
    EXPECT_EQ(std::count(out.begin(), out.end(), '['),
              std::count(out.begin(), out.end(), ']'));
}

TEST(Json, StringEscaping)
{
    EXPECT_EQ(JsonWriter::escape("plain"), "plain");
    EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
    EXPECT_EQ(JsonWriter::escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(JsonWriter::escape("line\nbreak"), "line\\nbreak");
    EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Json, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginArray();
        w.value(std::numeric_limits<double>::infinity());
        w.value(std::numeric_limits<double>::quiet_NaN());
        w.endArray();
    }
    EXPECT_EQ(os.str().find("inf"), std::string::npos);
    EXPECT_EQ(os.str().find("nan"), std::string::npos);
    EXPECT_NE(os.str().find("null"), std::string::npos);
}

TEST(Json, DoublesRoundTripExactly)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.value(0.1234567890123456789);
    }
    EXPECT_EQ(std::stod(os.str()), 0.1234567890123456789);
}

} // namespace
} // namespace p5
