/**
 * @file
 * Tests for the case-study workloads: SPEC proxies and the FFT/LU
 * pipeline.
 */

#include <gtest/gtest.h>

#include "core/smt_core.hh"
#include "fame/fame.hh"
#include "workloads/pipeline_app.hh"
#include "workloads/spec_proxy.hh"

namespace p5 {
namespace {

TEST(SpecProxy, AllBuildAndRoundTrip)
{
    for (int i = 0; i < num_spec_proxies; ++i) {
        auto id = static_cast<SpecProxyId>(i);
        SyntheticProgram p = makeSpecProxy(id);
        EXPECT_GT(p.instrsPerExecution(), 0u);
        EXPECT_EQ(specProxyFromName(specProxyName(id)), id);
    }
}

TEST(SpecProxyDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(specProxyFromName("gcc"), ::testing::ExitedWithCode(1),
                "unknown SPEC proxy");
}

double
stIpc(SpecProxyId id, Cycle cycles)
{
    // FAME handles the warm-up (the L2 "rings" need a couple hundred
    // iterations before they reach their steady service level).
    (void)cycles;
    SyntheticProgram prog = makeSpecProxy(id);
    CoreParams params;
    FameParams fame;
    fame.minRepetitions = 5;
    fame.warmupRepetitions = 2;
    fame.maiv = 0.03;
    fame.warmupTolerance = 0.2;
    FameResult r = runFame(params, &prog, nullptr, 4, 0, fame);
    return r.thread[0].avgIpc();
}

TEST(SpecProxy, BoundClassesAreRight)
{
    // h264ref and applu are the high-IPC members of their pairs; mcf
    // and equake are the memory-bound low-IPC ones (paper Sec. 5.3.1).
    double h264 = stIpc(SpecProxyId::H264ref, 200000);
    double mcf = stIpc(SpecProxyId::Mcf, 200000);
    double applu = stIpc(SpecProxyId::Applu, 200000);
    double equake = stIpc(SpecProxyId::Equake, 200000);
    EXPECT_GT(h264, 2.5 * mcf);
    EXPECT_GT(applu, 2.0 * equake);
    EXPECT_GT(mcf, 0.03);
    EXPECT_LT(mcf, 0.4);
    EXPECT_GT(equake, 0.03);
    EXPECT_LT(equake, 0.4);
}

TEST(SpecProxy, PrioritizingH264refRaisesTotalIpc)
{
    // The heart of the paper's first case study.
    SyntheticProgram h = makeSpecProxy(SpecProxyId::H264ref);
    SyntheticProgram m = makeSpecProxy(SpecProxyId::Mcf);
    CoreParams params;

    SmtCore base(params);
    base.attachThread(0, &h);
    base.attachThread(1, &m);
    base.run(400000);

    SmtCore boosted(params);
    boosted.attachThread(0, &h, 6);
    boosted.attachThread(1, &m, 2);
    boosted.run(400000);

    EXPECT_GT(boosted.totalIpc(), 1.1 * base.totalIpc());
    EXPECT_GT(boosted.ipcOf(0), base.ipcOf(0));
    EXPECT_LT(boosted.ipcOf(1), base.ipcOf(1));
}

TEST(PipelineStages, SizesReflectTheImbalance)
{
    SyntheticProgram fft = makeFftStage();
    SyntheticProgram lu = makeLuStage();
    // FFT is the long stage (paper: 1.86 s vs 0.26 s).
    EXPECT_GT(fft.instrsPerExecution(), 3 * lu.instrsPerExecution());
}

TEST(Pipeline, SingleThreadIsSumOfStages)
{
    PipelineParams pp;
    pp.iterations = 3;
    pp.scale = 0.25;
    PipelineApp app(pp);
    CoreParams params;
    PipelineResult st = app.runSingleThread(params);
    EXPECT_FALSE(st.hitCycleLimit);
    EXPECT_NEAR(st.iterationCycles, st.fftCycles + st.luCycles, 1.0);
    EXPECT_GT(st.fftCycles, st.luCycles);
}

TEST(Pipeline, SmtBeatsSingleThread)
{
    // Paper Table 4: overlapping FFT and LU beats running them
    // back-to-back.
    PipelineParams pp;
    pp.iterations = 3;
    pp.scale = 0.25;
    PipelineApp app(pp);
    CoreParams params;
    PipelineResult st = app.runSingleThread(params);
    PipelineResult smt = app.runSmt(params);
    EXPECT_FALSE(smt.hitCycleLimit);
    EXPECT_LT(smt.iterationCycles, st.iterationCycles);
}

TEST(Pipeline, OverPrioritizationInvertsTheImbalance)
{
    // Paper Table 4 row (6,3): too much FFT priority makes LU the
    // bottleneck.
    CoreParams params;
    PipelineParams balanced;
    balanced.iterations = 3;
    balanced.scale = 0.25;
    PipelineResult base = PipelineApp(balanced).runSmt(params);

    PipelineParams extreme = balanced;
    extreme.prioFft = 6;
    extreme.prioLu = 3;
    PipelineResult inverted = PipelineApp(extreme).runSmt(params);

    EXPECT_GT(inverted.luCycles, 2.0 * base.luCycles);
    EXPECT_GT(inverted.iterationCycles, 0.95 * base.iterationCycles);
}

TEST(Pipeline, ModeratePriorityHelpsOrIsNeutral)
{
    CoreParams params;
    PipelineParams base;
    base.iterations = 3;
    base.scale = 0.25;
    PipelineResult b = PipelineApp(base).runSmt(params);

    PipelineParams plus = base;
    plus.prioFft = 5;
    PipelineResult p = PipelineApp(plus).runSmt(params);
    EXPECT_LT(p.iterationCycles, 1.1 * b.iterationCycles);
}

TEST(PipelineDeath, BadParamsAreFatal)
{
    PipelineParams pp;
    pp.iterations = 0;
    EXPECT_EXIT({ PipelineApp app(pp); }, ::testing::ExitedWithCode(1),
                "at least one");
    PipelineParams pq;
    pq.prioFft = 9;
    EXPECT_EXIT({ PipelineApp app(pq); }, ::testing::ExitedWithCode(1),
                "invalid priorities");
}

} // namespace
} // namespace p5
