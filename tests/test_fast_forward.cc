/**
 * @file
 * Equivalence suite for the idle-cycle fast-forward engine.
 *
 * The engine's contract is that every observable — the cycle count,
 * every registered stat, and the per-thread committed/execution
 * totals — is bit-identical whether the core ticks every cycle or
 * jumps over verified-idle gaps. These tests enforce the contract
 * over the paper's six presented micro-benchmarks and all 36
 * software-priority pairs, with and without the fatal p5check
 * invariant suite armed.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/smt_core.hh"
#include "fame/fame.hh"
#include "test_helpers.hh"
#include "ubench/ubench.hh"

namespace p5 {
namespace {

struct RunSnapshot
{
    Cycle cycle = 0;
    std::map<std::string, double> stats;
    std::array<std::uint64_t, num_hw_threads> committed{};
    std::array<std::uint64_t, num_hw_threads> executions{};
    std::uint64_t idleSkipped = 0;
};

/**
 * Run @p prog against itself for @p cycles at the given priority pair
 * and snapshot everything a caller can observe.
 */
RunSnapshot
runPair(const SyntheticProgram &prog, int prio_p, int prio_s,
        bool fast_forward, bool armed, Cycle cycles)
{
    CoreParams params;
    params.fastForward = fast_forward;
    SmtCore core(params);
    if (armed)
        test::withCheckers(core);
    core.attachThread(0, &prog, prio_p);
    core.attachThread(1, &prog, prio_s);
    core.run(cycles);

    RunSnapshot snap;
    snap.cycle = core.cycle();
    for (const std::string &name : core.stats().names())
        snap.stats.emplace(name, core.stats().value(name));
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        snap.committed[static_cast<size_t>(t)] = core.committedOf(t);
        snap.executions[static_cast<size_t>(t)] = core.executionsOf(t);
    }
    snap.idleSkipped = core.idleCyclesSkipped();
    return snap;
}

void
expectIdentical(const RunSnapshot &fast, const RunSnapshot &slow,
                const std::string &label)
{
    EXPECT_EQ(fast.cycle, slow.cycle) << label;
    ASSERT_EQ(fast.stats.size(), slow.stats.size()) << label;
    for (const auto &[name, value] : slow.stats) {
        auto it = fast.stats.find(name);
        ASSERT_NE(it, fast.stats.end()) << label << " missing " << name;
        EXPECT_EQ(it->second, value) << label << " stat " << name;
    }
    for (size_t t = 0; t < num_hw_threads; ++t) {
        EXPECT_EQ(fast.committed[t], slow.committed[t])
            << label << " committed thread " << t;
        EXPECT_EQ(fast.executions[t], slow.executions[t])
            << label << " executions thread " << t;
    }
    EXPECT_EQ(slow.idleSkipped, 0u) << label;
}

/**
 * The headline equivalence sweep: six benchmarks x 36 priority pairs,
 * fast-forward on vs off, every registered stat compared bit-exact.
 */
TEST(FastForward, BitIdenticalStatsAcrossAllPriorityPairs)
{
    constexpr Cycle run_cycles = 2500;
    for (UbenchId id : presentedUbench()) {
        const SyntheticProgram prog = makeUbench(id, 0.25);
        for (int prio_p = 1; prio_p <= 6; ++prio_p) {
            for (int prio_s = 1; prio_s <= 6; ++prio_s) {
                const std::string label =
                    std::string(ubenchName(id)) + " (" +
                    std::to_string(prio_p) + "," +
                    std::to_string(prio_s) + ")";
                RunSnapshot slow = runPair(prog, prio_p, prio_s,
                                           false, false, run_cycles);
                RunSnapshot fast = runPair(prog, prio_p, prio_s,
                                           true, false, run_cycles);
                expectIdentical(fast, slow, label);
            }
        }
    }
}

/**
 * Same sweep with the fatal p5check suite armed on the fast-forwarded
 * core: the skip-aware checkers independently verify each bulk jump
 * (no decode activity, exact forfeit conservation) and panic on any
 * deviation. All six presented benchmarks cover all 36 pairs, so the
 * adaptive probe policy is exercised across the whole spectrum from
 * compute-bound (probes rarely arm) to DRAM-bound (probes arm and
 * skip constantly).
 */
TEST(FastForward, SkipAwareCheckersAcceptAllPriorityPairs)
{
    constexpr Cycle run_cycles = 2500;
    for (UbenchId id : presentedUbench()) {
        const SyntheticProgram prog = makeUbench(id, 0.25);
        for (int prio_p = 1; prio_p <= 6; ++prio_p) {
            for (int prio_s = 1; prio_s <= 6; ++prio_s) {
                const std::string label =
                    std::string(ubenchName(id)) + " armed (" +
                    std::to_string(prio_p) + "," +
                    std::to_string(prio_s) + ")";
                RunSnapshot slow = runPair(prog, prio_p, prio_s,
                                           false, true, run_cycles);
                RunSnapshot fast = runPair(prog, prio_p, prio_s,
                                           true, true, run_cycles);
                expectIdentical(fast, slow, label);
            }
        }
    }
}

/** Every presented benchmark also passes armed at the default pair. */
TEST(FastForward, SkipAwareCheckersAcceptAllBenchmarks)
{
    constexpr Cycle run_cycles = 2500;
    for (UbenchId id : presentedUbench()) {
        const SyntheticProgram prog = makeUbench(id, 0.25);
        RunSnapshot slow = runPair(prog, 4, 4, false, true, run_cycles);
        RunSnapshot fast = runPair(prog, 4, 4, true, true, run_cycles);
        expectIdentical(fast, slow, std::string(ubenchName(id)) +
                                        " armed (4,4)");
    }
}

/**
 * FAME-level equivalence: the full convergence loop (warmup detection,
 * repetition accounting, MAIV convergence) lands on exactly the same
 * measurement with fast-forward on and off.
 */
TEST(FastForward, FameRunsAreEquivalent)
{
    const SyntheticProgram prog = makeUbench(UbenchId::LdintMem, 0.25);
    FameParams fame;
    fame.minRepetitions = 3;
    fame.warmupRepetitions = 1;
    fame.maxCycles = 2'000'000;

    CoreParams fast_params;
    fast_params.fastForward = true;
    CoreParams slow_params;
    slow_params.fastForward = false;

    FameResult fast = runFame(fast_params, &prog, &prog, 4, 4, fame);
    FameResult slow = runFame(slow_params, &prog, &prog, 4, 4, fame);

    EXPECT_EQ(fast.totalCycles, slow.totalCycles);
    EXPECT_EQ(fast.converged, slow.converged);
    EXPECT_EQ(fast.hitCycleLimit, slow.hitCycleLimit);
    for (size_t t = 0; t < num_hw_threads; ++t) {
        EXPECT_EQ(fast.thread[t].present, slow.thread[t].present);
        EXPECT_EQ(fast.thread[t].executions, slow.thread[t].executions);
        EXPECT_EQ(fast.thread[t].accountedCycles,
                  slow.thread[t].accountedCycles);
        EXPECT_EQ(fast.thread[t].accountedInstrs,
                  slow.thread[t].accountedInstrs);
    }
}

/**
 * runUntilExecutions(max_cycles = never_cycle) used to overflow the
 * deadline (cycle_ + max_cycles wrapped) and return immediately; the
 * saturated limit must let the run proceed to the target.
 */
TEST(FastForward, RunUntilExecutionsSaturatesMaxCycles)
{
    const SyntheticProgram prog = test::independentAlus(1000);
    SmtCore core{CoreParams{}};
    core.attachThread(0, &prog, 4);
    EXPECT_TRUE(core.runUntilExecutions(0, 100, never_cycle));
    EXPECT_GE(core.executionsOf(0), 100u);

    // Also from a non-zero starting cycle (the wrap that bit).
    SmtCore core2{CoreParams{}};
    core2.attachThread(0, &prog, 4);
    core2.run(50);
    EXPECT_TRUE(core2.runUntilExecutions(0, 100, never_cycle));
}

/**
 * Sanity: on a DRAM-bound pair most cycles are idle waits, so the
 * engine must actually skip a majority of them (this is where the
 * wall-clock win comes from).
 */
TEST(FastForward, SkipsMajorityOfMemoryBoundCycles)
{
    const SyntheticProgram prog = makeUbench(UbenchId::LdintMem, 0.25);
    CoreParams params;
    SmtCore core(params);
    core.attachThread(0, &prog, 4);
    core.attachThread(1, &prog, 4);
    core.run(20000);
    EXPECT_GT(core.idleCyclesSkipped(), 10000u);
}

/**
 * Adaptive probing: a compute-bound pair keeps the core busy nearly
 * every cycle, so the probe should almost never arm — the overhaul's
 * whole point is that busy runs no longer pay a per-cycle gate replay.
 * The memory-bound pair from SkipsMajorityOfMemoryBoundCycles still
 * probes (and skips) constantly, pinning the other end.
 */
TEST(FastForward, BusyWorkloadRarelyProbes)
{
    const SyntheticProgram prog = makeUbench(UbenchId::CpuInt, 0.25);
    CoreParams params;
    SmtCore core(params);
    core.attachThread(0, &prog, 4);
    core.attachThread(1, &prog, 4);
    core.run(20000);
    // Well under the one-probe-per-cycle of the pre-adaptive engine;
    // the streak hysteresis keeps 1-2 cycle bubbles from arming at all.
    EXPECT_LT(core.fastForwardProbes(), 2000u);
    EXPECT_EQ(core.idleCyclesSkipped(), 0u);
}

/** Memory-bound runs skip far more cycles than they spend probing. */
TEST(FastForward, MemoryBoundProbesPayForThemselves)
{
    const SyntheticProgram prog = makeUbench(UbenchId::LdintMem, 0.25);
    CoreParams params;
    SmtCore core(params);
    core.attachThread(0, &prog, 4);
    core.attachThread(1, &prog, 4);
    core.run(20000);
    EXPECT_GT(core.idleCyclesSkipped(), 10000u);
    EXPECT_GT(core.idleCyclesSkipped(), 4 * core.fastForwardProbes());
}

/**
 * Mispredict-heavy equivalence (the memoized re-fetch path): br_miss
 * squashes and rewinds the stream constantly, so every re-fetch runs
 * through the stream's cursor reposition and the pre-decoded table.
 * Stats must stay bit-identical between engine modes, armed included.
 */
TEST(FastForward, MispredictHeavyReplayIsBitIdentical)
{
    constexpr Cycle run_cycles = 10000;
    const SyntheticProgram prog = makeUbench(UbenchId::BrMiss, 0.25);
    RunSnapshot slow = runPair(prog, 4, 4, false, true, run_cycles);
    RunSnapshot fast = runPair(prog, 4, 4, true, true, run_cycles);
    expectIdentical(fast, slow, "br_miss armed (4,4)");
    // The run must actually exercise the squash/rewind machinery.
    EXPECT_GT(slow.stats.at("thread0.mispredicts"), 0.0);
    EXPECT_GT(slow.stats.at("thread0.squashed"), 0.0);
}

/** The escape hatch really disables the engine. */
TEST(FastForward, KnobDisablesSkipping)
{
    const SyntheticProgram prog = makeUbench(UbenchId::LdintMem, 0.25);
    CoreParams params;
    params.fastForward = false;
    SmtCore core(params);
    core.attachThread(0, &prog, 4);
    core.attachThread(1, &prog, 4);
    core.run(20000);
    EXPECT_EQ(core.idleCyclesSkipped(), 0u);
}

} // namespace
} // namespace p5
