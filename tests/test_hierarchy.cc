/**
 * @file
 * Unit tests for the cache hierarchy and the shared backside.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace p5 {
namespace {

HierarchyParams
tinyHierarchy()
{
    HierarchyParams p;
    p.l1d = CacheParams{"l1d", 1024, 2, 64, 2, 1};
    p.l2 = CacheParams{"l2", 8 * 1024, 4, 64, 13, 4};
    p.l3 = CacheParams{"l3", 64 * 1024, 4, 64, 87, 10};
    p.tlb = TlbParams{"dtlb", 16, 2, 4096, 100};
    p.dramLatency = 230;
    p.dramServiceGap = 24;
    return p;
}

TEST(Hierarchy, ColdAccessGoesToDram)
{
    CacheHierarchy h(tinyHierarchy());
    MemAccessResult r = h.access(0, 4096, false, 0);
    EXPECT_EQ(r.level, MemLevel::Mem);
    EXPECT_TRUE(r.tlbMiss);
    // TLB walk (100) + DRAM (230).
    EXPECT_GE(r.doneCycle, 330u);
}

TEST(Hierarchy, FillsAllLevelsInclusively)
{
    CacheHierarchy h(tinyHierarchy());
    h.access(0, 0x2000, false, 0);
    EXPECT_EQ(h.probeLevel(0x2000), MemLevel::L1);
    EXPECT_TRUE(h.backside().l2().probe(0x2000));
    EXPECT_TRUE(h.backside().l3().probe(0x2000));
}

TEST(Hierarchy, L1HitIsFast)
{
    CacheHierarchy h(tinyHierarchy());
    h.access(0, 0x2000, false, 0);
    MemAccessResult r = h.access(0, 0x2000, false, 1000);
    EXPECT_EQ(r.level, MemLevel::L1);
    EXPECT_FALSE(r.tlbMiss);
    EXPECT_EQ(r.doneCycle, 1002u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    auto params = tinyHierarchy();
    CacheHierarchy h(params);
    // Fill L1 (1 KiB / 64B = 16 lines) twice over to evict line 0.
    for (Addr a = 0; a < 2 * 1024; a += 64)
        h.access(0, a, false, 0);
    EXPECT_NE(h.probeLevel(0), MemLevel::L1);
    MemAccessResult r = h.access(0, 0, false, 10000);
    EXPECT_EQ(r.level, MemLevel::L2);
}

TEST(Hierarchy, PerThreadTlbs)
{
    CacheHierarchy h(tinyHierarchy());
    h.access(0, 0x4000, false, 0);
    EXPECT_FALSE(h.wouldTlbMiss(0, 0x4000));
    EXPECT_TRUE(h.wouldTlbMiss(1, 0x4000));
    EXPECT_EQ(h.tlbMissesOf(0), 1u);
    EXPECT_EQ(h.tlbMissesOf(1), 0u);
}

TEST(Hierarchy, PerThreadMissCounters)
{
    CacheHierarchy h(tinyHierarchy());
    h.access(1, 0x8000, false, 0);
    EXPECT_EQ(h.l1MissesOf(1), 1u);
    EXPECT_EQ(h.beyondL2Of(1), 1u);
    EXPECT_EQ(h.l1MissesOf(0), 0u);
}

TEST(Hierarchy, SharedBacksideSeesBothFrontends)
{
    auto params = tinyHierarchy();
    MemBackside shared(params);
    CacheHierarchy core0(params, &shared);
    CacheHierarchy core1(params, &shared);

    core0.access(0, 0xA000, false, 0);
    // Core 1 misses its own L1 but hits the shared L2.
    MemAccessResult r = core1.access(0, 0xA000, false, 1000);
    EXPECT_EQ(r.level, MemLevel::L2);
}

TEST(Hierarchy, DramBandwidthGate)
{
    auto params = tinyHierarchy();
    CacheHierarchy h(params);
    // Warm the TLB page so the measured pair has no walk skew.
    h.access(0, 1ull << 20, false, 0);
    MemAccessResult a = h.access(0, (1ull << 20) + 64, false, 500);
    MemAccessResult b = h.access(0, (1ull << 20) + 128, false, 500);
    EXPECT_FALSE(a.tlbMiss);
    EXPECT_EQ(a.level, MemLevel::Mem);
    // Second DRAM access waits one service gap.
    EXPECT_EQ(b.doneCycle - a.doneCycle,
              static_cast<Cycle>(params.dramServiceGap));
}

TEST(Hierarchy, FlushAllDropsEverything)
{
    CacheHierarchy h(tinyHierarchy());
    h.access(0, 0x2000, false, 0);
    h.flushAll();
    EXPECT_EQ(h.probeLevel(0x2000), MemLevel::Mem);
    EXPECT_TRUE(h.wouldTlbMiss(0, 0x2000));
}

TEST(Hierarchy, LevelNames)
{
    EXPECT_STREQ(memLevelName(MemLevel::L1), "L1");
    EXPECT_STREQ(memLevelName(MemLevel::Mem), "Mem");
}

TEST(Hierarchy, StoreFollowsLoadPath)
{
    CacheHierarchy h(tinyHierarchy());
    MemAccessResult r = h.access(0, 0x3000, true, 0);
    EXPECT_EQ(r.level, MemLevel::Mem);
    // Write-allocate: the line is now resident.
    EXPECT_EQ(h.probeLevel(0x3000), MemLevel::L1);
}

} // namespace
} // namespace p5
