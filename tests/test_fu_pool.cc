/**
 * @file
 * Unit tests for the functional-unit pool.
 */

#include <gtest/gtest.h>

#include "core/fu_pool.hh"

namespace p5 {
namespace {

FuPool
makePool()
{
    // 2 FX, 2 FP, 2 LS, 1 BR.
    const int counts[static_cast<int>(FuClass::NumFuClasses)] = {2, 2, 2,
                                                                 1, 0};
    return FuPool(counts);
}

TEST(FuPool, AcquireUpToCount)
{
    FuPool pool = makePool();
    EXPECT_TRUE(pool.tryAcquire(FuClass::FX, 0, 1));
    EXPECT_TRUE(pool.tryAcquire(FuClass::FX, 0, 1));
    EXPECT_FALSE(pool.tryAcquire(FuClass::FX, 0, 1));
}

TEST(FuPool, UnitsFreeAfterOccupancy)
{
    FuPool pool = makePool();
    pool.tryAcquire(FuClass::FX, 0, 3);
    EXPECT_EQ(pool.freeUnits(FuClass::FX, 0), 1);
    EXPECT_EQ(pool.freeUnits(FuClass::FX, 2), 1);
    EXPECT_EQ(pool.freeUnits(FuClass::FX, 3), 2);
}

TEST(FuPool, OccupancyBlocksReuse)
{
    FuPool pool = makePool();
    EXPECT_TRUE(pool.tryAcquire(FuClass::BR, 0, 2));
    EXPECT_FALSE(pool.tryAcquire(FuClass::BR, 1, 1));
    EXPECT_TRUE(pool.tryAcquire(FuClass::BR, 2, 1));
}

TEST(FuPool, NoneClassAlwaysSucceeds)
{
    FuPool pool = makePool();
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(pool.tryAcquire(FuClass::None, 0, 1));
    EXPECT_EQ(pool.acquisitions(FuClass::None), 100u);
}

TEST(FuPool, UnitCounts)
{
    FuPool pool = makePool();
    EXPECT_EQ(pool.unitCount(FuClass::FX), 2);
    EXPECT_EQ(pool.unitCount(FuClass::BR), 1);
    EXPECT_EQ(pool.unitCount(FuClass::None), 0);
}

TEST(FuPool, ResetFreesEverything)
{
    FuPool pool = makePool();
    pool.tryAcquire(FuClass::LS, 0, 100);
    pool.tryAcquire(FuClass::LS, 0, 100);
    pool.reset();
    EXPECT_EQ(pool.freeUnits(FuClass::LS, 0), 2);
}

TEST(FuPool, AcquisitionCounting)
{
    FuPool pool = makePool();
    pool.tryAcquire(FuClass::FP, 0, 1);
    pool.tryAcquire(FuClass::FP, 0, 1);
    pool.tryAcquire(FuClass::FP, 0, 1); // fails
    EXPECT_EQ(pool.acquisitions(FuClass::FP), 2u);
}

} // namespace
} // namespace p5
