/**
 * @file
 * Unit tests for the ISA module: op classes, latencies, FU mapping,
 * dynamic instruction helpers.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/op_class.hh"

namespace p5 {
namespace {

TEST(OpClass, NamesRoundTrip)
{
    for (int i = 0; i < num_op_classes; ++i) {
        auto oc = static_cast<OpClass>(i);
        EXPECT_EQ(opClassFromName(opClassName(oc)), oc);
    }
}

TEST(OpClassDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(opClassFromName("NotAnOp"), ::testing::ExitedWithCode(1),
                "unknown op class");
}

TEST(OpClass, FuMapping)
{
    EXPECT_EQ(fuClassOf(OpClass::IntAlu), FuClass::FX);
    EXPECT_EQ(fuClassOf(OpClass::IntMul), FuClass::FX);
    EXPECT_EQ(fuClassOf(OpClass::FpAlu), FuClass::FP);
    EXPECT_EQ(fuClassOf(OpClass::Load), FuClass::LS);
    EXPECT_EQ(fuClassOf(OpClass::Store), FuClass::LS);
    EXPECT_EQ(fuClassOf(OpClass::Branch), FuClass::BR);
    EXPECT_EQ(fuClassOf(OpClass::Nop), FuClass::None);
    EXPECT_EQ(fuClassOf(OpClass::PrioNop), FuClass::None);
}

TEST(OpClass, LatenciesArePositive)
{
    for (int i = 0; i < num_op_classes; ++i)
        EXPECT_GE(opLatency(static_cast<OpClass>(i)), 1);
}

TEST(OpClass, RelativeLatencies)
{
    // Long-latency classes must actually be longer: the paper's whole
    // characterization rests on this distinction.
    EXPECT_GT(opLatency(OpClass::IntMul), opLatency(OpClass::IntAlu));
    EXPECT_GT(opLatency(OpClass::FpAlu), opLatency(OpClass::IntAlu));
    EXPECT_GT(opLatency(OpClass::IntDiv), opLatency(OpClass::IntMul));
    EXPECT_GT(opLatency(OpClass::FpDiv), opLatency(OpClass::FpMul));
}

TEST(OpClass, Predicates)
{
    EXPECT_TRUE(isMemOp(OpClass::Load));
    EXPECT_TRUE(isMemOp(OpClass::Store));
    EXPECT_FALSE(isMemOp(OpClass::IntAlu));
    EXPECT_TRUE(isFpOp(OpClass::FpMul));
    EXPECT_FALSE(isFpOp(OpClass::Load));
}

TEST(DynInstr, MispredictedOnlyForBranches)
{
    DynInstr di;
    di.op = OpClass::Branch;
    di.branchTaken = true;
    di.branchPredictedTaken = false;
    EXPECT_TRUE(di.mispredicted());
    di.branchPredictedTaken = true;
    EXPECT_FALSE(di.mispredicted());
    di.op = OpClass::IntAlu;
    di.branchPredictedTaken = false;
    EXPECT_FALSE(di.mispredicted());
}

TEST(DynInstr, ToStringMentionsClassAndThread)
{
    DynInstr di;
    di.tid = 1;
    di.seq = 42;
    di.op = OpClass::Load;
    di.dst = 5;
    di.addr = 0x1000;
    std::string s = di.toString();
    EXPECT_NE(s.find("t1"), std::string::npos);
    EXPECT_NE(s.find("42"), std::string::npos);
    EXPECT_NE(s.find("Load"), std::string::npos);
}

TEST(DynInstr, Predicates)
{
    DynInstr di;
    di.op = OpClass::Store;
    EXPECT_TRUE(di.isStore());
    EXPECT_FALSE(di.isLoad());
    EXPECT_FALSE(di.isBranch());
}

} // namespace
} // namespace p5
