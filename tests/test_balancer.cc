/**
 * @file
 * Unit tests for the dynamic hardware resource balancer.
 */

#include <gtest/gtest.h>

#include "core/balancer.hh"

namespace p5 {
namespace {

struct BalancerFixture
{
    explicit BalancerFixture(BalancerParams bp = BalancerParams{})
        : gct(20), lmq(8), balancer(bp)
    {
        params.mem.tlb.walkLatency = 100;
        hierarchy = std::make_unique<CacheHierarchy>(params.mem);
        lsu = std::make_unique<Lsu>(params, hierarchy.get(), &lmq);
        allocator = std::make_unique<DecodeSlotAllocator>(5, 2);
        allocator->setPriorities(4, 4);
        balancer.setPriorityView(allocator.get());
        lsu->setPriorityView(allocator.get());
    }

    CoreParams params;
    Gct gct;
    Lmq lmq;
    std::unique_ptr<CacheHierarchy> hierarchy;
    std::unique_ptr<Lsu> lsu;
    std::unique_ptr<DecodeSlotAllocator> allocator;
    Balancer balancer;
};

TEST(Balancer, QuietCoreNoBlocks)
{
    BalancerFixture f;
    BalancerDecision d =
        f.balancer.evaluate(f.gct, f.lmq, *f.lsu, true, 0);
    EXPECT_FALSE(d.block[0]);
    EXPECT_FALSE(d.block[1]);
}

TEST(Balancer, GctHogIsBlocked)
{
    BalancerFixture f;
    // Thread 0 holds 12 of 20 groups: > 0.55 * 20 = 11.
    for (int g = 0; g < 12; ++g)
        f.gct.allocate(0, static_cast<SeqNum>(g) * 5, 5);
    BalancerDecision d =
        f.balancer.evaluate(f.gct, f.lmq, *f.lsu, true, 0);
    EXPECT_TRUE(d.block[0]);
    EXPECT_FALSE(d.block[1]);
    EXPECT_FALSE(d.flush[0]); // default action is Stall
    EXPECT_EQ(f.balancer.gctBlocksOf(0), 1u);
}

TEST(Balancer, FlushActionSetsFlush)
{
    BalancerParams bp;
    bp.action = BalanceAction::Flush;
    BalancerFixture f(bp);
    for (int g = 0; g < 12; ++g)
        f.gct.allocate(0, static_cast<SeqNum>(g) * 5, 5);
    BalancerDecision d =
        f.balancer.evaluate(f.gct, f.lmq, *f.lsu, true, 0);
    EXPECT_TRUE(d.flush[0]);
    EXPECT_EQ(f.balancer.flushesOf(0), 1u);
}

TEST(Balancer, NoHoggingWithoutSibling)
{
    BalancerFixture f;
    for (int g = 0; g < 15; ++g)
        f.gct.allocate(0, static_cast<SeqNum>(g) * 5, 5);
    BalancerDecision d =
        f.balancer.evaluate(f.gct, f.lmq, *f.lsu, false, 0);
    EXPECT_FALSE(d.block[0]);
}

TEST(Balancer, LmqHogIsBlocked)
{
    BalancerFixture f;
    for (int i = 0; i < 6; ++i)
        f.lmq.reserve(1, 0, 0, 1000);
    BalancerDecision d =
        f.balancer.evaluate(f.gct, f.lmq, *f.lsu, true, 0);
    EXPECT_TRUE(d.block[1]);
    EXPECT_EQ(f.balancer.lmqBlocksOf(1), 1u);
}

TEST(Balancer, TlbWalkBlocksDecode)
{
    BalancerFixture f;
    f.lsu->issueLoad(0, 0x1000, 0); // triggers a 100-cycle walk
    BalancerDecision d =
        f.balancer.evaluate(f.gct, f.lmq, *f.lsu, true, 50);
    EXPECT_TRUE(d.block[0]);
    d = f.balancer.evaluate(f.gct, f.lmq, *f.lsu, true, 150);
    EXPECT_FALSE(d.block[0]);
}

TEST(Balancer, DisabledDoesNothing)
{
    BalancerParams bp;
    bp.enabled = false;
    BalancerFixture f(bp);
    for (int g = 0; g < 18; ++g)
        f.gct.allocate(0, static_cast<SeqNum>(g) * 5, 5);
    BalancerDecision d =
        f.balancer.evaluate(f.gct, f.lmq, *f.lsu, true, 0);
    EXPECT_FALSE(d.block[0]);
}

TEST(Balancer, GctThresholdScalesWithPriority)
{
    BalancerFixture f;
    EXPECT_DOUBLE_EQ(f.balancer.gctThresholdFor(0), 0.55);
    f.allocator->setPriorities(6, 2); // thread 0 share 31/32
    EXPECT_DOUBLE_EQ(f.balancer.gctThresholdFor(0), 0.85); // clamped
    EXPECT_DOUBLE_EQ(f.balancer.gctThresholdFor(1), 0.20); // clamped
    f.allocator->setPriorities(5, 4); // shares 3/4 and 1/4
    EXPECT_NEAR(f.balancer.gctThresholdFor(0), 0.55 * 1.5, 1e-9);
    EXPECT_NEAR(f.balancer.gctThresholdFor(1), 0.275, 1e-9);
}

TEST(Balancer, GctThresholdFixedWhenDisabled)
{
    BalancerParams bp;
    bp.priorityAwareGct = false;
    BalancerFixture f(bp);
    f.allocator->setPriorities(6, 1);
    EXPECT_DOUBLE_EQ(f.balancer.gctThresholdFor(1), 0.55);
}

TEST(Balancer, LmqThresholdScalesWithPriority)
{
    BalancerFixture f;
    EXPECT_EQ(f.balancer.lmqThresholdFor(0, 8), 6);
    f.allocator->setPriorities(6, 2);
    EXPECT_EQ(f.balancer.lmqThresholdFor(0, 8), 7); // clamped to cap-1
    EXPECT_EQ(f.balancer.lmqThresholdFor(1, 8), 1);
}

TEST(Balancer, MinorityGctCapIsTighter)
{
    BalancerFixture f;
    f.allocator->setPriorities(2, 6); // thread 0 minority: cap 0.2*20=4
    for (int g = 0; g < 5; ++g)
        f.gct.allocate(0, static_cast<SeqNum>(g) * 5, 5);
    BalancerDecision d =
        f.balancer.evaluate(f.gct, f.lmq, *f.lsu, true, 0);
    EXPECT_TRUE(d.block[0]);
}

} // namespace
} // namespace p5
