/**
 * @file
 * Unit tests for the synthetic-program model: patterns, builder,
 * program materialization, rewindable streams.
 */

#include <gtest/gtest.h>

#include "program/builder.hh"
#include "program/pattern.hh"
#include "program/program.hh"
#include "program/stream.hh"

namespace p5 {
namespace {

// --- patterns ------------------------------------------------------------

TEST(MemPattern, StridedWrap)
{
    MemPattern p;
    p.base = 1000;
    p.stride = 64;
    p.footprint = 256;
    EXPECT_EQ(p.addressAt(0), 1000u);
    EXPECT_EQ(p.addressAt(1), 1064u);
    EXPECT_EQ(p.addressAt(4), 1000u); // wrapped
}

TEST(MemPattern, StartOffset)
{
    MemPattern p;
    p.base = 0;
    p.stride = 8;
    p.footprint = 64;
    p.start = 16;
    EXPECT_EQ(p.addressAt(0), 16u);
    EXPECT_EQ(p.addressAt(6), 0u); // (16 + 48) % 64
}

TEST(MemPattern, ZeroStrideIsConstant)
{
    MemPattern p;
    p.base = 5;
    p.stride = 0;
    p.footprint = 4096;
    p.start = 128;
    for (std::uint64_t k = 0; k < 10; ++k)
        EXPECT_EQ(p.addressAt(k), 133u);
}

TEST(BranchPattern, AlwaysAndNever)
{
    BranchPattern t;
    t.kind = BranchKind::AlwaysTaken;
    BranchPattern n;
    n.kind = BranchKind::NeverTaken;
    for (std::uint64_t k = 0; k < 20; ++k) {
        EXPECT_TRUE(t.directionAt(k));
        EXPECT_FALSE(n.directionAt(k));
    }
}

TEST(BranchPattern, Periodic)
{
    BranchPattern p;
    p.kind = BranchKind::Periodic;
    p.period = 4;
    int taken = 0;
    for (std::uint64_t k = 0; k < 40; ++k)
        if (p.directionAt(k))
            ++taken;
    EXPECT_EQ(taken, 10);
    EXPECT_TRUE(p.directionAt(3));
    EXPECT_FALSE(p.directionAt(0));
}

TEST(BranchPattern, RandomIsDeterministicAndBalanced)
{
    BranchPattern p;
    p.kind = BranchKind::Random;
    p.takenProb = 0.5;
    p.seed = 77;
    int taken = 0;
    for (std::uint64_t k = 0; k < 10000; ++k) {
        bool d = p.directionAt(k);
        ASSERT_EQ(d, p.directionAt(k)); // pure function of k
        if (d)
            ++taken;
    }
    EXPECT_NEAR(taken / 10000.0, 0.5, 0.03);
}

TEST(BranchPattern, ToStringVariants)
{
    BranchPattern p;
    p.kind = BranchKind::Random;
    p.takenProb = 0.25;
    EXPECT_EQ(p.toString(), "random p=0.25");
    p.kind = BranchKind::AlwaysTaken;
    EXPECT_EQ(p.toString(), "always-taken");
}

// --- builder & program ---------------------------------------------------

SyntheticProgram
tinyProgram(std::uint64_t iterations = 3)
{
    ProgramBuilder b("tiny");
    int back = b.alwaysTaken();
    int mem = b.memPattern(0x100, 8, 64);
    b.beginPhase(iterations);
    b.intAlu(0, 1, 2);
    b.load(3, mem);
    b.branch(back);
    return b.build();
}

TEST(Builder, BuildsExpectedShape)
{
    SyntheticProgram p = tinyProgram();
    EXPECT_EQ(p.name(), "tiny");
    ASSERT_EQ(p.phases().size(), 1u);
    EXPECT_EQ(p.phases()[0].body.size(), 3u);
    EXPECT_EQ(p.instrsPerExecution(), 9u);
}

TEST(BuilderDeath, InstrBeforePhaseIsFatal)
{
    ProgramBuilder b("bad");
    EXPECT_EXIT(b.intAlu(0, 1), ::testing::ExitedWithCode(1),
                "before beginPhase");
}

TEST(BuilderDeath, BadPatternIdIsFatal)
{
    ProgramBuilder b("bad");
    b.beginPhase(1);
    EXPECT_EXIT(b.load(0, 5), ::testing::ExitedWithCode(1),
                "bad pattern id");
}

TEST(Program, MaterializeIsPureFunctionOfIndex)
{
    SyntheticProgram p = tinyProgram();
    for (SeqNum s = 0; s < 30; ++s) {
        DynInstr a = p.materialize(s, 0);
        DynInstr b = p.materialize(s, 0);
        EXPECT_EQ(a.op, b.op);
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.branchTaken, b.branchTaken);
        EXPECT_EQ(a.pc, b.pc);
    }
}

TEST(Program, AddressesAdvancePerIteration)
{
    SyntheticProgram p = tinyProgram();
    DynInstr first = p.materialize(1, 0);  // load, iteration 0
    DynInstr second = p.materialize(4, 0); // load, iteration 1
    EXPECT_EQ(first.addr + 8, second.addr);
}

TEST(Program, ExecutionsAt)
{
    SyntheticProgram p = tinyProgram(3); // 9 instrs per execution
    EXPECT_EQ(p.executionsAt(0), 0u);
    EXPECT_EQ(p.executionsAt(8), 0u);
    EXPECT_EQ(p.executionsAt(9), 1u);
    EXPECT_EQ(p.executionsAt(27), 3u);
}

TEST(Program, PcsAreDistinctAndStable)
{
    SyntheticProgram p = tinyProgram();
    DynInstr a = p.materialize(0, 0);
    DynInstr b = p.materialize(1, 0);
    DynInstr a2 = p.materialize(3, 0); // same static instr, next iter
    EXPECT_NE(a.pc, b.pc);
    EXPECT_EQ(a.pc, a2.pc);
}

TEST(Program, OpClassMixCountsIterations)
{
    SyntheticProgram p = tinyProgram(5);
    auto mix = p.opClassMix();
    EXPECT_EQ(mix[static_cast<int>(OpClass::IntAlu)], 5u);
    EXPECT_EQ(mix[static_cast<int>(OpClass::Load)], 5u);
    EXPECT_EQ(mix[static_cast<int>(OpClass::Branch)], 5u);
}

TEST(Program, MultiPhase)
{
    ProgramBuilder b("phased");
    b.beginPhase(2);
    b.intAlu(0, 1);
    b.beginPhase(3);
    b.fpAlu(32, 33);
    b.fpAlu(34, 32);
    SyntheticProgram p = b.build();
    EXPECT_EQ(p.instrsPerExecution(), 2u + 6u);
    // Index 0..1 phase 0; 2..7 phase 1.
    EXPECT_EQ(p.materialize(1, 0).op, OpClass::IntAlu);
    EXPECT_EQ(p.materialize(2, 0).op, OpClass::FpAlu);
    // Next execution starts over with phase 0.
    EXPECT_EQ(p.materialize(8, 0).op, OpClass::IntAlu);
}

TEST(ProgramDeath, EmptyProgramIsFatal)
{
    ProgramBuilder b("empty");
    EXPECT_EXIT(b.build(), ::testing::ExitedWithCode(1), "no phases");
}

// --- stream ----------------------------------------------------------------

TEST(Stream, FetchAdvancesAndRewinds)
{
    SyntheticProgram p = tinyProgram();
    InstrStream s(&p, 0);
    DynInstr i0 = s.fetch();
    DynInstr i1 = s.fetch();
    EXPECT_EQ(i0.seq, 0u);
    EXPECT_EQ(i1.seq, 1u);
    EXPECT_EQ(s.nextSeq(), 2u);

    s.rewindTo(1);
    DynInstr again = s.fetch();
    EXPECT_EQ(again.seq, 1u);
    EXPECT_EQ(again.op, i1.op);
    EXPECT_EQ(again.addr, i1.addr);
}

TEST(Stream, PeekDoesNotAdvance)
{
    SyntheticProgram p = tinyProgram();
    InstrStream s(&p, 1);
    DynInstr peeked = s.peek();
    DynInstr fetched = s.fetch();
    EXPECT_EQ(peeked.seq, fetched.seq);
    EXPECT_EQ(peeked.tid, 1);
}

TEST(Stream, RewindIsExactReplay)
{
    SyntheticProgram p = tinyProgram(100);
    InstrStream s(&p, 0);
    std::vector<DynInstr> first;
    for (int i = 0; i < 50; ++i)
        first.push_back(s.fetch());
    s.rewindTo(10);
    for (int i = 10; i < 50; ++i) {
        DynInstr d = s.fetch();
        EXPECT_EQ(d.addr, first[static_cast<size_t>(i)].addr);
        EXPECT_EQ(d.branchTaken,
                  first[static_cast<size_t>(i)].branchTaken);
    }
}

} // namespace
} // namespace p5
