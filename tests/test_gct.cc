/**
 * @file
 * Unit tests for the Global Completion Table.
 */

#include <gtest/gtest.h>

#include "core/gct.hh"

namespace p5 {
namespace {

TEST(Gct, AllocateAndRetire)
{
    Gct gct(4);
    EXPECT_TRUE(gct.hasFreeGroup());
    gct.allocate(0, 0, 5);
    gct.allocate(0, 5, 3);
    EXPECT_EQ(gct.occupancy(), 2);
    EXPECT_EQ(gct.occupancyOf(0), 2);
    EXPECT_EQ(gct.oldest(0).startSeq, 0u);
    EXPECT_EQ(gct.oldest(0).count, 5);
    gct.popOldest(0);
    EXPECT_EQ(gct.oldest(0).startSeq, 5u);
    EXPECT_EQ(gct.retired(), 1u);
}

TEST(Gct, SharedCapacity)
{
    Gct gct(3);
    gct.allocate(0, 0, 5);
    gct.allocate(1, 0, 5);
    gct.allocate(0, 5, 5);
    EXPECT_FALSE(gct.hasFreeGroup());
    EXPECT_EQ(gct.occupancyOf(0), 2);
    EXPECT_EQ(gct.occupancyOf(1), 1);
}

TEST(Gct, SquashDropsYoungerGroups)
{
    Gct gct(8);
    gct.allocate(0, 0, 5);
    gct.allocate(0, 5, 5);
    gct.allocate(0, 10, 5);
    gct.squash(0, 7); // keep seqs 0..7
    EXPECT_EQ(gct.occupancyOf(0), 2);
    EXPECT_EQ(gct.groupsOf(0).back().startSeq, 5u);
    EXPECT_EQ(gct.groupsOf(0).back().count, 3); // truncated at seq 7
}

TEST(Gct, SquashFromExactBoundary)
{
    Gct gct(8);
    gct.allocate(0, 0, 5);
    gct.allocate(0, 5, 5);
    gct.squashFrom(0, 5); // drop the whole second group
    EXPECT_EQ(gct.occupancyOf(0), 1);
    EXPECT_EQ(gct.groupsOf(0).back().count, 5);
}

TEST(Gct, SquashFromZeroClearsThread)
{
    Gct gct(8);
    gct.allocate(0, 0, 4);
    gct.allocate(0, 4, 4);
    gct.squashFrom(0, 0);
    EXPECT_TRUE(gct.empty(0));
}

TEST(Gct, SquashLeavesOtherThreadAlone)
{
    Gct gct(8);
    gct.allocate(0, 0, 5);
    gct.allocate(1, 0, 5);
    gct.squashFrom(0, 0);
    EXPECT_TRUE(gct.empty(0));
    EXPECT_EQ(gct.occupancyOf(1), 1);
}

TEST(Gct, ClearThread)
{
    Gct gct(8);
    gct.allocate(0, 0, 5);
    gct.allocate(0, 5, 5);
    gct.clearThread(0);
    EXPECT_TRUE(gct.empty(0));
    EXPECT_TRUE(gct.hasFreeGroup());
}

TEST(GctDeath, OverflowIsPanic)
{
    Gct gct(1);
    gct.allocate(0, 0, 5);
    EXPECT_DEATH(gct.allocate(0, 5, 5), "no free group");
}

TEST(GctDeath, NonContiguousIsPanic)
{
    Gct gct(4);
    gct.allocate(0, 0, 5);
    EXPECT_DEATH(gct.allocate(0, 7, 5), "not contiguous");
}

TEST(GctDeath, OldestOnEmptyIsPanic)
{
    Gct gct(4);
    EXPECT_DEATH(gct.oldest(0), "empty");
}

} // namespace
} // namespace p5
