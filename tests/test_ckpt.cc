/**
 * @file
 * Tests of the checkpoint/fork execution subsystem: warm-key identity
 * (priorities and measurement knobs excluded), bit-identical
 * restored-vs-cold measurements across the full priority-pair matrix,
 * the on-disk checkpoint format's corruption/truncation/foreign-key
 * quarantine discipline, version-pinning refusal, CkptManager
 * warm/fork accounting, and invariant-checker re-arming on a restored
 * core.
 */

#include <sys/stat.h>

#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/check.hh"
#include "ckpt/ckpt.hh"
#include "ckpt/ckpt_io.hh"
#include "ckpt/ckpt_manager.hh"
#include "config/config.hh"
#include "core/smt_core.hh"
#include "exp/experiments.hh"
#include "fame/fame.hh"
#include "fame/sim_job.hh"
#include "ubench/ubench.hh"

namespace p5 {
namespace {

FameParams
fastFame()
{
    FameParams fame;
    fame.minRepetitions = 3;
    fame.warmupRepetitions = 1;
    fame.maiv = 0.05;
    fame.warmupTolerance = 0.25;
    return fame;
}

SimJob
fastPair(UbenchId p, UbenchId s, int prio_p, int prio_s)
{
    return SimJob::famePair(ProgramSpec::ubench(p, 0.5),
                            ProgramSpec::ubench(s, 0.5), prio_p, prio_s,
                            CoreParams{}, fastFame());
}

void
expectIdentical(const FameResult &a, const FameResult &b)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.hitCycleLimit, b.hitCycleLimit);
    for (std::size_t t = 0;
         t < static_cast<std::size_t>(num_hw_threads); ++t) {
        SCOPED_TRACE(t);
        EXPECT_EQ(a.thread[t].present, b.thread[t].present);
        EXPECT_EQ(a.thread[t].executions, b.thread[t].executions);
        EXPECT_EQ(a.thread[t].accountedCycles,
                  b.thread[t].accountedCycles);
        EXPECT_EQ(a.thread[t].accountedInstrs,
                  b.thread[t].accountedInstrs);
    }
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "p5sim_ckpt_" + name;
}

/** Per-test checkpoint directory, cleared of any previous run's files. */
std::string
freshCkptDir(const std::string &name)
{
    const std::string dir = tempPath(name);
    DIR *top = ::opendir(dir.c_str());
    if (top) {
        while (const dirent *entry = ::readdir(top)) {
            const std::string sub = entry->d_name;
            if (sub == "." || sub == "..")
                continue;
            const std::string subpath = dir + "/" + sub;
            DIR *shard = ::opendir(subpath.c_str());
            if (shard) {
                while (const dirent *file = ::readdir(shard)) {
                    const std::string fname = file->d_name;
                    if (fname != "." && fname != "..")
                        std::remove((subpath + "/" + fname).c_str());
                }
                ::closedir(shard);
                ::rmdir(subpath.c_str());
            } else {
                std::remove(subpath.c_str());
            }
        }
        ::closedir(top);
        ::rmdir(dir.c_str());
    }
    return dir;
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

// --- warm-key identity -------------------------------------------------

TEST(WarmKey, ExcludesPrioritiesAndMeasurementKnobs)
{
    const SimJob base = fastPair(UbenchId::CpuInt, UbenchId::LdintMem,
                                 4, 4);

    // All 36 priority pairs of one pair-mix collapse onto one key —
    // the property the whole subsystem rests on.
    for (int p = 1; p <= 6; ++p)
        for (int s = 1; s <= 6; ++s)
            EXPECT_EQ(fastPair(UbenchId::CpuInt, UbenchId::LdintMem, p,
                               s)
                          .warmKey(),
                      base.warmKey());

    // Measurement-only FAME knobs don't reach the warm phase.
    {
        SimJob j = base;
        j.fame.minRepetitions = 50;
        j.fame.maiv = 0.001;
        EXPECT_EQ(j.warmKey(), base.warmKey());
        EXPECT_NE(j.key(), base.key());
    }

    // Everything the warm trajectory depends on does change the key.
    {
        SimJob j = base;
        j.fame.warmupRepetitions = 2;
        EXPECT_NE(j.warmKey(), base.warmKey());
    }
    {
        SimJob j = base;
        j.core.lmqEntries = 16;
        EXPECT_NE(j.warmKey(), base.warmKey());
    }
    EXPECT_NE(fastPair(UbenchId::CpuFp, UbenchId::LdintMem, 4, 4)
                  .warmKey(),
              base.warmKey());
    EXPECT_NE(SimJob::fameSingle(ProgramSpec::ubench(UbenchId::CpuInt,
                                                     0.5),
                                 CoreParams{}, fastFame(), 4)
                  .warmKey(),
              base.warmKey());
}

TEST(WarmKey, NonFameJobsAreFatal)
{
    PipelineParams pp;
    const SimJob job = SimJob::pipelineSmt(pp, CoreParams{});
    EXPECT_EXIT(job.warmKey(), ::testing::ExitedWithCode(1),
                "non-FAME");
}

TEST(WarmKey, ConfigWarmFingerprintExcludesMeasurementKnobs)
{
    ExpConfig a;
    ConfigTree ta(a);
    ta.validate();
    ta.stampTag();

    // Measurement-only paths: the full fingerprint moves, the warm
    // fingerprint (and so every warm key stamped from it) does not.
    for (const char *assignment :
         {"fame.min_repetitions=37", "fame.maiv=0.002",
          "exp.seed=123"}) {
        SCOPED_TRACE(assignment);
        ExpConfig b;
        ConfigTree tb(b);
        tb.applyOverride(assignment);
        tb.validate();
        tb.stampTag();
        EXPECT_NE(b.configTag, a.configTag);
        EXPECT_EQ(b.warmTag, a.warmTag);
    }

    // A core-geometry path moves both.
    {
        ExpConfig b;
        ConfigTree tb(b);
        tb.applyOverride("core.lmq_entries=16");
        tb.validate();
        tb.stampTag();
        EXPECT_NE(b.configTag, a.configTag);
        EXPECT_NE(b.warmTag, a.warmTag);
    }
}

// --- restored-vs-cold equivalence --------------------------------------

/**
 * The acceptance sweep: every presented benchmark paired against a
 * fixed partner, all 36 priority pairs, each measured twice — once
 * cold (inline warm-up) and once through a shared CkptManager (one
 * warm-up per pair-mix, 35 forks). Every measurement must be
 * bit-identical; the manager must account one warm per mix.
 */
TEST(CkptEquivalence, RestoredRunsMatchColdAcrossThePairMatrix)
{
    CkptManager mgr;
    std::uint64_t mixes = 0;
    for (const UbenchId bench : presentedUbench()) {
        SCOPED_TRACE(ubenchName(bench));
        ++mixes;
        for (int p = 1; p <= 6; ++p) {
            for (int s = 1; s <= 6; ++s) {
                SCOPED_TRACE(p * 10 + s);
                const SimJob job =
                    fastPair(bench, UbenchId::LdintMem, p, s);
                const SimResult cold = job.execute(nullptr);
                const SimResult forked = job.execute(&mgr);
                expectIdentical(cold.fame, forked.fame);
            }
        }
        // One warm-up per pair-mix, however many pairs share it.
        EXPECT_EQ(mgr.warms(), mixes);
        EXPECT_EQ(mgr.memForks(), mixes * 35);
    }
}

TEST(CkptEquivalence, SingleThreadJobsForkToo)
{
    CkptManager mgr;
    for (int prio : {2, 4, 6}) {
        const SimJob job = SimJob::fameSingle(
            ProgramSpec::ubench(UbenchId::LdintL2, 0.5), CoreParams{},
            fastFame(), prio);
        expectIdentical(job.execute(nullptr).fame,
                        job.execute(&mgr).fame);
    }
    EXPECT_EQ(mgr.warms(), 1u);
    EXPECT_EQ(mgr.memForks(), 2u);
}

// --- persistent store --------------------------------------------------

TEST(CkptStoreTest, RoundTripAcrossManagers)
{
    const std::string dir = freshCkptDir("roundtrip");
    const SimJob job =
        fastPair(UbenchId::CpuInt, UbenchId::LdintL2, 4, 4);
    const SimResult cold = job.execute(nullptr);

    {
        CkptStore store(dir);
        CkptManager mgr;
        mgr.setStore(&store);
        expectIdentical(cold.fame, job.execute(&mgr).fame);
        EXPECT_EQ(mgr.warms(), 1u);
        EXPECT_EQ(store.writes(), 1u);
        EXPECT_TRUE(fileExists(
            store.pathFor(ckptFingerprintHex(job.warmKey()))));
    }

    // A second process (fresh manager, fresh store handle) forks from
    // disk instead of warming, with bit-identical stats.
    {
        CkptStore store(dir);
        CkptManager mgr;
        mgr.setStore(&store);
        expectIdentical(cold.fame, job.execute(&mgr).fame);
        EXPECT_EQ(mgr.warms(), 0u);
        EXPECT_EQ(mgr.storeForks(), 1u);
        EXPECT_EQ(store.hits(), 1u);
    }
}

/** Write one checkpoint for @p job, then return its on-disk path. */
std::string
publishOne(const std::string &dir, const SimJob &job)
{
    CkptStore store(dir);
    CkptManager mgr;
    mgr.setStore(&store);
    job.execute(&mgr);
    return store.pathFor(ckptFingerprintHex(job.warmKey()));
}

TEST(CkptStoreTest, TruncatedCheckpointIsQuarantinedAndRewarmed)
{
    const std::string dir = freshCkptDir("truncated");
    const SimJob job =
        fastPair(UbenchId::CpuInt, UbenchId::BrHit, 4, 4);
    const std::string path = publishOne(dir, job);
    const SimResult cold = job.execute(nullptr);

    // Truncate the payload (keep the header line intact).
    {
        std::ifstream is(path, std::ios::binary);
        std::string header;
        std::getline(is, header);
        is.close();
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << header << '\n' << "short";
    }

    CkptStore store(dir);
    Checkpoint out;
    EXPECT_FALSE(store.load(job.warmKey(), out));
    EXPECT_EQ(store.quarantined(), 1u);
    EXPECT_FALSE(fileExists(path));
    EXPECT_TRUE(fileExists(path + ".bad"));

    // End to end: the quarantined file is a miss, not an error — the
    // manager warms inline, republishes, and stats stay identical.
    CkptManager mgr;
    mgr.setStore(&store);
    expectIdentical(cold.fame, job.execute(&mgr).fame);
    EXPECT_EQ(mgr.warms(), 1u);
    EXPECT_TRUE(fileExists(path));
}

TEST(CkptStoreTest, CorruptPayloadFailsTheChecksumAndIsQuarantined)
{
    const std::string dir = freshCkptDir("corrupt");
    const SimJob job =
        fastPair(UbenchId::LdintL1, UbenchId::LdintMem, 4, 4);
    const std::string path = publishOne(dir, job);

    // Flip one payload byte; the size still matches, so only the
    // checksum can catch it.
    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        std::string header;
        std::getline(f, header);
        f.seekp(static_cast<std::streamoff>(header.size()) + 10);
        f.put(static_cast<char>(0xa5));
    }

    CkptStore store(dir);
    Checkpoint out;
    EXPECT_FALSE(store.load(job.warmKey(), out));
    EXPECT_EQ(store.quarantined(), 1u);
    EXPECT_TRUE(fileExists(path + ".bad"));
}

TEST(CkptStoreTest, ForeignWarmKeyIsQuarantined)
{
    const std::string dir = freshCkptDir("foreign_key");
    const SimJob a = fastPair(UbenchId::CpuInt, UbenchId::CpuFp, 4, 4);
    const SimJob b =
        fastPair(UbenchId::LdintL2, UbenchId::LdintL3, 4, 4);
    const std::string path_a = publishOne(dir, a);

    // Plant a's (internally valid) checkpoint at b's address: the
    // embedded warm key betrays it.
    CkptStore store(dir);
    const std::string path_b =
        store.pathFor(ckptFingerprintHex(b.warmKey()));
    ::mkdir(path_b.substr(0, path_b.rfind('/')).c_str(), 0777);
    {
        std::ifstream is(path_a, std::ios::binary);
        std::ofstream os(path_b, std::ios::binary);
        ASSERT_TRUE(os.good());
        os << is.rdbuf();
    }

    Checkpoint out;
    EXPECT_FALSE(store.load(b.warmKey(), out));
    EXPECT_EQ(store.quarantined(), 1u);
    EXPECT_TRUE(fileExists(path_b + ".bad"));
    // a's own copy is untouched and still loads.
    EXPECT_TRUE(store.load(a.warmKey(), out));
}

TEST(CkptStoreDeath, ForeignFormatVersionIsRefused)
{
    const std::string dir = freshCkptDir("foreign_version");
    { CkptStore store(dir); } // writes ckpt_meta.json
    {
        std::ofstream os(dir + "/ckpt_meta.json", std::ios::trunc);
        os << "{\n  \"ckptVersion\": 99,\n  \"schemaVersion\": "
           << config_schema_version << "\n}\n";
    }
    EXPECT_EXIT(CkptStore store(dir), ::testing::ExitedWithCode(1),
                "format v99");
}

TEST(CkptStoreDeath, ForeignConfigSchemaIsRefused)
{
    const std::string dir = freshCkptDir("foreign_schema");
    { CkptStore store(dir); }
    {
        std::ofstream os(dir + "/ckpt_meta.json", std::ios::trunc);
        os << "{\n  \"ckptVersion\": " << ckpt_format_version
           << ",\n  \"schemaVersion\": 99\n}\n";
    }
    EXPECT_EXIT(CkptStore store(dir), ::testing::ExitedWithCode(1),
                "schema");
}

TEST(CkptManagerDeath, CheckpointCreatedUnderTheWrongKeyIsFatal)
{
    CkptManager mgr;
    EXPECT_EXIT(mgr.acquire("warm|key-a",
                            []() -> Checkpoint {
                                Checkpoint ck;
                                ck.warmKey = "warm|key-b";
                                return ck;
                            }),
                ::testing::ExitedWithCode(1), "claimed as");
}

// --- checker re-arm ----------------------------------------------------

/**
 * A restored core must satisfy the p5check invariant checkers exactly
 * like a warmed one: checkers baseline on their first observation, so
 * attaching them to a forked core and measuring must record zero
 * violations while actually checking cycles.
 */
TEST(CkptCheckers, ReArmCleanlyOnARestoredCore)
{
    const FameParams fame = fastFame();
    const SyntheticProgram pp = makeUbench(UbenchId::CpuInt, 0.5);
    const SyntheticProgram ps = makeUbench(UbenchId::LdintMem, 0.5);

    // Warm a creator core and snapshot it.
    Checkpoint ck;
    {
        CoreParams params;
        SmtCore core(params);
        core.attachThread(0, &pp, canonical_warm_priority);
        core.attachThread(1, &ps, canonical_warm_priority);
        FameRunner runner(fame);
        runner.runWarmup(core);
        ck.warmCycles = core.cycle();
        CkptWriter w;
        core.saveState(w);
        ck.state = w.data();
    }

    // Fork it into a fresh core that carries the full checker suite
    // (collect mode, so a violation fails the test instead of
    // aborting) and run the measurement phase under their watch.
    CoreParams params;
    SmtCore core(params);
    core.attachThread(0, &pp, canonical_warm_priority);
    core.attachThread(1, &ps, canonical_warm_priority);
    check::installStandardCheckers(core);
    core.checks().setFatal(false);
    {
        CkptReader r(ck.state);
        core.restoreState(r);
        r.expectEnd();
    }
    core.setPriorityPair(6, 2);
    FameRunner runner(fame);
    const FameResult result = runner.measure(core, 0);

    EXPECT_TRUE(result.thread[0].executions > 0);
    EXPECT_EQ(core.checks().failureCount(), 0u)
        << (core.checks().failures().empty()
                ? ""
                : core.checks().failures().front().describe());
    EXPECT_GT(core.checks().cyclesChecked() +
                  core.checks().cyclesSkipped(),
              0u);
}

} // namespace
} // namespace p5
