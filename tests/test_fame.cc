/**
 * @file
 * Tests for the FAME methodology runner.
 */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "fame/fame.hh"
#include "test_helpers.hh"

namespace p5 {
namespace {

FameParams
quickFame(std::uint64_t reps = 5)
{
    FameParams p;
    p.minRepetitions = reps;
    p.warmupRepetitions = 1;
    p.maiv = 0.05;
    p.warmupTolerance = 0.25;
    p.maxCycles = 50'000'000;
    return p;
}

TEST(Fame, SingleThreadRun)
{
    auto prog = test::serialChain(50);
    CoreParams cp;
    FameResult r = runFame(cp, &prog, nullptr, 4, 0, quickFame());
    EXPECT_TRUE(r.converged);
    EXPECT_FALSE(r.hitCycleLimit);
    ASSERT_TRUE(r.thread[0].present);
    EXPECT_FALSE(r.thread[1].present);
    EXPECT_GE(r.thread[0].executions, 5u);
    EXPECT_NEAR(r.thread[0].avgIpc(), 1.0, 0.15);
}

TEST(Fame, BothThreadsReachMinimumRepetitions)
{
    auto fast = test::nops(20);
    auto slow = test::serialChain(50);
    CoreParams cp;
    FameResult r = runFame(cp, &fast, &slow, 4, 4, quickFame(10));
    EXPECT_GE(r.thread[0].executions, 10u);
    EXPECT_GE(r.thread[1].executions, 10u);
    // The faster benchmark re-executes more often (paper Fig. 1).
    EXPECT_GT(r.thread[0].executions, r.thread[1].executions);
}

TEST(Fame, AccountingUsesCompleteRepetitionsOnly)
{
    auto prog = test::serialChain(50); // 400 instrs/execution
    CoreParams cp;
    FameResult r = runFame(cp, &prog, nullptr, 4, 0, quickFame());
    const auto &m = r.thread[0];
    EXPECT_EQ(m.accountedInstrs,
              m.executions * prog.instrsPerExecution());
    // Average execution time * executions == accounted cycles.
    EXPECT_NEAR(m.avgExecTime() * static_cast<double>(m.executions),
                static_cast<double>(m.accountedCycles), 1.0);
}

TEST(Fame, TotalIpcSumsPresentThreads)
{
    auto a = test::nops(20);
    auto b = test::nops(20);
    CoreParams cp;
    FameResult r = runFame(cp, &a, &b, 4, 4, quickFame());
    EXPECT_NEAR(r.totalIpc(),
                r.thread[0].avgIpc() + r.thread[1].avgIpc(), 1e-9);
}

TEST(Fame, CycleGuardTrips)
{
    auto prog = test::dramChase(5000); // very long executions
    CoreParams cp;
    FameParams fp = quickFame(50);
    fp.maxCycles = 20000;
    LogLevel old = setLogLevel(LogLevel::Silent);
    FameResult r = runFame(cp, &prog, nullptr, 4, 0, fp);
    setLogLevel(old);
    EXPECT_TRUE(r.hitCycleLimit);
    EXPECT_FALSE(r.converged);
}

TEST(Fame, WarmupExcludesColdCaches)
{
    // A benchmark whose first pass is all DRAM misses but is
    // L1-resident afterwards: the measured IPC must reflect the warm
    // behaviour, not the cold pass.
    ProgramBuilder b("warmable");
    int pat = b.memPattern(0, 128, 8 * 1024);
    b.beginPhase(64);
    b.load(11, pat, 11);
    b.intAlu(0, 11);
    b.nop();
    auto prog = b.build();

    CoreParams cp;
    FameResult r = runFame(cp, &prog, nullptr, 4, 0, quickFame());
    // Warm: self-chained L1 hits at 2 cycles per 3 instructions.
    EXPECT_GT(r.thread[0].avgIpc(), 1.0);
}

TEST(Fame, PriorityPairPlumbing)
{
    auto a = test::nops(20);
    auto b = test::nops(20);
    CoreParams cp;
    FameResult hi = runFame(cp, &a, &b, 6, 2, quickFame());
    EXPECT_GT(hi.thread[0].avgIpc(), 3.0 * hi.thread[1].avgIpc());
}

TEST(FameDeath, NoThreadsIsFatal)
{
    CoreParams cp;
    SmtCore core(cp);
    FameRunner runner(quickFame());
    EXPECT_EXIT(runner.run(core), ::testing::ExitedWithCode(1),
                "no attached threads");
}

TEST(FameDeath, BadParamsAreFatal)
{
    FameParams p;
    p.minRepetitions = 0;
    EXPECT_EXIT({ FameRunner r(p); }, ::testing::ExitedWithCode(1),
                "at least one repetition");
    FameParams q;
    q.maiv = 0.0;
    EXPECT_EXIT({ FameRunner r(q); }, ::testing::ExitedWithCode(1),
                "MAIV");
}

TEST(Fame, DeterministicResults)
{
    auto prog = test::randomBranches(100);
    CoreParams cp;
    FameResult a = runFame(cp, &prog, nullptr, 4, 0, quickFame());
    FameResult b = runFame(cp, &prog, nullptr, 4, 0, quickFame());
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.thread[0].executions, b.thread[0].executions);
}

} // namespace
} // namespace p5
