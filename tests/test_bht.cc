/**
 * @file
 * Unit tests for the bimodal branch history table.
 */

#include <gtest/gtest.h>

#include "branch/bht.hh"
#include "common/rng.hh"

namespace p5 {
namespace {

TEST(Bht, InitiallyPredictsNotTaken)
{
    Bht bht(BhtParams{64});
    EXPECT_FALSE(bht.predict(0x40));
}

TEST(Bht, TrainsToTaken)
{
    Bht bht(BhtParams{64});
    bht.update(0x40, true);
    bht.update(0x40, true);
    EXPECT_TRUE(bht.predict(0x40));
}

TEST(Bht, HysteresisSurvivesOneFlip)
{
    Bht bht(BhtParams{64});
    for (int i = 0; i < 4; ++i)
        bht.update(0x40, true); // saturate at 3
    bht.update(0x40, false);    // 2: still predicts taken
    EXPECT_TRUE(bht.predict(0x40));
    bht.update(0x40, false);    // 1: now not-taken
    EXPECT_FALSE(bht.predict(0x40));
}

TEST(Bht, UpdateReturnsPreUpdatePrediction)
{
    Bht bht(BhtParams{64});
    // Counters start at 1 (weakly not-taken): the first update sees
    // not-taken, the second already sees taken (counter reached 2).
    EXPECT_FALSE(bht.update(0x40, true));
    EXPECT_TRUE(bht.update(0x40, true));
    EXPECT_TRUE(bht.update(0x40, true));
}

TEST(Bht, PerfectlyRegularBranchIsNearPerfect)
{
    Bht bht(BhtParams{1024});
    for (int i = 0; i < 1000; ++i)
        bht.update(0x100, true);
    EXPECT_GT(bht.accuracy(), 0.99);
}

TEST(Bht, RandomBranchIsNearChance)
{
    Bht bht(BhtParams{1024});
    for (std::uint64_t i = 0; i < 20000; ++i)
        bht.update(0x100, (hashMix(i) & 1) != 0);
    EXPECT_NEAR(bht.accuracy(), 0.5, 0.05);
}

TEST(Bht, DistinctPcsAreIndependent)
{
    Bht bht(BhtParams{1024});
    for (int i = 0; i < 10; ++i) {
        bht.update(0x100, true);
        bht.update(0x200, false);
    }
    EXPECT_TRUE(bht.predict(0x100));
    EXPECT_FALSE(bht.predict(0x200));
}

TEST(Bht, AliasingWrapsByTableSize)
{
    Bht bht(BhtParams{16});
    // PCs 0x0 and 16*4 = 0x40 alias in a 16-entry table (>>2 index).
    bht.update(0x0, true);
    bht.update(0x0, true);
    EXPECT_TRUE(bht.predict(0x40));
}

TEST(Bht, ResetRestoresWeaklyNotTaken)
{
    Bht bht(BhtParams{64});
    bht.update(0x40, true);
    bht.update(0x40, true);
    bht.reset();
    EXPECT_FALSE(bht.predict(0x40));
}

TEST(Bht, StatsCount)
{
    Bht bht(BhtParams{64});
    bht.predict(0x40);
    bht.update(0x40, false); // correct
    bht.update(0x40, true);  // mispredict
    EXPECT_EQ(bht.lookups(), 1u);
    EXPECT_EQ(bht.correct(), 1u);
    EXPECT_EQ(bht.mispredicts(), 1u);
}

TEST(BhtDeath, NonPow2IsFatal)
{
    EXPECT_EXIT({ Bht bht(BhtParams{100}); },
                ::testing::ExitedWithCode(1), "power of two");
}

} // namespace
} // namespace p5
