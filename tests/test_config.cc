/**
 * @file
 * Tests for the declarative config layer: JsonValue parsing, dotted-path
 * binding, serialization round trips, fingerprint identity, unknown-key
 * suggestions and the field-coverage guard.
 */

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "config/config.hh"
#include "exp/experiments.hh"
#include "program/trace.hh"
#include "ubench/ubench.hh"

namespace p5 {
namespace {

/**
 * Path of the small real trace some tests bind workload.trace to
 * (assigning a trace path reads the file's header at set time, so the
 * file must exist). Dumped on first use, reused after.
 */
const char *const config_guard_trace = "config_guard.trace";

void
ensureGuardTrace()
{
    static bool dumped = false;
    if (dumped)
        return;
    const SyntheticProgram prog = makeUbench(UbenchId::CpuInt, 0.05);
    dumpTrace(prog, 2, config_guard_trace);
    dumped = true;
}

// --- JsonValue / parser -----------------------------------------------

TEST(JsonValue, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null").isNull());
    EXPECT_EQ(parseJson("true").asBool(), true);
    EXPECT_EQ(parseJson("false").asBool(), false);
    EXPECT_EQ(parseJson("42").asInt(), 42);
    EXPECT_EQ(parseJson("-7").asInt(), -7);
    EXPECT_DOUBLE_EQ(parseJson("0.25").asDouble(), 0.25);
    EXPECT_DOUBLE_EQ(parseJson("1e3").asDouble(), 1000.0);
    EXPECT_EQ(parseJson("\"hi\"").asString(), "hi");
}

TEST(JsonValue, KeepsIntAndDoubleApart)
{
    EXPECT_TRUE(parseJson("3").isInt());
    EXPECT_TRUE(parseJson("3.0").isDouble());
    EXPECT_TRUE(parseJson("3e0").isDouble());
    // Structural equality distinguishes them by design.
    EXPECT_NE(parseJson("3"), parseJson("3.0"));
}

TEST(JsonValue, StringEscapesRoundTrip)
{
    const std::string doc = "\"a\\\"b\\\\c\\n\\t\\u0041\"";
    EXPECT_EQ(parseJson(doc).asString(), "a\"b\\c\n\tA");
}

TEST(JsonValue, ObjectMembersKeepInsertionOrder)
{
    const JsonValue v = parseJson("{\"z\": 1, \"a\": 2, \"m\": 3}");
    ASSERT_EQ(v.members().size(), 3u);
    EXPECT_EQ(v.members()[0].first, "z");
    EXPECT_EQ(v.members()[1].first, "a");
    EXPECT_EQ(v.members()[2].first, "m");
    ASSERT_NE(v.find("a"), nullptr);
    EXPECT_EQ(v.find("a")->asInt(), 2);
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonValue, DumpReparsesToEqualTree)
{
    const char *doc = "{\"b\": true, \"n\": null, \"xs\": [1, 2.5, "
                      "\"s\"], \"o\": {\"k\": -3}}";
    const JsonValue v = parseJson(doc);
    const JsonValue again = parseJson(v.dump());
    EXPECT_EQ(v, again);
    // Serialization is canonical: dump of the reparse is byte-equal.
    EXPECT_EQ(v.dump(), again.dump());
}

TEST(JsonValue, ParseErrorsAreFatalWithPosition)
{
    EXPECT_EXIT(parseJson("{\"a\": }", "doc"),
                ::testing::ExitedWithCode(1), "doc:1:7");
    EXPECT_EXIT(parseJson("[1, 2", "doc"), ::testing::ExitedWithCode(1),
                "doc");
    EXPECT_EXIT(parseJson("{\"a\": 1, \"a\": 2}"),
                ::testing::ExitedWithCode(1), "duplicate");
}

TEST(JsonValue, TrailingGarbageIsFatal)
{
    EXPECT_EXIT(parseJson("1 2"), ::testing::ExitedWithCode(1), "");
}

TEST(JsonValue, MalformedNumbersAreFatalWithTheOffendingToken)
{
    // Leading zeros are rejected (the shared integer parser would read
    // them as octal, silently changing the value).
    EXPECT_EXIT(parseJson("010", "doc"), ::testing::ExitedWithCode(1),
                "invalid number '010'");
    EXPECT_EXIT(parseJson("-010", "doc"), ::testing::ExitedWithCode(1),
                "invalid number '-010'");
    EXPECT_EXIT(parseJson("1.2.3", "doc"), ::testing::ExitedWithCode(1),
                "invalid number '1.2.3'");
    EXPECT_EXIT(parseJson("1e", "doc"), ::testing::ExitedWithCode(1),
                "invalid number '1e'");
    // Sane numbers are untouched by the strict path.
    EXPECT_EQ(parseJson("0").asInt(), 0);
    EXPECT_EQ(parseJson("-0").asInt(), 0);
    EXPECT_DOUBLE_EQ(parseJson("0.5").asDouble(), 0.5);
    // Integers too wide for 64 bits degrade to double, not garbage.
    EXPECT_TRUE(parseJson("123456789012345678901234567890").isDouble());
}

TEST(FormatDouble, ShortestRoundTrip)
{
    EXPECT_EQ(formatDouble(0.5), "0.5");
    EXPECT_EQ(formatDouble(0.05), "0.05");
    EXPECT_EQ(formatDouble(1.0), "1");
    EXPECT_EQ(formatDouble(0.1), "0.1");
    // A value needing all 17 digits still round-trips exactly.
    const double tricky = 0.1 + 0.2;
    EXPECT_EQ(std::stod(formatDouble(tricky)), tricky);
}

// --- binding and round trips ------------------------------------------

TEST(ConfigTree, GetReturnsDefaults)
{
    ExpConfig config;
    ConfigTree tree(config);
    EXPECT_EQ(tree.get("core.decode_width"), "5");
    EXPECT_EQ(tree.get("core.balancer.gct_share_threshold"), "0.55");
    EXPECT_EQ(tree.get("core.balancer.action"), "stall");
    EXPECT_EQ(tree.get("fame.min_repetitions"), "10");
    EXPECT_EQ(tree.get("exp.ubench_scale"), "1");
    EXPECT_EQ(tree.get("exp.benchmarks"), "presented");
}

TEST(ConfigTree, SetUpdatesTheBoundStruct)
{
    ExpConfig config;
    ConfigTree tree(config);
    tree.set("core.decode_width", "4");
    EXPECT_EQ(config.core.decodeWidth, 4);
    tree.set("core.balancer.action", "flush");
    EXPECT_EQ(config.core.balancer.action, BalanceAction::Flush);
    tree.set("core.balancer.enabled", "false");
    EXPECT_FALSE(config.core.balancer.enabled);
    tree.set("fame.maiv", "0.05");
    EXPECT_DOUBLE_EQ(config.fame.maiv, 0.05);
    tree.set("exp.benchmarks", "cpu_int,ldint_l1");
    ASSERT_EQ(config.benchmarks.size(), 2u);
    EXPECT_EQ(config.benchmarks[0], UbenchId::CpuInt);
    EXPECT_EQ(config.benchmarks[1], UbenchId::LdintL1);
    EXPECT_EQ(tree.get("exp.benchmarks"), "cpu_int,ldint_l1");
}

TEST(ConfigTree, TextualRoundTripPerPath)
{
    ExpConfig config;
    ConfigTree tree(config);
    for (const std::string &path : tree.paths()) {
        const std::string before = tree.get(path);
        tree.set(path, before); // must parse its own rendering
        EXPECT_EQ(tree.get(path), before) << path;
    }
}

/**
 * One non-default value for every bound path, exercising each bound
 * struct (CoreParams, BalancerParams, all three cache levels, the TLB,
 * DRAM, BHT, FameParams and the exp fields).
 */
const std::pair<const char *, const char *> non_default_values[] = {
    {"core.core_id", "1"},
    {"core.decode_width", "6"},
    {"core.minority_slot_width", "3"},
    {"core.group_size", "4"},
    {"core.gct_groups", "24"},
    {"core.fu_fx", "3"},
    {"core.fu_fp", "1"},
    {"core.fu_ls", "1"},
    {"core.fu_br", "2"},
    {"core.lmq_entries", "16"},
    {"core.mispredict_penalty", "9"},
    {"core.work_conserving_slots", "true"},
    {"core.asid_shift", "40"},
    {"core.priority_aware_walker", "false"},
    {"core.walker_port_gap", "3"},
    {"core.fast_forward", "false"},
    {"core.balancer.enabled", "false"},
    {"core.balancer.gct_share_threshold", "0.6"},
    {"core.balancer.priority_aware_gct", "false"},
    {"core.balancer.min_gct_share_threshold", "0.25"},
    {"core.balancer.max_gct_share_threshold", "0.9"},
    {"core.balancer.priority_aware_lmq", "false"},
    {"core.balancer.min_gct_groups", "3"},
    {"core.balancer.lmq_threshold", "5"},
    {"core.balancer.block_on_tlb_miss", "false"},
    {"core.balancer.action", "flush"},
    {"core.mem.l1d.size_bytes", "65536"},
    {"core.mem.l1d.assoc", "8"},
    {"core.mem.l1d.line_bytes", "64"},
    {"core.mem.l1d.hit_latency", "3"},
    {"core.mem.l1d.service_gap", "2"},
    {"core.mem.l2.size_bytes", "1048576"},
    {"core.mem.l2.assoc", "8"},
    {"core.mem.l2.line_bytes", "64"},
    {"core.mem.l2.hit_latency", "15"},
    {"core.mem.l2.service_gap", "3"},
    {"core.mem.l3.size_bytes", "16777216"},
    {"core.mem.l3.assoc", "24"},
    {"core.mem.l3.line_bytes", "128"},
    {"core.mem.l3.hit_latency", "90"},
    {"core.mem.l3.service_gap", "12"},
    {"core.mem.tlb.entries", "512"},
    {"core.mem.tlb.assoc", "8"},
    {"core.mem.tlb.page_bytes", "65536"},
    {"core.mem.tlb.walk_latency", "120"},
    {"core.mem.dram_latency", "300"},
    {"core.mem.dram_service_gap", "30"},
    {"core.bht.entries", "8192"},
    {"fame.min_repetitions", "7"},
    {"fame.maiv", "0.02"},
    {"fame.warmup_repetitions", "3"},
    {"fame.warmup_tolerance", "0.1"},
    {"fame.max_cycles", "123456789"},
    {"fame.check_period", "2048"},
    {"chip.num_cores", "4"},
    {"sched.policy", "symbiosis"},
    {"sched.quantum", "8192"},
    {"sched.history_quanta", "8"},
    {"workload.trace", config_guard_trace},
    {"workload.trace_fingerprint", "0123456789abcdef"},
    {"workload.trace_secondary", config_guard_trace},
    {"workload.trace_secondary_fingerprint", "fedcba9876543210"},
    {"exp.ubench_scale", "0.75"},
    {"exp.seed", "12345678901234567"},
    {"exp.jobs", "3"},
    {"exp.benchmarks", "all"},
};

TEST(ConfigTree, FullySerializedRoundTripReproducesEveryField)
{
    ensureGuardTrace();
    ExpConfig config;
    ConfigTree tree(config);
    ExpConfig defaults_config;
    ConfigTree defaults(defaults_config);

    // Every bound path gets a non-default value...
    ASSERT_EQ(sizeof(non_default_values) / sizeof(non_default_values[0]),
              tree.paths().size())
        << "a bound path is missing from non_default_values";
    for (const auto &[path, value] : non_default_values) {
        ASSERT_TRUE(tree.has(path)) << path;
        tree.set(path, value);
        EXPECT_NE(tree.get(path), defaults.get(path))
            << path << " value in non_default_values is the default";
    }

    // ...and save -> load into a fresh config reproduces all of them.
    const std::string doc = tree.saveString();
    ExpConfig loaded_config;
    ConfigTree loaded(loaded_config);
    loaded.loadString(doc, "round-trip");
    for (const std::string &path : tree.paths())
        EXPECT_EQ(loaded.get(path), tree.get(path)) << path;
    EXPECT_EQ(loaded.canonical(), tree.canonical());
    EXPECT_EQ(loaded.fingerprint(), tree.fingerprint());

    // Serialization is canonical: re-saving the loaded tree is
    // byte-identical.
    EXPECT_EQ(loaded.saveString(), doc);
}

TEST(ConfigTree, PartialConfigFileOnlyTouchesNamedFields)
{
    ExpConfig config;
    ConfigTree tree(config);
    tree.loadString("{\"core\": {\"lmq_entries\": 16, \"balancer\": "
                    "{\"action\": \"flush\"}}}",
                    "partial");
    EXPECT_EQ(config.core.lmqEntries, 16);
    EXPECT_EQ(config.core.balancer.action, BalanceAction::Flush);
    EXPECT_EQ(config.core.decodeWidth, 5); // untouched default
}

TEST(ConfigTree, ApplyOverrideParsesAssignments)
{
    ExpConfig config;
    ConfigTree tree(config);
    tree.applyOverride("core.gct_groups=32");
    EXPECT_EQ(config.core.gctGroups, 32);
    EXPECT_EXIT(tree.applyOverride("no-equals-sign"),
                ::testing::ExitedWithCode(1), "key=value");
}

// --- validation and errors --------------------------------------------

TEST(ConfigTree, UnknownKeySuggestsNearestPath)
{
    ExpConfig config;
    ConfigTree tree(config);
    EXPECT_EQ(tree.suggest("core.decode_widht"), "core.decode_width");
    EXPECT_EQ(tree.suggest("fame.mavi"), "fame.maiv");
    EXPECT_EXIT(tree.set("core.decode_widht", "4"),
                ::testing::ExitedWithCode(1),
                "did you mean 'core.decode_width'");
    EXPECT_EXIT(
        tree.loadString("{\"core\": {\"decode_wdith\": 4}}", "bad"),
        ::testing::ExitedWithCode(1), "did you mean");
}

TEST(ConfigTree, OutOfRangeValuesAreFatal)
{
    ExpConfig config;
    ConfigTree tree(config);
    EXPECT_EXIT(tree.set("core.decode_width", "9"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(tree.set("core.decode_width", "0"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(tree.set("fame.maiv", "2"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(tree.set("core.decode_width", "abc"),
                ::testing::ExitedWithCode(1), "integer");
    EXPECT_EXIT(tree.set("core.balancer.action", "explode"),
                ::testing::ExitedWithCode(1), "stall");
    EXPECT_EXIT(tree.set("exp.benchmarks", "not_a_benchmark"),
                ::testing::ExitedWithCode(1), "");
}

TEST(ConfigTree, MalformedNumbersAreFatalNotTruncated)
{
    // The full strict-parse taxonomy, uniform across field types:
    // trailing garbage ("8x" must not become 8), overflow, and empty
    // strings are all fatal at set time.
    ExpConfig config;
    ConfigTree tree(config);
    EXPECT_EXIT(tree.set("core.decode_width", "8x"),
                ::testing::ExitedWithCode(1), "trailing garbage");
    EXPECT_EXIT(tree.set("core.decode_width", ""),
                ::testing::ExitedWithCode(1), "empty value");
    EXPECT_EXIT(tree.set("core.decode_width",
                         "99999999999999999999999"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(tree.set("fame.maiv", "0.01oops"),
                ::testing::ExitedWithCode(1), "trailing garbage");
    EXPECT_EXIT(tree.set("fame.maiv", "1e999999"),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(tree.set("exp.seed", "12e"),
                ::testing::ExitedWithCode(1), "trailing garbage");
    EXPECT_EXIT(tree.set("exp.seed", "-1"),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(tree.set("exp.seed", " "),
                ::testing::ExitedWithCode(1), "empty value");
}

TEST(ConfigTree, ValidateRunsCrossFieldChecks)
{
    ExpConfig config;
    ConfigTree tree(config);
    tree.validate(); // defaults are valid

    // decode_width 4 with the default group_size 5 violates the
    // CoreParams cross-field invariant even though both fields are
    // individually in range.
    config.core.decodeWidth = 4;
    EXPECT_EXIT(tree.validate(), ::testing::ExitedWithCode(1),
                "groupSize");
}

// --- identity / fingerprint -------------------------------------------

TEST(ConfigTree, FingerprintIsStableAcrossInstances)
{
    ExpConfig a, b;
    EXPECT_EQ(ConfigTree(a).fingerprint(), ConfigTree(b).fingerprint());
    EXPECT_EQ(ConfigTree(a).canonical(), ConfigTree(b).canonical());
}

TEST(ConfigTree, FingerprintTracksIdentityFields)
{
    ExpConfig base, changed;
    ConfigTree changed_tree(changed);
    changed_tree.set("core.lmq_entries", "16");
    EXPECT_NE(ConfigTree(base).fingerprint(), changed_tree.fingerprint());

    ExpConfig seeded;
    ConfigTree seeded_tree(seeded);
    seeded_tree.set("exp.seed", "99");
    EXPECT_NE(ConfigTree(base).fingerprint(), seeded_tree.fingerprint());
}

TEST(ConfigTree, ExecutionOnlyFieldsStayOutOfTheFingerprint)
{
    // Worker count and benchmark selection change how work is
    // scheduled, never what one simulation computes — so configs that
    // differ only there share a fingerprint (and cached results).
    ExpConfig base, sched;
    ConfigTree sched_tree(sched);
    sched_tree.set("exp.jobs", "7");
    sched_tree.set("exp.benchmarks", "all");
    EXPECT_EQ(ConfigTree(base).fingerprint(), sched_tree.fingerprint());
}

TEST(ConfigTree, StampTagWritesTheHexFingerprint)
{
    ExpConfig config;
    ConfigTree tree(config);
    EXPECT_TRUE(config.configTag.empty());
    tree.stampTag();
    EXPECT_EQ(config.configTag, tree.fingerprintHex());
    EXPECT_EQ(config.configTag.size(), 16u);
    EXPECT_EQ(config.configTag.find_first_not_of("0123456789abcdef"),
              std::string::npos);
}

TEST(ConfigTree, CanonicalFormIsSchemaVersionedPathValueLines)
{
    ExpConfig config;
    ConfigTree tree(config);
    const std::string canonical = tree.canonical();
    EXPECT_EQ(canonical.rfind("p5sim-config schema=1\n", 0), 0u);
    EXPECT_NE(canonical.find("core.decode_width=5\n"),
              std::string::npos);
    // Non-identity fields never appear.
    EXPECT_EQ(canonical.find("exp.jobs"), std::string::npos);
    EXPECT_EQ(canonical.find("exp.benchmarks"), std::string::npos);
    // The trace *path* is a location, not an identity...
    EXPECT_EQ(canonical.find("workload.trace="), std::string::npos);
    // ...but the derived fingerprint is.
    EXPECT_NE(canonical.find("workload.trace_fingerprint=\n"),
              std::string::npos);
}

// --- workload.trace binding --------------------------------------------

TEST(ConfigTrace, AssigningPathDerivesFingerprint)
{
    ensureGuardTrace();
    ExpConfig config;
    ConfigTree tree(config);
    const std::string base = tree.fingerprintHex();

    tree.set("workload.trace", config_guard_trace);
    EXPECT_EQ(config.workloadTrace, config_guard_trace);
    const std::string fp =
        readTraceHeader(config_guard_trace).fingerprint();
    EXPECT_EQ(config.workloadTraceFp, fp);
    EXPECT_EQ(tree.get("workload.trace_fingerprint"), fp);

    // The trace content re-keys the config...
    EXPECT_NE(tree.fingerprintHex(), base);
    // ...and the warm phase (a trace shapes the warm trajectory).
    tree.validate();

    // Clearing the path clears the derived identity with it.
    tree.set("workload.trace", "");
    EXPECT_TRUE(config.workloadTrace.empty());
    EXPECT_TRUE(config.workloadTraceFp.empty());
    EXPECT_EQ(tree.fingerprintHex(), base);
}

TEST(ConfigTraceDeath, MissingFileAndBrokenIdentityAreFatal)
{
    ensureGuardTrace();
    ExpConfig config;
    ConfigTree tree(config);
    EXPECT_DEATH(tree.set("workload.trace", "no_such.trace"),
                 "no_such.trace");
    EXPECT_DEATH(tree.set("workload.trace_fingerprint", "xyz"),
                 "hex fingerprint");

    // A fingerprint without a trace is meaningless...
    config.workloadTraceFp = "0123456789abcdef";
    EXPECT_DEATH(tree.validate(), "without a trace");
    config.workloadTraceFp.clear();

    // ...and a stale fingerprint (file changed since keying) is a lie.
    tree.set("workload.trace", config_guard_trace);
    config.workloadTraceFp = "0123456789abcdef";
    EXPECT_DEATH(tree.validate(), "changed since it was keyed");
}

// --- coverage guard ----------------------------------------------------

/**
 * Field-coverage guard: adding a member to a bound param struct changes
 * its size, which trips the pin below and reminds you to (a) bind the
 * new field in ConfigTree::bindAll(), (b) add it to SimJob's key
 * rendering if it affects simulation, and (c) update these pins plus
 * the bound-path count. The sizes are for x86_64/LP64 (the only
 * supported CI target).
 */
TEST(ConfigCoverage, BoundStructSizesArePinned)
{
    EXPECT_EQ(sizeof(BalancerParams), 64u);
    EXPECT_EQ(sizeof(CacheParams), 56u);
    EXPECT_EQ(sizeof(TlbParams), 56u);
    EXPECT_EQ(sizeof(BhtParams), 4u);
    EXPECT_EQ(sizeof(HierarchyParams), 232u);
    EXPECT_EQ(sizeof(CoreParams), 376u);
    EXPECT_EQ(sizeof(FameParams), 48u);
    EXPECT_EQ(sizeof(SchedParams), 24u);
    EXPECT_EQ(sizeof(ExpConfig), 712u);
}

TEST(ConfigCoverage, BoundPathAndIdentityCountsArePinned)
{
    ExpConfig config;
    ConfigTree tree(config);
    EXPECT_EQ(tree.paths().size(), 66u);

    // Identity fields = everything except exp.jobs / exp.benchmarks and
    // the two workload trace *paths* (their fingerprints carry the
    // identity).
    std::size_t identity_lines = 0;
    const std::string canonical = tree.canonical();
    for (char c : canonical)
        identity_lines += (c == '\n');
    EXPECT_EQ(identity_lines, 1u /* schema line */ + 62u);
}

TEST(ConfigCoverage, EveryPathIsUniqueAndWellFormed)
{
    ExpConfig config;
    ConfigTree tree(config);
    std::vector<std::string> paths = tree.paths();
    for (const std::string &p : paths) {
        EXPECT_EQ(p.find_first_not_of(
                      "abcdefghijklmnopqrstuvwxyz0123456789_."),
                  std::string::npos)
            << p;
        EXPECT_FALSE(tree.help(p).empty()) << p;
    }
    std::sort(paths.begin(), paths.end());
    EXPECT_EQ(std::adjacent_find(paths.begin(), paths.end()),
              paths.end())
        << "duplicate bound path";
}

TEST(EditDistance, Levenshtein)
{
    EXPECT_EQ(editDistance("", ""), 0u);
    EXPECT_EQ(editDistance("abc", "abc"), 0u);
    EXPECT_EQ(editDistance("abc", "abd"), 1u);
    EXPECT_EQ(editDistance("abc", "acb"), 2u);
    EXPECT_EQ(editDistance("kitten", "sitting"), 3u);
    EXPECT_EQ(editDistance("", "abc"), 3u);
}

} // namespace
} // namespace p5
