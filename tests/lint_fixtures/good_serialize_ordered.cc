// p5lint fixture — analysis-only, never compiled.
// GOOD twin of bad_serialize_unordered.cc: the serialize root's call
// tree iterates a std::map, whose order is the key order — stable
// bytes, no findings.

#include <map>
#include <string>

namespace fixture {

struct Sink
{
    void put(long v);
};

struct WarmStats
{
    std::map<std::string, long> counters_;

    void dumpAll(Sink &sink) const;

    P5_SERIALIZE_ROOT void saveState(Sink &sink) const;
};

void
WarmStats::dumpAll(Sink &sink) const
{
    for (const auto &kv : counters_) // key-order: deterministic
        sink.put(kv.second);
}

void
WarmStats::saveState(Sink &sink) const
{
    dumpAll(sink);
}

} // namespace fixture
