// p5lint fixture — analysis-only, never compiled.
// BAD: a P5_HOT_PATH root transitively reaches an allocating container
// method (vector::push_back through a helper).  p5lint must flag this
// with hot_path_no_alloc and nothing else.

#include <vector>

namespace fixture {

struct HotLog
{
    P5_HOT_PATH void tick();

    void record(int v);

    std::vector<int> events_;
};

void
HotLog::record(int v)
{
    events_.push_back(v); // allocates: reachable from the hot root
}

void
HotLog::tick()
{
    record(42);
}

} // namespace fixture
