// p5lint fixture — analysis-only, never compiled.
// GOOD twin of bad_hot_alloc.cc: the hot root records into a
// fixed-capacity array, so nothing reachable from it allocates.

#include <array>

namespace fixture {

struct HotLog
{
    P5_HOT_PATH void tick();

    void record(int v);

    std::array<int, 64> events_{};
    int n_ = 0;
};

void
HotLog::record(int v)
{
    events_[static_cast<unsigned>(n_++) % 64u] = v;
}

void
HotLog::tick()
{
    record(42);
}

} // namespace fixture
