// p5lint fixture — analysis-only, never compiled.
// GOOD twin of bad_unordered_iter.cc: std::map iterates in key order,
// which is deterministic.

#include <map>
#include <string>

namespace fixture {

struct StatDump
{
    std::map<std::string, long> counters_;

    long total() const;
};

long
StatDump::total() const
{
    long sum = 0;
    for (const auto &kv : counters_)
        sum += kv.second;
    return sum;
}

} // namespace fixture
