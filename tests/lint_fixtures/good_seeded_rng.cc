// p5lint fixture — analysis-only, never compiled.
// GOOD twin of bad_banned_rng.cc: a self-contained xorshift generator
// seeded from the config, fully reproducible.

#include <cstdint>

namespace fixture {

struct Xorshift
{
    std::uint64_t state = 0x9e3779b97f4a7c15ull;

    std::uint64_t next();
};

std::uint64_t
Xorshift::next()
{
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
}

inline int
jitter(Xorshift &rng, int span)
{
    return static_cast<int>(rng.next() % static_cast<std::uint64_t>(span));
}

} // namespace fixture
