// p5lint fixture — analysis-only, never compiled.
// BAD: a trace reader's checkpoint path feeds hash-order bytes into
// the stream.  The replay cursor keeps per-thread resume positions in
// an unordered_map under P5_ALLOW(determinism) (fine for the
// lookup-only replay path), but the P5_SERIALIZE_ROOT saveState walks
// that map to emit the cursors — inside a serialize root's reach the
// exemption is void, so p5lint must flag determinism and nothing else.

#include <cstdint>
#include <unordered_map>

namespace fixture {

struct Sink
{
    void put(std::uint64_t v);
};

struct TraceReplayCursor
{
    P5_ALLOW(determinism) // lookup-only while replaying
    std::unordered_map<int, std::uint64_t> resumeSeq_;

    P5_ALLOW(determinism) void dumpCursors(Sink &sink) const;

    P5_SERIALIZE_ROOT void saveState(Sink &sink) const;
};

void
TraceReplayCursor::dumpCursors(Sink &sink) const
{
    for (const auto &kv : resumeSeq_) // hash-order bytes
        sink.put(kv.second);
}

void
TraceReplayCursor::saveState(Sink &sink) const
{
    dumpCursors(sink); // reach makes the allow above void
}

} // namespace fixture
