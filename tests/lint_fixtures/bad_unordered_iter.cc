// p5lint fixture — analysis-only, never compiled.
// BAD: an unordered_map member is iterated, so the emitted report order
// depends on the hash function and libstdc++ version.  p5lint must flag
// this with determinism and nothing else (both the member declaration
// and the range-for).

#include <string>
#include <unordered_map>

namespace fixture {

struct StatDump
{
    std::unordered_map<std::string, long> counters_;

    long total() const;
};

long
StatDump::total() const
{
    long sum = 0;
    for (const auto &kv : counters_) // hash-order iteration
        sum += kv.second;
    return sum;
}

} // namespace fixture
