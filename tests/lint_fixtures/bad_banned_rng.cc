// p5lint fixture — analysis-only, never compiled.
// BAD: rand() outside src/common/rng.hh.  Simulation results must be a
// pure function of the config fingerprint; libc rand() is process-global
// state the fingerprint cannot capture.  p5lint must flag this with
// determinism and nothing else.

#include <cstdlib>

namespace fixture {

inline int
jitter(int span)
{
    return rand() % span; // banned nondeterminism source
}

} // namespace fixture
