// p5lint fixture — analysis-only, never compiled.
// BAD: a P5_CONFIG_STRUCT field that bindAll() never binds.  A knob the
// config layer cannot reach is invisible to the run fingerprint — two
// runs with different values of it would share a cache entry.  p5lint
// must flag this with config_completeness and nothing else.

namespace fixture {

struct P5_CONFIG_STRUCT TunerParams
{
    int window = 32;
    int depth = 4;
    double bias = 0.5; // never bound below
};

struct Binder
{
    TunerParams params_;

    void bindInt(const char *key, int &field, int lo, int hi,
                 const char *help);
    void bindAll();
};

void
Binder::bindAll()
{
    TunerParams &t = params_;
    bindInt("tuner.window", t.window, 1, 1024, "sampling window");
    bindInt("tuner.depth", t.depth, 1, 64, "search depth");
    // t.bias is missing: config_completeness must fire.
}

} // namespace fixture
