// p5lint fixture — analysis-only, never compiled.
// BAD: a P5_SERIALIZE_ROOT's call tree iterates an unordered_map under
// P5_ALLOW(determinism).  Inside a serialize root's reach the
// exemption is void — hash-order iteration would feed the checkpoint
// byte stream — so p5lint must flag this with determinism and nothing
// else.

#include <string>
#include <unordered_map>

namespace fixture {

struct Sink
{
    void put(long v);
};

struct WarmStats
{
    P5_ALLOW(determinism) // lookup-only in the report path
    std::unordered_map<std::string, long> counters_;

    P5_ALLOW(determinism) void dumpAll(Sink &sink) const;

    P5_SERIALIZE_ROOT void saveState(Sink &sink) const;
};

void
WarmStats::dumpAll(Sink &sink) const
{
    for (const auto &kv : counters_) // hash-order bytes
        sink.put(kv.second);
}

void
WarmStats::saveState(Sink &sink) const
{
    dumpAll(sink); // reach makes the allow above void
}

} // namespace fixture
