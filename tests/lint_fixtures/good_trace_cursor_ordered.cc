// p5lint fixture — analysis-only, never compiled.
// GOOD twin of bad_trace_cursor_unordered.cc: the replay cursor keeps
// per-thread resume positions in a vector indexed by thread id, so the
// serialize root emits them in thread order — stable checkpoint bytes,
// no findings.

#include <cstdint>
#include <vector>

namespace fixture {

struct Sink
{
    void put(std::uint64_t v);
};

struct TraceReplayCursor
{
    std::vector<std::uint64_t> resumeSeq_; // indexed by thread id

    void dumpCursors(Sink &sink) const;

    P5_SERIALIZE_ROOT void saveState(Sink &sink) const;
};

void
TraceReplayCursor::dumpCursors(Sink &sink) const
{
    for (std::uint64_t seq : resumeSeq_) // thread-order: deterministic
        sink.put(seq);
}

void
TraceReplayCursor::saveState(Sink &sink) const
{
    dumpCursors(sink);
}

} // namespace fixture
