// p5lint fixture — analysis-only, never compiled.
// GOOD twin of bad_probe_impure.cc: the probe is const and only reads.

namespace fixture {

struct Probe
{
    P5_PROBE_PURE long nextEventCycle(long now) const;

    long cached_ = 0;
};

long
Probe::nextEventCycle(long now) const
{
    if (cached_ > now)
        return cached_;
    return now + 1;
}

} // namespace fixture
