// p5lint fixture — analysis-only, never compiled.
// GOOD twin of bad_unbound_field.cc: every field of the config struct
// is bound in bindAll().

namespace fixture {

struct P5_CONFIG_STRUCT TunerParams
{
    int window = 32;
    int depth = 4;
    double bias = 0.5;
};

struct Binder
{
    TunerParams params_;

    void bindInt(const char *key, int &field, int lo, int hi,
                 const char *help);
    void bindDouble(const char *key, double &field, double lo, double hi,
                    const char *help);
    void bindAll();
};

void
Binder::bindAll()
{
    TunerParams &t = params_;
    bindInt("tuner.window", t.window, 1, 1024, "sampling window");
    bindInt("tuner.depth", t.depth, 1, 64, "search depth");
    bindDouble("tuner.bias", t.bias, 0.0, 1.0, "selection bias");
}

} // namespace fixture
