// p5lint fixture — analysis-only, never compiled.
// BAD: a P5_PROBE_PURE root is not const-qualified and writes a member.
// Probes run during fast-forward scouting, so a side effect here would
// make skipped cycles diverge from executed ones.  p5lint must flag
// this with probe_purity and nothing else.

namespace fixture {

struct Probe
{
    P5_PROBE_PURE long nextEventCycle(long now);

    long cached_ = 0;
};

long
Probe::nextEventCycle(long now)
{
    cached_ = now; // side effect inside a probe
    return now + 1;
}

} // namespace fixture
