// p5lint fixture — analysis-only, never compiled.
// GOOD twin of bad_cold_on_hot.cc: the P5_COLD restore path is called
// only from an unannotated (non-hot) entry point, so both contracts
// hold and p5lint must report nothing.

namespace fixture {

struct HotRestore
{
    P5_HOT_PATH void tick();

    P5_COLD void restoreState();

    void reset();

    long cycle_ = 0;
};

void
HotRestore::restoreState()
{
    cycle_ = 0;
}

void
HotRestore::reset()
{
    restoreState(); // off the hot path: fine
}

void
HotRestore::tick()
{
    ++cycle_;
}

} // namespace fixture
