// p5lint fixture — analysis-only, never compiled.
// BAD: a P5_HOT_PATH root reaches a P5_COLD function.  P5_COLD
// declares the restore path legitimately off the per-cycle path, so
// reaching it from a hot root contradicts the declaration; p5lint
// must flag this with hot_path_no_alloc and nothing else.

namespace fixture {

struct HotRestore
{
    P5_HOT_PATH void tick();

    P5_COLD void restoreState();

    long cycle_ = 0;
};

void
HotRestore::restoreState()
{
    cycle_ = 0;
}

void
HotRestore::tick()
{
    restoreState(); // cold function on the per-cycle path
}

} // namespace fixture
