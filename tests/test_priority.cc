/**
 * @file
 * Tests for the software-controlled priority rules (paper Table 1).
 */

#include <gtest/gtest.h>

#include "prio/priority.hh"

namespace p5 {
namespace {

TEST(Priority, ValidRange)
{
    EXPECT_FALSE(isValidPriority(-1));
    EXPECT_TRUE(isValidPriority(0));
    EXPECT_TRUE(isValidPriority(7));
    EXPECT_FALSE(isValidPriority(8));
}

TEST(Priority, NamesMatchTable1)
{
    EXPECT_STREQ(priorityName(0), "Thread shut off");
    EXPECT_STREQ(priorityName(1), "Very low");
    EXPECT_STREQ(priorityName(2), "Low");
    EXPECT_STREQ(priorityName(3), "Medium-Low");
    EXPECT_STREQ(priorityName(4), "Medium");
    EXPECT_STREQ(priorityName(5), "Medium-high");
    EXPECT_STREQ(priorityName(6), "High");
    EXPECT_STREQ(priorityName(7), "Very high");
}

TEST(Priority, OrNopRegistersMatchTable1)
{
    EXPECT_EQ(orNopRegister(0), -1); // hypervisor call only
    EXPECT_EQ(orNopRegister(1), 31);
    EXPECT_EQ(orNopRegister(2), 1);
    EXPECT_EQ(orNopRegister(3), 6);
    EXPECT_EQ(orNopRegister(4), 2);
    EXPECT_EQ(orNopRegister(5), 5);
    EXPECT_EQ(orNopRegister(6), 3);
    EXPECT_EQ(orNopRegister(7), 7);
}

TEST(Priority, OrNopRoundTrip)
{
    for (int prio = 1; prio <= 7; ++prio)
        EXPECT_EQ(priorityFromOrNop(orNopRegister(prio)), prio);
}

TEST(Priority, NonPriorityRegistersDecodeToMinusOne)
{
    // Registers not in Table 1 are plain nops.
    for (int reg : {0, 2 + 2, 8, 15, 30}) {
        if (priorityFromOrNop(reg) >= 0) {
            EXPECT_NE(orNopRegister(priorityFromOrNop(reg)), -1);
        }
    }
    EXPECT_EQ(priorityFromOrNop(0), -1);
    EXPECT_EQ(priorityFromOrNop(15), -1);
}

TEST(Priority, Mnemonics)
{
    EXPECT_EQ(orNopMnemonic(1), "or 31,31,31");
    EXPECT_EQ(orNopMnemonic(4), "or 2,2,2");
    EXPECT_EQ(orNopMnemonic(0), "-");
}

TEST(Priority, DefaultIsMedium)
{
    EXPECT_EQ(default_priority, 4);
}

/**
 * Property sweep over every (privilege, priority) pair: Table 1's
 * privilege column exactly.
 */
class PrivilegeMatrixTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(PrivilegeMatrixTest, MatchesTable1)
{
    auto [priv_i, prio] = GetParam();
    auto priv = static_cast<PrivilegeLevel>(priv_i);
    bool expected = false;
    switch (priv) {
      case PrivilegeLevel::User:
        expected = prio >= 2 && prio <= 4;
        break;
      case PrivilegeLevel::Supervisor:
        expected = prio >= 1 && prio <= 6;
        break;
      case PrivilegeLevel::Hypervisor:
        expected = true;
        break;
    }
    EXPECT_EQ(canSetPriority(priv, prio), expected)
        << privilegeName(priv) << " setting " << prio;
}

INSTANTIATE_TEST_SUITE_P(AllPairs, PrivilegeMatrixTest,
                         ::testing::Combine(::testing::Range(0, 3),
                                            ::testing::Range(0, 8)));

TEST(Privilege, InvalidPriorityNeverSettable)
{
    EXPECT_FALSE(canSetPriority(PrivilegeLevel::Hypervisor, 8));
    EXPECT_FALSE(canSetPriority(PrivilegeLevel::Hypervisor, -1));
}

} // namespace
} // namespace p5
