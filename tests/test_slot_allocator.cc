/**
 * @file
 * Tests for the decode-slot allocator: the paper's R-formula, the
 * R-1:1 split, special modes, and the minority-width calibration.
 */

#include <gtest/gtest.h>

#include "prio/slot_allocator.hh"

namespace p5 {
namespace {

TEST(SlotFormula, MatchesPaperExamples)
{
    // Paper Sec. 3.2: PrioP 6, PrioS 2 -> R = 32, 31:1.
    EXPECT_EQ(DecodeSlotAllocator::computeR(6, 2), 32);
    EXPECT_EQ(DecodeSlotAllocator::computeR(4, 4), 2);
    EXPECT_EQ(DecodeSlotAllocator::computeR(5, 4), 4);
    EXPECT_EQ(DecodeSlotAllocator::computeR(6, 1), 64);
    EXPECT_EQ(DecodeSlotAllocator::computeR(1, 6), 64);
}

/** Property: R = 2^(|dP-dS|+1) for every pair. */
class RFormulaTest : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(RFormulaTest, Formula)
{
    auto [p, s] = GetParam();
    int diff = p > s ? p - s : s - p;
    EXPECT_EQ(DecodeSlotAllocator::computeR(p, s), 1 << (diff + 1));
}

INSTANTIATE_TEST_SUITE_P(AllPairs, RFormulaTest,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Range(0, 8)));

TEST(SlotAllocator, EqualPrioritiesAlternate)
{
    DecodeSlotAllocator a(5);
    a.setPriorities(4, 4);
    EXPECT_EQ(a.mode(), SlotMode::Dual);
    EXPECT_EQ(a.slotWindow(), 2);
    for (Cycle c = 0; c < 10; ++c) {
        SlotGrant g = a.grantAt(c);
        EXPECT_EQ(g.owner, static_cast<ThreadId>(c % 2));
        EXPECT_EQ(g.maxWidth, 5);
    }
}

TEST(SlotAllocator, SplitIsRMinus1To1)
{
    DecodeSlotAllocator a(5);
    a.setPriorities(6, 2); // R = 32
    int p_slots = 0;
    int s_slots = 0;
    for (Cycle c = 0; c < 32; ++c) {
        SlotGrant g = a.grantAt(c);
        if (g.owner == 0)
            ++p_slots;
        else if (g.owner == 1)
            ++s_slots;
    }
    EXPECT_EQ(p_slots, 31);
    EXPECT_EQ(s_slots, 1);
}

TEST(SlotAllocator, MinorityWidthAppliesToLowerPriority)
{
    DecodeSlotAllocator a(5, 2);
    a.setPriorities(6, 2);
    for (Cycle c = 0; c < 64; ++c) {
        SlotGrant g = a.grantAt(c);
        if (g.owner == 0)
            EXPECT_EQ(g.maxWidth, 5);
        else
            EXPECT_EQ(g.maxWidth, 2);
    }
    // Mirror: thread 0 is the minority.
    a.setPriorities(2, 6);
    for (Cycle c = 0; c < 64; ++c) {
        SlotGrant g = a.grantAt(c);
        if (g.owner == 0)
            EXPECT_EQ(g.maxWidth, 2);
        else
            EXPECT_EQ(g.maxWidth, 5);
    }
}

TEST(SlotAllocator, Priority7IsSingleThreadMode)
{
    DecodeSlotAllocator a(5);
    a.setPriorities(7, 4);
    EXPECT_EQ(a.mode(), SlotMode::SingleP);
    EXPECT_FALSE(a.threadActive(1));
    for (Cycle c = 0; c < 8; ++c)
        EXPECT_EQ(a.grantAt(c).owner, 0);
}

TEST(SlotAllocator, Priority0ShutsThreadOff)
{
    DecodeSlotAllocator a(5);
    a.setPriorities(4, 0);
    EXPECT_EQ(a.mode(), SlotMode::SingleP);
    a.setPriorities(0, 4);
    EXPECT_EQ(a.mode(), SlotMode::SingleS);
    for (Cycle c = 0; c < 8; ++c)
        EXPECT_EQ(a.grantAt(c).owner, 1);
    a.setPriorities(0, 0);
    EXPECT_EQ(a.mode(), SlotMode::AllOff);
    EXPECT_EQ(a.grantAt(3).owner, -1);
}

TEST(SlotAllocator, BothAt1IsLowPowerMode)
{
    // Paper Sec. 3.2: (1,1) decodes one instruction every 32 cycles.
    DecodeSlotAllocator a(5);
    a.setPriorities(1, 1);
    EXPECT_EQ(a.mode(), SlotMode::LowPower);
    int grants = 0;
    int width_sum = 0;
    for (Cycle c = 0; c < 320; ++c) {
        SlotGrant g = a.grantAt(c);
        if (g.owner >= 0) {
            ++grants;
            width_sum += g.maxWidth;
        }
    }
    EXPECT_EQ(grants, 10);
    EXPECT_EQ(width_sum, 10); // one *instruction*, not one group
}

TEST(SlotAllocator, SingleAt1AgainstHigherIsNormalDual)
{
    DecodeSlotAllocator a(5);
    a.setPriorities(6, 1);
    EXPECT_EQ(a.mode(), SlotMode::Dual);
    EXPECT_EQ(a.slotWindow(), 64);
}

/** Property: observed share matches primaryShare() for all Dual pairs. */
class ShareTest : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ShareTest, GrantCountsMatchShare)
{
    auto [p, s] = GetParam();
    DecodeSlotAllocator a(5);
    a.setPriorities(p, s);
    if (a.mode() != SlotMode::Dual)
        GTEST_SKIP() << "non-dual pair";
    const int window = a.slotWindow();
    int p_slots = 0;
    for (Cycle c = 0; c < static_cast<Cycle>(window); ++c)
        if (a.grantAt(c).owner == 0)
            ++p_slots;
    EXPECT_NEAR(static_cast<double>(p_slots) / window, a.primaryShare(),
                1e-9);
    EXPECT_NEAR(a.shareOf(0) + a.shareOf(1), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllPairs, ShareTest,
                         ::testing::Combine(::testing::Range(1, 7),
                                            ::testing::Range(1, 7)));

TEST(SlotAllocator, SetPriorityByThread)
{
    DecodeSlotAllocator a(5);
    a.setPriorities(4, 4);
    a.setPriority(1, 2);
    EXPECT_EQ(a.priorityOf(0), 4);
    EXPECT_EQ(a.priorityOf(1), 2);
    EXPECT_EQ(a.slotWindow(), 8);
}

TEST(SlotAllocatorDeath, InvalidPriorityIsFatal)
{
    DecodeSlotAllocator a(5);
    EXPECT_EXIT(a.setPriorities(9, 4), ::testing::ExitedWithCode(1),
                "invalid priority");
}

TEST(SlotMode, Names)
{
    EXPECT_STREQ(slotModeName(SlotMode::Dual), "Dual");
    EXPECT_STREQ(slotModeName(SlotMode::LowPower), "LowPower");
}

} // namespace
} // namespace p5
