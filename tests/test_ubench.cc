/**
 * @file
 * Tests for the Table-2 micro-benchmarks: construction, instruction
 * mixes, cache-level targeting, and the paper's ST IPC ordering.
 */

#include <gtest/gtest.h>

#include "core/smt_core.hh"
#include "fame/fame.hh"
#include "ubench/ubench.hh"

namespace p5 {
namespace {

TEST(Ubench, AllFifteenBuild)
{
    EXPECT_EQ(allUbench().size(), 15u);
    for (UbenchId id : allUbench()) {
        SyntheticProgram p = makeUbench(id);
        EXPECT_GT(p.instrsPerExecution(), 0u) << ubenchName(id);
        EXPECT_EQ(p.name(), ubenchName(id));
    }
}

TEST(Ubench, NamesRoundTrip)
{
    for (UbenchId id : allUbench())
        EXPECT_EQ(ubenchFromName(ubenchName(id)), id);
}

TEST(UbenchDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(ubenchFromName("nope"), ::testing::ExitedWithCode(1),
                "unknown micro-benchmark");
}

TEST(Ubench, PresentedSetIsTheSixOfThePaper)
{
    const auto &six = presentedUbench();
    ASSERT_EQ(six.size(), 6u);
    EXPECT_EQ(six[0], UbenchId::CpuInt);
    EXPECT_EQ(six[5], UbenchId::LdintMem);
}

TEST(Ubench, GroupsMatchTable2)
{
    EXPECT_EQ(ubenchInfo(UbenchId::CpuInt).group, UbenchGroup::Integer);
    EXPECT_EQ(ubenchInfo(UbenchId::CpuFp).group,
              UbenchGroup::FloatingPoint);
    EXPECT_EQ(ubenchInfo(UbenchId::BrMiss).group, UbenchGroup::Branch);
    EXPECT_EQ(ubenchInfo(UbenchId::LdfpL2).group, UbenchGroup::Memory);
}

TEST(Ubench, MixesContainExpectedClasses)
{
    auto mix_of = [](UbenchId id, OpClass oc) {
        return makeUbench(id).opClassMix()[static_cast<int>(oc)];
    };
    EXPECT_GT(mix_of(UbenchId::CpuInt, OpClass::IntMul), 0u);
    EXPECT_EQ(mix_of(UbenchId::CpuIntAdd, OpClass::IntMul), 0u);
    EXPECT_GT(mix_of(UbenchId::CpuFp, OpClass::FpMul), 0u);
    EXPECT_GT(mix_of(UbenchId::BrHit, OpClass::Branch), 20u);
    EXPECT_GT(mix_of(UbenchId::LdintL2, OpClass::Load), 0u);
    EXPECT_GT(mix_of(UbenchId::LdintL2, OpClass::Store), 0u);
    EXPECT_GT(mix_of(UbenchId::LdfpMem, OpClass::FpAlu), 0u);
}

TEST(Ubench, ScaleMultipliesWork)
{
    SyntheticProgram base = makeUbench(UbenchId::CpuInt, 1.0);
    SyntheticProgram big = makeUbench(UbenchId::CpuInt, 2.0);
    EXPECT_NEAR(static_cast<double>(big.instrsPerExecution()),
                2.0 * static_cast<double>(base.instrsPerExecution()),
                static_cast<double>(base.phases()[0].body.size()));
}

/** Run one benchmark ST and return (ipc, dominant service level). */
struct StProfile
{
    double ipc;
    std::uint64_t l1, l2, l3, mem;
};

StProfile
profile(UbenchId id, Cycle cycles)
{
    SyntheticProgram prog = makeUbench(id);
    CoreParams params;
    SmtCore core(params);
    core.attachThread(0, &prog);
    core.run(cycles);
    StProfile p;
    p.ipc = core.ipcOf(0);
    p.l1 = static_cast<std::uint64_t>(core.stats().value("lsu.loads.l1"));
    p.l2 = static_cast<std::uint64_t>(core.stats().value("lsu.loads.l2"));
    p.l3 = static_cast<std::uint64_t>(core.stats().value("lsu.loads.l3"));
    p.mem =
        static_cast<std::uint64_t>(core.stats().value("lsu.loads.mem"));
    return p;
}

TEST(Ubench, LdintL1HitsL1)
{
    StProfile p = profile(UbenchId::LdintL1, 100000);
    EXPECT_GT(p.l1, 9 * (p.l2 + p.l3 + p.mem));
}

TEST(Ubench, LdintL2TargetsL2)
{
    StProfile p = profile(UbenchId::LdintL2, 500000);
    EXPECT_GT(p.l2, p.l3 + p.mem);
    EXPECT_GT(p.l2, 100u);
}

TEST(Ubench, LdintMemTargetsDram)
{
    StProfile p = profile(UbenchId::LdintMem, 300000);
    EXPECT_GT(p.mem, p.l2 + p.l3);
}

TEST(Ubench, LdfpVariantsBehaveLikeLdint)
{
    // Paper Sec. 4.2: the FP load benchmarks do not significantly
    // differ from the integer ones.
    StProfile i = profile(UbenchId::LdintL2, 400000);
    StProfile f = profile(UbenchId::LdfpL2, 400000);
    EXPECT_NEAR(f.ipc, i.ipc, 0.4 * i.ipc);
}

TEST(Ubench, BrHitFastBrMissSlow)
{
    StProfile hit = profile(UbenchId::BrHit, 100000);
    StProfile miss = profile(UbenchId::BrMiss, 100000);
    EXPECT_GT(hit.ipc, 1.5 * miss.ipc);
}

TEST(Ubench, CpuIntFamilyIsSimilar)
{
    // Paper: cpu_int, cpu_int_add and cpu_int_mul behave similarly.
    StProfile a = profile(UbenchId::CpuInt, 50000);
    StProfile b = profile(UbenchId::CpuIntAdd, 50000);
    StProfile c = profile(UbenchId::CpuIntMul, 50000);
    EXPECT_GT(b.ipc, 0.4 * a.ipc);
    EXPECT_LT(b.ipc, 2.5 * a.ipc);
    EXPECT_GT(c.ipc, 0.4 * a.ipc);
    EXPECT_LT(c.ipc, 2.5 * a.ipc);
}

TEST(Ubench, StIpcOrderingMatchesPaperTable3)
{
    // Table 3 ST column ordering:
    //   ldint_l1 > cpu_int > lng_chain > cpu_fp > ldint_l2 >> ldint_mem
    StProfile l1 = profile(UbenchId::LdintL1, 80000);
    StProfile ci = profile(UbenchId::CpuInt, 80000);
    StProfile lc = profile(UbenchId::LngChainCpuint, 80000);
    StProfile fp = profile(UbenchId::CpuFp, 80000);
    StProfile l2 = profile(UbenchId::LdintL2, 600000);
    StProfile mem = profile(UbenchId::LdintMem, 600000);

    EXPECT_GT(l1.ipc, ci.ipc);
    EXPECT_GT(ci.ipc, lc.ipc);
    EXPECT_GT(lc.ipc, l2.ipc);
    EXPECT_GT(fp.ipc, l2.ipc);
    EXPECT_GT(l2.ipc, 4.0 * mem.ipc);
}

TEST(Ubench, StIpcMagnitudesInPaperBands)
{
    // Rough absolute bands around the paper's Table 3 values.
    EXPECT_NEAR(profile(UbenchId::CpuInt, 80000).ipc, 1.14, 0.4);
    EXPECT_NEAR(profile(UbenchId::LngChainCpuint, 80000).ipc, 0.51,
                0.2);
    EXPECT_NEAR(profile(UbenchId::CpuFp, 80000).ipc, 0.41, 0.2);
    EXPECT_NEAR(profile(UbenchId::LdintL1, 80000).ipc, 2.29, 0.8);
    const double mem_ipc = profile(UbenchId::LdintMem, 600000).ipc;
    EXPECT_GT(mem_ipc, 0.005);
    EXPECT_LT(mem_ipc, 0.08);
}

} // namespace
} // namespace p5
