/**
 * @file
 * N-core Chip tests: parameter validation, the lockstep run()/tick()
 * equivalence (with coordinated fast-forward on and off), and the
 * paper's OS-noise methodology — noise pinned to core 0 contends with
 * a measured core only through the shared L2/L3/DRAM backside.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/chip.hh"
#include "test_helpers.hh"

namespace p5 {
namespace {

/** Per-(core, thread) committed counts of @p chip. */
std::vector<std::uint64_t>
committedSnapshot(const Chip &chip)
{
    std::vector<std::uint64_t> out;
    for (int c = 0; c < chip.numCores(); ++c)
        for (ThreadId t = 0; t < num_hw_threads; ++t)
            out.push_back(chip.core(c).committedOf(t));
    return out;
}

TEST(ChipN, ParamsBuildNCoresWithDistinctIds)
{
    for (int n : {1, 3, 4, max_cores}) {
        ChipParams params;
        params.numCores = n;
        Chip chip(params);
        EXPECT_EQ(chip.numCores(), n);
        for (int c = 0; c < n; ++c)
            EXPECT_EQ(chip.core(c).params().coreId, c);
        EXPECT_DEATH(chip.core(n), "out of range");
    }
}

TEST(ChipN, CoreCountValidated)
{
    ChipParams params;
    params.numCores = 0;
    EXPECT_EXIT(Chip{params}, ::testing::ExitedWithCode(1),
                "out of range");
    params.numCores = max_cores + 1;
    EXPECT_EXIT(Chip{params}, ::testing::ExitedWithCode(1),
                "out of range");
}

TEST(ChipN, CompatConstructorIsDualCore)
{
    CoreParams base;
    Chip chip(base);
    EXPECT_EQ(chip.numCores(), 2);
    EXPECT_EQ(chip.core(0).params().coreId, 0);
    EXPECT_EQ(chip.core(1).params().coreId, 1);
}

/**
 * chip.run() with the coordinated fast-forward must be bit-identical
 * to ticking every core cycle-by-cycle, for any core count. DRAM
 * chases leave long all-cores-idle gaps, so the joint skip engages
 * hard here; this is the regression guard for the reused-IdleGate bug
 * (a stale canUse[] latch made every probe after the first fail).
 */
TEST(ChipN, RunMatchesTickLoopForAnyCoreCount)
{
    for (int n : {1, 2, 4}) {
        ChipParams params;
        params.numCores = n;
        params.core.fastForward = true;
        Chip fast(params);
        params.core.fastForward = false;
        Chip slow(params);

        std::vector<SyntheticProgram> progs;
        progs.reserve(2 * static_cast<std::size_t>(n));
        for (int c = 0; c < n; ++c) {
            progs.push_back(test::dramChase(10000));
            progs.push_back(test::dramChase(10000));
        }
        for (int c = 0; c < n; ++c)
            for (ThreadId t = 0; t < num_hw_threads; ++t) {
                const auto &p =
                    progs[static_cast<std::size_t>(2 * c + t)];
                fast.core(c).attachThread(t, &p);
                slow.core(c).attachThread(t, &p);
            }

        constexpr Cycle cycles = 30000;
        fast.run(cycles);
        for (Cycle i = 0; i < cycles; ++i)
            slow.tick();

        EXPECT_EQ(fast.cycle(), slow.cycle()) << n << " cores";
        EXPECT_EQ(committedSnapshot(fast), committedSnapshot(slow))
            << n << " cores";
        EXPECT_EQ(fast.backside().l2().misses(),
                  slow.backside().l2().misses())
            << n << " cores";
    }
}

/**
 * Same identity with heterogeneous per-core workloads: compute-bound
 * cores are never individually idle, so the joint skip must correctly
 * refuse (a skip while any core can progress would reorder backside
 * arrivals).
 */
TEST(ChipN, FastForwardIdentityWithMixedWorkloads)
{
    ChipParams params;
    params.numCores = 4;
    params.core.fastForward = true;
    Chip fast(params);
    params.core.fastForward = false;
    Chip slow(params);

    auto mem_a = test::dramChase(10000);
    auto mem_b = test::dramChase(10000);
    auto alu = test::independentAlus(100000);
    auto chain = test::serialChain(100000);
    const SyntheticProgram *progs[4] = {&mem_a, &mem_b, &alu, &chain};
    for (int c = 0; c < 4; ++c) {
        fast.core(c).attachThread(0, progs[c]);
        slow.core(c).attachThread(0, progs[c]);
    }

    fast.run(20000);
    slow.run(20000);
    EXPECT_EQ(committedSnapshot(fast), committedSnapshot(slow));
    EXPECT_EQ(fast.backside().l3().misses(),
              slow.backside().l3().misses());
}

/**
 * A high-rate stream into the shared backside: 132 KiB-strided loads
 * alias into two L1 sets (17 lines vs 4 ways: guaranteed L1 misses)
 * but spread over L2 sets and TLB sets (the 33-page stride is coprime
 * with the TLB set count), so after one warm lap every access is a
 * TLB-resident L2 hit. Four independent loads per iteration give the
 * memory-level parallelism that presses on the shared L2 service
 * gate — a single self-chained chase is latency-bound and leaves the
 * gate idle. Distinct @p region_base per thread keeps one thread's
 * lines from warming the shared caches for another.
 */
SyntheticProgram
backsideStream(Addr region_base, std::uint64_t iterations = 10000)
{
    ProgramBuilder b("backside_stream");
    constexpr Addr stride = 132 * 1024;
    int pats[4];
    for (int k = 0; k < 4; ++k)
        pats[k] = b.memPattern(
            region_base + static_cast<Addr>(k) * 256 * 1024 * 1024,
            stride, 17 * stride);
    b.beginPhase(iterations);
    for (int k = 0; k < 4; ++k)
        b.load(static_cast<RegIndex>(k + 1), pats[k], 20);
    return b.build();
}

/**
 * The paper's Sec. 3 methodology: OS noise is pinned to core 0 so the
 * measured core contends with it only below the private L1s. A
 * memory-bound measured thread must slow down when core 0 streams
 * through the shared backside...
 */
TEST(ChipN, BacksideNoiseSlowsMemoryBoundMeasuredCore)
{
    CoreParams base;
    constexpr Addr gib = 1024 * 1024 * 1024;
    // Offset each thread's region so the three streams use disjoint
    // lines without stacking in one L2/L3 set family.
    auto measure = [&](bool with_noise) {
        Chip chip(base);
        auto measured = backsideStream(0);
        auto noise0 = backsideStream(2 * gib + 16 * 1024);
        auto noise1 = backsideStream(4 * gib + 32 * 1024);
        chip.core(1).attachThread(0, &measured);
        if (with_noise) {
            chip.core(0).attachThread(0, &noise0);
            chip.core(0).attachThread(1, &noise1);
        }
        chip.run(60000);
        return chip.core(1).committedOf(0);
    };
    const std::uint64_t quiet = measure(false);
    const std::uint64_t noisy = measure(true);
    EXPECT_GT(quiet, 0u);
    EXPECT_LT(noisy, quiet);
}

/**
 * ...while a compute-bound measured thread, which never leaves its
 * core, is bit-identically unaffected by the same noise — the only
 * shared resource on the chip is the backside.
 */
TEST(ChipN, ComputeBoundMeasuredCoreImmuneToBacksideNoise)
{
    CoreParams base;
    auto measure = [&](bool with_noise) {
        Chip chip(base);
        auto measured = test::independentAlus(100000);
        auto noise0 = test::dramChase(10000);
        auto noise1 = test::dramChase(10000);
        chip.core(1).attachThread(0, &measured);
        if (with_noise) {
            chip.core(0).attachThread(0, &noise0);
            chip.core(0).attachThread(1, &noise1);
        }
        chip.run(20000);
        return chip.core(1).committedOf(0);
    };
    const std::uint64_t quiet = measure(false);
    const std::uint64_t noisy = measure(true);
    EXPECT_GT(quiet, 0u);
    EXPECT_EQ(noisy, quiet);
}

#ifndef NDEBUG
/**
 * Advancing one core behind the chip's back violates the lockstep
 * contract; debug builds assert on the next chip-level cycle() read.
 */
TEST(ChipN, LockstepViolationAssertsInDebug)
{
    CoreParams base;
    Chip chip(base);
    chip.run(10);
    chip.core(0).tick();
    EXPECT_DEATH(chip.cycle(), "lockstep");
}
#endif

} // namespace
} // namespace p5
