/**
 * @file
 * In-process tests of the unified p5sim driver: per-subcommand --help,
 * unknown-key suggestions, provenance-stamped reports, equivalence of
 * the driver's data payload with the direct producer path (the
 * pre-driver bench binaries' output), sweep fan-out through the job
 * pool, and the `run` subcommand's StatGroup JSON dump.
 */

#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/thread_pool.hh"
#include "config/config.hh"
#include "driver/driver.hh"
#include "exp/experiments.hh"
#include "exp/report.hh"
#include "fame/sim_runner.hh"
#include "store/result_store.hh"

namespace p5 {
namespace {

struct Invocation
{
    int exitCode = 0;
    std::string out;
    std::string err;
};

/** Run the driver in-process with "p5sim" prepended as argv[0]. */
Invocation
invokeWithInput(const std::vector<const char *> &args,
                const std::string &input)
{
    std::vector<const char *> argv;
    argv.push_back("p5sim");
    argv.insert(argv.end(), args.begin(), args.end());
    std::ostringstream out, err;
    std::istringstream in(input);
    Invocation result;
    result.exitCode = driverMain(static_cast<int>(argv.size()),
                                 argv.data(), out, err, in);
    result.out = out.str();
    result.err = err.str();
    return result;
}

Invocation
invoke(std::initializer_list<const char *> args)
{
    return invokeWithInput(std::vector<const char *>(args), "");
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "p5sim_driver_" + name;
}

/**
 * Per-test result-store directory. TempDir() survives across runs, so
 * a store left by a previous (possibly failed) run is removed first —
 * the entry counts below assume a cold store.
 */
std::string
freshStoreDir(const std::string &name)
{
    const std::string dir = tempPath(name);
    DIR *top = ::opendir(dir.c_str());
    if (top) {
        while (const dirent *shard = ::readdir(top)) {
            const std::string sub = shard->d_name;
            if (sub == "." || sub == "..")
                continue;
            const std::string sub_path = dir + "/" + sub;
            DIR *inner = ::opendir(sub_path.c_str());
            if (inner) {
                while (const dirent *entry = ::readdir(inner)) {
                    const std::string file = entry->d_name;
                    if (file != "." && file != "..")
                        std::remove((sub_path + "/" + file).c_str());
                }
                ::closedir(inner);
                ::rmdir(sub_path.c_str());
            } else {
                std::remove(sub_path.c_str());
            }
        }
        ::closedir(top);
        ::rmdir(dir.c_str());
    }
    return dir;
}

JsonValue
readReport(const std::string &path)
{
    return parseJsonFile(path);
}

/** Dump a report with its "provenance" member removed. */
std::string
dumpWithoutProvenance(const JsonValue &report)
{
    JsonValue stripped = JsonValue::makeObject();
    for (const auto &m : report.members())
        if (m.first != "provenance")
            stripped.setMember(m.first, m.second);
    return stripped.dump();
}

// --- help / dispatch ---------------------------------------------------

TEST(Driver, GlobalHelpListsSubcommands)
{
    const Invocation help = invoke({"help"});
    EXPECT_EQ(help.exitCode, 0);
    for (const char *sub :
         {"table1", "table2", "table3", "table4", "fig2", "fig3",
          "fig4", "fig5", "fig6", "ablation", "run", "sweep", "alloc",
          "serve", "perf"})
        EXPECT_NE(help.out.find(sub), std::string::npos) << sub;
}

TEST(Driver, EverySubcommandAnswersHelp)
{
    for (const char *sub :
         {"table1", "table2", "table3", "table4", "fig2", "fig3",
          "fig4", "fig5", "fig6", "ablation", "run", "sweep", "alloc",
          "serve", "perf"}) {
        const Invocation help = invoke({sub, "--help"});
        EXPECT_EQ(help.exitCode, 0) << sub;
        EXPECT_NE(help.out.find("usage: p5sim " + std::string(sub)),
                  std::string::npos)
            << sub;
    }
    // The pair/sweep/alloc/store flags only appear where they apply.
    EXPECT_NE(invoke({"sweep", "--help"}).out.find("--sweep"),
              std::string::npos);
    EXPECT_NE(invoke({"sweep", "--help"}).out.find("--resume"),
              std::string::npos);
    EXPECT_NE(invoke({"serve", "--help"}).out.find("--store"),
              std::string::npos);
    EXPECT_EQ(invoke({"serve", "--help"}).out.find("--resume"),
              std::string::npos);
    EXPECT_NE(invoke({"run", "--help"}).out.find("--primary"),
              std::string::npos);
    EXPECT_NE(invoke({"alloc", "--help"}).out.find("--mix"),
              std::string::npos);
    EXPECT_EQ(invoke({"table3", "--help"}).out.find("--sweep"),
              std::string::npos);
    EXPECT_EQ(invoke({"table3", "--help"}).out.find("--mix"),
              std::string::npos);
}

TEST(Driver, NoArgumentsFailsWithUsage)
{
    const Invocation bare = invoke({});
    EXPECT_EQ(bare.exitCode, 1);
    EXPECT_NE(bare.err.find("usage:"), std::string::npos);
}

TEST(Driver, UnknownSubcommandFails)
{
    const Invocation bad = invoke({"table9"});
    EXPECT_EQ(bad.exitCode, 1);
    EXPECT_NE(bad.err.find("unknown subcommand 'table9'"),
              std::string::npos);
}

TEST(Driver, UnknownSetKeySuggestsNearestPath)
{
    EXPECT_EXIT(invoke({"table1", "--set", "core.decode_widht=4"}),
                ::testing::ExitedWithCode(1),
                "did you mean 'core.decode_width'");
}

TEST(Driver, OutOfRangeSetIsFatal)
{
    EXPECT_EXIT(invoke({"table1", "--set", "core.decode_width=99"}),
                ::testing::ExitedWithCode(1), "out of range");
}

// --- provenance --------------------------------------------------------

TEST(Driver, ReportsCarryProvenance)
{
    const std::string path = tempPath("table1.json");
    const Invocation run =
        invoke({"table1", ("--json=" + path).c_str()});
    ASSERT_EQ(run.exitCode, 0);

    const JsonValue report = readReport(path);
    const JsonValue *prov = report.find("provenance");
    ASSERT_NE(prov, nullptr);
    EXPECT_EQ(prov->find("schemaVersion")->asInt(),
              config_schema_version);
    EXPECT_EQ(prov->find("fingerprint")->asString().size(), 16u);
    EXPECT_EQ(prov->find("seed")->asInt(), 0);
    EXPECT_TRUE(prov->find("sweep")->isObject());
    std::remove(path.c_str());
}

TEST(Driver, FingerprintIsStableAndTracksOverrides)
{
    const std::string path_a = tempPath("fp_a.json");
    const std::string path_b = tempPath("fp_b.json");
    const std::string path_c = tempPath("fp_c.json");
    ASSERT_EQ(invoke({"table1", ("--json=" + path_a).c_str()}).exitCode,
              0);
    ASSERT_EQ(invoke({"table1", ("--json=" + path_b).c_str()}).exitCode,
              0);
    ASSERT_EQ(invoke({"table1", "--set", "core.lmq_entries=16",
                      ("--json=" + path_c).c_str()})
                  .exitCode,
              0);

    const std::string fp_a = readReport(path_a)
                                 .find("provenance")
                                 ->find("fingerprint")
                                 ->asString();
    const std::string fp_b = readReport(path_b)
                                 .find("provenance")
                                 ->find("fingerprint")
                                 ->asString();
    const std::string fp_c = readReport(path_c)
                                 .find("provenance")
                                 ->find("fingerprint")
                                 ->asString();
    EXPECT_EQ(fp_a, fp_b);
    EXPECT_NE(fp_a, fp_c);

    // The driver's fingerprint equals the one ConfigTree computes for
    // the same effective configuration.
    ExpConfig config;
    EXPECT_EQ(fp_a, ConfigTree(config).fingerprintHex());
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
    std::remove(path_c.c_str());
}

TEST(Driver, SeedIsStampedIntoProvenanceAndFingerprint)
{
    const std::string path = tempPath("seed.json");
    ASSERT_EQ(invoke({"table1", "--seed=42",
                      ("--json=" + path).c_str()})
                  .exitCode,
              0);
    const JsonValue report = readReport(path);
    EXPECT_EQ(report.find("provenance")->find("seed")->asInt(), 42);

    ExpConfig config;
    ConfigTree tree(config);
    tree.set("exp.seed", "42");
    EXPECT_EQ(report.find("provenance")->find("fingerprint")->asString(),
              tree.fingerprintHex());
    std::remove(path.c_str());
}

// --- equivalence with the direct producer path ------------------------

/**
 * Write the pre-driver bench_common.hh envelope (no provenance) around
 * the given payload — the exact byte layout the standalone bench
 * binaries produced before the driver refactor.
 */
template <typename PayloadFn>
std::string
legacyEnvelope(const char *experiment, const ExpConfig &config,
               std::uint64_t hits, std::uint64_t misses,
               PayloadFn &&payload)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.member("experiment", experiment);
        w.member("jobs", config.jobs ? config.jobs
                                     : ThreadPool::defaultWorkers());
        w.member("scale", config.ubenchScale);
        w.member("minRepetitions", config.fame.minRepetitions);
        w.member("maiv", config.fame.maiv);
        w.member("cacheHits", hits);
        w.member("cacheMisses", misses);
        w.key("data");
        payload(w);
        w.endObject();
    }
    return os.str();
}

/**
 * The driver's report must be byte-identical to the legacy bench
 * binary's, modulo the added "provenance" member. The cache counters
 * are process-cumulative, so the expected document borrows the actual
 * report's values for those two members — everything else (including
 * the full "data" payload) is compared byte-for-byte.
 */
void
expectLegacyEquivalent(const std::string &json_path,
                       const char *experiment,
                       const std::function<void(JsonWriter &)> &payload)
{
    const JsonValue report = readReport(json_path);
    ExpConfig config = ExpConfig::fast();
    const std::string expected = legacyEnvelope(
        experiment, config,
        static_cast<std::uint64_t>(
            report.find("cacheHits")->asInt()),
        static_cast<std::uint64_t>(
            report.find("cacheMisses")->asInt()),
        payload);
    EXPECT_EQ(dumpWithoutProvenance(report),
              parseJson(expected, "expected").dump());
}

TEST(Driver, Table3MatchesDirectProducerByteForByte)
{
    const std::string path = tempPath("table3.json");
    ASSERT_EQ(
        invoke({"table3", "--fast", ("--json=" + path).c_str()})
            .exitCode,
        0);

    // Direct producer path with a private cache (the driver's jobs are
    // keyed with the config fingerprint, so the process cache would
    // re-simulate anyway; a private cache keeps this test hermetic).
    ExpConfig config = ExpConfig::fast();
    ResultCache cache;
    config.cache = &cache;
    const Table3Data data = runTable3(config);
    expectLegacyEquivalent(path, "table3", [&](JsonWriter &w) {
        writeJson(w, data);
    });
    std::remove(path.c_str());
}

TEST(Driver, Fig6MatchesDirectProducerByteForByte)
{
    const std::string path = tempPath("fig6.json");
    ASSERT_EQ(invoke({"fig6", "--fast", ("--json=" + path).c_str()})
                  .exitCode,
              0);

    ExpConfig config = ExpConfig::fast();
    ResultCache cache;
    config.cache = &cache;
    const TransparencyData data = runFig6(config);
    expectLegacyEquivalent(path, "fig6", [&](JsonWriter &w) {
        writeJson(w, data);
    });
    std::remove(path.c_str());
}

// --- sweep -------------------------------------------------------------

TEST(Driver, SweepFansTheCartesianProductThroughThePool)
{
    const std::string path = tempPath("sweep.json");
    const Invocation run = invoke(
        {"sweep", "--fast", "--jobs=2", "--sweep",
         "core.lmq_entries=8,16", "--sweep", "core.walker_port_gap=0,2",
         ("--json=" + path).c_str()});
    ASSERT_EQ(run.exitCode, 0);

    const JsonValue report = readReport(path);
    EXPECT_EQ(report.find("experiment")->asString(), "sweep");
    EXPECT_EQ(report.find("jobs")->asInt(), 2);

    // The envelope records the axes...
    const JsonValue *sweep =
        report.find("provenance")->find("sweep");
    ASSERT_NE(sweep->find("core.lmq_entries"), nullptr);
    EXPECT_EQ(sweep->find("core.lmq_entries")->asString(), "8,16");
    EXPECT_EQ(sweep->find("core.walker_port_gap")->asString(), "0,2");

    // ...and the payload one point per product element, each with its
    // own coordinates and a distinct fingerprint.
    const JsonValue *points = report.find("data")->find("points");
    ASSERT_EQ(points->elements().size(), 4u);
    std::vector<std::string> fingerprints;
    for (const JsonValue &pt : points->elements()) {
        const JsonValue *coords = pt.find("coords");
        ASSERT_NE(coords->find("core.lmq_entries"), nullptr);
        ASSERT_NE(coords->find("core.walker_port_gap"), nullptr);
        fingerprints.push_back(pt.find("fingerprint")->asString());
        EXPECT_GT(pt.find("ipcTotal")->asDouble(), 0.0);
    }
    std::sort(fingerprints.begin(), fingerprints.end());
    EXPECT_EQ(std::unique(fingerprints.begin(), fingerprints.end()),
              fingerprints.end())
        << "every sweep point must have a distinct fingerprint";
    std::remove(path.c_str());
}

TEST(Driver, RepeatedSweepIsServedFromTheResultCache)
{
    const std::string path_a = tempPath("sweep_a.json");
    const std::string path_b = tempPath("sweep_b.json");
    ASSERT_EQ(invoke({"sweep", "--fast", "--sweep",
                      "core.mem.dram_latency=200,260",
                      ("--json=" + path_a).c_str()})
                  .exitCode,
              0);
    const Invocation second = invoke(
        {"sweep", "--fast", "--sweep", "core.mem.dram_latency=200,260",
         ("--json=" + path_b).c_str()});
    ASSERT_EQ(second.exitCode, 0);

    // Identical (config, job) pairs coalesce: the second run adds no
    // misses to the process-wide cache, only hits.
    const JsonValue a = readReport(path_a);
    const JsonValue b = readReport(path_b);
    EXPECT_EQ(a.find("cacheMisses")->asInt(),
              b.find("cacheMisses")->asInt());
    EXPECT_GE(b.find("cacheHits")->asInt(),
              a.find("cacheHits")->asInt() + 2);
    // Same configs -> same per-point fingerprints.
    EXPECT_EQ(a.find("data")->dump(), b.find("data")->dump());
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(Driver, SweepWithoutAxesIsFatal)
{
    EXPECT_EXIT(invoke({"sweep", "--fast"}),
                ::testing::ExitedWithCode(1), "--sweep");
    EXPECT_EXIT(invoke({"sweep", "--fast", "--sweep", "no-equals"}),
                ::testing::ExitedWithCode(1), "key=v1,v2");
    EXPECT_EXIT(invoke({"sweep", "--fast", "--sweep",
                        "core.lmq_entrees=4,8"}),
                ::testing::ExitedWithCode(1), "did you mean");
}

TEST(Driver, SweepRejectsDuplicateAxes)
{
    // A path swept twice would multiply the point count while only the
    // later axis's value ever applied.
    EXPECT_EXIT(invoke({"sweep", "--fast", "--sweep",
                        "core.lmq_entries=8,16", "--sweep",
                        "core.lmq_entries=8,12"}),
                ::testing::ExitedWithCode(1),
                "duplicate --sweep axis 'core.lmq_entries'");
}

TEST(Driver, SweepStoreFlagsAreValidated)
{
    EXPECT_EXIT(invoke({"sweep", "--fast", "--sweep",
                        "core.lmq_entries=8,16", "--resume"}),
                ::testing::ExitedWithCode(1),
                "--resume requires --store");
    for (const char *bad : {"2", "a/b", "2/2", "-1/2", "0/0", "1/2x"})
        EXPECT_EXIT(invoke({"sweep", "--fast", "--sweep",
                            "core.lmq_entries=8,16", "--store",
                            "/tmp/unused", "--shard", bad}),
                    ::testing::ExitedWithCode(1),
                    "--shard expects i/N")
            << bad;
}

// --- sweep + persistent store -----------------------------------------

TEST(Driver, SweepResumeRecomputesOnlyTheMissingPoints)
{
    // The interrupted-sweep scenario: shard 0/2 completes half the
    // product and dies; the full --resume run must simulate only the
    // other half, then a second --resume run must simulate nothing.
    const std::string dir = freshStoreDir("store_resume");
    const std::string half = tempPath("resume_half.json");
    const std::string full_a = tempPath("resume_full_a.json");
    const std::string full_b = tempPath("resume_full_b.json");
    // Axis values unique to this test so the process-wide result
    // cache is cold for every point.
    const char *axis = "core.mem.dram_latency=203,263";

    ASSERT_EQ(invoke({"sweep", "--fast", "--sweep", axis, "--sweep",
                      "core.walker_port_gap=1,3", "--store",
                      dir.c_str(), "--shard", "0/2",
                      ("--json=" + half).c_str()})
                  .exitCode,
              0);
    const JsonValue half_report = readReport(half);
    EXPECT_EQ(half_report.find("data")
                  ->find("store")
                  ->find("recomputed")
                  ->asInt(),
              2);

    // A fresh process would start with an empty in-process cache; the
    // clear makes the in-process invocation equivalent.
    ResultCache::process().clear();
    const Invocation resumed = invokeWithInput(
        {"sweep", "--fast", "--sweep", axis, "--sweep",
         "core.walker_port_gap=1,3", "--store", dir.c_str(), "--resume",
         ("--json=" + full_a).c_str()},
        "");
    ASSERT_EQ(resumed.exitCode, 0);
    EXPECT_NE(resumed.out.find("store: 2 stored, 2 recomputed"),
              std::string::npos)
        << resumed.out;
    const JsonValue report_a = readReport(full_a);
    const JsonValue *store_a = report_a.find("data")->find("store");
    ASSERT_NE(store_a, nullptr);
    EXPECT_EQ(store_a->find("stored")->asInt(), 2);
    EXPECT_EQ(store_a->find("recomputed")->asInt(), 2);
    EXPECT_EQ(store_a->find("entries")->asInt(), 4);

    ResultCache::process().clear();
    const Invocation second = invokeWithInput(
        {"sweep", "--fast", "--sweep", axis, "--sweep",
         "core.walker_port_gap=1,3", "--store", dir.c_str(), "--resume",
         ("--json=" + full_b).c_str()},
        "");
    ASSERT_EQ(second.exitCode, 0);
    const JsonValue report_b = readReport(full_b);
    EXPECT_EQ(
        report_b.find("data")->find("store")->find("stored")->asInt(),
        4);
    EXPECT_EQ(report_b.find("data")
                  ->find("store")
                  ->find("recomputed")
                  ->asInt(),
              0);

    // Store-served and freshly-simulated runs publish byte-identical
    // point data (what CI's store-smoke job diffs).
    EXPECT_EQ(report_a.find("data")->find("points")->dump(),
              report_b.find("data")->find("points")->dump());
    std::remove(half.c_str());
    std::remove(full_a.c_str());
    std::remove(full_b.c_str());
}

TEST(Driver, ShardsPartitionTheProductWithIdenticalFingerprints)
{
    const std::string full = tempPath("shard_full.json");
    const std::string s0 = tempPath("shard_0.json");
    const std::string s1 = tempPath("shard_1.json");
    const char *axis = "core.mem.dram_latency=205,265";

    ASSERT_EQ(invoke({"sweep", "--fast", "--sweep", axis, "--sweep",
                      "core.walker_port_gap=0,2",
                      ("--json=" + full).c_str()})
                  .exitCode,
              0);
    ASSERT_EQ(invoke({"sweep", "--fast", "--sweep", axis, "--sweep",
                      "core.walker_port_gap=0,2", "--shard", "0/2",
                      ("--json=" + s0).c_str()})
                  .exitCode,
              0);
    ASSERT_EQ(invoke({"sweep", "--fast", "--sweep", axis, "--sweep",
                      "core.walker_port_gap=0,2", "--shard", "1/2",
                      ("--json=" + s1).c_str()})
                  .exitCode,
              0);

    const auto fingerprints = [](const JsonValue &report) {
        std::vector<std::string> fps;
        for (const JsonValue &pt :
             report.find("data")->find("points")->elements())
            fps.push_back(pt.find("fingerprint")->asString());
        return fps;
    };
    const JsonValue full_report = readReport(full);
    std::vector<std::string> expect = fingerprints(full_report);
    ASSERT_EQ(expect.size(), 4u);

    const JsonValue report_0 = readReport(s0);
    const JsonValue report_1 = readReport(s1);
    std::vector<std::string> got = fingerprints(report_0);
    const std::vector<std::string> half_1 = fingerprints(report_1);
    got.insert(got.end(), half_1.begin(), half_1.end());
    EXPECT_EQ(got.size(), 4u);

    // Exact partition: same multiset of per-point fingerprints as the
    // unsharded product, no overlap, no gap.
    std::sort(expect.begin(), expect.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(expect, got);

    const JsonValue *shard = report_0.find("data")->find("shard");
    ASSERT_NE(shard, nullptr);
    EXPECT_EQ(shard->find("index")->asInt(), 0);
    EXPECT_EQ(shard->find("count")->asInt(), 2);
    EXPECT_EQ(shard->find("pointsTotal")->asInt(), 4);
    EXPECT_EQ(shard->find("pointsKept")->asInt(), 2);
    // The unsharded report has no shard member at all.
    EXPECT_EQ(full_report.find("data")->find("shard"), nullptr);
    std::remove(full.c_str());
    std::remove(s0.c_str());
    std::remove(s1.c_str());
}

TEST(Driver, ConcurrentShardInvocationsShareOneStore)
{
    const std::string dir = freshStoreDir("store_concurrent");
    const std::string s0 = tempPath("conc_0.json");
    const std::string s1 = tempPath("conc_1.json");
    const char *axis = "core.mem.dram_latency=207,267";

    auto runShard = [&](const char *shard, const std::string &json) {
        return invokeWithInput(
            {"sweep", "--fast", "--sweep", axis, "--sweep",
             "core.walker_port_gap=1,3", "--store", dir.c_str(),
             "--shard", shard, ("--json=" + json).c_str()},
            "");
    };
    Invocation r0, r1;
    std::thread t0([&] { r0 = runShard("0/2", s0); });
    std::thread t1([&] { r1 = runShard("1/2", s1); });
    t0.join();
    t1.join();
    ASSERT_EQ(r0.exitCode, 0);
    ASSERT_EQ(r1.exitCode, 0);

    // Both writers account for their half of the product...
    const JsonValue report_0 = readReport(s0);
    const JsonValue report_1 = readReport(s1);
    EXPECT_EQ(report_0.find("data")
                      ->find("store")
                      ->find("recomputed")
                      ->asInt() +
                  report_1.find("data")
                      ->find("store")
                      ->find("recomputed")
                      ->asInt(),
              4);

    // ...and zero points were lost or duplicated. Asserted after both
    // shards have fully joined (a shard's own report may legitimately
    // be written while its sibling is still publishing): a full resume
    // pass sees all four points on disk and recomputes nothing.
    const std::string full = tempPath("conc_full.json");
    const Invocation rf = invokeWithInput(
        {"sweep", "--fast", "--sweep", axis, "--sweep",
         "core.walker_port_gap=1,3", "--store", dir.c_str(), "--resume",
         ("--json=" + full).c_str()},
        "");
    ASSERT_EQ(rf.exitCode, 0);
    const JsonValue report_full = readReport(full);
    EXPECT_EQ(
        report_full.find("data")->find("store")->find("entries")->asInt(),
        4);
    EXPECT_EQ(report_full.find("data")
                  ->find("store")
                  ->find("recomputed")
                  ->asInt(),
              0);
    std::remove(full.c_str());
    std::remove(s0.c_str());
    std::remove(s1.c_str());
}

TEST(DriverDeath, ResumeFromAForeignSchemaVersionIsRefused)
{
    const std::string dir = freshStoreDir("store_foreign");
    ASSERT_EQ(invoke({"sweep", "--fast", "--sweep",
                      "core.mem.dram_latency=209,269", "--store",
                      dir.c_str()})
                  .exitCode,
              0);
    // Forge a store written under a different config schema.
    {
        std::ofstream os(dir + "/store_meta.json", std::ios::trunc);
        os << "{\n  \"storeVersion\": 1,\n  \"schemaVersion\": 99\n}\n";
    }
    EXPECT_EXIT(invoke({"sweep", "--fast", "--sweep",
                        "core.mem.dram_latency=209,269", "--store",
                        dir.c_str(), "--resume"}),
                ::testing::ExitedWithCode(1), "schema version");
}

// --- serve -------------------------------------------------------------

TEST(Driver, ServeAnswersFingerprintAndStoreQueries)
{
    const std::string dir = freshStoreDir("serve_store");
    ASSERT_EQ(invoke({"sweep", "--fast", "--sweep",
                      "core.mem.dram_latency=211,271", "--store",
                      dir.c_str()})
                  .exitCode,
              0);

    // The config fingerprint of a known override set, computed out of
    // band, must match what the server answers.
    ExpConfig expect_config = ExpConfig::fast();
    std::string expect_tag;
    {
        ConfigTree tree(expect_config);
        tree.set("core.mem.dram_latency", "211");
        tree.stampTag();
        expect_tag = expect_config.configTag;
    }

    const Invocation serve = invokeWithInput(
        {"serve", "--fast", "--store", dir.c_str()},
        "fingerprint core.mem.dram_latency=211\n"
        "stat\n"
        "get 0123456789abcdef\n"
        "get not-a-fingerprint\n"
        "fingerprint core.mem.dram_latencee=211\n"
        "frobnicate\n"
        "quit\n");
    ASSERT_EQ(serve.exitCode, 0);

    std::istringstream lines(serve.out);
    std::string line;

    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"fingerprint\": \"" + expect_tag + "\""),
              std::string::npos)
        << line;

    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"entries\": 2"), std::string::npos) << line;

    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("no stored result"), std::string::npos) << line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("no stored result"), std::string::npos) << line;

    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("unknown config key"), std::string::npos)
        << line;
    EXPECT_NE(line.find("did you mean"), std::string::npos) << line;

    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("unknown command"), std::string::npos) << line;

    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"ok\": true"), std::string::npos) << line;

    // Every reply is one line of JSON; nothing after quit.
    EXPECT_FALSE(std::getline(lines, line)) << line;
}

TEST(Driver, ServeReturnsStoredDocumentsVerbatim)
{
    const std::string dir = freshStoreDir("serve_get");
    // Seed the store out of band with a known job.
    FameParams fame;
    fame.minRepetitions = 3;
    fame.warmupRepetitions = 1;
    fame.maiv = 0.05;
    fame.warmupTolerance = 0.25;
    const SimJob job = SimJob::famePair(
        ProgramSpec::ubench(UbenchId::CpuInt, 0.5),
        ProgramSpec::ubench(UbenchId::CpuInt, 0.5), 3, 5, CoreParams{},
        fame);
    const std::string fp = ResultStore::fingerprintHex(job);
    {
        ResultStore store(dir);
        StoreProvenance prov;
        prov.seed = 42;
        store.put(job, job.execute(), prov);
    }

    const Invocation serve = invokeWithInput(
        {"serve", "--fast", "--store", dir.c_str()},
        "get " + fp + "\nquit\n");
    ASSERT_EQ(serve.exitCode, 0);
    std::istringstream lines(serve.out);
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"fingerprint\": \"" + fp + "\""),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"seed\": 42"), std::string::npos) << line;
    // The reply embeds the full result document on one line.
    const JsonValue doc = parseJson(line);
    EXPECT_EQ(doc.find("jobKey")->asString(), job.key());
    ASSERT_NE(doc.find("result"), nullptr);
    EXPECT_EQ(doc.find("result")->find("kind")->asString(), "fame");
}

TEST(DriverDeath, ServeRequiresAStore)
{
    EXPECT_EXIT(invoke({"serve", "--fast"}),
                ::testing::ExitedWithCode(1),
                "serve requires --store");
}

TEST(Driver, ServeAnswersMultiGetAndMget)
{
    const std::string dir = freshStoreDir("serve_mget");
    FameParams fame;
    fame.minRepetitions = 3;
    fame.warmupRepetitions = 1;
    fame.maiv = 0.05;
    fame.warmupTolerance = 0.25;
    const SimJob job_a = SimJob::famePair(
        ProgramSpec::ubench(UbenchId::CpuInt, 0.5),
        ProgramSpec::ubench(UbenchId::CpuInt, 0.5), 2, 6, CoreParams{},
        fame);
    const SimJob job_b = SimJob::famePair(
        ProgramSpec::ubench(UbenchId::CpuInt, 0.5),
        ProgramSpec::ubench(UbenchId::CpuInt, 0.5), 6, 2, CoreParams{},
        fame);
    const std::string fp_a = ResultStore::fingerprintHex(job_a);
    const std::string fp_b = ResultStore::fingerprintHex(job_b);
    {
        ResultStore store(dir);
        store.put(job_a, job_a.execute(), StoreProvenance{});
        store.put(job_b, job_b.execute(), StoreProvenance{});
    }

    const Invocation serve = invokeWithInput(
        {"serve", "--fast", "--store", dir.c_str()},
        "get " + fp_a + " " + fp_b + " 0123456789abcdef\n" +
            "mget " + fp_a + " 0123456789abcdef\n" + "mget\nquit\n");
    ASSERT_EQ(serve.exitCode, 0);
    std::istringstream lines(serve.out);
    std::string line;

    // Multi-get: one reply line per fingerprint, in request order,
    // with misses as inline error lines that don't end the batch.
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"fingerprint\": \"" + fp_a + "\""),
              std::string::npos)
        << line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"fingerprint\": \"" + fp_b + "\""),
              std::string::npos)
        << line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("no stored result"), std::string::npos) << line;

    // mget: exactly one reply line; "results" parallels the request.
    ASSERT_TRUE(std::getline(lines, line));
    {
        const JsonValue reply = parseJson(line);
        const JsonValue *results = reply.find("results");
        ASSERT_NE(results, nullptr);
        ASSERT_TRUE(results->isArray());
        ASSERT_EQ(results->elements().size(), 2u);
        EXPECT_EQ(
            results->elements()[0].find("fingerprint")->asString(),
            fp_a);
        ASSERT_NE(results->elements()[1].find("error"), nullptr);
    }

    // Zero fingerprints is a usage error, then the clean shutdown.
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("mget expects"), std::string::npos) << line;
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_NE(line.find("\"ok\": true"), std::string::npos) << line;
    EXPECT_FALSE(std::getline(lines, line)) << line;
}

// --- store-gc ----------------------------------------------------------

TEST(Driver, StoreGcReclaimsDeadFilesOnlyOnApply)
{
    const std::string dir = freshStoreDir("store_gc");
    ASSERT_EQ(invoke({"sweep", "--fast", "--sweep",
                      "core.mem.dram_latency=215,275", "--store",
                      dir.c_str()})
                  .exitCode,
              0);

    // Plant every flavor of garbage next to the live entries.
    std::string shard;
    {
        DIR *top = ::opendir(dir.c_str());
        ASSERT_NE(top, nullptr);
        while (const dirent *entry = ::readdir(top)) {
            const std::string name = entry->d_name;
            if (name == "." || name == ".." || name == "ckpt" ||
                name.find('.') != std::string::npos)
                continue;
            shard = dir + "/" + name;
            break;
        }
        ::closedir(top);
    }
    ASSERT_FALSE(shard.empty());
    const std::string bad = shard + "/deadbeefdeadbeef-v1.json.bad";
    const std::string temp = shard + "/feedfacefeedface-v1.json.tmp.7";
    const std::string old_gen = shard + "/0123456789abcdef-v0.json";
    for (const std::string &path : {bad, temp, old_gen})
        std::ofstream(path) << "junk\n";

    // Dry run (the default): candidates are listed, nothing deleted.
    const Invocation dry =
        invoke({"store-gc", "--store", dir.c_str()});
    ASSERT_EQ(dry.exitCode, 0);
    EXPECT_NE(dry.out.find("quarantined"), std::string::npos);
    EXPECT_NE(dry.out.find("orphan temp"), std::string::npos);
    EXPECT_NE(dry.out.find("superseded result schema"),
              std::string::npos);
    EXPECT_NE(dry.out.find("dry run"), std::string::npos);
    for (const std::string &path : {bad, temp, old_gen}) {
        std::ifstream is(path);
        EXPECT_TRUE(is.good()) << path;
    }

    // Apply: the garbage goes, the live entries and meta stay.
    const std::string gc_json = tempPath("store_gc.json");
    const Invocation applied =
        invoke({"store-gc", "--store", dir.c_str(), "--apply",
                ("--json=" + gc_json).c_str()});
    ASSERT_EQ(applied.exitCode, 0);
    for (const std::string &path : {bad, temp, old_gen}) {
        std::ifstream is(path);
        EXPECT_FALSE(is.good()) << path;
    }
    {
        std::ifstream is(dir + "/store_meta.json");
        EXPECT_TRUE(is.good());
        ResultStore reopened(dir);
        EXPECT_EQ(reopened.countEntries(), 2u);
    }
    const JsonValue report = readReport(gc_json);
    EXPECT_EQ(report.find("experiment")->asString(), "store-gc");
    EXPECT_TRUE(report.find("applied")->asBool());
    EXPECT_EQ(report.find("candidates")->asInt(), 3);
    EXPECT_EQ(report.find("removed")->asInt(), 3);
    EXPECT_GT(report.find("bytesReclaimed")->asInt(), 0);

    // A clean store has nothing to collect.
    const Invocation clean =
        invoke({"store-gc", "--store", dir.c_str()});
    ASSERT_EQ(clean.exitCode, 0);
    EXPECT_NE(clean.out.find("0 candidates"), std::string::npos);
    std::remove(gc_json.c_str());
}

TEST(DriverDeath, StoreGcRequiresAStore)
{
    EXPECT_EXIT(invoke({"store-gc"}), ::testing::ExitedWithCode(1),
                "store-gc requires --store");
}

// --- checkpointed experiments ------------------------------------------

/**
 * Driver-level acceptance of the checkpoint/fork path: table3 runs
 * that differ only in exp.seed share warm keys (the seed is
 * measurement provenance, not warm identity), so the second process
 * forks every warm-up from the first one's --checkpoint-dir — and both
 * print byte-identical tables to a cold (--no-checkpoint) run's.
 */
TEST(Driver, CheckpointedTable3IsByteIdenticalAndAccounted)
{
    const std::string ck = freshStoreDir("ck_table3");
    const std::string j1 = tempPath("ck_t3_1.json");
    const std::string j2 = tempPath("ck_t3_2.json");
    const std::string j3 = tempPath("ck_t3_3.json");

    const Invocation r1 =
        invoke({"table3", "--fast", "--seed", "1001",
                ("--checkpoint-dir=" + ck).c_str(),
                ("--json=" + j1).c_str()});
    const Invocation r2 =
        invoke({"table3", "--fast", "--seed", "1002",
                ("--checkpoint-dir=" + ck).c_str(),
                ("--json=" + j2).c_str()});
    const Invocation r3 =
        invoke({"table3", "--fast", "--seed", "1003", "--no-checkpoint",
                ("--json=" + j3).c_str()});
    ASSERT_EQ(r1.exitCode, 0);
    ASSERT_EQ(r2.exitCode, 0);
    ASSERT_EQ(r3.exitCode, 0);

    // Checkpointing must be invisible in the table output.
    EXPECT_EQ(r1.out, r3.out);
    EXPECT_EQ(r2.out, r3.out);

    // Accounting: run 1 warms everything; run 2 (fresh job keys, so no
    // in-process cache hits) forks every warm key from the store.
    const JsonValue report_1 = readReport(j1);
    const JsonValue report_2 = readReport(j2);
    const JsonValue report_3 = readReport(j3);
    const JsonValue *ck1 =
        report_1.find("provenance")->find("checkpoints");
    const JsonValue *ck2 =
        report_2.find("provenance")->find("checkpoints");
    const JsonValue *ck3 =
        report_3.find("provenance")->find("checkpoints");
    ASSERT_NE(ck1, nullptr);
    ASSERT_NE(ck2, nullptr);
    ASSERT_NE(ck3, nullptr);
    EXPECT_TRUE(ck1->find("enabled")->asBool());
    const std::int64_t warmed = ck1->find("warms")->asInt();
    EXPECT_GT(warmed, 0);
    EXPECT_EQ(ck1->find("storeForks")->asInt(), 0);
    EXPECT_EQ(ck2->find("warms")->asInt(), 0);
    EXPECT_EQ(ck2->find("storeForks")->asInt(), warmed);
    EXPECT_FALSE(ck3->find("enabled")->asBool());

    // The accounting line goes to stderr, never stdout.
    EXPECT_NE(r1.err.find("checkpoints:"), std::string::npos);
    EXPECT_NE(r2.err.find("restored from store"), std::string::npos);
    EXPECT_EQ(r3.err.find("checkpoints:"), std::string::npos);
    EXPECT_EQ(r1.out.find("checkpoints:"), std::string::npos);

    std::remove(j1.c_str());
    std::remove(j2.c_str());
    std::remove(j3.c_str());
}

// --- run ---------------------------------------------------------------

TEST(Driver, RunRoutesCoreStatsThroughDumpJson)
{
    const std::string path = tempPath("run.json");
    const Invocation run =
        invoke({"run", "--fast", "--primary=cpu_int",
                "--secondary=cpu_int", "--prio-p=6", "--prio-s=2",
                ("--json=" + path).c_str()});
    ASSERT_EQ(run.exitCode, 0);
    EXPECT_NE(run.out.find("p5sim run: cpu_int + cpu_int at (6,2)"),
              std::string::npos);

    const JsonValue report = readReport(path);
    const JsonValue *data = report.find("data");
    EXPECT_EQ(data->find("primary")->asString(), "cpu_int");
    EXPECT_EQ(data->find("prioP")->asInt(), 6);
    EXPECT_TRUE(data->find("converged")->asBool());
    EXPECT_GT(data->find("ipcTotal")->asDouble(), 0.0);

    // The full per-core StatGroup rides along as one flat object.
    const JsonValue *stats = data->find("stats");
    ASSERT_NE(stats, nullptr);
    ASSERT_TRUE(stats->isObject());
    EXPECT_GT(stats->members().size(), 20u);
    bool has_cycle_counter = false;
    for (const auto &m : stats->members())
        if (m.second.isInt() || m.second.isDouble())
            has_cycle_counter = true;
    EXPECT_TRUE(has_cycle_counter);

    // The symbiosis sampler rides along too: per-thread series plus
    // the quantum provenance, so the dump alone supports offline
    // allocation replay (EXPERIMENTS.md).
    ASSERT_NE(data->find("symbiosisQuanta"), nullptr);
    ASSERT_NE(data->find("symbiosisQuantum"), nullptr);
    EXPECT_GT(data->find("symbiosisQuantum")->asInt(), 0);
    const JsonValue *series = stats->find("thread0.symbiosis.ipc");
    ASSERT_NE(series, nullptr);
    EXPECT_TRUE(series->isArray());
    std::remove(path.c_str());
}

TEST(Driver, RunSingleThreadMode)
{
    const Invocation run =
        invoke({"run", "--fast", "--primary=cpu_int",
                "--secondary=none"});
    EXPECT_EQ(run.exitCode, 0);
    EXPECT_NE(run.out.find("cpu_int + none"), std::string::npos);
}

// --- alloc -------------------------------------------------------------

TEST(Driver, AllocComparesPoliciesOnAnNCoreChip)
{
    const std::string path_a = tempPath("alloc_a.json");
    const std::string path_b = tempPath("alloc_b.json");
    const auto run_once = [&](const std::string &path) {
        return invoke({"alloc", "--fast",
                       "--mix=cpu_int,ldint_mem,cpu_int,ldint_mem",
                       "--policies=pinned,random", "--cycles=40000",
                       "--set", "chip.num_cores=2", "--set",
                       "sched.quantum=5000",
                       ("--json=" + path).c_str()});
    };
    const Invocation run = run_once(path_a);
    ASSERT_EQ(run.exitCode, 0);
    EXPECT_NE(run.out.find("Allocation policies"), std::string::npos);

    const JsonValue report = readReport(path_a);
    EXPECT_EQ(report.find("experiment")->asString(), "alloc");
    const JsonValue *data = report.find("data");
    EXPECT_EQ(data->find("kind")->asString(), "alloc_study");
    EXPECT_EQ(data->find("numCores")->asInt(), 2);
    EXPECT_EQ(data->find("cycles")->asInt(), 40000);
    ASSERT_EQ(data->find("mix")->elements().size(), 4u);

    const JsonValue *outcomes = data->find("outcomes");
    ASSERT_EQ(outcomes->elements().size(), 2u);
    const JsonValue &pinned = outcomes->elements()[0];
    EXPECT_EQ(pinned.find("policy")->asString(), "pinned");
    EXPECT_EQ(pinned.find("migrations")->asInt(), 0);
    for (const JsonValue &out : outcomes->elements()) {
        EXPECT_EQ(out.find("checkViolations")->asInt(), 0);
        EXPECT_EQ(out.find("quanta")->asInt(), 8);
        EXPECT_GT(out.find("aggregateIpc")->asDouble(), 0.0);
        EXPECT_EQ(out.find("threadIpc")->elements().size(), 4u);
    }

    // Same config -> bit-identical study (reproducible from the
    // fingerprint alone).
    ASSERT_EQ(run_once(path_b).exitCode, 0);
    EXPECT_EQ(readReport(path_b).find("data")->dump(), data->dump());
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(Driver, AllocRejectsBadInputs)
{
    EXPECT_EXIT(invoke({"alloc", "--fast", "--policies=bogus"}),
                ::testing::ExitedWithCode(1), "bogus");
    EXPECT_EXIT(invoke({"alloc", "--fast", "--mix=not_a_bench"}),
                ::testing::ExitedWithCode(1), "not_a_bench");
    EXPECT_EXIT(invoke({"alloc", "--fast", "--cycles=0"}),
                ::testing::ExitedWithCode(1), "cycles");
}

// --- config file / save-config round trip ------------------------------

TEST(Driver, SaveConfigThenLoadReproducesTheFingerprint)
{
    const std::string cfg = tempPath("saved_config.json");
    const std::string path_a = tempPath("cfgrt_a.json");
    const std::string path_b = tempPath("cfgrt_b.json");

    ASSERT_EQ(invoke({"table1", "--set", "core.lmq_entries=16", "--set",
                      "core.balancer.action=flush",
                      ("--save-config=" + cfg).c_str(),
                      ("--json=" + path_a).c_str()})
                  .exitCode,
              0);
    ASSERT_EQ(invoke({"table1", ("--config=" + cfg).c_str(),
                      ("--json=" + path_b).c_str()})
                  .exitCode,
              0);

    EXPECT_EQ(readReport(path_a)
                  .find("provenance")
                  ->find("fingerprint")
                  ->asString(),
              readReport(path_b)
                  .find("provenance")
                  ->find("fingerprint")
                  ->asString());
    std::remove(cfg.c_str());
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(Driver, CsvModeEmitsCsvTables)
{
    const Invocation run = invoke({"table1", "--csv"});
    EXPECT_EQ(run.exitCode, 0);
    EXPECT_EQ(run.out.rfind("# ", 0), 0u)
        << "CSV mode starts with the '# <title>' comment line";
}

} // namespace
} // namespace p5
