/**
 * @file
 * In-process tests of the unified p5sim driver: per-subcommand --help,
 * unknown-key suggestions, provenance-stamped reports, equivalence of
 * the driver's data payload with the direct producer path (the
 * pre-driver bench binaries' output), sweep fan-out through the job
 * pool, and the `run` subcommand's StatGroup JSON dump.
 */

#include <cstdio>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/thread_pool.hh"
#include "config/config.hh"
#include "driver/driver.hh"
#include "exp/experiments.hh"
#include "exp/report.hh"
#include "fame/sim_runner.hh"

namespace p5 {
namespace {

struct Invocation
{
    int exitCode = 0;
    std::string out;
    std::string err;
};

/** Run the driver in-process with "p5sim" prepended as argv[0]. */
Invocation
invoke(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv;
    argv.push_back("p5sim");
    argv.insert(argv.end(), args);
    std::ostringstream out, err;
    Invocation result;
    result.exitCode = driverMain(static_cast<int>(argv.size()),
                                 argv.data(), out, err);
    result.out = out.str();
    result.err = err.str();
    return result;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "p5sim_driver_" + name;
}

JsonValue
readReport(const std::string &path)
{
    return parseJsonFile(path);
}

/** Dump a report with its "provenance" member removed. */
std::string
dumpWithoutProvenance(const JsonValue &report)
{
    JsonValue stripped = JsonValue::makeObject();
    for (const auto &m : report.members())
        if (m.first != "provenance")
            stripped.setMember(m.first, m.second);
    return stripped.dump();
}

// --- help / dispatch ---------------------------------------------------

TEST(Driver, GlobalHelpListsSubcommands)
{
    const Invocation help = invoke({"help"});
    EXPECT_EQ(help.exitCode, 0);
    for (const char *sub :
         {"table1", "table2", "table3", "table4", "fig2", "fig3",
          "fig4", "fig5", "fig6", "ablation", "run", "sweep", "alloc",
          "perf"})
        EXPECT_NE(help.out.find(sub), std::string::npos) << sub;
}

TEST(Driver, EverySubcommandAnswersHelp)
{
    for (const char *sub :
         {"table1", "table2", "table3", "table4", "fig2", "fig3",
          "fig4", "fig5", "fig6", "ablation", "run", "sweep", "alloc",
          "perf"}) {
        const Invocation help = invoke({sub, "--help"});
        EXPECT_EQ(help.exitCode, 0) << sub;
        EXPECT_NE(help.out.find("usage: p5sim " + std::string(sub)),
                  std::string::npos)
            << sub;
    }
    // The pair/sweep/alloc flags only appear where they apply.
    EXPECT_NE(invoke({"sweep", "--help"}).out.find("--sweep"),
              std::string::npos);
    EXPECT_NE(invoke({"run", "--help"}).out.find("--primary"),
              std::string::npos);
    EXPECT_NE(invoke({"alloc", "--help"}).out.find("--mix"),
              std::string::npos);
    EXPECT_EQ(invoke({"table3", "--help"}).out.find("--sweep"),
              std::string::npos);
    EXPECT_EQ(invoke({"table3", "--help"}).out.find("--mix"),
              std::string::npos);
}

TEST(Driver, NoArgumentsFailsWithUsage)
{
    const Invocation bare = invoke({});
    EXPECT_EQ(bare.exitCode, 1);
    EXPECT_NE(bare.err.find("usage:"), std::string::npos);
}

TEST(Driver, UnknownSubcommandFails)
{
    const Invocation bad = invoke({"table9"});
    EXPECT_EQ(bad.exitCode, 1);
    EXPECT_NE(bad.err.find("unknown subcommand 'table9'"),
              std::string::npos);
}

TEST(Driver, UnknownSetKeySuggestsNearestPath)
{
    EXPECT_EXIT(invoke({"table1", "--set", "core.decode_widht=4"}),
                ::testing::ExitedWithCode(1),
                "did you mean 'core.decode_width'");
}

TEST(Driver, OutOfRangeSetIsFatal)
{
    EXPECT_EXIT(invoke({"table1", "--set", "core.decode_width=99"}),
                ::testing::ExitedWithCode(1), "out of range");
}

// --- provenance --------------------------------------------------------

TEST(Driver, ReportsCarryProvenance)
{
    const std::string path = tempPath("table1.json");
    const Invocation run =
        invoke({"table1", ("--json=" + path).c_str()});
    ASSERT_EQ(run.exitCode, 0);

    const JsonValue report = readReport(path);
    const JsonValue *prov = report.find("provenance");
    ASSERT_NE(prov, nullptr);
    EXPECT_EQ(prov->find("schemaVersion")->asInt(),
              config_schema_version);
    EXPECT_EQ(prov->find("fingerprint")->asString().size(), 16u);
    EXPECT_EQ(prov->find("seed")->asInt(), 0);
    EXPECT_TRUE(prov->find("sweep")->isObject());
    std::remove(path.c_str());
}

TEST(Driver, FingerprintIsStableAndTracksOverrides)
{
    const std::string path_a = tempPath("fp_a.json");
    const std::string path_b = tempPath("fp_b.json");
    const std::string path_c = tempPath("fp_c.json");
    ASSERT_EQ(invoke({"table1", ("--json=" + path_a).c_str()}).exitCode,
              0);
    ASSERT_EQ(invoke({"table1", ("--json=" + path_b).c_str()}).exitCode,
              0);
    ASSERT_EQ(invoke({"table1", "--set", "core.lmq_entries=16",
                      ("--json=" + path_c).c_str()})
                  .exitCode,
              0);

    const std::string fp_a = readReport(path_a)
                                 .find("provenance")
                                 ->find("fingerprint")
                                 ->asString();
    const std::string fp_b = readReport(path_b)
                                 .find("provenance")
                                 ->find("fingerprint")
                                 ->asString();
    const std::string fp_c = readReport(path_c)
                                 .find("provenance")
                                 ->find("fingerprint")
                                 ->asString();
    EXPECT_EQ(fp_a, fp_b);
    EXPECT_NE(fp_a, fp_c);

    // The driver's fingerprint equals the one ConfigTree computes for
    // the same effective configuration.
    ExpConfig config;
    EXPECT_EQ(fp_a, ConfigTree(config).fingerprintHex());
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
    std::remove(path_c.c_str());
}

TEST(Driver, SeedIsStampedIntoProvenanceAndFingerprint)
{
    const std::string path = tempPath("seed.json");
    ASSERT_EQ(invoke({"table1", "--seed=42",
                      ("--json=" + path).c_str()})
                  .exitCode,
              0);
    const JsonValue report = readReport(path);
    EXPECT_EQ(report.find("provenance")->find("seed")->asInt(), 42);

    ExpConfig config;
    ConfigTree tree(config);
    tree.set("exp.seed", "42");
    EXPECT_EQ(report.find("provenance")->find("fingerprint")->asString(),
              tree.fingerprintHex());
    std::remove(path.c_str());
}

// --- equivalence with the direct producer path ------------------------

/**
 * Write the pre-driver bench_common.hh envelope (no provenance) around
 * the given payload — the exact byte layout the standalone bench
 * binaries produced before the driver refactor.
 */
template <typename PayloadFn>
std::string
legacyEnvelope(const char *experiment, const ExpConfig &config,
               std::uint64_t hits, std::uint64_t misses,
               PayloadFn &&payload)
{
    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.member("experiment", experiment);
        w.member("jobs", config.jobs ? config.jobs
                                     : ThreadPool::defaultWorkers());
        w.member("scale", config.ubenchScale);
        w.member("minRepetitions", config.fame.minRepetitions);
        w.member("maiv", config.fame.maiv);
        w.member("cacheHits", hits);
        w.member("cacheMisses", misses);
        w.key("data");
        payload(w);
        w.endObject();
    }
    return os.str();
}

/**
 * The driver's report must be byte-identical to the legacy bench
 * binary's, modulo the added "provenance" member. The cache counters
 * are process-cumulative, so the expected document borrows the actual
 * report's values for those two members — everything else (including
 * the full "data" payload) is compared byte-for-byte.
 */
void
expectLegacyEquivalent(const std::string &json_path,
                       const char *experiment,
                       const std::function<void(JsonWriter &)> &payload)
{
    const JsonValue report = readReport(json_path);
    ExpConfig config = ExpConfig::fast();
    const std::string expected = legacyEnvelope(
        experiment, config,
        static_cast<std::uint64_t>(
            report.find("cacheHits")->asInt()),
        static_cast<std::uint64_t>(
            report.find("cacheMisses")->asInt()),
        payload);
    EXPECT_EQ(dumpWithoutProvenance(report),
              parseJson(expected, "expected").dump());
}

TEST(Driver, Table3MatchesDirectProducerByteForByte)
{
    const std::string path = tempPath("table3.json");
    ASSERT_EQ(
        invoke({"table3", "--fast", ("--json=" + path).c_str()})
            .exitCode,
        0);

    // Direct producer path with a private cache (the driver's jobs are
    // keyed with the config fingerprint, so the process cache would
    // re-simulate anyway; a private cache keeps this test hermetic).
    ExpConfig config = ExpConfig::fast();
    ResultCache cache;
    config.cache = &cache;
    const Table3Data data = runTable3(config);
    expectLegacyEquivalent(path, "table3", [&](JsonWriter &w) {
        writeJson(w, data);
    });
    std::remove(path.c_str());
}

TEST(Driver, Fig6MatchesDirectProducerByteForByte)
{
    const std::string path = tempPath("fig6.json");
    ASSERT_EQ(invoke({"fig6", "--fast", ("--json=" + path).c_str()})
                  .exitCode,
              0);

    ExpConfig config = ExpConfig::fast();
    ResultCache cache;
    config.cache = &cache;
    const TransparencyData data = runFig6(config);
    expectLegacyEquivalent(path, "fig6", [&](JsonWriter &w) {
        writeJson(w, data);
    });
    std::remove(path.c_str());
}

// --- sweep -------------------------------------------------------------

TEST(Driver, SweepFansTheCartesianProductThroughThePool)
{
    const std::string path = tempPath("sweep.json");
    const Invocation run = invoke(
        {"sweep", "--fast", "--jobs=2", "--sweep",
         "core.lmq_entries=8,16", "--sweep", "core.walker_port_gap=0,2",
         ("--json=" + path).c_str()});
    ASSERT_EQ(run.exitCode, 0);

    const JsonValue report = readReport(path);
    EXPECT_EQ(report.find("experiment")->asString(), "sweep");
    EXPECT_EQ(report.find("jobs")->asInt(), 2);

    // The envelope records the axes...
    const JsonValue *sweep =
        report.find("provenance")->find("sweep");
    ASSERT_NE(sweep->find("core.lmq_entries"), nullptr);
    EXPECT_EQ(sweep->find("core.lmq_entries")->asString(), "8,16");
    EXPECT_EQ(sweep->find("core.walker_port_gap")->asString(), "0,2");

    // ...and the payload one point per product element, each with its
    // own coordinates and a distinct fingerprint.
    const JsonValue *points = report.find("data")->find("points");
    ASSERT_EQ(points->elements().size(), 4u);
    std::vector<std::string> fingerprints;
    for (const JsonValue &pt : points->elements()) {
        const JsonValue *coords = pt.find("coords");
        ASSERT_NE(coords->find("core.lmq_entries"), nullptr);
        ASSERT_NE(coords->find("core.walker_port_gap"), nullptr);
        fingerprints.push_back(pt.find("fingerprint")->asString());
        EXPECT_GT(pt.find("ipcTotal")->asDouble(), 0.0);
    }
    std::sort(fingerprints.begin(), fingerprints.end());
    EXPECT_EQ(std::unique(fingerprints.begin(), fingerprints.end()),
              fingerprints.end())
        << "every sweep point must have a distinct fingerprint";
    std::remove(path.c_str());
}

TEST(Driver, RepeatedSweepIsServedFromTheResultCache)
{
    const std::string path_a = tempPath("sweep_a.json");
    const std::string path_b = tempPath("sweep_b.json");
    ASSERT_EQ(invoke({"sweep", "--fast", "--sweep",
                      "core.mem.dram_latency=200,260",
                      ("--json=" + path_a).c_str()})
                  .exitCode,
              0);
    const Invocation second = invoke(
        {"sweep", "--fast", "--sweep", "core.mem.dram_latency=200,260",
         ("--json=" + path_b).c_str()});
    ASSERT_EQ(second.exitCode, 0);

    // Identical (config, job) pairs coalesce: the second run adds no
    // misses to the process-wide cache, only hits.
    const JsonValue a = readReport(path_a);
    const JsonValue b = readReport(path_b);
    EXPECT_EQ(a.find("cacheMisses")->asInt(),
              b.find("cacheMisses")->asInt());
    EXPECT_GE(b.find("cacheHits")->asInt(),
              a.find("cacheHits")->asInt() + 2);
    // Same configs -> same per-point fingerprints.
    EXPECT_EQ(a.find("data")->dump(), b.find("data")->dump());
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(Driver, SweepWithoutAxesIsFatal)
{
    EXPECT_EXIT(invoke({"sweep", "--fast"}),
                ::testing::ExitedWithCode(1), "--sweep");
    EXPECT_EXIT(invoke({"sweep", "--fast", "--sweep", "no-equals"}),
                ::testing::ExitedWithCode(1), "key=v1,v2");
    EXPECT_EXIT(invoke({"sweep", "--fast", "--sweep",
                        "core.lmq_entrees=4,8"}),
                ::testing::ExitedWithCode(1), "did you mean");
}

// --- run ---------------------------------------------------------------

TEST(Driver, RunRoutesCoreStatsThroughDumpJson)
{
    const std::string path = tempPath("run.json");
    const Invocation run =
        invoke({"run", "--fast", "--primary=cpu_int",
                "--secondary=cpu_int", "--prio-p=6", "--prio-s=2",
                ("--json=" + path).c_str()});
    ASSERT_EQ(run.exitCode, 0);
    EXPECT_NE(run.out.find("p5sim run: cpu_int + cpu_int at (6,2)"),
              std::string::npos);

    const JsonValue report = readReport(path);
    const JsonValue *data = report.find("data");
    EXPECT_EQ(data->find("primary")->asString(), "cpu_int");
    EXPECT_EQ(data->find("prioP")->asInt(), 6);
    EXPECT_TRUE(data->find("converged")->asBool());
    EXPECT_GT(data->find("ipcTotal")->asDouble(), 0.0);

    // The full per-core StatGroup rides along as one flat object.
    const JsonValue *stats = data->find("stats");
    ASSERT_NE(stats, nullptr);
    ASSERT_TRUE(stats->isObject());
    EXPECT_GT(stats->members().size(), 20u);
    bool has_cycle_counter = false;
    for (const auto &m : stats->members())
        if (m.second.isInt() || m.second.isDouble())
            has_cycle_counter = true;
    EXPECT_TRUE(has_cycle_counter);

    // The symbiosis sampler rides along too: per-thread series plus
    // the quantum provenance, so the dump alone supports offline
    // allocation replay (EXPERIMENTS.md).
    ASSERT_NE(data->find("symbiosisQuanta"), nullptr);
    ASSERT_NE(data->find("symbiosisQuantum"), nullptr);
    EXPECT_GT(data->find("symbiosisQuantum")->asInt(), 0);
    const JsonValue *series = stats->find("thread0.symbiosis.ipc");
    ASSERT_NE(series, nullptr);
    EXPECT_TRUE(series->isArray());
    std::remove(path.c_str());
}

TEST(Driver, RunSingleThreadMode)
{
    const Invocation run =
        invoke({"run", "--fast", "--primary=cpu_int",
                "--secondary=none"});
    EXPECT_EQ(run.exitCode, 0);
    EXPECT_NE(run.out.find("cpu_int + none"), std::string::npos);
}

// --- alloc -------------------------------------------------------------

TEST(Driver, AllocComparesPoliciesOnAnNCoreChip)
{
    const std::string path_a = tempPath("alloc_a.json");
    const std::string path_b = tempPath("alloc_b.json");
    const auto run_once = [&](const std::string &path) {
        return invoke({"alloc", "--fast",
                       "--mix=cpu_int,ldint_mem,cpu_int,ldint_mem",
                       "--policies=pinned,random", "--cycles=40000",
                       "--set", "chip.num_cores=2", "--set",
                       "sched.quantum=5000",
                       ("--json=" + path).c_str()});
    };
    const Invocation run = run_once(path_a);
    ASSERT_EQ(run.exitCode, 0);
    EXPECT_NE(run.out.find("Allocation policies"), std::string::npos);

    const JsonValue report = readReport(path_a);
    EXPECT_EQ(report.find("experiment")->asString(), "alloc");
    const JsonValue *data = report.find("data");
    EXPECT_EQ(data->find("kind")->asString(), "alloc_study");
    EXPECT_EQ(data->find("numCores")->asInt(), 2);
    EXPECT_EQ(data->find("cycles")->asInt(), 40000);
    ASSERT_EQ(data->find("mix")->elements().size(), 4u);

    const JsonValue *outcomes = data->find("outcomes");
    ASSERT_EQ(outcomes->elements().size(), 2u);
    const JsonValue &pinned = outcomes->elements()[0];
    EXPECT_EQ(pinned.find("policy")->asString(), "pinned");
    EXPECT_EQ(pinned.find("migrations")->asInt(), 0);
    for (const JsonValue &out : outcomes->elements()) {
        EXPECT_EQ(out.find("checkViolations")->asInt(), 0);
        EXPECT_EQ(out.find("quanta")->asInt(), 8);
        EXPECT_GT(out.find("aggregateIpc")->asDouble(), 0.0);
        EXPECT_EQ(out.find("threadIpc")->elements().size(), 4u);
    }

    // Same config -> bit-identical study (reproducible from the
    // fingerprint alone).
    ASSERT_EQ(run_once(path_b).exitCode, 0);
    EXPECT_EQ(readReport(path_b).find("data")->dump(), data->dump());
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(Driver, AllocRejectsBadInputs)
{
    EXPECT_EXIT(invoke({"alloc", "--fast", "--policies=bogus"}),
                ::testing::ExitedWithCode(1), "bogus");
    EXPECT_EXIT(invoke({"alloc", "--fast", "--mix=not_a_bench"}),
                ::testing::ExitedWithCode(1), "not_a_bench");
    EXPECT_EXIT(invoke({"alloc", "--fast", "--cycles=0"}),
                ::testing::ExitedWithCode(1), "cycles");
}

// --- config file / save-config round trip ------------------------------

TEST(Driver, SaveConfigThenLoadReproducesTheFingerprint)
{
    const std::string cfg = tempPath("saved_config.json");
    const std::string path_a = tempPath("cfgrt_a.json");
    const std::string path_b = tempPath("cfgrt_b.json");

    ASSERT_EQ(invoke({"table1", "--set", "core.lmq_entries=16", "--set",
                      "core.balancer.action=flush",
                      ("--save-config=" + cfg).c_str(),
                      ("--json=" + path_a).c_str()})
                  .exitCode,
              0);
    ASSERT_EQ(invoke({"table1", ("--config=" + cfg).c_str(),
                      ("--json=" + path_b).c_str()})
                  .exitCode,
              0);

    EXPECT_EQ(readReport(path_a)
                  .find("provenance")
                  ->find("fingerprint")
                  ->asString(),
              readReport(path_b)
                  .find("provenance")
                  ->find("fingerprint")
                  ->asString());
    std::remove(cfg.c_str());
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(Driver, CsvModeEmitsCsvTables)
{
    const Invocation run = invoke({"table1", "--csv"});
    EXPECT_EQ(run.exitCode, 0);
    EXPECT_EQ(run.out.rfind("# ", 0), 0u)
        << "CSV mode starts with the '# <title>' comment line";
}

} // namespace
} // namespace p5
