/**
 * @file
 * Zero-allocation proof for the steady-state tick loop (DESIGN §8).
 *
 * This binary replaces the global allocation functions with counting
 * wrappers; the counter is only live inside a measured window, so
 * gtest's own bookkeeping doesn't pollute it. After a warmup long
 * enough for every pooled structure to reach its high-water mark
 * (window rings, ready queues, completion heap, spilled dependent
 * lists), a busy simulation must run thousands of cycles without a
 * single heap allocation — including the mispredict squash/replay
 * path, whose re-fetches hit the memoized program table.
 *
 * Lives in its own test binary (p5sim_alloc_tests): the operator
 * new/delete replacement is process-wide and has no business wrapping
 * the main suite.
 */

#include <gtest/gtest.h>

#include <execinfo.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/smt_core.hh"
#include "ubench/ubench.hh"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

void *
countedAlloc(std::size_t size, std::size_t align)
{
    if (g_counting.load(std::memory_order_relaxed)) {
        // P5SIM_ALLOC_TRAP=1 dumps the call stack of every counted
        // allocation to stderr (backtrace_symbols_fd is malloc-free),
        // so offending call sites are identifiable without a debugger.
        static const bool trap = std::getenv("P5SIM_ALLOC_TRAP");
        if (trap) {
            void *frames[32];
            const int n = backtrace(frames, 32);
            backtrace_symbols_fd(frames, n, 2);
            write(2, "----\n", 5);
        }
        g_allocs.fetch_add(1, std::memory_order_relaxed);
    }
    if (size == 0)
        size = 1;
    void *p = nullptr;
    if (align <= alignof(std::max_align_t)) {
        p = std::malloc(size);
    } else if (posix_memalign(&p, align, size) != 0) {
        p = nullptr;
    }
    return p;
}

} // namespace

void *
operator new(std::size_t size)
{
    if (void *p = countedAlloc(size, 0))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    if (void *p = countedAlloc(size, static_cast<std::size_t>(align)))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size, 0);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size, 0);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace p5 {
namespace {

/** Allocations performed by @p cycles of core.run() after @p warmup. */
std::uint64_t
allocationsDuring(SmtCore &core, Cycle warmup, Cycle cycles)
{
    core.run(warmup);
    g_allocs.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    core.run(cycles);
    g_counting.store(false, std::memory_order_relaxed);
    return g_allocs.load(std::memory_order_relaxed);
}

TEST(Alloc, SteadyStateBusyLoopIsAllocationFree)
{
    const SyntheticProgram prog = makeUbench(UbenchId::CpuInt);
    CoreParams params;
    SmtCore core(params);
    if (core.hasChecks())
        GTEST_SKIP() << "checked build: checkers allocate per cycle";
    core.attachThread(0, &prog, 4);
    core.attachThread(1, &prog, 4);
    EXPECT_EQ(allocationsDuring(core, 20000, 1000), 0u);
}

TEST(Alloc, MispredictReplayIsAllocationFree)
{
    // br_miss squashes and rewinds constantly: the squash path (epoch
    // bump, GCT truncation, rename rebuild, stream reposition) and the
    // memoized re-fetch must be as allocation-free as straight-line
    // decode.
    const SyntheticProgram prog = makeUbench(UbenchId::BrMiss);
    CoreParams params;
    SmtCore core(params);
    if (core.hasChecks())
        GTEST_SKIP() << "checked build: checkers allocate per cycle";
    core.attachThread(0, &prog, 4);
    core.attachThread(1, &prog, 4);
    EXPECT_EQ(allocationsDuring(core, 20000, 1000), 0u);
}

TEST(Alloc, MemoryBoundFastForwardIsAllocationFree)
{
    // The probe/skip machinery itself (gate replay, event search,
    // bulk counter advance) must not allocate either.
    const SyntheticProgram prog = makeUbench(UbenchId::LdintMem);
    CoreParams params;
    SmtCore core(params);
    if (core.hasChecks())
        GTEST_SKIP() << "checked build: checkers allocate per cycle";
    core.attachThread(0, &prog, 4);
    core.attachThread(1, &prog, 4);
    EXPECT_EQ(allocationsDuring(core, 20000, 5000), 0u);
}

} // namespace
} // namespace p5
