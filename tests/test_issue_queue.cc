/**
 * @file
 * Unit tests for the ready-instruction queues.
 */

#include <gtest/gtest.h>

#include "core/issue_queue.hh"

namespace p5 {
namespace {

ReadyRef
ref(std::uint64_t stamp, ThreadId tid = 0, SeqNum seq = 0)
{
    ReadyRef r;
    r.stamp = stamp;
    r.tid = tid;
    r.seq = seq;
    r.epoch = 0;
    return r;
}

TEST(IssueQueue, OldestFirstAcrossPushOrder)
{
    IssueQueue q;
    q.push(FuClass::FX, ref(30));
    q.push(FuClass::FX, ref(10));
    q.push(FuClass::FX, ref(20));
    EXPECT_EQ(q.pop(FuClass::FX).stamp, 10u);
    EXPECT_EQ(q.pop(FuClass::FX).stamp, 20u);
    EXPECT_EQ(q.pop(FuClass::FX).stamp, 30u);
}

TEST(IssueQueue, ClassesAreIndependent)
{
    IssueQueue q;
    q.push(FuClass::FX, ref(1));
    q.push(FuClass::LS, ref(2));
    EXPECT_EQ(q.size(FuClass::FX), 1u);
    EXPECT_EQ(q.size(FuClass::LS), 1u);
    EXPECT_TRUE(q.empty(FuClass::FP));
    EXPECT_EQ(q.totalSize(), 2u);
}

TEST(IssueQueue, AgeOrderMergesThreads)
{
    IssueQueue q;
    q.push(FuClass::LS, ref(5, 1, 100));
    q.push(FuClass::LS, ref(3, 0, 200));
    ReadyRef first = q.pop(FuClass::LS);
    EXPECT_EQ(first.tid, 0);
    EXPECT_EQ(first.seq, 200u);
}

TEST(IssueQueue, TopDoesNotRemove)
{
    IssueQueue q;
    q.push(FuClass::BR, ref(7));
    EXPECT_EQ(q.top(FuClass::BR).stamp, 7u);
    EXPECT_EQ(q.size(FuClass::BR), 1u);
}

TEST(IssueQueue, RepushPreservesAgePriority)
{
    IssueQueue q;
    q.push(FuClass::LS, ref(1));
    q.push(FuClass::LS, ref(2));
    ReadyRef r = q.pop(FuClass::LS); // stamp 1, e.g. rejected load
    q.push(FuClass::LS, r);
    EXPECT_EQ(q.pop(FuClass::LS).stamp, 1u);
}

TEST(IssueQueue, Clear)
{
    IssueQueue q;
    q.push(FuClass::FX, ref(1));
    q.push(FuClass::FP, ref(2));
    q.clear();
    EXPECT_EQ(q.totalSize(), 0u);
}

TEST(IssueQueueDeath, PopEmptyIsPanic)
{
    IssueQueue q;
    EXPECT_DEATH(q.pop(FuClass::FX), "empty");
}

} // namespace
} // namespace p5
