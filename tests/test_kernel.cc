/**
 * @file
 * Tests for the Linux-kernel model: priority resets, the experimental
 * kernel patch, spin/idle priority drops, hypervisor calls.
 */

#include <gtest/gtest.h>

#include "os/kernel.hh"
#include "test_helpers.hh"

namespace p5 {
namespace {

struct KernelFixture
{
    explicit KernelFixture(bool patched, Cycle timer = 0)
        : prog(test::nops()), core(params)
    {
        core.attachThread(0, &prog, 4, PrivilegeLevel::User);
        core.attachThread(1, &prog, 4, PrivilegeLevel::User);
        KernelParams kp;
        kp.patched = patched;
        kp.timerPeriod = timer;
        kernel = std::make_unique<KernelSim>(&core, kp);
    }

    CoreParams params;
    SyntheticProgram prog;
    SmtCore core;
    std::unique_ptr<KernelSim> kernel;
};

TEST(Kernel, StockKernelResetsPriorityOnEntry)
{
    KernelFixture f(false);
    f.core.setPriorityPair(6, 3);
    f.kernel->enterKernel(0, KernelEntry::Syscall);
    EXPECT_EQ(f.core.priorityOf(0), 4);
    EXPECT_EQ(f.core.priorityOf(1), 3); // only the entering thread
    f.kernel->enterKernel(1, KernelEntry::Interrupt);
    EXPECT_EQ(f.core.priorityOf(1), 4);
    EXPECT_EQ(f.kernel->priorityResets(), 2u);
}

TEST(Kernel, PatchedKernelNeverTouchesPriorities)
{
    KernelFixture f(true);
    f.core.setPriorityPair(6, 3);
    f.kernel->enterKernel(0, KernelEntry::Interrupt);
    f.kernel->enterKernel(1, KernelEntry::Exception);
    EXPECT_EQ(f.core.priorityOf(0), 6);
    EXPECT_EQ(f.core.priorityOf(1), 3);
    EXPECT_EQ(f.kernel->priorityResets(), 0u);
}

TEST(Kernel, SysInterfaceRangeWithoutPatch)
{
    KernelFixture f(false);
    // Stock kernel: only the user or-nop levels (2..4) work.
    EXPECT_FALSE(f.kernel->sysSetPriority(0, 1));
    EXPECT_TRUE(f.kernel->sysSetPriority(0, 2));
    EXPECT_TRUE(f.kernel->sysSetPriority(0, 4));
    EXPECT_FALSE(f.kernel->sysSetPriority(0, 6));
    EXPECT_FALSE(f.kernel->sysSetPriority(0, 7));
}

TEST(Kernel, SysInterfaceRangeWithPatch)
{
    // Paper Sec. 4.3: the patch exposes priorities 1..6.
    KernelFixture f(true);
    EXPECT_TRUE(f.kernel->sysSetPriority(0, 1));
    EXPECT_TRUE(f.kernel->sysSetPriority(0, 6));
    EXPECT_FALSE(f.kernel->sysSetPriority(0, 0));
    EXPECT_FALSE(f.kernel->sysSetPriority(0, 7));
}

TEST(Kernel, HypervisorCallCoversFullRange)
{
    KernelFixture f(true);
    EXPECT_TRUE(f.kernel->hcallSetPriority(1, 0));
    EXPECT_EQ(f.core.priorityOf(1), 0);
    EXPECT_TRUE(f.kernel->hcallSetPriority(0, 7));
    EXPECT_EQ(f.core.priorityOf(0), 7);
    EXPECT_FALSE(f.kernel->hcallSetPriority(0, 8));
}

TEST(Kernel, SpinLockDropsAndRestoresPriority)
{
    KernelFixture f(false);
    f.kernel->beginSpin(0);
    EXPECT_EQ(f.core.priorityOf(0), 1);
    // Kernel entries while spinning must not reset to MEDIUM.
    f.kernel->enterKernel(0, KernelEntry::Interrupt);
    EXPECT_EQ(f.core.priorityOf(0), 1);
    f.kernel->endSpin(0);
    EXPECT_EQ(f.core.priorityOf(0), 4);
}

TEST(Kernel, IdleDropsPriority)
{
    KernelFixture f(false);
    f.kernel->enterIdle(1);
    EXPECT_EQ(f.core.priorityOf(1), 1);
    f.kernel->exitIdle(1);
    EXPECT_EQ(f.core.priorityOf(1), 4);
}

TEST(Kernel, PatchedSpinLeavesPrioritiesAlone)
{
    KernelFixture f(true);
    f.core.setPriorityPair(5, 4);
    f.kernel->beginSpin(0);
    EXPECT_EQ(f.core.priorityOf(0), 5);
    f.kernel->endSpin(0);
    EXPECT_EQ(f.core.priorityOf(0), 5);
}

TEST(Kernel, TimerInterruptsResetUserPriorities)
{
    KernelFixture f(false, 1000);
    // User code sets priority 2 via the /sys path...
    f.kernel->sysSetPriority(0, 2);
    EXPECT_EQ(f.core.priorityOf(0), 2);
    // ...and the next timer interrupt conservatively resets it.
    f.kernel->run(2000);
    EXPECT_EQ(f.core.priorityOf(0), 4);
    EXPECT_GE(f.kernel->timerInterrupts(), 1u);
}

TEST(Kernel, PatchedTimerKeepsPriorities)
{
    KernelFixture f(true, 1000);
    f.kernel->sysSetPriority(0, 6);
    f.kernel->run(3000);
    EXPECT_EQ(f.core.priorityOf(0), 6);
    EXPECT_GE(f.kernel->timerInterrupts(), 2u);
}

TEST(Kernel, RunAdvancesCore)
{
    KernelFixture f(true);
    f.kernel->run(500);
    EXPECT_EQ(f.core.cycle(), 500u);
    EXPECT_GT(f.core.committedOf(0), 0u);
}

} // namespace
} // namespace p5
