/**
 * @file
 * Scheduler-layer tests: Workload construction, Assignment packing,
 * the Allocator contract (exact placement, determinism) for all three
 * policies, the symbiosis predictor's pairing preferences, AllocEngine
 * equivalence with a directly-driven chip under the pinned policy,
 * round-robin fairness when threads outnumber hardware contexts, the
 * QuantumMonitor's StatGroup series, and the ChipConservation checker.
 */

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/chip_checker.hh"
#include "common/json.hh"
#include "core/chip.hh"
#include "sched/alloc_engine.hh"
#include "sched/allocator.hh"
#include "sched/monitor.hh"
#include "sched/sched_params.hh"
#include "sched/workload.hh"
#include "test_helpers.hh"
#include "ubench/ubench.hh"

namespace p5 {
namespace {

/** Runnable ids placed by @p a, sorted. */
std::vector<int>
placedIds(const Assignment &a)
{
    std::vector<int> ids;
    for (int c = 0; c < a.numCores; ++c)
        for (int h = 0; h < num_hw_threads; ++h) {
            const int tid = a.core(c)[static_cast<std::size_t>(h)];
            if (tid >= 0)
                ids.push_back(tid);
        }
    std::sort(ids.begin(), ids.end());
    return ids;
}

/** A history where every thread repeats one fixed sample. */
std::vector<ThreadHistory>
uniformHistory(const std::vector<ThreadSample> &per_thread, int quanta)
{
    std::vector<ThreadHistory> h(per_thread.size());
    for (std::size_t t = 0; t < per_thread.size(); ++t)
        for (int q = 0; q < quanta; ++q)
            h[t].push(per_thread[t], quanta);
    return h;
}

ThreadSample
sample(std::uint64_t committed, std::uint64_t l2_misses, double occ,
       Cycle cycles = 20000)
{
    ThreadSample s;
    s.committed = committed;
    s.l2Misses = l2_misses;
    s.gctOccupancy = occ;
    s.cycles = cycles;
    return s;
}

// --- Workload ----------------------------------------------------------

TEST(Workload, FromMixBuildsThreadsInOrder)
{
    const Workload w =
        Workload::fromMix("cpu_int,ldint_mem,cpu_fp,ldint_l2");
    EXPECT_EQ(w.size(), 4);
    EXPECT_EQ(w.describe(), "cpu_int+ldint_mem+cpu_fp+ldint_l2");
    for (int i = 0; i < w.size(); ++i) {
        EXPECT_EQ(w.thread(i).id, i);
        EXPECT_EQ(w.thread(i).priority, default_priority);
    }
}

TEST(Workload, UnknownMixNameIsFatal)
{
    EXPECT_EXIT(Workload::fromMix("cpu_int,bogus_bench"),
                ::testing::ExitedWithCode(1), "bogus_bench");
    EXPECT_EXIT(Workload::fromMix(""), ::testing::ExitedWithCode(1),
                "empty");
}

TEST(Workload, ProgramAddressesStableAcrossGrowth)
{
    Workload w;
    const int id0 = w.add(ProgramSpec::ubench(UbenchId::CpuInt, 1.0));
    EXPECT_EQ(id0, 0);
    const InstrSource *p0 = &w.program(0);
    for (int i = 0; i < 8; ++i)
        w.add(ProgramSpec::ubench(UbenchId::LdintMem, 1.0), 5);
    EXPECT_EQ(p0, &w.program(0));
    EXPECT_EQ(w.thread(3).priority, 5);
}

// --- Assignment --------------------------------------------------------

TEST(Assignment, PinnedPacksEligibleInOrder)
{
    const Assignment a = Assignment::pinned({0, 1, 2, 3}, 2);
    EXPECT_EQ(a.numCores, 2);
    EXPECT_EQ(a.core(0)[0], 0);
    EXPECT_EQ(a.core(0)[1], 1);
    EXPECT_EQ(a.core(1)[0], 2);
    EXPECT_EQ(a.core(1)[1], 3);
    for (int tid = 0; tid < 4; ++tid)
        EXPECT_EQ(a.coreOf(tid), tid / 2);
    EXPECT_EQ(a.coreOf(99), -1);

    // A partial last core stays half empty.
    const Assignment b = Assignment::pinned({7, 8, 9}, 2);
    EXPECT_EQ(b.core(1)[0], 9);
    EXPECT_EQ(b.core(1)[1], -1);
}

TEST(Assignment, PinnedOverflowPanics)
{
    EXPECT_DEATH(Assignment::pinned({0, 1, 2, 3, 4}, 2), "exceed");
}

// --- policy names ------------------------------------------------------

TEST(AllocPolicy, NamesRoundTrip)
{
    for (AllocPolicy p : {AllocPolicy::Pinned, AllocPolicy::Random,
                          AllocPolicy::Symbiosis})
        EXPECT_EQ(allocPolicyFromName(allocPolicyName(p)), p);
    EXPECT_EXIT(allocPolicyFromName("bogus"),
                ::testing::ExitedWithCode(1), "bogus");
}

// --- Allocator contract ------------------------------------------------

TEST(Allocator, EveryPolicyPlacesExactlyTheEligibleSetDeterministically)
{
    const std::vector<int> eligible{0, 1, 2, 3};
    const std::vector<ThreadHistory> history = uniformHistory(
        {sample(5000, 500, 5.0), sample(5000, 500, 5.0),
         sample(40000, 0, 5.0), sample(40000, 0, 5.0)},
        4);

    AllocContext ctx;
    ctx.numCores = 2;
    ctx.quantumIndex = 3;
    ctx.seed = 42;
    ctx.gctCapacity = 20;
    ctx.eligible = &eligible;
    ctx.history = &history;

    for (AllocPolicy p : {AllocPolicy::Pinned, AllocPolicy::Random,
                          AllocPolicy::Symbiosis}) {
        const Assignment a = makeAllocator(p)->decide(ctx);
        const Assignment b = makeAllocator(p)->decide(ctx);
        EXPECT_EQ(a, b) << allocPolicyName(p)
                        << ": decide() must be a pure function of the "
                           "context";
        EXPECT_EQ(placedIds(a), eligible) << allocPolicyName(p);
        EXPECT_EQ(a.numCores, 2) << allocPolicyName(p);
    }
}

TEST(Allocator, RandomRepairsAcrossQuanta)
{
    const std::vector<int> eligible{0, 1, 2, 3};
    AllocContext ctx;
    ctx.numCores = 2;
    ctx.seed = 42;
    ctx.gctCapacity = 20;
    ctx.eligible = &eligible;

    auto random = makeAllocator(AllocPolicy::Random);
    bool any_differs = false;
    Assignment first;
    for (std::uint64_t q = 0; q < 8; ++q) {
        ctx.quantumIndex = q;
        const Assignment a = random->decide(ctx);
        EXPECT_EQ(placedIds(a), eligible);
        if (q == 0)
            first = a;
        else if (a != first)
            any_differs = true;
    }
    EXPECT_TRUE(any_differs)
        << "the random policy never re-paired over 8 quanta";
}

// --- symbiosis ---------------------------------------------------------

TEST(Symbiosis, FallsBackToPinnedWithoutHistory)
{
    const std::vector<int> eligible{0, 1, 2, 3};
    const std::vector<ThreadHistory> empty_history(4);
    AllocContext ctx;
    ctx.numCores = 2;
    ctx.seed = 1;
    ctx.gctCapacity = 20;
    ctx.eligible = &eligible;
    ctx.history = &empty_history;
    EXPECT_EQ(makeAllocator(AllocPolicy::Symbiosis)->decide(ctx),
              Assignment::pinned(eligible, 2));
}

TEST(Symbiosis, SplitsMemoryStreamsAcrossCores)
{
    // Threads 0 and 1 stream through the backside (mpki 100), threads
    // 2 and 3 are compute-bound. The static packing co-schedules the
    // two streamers on core 0; the predictor's co-miss penalty must
    // pull them apart.
    const std::vector<int> eligible{0, 1, 2, 3};
    const std::vector<ThreadHistory> history = uniformHistory(
        {sample(5000, 500, 5.0), sample(5000, 500, 5.0),
         sample(40000, 0, 5.0), sample(40000, 0, 5.0)},
        4);
    AllocContext ctx;
    ctx.numCores = 2;
    ctx.seed = 1;
    ctx.gctCapacity = 20;
    ctx.eligible = &eligible;
    ctx.history = &history;

    const Assignment a = makeAllocator(AllocPolicy::Symbiosis)->decide(ctx);
    EXPECT_EQ(placedIds(a), eligible);
    EXPECT_NE(a.coreOf(0), a.coreOf(1))
        << "both memory streamers landed on the same core";
}

TEST(Symbiosis, RetainsPreviousPlacementWhenNothingToGain)
{
    // All four threads are statistically identical, so every pairing
    // scores the same; the retention bonus must keep the (non-pinned)
    // previous placement instead of thrashing back to the packing.
    const std::vector<int> eligible{0, 1, 2, 3};
    const std::vector<ThreadHistory> history = uniformHistory(
        {sample(20000, 10, 5.0), sample(20000, 10, 5.0),
         sample(20000, 10, 5.0), sample(20000, 10, 5.0)},
        4);
    Assignment previous = Assignment::empty(2);
    previous.slot[0] = {0, 2};
    previous.slot[1] = {1, 3};

    AllocContext ctx;
    ctx.numCores = 2;
    ctx.seed = 1;
    ctx.gctCapacity = 20;
    ctx.eligible = &eligible;
    ctx.history = &history;
    ctx.previous = &previous;

    EXPECT_EQ(makeAllocator(AllocPolicy::Symbiosis)->decide(ctx),
              previous);
}

// --- ThreadHistory -----------------------------------------------------

TEST(ThreadHistory, CapKeepsOnlyTheNewestSamples)
{
    ThreadHistory h;
    for (std::uint64_t i = 1; i <= 10; ++i)
        h.push(sample(100 * i, i, 1.0, 1000), 4);
    ASSERT_EQ(h.samples.size(), 4u);
    EXPECT_EQ(h.samples.front().committed, 700u);
    EXPECT_EQ(h.samples.back().committed, 1000u);
    // Mean of 700..1000 by 100.
    EXPECT_EQ(h.average().committed, 850u);
    EXPECT_DOUBLE_EQ(h.average().gctOccupancy, 1.0);
}

// --- AllocEngine -------------------------------------------------------

/**
 * Under the pinned policy the engine must be bit-identical to
 * attaching the workload once and running the chip directly — the
 * quantum machinery (detach/attach, chunked runs, attribution) may
 * not perturb the simulation, for any core count.
 */
TEST(AllocEngine, PinnedMatchesDirectChipRun)
{
    const char *mixes[] = {
        "cpu_int,ldint_mem",
        "cpu_int,ldint_mem,cpu_fp,ldint_l2",
        "cpu_int,ldint_mem,cpu_fp,ldint_l2,ldint_l1,br_hit,cpu_int,"
        "ldint_mem",
    };
    const int cores[] = {1, 2, 4};
    constexpr Cycle total = 20000;

    for (int i = 0; i < 3; ++i) {
        const Workload workload = Workload::fromMix(mixes[i]);
        ChipParams params;
        params.numCores = cores[i];

        Chip engine_chip(params);
        SchedParams sched;
        sched.quantum = 5000;
        AllocEngine engine(engine_chip, workload, sched, 1);
        const AllocRunResult res = engine.run(total);

        Chip direct(params);
        for (int t = 0; t < workload.size(); ++t)
            direct.core(t / num_hw_threads)
                .attachThread(static_cast<ThreadId>(t % num_hw_threads),
                              &workload.program(t),
                              workload.thread(t).priority);
        direct.run(total);

        EXPECT_EQ(res.migrations, 0u) << mixes[i];
        EXPECT_EQ(res.quanta, 4u) << mixes[i];
        EXPECT_EQ(res.checkViolations, 0u) << mixes[i];
        EXPECT_EQ(res.cycles, total) << mixes[i];
        for (int t = 0; t < workload.size(); ++t) {
            const auto direct_committed =
                direct.core(t / num_hw_threads)
                    .committedOf(
                        static_cast<ThreadId>(t % num_hw_threads));
            EXPECT_EQ(res.threads[static_cast<std::size_t>(t)].committed,
                      direct_committed)
                << mixes[i] << " thread " << t;
            EXPECT_EQ(res.threads[static_cast<std::size_t>(t)]
                          .cyclesScheduled,
                      total)
                << mixes[i] << " thread " << t;
        }
    }
}

TEST(AllocEngine, OversubscribedWorkloadRotatesFairly)
{
    // Six runnable threads on one 2-context core: with quantum 2000
    // over 12000 cycles (six quanta, twelve slots), round-robin
    // fairness gives every thread exactly two quanta.
    const Workload workload = Workload::fromMix(
        "cpu_int,ldint_mem,cpu_fp,ldint_l1,ldint_l2,br_hit");
    ChipParams params;
    params.numCores = 1;
    Chip chip(params);
    SchedParams sched;
    sched.quantum = 2000;
    AllocEngine engine(chip, workload, sched, 1);
    const AllocRunResult res = engine.run(12000);

    EXPECT_EQ(res.quanta, 6u);
    EXPECT_EQ(res.checkViolations, 0u);
    for (int t = 0; t < workload.size(); ++t) {
        EXPECT_EQ(
            res.threads[static_cast<std::size_t>(t)].cyclesScheduled,
            4000u)
            << "thread " << t;
        EXPECT_GT(res.threads[static_cast<std::size_t>(t)].committed, 0u)
            << "thread " << t;
    }
}

TEST(AllocEngine, ConservesCommittedInstructionsAcrossPolicies)
{
    const Workload workload =
        Workload::fromMix("cpu_int,ldint_mem,cpu_fp,ldint_l2");
    for (AllocPolicy p : {AllocPolicy::Pinned, AllocPolicy::Random,
                          AllocPolicy::Symbiosis}) {
        ChipParams params;
        params.numCores = 2;
        Chip chip(params);
        SchedParams sched;
        sched.policy = p;
        sched.quantum = 2000;
        AllocEngine engine(chip, workload, sched, 7);
        const AllocRunResult res = engine.run(16000);

        EXPECT_EQ(res.checkViolations, 0u) << allocPolicyName(p);
        EXPECT_EQ(res.quanta, 8u) << allocPolicyName(p);
        ASSERT_EQ(res.log.size(), 8u) << allocPolicyName(p);
        std::uint64_t per_thread = 0;
        for (const AllocThreadTotals &t : res.threads)
            per_thread += t.committed;
        EXPECT_EQ(per_thread, res.committed) << allocPolicyName(p);
        EXPECT_DOUBLE_EQ(res.aggregateIpc,
                         static_cast<double>(res.committed) /
                             static_cast<double>(res.cycles))
            << allocPolicyName(p);
    }
}

TEST(AllocEngine, RandomPolicyReproducibleFromSeed)
{
    const Workload workload =
        Workload::fromMix("cpu_int,ldint_mem,cpu_fp,ldint_l2");
    auto study = [&workload]() {
        ChipParams params;
        params.numCores = 2;
        Chip chip(params);
        SchedParams sched;
        sched.policy = AllocPolicy::Random;
        sched.quantum = 2000;
        AllocEngine engine(chip, workload, sched, 99);
        return engine.run(16000);
    };
    const AllocRunResult a = study();
    const AllocRunResult b = study();
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.committed, b.committed);
    ASSERT_EQ(a.log.size(), b.log.size());
    for (std::size_t q = 0; q < a.log.size(); ++q)
        EXPECT_EQ(a.log[q].assignment, b.log[q].assignment)
            << "quantum " << q;
}

// --- QuantumMonitor ----------------------------------------------------

TEST(QuantumMonitor, RecordsSymbiosisSeriesWithoutTouchingScalars)
{
    CoreParams params;
    SmtCore core(params);
    auto p = test::independentAlus(100000);
    auto s = test::dramChase(10000);
    core.attachThread(0, &p);
    core.attachThread(1, &s);

    const std::vector<std::string> scalars_before = core.stats().names();
    QuantumMonitor monitor(core, 1000);
    EXPECT_EQ(core.stats().names(), scalars_before)
        << "attaching a sampler must not change the scalar stat set";

    for (int i = 0; i < 40; ++i) {
        core.run(250);
        monitor.poll();
    }
    EXPECT_EQ(monitor.quantaRecorded(), 10u);

    for (const char *name :
         {"thread0.symbiosis.ipc", "thread0.symbiosis.l2Misses",
          "thread0.symbiosis.gctOccupancy", "thread1.symbiosis.ipc",
          "thread1.symbiosis.l2Misses",
          "thread1.symbiosis.gctOccupancy"}) {
        ASSERT_TRUE(core.stats().hasSeries(name)) << name;
        EXPECT_EQ(core.stats().series(name).size(),
                  monitor.quantaRecorded())
            << name;
    }

    // The ALU thread commits every quantum; the DRAM chaser misses
    // beyond L2. Both facts must be visible in the recorded series.
    const auto &ipc0 = core.stats().series("thread0.symbiosis.ipc");
    EXPECT_GT(*std::min_element(ipc0.begin(), ipc0.end()), 0.0);
    const auto &l2m1 =
        core.stats().series("thread1.symbiosis.l2Misses");
    EXPECT_GT(*std::max_element(l2m1.begin(), l2m1.end()), 0.0);

    // dumpJson() carries the series as arrays, so a `p5sim run` JSON
    // dump suffices to replay allocation decisions offline.
    std::ostringstream os;
    {
        JsonWriter w(os);
        core.stats().dumpJson(w);
    }
    const JsonValue stats = parseJson(os.str(), "stats");
    const JsonValue *series = stats.find("thread0.symbiosis.ipc");
    ASSERT_NE(series, nullptr);
    ASSERT_TRUE(series->isArray());
    EXPECT_EQ(series->elements().size(), monitor.quantaRecorded());
}

// --- ChipConservation --------------------------------------------------

TEST(ChipConservation, CleanRunHasNoViolations)
{
    CoreParams base;
    Chip chip(base);
    auto p0 = test::independentAlus(100000);
    auto p1 = test::dramChase(10000);
    chip.core(0).attachThread(0, &p0);
    chip.core(1).attachThread(0, &p1);

    check::ChipConservation checker(chip);
    checker.onQuantumBoundary(0); // baseline

    std::uint64_t before = 0;
    for (int c = 0; c < chip.numCores(); ++c)
        for (ThreadId t = 0; t < num_hw_threads; ++t)
            before += chip.core(c).committedOf(t);
    chip.run(5000);
    std::uint64_t after = 0;
    for (int c = 0; c < chip.numCores(); ++c)
        for (ThreadId t = 0; t < num_hw_threads; ++t)
            after += chip.core(c).committedOf(t);

    checker.onQuantumBoundary(after - before);
    EXPECT_EQ(checker.violations(), 0u);
}

TEST(ChipConservation, DetectsMisattributionAndLockstepBreach)
{
    CoreParams base;
    Chip chip(base);
    auto p0 = test::independentAlus(100000);
    chip.core(0).attachThread(0, &p0);

    check::ChipConservation checker(chip);
    checker.onQuantumBoundary(0);
    chip.run(1000);
    // Attribute zero instructions against a quantum that committed
    // plenty: the conservation term must fire.
    checker.onQuantumBoundary(0);
    EXPECT_GE(checker.violations(), 1u);

    // Advance core 0 behind the chip's back: the lockstep term fires.
    const std::uint64_t so_far = checker.violations();
    chip.core(0).tick();
    const std::uint64_t committed_delta =
        chip.core(0).committedOf(0); // upper bound, value irrelevant
    (void)committed_delta;
    checker.onQuantumBoundary(0);
    EXPECT_GT(checker.violations(), so_far);
}

} // namespace
} // namespace p5
