/**
 * @file
 * SMT-mode tests of the core: slot sharing, priority monotonicity,
 * minority floors, work-conserving ablation, balancer interplay.
 */

#include <gtest/gtest.h>

#include "core/chip.hh"
#include "core/smt_core.hh"
#include "test_helpers.hh"

namespace p5 {
namespace {

double
pairIpc(const CoreParams &params, const SyntheticProgram &p,
        const SyntheticProgram &s, int prio_p, int prio_s, Cycle cycles,
        ThreadId measure = 0)
{
    SmtCore core(params);
    test::withCheckers(core);
    core.attachThread(0, &p, prio_p);
    core.attachThread(1, &s, prio_s);
    core.run(cycles);
    return core.ipcOf(measure);
}

TEST(CoreSmt, EqualPrioritiesHalveDecodeBoundThreads)
{
    CoreParams params;
    auto p = test::nops();
    auto s = test::nops();
    double smt = pairIpc(params, p, s, 4, 4, 3000);
    SmtCore st(params);
    test::withCheckers(st);
    auto solo = test::nops();
    st.attachThread(0, &solo);
    st.run(3000);
    EXPECT_NEAR(smt, st.ipcOf(0) / 2.0, 0.3);
}

TEST(CoreSmt, HigherPriorityGetsMoreDecode)
{
    CoreParams params;
    auto p = test::nops();
    auto s = test::nops();
    double base = pairIpc(params, p, s, 4, 4, 5000);
    double boosted = pairIpc(params, p, s, 6, 2, 5000);
    EXPECT_GT(boosted, 1.5 * base);
}

/** Property: decode-bound PThread IPC is monotone in priority diff. */
class PrioMonotonicityTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PrioMonotonicityTest, MinorityFloorMatchesFormula)
{
    const int diff = GetParam();
    CoreParams params;
    auto p = test::nops();
    auto s = test::nops();
    // PThread is the minority at -diff: its ceiling is
    // minoritySlotWidth per R cycles.
    const int r = 1 << (diff + 1);
    double ipc = pairIpc(params, p, s, 4 - diff >= 1 ? 4 - diff : 1,
                         4 - diff >= 1 ? 4 : 1 + diff, 40000);
    const double floor_ipc =
        static_cast<double>(params.minoritySlotWidth) / r;
    EXPECT_LE(ipc, floor_ipc * 1.15);
    EXPECT_GE(ipc, floor_ipc * 0.7);
}

INSTANTIATE_TEST_SUITE_P(Diffs, PrioMonotonicityTest,
                         ::testing::Values(1, 2, 3));

TEST(CoreSmt, MonotoneAcrossDiffs)
{
    CoreParams params;
    auto p = test::nops();
    auto s = test::nops();
    double prev = 0.0;
    for (int diff = -3; diff <= 3; ++diff) {
        int pp = diff >= 0 ? 4 + diff : 4;
        int ps = diff >= 0 ? 4 : 4 - diff;
        double ipc = pairIpc(params, p, s, pp, ps, 20000);
        EXPECT_GE(ipc, prev * 0.98)
            << "IPC not monotone at diff " << diff;
        prev = ipc;
    }
}

TEST(CoreSmt, StrictSlotsWasteForfeitedCycles)
{
    CoreParams params;
    auto p = test::nops();
    auto s = test::dramChase(); // mostly stalled
    double strict = pairIpc(params, p, s, 4, 4, 20000);

    CoreParams wc = params;
    wc.workConservingSlots = true;
    double conserving = pairIpc(wc, p, s, 4, 4, 20000);
    // Work conservation hands the memory thread's dead slots to the
    // nop thread: a large speedup (this is the ablation that shows the
    // real POWER5 behaviour is *strict*).
    EXPECT_GT(conserving, 1.2 * strict);
}

TEST(CoreSmt, MemoryBoundThreadInsensitiveToLowPriority)
{
    CoreParams params;
    auto mem = test::dramChase();
    auto cpu = test::serialChain();
    double base = pairIpc(params, mem, cpu, 4, 4, 100000);
    double starved = pairIpc(params, mem, cpu, 2, 6, 100000);
    // Paper Fig. 3(f): < 2.5x degradation with a non-memory sibling.
    EXPECT_GT(starved, base / 2.5);
}

TEST(CoreSmt, CpuBoundThreadCollapsesAtLowPriority)
{
    CoreParams params;
    auto cpu = test::nops();
    auto mem = test::dramChase();
    double base = pairIpc(params, cpu, mem, 4, 4, 50000);
    double starved = pairIpc(params, cpu, mem, 1, 6, 200000);
    // Paper Sec. 5.2: order-of-magnitude slowdowns at deep negative
    // priorities for decode-bound threads.
    EXPECT_GT(base / starved, 10.0);
}

TEST(CoreSmt, BalancerBoundsGctHogging)
{
    CoreParams params;
    auto cpu = test::serialChain();
    auto mem = test::dramChase();

    SmtCore core(params);
    test::withCheckers(core);
    core.attachThread(0, &cpu);
    core.attachThread(1, &mem);
    core.run(50000);
    const double with_balancer = core.ipcOf(0);
    // The balancer actively throttles the memory thread...
    EXPECT_GT(core.balancer().gctBlocksOf(1) +
                  core.balancer().tlbBlocksOf(1) +
                  core.balancer().lmqBlocksOf(1),
              0u);
    // ...and its cap holds: the hog never exceeds its GCT threshold by
    // more than one group.
    EXPECT_LE(core.gct().occupancyOf(1),
              static_cast<int>(core.balancer().gctThresholdFor(1) *
                               core.gct().capacity()) +
                  1);

    CoreParams off = params;
    off.balancer.enabled = false;
    const double without = pairIpc(off, cpu, mem, 4, 4, 50000);
    // Balancing never hurts the victim thread.
    EXPECT_GE(with_balancer, without * 0.95);
}

TEST(CoreSmt, SingleThreadModeViaPriority7)
{
    CoreParams params;
    SmtCore core(params);
    test::withCheckers(core);
    auto p = test::nops();
    auto s = test::nops();
    core.attachThread(0, &p);
    core.attachThread(1, &s);
    core.setPriorityPair(7, 4);
    core.run(2000);
    EXPECT_GT(core.ipcOf(0), 4.0);
    EXPECT_EQ(core.committedOf(1), 0u);
}

TEST(CoreSmt, ShutOffThreadStopsCommitting)
{
    CoreParams params;
    SmtCore core(params);
    test::withCheckers(core);
    auto p = test::nops();
    auto s = test::nops();
    core.attachThread(0, &p);
    core.attachThread(1, &s);
    core.run(500);
    core.setPriorityPair(4, 0);
    const std::uint64_t frozen = core.committedOf(1);
    core.run(500);
    // In-flight instructions may drain, but no new decode happens.
    EXPECT_LE(core.committedOf(1) - frozen, 110u);
    EXPECT_GT(core.ipcOf(0), 2.0);
}

TEST(CoreSmt, TotalIpcSumsThreads)
{
    CoreParams params;
    SmtCore core(params);
    test::withCheckers(core);
    auto p = test::nops();
    auto s = test::nops();
    core.attachThread(0, &p);
    core.attachThread(1, &s);
    core.run(1000);
    EXPECT_DOUBLE_EQ(core.totalIpc(), core.ipcOf(0) + core.ipcOf(1));
}

TEST(CoreSmt, SmtBeatsStThroughputForMixedPair)
{
    CoreParams params;
    // A chain-bound thread leaves units idle that a second thread can
    // use: total SMT throughput must exceed the ST throughput of
    // either thread alone.
    auto p = test::serialChain();
    auto s = test::serialChain();
    SmtCore smt(params);
    test::withCheckers(smt);
    smt.attachThread(0, &p);
    smt.attachThread(1, &s);
    smt.run(5000);
    SmtCore st(params);
    test::withCheckers(st);
    auto solo = test::serialChain();
    st.attachThread(0, &solo);
    st.run(5000);
    EXPECT_GT(smt.totalIpc(), 1.5 * st.ipcOf(0));
}

TEST(Chip, TwoCoresShareTheBackside)
{
    CoreParams params;
    Chip chip(params);
    auto p0 = test::dramChase(10000);
    auto p1 = test::dramChase(10000);
    chip.core(0).attachThread(0, &p0);
    chip.core(1).attachThread(0, &p1);
    chip.run(30000);
    // Both cores made progress and the shared L2 saw traffic from both.
    EXPECT_GT(chip.core(0).committedOf(0), 0u);
    EXPECT_GT(chip.core(1).committedOf(0), 0u);
    EXPECT_GT(chip.backside().l2().misses(), 0u);
}

TEST(Chip, CoreIndexChecked)
{
    CoreParams params;
    Chip chip(params);
    EXPECT_DEATH(chip.core(2), "out of range");
}

TEST(Chip, SeparateCoresDoNotShareL1)
{
    CoreParams params;
    Chip chip(params);
    auto p0 = test::dramChase(100);
    chip.core(0).attachThread(0, &p0);
    chip.run(5000);
    EXPECT_GT(chip.core(0).hierarchy().l1d().insertions(), 0u);
    EXPECT_EQ(chip.core(1).hierarchy().l1d().insertions(), 0u);
}

} // namespace
} // namespace p5
