/**
 * @file
 * Tests for the job-based execution engine: SimJob keys and seeds, the
 * keyed result cache (including the shared (4,4) baseline dedup the
 * engine exists for), and bit-identical results across worker counts.
 */

#include <gtest/gtest.h>

#include "exp/experiments.hh"
#include "fame/sim_runner.hh"

namespace p5 {
namespace {

FameParams
fastFame()
{
    FameParams fame;
    fame.minRepetitions = 3;
    fame.warmupRepetitions = 1;
    fame.maiv = 0.05;
    fame.warmupTolerance = 0.25;
    return fame;
}

SimJob
fastPair(UbenchId p, UbenchId s, int prio_p, int prio_s)
{
    return SimJob::famePair(ProgramSpec::ubench(p, 0.5),
                            ProgramSpec::ubench(s, 0.5), prio_p, prio_s,
                            CoreParams{}, fastFame());
}

void
expectIdentical(const FameResult &a, const FameResult &b)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.hitCycleLimit, b.hitCycleLimit);
    for (std::size_t t = 0;
         t < static_cast<std::size_t>(num_hw_threads); ++t) {
        SCOPED_TRACE(t);
        EXPECT_EQ(a.thread[t].present, b.thread[t].present);
        EXPECT_EQ(a.thread[t].executions, b.thread[t].executions);
        EXPECT_EQ(a.thread[t].accountedCycles,
                  b.thread[t].accountedCycles);
        EXPECT_EQ(a.thread[t].accountedInstrs,
                  b.thread[t].accountedInstrs);
    }
}

TEST(SimJob, KeyIsStableAndDiscriminating)
{
    SimJob a = fastPair(UbenchId::CpuInt, UbenchId::LdintMem, 6, 2);
    SimJob b = fastPair(UbenchId::CpuInt, UbenchId::LdintMem, 6, 2);
    EXPECT_EQ(a.key(), b.key());

    // Every configuration knob must show up in the key.
    SimJob prio = fastPair(UbenchId::CpuInt, UbenchId::LdintMem, 6, 3);
    EXPECT_NE(a.key(), prio.key());

    SimJob swapped = fastPair(UbenchId::LdintMem, UbenchId::CpuInt, 6, 2);
    EXPECT_NE(a.key(), swapped.key());

    SimJob scaled = a;
    scaled.primary.scale = 0.75;
    EXPECT_NE(a.key(), scaled.key());

    SimJob fame = a;
    fame.fame.minRepetitions = 4;
    EXPECT_NE(a.key(), fame.key());

    SimJob core = a;
    core.core.lmqEntries = 4;
    EXPECT_NE(a.key(), core.key());

    SimJob st = SimJob::fameSingle(ProgramSpec::ubench(UbenchId::CpuInt,
                                                       0.5),
                                   CoreParams{}, fastFame());
    EXPECT_NE(a.key(), st.key());
}

TEST(SimJob, RngSeedIsAPureFunctionOfTheKey)
{
    SimJob a = fastPair(UbenchId::CpuInt, UbenchId::LdintMem, 6, 2);
    SimJob b = fastPair(UbenchId::CpuInt, UbenchId::LdintMem, 6, 2);
    EXPECT_EQ(a.rngSeed(), b.rngSeed());

    SimJob c = fastPair(UbenchId::CpuInt, UbenchId::LdintMem, 6, 1);
    EXPECT_NE(a.rngSeed(), c.rngSeed());
}

TEST(SimJob, PipelineJobKindsHaveDistinctKeys)
{
    PipelineParams pp;
    pp.scale = 0.25;
    SimJob st = SimJob::pipelineSingleThread(pp, CoreParams{});
    SimJob smt = SimJob::pipelineSmt(pp, CoreParams{});
    EXPECT_NE(st.key(), smt.key());
}

TEST(SimRunner, CacheCoalescesDuplicatesWithinABatch)
{
    ResultCache cache;
    SimRunner runner(2, &cache);

    SimJob job = fastPair(UbenchId::CpuInt, UbenchId::CpuInt, 5, 4);
    std::vector<SimJob> batch = {job, job, job};
    std::vector<SimResult> res = runner.run(batch);

    ASSERT_EQ(res.size(), 3u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.size(), 1u);
    expectIdentical(res[0].fame, res[1].fame);
    expectIdentical(res[0].fame, res[2].fame);
}

TEST(SimRunner, CacheHitsAcrossBatchesReturnTheSameResult)
{
    ResultCache cache;
    SimRunner runner(1, &cache);

    SimJob job = fastPair(UbenchId::CpuInt, UbenchId::LdintMem, 4, 4);
    SimResult first = runner.runOne(job);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);

    SimResult again = runner.runOne(job);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    expectIdentical(first.fame, again.fame);
}

TEST(SimRunner, SharedBaselinesDeduplicateAcrossProducers)
{
    // Table 3's (4,4) matrix and Fig. 2's per-pair baselines are the
    // same simulations; through one cache they must run exactly once.
    ResultCache cache;
    ExpConfig cfg = ExpConfig::fast();
    cfg.cache = &cache;
    cfg.jobs = 2;

    (void)runTable3(cfg);
    EXPECT_EQ(cache.hits(), 0u);
    const std::uint64_t missesAfterTable3 = cache.misses();

    (void)runFig2(cfg);
    const std::size_t n = cfg.benchmarks.size();
    // Every (i, j) baseline of Fig. 2 was already simulated by Table 3.
    EXPECT_EQ(cache.hits(), n * n);
    // And the only new simulations are the five diffs per pair.
    EXPECT_EQ(cache.misses() - missesAfterTable3, n * n * 5);
}

TEST(SimRunner, ResultsAreIdenticalForAnyWorkerCount)
{
    // A Fig. 2 slice: cpu_int against two partners across diffs +1..+5,
    // once serially and once on eight workers, private caches so both
    // actually simulate. Results must match bit for bit.
    std::vector<SimJob> batch;
    for (UbenchId partner : {UbenchId::CpuInt, UbenchId::LdintMem})
        for (int d = 1; d <= 5; ++d) {
            auto [pp, ps] = prioPairForDiff(d);
            batch.push_back(
                fastPair(UbenchId::CpuInt, partner, pp, ps));
        }

    ResultCache cacheSerial, cacheParallel;
    SimRunner serial(1, &cacheSerial);
    SimRunner parallel(8, &cacheParallel);

    std::vector<SimResult> a = serial.run(batch);
    std::vector<SimResult> b = parallel.run(batch);

    ASSERT_EQ(a.size(), batch.size());
    ASSERT_EQ(b.size(), batch.size());
    EXPECT_EQ(cacheParallel.misses(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
        SCOPED_TRACE(i);
        expectIdentical(a[i].fame, b[i].fame);
        EXPECT_EQ(a[i].rngSeed, b[i].rngSeed);
    }
}

TEST(SimRunner, ExpConfigProducersMatchAcrossWorkerCounts)
{
    // Full producer path: runFig2 with jobs=1 and jobs=4 must assemble
    // identical curves (fresh caches force re-simulation).
    ResultCache c1, c4;
    ExpConfig serialCfg = ExpConfig::fast();
    serialCfg.jobs = 1;
    serialCfg.cache = &c1;
    ExpConfig parallelCfg = ExpConfig::fast();
    parallelCfg.jobs = 4;
    parallelCfg.cache = &c4;

    PrioCurveData a = runFig2(serialCfg);
    PrioCurveData b = runFig2(parallelCfg);

    ASSERT_EQ(a.rel.size(), b.rel.size());
    for (std::size_t i = 0; i < a.rel.size(); ++i)
        for (std::size_t j = 0; j < a.rel[i].size(); ++j)
            for (std::size_t d = 0; d < a.rel[i][j].size(); ++d)
                EXPECT_EQ(a.rel[i][j][d], b.rel[i][j][d])
                    << i << "," << j << "," << d;
}

} // namespace
} // namespace p5
