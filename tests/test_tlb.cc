/**
 * @file
 * Unit tests for the D-TLB model.
 */

#include <gtest/gtest.h>

#include "mem/tlb.hh"

namespace p5 {
namespace {

TlbParams
smallTlb()
{
    return TlbParams{"t", 8, 2, 4096, 100};
}

TEST(Tlb, MissChargesWalkThenHits)
{
    Tlb t(smallTlb());
    TlbResult r = t.access(0x1234);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.latency, 100);
    r = t.access(0x1FFF); // same page
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.latency, 0);
    EXPECT_EQ(t.hits(), 1u);
    EXPECT_EQ(t.misses(), 1u);
}

TEST(Tlb, DistinctPagesMissSeparately)
{
    Tlb t(smallTlb());
    t.access(0x0000);
    TlbResult r = t.access(0x2000);
    EXPECT_FALSE(r.hit);
}

TEST(Tlb, LruWithinSet)
{
    Tlb t(smallTlb()); // 4 sets x 2 ways
    // Pages 0, 4, 8 map to set 0 (vpn % 4 == 0).
    t.access(0x0000);           // vpn 0
    t.access(4ull * 4096);      // vpn 4
    t.access(0x0000);           // refresh vpn 0
    t.access(8ull * 4096);      // vpn 8 evicts vpn 4
    EXPECT_TRUE(t.probe(0x0000));
    EXPECT_FALSE(t.probe(4ull * 4096));
    EXPECT_TRUE(t.probe(8ull * 4096));
}

TEST(Tlb, ProbeHasNoSideEffects)
{
    Tlb t(smallTlb());
    EXPECT_FALSE(t.probe(0x5000));
    EXPECT_EQ(t.misses(), 0u);
    t.access(0x5000);
    EXPECT_TRUE(t.probe(0x5000));
}

TEST(Tlb, FlushAll)
{
    Tlb t(smallTlb());
    t.access(0x0000);
    t.flushAll();
    EXPECT_FALSE(t.probe(0x0000));
}

TEST(Tlb, CapacityReach)
{
    Tlb t(smallTlb()); // 8 entries
    for (Addr p = 0; p < 8; ++p)
        t.access(p * 4096);
    for (Addr p = 0; p < 8; ++p)
        EXPECT_TRUE(t.probe(p * 4096));
    // One more page in some set evicts exactly one entry.
    t.access(8ull * 4096);
    int resident = 0;
    for (Addr p = 0; p < 9; ++p)
        if (t.probe(p * 4096))
            ++resident;
    EXPECT_EQ(resident, 8);
}

TEST(TlbDeath, BadGeometryIsFatal)
{
    TlbParams p{"bad", 7, 2, 4096, 100};
    EXPECT_EXIT({ Tlb t(p); }, ::testing::ExitedWithCode(1),
                "bad geometry");
}

} // namespace
} // namespace p5
