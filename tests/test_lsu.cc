/**
 * @file
 * Unit tests for the load/store unit: address-space separation, LMQ
 * admission, and the priority-arbitrated table walker.
 */

#include <gtest/gtest.h>

#include "core/lsu.hh"

namespace p5 {
namespace {

struct LsuFixture
{
    LsuFixture()
    {
        params.mem.tlb = TlbParams{"dtlb", 16, 2, 4096, 100};
        hierarchy = std::make_unique<CacheHierarchy>(params.mem);
        lmq = std::make_unique<Lmq>(params.lmqEntries);
        lsu = std::make_unique<Lsu>(params, hierarchy.get(), lmq.get());
        allocator = std::make_unique<DecodeSlotAllocator>(5, 2);
        allocator->setPriorities(4, 4);
        lsu->setPriorityView(allocator.get());
    }

    CoreParams params;
    std::unique_ptr<CacheHierarchy> hierarchy;
    std::unique_ptr<Lmq> lmq;
    std::unique_ptr<Lsu> lsu;
    std::unique_ptr<DecodeSlotAllocator> allocator;
};

TEST(Lsu, EffectiveAddressesAreThreadPrivate)
{
    LsuFixture f;
    EXPECT_NE(f.lsu->effectiveAddr(0, 0x1000),
              f.lsu->effectiveAddr(1, 0x1000));
    // ...but set-index bits are preserved (same cache sets contended).
    EXPECT_EQ(f.lsu->effectiveAddr(0, 0x1000) & 0xfffff,
              f.lsu->effectiveAddr(1, 0x1000) & 0xfffff);
}

TEST(Lsu, LoadMissesGoThroughLmq)
{
    LsuFixture f;
    MemAccessResult r = f.lsu->issueLoad(0, 0x2000, 0);
    EXPECT_EQ(r.level, MemLevel::Mem);
    EXPECT_EQ(f.lmq->allocations(), 1u);
    EXPECT_EQ(f.lsu->loadsOf(0), 1u);
}

TEST(Lsu, L1HitsBypassLmq)
{
    LsuFixture f;
    f.lsu->issueLoad(0, 0x2000, 0);
    std::uint64_t allocs = f.lmq->allocations();
    MemAccessResult r = f.lsu->issueLoad(0, 0x2000, 5000);
    EXPECT_EQ(r.level, MemLevel::L1);
    EXPECT_EQ(f.lmq->allocations(), allocs);
}

TEST(Lsu, TlbMissTriggersWalk)
{
    LsuFixture f;
    MemAccessResult r = f.lsu->issueLoad(0, 0x3000, 0);
    EXPECT_TRUE(r.tlbMiss);
    EXPECT_TRUE(f.lsu->tlbWalkInProgress(0, 50));
    EXPECT_FALSE(f.lsu->tlbWalkInProgress(0, 100));
    EXPECT_EQ(f.lsu->walksOf(0), 1u);
}

TEST(Lsu, WalksSerializePerThread)
{
    LsuFixture f;
    // Two loads to different pages at the same cycle: the second walk
    // waits for the first.
    MemAccessResult a = f.lsu->issueLoad(0, 0x0000, 0);
    MemAccessResult b = f.lsu->issueLoad(0, 0x4000, 0);
    EXPECT_TRUE(a.tlbMiss);
    EXPECT_TRUE(b.tlbMiss);
    // Walk a: [0,100); walk b: [100,200); then DRAM.
    EXPECT_GE(b.doneCycle, a.doneCycle + 100);
}

TEST(Lsu, WalkerSharedAcrossThreadsFcfsAtEqualPriority)
{
    LsuFixture f;
    MemAccessResult a = f.lsu->issueLoad(0, 0x0000, 0);
    MemAccessResult b = f.lsu->issueLoad(1, 0x0000, 0);
    // Same-cycle walks from both threads: the second queues one walk.
    EXPECT_GE(b.doneCycle, a.doneCycle + 100);
}

TEST(Lsu, WalkerPenalizesLowerPriorityThread)
{
    LsuFixture f;
    f.allocator->setPriorities(6, 2); // R = 32
    // Establish walker contention: both threads walking.
    f.lsu->issueLoad(0, 0x0000, 0);
    MemAccessResult minority = f.lsu->issueLoad(1, 0x0000, 1);
    // The minority's walk carries the (R-1) x walk delay.
    EXPECT_GE(minority.doneCycle, 31u * 100u);
}

TEST(Lsu, FirstWalkUnpenalizedWithIdleSibling)
{
    LsuFixture f;
    f.allocator->setPriorities(6, 2); // R = 32
    // The sibling (thread 0) has never requested a walk: the minority's
    // very first walk must not be treated as contended. A zero-initialized
    // lastWalkRequest_ used to look like a sibling walk at cycle 0 and
    // charged the full (R-1) x walk phantom penalty (31 x 100 here).
    MemAccessResult minority = f.lsu->issueLoad(1, 0x0000, 0);
    EXPECT_TRUE(minority.tlbMiss);
    EXPECT_LT(minority.doneCycle, 31u * 100u);
    // Uncontended: one walk (100) plus the DRAM access, well under 1000.
    EXPECT_LT(minority.doneCycle, 1000u);
}

TEST(Lsu, WalkerPenaltyDisabledByKnob)
{
    LsuFixture f;
    CoreParams p = f.params;
    p.priorityAwareWalker = false;
    Lsu lsu2(p, f.hierarchy.get(), f.lmq.get());
    lsu2.setPriorityView(f.allocator.get());
    f.allocator->setPriorities(6, 2);
    lsu2.issueLoad(0, 0x0000, 0);
    MemAccessResult minority = lsu2.issueLoad(1, 0x0000, 1);
    // Just FCFS: walk waits at most one walk slot + DRAM.
    EXPECT_LT(minority.doneCycle, 1000u);
}

TEST(Lsu, MajorityUnaffectedByMinorityWalks)
{
    LsuFixture f;
    f.allocator->setPriorities(6, 2);
    f.lsu->issueLoad(1, 0x0000, 0); // minority walks (delayed)
    MemAccessResult majority = f.lsu->issueLoad(0, 0x0000, 1);
    // The majority's walk proceeds after at most one walk service.
    EXPECT_LT(majority.doneCycle, 700u);
}

TEST(Lsu, PortGateSerializesBackToBackLoads)
{
    LsuFixture f;
    // Warm a line for thread 1 so its later loads are pure L1 hits.
    f.lsu->issueLoad(1, 0x0000, 0);
    // Thread 0 walks at cycle 400 (outside thread 1's contention
    // window), making it the active walker with a service window
    // [400, 500) that gates the sibling's LSU port.
    MemAccessResult walk = f.lsu->issueLoad(0, 0x4000, 400);
    EXPECT_TRUE(walk.tlbMiss);
    // Three back-to-back L1 hits from the gated sibling at the same
    // cycle: each must hold the port for the full gap (2 cycles at
    // equal priority), so the gate start times serialize 410/412/414.
    // The old gate could hand two same-cycle accesses the same start.
    MemAccessResult l1 = f.lsu->issueLoad(1, 0x0000, 410);
    MemAccessResult l2 = f.lsu->issueLoad(1, 0x0000, 410);
    MemAccessResult l3 = f.lsu->issueLoad(1, 0x0000, 410);
    EXPECT_EQ(l1.level, MemLevel::L1);
    EXPECT_EQ(l2.level, MemLevel::L1);
    EXPECT_EQ(l3.level, MemLevel::L1);
    EXPECT_GE(l2.doneCycle, l1.doneCycle + 2);
    EXPECT_GE(l3.doneCycle, l2.doneCycle + 2);
}

TEST(Lsu, StoresWalkAndFill)
{
    LsuFixture f;
    MemAccessResult r = f.lsu->issueStore(0, 0x8000, 0);
    EXPECT_TRUE(r.tlbMiss);
    EXPECT_EQ(f.lsu->storesOf(0), 1u);
    // Write-allocate: a subsequent load hits L1.
    MemAccessResult l = f.lsu->issueLoad(0, 0x8000, 5000);
    EXPECT_EQ(l.level, MemLevel::L1);
}

TEST(Lsu, LmqFullQueuesTheMiss)
{
    LsuFixture f;
    // Fill the LMQ with long DRAM misses to distinct lines/pages kept
    // within one TLB page span to avoid extra walk serialization.
    f.lsu->issueLoad(0, 0x0000, 0); // walk + fill page
    Cycle t = 200;
    std::uint64_t queued_before = f.lmq->queuedMisses();
    for (int i = 1; i <= 12; ++i) {
        f.lsu->issueLoad(0, static_cast<Addr>(i) * 128, t);
    }
    EXPECT_GT(f.lmq->queuedMisses(), queued_before);
}

} // namespace
} // namespace p5
