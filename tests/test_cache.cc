/**
 * @file
 * Unit and property tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace p5 {
namespace {

CacheParams
smallCache()
{
    // 4 sets x 2 ways x 64B lines = 512 B.
    return CacheParams{"small", 512, 2, 64, 2, 3};
}

TEST(Cache, MissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.lookup(0x100));
    c.insert(0x100);
    EXPECT_TRUE(c.lookup(0x100));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SameLineDifferentOffsets)
{
    Cache c(smallCache());
    c.insert(0x100);
    EXPECT_TRUE(c.lookup(0x13F)); // same 64B line
    EXPECT_FALSE(c.probe(0x140)); // next line
}

TEST(Cache, LruEviction)
{
    Cache c(smallCache());
    // Three lines mapping to the same set (set stride = 4 * 64 = 256).
    c.insert(0x000);
    c.insert(0x100);
    c.lookup(0x000);  // make 0x000 MRU
    c.insert(0x200);  // evicts LRU = 0x100
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_TRUE(c.probe(0x200));
    EXPECT_EQ(c.evictions(), 1u);
}

TEST(Cache, ProbeHasNoSideEffects)
{
    Cache c(smallCache());
    c.insert(0x000);
    c.insert(0x100);
    // Probing 0x000 must NOT refresh it.
    c.probe(0x000);
    c.lookup(0x100); // 0x100 MRU
    c.insert(0x200); // evicts 0x000 (still LRU)
    EXPECT_FALSE(c.probe(0x000));
    std::uint64_t hits = c.hits();
    c.probe(0x100);
    EXPECT_EQ(c.hits(), hits); // probe doesn't count stats
}

TEST(Cache, FlushAll)
{
    Cache c(smallCache());
    c.insert(0x000);
    c.insert(0x100);
    c.flushAll();
    EXPECT_FALSE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x100));
}

TEST(Cache, InsertExistingRefreshesRecency)
{
    Cache c(smallCache());
    c.insert(0x000);
    c.insert(0x100);
    c.insert(0x000); // refresh, no new insertion slot taken
    c.insert(0x200); // evict 0x100
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x100));
}

TEST(Cache, ReserveServiceEnforcesGap)
{
    Cache c(smallCache()); // gap 3
    EXPECT_EQ(c.reserveService(10, 10), 10u);
    EXPECT_EQ(c.reserveService(10, 10), 13u);
    EXPECT_EQ(c.reserveService(10, 10), 16u);
    EXPECT_EQ(c.reserveService(20, 20), 20u);
}

TEST(Cache, FutureReservationDoesNotBlockPresent)
{
    Cache c(smallCache()); // gap 3
    // A request issued now but serviceable far in the future...
    EXPECT_EQ(c.reserveService(10, 1000), 1000u);
    // ...must not stall the next present-time request by more than one
    // service slot.
    EXPECT_LE(c.reserveService(11, 11), 14u);
}

TEST(CacheDeath, BadGeometryIsFatal)
{
    CacheParams p{"bad", 0, 4, 64, 1, 1};
    EXPECT_EXIT({ Cache c(p); }, ::testing::ExitedWithCode(1),
                "bad geometry");
}

TEST(CacheDeath, NonPow2LineIsFatal)
{
    CacheParams p{"bad", 512, 2, 48, 1, 1};
    EXPECT_EXIT({ Cache c(p); }, ::testing::ExitedWithCode(1),
                "power of two");
}

// Property: a working set that fits is fully resident after one pass,
// regardless of geometry.
class CacheResidencyTest
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheResidencyTest, FittingSetStaysResident)
{
    auto [assoc, line] = GetParam();
    CacheParams p{"param", 16 * 1024, assoc, line, 2, 1};
    Cache c(p);
    const int lines = static_cast<int>(p.sizeBytes) / line;
    for (int i = 0; i < lines; ++i)
        c.insert(static_cast<Addr>(i) * static_cast<Addr>(line));
    for (int i = 0; i < lines; ++i)
        EXPECT_TRUE(
            c.probe(static_cast<Addr>(i) * static_cast<Addr>(line)));
    EXPECT_EQ(c.evictions(), 0u);
}

TEST_P(CacheResidencyTest, OversizedCyclicSetAlwaysMisses)
{
    auto [assoc, line] = GetParam();
    CacheParams p{"param", 16 * 1024, assoc, line, 2, 1};
    Cache c(p);
    const int lines = 2 * static_cast<int>(p.sizeBytes) / line;
    // Two full passes: with LRU and a cyclic access pattern twice the
    // capacity, the second pass must miss every line.
    for (int pass = 0; pass < 2; ++pass) {
        std::uint64_t misses_before = c.misses();
        for (int i = 0; i < lines; ++i) {
            if (!c.lookup(static_cast<Addr>(i) *
                          static_cast<Addr>(line)))
                c.insert(static_cast<Addr>(i) *
                         static_cast<Addr>(line));
        }
        EXPECT_EQ(c.misses() - misses_before,
                  static_cast<std::uint64_t>(lines));
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, CacheResidencyTest,
                         ::testing::Combine(::testing::Values(1, 2, 4,
                                                              8),
                                            ::testing::Values(64, 128,
                                                              256)));

} // namespace
} // namespace p5
