/**
 * @file
 * Tests for the experiment harness and renderers (fast configurations).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "exp/experiments.hh"
#include "exp/report.hh"

namespace p5 {
namespace {

TEST(Experiments, PrioPairMapping)
{
    EXPECT_EQ(prioPairForDiff(0), (std::pair{4, 4}));
    EXPECT_EQ(prioPairForDiff(1), (std::pair{5, 4}));
    EXPECT_EQ(prioPairForDiff(2), (std::pair{6, 4}));
    EXPECT_EQ(prioPairForDiff(3), (std::pair{6, 3}));
    EXPECT_EQ(prioPairForDiff(4), (std::pair{6, 2}));
    EXPECT_EQ(prioPairForDiff(5), (std::pair{6, 1}));
    EXPECT_EQ(prioPairForDiff(-2), (std::pair{4, 6}));
    EXPECT_EQ(prioPairForDiff(-5), (std::pair{1, 6}));
}

TEST(Experiments, PrioPairsStayInSupervisorRange)
{
    for (int d = -5; d <= 5; ++d) {
        auto [p, s] = prioPairForDiff(d);
        EXPECT_GE(p, 1);
        EXPECT_LE(p, 6);
        EXPECT_GE(s, 1);
        EXPECT_LE(s, 6);
        EXPECT_EQ(p - s, d);
    }
}

TEST(Experiments, FastConfigIsSmall)
{
    ExpConfig fast = ExpConfig::fast();
    EXPECT_LT(fast.fame.minRepetitions, 10u);
    EXPECT_EQ(fast.benchmarks.size(), 2u);
}

TEST(Experiments, Table3FastRun)
{
    ExpConfig cfg = ExpConfig::fast();
    Table3Data d = runTable3(cfg);
    ASSERT_EQ(d.benchmarks.size(), 2u);
    ASSERT_EQ(d.stIpc.size(), 2u);
    // cpu_int ST IPC well above ldint_mem's.
    EXPECT_GT(d.stIpc[0], 5.0 * d.stIpc[1]);
    // Co-running never raises a benchmark above its ST IPC.
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j) {
            EXPECT_LE(d.pt[i][j], d.stIpc[i] * 1.1);
            EXPECT_GE(d.tt[i][j], d.pt[i][j]);
        }

    Table t = renderTable3(d);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Experiments, Fig2FastShapes)
{
    ExpConfig cfg = ExpConfig::fast();
    PrioCurveData d = runFig2(cfg);
    ASSERT_EQ(d.diffs.size(), 5u);
    // cpu_int (index 0) vs cpu_int: positive priority must speed the
    // PThread up, monotonically-ish, by at least 1.3x at +4.
    EXPECT_GT(d.rel[0][0][3], 1.3);
    EXPECT_GE(d.rel[0][0][4], d.rel[0][0][0] * 0.9);
    // All factors >= ~1 (priority never hurts the prioritized thread).
    for (const auto &row : d.rel)
        for (const auto &series : row)
            for (double f : series)
                EXPECT_GT(f, 0.85);
}

TEST(Experiments, Fig3FastShapes)
{
    ExpConfig cfg = ExpConfig::fast();
    PrioCurveData d = runFig3(cfg);
    // cpu_int degraded heavily at -4/-5 against either sibling.
    EXPECT_LT(d.rel[0][0][4], 0.2);
    EXPECT_LT(d.rel[0][1][4], 0.2);
    // ldint_mem (index 1) stays within a small factor against cpu_int
    // (paper Fig 3(f): < 2.5x; we allow ~3.5x at fast-config scale).
    EXPECT_GT(d.rel[1][0][4], 0.28);
    // ...and is hit far harder by another ldint_mem.
    EXPECT_LT(d.rel[1][1][4], 0.5 * d.rel[1][0][4]);
}

TEST(Experiments, Fig4FastShapes)
{
    ExpConfig cfg = ExpConfig::fast();
    ThroughputData d = runFig4(cfg);
    ASSERT_EQ(d.diffs.size(), 9u);
    // Diff 0 is the baseline by construction.
    EXPECT_DOUBLE_EQ(d.ratio[0][0][4], 1.0);
    // Prioritizing cpu_int over ldint_mem raises total IPC; the
    // reverse lowers it (paper Sec. 5.3).
    EXPECT_GE(d.ratio[0][1][8], 0.95);
    EXPECT_LT(d.ratio[0][1][0], 0.75);
    Table t = renderFig4(d)[0];
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Experiments, Table4FastRun)
{
    ExpConfig cfg = ExpConfig::fast();
    cfg.ubenchScale = 0.25;
    Table4Data d = runTable4(cfg);
    ASSERT_EQ(d.rows.size(), 5u);
    EXPECT_TRUE(d.rows[0].singleThread);
    // SMT (4,4) beats single-thread mode.
    EXPECT_LT(d.rows[1].iterationCycles, d.rows[0].iterationCycles);
    // (6,3) degrades the LU stage heavily.
    EXPECT_GT(d.rows[4].luCycles, 2.0 * d.rows[1].luCycles);
    Table t = renderTable4(d);
    EXPECT_EQ(t.numRows(), 5u);
}

TEST(Experiments, Fig5FastRun)
{
    ExpConfig cfg = ExpConfig::fast();
    CaseStudyData d =
        runFig5(SpecProxyId::H264ref, SpecProxyId::Mcf, cfg);
    ASSERT_EQ(d.diffs.size(), 6u);
    // Prioritizing the high-IPC thread raises its IPC and lowers the
    // partner's.
    EXPECT_GT(d.ipcPrimary[2], d.ipcPrimary[0]);
    EXPECT_LT(d.ipcSecondary[5], d.ipcSecondary[0]);
    // Total IPC peaks above the baseline somewhere (paper Fig. 5(a)).
    double best = 0.0;
    for (double t : d.ipcTotal)
        best = std::max(best, t);
    EXPECT_GT(best, 1.05 * d.ipcTotal[0]);
    Table t = renderFig5(d);
    EXPECT_EQ(t.numRows(), 6u);
}

TEST(Experiments, RenderTable1MatchesPaper)
{
    Table t = renderTable1();
    EXPECT_EQ(t.numRows(), 8u);
    EXPECT_EQ(t.row(1)[3], "or 31,31,31");
    EXPECT_EQ(t.row(0)[2], "Hypervisor");
    EXPECT_EQ(t.row(4)[1], "Medium");
}

TEST(Experiments, RenderTable2ListsAllBenchmarks)
{
    Table t = renderTable2();
    EXPECT_EQ(t.numRows(), 15u);
}

TEST(Experiments, RenderersProduceOutput)
{
    ExpConfig cfg = ExpConfig::fast();
    PrioCurveData d = runFig2(cfg);
    auto tables = renderPrioCurves(d, "Figure 2");
    ASSERT_EQ(tables.size(), 2u);
    std::ostringstream os;
    tables[0].printAscii(os);
    EXPECT_NE(os.str().find("cpu_int"), std::string::npos);
}

} // namespace
} // namespace p5
