/**
 * @file
 * Unit tests for the load-miss queue (busy-window MSHR model).
 */

#include <gtest/gtest.h>

#include "mem/lmq.hh"

namespace p5 {
namespace {

TEST(Lmq, ReserveWithinCapacityIsImmediate)
{
    Lmq q(2);
    EXPECT_EQ(q.reserve(0, 0, 0, 100), 0u);
    EXPECT_EQ(q.reserve(0, 0, 0, 100), 0u);
    EXPECT_EQ(q.occupancy(0), 2);
    EXPECT_EQ(q.queuedMisses(), 0u);
}

TEST(Lmq, OverflowQueuesBehindEarliestRelease)
{
    Lmq q(2);
    q.reserve(0, 0, 0, 50);
    q.reserve(0, 0, 0, 100);
    // Third miss must wait until the first entry frees at 50.
    EXPECT_EQ(q.reserve(0, 0, 0, 80), 50u);
    EXPECT_EQ(q.queuedMisses(), 1u);
    EXPECT_EQ(q.queuedCycles(), 50u);
}

TEST(Lmq, QueuedWindowKeepsDuration)
{
    Lmq q(1);
    q.reserve(0, 0, 0, 30);
    Cycle start = q.reserve(0, 0, 10, 40); // 30-cycle window
    EXPECT_EQ(start, 30u);
    // Its release must be 60: a third 1-cycle window queues to 60.
    EXPECT_EQ(q.reserve(0, 0, 35, 36), 60u);
}

TEST(Lmq, EntriesExpire)
{
    Lmq q(1);
    q.reserve(0, 0, 0, 10);
    EXPECT_EQ(q.occupancy(5), 1);
    EXPECT_EQ(q.occupancy(10), 0);
    EXPECT_EQ(q.reserve(0, 10, 10, 20), 10u);
}

TEST(Lmq, FutureWindowsDoNotBlockPresent)
{
    Lmq q(2);
    // Two walks pending far in the future...
    q.reserve(0, 0, 1000, 1100);
    q.reserve(0, 0, 2000, 2100);
    // ...must not delay a present miss (their windows don't overlap).
    EXPECT_EQ(q.reserve(1, 0, 0, 100), 0u);
}

TEST(Lmq, PerThreadOccupancy)
{
    Lmq q(4);
    q.reserve(0, 0, 0, 100);
    q.reserve(0, 0, 0, 100);
    q.reserve(1, 0, 0, 100);
    EXPECT_EQ(q.occupancyOf(0, 0), 2);
    EXPECT_EQ(q.occupancyOf(1, 0), 1);
    EXPECT_EQ(q.occupancy(0), 3);
}

TEST(Lmq, FutureStartNotCountedYet)
{
    Lmq q(4);
    q.reserve(0, 0, 50, 100);
    EXPECT_EQ(q.occupancyOf(0, 10), 0);
    EXPECT_EQ(q.occupancyOf(0, 50), 1);
}

TEST(Lmq, ReleaseThread)
{
    Lmq q(2);
    q.reserve(0, 0, 0, 100);
    q.reserve(1, 0, 0, 100);
    q.releaseThread(0);
    EXPECT_EQ(q.occupancyOf(0, 0), 0);
    EXPECT_EQ(q.occupancyOf(1, 0), 1);
}

TEST(Lmq, UpdateLastRelease)
{
    Lmq q(1);
    q.reserve(0, 0, 0, 300); // pessimistic estimate
    q.updateLastRelease(20); // actual miss was short
    EXPECT_EQ(q.reserve(0, 0, 5, 25), 20u); // queues only to 20
}

TEST(Lmq, Reset)
{
    Lmq q(1);
    q.reserve(0, 0, 0, 1000);
    q.reset();
    EXPECT_EQ(q.occupancy(0), 0);
    EXPECT_EQ(q.reserve(0, 0, 0, 10), 0u);
}

TEST(Lmq, AllocationCounting)
{
    Lmq q(8);
    for (int i = 0; i < 5; ++i)
        q.reserve(0, 0, 0, 10);
    EXPECT_EQ(q.allocations(), 5u);
}

TEST(LmqDeath, ZeroCapacityIsFatal)
{
    EXPECT_EXIT({ Lmq q(0); }, ::testing::ExitedWithCode(1),
                "at least one entry");
}

// Property: with capacity N and identical W-cycle windows arriving
// together, the k-th window starts at floor(k/N)*W.
class LmqThroughputTest : public ::testing::TestWithParam<int>
{
};

TEST_P(LmqThroughputTest, SteadyThroughputMatchesCapacity)
{
    const int cap = GetParam();
    Lmq q(cap);
    const Cycle w = 40;
    for (int k = 0; k < cap * 4; ++k) {
        Cycle start = q.reserve(0, 0, 0, w);
        EXPECT_EQ(start, static_cast<Cycle>(k / cap) * w);
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, LmqThroughputTest,
                         ::testing::Values(1, 2, 4, 8, 16));

} // namespace
} // namespace p5
