#!/usr/bin/env python3
"""Self-test for tools/p5lint.py against tests/lint_fixtures/.

Every bad_*.cc fixture must be flagged by exactly its intended rule
(at least one finding, and no finding from any other rule); every
good_*.cc twin must come back clean.  The fixture table below is the
contract: add a row whenever a fixture is added.

Run directly (``python3 tests/test_p5lint.py``) or through CTest as
the ``p5lint_fixtures`` test.
"""

import json
import pathlib
import subprocess
import sys
import tempfile

HERE = pathlib.Path(__file__).resolve().parent
REPO = HERE.parent
P5LINT = REPO / "tools" / "p5lint.py"
FIXTURES = HERE / "lint_fixtures"

# fixture file -> rule expected to fire (None = must be clean)
CASES = [
    ("bad_hot_alloc.cc", "hot_path_no_alloc"),
    ("good_hot_alloc.cc", None),
    ("bad_probe_impure.cc", "probe_purity"),
    ("good_probe_pure.cc", None),
    ("bad_unordered_iter.cc", "determinism"),
    ("good_ordered_iter.cc", None),
    ("bad_banned_rng.cc", "determinism"),
    ("good_seeded_rng.cc", None),
    ("bad_unbound_field.cc", "config_completeness"),
    ("good_bound_field.cc", None),
    ("bad_serialize_unordered.cc", "determinism"),
    ("good_serialize_ordered.cc", None),
    ("bad_trace_cursor_unordered.cc", "determinism"),
    ("good_trace_cursor_ordered.cc", None),
    ("bad_cold_on_hot.cc", "hot_path_no_alloc"),
    ("good_cold_off_hot.cc", None),
]


def lint(path: pathlib.Path):
    """Run p5lint in fixture mode on one file; return (exit, findings)."""
    with tempfile.NamedTemporaryFile(suffix=".json", mode="r") as out:
        proc = subprocess.run(
            [sys.executable, str(P5LINT), "--files", str(path),
             "--json", out.name, "-q"],
            capture_output=True, text=True)
        findings = json.load(open(out.name))["findings"]
    return proc.returncode, findings, proc.stdout + proc.stderr


def main():
    if not P5LINT.is_file():
        print(f"FAIL: analyzer not found: {P5LINT}")
        return 1

    listed = {name for name, _ in CASES}
    on_disk = {p.name for p in FIXTURES.glob("*.cc")}
    failures = []
    if on_disk - listed:
        failures.append(f"fixtures on disk but not in CASES: "
                        f"{sorted(on_disk - listed)}")
    if listed - on_disk:
        failures.append(f"CASES entries with no fixture file: "
                        f"{sorted(listed - on_disk)}")

    for name, expected_rule in CASES:
        path = FIXTURES / name
        if not path.is_file():
            continue  # already reported above
        code, findings, output = lint(path)
        rules = sorted({f["rule"] for f in findings})
        if expected_rule is None:
            if code != 0 or findings:
                failures.append(
                    f"{name}: expected clean, got exit {code} with "
                    f"rules {rules}\n{output}")
            else:
                print(f"ok   {name}: clean")
        else:
            if code != 1 or not findings:
                failures.append(
                    f"{name}: expected >=1 {expected_rule} finding, got "
                    f"exit {code} with {len(findings)} finding(s)\n{output}")
            elif rules != [expected_rule]:
                failures.append(
                    f"{name}: expected only rule {expected_rule}, got "
                    f"{rules}\n{output}")
            else:
                print(f"ok   {name}: {len(findings)} x {expected_rule}")

    if failures:
        for f in failures:
            print(f"FAIL {f}")
        print(f"test_p5lint: {len(failures)} failure(s)")
        return 1
    print(f"test_p5lint: all {len(CASES)} fixtures behaved as intended")
    return 0


if __name__ == "__main__":
    sys.exit(main())
