/**
 * @file
 * Regenerates paper Figure 2: PThread performance improvement as its
 * priority increases relative to the SThread (differences +1..+5).
 */

#include "bench_common.hh"
#include "exp/report.hh"

int
main(int argc, char **argv)
{
    p5::ExpConfig config = p5bench::parseConfig(argc, argv);
    p5::PrioCurveData data = p5::runFig2(config);
    p5bench::print(p5::renderPrioCurves(data, "Figure 2"));
    p5bench::maybeWriteJson("fig2", config, data);
    return 0;
}
