/**
 * @file
 * Thin compatibility wrapper: equivalent to `p5sim fig2`. The
 * experiment logic lives in src/driver/driver.cc.
 */

#include "driver/driver.hh"

int
main(int argc, char **argv)
{
    return p5::driverMainAs("fig2", argc, argv);
}
