/**
 * @file
 * Regenerates paper Figure 6: transparent execution — the effect of a
 * priority-1 background thread on a foreground thread (panels a/b), the
 * worst-case background as the foreground priority drops (panel c) and
 * the background thread's own IPC (panel d).
 */

#include "bench_common.hh"
#include "exp/report.hh"

int
main(int argc, char **argv)
{
    p5::ExpConfig config = p5bench::parseConfig(argc, argv);
    p5::TransparencyData data = p5::runFig6(config);
    p5bench::print(p5::renderFig6(data));
    p5bench::maybeWriteJson("fig6", config, data);
    return 0;
}
