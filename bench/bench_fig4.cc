/**
 * @file
 * Regenerates paper Figure 4: total IPC throughput with respect to the
 * (4,4) baseline across priority differences -4..+4.
 */

#include "bench_common.hh"
#include "exp/report.hh"

int
main(int argc, char **argv)
{
    p5::ExpConfig config = p5bench::parseConfig(argc, argv);
    p5::ThroughputData data = p5::runFig4(config);
    p5bench::print(p5::renderFig4(data));
    p5bench::maybeWriteJson("fig4", config, data);
    return 0;
}
