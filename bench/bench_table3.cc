/**
 * @file
 * Regenerates paper Table 3: micro-benchmark IPC in ST mode and in all
 * pairwise SMT combinations at priorities (4,4).
 */

#include "bench_common.hh"
#include "exp/report.hh"

int
main(int argc, char **argv)
{
    p5::ExpConfig config = p5bench::parseConfig(argc, argv);
    p5::Table3Data data = p5::runTable3(config);
    p5bench::print(p5::renderTable3(data));
    p5bench::maybeWriteJson("table3", config, data);
    return 0;
}
