/**
 * @file
 * Regenerates paper Table 1: the eight software-controlled priorities,
 * their privilege requirements and or-nop encodings.
 */

#include "bench_common.hh"
#include "exp/report.hh"

int
main(int argc, char **argv)
{
    p5::ExpConfig config = p5bench::parseConfig(argc, argv);
    p5::Table table = p5::renderTable1();
    p5bench::print(table);
    p5bench::maybeWriteJson("table1", config, table);
    return 0;
}
