/**
 * @file
 * Regenerates paper Table 1: the eight software-controlled priorities,
 * their privilege requirements and or-nop encodings.
 */

#include "bench_common.hh"
#include "exp/report.hh"

int
main(int argc, char **argv)
{
    (void)p5bench::parseConfig(argc, argv);
    p5bench::print(p5::renderTable1());
    return 0;
}
