/**
 * @file
 * Shared command-line handling for the per-table/figure bench binaries.
 */

#ifndef P5SIM_BENCH_BENCH_COMMON_HH
#define P5SIM_BENCH_BENCH_COMMON_HH

#include <iostream>
#include <vector>

#include "common/cli.hh"
#include "common/table.hh"
#include "exp/experiments.hh"

namespace p5bench {

/** Process-wide "--csv" preference, set by parseConfig(). */
inline bool &
csvFlag()
{
    static bool flag = false;
    return flag;
}

/** Parse the standard bench flags and build the experiment config. */
inline p5::ExpConfig
parseConfig(int argc, char **argv)
{
    p5::Cli cli;
    cli.declare("fast", "false",
                "reduced repetitions/benchmarks for a quick smoke run");
    cli.declare("reps", "10", "minimum FAME repetitions per benchmark");
    cli.declare("maiv", "0.01", "maximum allowable IPC variation");
    cli.declare("scale", "1.0", "work multiplier per repetition");
    cli.declare("all15", "false",
                "sweep all 15 micro-benchmarks instead of the paper's 6");
    cli.declare("csv", "false", "emit CSV instead of ASCII tables");
    cli.parse(argc, argv);

    p5::ExpConfig config;
    if (cli.boolean("fast"))
        config = p5::ExpConfig::fast();
    if (cli.isSet("reps"))
        config.fame.minRepetitions =
            static_cast<std::uint64_t>(cli.integer("reps"));
    if (cli.isSet("maiv"))
        config.fame.maiv = cli.real("maiv");
    if (cli.isSet("scale"))
        config.ubenchScale = cli.real("scale");
    if (cli.boolean("all15"))
        config.benchmarks = p5::allUbench();

    csvFlag() = cli.boolean("csv");
    return config;
}

/** Print a table per the --csv preference. */
inline void
print(const p5::Table &table)
{
    if (csvFlag()) {
        std::cout << "# " << table.title() << '\n';
        table.printCsv(std::cout);
    } else {
        table.printAscii(std::cout);
    }
    std::cout << '\n';
}

inline void
print(const std::vector<p5::Table> &tables)
{
    for (const auto &t : tables)
        print(t);
}

} // namespace p5bench

#endif // P5SIM_BENCH_BENCH_COMMON_HH
