/**
 * @file
 * Shared command-line handling for the per-table/figure bench binaries.
 */

#ifndef P5SIM_BENCH_BENCH_COMMON_HH
#define P5SIM_BENCH_BENCH_COMMON_HH

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "exp/experiments.hh"
#include "exp/report.hh"
#include "fame/sim_runner.hh"

namespace p5bench {

/** Process-wide "--csv" preference, set by parseConfig(). */
inline bool &
csvFlag()
{
    static bool flag = false;
    return flag;
}

/** Process-wide "--json=FILE" destination ("" = off). */
inline std::string &
jsonPath()
{
    static std::string path;
    return path;
}

/** Parse the standard bench flags and build the experiment config. */
inline p5::ExpConfig
parseConfig(int argc, char **argv)
{
    p5::Cli cli;
    cli.declare("fast", "false",
                "reduced repetitions/benchmarks for a quick smoke run");
    cli.declare("reps", "10", "minimum FAME repetitions per benchmark");
    cli.declare("maiv", "0.01", "maximum allowable IPC variation");
    cli.declare("scale", "1.0", "work multiplier per repetition");
    cli.declare("all15", "false",
                "sweep all 15 micro-benchmarks instead of the paper's 6");
    cli.declare("csv", "false", "emit CSV instead of ASCII tables");
    cli.declare("jobs", "0",
                "simulation worker threads (0 = hardware concurrency)");
    cli.declare("json", "",
                "also write machine-readable results to this file");
    cli.declare("no-fast-forward", "false",
                "tick every cycle instead of skipping verified-idle "
                "gaps (stats are bit-identical; this is ~a 3-10x "
                "slowdown escape hatch)");
    cli.parse(argc, argv);

    p5::ExpConfig config;
    if (cli.boolean("fast"))
        config = p5::ExpConfig::fast();
    if (cli.isSet("reps"))
        config.fame.minRepetitions =
            static_cast<std::uint64_t>(cli.integer("reps"));
    if (cli.isSet("maiv"))
        config.fame.maiv = cli.real("maiv");
    if (cli.isSet("scale"))
        config.ubenchScale = cli.real("scale");
    if (cli.boolean("all15"))
        config.benchmarks = p5::allUbench();
    config.jobs = static_cast<unsigned>(cli.integer("jobs"));
    if (cli.boolean("no-fast-forward"))
        config.core.fastForward = false;

    csvFlag() = cli.boolean("csv");
    jsonPath() = cli.str("json");
    return config;
}

/** Print a table per the --csv preference. */
inline void
print(const p5::Table &table)
{
    if (csvFlag()) {
        std::cout << "# " << table.title() << '\n';
        table.printCsv(std::cout);
    } else {
        table.printAscii(std::cout);
    }
    std::cout << '\n';
}

inline void
print(const std::vector<p5::Table> &tables)
{
    for (const auto &t : tables)
        print(t);
}

/**
 * When --json=FILE was given, write an envelope with run metadata (the
 * experiment name, worker count, result-cache hit/miss counters) around
 * a payload written by @p payload(JsonWriter&) under the "data" key.
 */
template <typename PayloadFn>
inline void
maybeWriteJsonWith(const char *experiment, const p5::ExpConfig &config,
                   PayloadFn &&payload)
{
    if (jsonPath().empty())
        return;
    std::ofstream os(jsonPath());
    if (!os)
        p5::fatal("cannot open --json file '%s'", jsonPath().c_str());

    const p5::ResultCache &cache =
        config.cache ? *config.cache : p5::ResultCache::process();
    p5::JsonWriter w(os);
    w.beginObject();
    w.member("experiment", experiment);
    w.member("jobs", config.jobs ? config.jobs
                                 : p5::ThreadPool::defaultWorkers());
    w.member("scale", config.ubenchScale);
    w.member("minRepetitions", config.fame.minRepetitions);
    w.member("maiv", config.fame.maiv);
    w.member("cacheHits", cache.hits());
    w.member("cacheMisses", cache.misses());
    w.key("data");
    payload(w);
    w.endObject();
}

/** maybeWriteJsonWith() for one experiment-data value. */
template <typename Data>
inline void
maybeWriteJson(const char *experiment, const p5::ExpConfig &config,
               const Data &data)
{
    maybeWriteJsonWith(experiment, config,
                       [&](p5::JsonWriter &w) { p5::writeJson(w, data); });
}

} // namespace p5bench

#endif // P5SIM_BENCH_BENCH_COMMON_HH
