/**
 * @file
 * Regenerates paper Table 2: the micro-benchmark loop bodies.
 */

#include "bench_common.hh"
#include "exp/report.hh"

int
main(int argc, char **argv)
{
    p5::ExpConfig config = p5bench::parseConfig(argc, argv);
    p5::Table table = p5::renderTable2();
    p5bench::print(table);
    p5bench::maybeWriteJson("table2", config, table);
    return 0;
}
