/**
 * @file
 * Regenerates paper Table 2: the micro-benchmark loop bodies.
 */

#include "bench_common.hh"
#include "exp/report.hh"

int
main(int argc, char **argv)
{
    (void)p5bench::parseConfig(argc, argv);
    p5bench::print(p5::renderTable2());
    return 0;
}
