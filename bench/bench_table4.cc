/**
 * @file
 * Thin compatibility wrapper: equivalent to `p5sim table4`. The
 * experiment logic lives in src/driver/driver.cc.
 */

#include "driver/driver.hh"

int
main(int argc, char **argv)
{
    return p5::driverMainAs("table4", argc, argv);
}
