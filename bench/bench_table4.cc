/**
 * @file
 * Regenerates paper Table 4: execution time of the FFT and LU pipeline
 * stages under increasing FFT priority, plus the single-thread
 * reference.
 */

#include "bench_common.hh"
#include "exp/report.hh"

int
main(int argc, char **argv)
{
    p5::ExpConfig config = p5bench::parseConfig(argc, argv);
    p5::Table4Data data = p5::runTable4(config);
    p5bench::print(p5::renderTable4(data));
    p5bench::maybeWriteJson("table4", config, data);
    return 0;
}
