/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *
 *  1. dynamic hardware resource balancer on/off;
 *  2. strict vs work-conserving decode slots;
 *  3. minority-slot width (the calibrated low-priority decode penalty);
 *  4. priority-aware GCT thresholds;
 *  5. priority-aware table-walker scheduling;
 *  6. LMQ size sweep.
 */

#include <string>

#include "bench_common.hh"
#include "fame/fame.hh"
#include "ubench/ubench.hh"
#include "workloads/spec_proxy.hh"

namespace {

using namespace p5;

struct PairResult
{
    double ipcP = 0.0;
    double ipcS = 0.0;

    double total() const { return ipcP + ipcS; }
};

PairResult
runPair(const ExpConfig &config, UbenchId p, UbenchId s, int prio_p,
        int prio_s)
{
    const SyntheticProgram pp = makeUbench(p, config.ubenchScale);
    const SyntheticProgram ps = makeUbench(s, config.ubenchScale);
    FameResult r = runFame(config.core, &pp, &ps, prio_p, prio_s,
                           config.fame);
    return {r.thread[0].avgIpc(), r.thread[1].avgIpc()};
}

PairResult
runSpecPair(const ExpConfig &config, SpecProxyId p, SpecProxyId s,
            int prio_p, int prio_s)
{
    const SyntheticProgram pp = makeSpecProxy(p, config.ubenchScale);
    const SyntheticProgram ps = makeSpecProxy(s, config.ubenchScale);
    FameResult r = runFame(config.core, &pp, &ps, prio_p, prio_s,
                           config.fame);
    return {r.thread[0].avgIpc(), r.thread[1].avgIpc()};
}

void
addRow(Table &t, const std::string &name, const PairResult &r)
{
    t.addRow({name, Table::fmt(r.ipcP, 3), Table::fmt(r.ipcS, 3),
              Table::fmt(r.total(), 3)});
}

} // namespace

int
main(int argc, char **argv)
{
    ExpConfig base = p5bench::parseConfig(argc, argv);

    {
        Table t("Ablation 1: balancer on/off — h264ref + mcf at (4,4) "
                "(the window-sensitive thread needs GCT protection)");
        t.setColumns({"config", "PThread IPC", "SThread IPC", "total"});
        addRow(t, "balancer on",
               runSpecPair(base, SpecProxyId::H264ref, SpecProxyId::Mcf,
                           4, 4));
        ExpConfig off = base;
        off.core.balancer.enabled = false;
        addRow(t, "balancer off",
               runSpecPair(off, SpecProxyId::H264ref, SpecProxyId::Mcf,
                           4, 4));
        p5bench::print(t);
    }

    {
        Table t("Ablation 2: strict vs work-conserving decode slots — "
                "br_hit + ldint_mem at (4,4) (the decode-hungry thread "
                "could use the memory thread's dead slots)");
        t.setColumns({"config", "PThread IPC", "SThread IPC", "total"});
        addRow(t, "strict slots (POWER5)",
               runPair(base, UbenchId::BrHit, UbenchId::LdintMem, 4,
                       4));
        ExpConfig wc = base;
        wc.core.workConservingSlots = true;
        addRow(t, "work-conserving",
               runPair(wc, UbenchId::BrHit, UbenchId::LdintMem, 4, 4));
        p5bench::print(t);
    }

    {
        Table t("Ablation 3: minority-slot width — cpu_int + cpu_int at "
                "(2,6), PThread is the minority");
        t.setColumns({"config", "PThread IPC", "SThread IPC", "total"});
        for (int width : {1, 2, 5}) {
            ExpConfig cfg = base;
            cfg.core.minoritySlotWidth = width;
            addRow(t, "width " + std::to_string(width),
                   runPair(cfg, UbenchId::CpuInt, UbenchId::CpuInt, 2,
                           6));
        }
        p5bench::print(t);
    }

    {
        Table t("Ablation 4: priority-aware GCT threshold — h264ref + "
                "mcf at (6,2) (prioritization must release the window)");
        t.setColumns({"config", "PThread IPC", "SThread IPC", "total"});
        addRow(t, "priority-aware",
               runSpecPair(base, SpecProxyId::H264ref, SpecProxyId::Mcf,
                           6, 2));
        ExpConfig off = base;
        off.core.balancer.priorityAwareGct = false;
        addRow(t, "fixed threshold",
               runSpecPair(off, SpecProxyId::H264ref, SpecProxyId::Mcf,
                           6, 2));
        p5bench::print(t);
    }

    {
        Table t("Ablation 5: priority-aware table walker — ldint_mem + "
                "ldint_mem at (6,2)");
        t.setColumns({"config", "PThread IPC", "SThread IPC", "total"});
        addRow(t, "priority-aware",
               runPair(base, UbenchId::LdintMem, UbenchId::LdintMem, 6,
                       2));
        ExpConfig off = base;
        off.core.priorityAwareWalker = false;
        addRow(t, "FCFS walker",
               runPair(off, UbenchId::LdintMem, UbenchId::LdintMem, 6,
                       2));
        p5bench::print(t);
    }

    {
        Table t("Ablation 6: LMQ size — ldint_l2 + ldint_l2 at (4,4)");
        t.setColumns({"config", "PThread IPC", "SThread IPC", "total"});
        for (int entries : {2, 4, 8, 16}) {
            ExpConfig cfg = base;
            cfg.core.lmqEntries = entries;
            cfg.core.balancer.lmqThreshold =
                std::min(cfg.core.balancer.lmqThreshold, entries);
            addRow(t, std::to_string(entries) + " entries",
                   runPair(cfg, UbenchId::LdintL2, UbenchId::LdintL2, 4,
                           4));
        }
        p5bench::print(t);
    }

    return 0;
}
