/**
 * @file
 * google-benchmark micro-benchmarks of the simulator itself: raw cycle
 * throughput of the core loop under different workloads, the cost of
 * the primitives (cache lookups, slot grants, program materialization),
 * and end-to-end FAME pair runs with the idle-cycle fast-forward engine
 * on and off.
 *
 * Besides the usual google-benchmark modes, `--p5sim_perf_json=FILE`
 * runs the end-to-end suite once in each engine mode and writes a
 * machine-readable speedup report (committed as BENCH_sim_perf.json and
 * diffed by tools/compare_perf.py in the perf-smoke CI job).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "ckpt/ckpt_io.hh"
#include "ckpt/ckpt_manager.hh"
#include "common/json.hh"
#include "core/chip.hh"
#include "core/smt_core.hh"
#include "driver/driver.hh"
#include "fame/fame.hh"
#include "fame/sim_runner.hh"
#include "mem/cache.hh"
#include "prio/slot_allocator.hh"
#include "sched/alloc_engine.hh"
#include "sched/workload.hh"
#include "ubench/ubench.hh"

namespace {

using namespace p5;

void
BM_CacheLookup(benchmark::State &state)
{
    Cache cache(CacheParams{"bench", 32 * 1024, 4, 128, 2, 1});
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(addr));
        addr += 128;
        if (addr >= 64 * 1024)
            addr = 0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

void
BM_SlotGrant(benchmark::State &state)
{
    DecodeSlotAllocator alloc(5, 2);
    alloc.setPriorities(6, 2);
    Cycle c = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(alloc.grantAt(c++));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlotGrant);

void
BM_Materialize(benchmark::State &state)
{
    const SyntheticProgram prog = makeUbench(UbenchId::CpuInt);
    SeqNum seq = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(prog.materialize(seq++, 0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Materialize);

void
coreCycles(benchmark::State &state, UbenchId p, UbenchId s)
{
    const SyntheticProgram pp = makeUbench(p);
    const SyntheticProgram ps = makeUbench(s);
    CoreParams params;
    SmtCore core(params);
    core.attachThread(0, &pp, 4);
    core.attachThread(1, &ps, 4);
    for (auto _ : state)
        core.tick();
    state.SetItemsProcessed(state.iterations());
    state.counters["ipc"] = core.totalIpc();
}

void
BM_CoreCpuPair(benchmark::State &state)
{
    coreCycles(state, UbenchId::CpuInt, UbenchId::CpuInt);
}
BENCHMARK(BM_CoreCpuPair);

void
BM_CoreMemPair(benchmark::State &state)
{
    coreCycles(state, UbenchId::LdintMem, UbenchId::LdintMem);
}
BENCHMARK(BM_CoreMemPair);

void
BM_CoreMixedPair(benchmark::State &state)
{
    coreCycles(state, UbenchId::LdintL1, UbenchId::LdintL2);
}
BENCHMARK(BM_CoreMixedPair);

/** Shared FAME setup for the end-to-end pair runs. */
FameParams
endToEndFame()
{
    FameParams fame;
    fame.minRepetitions = 5;
    return fame;
}

/**
 * One full FAME convergence run of a benchmark pair — warmup,
 * repetition accounting and all — with the fast-forward engine per
 * @p fast_forward. This is the workload whose wall clock the engine
 * is meant to cut; the paired Fast/Slow benchmarks below make the
 * speedup visible in plain `--benchmark_format=json` output too.
 */
void
famePair(benchmark::State &state, UbenchId p, UbenchId s, int prio_p,
         int prio_s, bool fast_forward)
{
    const SyntheticProgram pp = makeUbench(p);
    const SyntheticProgram ps = makeUbench(s);
    CoreParams core;
    core.fastForward = fast_forward;
    const FameParams fame = endToEndFame();
    std::uint64_t sim_cycles = 0;
    for (auto _ : state) {
        FameResult res = runFame(core, &pp, &ps, prio_p, prio_s, fame);
        sim_cycles = res.totalCycles;
        benchmark::DoNotOptimize(res);
    }
    state.counters["simCycles"] = static_cast<double>(sim_cycles);
}

void
BM_FameMemPairFast(benchmark::State &state)
{
    famePair(state, UbenchId::LdintMem, UbenchId::LdintMem, 4, 4, true);
}
BENCHMARK(BM_FameMemPairFast)->Unit(benchmark::kMillisecond);

void
BM_FameMemPairSlow(benchmark::State &state)
{
    famePair(state, UbenchId::LdintMem, UbenchId::LdintMem, 4, 4, false);
}
BENCHMARK(BM_FameMemPairSlow)->Unit(benchmark::kMillisecond);

void
BM_FameCpuPairFast(benchmark::State &state)
{
    famePair(state, UbenchId::CpuInt, UbenchId::CpuInt, 4, 4, true);
}
BENCHMARK(BM_FameCpuPairFast)->Unit(benchmark::kMillisecond);

void
BM_FameCpuPairSlow(benchmark::State &state)
{
    famePair(state, UbenchId::CpuInt, UbenchId::CpuInt, 4, 4, false);
}
BENCHMARK(BM_FameCpuPairSlow)->Unit(benchmark::kMillisecond);

/**
 * End-to-end chip run: 8 ldint_mem threads pinned on a 4-core chip
 * through the allocation engine, with chip-level fast-forward per
 * @p fast_forward. A chip skip needs every core idle at once, so this
 * pair makes the multi-core engine cost visible alongside the
 * single-core Fame pairs above (and mirrors the chip case in the
 * `p5sim perf` speedup report).
 */
void
chipAlloc(benchmark::State &state, bool fast_forward)
{
    const Workload workload = Workload::fromMix(
        "ldint_mem,ldint_mem,ldint_mem,ldint_mem,"
        "ldint_mem,ldint_mem,ldint_mem,ldint_mem");
    ChipParams params;
    params.numCores = 4;
    params.core.fastForward = fast_forward;
    double ipc = 0;
    for (auto _ : state) {
        Chip chip(params);
        AllocEngine engine(chip, workload, SchedParams{}, 1);
        AllocRunResult res = engine.run(300000);
        ipc = res.aggregateIpc;
        benchmark::DoNotOptimize(res);
    }
    state.counters["aggregateIpc"] = ipc;
}

void
BM_ChipAllocPinnedFast(benchmark::State &state)
{
    chipAlloc(state, true);
}
BENCHMARK(BM_ChipAllocPinnedFast)->Unit(benchmark::kMillisecond);

void
BM_ChipAllocPinnedSlow(benchmark::State &state)
{
    chipAlloc(state, false);
}
BENCHMARK(BM_ChipAllocPinnedSlow)->Unit(benchmark::kMillisecond);

/**
 * Checkpoint primitives: the cost of snapshotting a warmed core into
 * a byte stream and of rebuilding a fresh core from that stream.
 * Restore is the per-fork overhead every checkpointed priority point
 * pays instead of re-simulating the warm-up, so its wall clock (a few
 * ms for the ~2.6 MB ldint_mem image) against BM_FameMemPairFast's
 * warm phase is the whole economics of the fork engine.
 */
void
BM_CkptSaveState(benchmark::State &state)
{
    const SyntheticProgram pp = makeUbench(UbenchId::LdintMem);
    const SyntheticProgram ps = makeUbench(UbenchId::LdintMem);
    CoreParams params;
    params.fastForward = true;
    SmtCore core(params);
    core.attachThread(0, &pp, canonical_warm_priority);
    core.attachThread(1, &ps, canonical_warm_priority);
    FameRunner runner(endToEndFame());
    runner.runWarmup(core);
    std::size_t bytes = 0;
    for (auto _ : state) {
        CkptWriter w;
        core.saveState(w);
        bytes = w.data().size();
        benchmark::DoNotOptimize(w);
    }
    state.counters["stateBytes"] = static_cast<double>(bytes);
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CkptSaveState)->Unit(benchmark::kMillisecond);

void
BM_CkptRestoreState(benchmark::State &state)
{
    const SyntheticProgram pp = makeUbench(UbenchId::LdintMem);
    const SyntheticProgram ps = makeUbench(UbenchId::LdintMem);
    CoreParams params;
    params.fastForward = true;
    SmtCore warm_core(params);
    warm_core.attachThread(0, &pp, canonical_warm_priority);
    warm_core.attachThread(1, &ps, canonical_warm_priority);
    FameRunner runner(endToEndFame());
    runner.runWarmup(warm_core);
    CkptWriter w;
    warm_core.saveState(w);
    const std::vector<std::uint8_t> image = w.data();
    for (auto _ : state) {
        SmtCore core(params);
        core.attachThread(0, &pp, canonical_warm_priority);
        core.attachThread(1, &ps, canonical_warm_priority);
        CkptReader r(image);
        core.restoreState(r);
        r.expectEnd();
        benchmark::DoNotOptimize(core);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_CkptRestoreState)->Unit(benchmark::kMillisecond);

/**
 * The forked twin of BM_FameMemPairFast at a skewed pair: a warm
 * image is created once outside the timed loop, so each iteration is
 * restore + measure — what every priority point after the first costs
 * under `--checkpoint-dir` (compare against BM_FameMemPairFast, whose
 * every iteration re-simulates the warm-up).
 */
void
BM_FameMemPairForked(benchmark::State &state)
{
    const SyntheticProgram pp = makeUbench(UbenchId::LdintMem);
    const SyntheticProgram ps = makeUbench(UbenchId::LdintMem);
    CoreParams core;
    core.fastForward = true;
    const FameParams fame = endToEndFame();
    CkptManager ckpts;
    const char *key = "bench:ckpt:ldint_mem+ldint_mem";
    runFame(core, &pp, &ps, 4, 4, fame, &ckpts, key); // warms once
    std::uint64_t sim_cycles = 0;
    for (auto _ : state) {
        FameResult res = runFame(core, &pp, &ps, 6, 2, fame, &ckpts,
                                 key);
        sim_cycles = res.totalCycles;
        benchmark::DoNotOptimize(res);
    }
    state.counters["simCycles"] = static_cast<double>(sim_cycles);
    state.counters["forks"] = static_cast<double>(ckpts.memForks());
}
BENCHMARK(BM_FameMemPairForked)->Unit(benchmark::kMillisecond);

/**
 * Parallel-runner scaling: a fixed batch of 8 distinct fast FAME jobs
 * executed with jobs=1,2,4,8 workers. A fresh private cache per
 * iteration forces every job to actually simulate, so the reported
 * time tracks runner speedup (and regressions) on the host.
 */
void
BM_RunnerScaling(benchmark::State &state)
{
    const unsigned workers = static_cast<unsigned>(state.range(0));

    FameParams fame;
    fame.minRepetitions = 3;
    fame.warmupRepetitions = 1;
    fame.maiv = 0.05;
    fame.warmupTolerance = 0.25;
    CoreParams core;

    const UbenchId partners[4] = {UbenchId::CpuInt, UbenchId::LdintL1,
                                  UbenchId::LdintL2, UbenchId::CpuFp};
    std::vector<SimJob> batch;
    for (int prio = 3; prio <= 4; ++prio)
        for (UbenchId partner : partners)
            batch.push_back(SimJob::famePair(
                ProgramSpec::ubench(UbenchId::CpuInt, 0.5),
                ProgramSpec::ubench(partner, 0.5), prio,
                default_priority, core, fame));

    for (auto _ : state) {
        ResultCache cache;
        SimRunner runner(workers, &cache);
        auto results = runner.run(batch);
        benchmark::DoNotOptimize(results);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(batch.size()));
    state.counters["workers"] = workers;
}
BENCHMARK(BM_RunnerScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    // The speedup report and the per-stage profile moved into the
    // driver (`p5sim perf`); the legacy flags keep working here by
    // delegating to the shared implementations.
    constexpr const char *json_flag = "--p5sim_perf_json=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], json_flag, std::strlen(json_flag)) == 0)
            return p5::writePerfReport(argv[i] + std::strlen(json_flag),
                                       std::cerr);
        if (std::strcmp(argv[i], "--p5sim_profile_stages") == 0)
            return p5::profileStages(std::cout);
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
