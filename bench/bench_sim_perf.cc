/**
 * @file
 * google-benchmark micro-benchmarks of the simulator itself: raw cycle
 * throughput of the core loop under different workloads, and the cost of
 * the primitives (cache lookups, slot grants, program materialization).
 */

#include <benchmark/benchmark.h>

#include "core/smt_core.hh"
#include "mem/cache.hh"
#include "prio/slot_allocator.hh"
#include "ubench/ubench.hh"

namespace {

using namespace p5;

void
BM_CacheLookup(benchmark::State &state)
{
    Cache cache(CacheParams{"bench", 32 * 1024, 4, 128, 2, 1});
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(addr));
        addr += 128;
        if (addr >= 64 * 1024)
            addr = 0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

void
BM_SlotGrant(benchmark::State &state)
{
    DecodeSlotAllocator alloc(5, 2);
    alloc.setPriorities(6, 2);
    Cycle c = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(alloc.grantAt(c++));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlotGrant);

void
BM_Materialize(benchmark::State &state)
{
    const SyntheticProgram prog = makeUbench(UbenchId::CpuInt);
    SeqNum seq = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(prog.materialize(seq++, 0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Materialize);

void
coreCycles(benchmark::State &state, UbenchId p, UbenchId s)
{
    const SyntheticProgram pp = makeUbench(p);
    const SyntheticProgram ps = makeUbench(s);
    CoreParams params;
    SmtCore core(params);
    core.attachThread(0, &pp, 4);
    core.attachThread(1, &ps, 4);
    for (auto _ : state)
        core.tick();
    state.SetItemsProcessed(state.iterations());
    state.counters["ipc"] = core.totalIpc();
}

void
BM_CoreCpuPair(benchmark::State &state)
{
    coreCycles(state, UbenchId::CpuInt, UbenchId::CpuInt);
}
BENCHMARK(BM_CoreCpuPair);

void
BM_CoreMemPair(benchmark::State &state)
{
    coreCycles(state, UbenchId::LdintMem, UbenchId::LdintMem);
}
BENCHMARK(BM_CoreMemPair);

void
BM_CoreMixedPair(benchmark::State &state)
{
    coreCycles(state, UbenchId::LdintL1, UbenchId::LdintL2);
}
BENCHMARK(BM_CoreMixedPair);

} // namespace

BENCHMARK_MAIN();
