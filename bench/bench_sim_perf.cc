/**
 * @file
 * google-benchmark micro-benchmarks of the simulator itself: raw cycle
 * throughput of the core loop under different workloads, the cost of
 * the primitives (cache lookups, slot grants, program materialization),
 * and end-to-end FAME pair runs with the idle-cycle fast-forward engine
 * on and off.
 *
 * Besides the usual google-benchmark modes, `--p5sim_perf_json=FILE`
 * runs the end-to-end suite once in each engine mode and writes a
 * machine-readable speedup report (committed as BENCH_sim_perf.json and
 * diffed by tools/compare_perf.py in the perf-smoke CI job).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/json.hh"
#include "core/smt_core.hh"
#include "fame/fame.hh"
#include "fame/sim_runner.hh"
#include "mem/cache.hh"
#include "prio/slot_allocator.hh"
#include "ubench/ubench.hh"

namespace {

using namespace p5;

void
BM_CacheLookup(benchmark::State &state)
{
    Cache cache(CacheParams{"bench", 32 * 1024, 4, 128, 2, 1});
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookup(addr));
        addr += 128;
        if (addr >= 64 * 1024)
            addr = 0;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheLookup);

void
BM_SlotGrant(benchmark::State &state)
{
    DecodeSlotAllocator alloc(5, 2);
    alloc.setPriorities(6, 2);
    Cycle c = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(alloc.grantAt(c++));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlotGrant);

void
BM_Materialize(benchmark::State &state)
{
    const SyntheticProgram prog = makeUbench(UbenchId::CpuInt);
    SeqNum seq = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(prog.materialize(seq++, 0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Materialize);

void
coreCycles(benchmark::State &state, UbenchId p, UbenchId s)
{
    const SyntheticProgram pp = makeUbench(p);
    const SyntheticProgram ps = makeUbench(s);
    CoreParams params;
    SmtCore core(params);
    core.attachThread(0, &pp, 4);
    core.attachThread(1, &ps, 4);
    for (auto _ : state)
        core.tick();
    state.SetItemsProcessed(state.iterations());
    state.counters["ipc"] = core.totalIpc();
}

void
BM_CoreCpuPair(benchmark::State &state)
{
    coreCycles(state, UbenchId::CpuInt, UbenchId::CpuInt);
}
BENCHMARK(BM_CoreCpuPair);

void
BM_CoreMemPair(benchmark::State &state)
{
    coreCycles(state, UbenchId::LdintMem, UbenchId::LdintMem);
}
BENCHMARK(BM_CoreMemPair);

void
BM_CoreMixedPair(benchmark::State &state)
{
    coreCycles(state, UbenchId::LdintL1, UbenchId::LdintL2);
}
BENCHMARK(BM_CoreMixedPair);

/** Shared FAME setup for the end-to-end pair runs. */
FameParams
endToEndFame()
{
    FameParams fame;
    fame.minRepetitions = 5;
    return fame;
}

/**
 * One full FAME convergence run of a benchmark pair — warmup,
 * repetition accounting and all — with the fast-forward engine per
 * @p fast_forward. This is the workload whose wall clock the engine
 * is meant to cut; the paired Fast/Slow benchmarks below make the
 * speedup visible in plain `--benchmark_format=json` output too.
 */
void
famePair(benchmark::State &state, UbenchId p, UbenchId s, int prio_p,
         int prio_s, bool fast_forward)
{
    const SyntheticProgram pp = makeUbench(p);
    const SyntheticProgram ps = makeUbench(s);
    CoreParams core;
    core.fastForward = fast_forward;
    const FameParams fame = endToEndFame();
    std::uint64_t sim_cycles = 0;
    for (auto _ : state) {
        FameResult res = runFame(core, &pp, &ps, prio_p, prio_s, fame);
        sim_cycles = res.totalCycles;
        benchmark::DoNotOptimize(res);
    }
    state.counters["simCycles"] = static_cast<double>(sim_cycles);
}

void
BM_FameMemPairFast(benchmark::State &state)
{
    famePair(state, UbenchId::LdintMem, UbenchId::LdintMem, 4, 4, true);
}
BENCHMARK(BM_FameMemPairFast)->Unit(benchmark::kMillisecond);

void
BM_FameMemPairSlow(benchmark::State &state)
{
    famePair(state, UbenchId::LdintMem, UbenchId::LdintMem, 4, 4, false);
}
BENCHMARK(BM_FameMemPairSlow)->Unit(benchmark::kMillisecond);

void
BM_FameCpuPairFast(benchmark::State &state)
{
    famePair(state, UbenchId::CpuInt, UbenchId::CpuInt, 4, 4, true);
}
BENCHMARK(BM_FameCpuPairFast)->Unit(benchmark::kMillisecond);

void
BM_FameCpuPairSlow(benchmark::State &state)
{
    famePair(state, UbenchId::CpuInt, UbenchId::CpuInt, 4, 4, false);
}
BENCHMARK(BM_FameCpuPairSlow)->Unit(benchmark::kMillisecond);

/**
 * Parallel-runner scaling: a fixed batch of 8 distinct fast FAME jobs
 * executed with jobs=1,2,4,8 workers. A fresh private cache per
 * iteration forces every job to actually simulate, so the reported
 * time tracks runner speedup (and regressions) on the host.
 */
void
BM_RunnerScaling(benchmark::State &state)
{
    const unsigned workers = static_cast<unsigned>(state.range(0));

    FameParams fame;
    fame.minRepetitions = 3;
    fame.warmupRepetitions = 1;
    fame.maiv = 0.05;
    fame.warmupTolerance = 0.25;
    CoreParams core;

    const UbenchId partners[4] = {UbenchId::CpuInt, UbenchId::LdintL1,
                                  UbenchId::LdintL2, UbenchId::CpuFp};
    std::vector<SimJob> batch;
    for (int prio = 3; prio <= 4; ++prio)
        for (UbenchId partner : partners)
            batch.push_back(SimJob::famePair(
                ProgramSpec::ubench(UbenchId::CpuInt, 0.5),
                ProgramSpec::ubench(partner, 0.5), prio,
                default_priority, core, fame));

    for (auto _ : state) {
        ResultCache cache;
        SimRunner runner(workers, &cache);
        auto results = runner.run(batch);
        benchmark::DoNotOptimize(results);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(batch.size()));
    state.counters["workers"] = workers;
}
BENCHMARK(BM_RunnerScaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- --p5sim_perf_json report mode ------------------------------------

/** One end-to-end case in the speedup report. */
struct PerfCase
{
    const char *name;
    UbenchId primary;
    UbenchId secondary;
    int prioP;
    int prioS;
};

/**
 * The report suite. ldint_mem+ldint_mem (4,4) is the headline case
 * (the acceptance floor is a 3x end-to-end speedup there); the
 * compute-bound and mixed pairs — balanced and priority-skewed — pin
 * the "no overhead when there is nothing to skip" end of the spectrum.
 */
constexpr PerfCase report_cases[] = {
    {"ldint_mem+ldint_mem@4,4", UbenchId::LdintMem, UbenchId::LdintMem,
     4, 4},
    {"ldint_mem+ldint_mem@6,2", UbenchId::LdintMem, UbenchId::LdintMem,
     6, 2},
    {"ldint_mem+cpu_int@4,4", UbenchId::LdintMem, UbenchId::CpuInt, 4,
     4},
    {"ldint_mem+cpu_int@2,6", UbenchId::LdintMem, UbenchId::CpuInt, 2,
     6},
    {"cpu_int+cpu_int@4,4", UbenchId::CpuInt, UbenchId::CpuInt, 4, 4},
    {"cpu_int+cpu_int@6,2", UbenchId::CpuInt, UbenchId::CpuInt, 6, 2},
};

struct TimedRun
{
    double wallMs = 0;
    FameResult result;
};

TimedRun
timedFameRun(const PerfCase &c, bool fast_forward)
{
    const SyntheticProgram pp = makeUbench(c.primary);
    const SyntheticProgram ps = makeUbench(c.secondary);
    CoreParams core;
    core.fastForward = fast_forward;
    const FameParams fame = endToEndFame();

    TimedRun run;
    const auto t0 = std::chrono::steady_clock::now();
    run.result = runFame(core, &pp, &ps, c.prioP, c.prioS, fame);
    const auto t1 = std::chrono::steady_clock::now();
    run.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return run;
}

/**
 * Best-of-N timing for one case and mode. Repetitions of the two modes
 * are interleaved with alternating order (turbo/thermal effects favor
 * whichever mode runs first in a back-to-back pair) and the minimum
 * wall time per mode is kept: host-side drift inflates individual runs
 * but never deflates them, so min over order-balanced repetitions is
 * the bias-resistant estimator of the true per-mode cost.
 */
constexpr int report_reps = 4;

bool
sameMeasurement(const FameResult &a, const FameResult &b)
{
    if (a.totalCycles != b.totalCycles || a.converged != b.converged ||
        a.hitCycleLimit != b.hitCycleLimit)
        return false;
    for (size_t t = 0; t < num_hw_threads; ++t) {
        if (a.thread[t].present != b.thread[t].present ||
            a.thread[t].executions != b.thread[t].executions ||
            a.thread[t].accountedCycles != b.thread[t].accountedCycles ||
            a.thread[t].accountedInstrs != b.thread[t].accountedInstrs)
            return false;
    }
    return true;
}

/**
 * Run the end-to-end suite once per engine mode and write the speedup
 * report. Returns a process exit code: nonzero when any case's stats
 * deviate between modes, so the CI job fails on a correctness breach
 * even before the tolerance diff runs.
 */
int
writePerfReport(const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::cerr << "bench_sim_perf: cannot open '" << path << "'\n";
        return 1;
    }

    bool all_identical = true;
    JsonWriter w(os);
    w.beginObject();
    w.member("experiment", "bench_sim_perf");
    w.key("cases");
    w.beginArray();
    for (const PerfCase &c : report_cases) {
        // Warm one fast run so first-touch costs (program build, page
        // sets) don't pollute the slow/fast ratio, then measure the
        // two modes interleaved and keep each mode's best repetition.
        timedFameRun(c, true);
        TimedRun fast, slow;
        bool identical = true;
        for (int rep = 0; rep < report_reps; ++rep) {
            const bool slow_first = (rep % 2) == 0;
            TimedRun s, f;
            if (slow_first) {
                s = timedFameRun(c, false);
                f = timedFameRun(c, true);
            } else {
                f = timedFameRun(c, true);
                s = timedFameRun(c, false);
            }
            identical =
                identical && sameMeasurement(f.result, s.result);
            if (rep == 0 || s.wallMs < slow.wallMs)
                slow = s;
            if (rep == 0 || f.wallMs < fast.wallMs)
                fast = f;
        }
        all_identical = all_identical && identical;

        w.beginObject();
        w.member("name", c.name);
        w.member("simCyclesFast",
                 static_cast<std::uint64_t>(fast.result.totalCycles));
        w.member("simCyclesSlow",
                 static_cast<std::uint64_t>(slow.result.totalCycles));
        w.member("ipcTotal", fast.result.totalIpc());
        w.member("wallMsFast", fast.wallMs);
        w.member("wallMsSlow", slow.wallMs);
        w.member("speedup", slow.wallMs / fast.wallMs);
        w.member("identicalStats", identical);
        w.endObject();

        std::cerr << c.name << ": " << slow.wallMs << " ms -> "
                  << fast.wallMs << " ms ("
                  << slow.wallMs / fast.wallMs << "x)"
                  << (identical ? "" : "  STATS DEVIATE") << '\n';
    }
    w.endArray();
    w.endObject();
    os << '\n';

    if (!all_identical) {
        std::cerr << "bench_sim_perf: fast-forward stats deviated\n";
        return 1;
    }
    return 0;
}

// --- --p5sim_profile_stages mode --------------------------------------

/**
 * Per-stage wall-time breakdown: run every report case for a fixed
 * cycle budget with a StageProfile attached and print where the wall
 * clock goes (completions / issue / commit / decode / probe), plus the
 * adaptive-probe counters. This is the first tool to reach for when an
 * end-to-end speedup in the JSON report regresses: it attributes the
 * loss to a stage instead of a whole run.
 */
int
profileStages()
{
    constexpr Cycle profile_cycles = 500000;
    std::printf("%-26s %10s %10s %10s %10s %10s  %9s %9s %9s\n", "case",
                "complet ms", "issue ms", "commit ms", "decode ms",
                "probe ms", "ticks", "probes", "skipped");
    for (const PerfCase &c : report_cases) {
        const SyntheticProgram pp = makeUbench(c.primary);
        const SyntheticProgram ps = makeUbench(c.secondary);
        CoreParams params;
        SmtCore core(params);
        SmtCore::StageProfile prof;
        core.setStageProfile(&prof);
        core.attachThread(0, &pp, c.prioP);
        core.attachThread(1, &ps, c.prioS);
        core.run(profile_cycles);
        const auto ms = [](std::uint64_t ns) { return ns / 1e6; };
        std::printf("%-26s %10.3f %10.3f %10.3f %10.3f %10.3f  %9llu "
                    "%9llu %9llu\n",
                    c.name, ms(prof.completionsNs), ms(prof.issueNs),
                    ms(prof.commitNs), ms(prof.decodeNs),
                    ms(prof.probeNs),
                    static_cast<unsigned long long>(prof.timedTicks),
                    static_cast<unsigned long long>(
                        core.fastForwardProbes()),
                    static_cast<unsigned long long>(
                        core.idleCyclesSkipped()));
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    constexpr const char *json_flag = "--p5sim_perf_json=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], json_flag, std::strlen(json_flag)) == 0)
            return writePerfReport(argv[i] + std::strlen(json_flag));
        if (std::strcmp(argv[i], "--p5sim_profile_stages") == 0)
            return profileStages();
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
