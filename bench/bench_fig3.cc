/**
 * @file
 * Regenerates paper Figure 3: PThread performance degradation as its
 * priority decreases relative to the SThread (differences -1..-5).
 */

#include "bench_common.hh"
#include "exp/report.hh"

int
main(int argc, char **argv)
{
    p5::ExpConfig config = p5bench::parseConfig(argc, argv);
    p5bench::print(
        p5::renderPrioCurves(p5::runFig3(config), "Figure 3"));
    return 0;
}
