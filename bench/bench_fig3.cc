/**
 * @file
 * Regenerates paper Figure 3: PThread performance degradation as its
 * priority decreases relative to the SThread (differences -1..-5).
 */

#include "bench_common.hh"
#include "exp/report.hh"

int
main(int argc, char **argv)
{
    p5::ExpConfig config = p5bench::parseConfig(argc, argv);
    p5::PrioCurveData data = p5::runFig3(config);
    p5bench::print(p5::renderPrioCurves(data, "Figure 3"));
    p5bench::maybeWriteJson("fig3", config, data);
    return 0;
}
