/**
 * @file
 * Regenerates paper Figure 5: total IPC of the SPEC case-study pairs
 * (h264ref + mcf, applu + equake) with increasing priorities.
 */

#include "bench_common.hh"
#include "exp/report.hh"

int
main(int argc, char **argv)
{
    p5::ExpConfig config = p5bench::parseConfig(argc, argv);
    p5bench::print(p5::renderFig5(p5::runFig5(
        p5::SpecProxyId::H264ref, p5::SpecProxyId::Mcf, config)));
    p5bench::print(p5::renderFig5(p5::runFig5(
        p5::SpecProxyId::Applu, p5::SpecProxyId::Equake, config)));
    return 0;
}
