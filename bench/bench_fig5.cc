/**
 * @file
 * Regenerates paper Figure 5: total IPC of the SPEC case-study pairs
 * (h264ref + mcf, applu + equake) with increasing priorities.
 */

#include "bench_common.hh"
#include "exp/report.hh"

int
main(int argc, char **argv)
{
    p5::ExpConfig config = p5bench::parseConfig(argc, argv);
    p5::CaseStudyData a = p5::runFig5(p5::SpecProxyId::H264ref,
                                      p5::SpecProxyId::Mcf, config);
    p5::CaseStudyData b = p5::runFig5(p5::SpecProxyId::Applu,
                                      p5::SpecProxyId::Equake, config);
    p5bench::print(p5::renderFig5(a));
    p5bench::print(p5::renderFig5(b));
    p5bench::maybeWriteJsonWith("fig5", config, [&](p5::JsonWriter &w) {
        w.beginArray();
        p5::writeJson(w, a);
        p5::writeJson(w, b);
        w.endArray();
    });
    return 0;
}
