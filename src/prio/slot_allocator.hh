/**
 * @file
 * Decode-slot allocation from software-controlled priorities.
 *
 * The paper's formula (Sec. 3.2):
 *
 *     R = 2^(|PrioP - PrioS| + 1)
 *
 * Out of every R consecutive decode cycles the higher-priority thread
 * receives R-1 and the lower-priority thread receives the remaining one.
 * Equal priorities alternate (R = 2). Special cases:
 *
 *  - priority 0: the thread is shut off;
 *  - priority 7: the thread runs in single-thread mode (sibling off);
 *  - both threads at priority 1: low-power mode, one instruction decoded
 *    every 32 cycles in total.
 */

#ifndef P5SIM_PRIO_SLOT_ALLOCATOR_HH
#define P5SIM_PRIO_SLOT_ALLOCATOR_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "prio/priority.hh"

namespace p5 {

/** Operating mode implied by the (PrioP, PrioS) pair. */
enum class SlotMode
{
    Dual,     ///< both threads decode, R-1:1 split
    SingleP,  ///< only the primary thread decodes (ST mode)
    SingleS,  ///< only the secondary thread decodes (ST mode)
    LowPower, ///< both at priority 1: 1 instruction per 32 cycles
    AllOff    ///< both threads shut off
};

/** Name of a slot mode. */
const char *slotModeName(SlotMode mode);

/** Decode grant for one cycle. */
struct SlotGrant
{
    /** Thread that owns the decode stage this cycle, or -1 for none. */
    ThreadId owner = -1;

    /** Maximum instructions decodable this cycle (low-power mode: 1). */
    int maxWidth = 0;
};

/**
 * Maps cycle numbers to decode-slot owners for a priority pair.
 *
 * Deterministic and stateless per cycle: the owner of cycle c is a pure
 * function of (PrioP, PrioS, c), so tests can verify exact R-1:1 patterns.
 */
class DecodeSlotAllocator
{
  public:
    /**
     * @param decode_width full decode width granted in normal slots.
     * @param minority_width width of the single slot granted to the
     *        *lower*-priority thread of an unequal pair. On real
     *        POWER5 the starved thread's slots deliver only ~2 IOPs
     *        (fetch-buffer and group-formation effects); calibrated to
     *        the paper's Fig. 3 slowdowns. Defaults to decode_width
     *        (no penalty) when <= 0 is passed.
     */
    explicit DecodeSlotAllocator(int decode_width = 5,
                                 int minority_width = -1);

    /** Set both priorities; fatal on invalid levels. */
    void setPriorities(int prio_p, int prio_s);

    void setPriority(ThreadId tid, int prio);

    int priorityOf(ThreadId tid) const;

    /** The R of the formula for the current pair (Dual mode only). */
    int slotWindow() const;

    /** Mode implied by the current pair. */
    SlotMode mode() const { return mode_; }

    /** True iff @p tid may decode at all under the current pair. */
    bool threadActive(ThreadId tid) const;

    /** Decode grant for cycle @p cycle. */
    SlotGrant grantAt(Cycle cycle) const;

    /**
     * The grant pattern is periodic in the cycle number with this
     * period under *every* mode: in Dual mode the window R = 2^(|d|+1)
     * is a power of two <= 64, and low-power mode repeats every 64
     * cycles (one slot per 32, alternating owner). All the window
     * arithmetic below exploits this — grantAt(c) == grantAt(c % 64 +
     * k*64) — which is what makes bulk slot accounting across skipped
     * idle gaps exact.
     */
    static constexpr Cycle grant_period = 64;

    /**
     * Earliest cycle strictly after @p after whose slot @p tid owns,
     * or never_cycle when it never will under the current pair.
     */
    Cycle nextGrantCycle(Cycle after, ThreadId tid) const;

    /**
     * Earliest cycle strictly after @p after whose slot anyone owns,
     * or never_cycle (AllOff).
     */
    Cycle nextAnyGrantCycle(Cycle after) const;

    /**
     * Number of slots in [@p begin, @p end) owned by each thread under
     * the current pair. O(grant_period), independent of the range
     * length.
     */
    std::array<std::uint64_t, num_hw_threads>
    ownedSlotsInRange(Cycle begin, Cycle end) const;

    /** The R of the formula for an arbitrary pair (pure helper). */
    static int computeR(int prio_p, int prio_s);

    /**
     * Fraction of decode slots owned by the primary thread under the
     * current pair (e.g. 31/32 at +4); used by tests and docs.
     */
    double primaryShare() const;

    /** Fraction of decode slots owned by @p tid. */
    double
    shareOf(ThreadId tid) const
    {
        return tid == 0 ? primaryShare() : 1.0 - primaryShare();
    }

  private:
    void recompute();

    int decodeWidth_;
    int minorityWidth_;
    int prioP_ = default_priority;
    int prioS_ = default_priority;
    SlotMode mode_ = SlotMode::Dual;
    int window_ = 2;
};

} // namespace p5

#endif // P5SIM_PRIO_SLOT_ALLOCATOR_HH
