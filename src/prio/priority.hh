/**
 * @file
 * POWER5 software-controlled thread priorities (paper Table 1).
 *
 * Eight levels, 0..7. User code may set 2..4, supervisor code 1..6, the
 * hypervisor anything. Levels are requested either through a direct call
 * (the OS path) or by executing an "or X,X,X" nop whose register number X
 * encodes the level; with insufficient privilege the or-nop is simply a
 * nop, exactly as on real hardware.
 */

#ifndef P5SIM_PRIO_PRIORITY_HH
#define P5SIM_PRIO_PRIORITY_HH

#include <string>

namespace p5 {

/** Privilege level of the software requesting a priority change. */
enum class PrivilegeLevel { User, Supervisor, Hypervisor };

/** Lowest and highest priority values. */
constexpr int min_priority = 0;
constexpr int max_priority = 7;

/** The default priority (MEDIUM) the kernel resets threads to. */
constexpr int default_priority = 4;

/** True iff @p prio is one of the eight architected levels. */
constexpr bool
isValidPriority(int prio)
{
    return prio >= min_priority && prio <= max_priority;
}

/** Human-readable level name, e.g. "Medium-high" (Table 1). */
const char *priorityName(int prio);

/** Name of a privilege level. */
const char *privilegeName(PrivilegeLevel priv);

/**
 * May software at privilege @p priv set priority @p prio?
 *
 * User: 2..4. Supervisor: 1..6. Hypervisor: 0..7. (Table 1.)
 */
bool canSetPriority(PrivilegeLevel priv, int prio);

/**
 * The register number X of the "or X,X,X" nop that requests @p prio,
 * or -1 if the level has no or-nop encoding (priority 0 is set through
 * a hypervisor call only).
 */
int orNopRegister(int prio);

/**
 * The priority level requested by "or X,X,X" with register @p reg,
 * or -1 if @p reg is not a priority-setting encoding.
 */
int priorityFromOrNop(int reg);

/** "or X,X,X" textual form for documentation output, e.g. "or 31,31,31". */
std::string orNopMnemonic(int prio);

} // namespace p5

#endif // P5SIM_PRIO_PRIORITY_HH
