#include "prio/priority.hh"

#include "common/log.hh"

namespace p5 {

namespace {

// Table 1: priority level -> or-nop register number. Priority 0 has no
// or-nop form (hypervisor call only).
constexpr int or_nop_regs[8] = {-1, 31, 1, 6, 2, 5, 3, 7};

} // namespace

const char *
priorityName(int prio)
{
    switch (prio) {
      case 0:
        return "Thread shut off";
      case 1:
        return "Very low";
      case 2:
        return "Low";
      case 3:
        return "Medium-Low";
      case 4:
        return "Medium";
      case 5:
        return "Medium-high";
      case 6:
        return "High";
      case 7:
        return "Very high";
      default:
        panic("priorityName: bad priority %d", prio);
    }
}

const char *
privilegeName(PrivilegeLevel priv)
{
    switch (priv) {
      case PrivilegeLevel::User:
        return "User";
      case PrivilegeLevel::Supervisor:
        return "Supervisor";
      case PrivilegeLevel::Hypervisor:
        return "Hypervisor";
      default:
        panic("privilegeName: bad privilege %d", static_cast<int>(priv));
    }
}

bool
canSetPriority(PrivilegeLevel priv, int prio)
{
    if (!isValidPriority(prio))
        return false;
    switch (priv) {
      case PrivilegeLevel::User:
        return prio >= 2 && prio <= 4;
      case PrivilegeLevel::Supervisor:
        return prio >= 1 && prio <= 6;
      case PrivilegeLevel::Hypervisor:
        return true;
      default:
        panic("canSetPriority: bad privilege %d", static_cast<int>(priv));
    }
}

int
orNopRegister(int prio)
{
    if (!isValidPriority(prio))
        panic("orNopRegister: bad priority %d", prio);
    return or_nop_regs[prio];
}

int
priorityFromOrNop(int reg)
{
    for (int prio = 0; prio <= max_priority; ++prio)
        if (or_nop_regs[prio] == reg)
            return prio;
    return -1;
}

std::string
orNopMnemonic(int prio)
{
    int reg = orNopRegister(prio);
    if (reg < 0)
        return "-";
    std::string r = std::to_string(reg);
    return "or " + r + "," + r + "," + r;
}

} // namespace p5
