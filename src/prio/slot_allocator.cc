#include "prio/slot_allocator.hh"

#include <cmath>
#include <cstdlib>

#include "common/log.hh"

namespace p5 {

const char *
slotModeName(SlotMode mode)
{
    switch (mode) {
      case SlotMode::Dual:
        return "Dual";
      case SlotMode::SingleP:
        return "SingleP";
      case SlotMode::SingleS:
        return "SingleS";
      case SlotMode::LowPower:
        return "LowPower";
      case SlotMode::AllOff:
        return "AllOff";
      default:
        panic("slotModeName: bad mode %d", static_cast<int>(mode));
    }
}

DecodeSlotAllocator::DecodeSlotAllocator(int decode_width,
                                         int minority_width)
    : decodeWidth_(decode_width),
      minorityWidth_(minority_width > 0 ? minority_width : decode_width)
{
    if (decode_width <= 0)
        fatal("decode width must be positive");
    recompute();
}

void
DecodeSlotAllocator::setPriorities(int prio_p, int prio_s)
{
    if (!isValidPriority(prio_p) || !isValidPriority(prio_s))
        fatal("invalid priority pair (%d,%d)", prio_p, prio_s);
    prioP_ = prio_p;
    prioS_ = prio_s;
    recompute();
}

void
DecodeSlotAllocator::setPriority(ThreadId tid, int prio)
{
    if (tid == 0)
        setPriorities(prio, prioS_);
    else if (tid == 1)
        setPriorities(prioP_, prio);
    else
        panic("setPriority: bad thread id %d", tid);
}

int
DecodeSlotAllocator::priorityOf(ThreadId tid) const
{
    if (tid == 0)
        return prioP_;
    if (tid == 1)
        return prioS_;
    panic("priorityOf: bad thread id %d", tid);
}

int
DecodeSlotAllocator::computeR(int prio_p, int prio_s)
{
    int diff = std::abs(prio_p - prio_s);
    return 1 << (diff + 1);
}

void
DecodeSlotAllocator::recompute()
{
    if (prioP_ == 0 && prioS_ == 0) {
        mode_ = SlotMode::AllOff;
        window_ = 0;
        return;
    }
    // Priority 7 means "run in single-thread mode" (sibling off); the
    // same happens when the sibling is shut off with priority 0.
    if (prioP_ == 7 || prioS_ == 0) {
        mode_ = SlotMode::SingleP;
        window_ = 1;
        return;
    }
    if (prioS_ == 7 || prioP_ == 0) {
        mode_ = SlotMode::SingleS;
        window_ = 1;
        return;
    }
    if (prioP_ == 1 && prioS_ == 1) {
        mode_ = SlotMode::LowPower;
        window_ = 32;
        return;
    }
    mode_ = SlotMode::Dual;
    window_ = computeR(prioP_, prioS_);
}

int
DecodeSlotAllocator::slotWindow() const
{
    return window_;
}

bool
DecodeSlotAllocator::threadActive(ThreadId tid) const
{
    switch (mode_) {
      case SlotMode::Dual:
      case SlotMode::LowPower:
        return tid == 0 || tid == 1;
      case SlotMode::SingleP:
        return tid == 0;
      case SlotMode::SingleS:
        return tid == 1;
      case SlotMode::AllOff:
        return false;
      default:
        panic("threadActive: bad mode %d", static_cast<int>(mode_));
    }
}

SlotGrant
DecodeSlotAllocator::grantAt(Cycle cycle) const
{
    SlotGrant g;
    switch (mode_) {
      case SlotMode::AllOff:
        return g;
      case SlotMode::SingleP:
        g.owner = 0;
        g.maxWidth = decodeWidth_;
        return g;
      case SlotMode::SingleS:
        g.owner = 1;
        g.maxWidth = decodeWidth_;
        return g;
      case SlotMode::LowPower:
        // One instruction decoded every 32 cycles in total; the single
        // slot alternates between the threads.
        if (cycle % 32 == 0) {
            g.owner = static_cast<ThreadId>((cycle / 32) % 2);
            g.maxWidth = 1;
        }
        return g;
      case SlotMode::Dual: {
        const Cycle pos = cycle % static_cast<Cycle>(window_);
        ThreadId high;
        if (prioP_ > prioS_) {
            high = 0;
        } else if (prioS_ > prioP_) {
            high = 1;
        } else {
            // Equal priorities: R == 2, strict alternation.
            g.owner = static_cast<ThreadId>(cycle % 2);
            g.maxWidth = decodeWidth_;
            return g;
        }
        if (pos < static_cast<Cycle>(window_ - 1)) {
            g.owner = high;
            g.maxWidth = decodeWidth_;
        } else {
            g.owner = static_cast<ThreadId>(1 - high);
            g.maxWidth = minorityWidth_;
        }
        return g;
      }
      default:
        panic("grantAt: bad mode %d", static_cast<int>(mode_));
    }
}

namespace {

/** Number of c in [begin, end) with c % m == r (m power of two or not). */
std::uint64_t
countCongruent(Cycle begin, Cycle end, Cycle m, Cycle r)
{
    const auto below = [m, r](Cycle x) -> std::uint64_t {
        // |{c in [0, x) : c % m == r}|
        return x > r ? (x - r - 1) / m + 1 : 0;
    };
    if (end <= begin)
        return 0;
    return below(end) - below(begin);
}

} // namespace

Cycle
DecodeSlotAllocator::nextGrantCycle(Cycle after, ThreadId tid) const
{
    if (!threadActive(tid))
        return never_cycle;
    for (Cycle i = 1; i <= grant_period; ++i) {
        const Cycle c = saturatingAdd(after, i);
        if (c == never_cycle)
            break;
        if (grantAt(c).owner == tid)
            return c;
    }
    return never_cycle;
}

Cycle
DecodeSlotAllocator::nextAnyGrantCycle(Cycle after) const
{
    for (Cycle i = 1; i <= grant_period; ++i) {
        const Cycle c = saturatingAdd(after, i);
        if (c == never_cycle)
            break;
        if (grantAt(c).owner >= 0)
            return c;
    }
    return never_cycle;
}

std::array<std::uint64_t, num_hw_threads>
DecodeSlotAllocator::ownedSlotsInRange(Cycle begin, Cycle end) const
{
    std::array<std::uint64_t, num_hw_threads> counts{};
    // grantAt() depends on the cycle only through cycle % grant_period,
    // so residue 'r' itself is a valid representative of its class.
    for (Cycle r = 0; r < grant_period; ++r) {
        const SlotGrant g = grantAt(r);
        if (g.owner >= 0)
            counts[static_cast<std::size_t>(g.owner)] +=
                countCongruent(begin, end, grant_period, r);
    }
    return counts;
}

double
DecodeSlotAllocator::primaryShare() const
{
    switch (mode_) {
      case SlotMode::AllOff:
        return 0.0;
      case SlotMode::SingleP:
        return 1.0;
      case SlotMode::SingleS:
        return 0.0;
      case SlotMode::LowPower:
        return 0.5;
      case SlotMode::Dual:
        if (prioP_ == prioS_)
            return 0.5;
        if (prioP_ > prioS_)
            return static_cast<double>(window_ - 1) / window_;
        return 1.0 / window_;
      default:
        panic("primaryShare: bad mode %d", static_cast<int>(mode_));
    }
}

} // namespace p5
