/**
 * @file
 * SimRunner: executes batches of SimJobs across a thread pool, with a
 * keyed result cache.
 *
 * The cache is keyed by SimJob::key(), so any configuration simulates at
 * most once per process no matter how many producers ask for it — the
 * (4,4) baselines shared by Table 3 and Figs. 2-4 are the headline case.
 * Duplicates *within* one batch are also coalesced: the first occurrence
 * runs, the rest wait on its future. Cache hit/miss counters are exposed
 * for tests and JSON reports.
 *
 * Correctness under concurrency: a job executes with zero shared mutable
 * state (it builds its own programs and its own core; the only process
 * globals it touches — the log level and warn counter — are atomic), so
 * results are bit-identical regardless of worker count or scheduling
 * order. tests/test_sim_runner.cc asserts jobs=1 == jobs=8.
 */

#ifndef P5SIM_FAME_SIM_RUNNER_HH
#define P5SIM_FAME_SIM_RUNNER_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/annotate.hh"
#include "fame/sim_job.hh"

namespace p5 {

class CkptManager;
class ResultStore;
struct StoreProvenance;

/** Process-lifetime map from job key to completed (or running) result. */
class ResultCache
{
  public:
    ResultCache() = default;
    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** The per-process cache used by the experiment producers. */
    static ResultCache &process();

    /**
     * Claim @p key: if absent, the caller must execute the job and
     * fulfill the returned promise slot (claimed == true); if present,
     * wait on the returned future (claimed == false, a hit).
     */
    struct Claim
    {
        bool claimed = false;
        std::shared_future<SimResult> future;
        std::shared_ptr<std::promise<SimResult>> promise; ///< when claimed
    };
    Claim claim(const std::string &key);

    /** Drop a claimed entry whose execution failed (un-poisons the map). */
    void abandon(const std::string &key);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::size_t size() const;

    /** Forget all results (not the counters). */
    void clear();

  private:
    mutable std::mutex mutex_;
    // Lookup-only by construction: every access is find/emplace/erase/
    // size/clear under mutex_ — nothing ever iterates the map, so its
    // hash order cannot leak into reports (audited for p5lint's
    // determinism rule; keep it that way or switch to std::map).
    P5_ALLOW(determinism)
    std::unordered_map<std::string, std::shared_future<SimResult>> map_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
};

/** Runs SimJob batches over a worker pool, through a ResultCache. */
class SimRunner
{
  public:
    /**
     * @param jobs worker threads; 0 selects the hardware concurrency.
     * @param cache result cache; nullptr selects ResultCache::process().
     */
    explicit SimRunner(unsigned jobs = 0, ResultCache *cache = nullptr);

    /**
     * Attach a persistent result store beneath the in-process cache.
     * Every executed storable job is written through as it completes
     * (so a killed sweep keeps its finished points); when
     * @p read_through is set, a cache miss first consults the store
     * and a valid stored result is served without simulating.
     */
    void setStore(ResultStore *store, bool read_through);

    /**
     * Attach a checkpoint manager: FAME jobs executed by this runner
     * warm through it (at most one simulated warm-up per warm key;
     * siblings fork the snapshot). nullptr — the default — warms every
     * job inline. Stats are bit-identical either way; only wall-clock
     * changes. Not owned; must outlive the runner.
     */
    void setCheckpoints(CkptManager *ckpts) { checkpoints_ = ckpts; }

    /**
     * Execute @p batch and return results in batch order. Every unique
     * key is executed at most once (per process, via the cache); an
     * exception from a job is rethrown here after the batch drains.
     *
     * @p provenance, when given, must parallel @p batch; entry i is
     * stamped into the store file of batch[i] (write-through only).
     */
    std::vector<SimResult>
    run(const std::vector<SimJob> &batch,
        const std::vector<StoreProvenance> *provenance = nullptr);

    /** Convenience single-job run (still cached). */
    SimResult runOne(const SimJob &job);

    unsigned jobs() const { return jobs_; }
    ResultCache &cache() { return *cache_; }
    ResultStore *store() { return store_; }
    CkptManager *checkpoints() { return checkpoints_; }

  private:
    unsigned jobs_;
    ResultCache *cache_;
    ResultStore *store_ = nullptr;
    bool storeReadThrough_ = false;
    CkptManager *checkpoints_ = nullptr;
};

} // namespace p5

#endif // P5SIM_FAME_SIM_RUNNER_HH
