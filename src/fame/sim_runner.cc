#include "fame/sim_runner.hh"

#include <algorithm>

#include "common/job_graph.hh"
#include "common/thread_pool.hh"

namespace p5 {

ResultCache &
ResultCache::process()
{
    static ResultCache cache;
    return cache;
}

ResultCache::Claim
ResultCache::claim(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        hits_.fetch_add(1);
        return Claim{false, it->second, nullptr};
    }
    misses_.fetch_add(1);
    auto promise = std::make_shared<std::promise<SimResult>>();
    std::shared_future<SimResult> future =
        promise->get_future().share();
    map_.emplace(key, future);
    return Claim{true, future, std::move(promise)};
}

void
ResultCache::abandon(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.erase(key);
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
}

SimRunner::SimRunner(unsigned jobs, ResultCache *cache)
    : jobs_(jobs ? jobs : ThreadPool::defaultWorkers()),
      cache_(cache ? cache : &ResultCache::process())
{}

std::vector<SimResult>
SimRunner::run(const std::vector<SimJob> &batch)
{
    struct Pending
    {
        const SimJob *job;
        std::string key;
        ResultCache::Claim claim;
    };

    // Claim every job up front; duplicates (within the batch or from
    // earlier batches) resolve to the same future and never re-run.
    std::vector<std::shared_future<SimResult>> futures;
    futures.reserve(batch.size());
    std::vector<Pending> toRun;
    for (const SimJob &job : batch) {
        std::string key = job.key();
        ResultCache::Claim claim = cache_->claim(key);
        futures.push_back(claim.future);
        if (claim.claimed)
            toRun.push_back(
                Pending{&job, std::move(key), std::move(claim)});
    }

    auto executeOne = [this](Pending &p) {
        try {
            p.claim.promise->set_value(p.job->execute());
        } catch (...) {
            // Don't poison the cache with the failure; rethrow to the
            // batch's caller through the future.
            cache_->abandon(p.key);
            p.claim.promise->set_exception(std::current_exception());
        }
    };

    if (!toRun.empty()) {
        if (jobs_ == 1 || toRun.size() == 1) {
            // Serial path: no pool, deterministic submission order.
            for (Pending &p : toRun)
                executeOne(p);
        } else {
            const unsigned workers = static_cast<unsigned>(std::min(
                static_cast<std::size_t>(jobs_), toRun.size()));
            ThreadPool pool(workers);
            JobGraph graph;
            for (Pending &p : toRun)
                graph.add([&executeOne, &p] { executeOne(p); });
            graph.run(pool);
        }
    }

    std::vector<SimResult> results;
    results.reserve(batch.size());
    for (auto &future : futures)
        results.push_back(future.get()); // rethrows job exceptions
    return results;
}

SimResult
SimRunner::runOne(const SimJob &job)
{
    return run({job}).front();
}

} // namespace p5
