#include "fame/sim_runner.hh"

#include <algorithm>

#include "common/job_graph.hh"
#include "common/log.hh"
#include "common/thread_pool.hh"
#include "store/result_store.hh"

namespace p5 {

ResultCache &
ResultCache::process()
{
    static ResultCache cache;
    return cache;
}

ResultCache::Claim
ResultCache::claim(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        hits_.fetch_add(1);
        return Claim{false, it->second, nullptr};
    }
    misses_.fetch_add(1);
    auto promise = std::make_shared<std::promise<SimResult>>();
    std::shared_future<SimResult> future =
        promise->get_future().share();
    map_.emplace(key, future);
    return Claim{true, future, std::move(promise)};
}

void
ResultCache::abandon(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.erase(key);
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return map_.size();
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
}

SimRunner::SimRunner(unsigned jobs, ResultCache *cache)
    : jobs_(jobs ? jobs : ThreadPool::defaultWorkers()),
      cache_(cache ? cache : &ResultCache::process())
{}

void
SimRunner::setStore(ResultStore *store, bool read_through)
{
    store_ = store;
    storeReadThrough_ = store ? read_through : false;
}

std::vector<SimResult>
SimRunner::run(const std::vector<SimJob> &batch,
               const std::vector<StoreProvenance> *provenance)
{
    struct Pending
    {
        const SimJob *job;
        std::string key;
        ResultCache::Claim claim;
        const StoreProvenance *prov;
    };

    if (provenance && provenance->size() != batch.size())
        panic("provenance vector (%zu) does not parallel batch (%zu)",
              provenance->size(), batch.size());

    // Claim every job up front; duplicates (within the batch or from
    // earlier batches) resolve to the same future and never re-run.
    std::vector<std::shared_future<SimResult>> futures;
    futures.reserve(batch.size());
    std::vector<Pending> toRun;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const SimJob &job = batch[i];
        std::string key = job.key();
        ResultCache::Claim claim = cache_->claim(key);
        futures.push_back(claim.future);
        if (claim.claimed)
            toRun.push_back(Pending{
                &job, std::move(key), std::move(claim),
                provenance ? &(*provenance)[i] : nullptr});
    }

    static const StoreProvenance no_provenance;
    auto executeOne = [this](Pending &p) {
        try {
            // Beneath the in-process cache: a stored result satisfies
            // the claim without simulating (read-through), and a fresh
            // result is published as soon as it exists (write-through),
            // so a killed sweep keeps every finished point.
            SimResult result;
            if (store_ && storeReadThrough_ &&
                store_->load(*p.job, result)) {
                p.claim.promise->set_value(std::move(result));
                return;
            }
            result = p.job->execute(checkpoints_);
            if (store_)
                store_->put(*p.job, result,
                            p.prov ? *p.prov : no_provenance);
            p.claim.promise->set_value(std::move(result));
        } catch (...) {
            // Don't poison the cache with the failure; rethrow to the
            // batch's caller through the future.
            cache_->abandon(p.key);
            p.claim.promise->set_exception(std::current_exception());
        }
    };

    if (!toRun.empty()) {
        if (jobs_ == 1 || toRun.size() == 1) {
            // Serial path: no pool, deterministic submission order.
            for (Pending &p : toRun)
                executeOne(p);
        } else {
            const unsigned workers = static_cast<unsigned>(std::min(
                static_cast<std::size_t>(jobs_), toRun.size()));
            ThreadPool pool(workers);
            JobGraph graph;
            for (Pending &p : toRun)
                graph.add([&executeOne, &p] { executeOne(p); });
            graph.run(pool);
        }
    }

    std::vector<SimResult> results;
    results.reserve(batch.size());
    for (auto &future : futures)
        results.push_back(future.get()); // rethrows job exceptions
    return results;
}

SimResult
SimRunner::runOne(const SimJob &job)
{
    return run({job}).front();
}

} // namespace p5
