#include "fame/sim_job.hh"

#include <cstdio>

#include "common/log.hh"
#include "common/rng.hh"
#include "program/trace.hh"
#include "sched/alloc_engine.hh"
#include "sched/workload.hh"

namespace p5 {

namespace {

/** Append "name=value;" with doubles rendered exactly (%.17g). */
void
kv(std::string &out, const char *name, double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s=%.17g;", name, v);
    out += buf;
}

void
kv(std::string &out, const char *name, std::uint64_t v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s=%llu;", name,
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
kv(std::string &out, const char *name, int v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%s=%d;", name, v);
    out += buf;
}

void
kv(std::string &out, const char *name, bool v)
{
    out += name;
    out += v ? "=1;" : "=0;";
}

void
appendKey(std::string &out, const CacheParams &p)
{
    kv(out, "size", static_cast<std::uint64_t>(p.sizeBytes));
    kv(out, "assoc", p.assoc);
    kv(out, "line", p.lineBytes);
    kv(out, "hit", p.hitLatency);
    kv(out, "gap", p.serviceGap);
}

void
appendKey(std::string &out, const CoreParams &p)
{
    kv(out, "coreId", p.coreId);
    kv(out, "decodeWidth", p.decodeWidth);
    kv(out, "minoritySlotWidth", p.minoritySlotWidth);
    kv(out, "groupSize", p.groupSize);
    kv(out, "gctGroups", p.gctGroups);
    for (int i = 0; i < static_cast<int>(FuClass::NumFuClasses); ++i)
        kv(out, "fu", p.fuCount[i]);
    kv(out, "lmqEntries", p.lmqEntries);
    kv(out, "mispredict", p.mispredictPenalty);
    kv(out, "workConserving", p.workConservingSlots);
    kv(out, "asidShift", p.asidShift);
    kv(out, "prioWalker", p.priorityAwareWalker);
    kv(out, "walkerPortGap", p.walkerPortGap);
    // Part of the key although stats are bit-identical either way:
    // cached results must record exactly how they were produced.
    kv(out, "fastForward", p.fastForward);

    const BalancerParams &b = p.balancer;
    kv(out, "balEnabled", b.enabled);
    kv(out, "balGctShare", b.gctShareThreshold);
    kv(out, "balPrioGct", b.priorityAwareGct);
    kv(out, "balMinShare", b.minGctShareThreshold);
    kv(out, "balMaxShare", b.maxGctShareThreshold);
    kv(out, "balPrioLmq", b.priorityAwareLmq);
    kv(out, "balMinGroups", b.minGctGroups);
    kv(out, "balLmqThresh", b.lmqThreshold);
    kv(out, "balTlbBlock", b.blockOnTlbMiss);
    kv(out, "balAction", static_cast<int>(b.action));

    out += "l1d{";
    appendKey(out, p.mem.l1d);
    out += "}l2{";
    appendKey(out, p.mem.l2);
    out += "}l3{";
    appendKey(out, p.mem.l3);
    out += "}";
    kv(out, "tlbEntries", p.mem.tlb.entries);
    kv(out, "tlbAssoc", p.mem.tlb.assoc);
    kv(out, "tlbPage", static_cast<std::uint64_t>(p.mem.tlb.pageBytes));
    kv(out, "tlbWalk", p.mem.tlb.walkLatency);
    kv(out, "dramLat", p.mem.dramLatency);
    kv(out, "dramGap", p.mem.dramServiceGap);
    kv(out, "bhtEntries", p.bht.entries);
}

void
appendKey(std::string &out, const FameParams &p)
{
    kv(out, "minReps", p.minRepetitions);
    kv(out, "maiv", p.maiv);
    kv(out, "warmReps", p.warmupRepetitions);
    kv(out, "warmTol", p.warmupTolerance);
    kv(out, "maxCycles", static_cast<std::uint64_t>(p.maxCycles));
    kv(out, "checkPeriod", static_cast<std::uint64_t>(p.checkPeriod));
}

void
appendKey(std::string &out, const SchedParams &p)
{
    out += "policy=";
    out += allocPolicyName(p.policy);
    out += ";";
    kv(out, "quantum", static_cast<std::uint64_t>(p.quantum));
    kv(out, "historyQuanta", p.historyQuanta);
}

void
appendKey(std::string &out, const PipelineParams &p)
{
    kv(out, "prioFft", p.prioFft);
    kv(out, "prioLu", p.prioLu);
    kv(out, "iterations", p.iterations);
    kv(out, "scale", p.scale);
    kv(out, "maxIterCycles",
       static_cast<std::uint64_t>(p.maxCyclesPerIteration));
}

} // namespace

ProgramSpec
ProgramSpec::ubench(UbenchId id, double scale)
{
    ProgramSpec s;
    s.kind = Kind::Ubench;
    s.id = static_cast<int>(id);
    s.scale = scale;
    return s;
}

ProgramSpec
ProgramSpec::spec(SpecProxyId id, double scale)
{
    ProgramSpec s;
    s.kind = Kind::SpecProxy;
    s.id = static_cast<int>(id);
    s.scale = scale;
    return s;
}

ProgramSpec
ProgramSpec::trace(const std::string &path)
{
    const TraceHeader h = readTraceHeader(path);
    ProgramSpec s;
    s.kind = Kind::Trace;
    s.tracePath = path;
    s.traceFingerprint = h.fingerprint();
    s.traceName = h.name;
    return s;
}

std::unique_ptr<InstrSource>
ProgramSpec::build() const
{
    switch (kind) {
      case Kind::Ubench:
        return std::make_unique<SyntheticProgram>(
            makeUbench(static_cast<UbenchId>(id), scale));
      case Kind::SpecProxy:
        return std::make_unique<SyntheticProgram>(
            makeSpecProxy(static_cast<SpecProxyId>(id), scale));
      case Kind::Trace: {
        std::unique_ptr<TraceProgram> prog = loadTrace(tracePath);
        // A swapped file under the same path must not impersonate the
        // identity this spec (and any cached result) was keyed under.
        if (prog->header().fingerprint() != traceFingerprint)
            fatal("trace '%s' changed since it was keyed "
                  "(fingerprint %s, expected %s)",
                  tracePath.c_str(),
                  prog->header().fingerprint().c_str(),
                  traceFingerprint.c_str());
        return prog;
      }
      case Kind::None:
        break;
    }
    fatal("ProgramSpec::build on an absent program");
}

std::string
ProgramSpec::key() const
{
    std::string out;
    switch (kind) {
      case Kind::None:
        return "none";
      case Kind::Ubench:
        out = "ub:";
        break;
      case Kind::SpecProxy:
        out = "spec:";
        break;
      case Kind::Trace:
        // The content fingerprint alone: the path is a location, not
        // an identity.
        return "trace:fp=" + traceFingerprint + ";";
    }
    kv(out, "id", id);
    kv(out, "scale", scale);
    return out;
}

SimJob
SimJob::fameSingle(ProgramSpec prog, const CoreParams &core,
                   const FameParams &fame, int prio)
{
    SimJob job;
    job.kind = SimJobKind::FamePair;
    job.primary = prog;
    job.secondary = ProgramSpec::none();
    job.prioPrimary = prio;
    job.prioSecondary = 0;
    job.core = core;
    job.fame = fame;
    return job;
}

SimJob
SimJob::famePair(ProgramSpec prog_p, ProgramSpec prog_s, int prio_p,
                 int prio_s, const CoreParams &core, const FameParams &fame)
{
    SimJob job;
    job.kind = SimJobKind::FamePair;
    job.primary = prog_p;
    job.secondary = prog_s;
    job.prioPrimary = prio_p;
    job.prioSecondary = prio_s;
    job.core = core;
    job.fame = fame;
    return job;
}

SimJob
SimJob::pipelineSingleThread(const PipelineParams &pipeline,
                             const CoreParams &core)
{
    SimJob job;
    job.kind = SimJobKind::PipelineSingleThread;
    job.pipeline = pipeline;
    job.core = core;
    return job;
}

SimJob
SimJob::pipelineSmt(const PipelineParams &pipeline, const CoreParams &core)
{
    SimJob job;
    job.kind = SimJobKind::PipelineSmt;
    job.pipeline = pipeline;
    job.core = core;
    return job;
}

SimJob
SimJob::allocMix(std::vector<ProgramSpec> mix, const SchedParams &sched,
                 int num_cores, Cycle cycles, const CoreParams &core)
{
    SimJob job;
    job.kind = SimJobKind::AllocMix;
    job.mix = std::move(mix);
    job.sched = sched;
    job.numCores = num_cores;
    job.allocCycles = cycles;
    job.core = core;
    return job;
}

std::string
SimJob::key() const
{
    std::string out;
    switch (kind) {
      case SimJobKind::FamePair:
        out = "fame|p{" + primary.key() + "}s{" + secondary.key() + "}";
        kv(out, "prioP", prioPrimary);
        kv(out, "prioS", prioSecondary);
        out += "fame{";
        appendKey(out, fame);
        out += "}";
        break;
      case SimJobKind::PipelineSingleThread:
      case SimJobKind::PipelineSmt:
        out = kind == SimJobKind::PipelineSmt ? "pipe-smt|" : "pipe-st|";
        out += "pipe{";
        appendKey(out, pipeline);
        out += "}";
        break;
      case SimJobKind::AllocMix:
        out = "alloc|mix{";
        for (const ProgramSpec &spec : mix) {
            out += spec.key();
            out += "|";
        }
        out += "}sched{";
        appendKey(out, sched);
        out += "}";
        kv(out, "numCores", numCores);
        kv(out, "cycles", static_cast<std::uint64_t>(allocCycles));
        break;
    }
    out += "core{";
    appendKey(out, core);
    out += "}";
    if (!configTag.empty()) {
        out += "cfg{";
        out += configTag;
        out += "}";
    }
    return out;
}

std::string
SimJob::warmKey() const
{
    if (kind != SimJobKind::FamePair)
        fatal("warmKey() on a non-FAME job");
    // Mirrors key()'s FamePair arm minus the priority pair and the
    // measurement-only FAME knobs: exactly the inputs the warm-up
    // trajectory depends on under the canonical-warm protocol.
    std::string out =
        "warm|p{" + primary.key() + "}s{" + secondary.key() + "}";
    kv(out, "warmPrio", canonical_warm_priority);
    out += "fame-warm{";
    kv(out, "warmReps", fame.warmupRepetitions);
    kv(out, "warmTol", fame.warmupTolerance);
    kv(out, "maxCycles", static_cast<std::uint64_t>(fame.maxCycles));
    kv(out, "checkPeriod", static_cast<std::uint64_t>(fame.checkPeriod));
    out += "}core{";
    appendKey(out, core);
    out += "}";
    if (!warmTag.empty()) {
        out += "wcfg{";
        out += warmTag;
        out += "}";
    }
    return out;
}

std::uint64_t
SimJob::rngSeed() const
{
    // SplitMix64 chain over the canonical key, so the seed is a pure
    // function of the simulated configuration.
    const std::string k = key();
    std::uint64_t seed = hashMix(k.size());
    for (char c : k)
        seed = hashCombine(seed, static_cast<unsigned char>(c));
    return seed;
}

SimResult
SimJob::execute(CkptManager *ckpts) const
{
    SimResult res;
    res.kind = kind;
    res.rngSeed = rngSeed();

    switch (kind) {
      case SimJobKind::FamePair: {
        const std::string warm_key = ckpts ? warmKey() : std::string();
        const std::unique_ptr<InstrSource> prog_p = primary.build();
        if (secondary.present()) {
            const std::unique_ptr<InstrSource> prog_s =
                secondary.build();
            res.fame =
                runFame(core, prog_p.get(), prog_s.get(), prioPrimary,
                        prioSecondary, fame, ckpts, warm_key);
        } else {
            res.fame =
                runFame(core, prog_p.get(), nullptr, prioPrimary,
                        prioSecondary, fame, ckpts, warm_key);
        }
        break;
      }
      case SimJobKind::PipelineSingleThread: {
        PipelineApp app(pipeline);
        res.pipeline = app.runSingleThread(core);
        break;
      }
      case SimJobKind::PipelineSmt: {
        PipelineApp app(pipeline);
        res.pipeline = app.runSmt(core);
        break;
      }
      case SimJobKind::AllocMix: {
        Workload workload;
        for (const ProgramSpec &spec : mix)
            workload.add(spec);
        ChipParams cp;
        cp.numCores = numCores;
        cp.core = core;
        Chip chip(cp);
        AllocEngine engine(chip, workload, sched, rngSeed());
        res.alloc = engine.run(allocCycles);
        break;
      }
    }
    return res;
}

} // namespace p5
