#include "fame/fame.hh"

#include <cmath>

#include "ckpt/ckpt_io.hh"
#include "ckpt/ckpt_manager.hh"
#include "common/log.hh"

namespace p5 {

FameRunner::FameRunner(const FameParams &params) : params_(params)
{
    if (params_.minRepetitions == 0)
        fatal("FAME needs at least one repetition");
    if (params_.maiv <= 0.0)
        fatal("FAME MAIV must be positive");
    if (params_.warmupTolerance <= 0.0)
        fatal("FAME warm-up tolerance must be positive");
}

namespace {

/** Tracks a thread's per-repetition IPC between polls. */
struct RepTracker
{
    std::uint64_t lastExecs = 0;
    Cycle lastExecCycle = 0;
    double lastWindowIpc = 0.0;
    bool stable = false;

    /**
     * Update from the core; returns true when at least one new
     * repetition completed since the previous poll.
     */
    bool
    poll(const SmtCore &core, ThreadId tid, double tolerance)
    {
        const std::uint64_t execs = core.executionsOf(tid);
        if (execs == lastExecs)
            return false;
        const Cycle now_cycle = core.lastExecutionCycleOf(tid);
        const std::uint64_t instrs =
            (execs - lastExecs) *
            core.thread(tid).stream().instrsPerExecution();
        const Cycle window = now_cycle - lastExecCycle;
        const double ipc =
            window ? static_cast<double>(instrs) /
                         static_cast<double>(window)
                   : 0.0;
        if (lastWindowIpc > 0.0 && ipc > 0.0) {
            const double delta = std::fabs(ipc - lastWindowIpc) / ipc;
            stable = delta < tolerance;
        }
        lastWindowIpc = ipc;
        lastExecs = execs;
        lastExecCycle = now_cycle;
        return true;
    }
};

} // namespace

FameResult
FameRunner::run(SmtCore &core)
{
    const Cycle start = core.cycle();
    runWarmup(core);
    return measure(core, start);
}

void
FameRunner::runWarmup(SmtCore &core)
{
    std::array<bool, num_hw_threads> present{};
    int num_present = 0;
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        present[static_cast<size_t>(t)] = core.threadAttached(t);
        if (present[static_cast<size_t>(t)])
            ++num_present;
    }
    if (num_present == 0)
        fatal("FAME run with no attached threads");

    const Cycle start = core.cycle();

    // Run until every thread has completed the warm-up repetitions and
    // its per-repetition IPC has stabilized (or the warm-up share of the
    // cycle budget is exhausted).
    std::array<RepTracker, num_hw_threads> trackers{};
    const Cycle warmup_limit = start + params_.maxCycles / 4;
    while (true) {
        core.run(params_.checkPeriod);
        if (hook_)
            hook_(core);
        bool warm = true;
        for (ThreadId t = 0; t < num_hw_threads; ++t) {
            const auto ti = static_cast<size_t>(t);
            if (!present[ti])
                continue;
            trackers[ti].poll(core, t, params_.warmupTolerance);
            if (core.executionsOf(t) < params_.warmupRepetitions ||
                !trackers[ti].stable)
                warm = false;
        }
        if (warm)
            break;
        if (core.cycle() >= warmup_limit) {
            warn("FAME warm-up hit its cycle budget");
            break;
        }
    }
}

FameResult
FameRunner::measure(SmtCore &core, Cycle start)
{
    FameResult res;

    std::array<bool, num_hw_threads> present{};
    int num_present = 0;
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        present[static_cast<size_t>(t)] = core.threadAttached(t);
        if (present[static_cast<size_t>(t)])
            ++num_present;
    }
    if (num_present == 0)
        fatal("FAME run with no attached threads");

    const Cycle limit = start + params_.maxCycles;

    // Snapshot each thread at its last completed-repetition boundary and
    // account only full repetitions after the snapshot.
    struct Base
    {
        std::uint64_t execs = 0;
        Cycle cycle = 0;
    };
    std::array<Base, num_hw_threads> base{};
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<size_t>(t);
        if (!present[ti])
            continue;
        base[ti].execs = core.executionsOf(t);
        base[ti].cycle = core.lastExecutionCycleOf(t);
    }

    // Accumulated-average IPC history per thread: (reps, avg) samples,
    // appended whenever the repetition count advances. Convergence
    // compares the current accumulated average against the one recorded
    // at half as many repetitions — this catches both slow drift and
    // slow oscillations (e.g. GCT-occupancy beats) that fool a simple
    // consecutive-poll check.
    std::array<std::vector<std::pair<std::uint64_t, double>>,
               num_hw_threads>
        history{};
    std::array<bool, num_hw_threads> converged{};

    while (true) {
        core.run(params_.checkPeriod);
        if (hook_)
            hook_(core);

        bool all_done = true;
        for (ThreadId t = 0; t < num_hw_threads; ++t) {
            const auto ti = static_cast<size_t>(t);
            if (!present[ti])
                continue;
            const std::uint64_t reps =
                core.executionsOf(t) - base[ti].execs;
            if (reps < params_.minRepetitions) {
                all_done = false;
                continue;
            }
            const Cycle acc =
                core.lastExecutionCycleOf(t) - base[ti].cycle;
            const double avg =
                acc ? static_cast<double>(
                          reps * core.thread(t).stream()
                                     .instrsPerExecution()) /
                          static_cast<double>(acc)
                    : 0.0;
            auto &hist = history[ti];
            if (hist.empty() || hist.back().first != reps)
                hist.emplace_back(reps, avg);

            // Accumulated average at <= reps/2 repetitions.
            double half_avg = 0.0;
            for (const auto &[r, a] : hist) {
                if (r * 2 > reps)
                    break;
                half_avg = a;
            }
            converged[ti] = avg > 0.0 && half_avg > 0.0 &&
                            std::fabs(avg - half_avg) / avg <
                                params_.maiv;
            if (!converged[ti])
                all_done = false;
        }

        if (all_done) {
            res.converged = true;
            break;
        }
        if (core.cycle() >= limit) {
            res.hitCycleLimit = true;
            warn("FAME hit the cycle guard before convergence");
            break;
        }
    }

    res.totalCycles = core.cycle() - start;
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<size_t>(t);
        if (!present[ti])
            continue;
        ThreadMeasurement &m = res.thread[ti];
        m.present = true;
        m.executions = core.executionsOf(t) - base[ti].execs;
        m.accountedCycles =
            core.lastExecutionCycleOf(t) - base[ti].cycle;
        m.accountedInstrs =
            m.executions *
            core.thread(t).stream().instrsPerExecution();
    }
    return res;
}

FameResult
runFame(const CoreParams &core_params, const InstrSource *prog_p,
        const InstrSource *prog_s, int prio_p, int prio_s,
        const FameParams &fame_params, CkptManager *ckpts,
        const std::string &warm_key)
{
    if (!prog_p)
        fatal("runFame: primary program is required");

    // Warm under the canonical priorities so the warm phase depends only
    // on the warm key; the measured pair is applied at the boundary (see
    // canonical_warm_priority). Fresh cores start at cycle 0, which is
    // the anchor measure() expects whether the warm state was simulated
    // here or restored from a checkpoint.
    SmtCore core(core_params);
    core.attachThread(0, prog_p, canonical_warm_priority);
    if (prog_s)
        core.attachThread(1, prog_s, canonical_warm_priority);

    FameRunner runner(fame_params);

    if (!ckpts) {
        runner.runWarmup(core);
        core.setPriorityPair(prio_p, prog_s ? prio_s : 0);
        return runner.measure(core, 0);
    }

    if (warm_key.empty())
        fatal("runFame: checkpointing requires a warm key");

    const CkptManager::Acquired acq =
        ckpts->acquire(warm_key, [&]() -> Checkpoint {
            runner.runWarmup(core);
            Checkpoint ck;
            ck.warmKey = warm_key;
            ck.fingerprint = ckptFingerprintHex(warm_key);
            ck.warmCycles = core.cycle();
            CkptWriter w;
            core.saveState(w);
            ck.state = w.data();
            return ck;
        });
    if (!acq.created) {
        // Fork: adopt a sibling's (or the store's) warm image instead
        // of simulating the warm-up.
        CkptReader r(acq.ckpt->state);
        core.restoreState(r);
        r.expectEnd();
    }
    core.setPriorityPair(prio_p, prog_s ? prio_s : 0);
    return runner.measure(core, 0);
}

} // namespace p5
