/**
 * @file
 * SimJob: a self-contained, enumerable description of one simulation.
 *
 * The experiment producers (src/exp/) no longer call the simulator
 * inline; they enumerate SimJobs and hand batches to a SimRunner. A job
 * carries everything needed to run it from scratch on any thread —
 * *descriptions* of the programs (benchmark id + scale, not program
 * objects), the priority pair, the core and FAME parameters — so
 * executing a job has no shared state whatsoever.
 *
 * Every job exposes a canonical key() that is a pure function of its
 * configuration. The key serves two purposes: it indexes the
 * ResultCache (identical configurations simulate exactly once per
 * process) and it seeds the job's deterministic RNG stream via
 * SplitMix64 (rngSeed()), so any randomized behaviour a job ever grows
 * depends only on *what* is simulated, never on scheduling order or
 * worker identity.
 */

#ifndef P5SIM_FAME_SIM_JOB_HH
#define P5SIM_FAME_SIM_JOB_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/params.hh"
#include "fame/fame.hh"
#include "sched/alloc_result.hh"
#include "sched/sched_params.hh"
#include "ubench/ubench.hh"
#include "workloads/pipeline_app.hh"
#include "workloads/spec_proxy.hh"

namespace p5 {

/** Recipe for building one instruction source inside a job. */
struct ProgramSpec
{
    enum class Kind { None, Ubench, SpecProxy, Trace };

    Kind kind = Kind::None;
    int id = 0; ///< UbenchId / SpecProxyId, per kind
    double scale = 1.0;

    /** Kind::Trace: where the trace lives (not part of the identity). */
    std::string tracePath;

    /**
     * Kind::Trace: the trace's 16-hex content fingerprint (the
     * identity — two paths to byte-identical traces coalesce, while a
     * re-dumped trace at the same path never aliases stale results).
     */
    std::string traceFingerprint;

    /** Kind::Trace: recorded workload name (labels only). */
    std::string traceName;

    static ProgramSpec none() { return ProgramSpec{}; }
    static ProgramSpec ubench(UbenchId id, double scale = 1.0);
    static ProgramSpec spec(SpecProxyId id, double scale = 1.0);

    /**
     * A replayed trace. Reads only the header (cheap), to pin the
     * content fingerprint at spec-creation time; fatal() when the file
     * is missing or its header is invalid.
     */
    static ProgramSpec trace(const std::string &path);

    bool present() const { return kind != Kind::None; }

    /** Materialize the source; fatal() for Kind::None. */
    std::unique_ptr<InstrSource> build() const;

    /** Stable textual identity (part of SimJob::key()). */
    std::string key() const;
};

/** What a job simulates. */
enum class SimJobKind
{
    FamePair,             ///< FAME-run primary (+ optional secondary)
    PipelineSingleThread, ///< FFT->LU pipeline, both stages on one thread
    PipelineSmt,          ///< FFT->LU pipeline in SMT mode
    AllocMix              ///< N-core allocation study over a thread mix
};

/** Uniform result record; the field matching kind is valid. */
struct SimResult
{
    SimJobKind kind = SimJobKind::FamePair;
    FameResult fame;
    PipelineResult pipeline;
    AllocRunResult alloc;

    /** The rngSeed() of the job that produced this result. */
    std::uint64_t rngSeed = 0;
};

/** One enumerable unit of simulation work. */
struct SimJob
{
    SimJobKind kind = SimJobKind::FamePair;

    // FamePair configuration.
    ProgramSpec primary;
    ProgramSpec secondary;
    int prioPrimary = default_priority;
    int prioSecondary = default_priority;
    FameParams fame;

    // Pipeline* configuration.
    PipelineParams pipeline;

    // AllocMix configuration.
    std::vector<ProgramSpec> mix; ///< runnable threads, workload order
    SchedParams sched;
    int numCores = 2;
    Cycle allocCycles = 0; ///< chip cycles the study runs

    // Shared.
    CoreParams core;

    /**
     * Fingerprint of the config tree this job was enumerated from, or
     * "" for jobs built directly in code. Folded into key() — and so
     * into the ResultCache key and the rngSeed() stream — so results
     * cached under one declared configuration are never served to
     * another, even if a future config field stops being mirrored in
     * the param structs above. Identical (config, job) pairs still
     * coalesce exactly as before: equal configs yield equal tags.
     */
    std::string configTag;

    /**
     * Warm-phase fingerprint of the enumerating config (the ConfigTree
     * warm fingerprint; "" for code-built jobs). Folded into warmKey()
     * the way configTag is folded into key(), so checkpoints created
     * under one declared configuration are never restored into another
     * even if a future warm-relevant config field stops being mirrored
     * in the param structs above.
     */
    std::string warmTag;

    // --- factories ----------------------------------------------------

    /** Primary-only (single-thread mode) FAME job. */
    static SimJob fameSingle(ProgramSpec prog, const CoreParams &core,
                             const FameParams &fame,
                             int prio = default_priority);

    /** Two-thread FAME job under (prio_p, prio_s). */
    static SimJob famePair(ProgramSpec prog_p, ProgramSpec prog_s,
                           int prio_p, int prio_s, const CoreParams &core,
                           const FameParams &fame);

    static SimJob pipelineSingleThread(const PipelineParams &pipeline,
                                       const CoreParams &core);

    static SimJob pipelineSmt(const PipelineParams &pipeline,
                              const CoreParams &core);

    /**
     * Allocation study: schedule @p mix onto @p num_cores cores under
     * @p sched for @p cycles chip cycles.
     */
    static SimJob allocMix(std::vector<ProgramSpec> mix,
                           const SchedParams &sched, int num_cores,
                           Cycle cycles, const CoreParams &core);

    // --- identity -----------------------------------------------------

    /**
     * Canonical key: equal keys iff the jobs describe the same
     * simulation (all parameters included, doubles rendered exactly).
     */
    std::string key() const;

    /** SplitMix64-derived deterministic seed over key(). */
    std::uint64_t rngSeed() const;

    /**
     * Canonical warm-phase key (FAME jobs only): the slice of key()
     * that determines the warm-up trajectory under the canonical-warm
     * protocol. Drops the priority pair and the measurement-only FAME
     * knobs (minRepetitions, maiv), keeps the programs, the core
     * parameters, the warm-up parameters and the config warmTag. Equal
     * warm keys iff two jobs can share one warmed-state checkpoint.
     */
    std::string warmKey() const;

    // --- execution ----------------------------------------------------

    /**
     * Run this job on the calling thread. With @p ckpts, a FAME job
     * warms through the manager — at most one simulated warm-up per
     * warm key — and forks (restores) otherwise; results are
     * bit-identical either way. Non-FAME kinds ignore @p ckpts.
     */
    SimResult execute(CkptManager *ckpts = nullptr) const;
};

} // namespace p5

#endif // P5SIM_FAME_SIM_JOB_HH
