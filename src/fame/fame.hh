/**
 * @file
 * FAME (FAirly MEasuring Multithreaded Architectures) methodology.
 *
 * Per the paper (Sec. 4.1, after Vera et al. [24][25]): every benchmark
 * in the workload re-executes until each has completed at least a minimum
 * number of repetitions *and* its accumulated average IPC has stabilized
 * to within MAIV (Maximum Allowable IPC Variation, 1% by default). The
 * average execution time of a thread is its total accounted time divided
 * by the number of *complete* repetitions — time in the trailing
 * incomplete repetition is discarded (the paper's Figure 1).
 */

#ifndef P5SIM_FAME_FAME_HH
#define P5SIM_FAME_FAME_HH

#include <array>
#include <string>

#include "core/smt_core.hh"
#include "program/program.hh"

namespace p5 {

/** FAME configuration. */
struct P5_CONFIG_STRUCT FameParams
{
    /** Minimum complete executions per thread (paper: 10 for MAIV 1%). */
    std::uint64_t minRepetitions = 10;

    /** Maximum allowable IPC variation between consecutive checks. */
    double maiv = 0.01;

    /**
     * Warm-up repetitions before the measurement window opens. The
     * warm-up additionally extends itself until each thread's
     * per-repetition IPC has stabilized (caches/predictors trained),
     * which is what lets the measured average approximate steady state.
     */
    std::uint64_t warmupRepetitions = 2;

    /** Relative per-repetition IPC change below which warm-up ends. */
    double warmupTolerance = 0.05;

    /** Hard cycle guard so degenerate configs cannot hang. */
    Cycle maxCycles = 500'000'000;

    /** Simulation chunk between convergence checks. */
    Cycle checkPeriod = 1024;
};

/** Per-thread measurement produced by a FAME run. */
struct ThreadMeasurement
{
    bool present = false;
    std::uint64_t executions = 0;

    /** Cycles up to the end of the last complete execution. */
    Cycle accountedCycles = 0;

    /** Instructions in the complete executions. */
    std::uint64_t accountedInstrs = 0;

    /** Average execution (repetition) time in cycles. */
    double
    avgExecTime() const
    {
        return executions
                   ? static_cast<double>(accountedCycles) /
                         static_cast<double>(executions)
                   : 0.0;
    }

    /** Average IPC over the accounted window. */
    double
    avgIpc() const
    {
        return accountedCycles
                   ? static_cast<double>(accountedInstrs) /
                         static_cast<double>(accountedCycles)
                   : 0.0;
    }
};

/** Result of one FAME run. */
struct FameResult
{
    std::array<ThreadMeasurement, num_hw_threads> thread;
    Cycle totalCycles = 0;
    bool converged = false;
    bool hitCycleLimit = false;

    /** Combined IPC of all present threads. */
    double
    totalIpc() const
    {
        double sum = 0.0;
        for (const auto &t : thread)
            if (t.present)
                sum += t.avgIpc();
        return sum;
    }
};

/** Drives an already-configured core per the FAME methodology. */
class FameRunner
{
  public:
    explicit FameRunner(const FameParams &params = FameParams{});

    /**
     * Run the workload attached to @p core until every attached thread
     * satisfies FAME (min repetitions + MAIV convergence). Equivalent
     * to runWarmup() followed by measure() anchored at the entry cycle.
     */
    FameResult run(SmtCore &core);

    /**
     * Phase 1 only: advance @p core until every attached thread has
     * completed the warm-up repetitions and its per-repetition IPC has
     * stabilized (or the warm-up cycle budget runs out). This is the
     * phase a checkpoint snapshots: everything it does is a pure
     * function of the warm key, never of the measured priority pair.
     */
    void runWarmup(SmtCore &core);

    /**
     * Phase 2 only: measure an already-warm @p core until convergence.
     * @p start anchors the cycle guard and totalCycles accounting at
     * the cycle the warm-up began (0 for a core warmed from fresh,
     * whether directly or restored from a checkpoint), so a
     * restored-then-measured run reports bit-identical results to a
     * cold warm-then-measure run.
     */
    FameResult measure(SmtCore &core, Cycle start);

    const FameParams &params() const { return params_; }

    /** Observer invoked after every simulation chunk (checkPeriod). */
    using ChunkHook = std::function<void(SmtCore &)>;

    /**
     * Attach a per-chunk observer (e.g. a sched::QuantumMonitor
     * sampling symbiosis inputs). Purely observational: the hook must
     * not advance or mutate the core; convergence is unaffected.
     */
    void setChunkHook(ChunkHook hook) { hook_ = std::move(hook); }

  private:
    FameParams params_;
    ChunkHook hook_;
};

class CkptManager;

/**
 * Priority every thread warms up under, regardless of the pair being
 * measured. Warming at a fixed canonical priority — (4,4) for pairs,
 * 4 alone for singles — makes the entire warm phase a pure function of
 * the warm key: all 36 priority pairs of a mix share one bit-identical
 * warm trajectory, so one checkpoint forks across the whole matrix.
 * The measured pair is applied at the warm/measure boundary, exactly
 * where a real run would issue its priority-setting instructions after
 * the caches and predictors have trained.
 */
constexpr int canonical_warm_priority = 4;

/**
 * Convenience wrapper used throughout the experiments: build a fresh
 * core, attach @p prog_p (and @p prog_s unless null) at the canonical
 * warm priority, warm it, switch to the given priorities, and measure.
 *
 * Passing prog_s == nullptr measures prog_p in single-thread mode.
 *
 * With @p ckpts attached the warm phase runs at most once per
 * @p warm_key (see CkptManager): the first caller warms and snapshots,
 * every later caller forks by restoring the snapshot into its fresh
 * core. Checkpointed and cold paths produce bit-identical results.
 */
FameResult runFame(const CoreParams &core_params,
                   const InstrSource *prog_p,
                   const InstrSource *prog_s, int prio_p, int prio_s,
                   const FameParams &fame_params = FameParams{},
                   CkptManager *ckpts = nullptr,
                   const std::string &warm_key = std::string());

} // namespace p5

#endif // P5SIM_FAME_FAME_HH
