/**
 * @file
 * Result types of an allocation study, separated from the engine so the
 * job layer (fame/sim_job.hh) can carry them without pulling in the
 * Workload (which itself builds on the job layer's ProgramSpec).
 */

#ifndef P5SIM_SCHED_ALLOC_RESULT_HH
#define P5SIM_SCHED_ALLOC_RESULT_HH

#include <cstdint>
#include <vector>

#include "sched/allocator.hh"

namespace p5 {

/** What one quantum did (for offline replay and tests). */
struct QuantumRecord
{
    std::uint64_t index = 0;
    Assignment assignment;

    /** Threads whose core changed relative to the previous quantum. */
    int migrations = 0;

    /** Per-runnable-id samples; zero for threads not scheduled. */
    std::vector<ThreadSample> samples;
};

/** Whole-study accounting for one runnable thread. */
struct AllocThreadTotals
{
    std::uint64_t committed = 0;
    std::uint64_t l2Misses = 0;
    Cycle cyclesScheduled = 0;

    double
    ipc() const
    {
        return cyclesScheduled > 0
            ? static_cast<double>(committed) /
                  static_cast<double>(cyclesScheduled)
            : 0.0;
    }
};

/** Result of AllocEngine::run(). */
struct AllocRunResult
{
    Cycle cycles = 0;
    std::uint64_t quanta = 0;
    std::uint64_t migrations = 0;
    std::uint64_t committed = 0;

    /** Chip-wide committed instructions per elapsed chip cycle. */
    double aggregateIpc = 0.0;

    /** ChipConservation violations observed during the study. */
    std::uint64_t checkViolations = 0;

    std::vector<AllocThreadTotals> threads;

    /** One record per quantum, capped at max_log_records. */
    std::vector<QuantumRecord> log;

    static constexpr std::size_t max_log_records = 65536;
};

} // namespace p5

#endif // P5SIM_SCHED_ALLOC_RESULT_HH
