/**
 * @file
 * Scheduler configuration: the allocation policy family and the
 * quantum at which the allocator re-decides thread-to-core placement.
 */

#ifndef P5SIM_SCHED_SCHED_PARAMS_HH
#define P5SIM_SCHED_SCHED_PARAMS_HH

#include <string>

#include "common/types.hh"

#include "common/annotate.hh"

namespace p5 {

/** Thread-to-core allocation policies (SYNPA family, PAPERS.md). */
enum class AllocPolicy
{
    /**
     * Static: runnable thread i is pinned to core i/2, hardware
     * thread i%2, forever. Reproduces the pre-scheduler chip
     * bit-identically (no migrations, no re-pairing).
     */
    Pinned,

    /** Re-pair uniformly at random every quantum (deterministic RNG). */
    Random,

    /**
     * SYNPA-style symbiosis predictor: score candidate pairings from
     * per-thread counter history (committed IPC, L2 misses, GCT
     * occupancy) and greedily keep the best-scoring pairs.
     */
    Symbiosis,
};

/** Canonical name ("pinned", "random", "symbiosis"). */
const char *allocPolicyName(AllocPolicy policy);

/** Reverse lookup; fatal() on unknown names. */
AllocPolicy allocPolicyFromName(const std::string &name);

/** Scheduler knobs (bound to the sched.* config paths). */
struct P5_CONFIG_STRUCT SchedParams
{
    AllocPolicy policy = AllocPolicy::Pinned;

    /** Cycles between allocation decisions. */
    Cycle quantum = 20000;

    /** Per-thread counter samples the allocator may look back over. */
    int historyQuanta = 4;

    /** fatal() on out-of-range values. */
    void validate() const;
};

} // namespace p5

#endif // P5SIM_SCHED_SCHED_PARAMS_HH
