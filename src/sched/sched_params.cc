#include "sched/sched_params.hh"

#include "common/log.hh"

namespace p5 {

const char *
allocPolicyName(AllocPolicy policy)
{
    switch (policy) {
      case AllocPolicy::Pinned:
        return "pinned";
      case AllocPolicy::Random:
        return "random";
      case AllocPolicy::Symbiosis:
        return "symbiosis";
    }
    fatal("allocPolicyName: bad policy %d", static_cast<int>(policy));
}

AllocPolicy
allocPolicyFromName(const std::string &name)
{
    if (name == "pinned")
        return AllocPolicy::Pinned;
    if (name == "random")
        return AllocPolicy::Random;
    if (name == "symbiosis")
        return AllocPolicy::Symbiosis;
    fatal("unknown allocation policy '%s' (expected 'pinned', 'random' "
          "or 'symbiosis')",
          name.c_str());
}

void
SchedParams::validate() const
{
    if (quantum < 256)
        fatal("SchedParams::quantum %llu too small (min 256 cycles)",
              static_cast<unsigned long long>(quantum));
    if (historyQuanta < 1 || historyQuanta > 64)
        fatal("SchedParams::historyQuanta %d out of range [1, 64]",
              historyQuanta);
}

} // namespace p5
