/**
 * @file
 * Workload: the runnable threads an allocation study schedules.
 *
 * A RunnableThread is a software thread that wants to run — a program
 * plus a priority — decoupled from any hardware context. The Workload
 * owns the materialized programs (stable addresses for the lifetime of
 * the study) so the AllocEngine can attach/detach them to hardware
 * threads freely as the allocator migrates them between cores.
 */

#ifndef P5SIM_SCHED_WORKLOAD_HH
#define P5SIM_SCHED_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "fame/sim_job.hh"
#include "prio/priority.hh"

namespace p5 {

/** One software thread of an allocation study. */
struct RunnableThread
{
    /** Index in the owning Workload (the allocator's thread id). */
    int id = 0;

    /** What it runs (benchmark id + scale; rebuildable anywhere). */
    ProgramSpec spec;

    /** Hardware priority it is attached with (paper range 0..7). */
    int priority = default_priority;
};

/** An ordered collection of runnable threads. */
class Workload
{
  public:
    Workload() = default;

    Workload(const Workload &) = delete;
    Workload &operator=(const Workload &) = delete;
    Workload(Workload &&) = default;
    Workload &operator=(Workload &&) = default;

    /** Append a thread; returns its id. */
    int add(ProgramSpec spec, int priority = default_priority);

    /**
     * Build a workload from a comma-separated list of paper benchmark
     * names ("cpu_int,ldint_mem,..."), all at default priority.
     * fatal() on unknown names or an empty list.
     */
    static Workload fromMix(const std::string &mix, double scale = 1.0);

    int size() const { return static_cast<int>(threads_.size()); }

    const RunnableThread &thread(int id) const;

    /** The materialized program of thread @p id (stable address). */
    const InstrSource &program(int id) const;

    /** "name+name+..." of the mix (labels and job keys). */
    std::string describe() const;

  private:
    std::vector<RunnableThread> threads_;

    /** unique_ptr keeps addresses stable across threads_ growth. */
    std::vector<std::unique_ptr<InstrSource>> programs_;
};

} // namespace p5

#endif // P5SIM_SCHED_WORKLOAD_HH
