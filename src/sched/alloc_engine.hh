/**
 * @file
 * AllocEngine: drives a Chip through an allocation study.
 *
 * The engine owns the time axis (quanta) and fairness; the Allocator
 * owns placement. Every quantum the engine
 *
 *  1. picks the *eligible* set — when the workload has more runnable
 *     threads than the chip has hardware contexts (M > 2N), the
 *     least-recently-scheduled up-to-2N threads run (round-robin
 *     fairness the allocator cannot override);
 *  2. asks the Allocator to place the eligible set;
 *  3. applies the assignment with detach/attach (a migrated thread
 *     restarts its synthetic program — the cold-start cost is the
 *     price of migration in this model);
 *  4. runs the chip for the quantum, sampling per-thread GCT occupancy
 *     a few times along the way;
 *  5. attributes committed instructions and L2 misses to runnable
 *     threads via per-slot *monotonic* stat counters baselined at the
 *     quantum start (the counters survive detach/attach, so
 *     attribution is migration-safe), feeds the samples into the
 *     history the symbiosis allocator scores from, and hands the
 *     attributed totals to the ChipConservation checker.
 */

#ifndef P5SIM_SCHED_ALLOC_ENGINE_HH
#define P5SIM_SCHED_ALLOC_ENGINE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "check/chip_checker.hh"
#include "common/annotate.hh"
#include "core/chip.hh"
#include "sched/alloc_result.hh"
#include "sched/allocator.hh"
#include "sched/sched_params.hh"
#include "sched/workload.hh"

namespace p5 {

/** Drives one Chip + Workload under one allocation policy. */
class AllocEngine
{
  public:
    /**
     * @param seed deterministic study seed (a SimJob rngSeed()); all
     *        allocator randomness derives from it.
     */
    AllocEngine(Chip &chip, const Workload &workload,
                const SchedParams &sched, std::uint64_t seed);

    /** Run @p cycles chip cycles' worth of quanta; composable. */
    P5_HOT_PATH AllocRunResult run(Cycle cycles);

    /** GCT-occupancy samples taken per quantum (chunked chip runs). */
    static constexpr int gct_samples_per_quantum = 8;

  private:
    /** Quantum-start baselines of the monotonic per-slot counters. */
    struct SlotBase
    {
        int tid = -1;
        std::uint64_t committed = 0;
        std::uint64_t beyondL2 = 0;
        double occSum = 0.0;
    };
    using BaseGrid = std::vector<std::array<SlotBase, num_hw_threads>>;

    // Control plane: runs once per quantum boundary, amortized over
    // sched.quantum cycles, and allocates by design (eligible sets,
    // placement vectors, migration restarts, history records). The
    // per-cycle work between boundaries stays on the chip's
    // zero-allocation busy path.
    P5_ALLOW(hot_path_no_alloc) std::vector<int> chooseEligible() const;
    P5_ALLOW(hot_path_no_alloc)
    Assignment decideQuantum(const std::vector<int> &eligible);
    int countMigrations(const Assignment &next,
                        const std::vector<int> &eligible) const;
    P5_ALLOW(hot_path_no_alloc) void applyAssignment(const Assignment &next);
    P5_ALLOW(hot_path_no_alloc)
    BaseGrid captureBaselines(const Assignment &next) const;
    P5_ALLOW(hot_path_no_alloc)
    void recordQuantum(Cycle quantum, const Assignment &next, int migrations,
                       const BaseGrid &base, int nsamp, AllocRunResult &res);
    P5_HOT_PATH void runQuantum(Cycle quantum, AllocRunResult &res);

    Chip &chip_;
    const Workload &workload_;
    SchedParams sched_;
    std::uint64_t seed_;
    std::unique_ptr<Allocator> allocator_;

    Assignment current_;
    bool haveCurrent_ = false;
    std::uint64_t quantumIndex_ = 0;

    /** 1 + index of the last quantum each runnable ran (0 = never). */
    std::vector<std::uint64_t> lastScheduled_;

    std::vector<ThreadHistory> history_;
    check::ChipConservation checker_;
};

} // namespace p5

#endif // P5SIM_SCHED_ALLOC_ENGINE_HH
