#include "sched/allocator.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"

namespace p5 {

void
ThreadHistory::push(const ThreadSample &s, int cap)
{
    samples.push_back(s);
    if (cap > 0 && samples.size() > static_cast<std::size_t>(cap))
        samples.erase(samples.begin(),
                      samples.end() - static_cast<std::ptrdiff_t>(cap));
}

ThreadSample
ThreadHistory::average() const
{
    ThreadSample avg;
    if (samples.empty())
        return avg;
    double occ = 0.0;
    for (const ThreadSample &s : samples) {
        avg.committed += s.committed;
        avg.l2Misses += s.l2Misses;
        avg.cycles += s.cycles;
        occ += s.gctOccupancy;
    }
    const auto n = static_cast<double>(samples.size());
    avg.committed = static_cast<std::uint64_t>(
        static_cast<double>(avg.committed) / n);
    avg.l2Misses = static_cast<std::uint64_t>(
        static_cast<double>(avg.l2Misses) / n);
    avg.cycles = static_cast<Cycle>(static_cast<double>(avg.cycles) / n);
    avg.gctOccupancy = occ / n;
    return avg;
}

Assignment
Assignment::empty(int num_cores)
{
    Assignment a;
    a.numCores = num_cores;
    for (auto &core : a.slot)
        core.fill(-1);
    return a;
}

Assignment
Assignment::pinned(const std::vector<int> &eligible, int num_cores)
{
    Assignment a = empty(num_cores);
    for (std::size_t k = 0; k < eligible.size(); ++k) {
        const auto c = k / num_hw_threads;
        const auto h = k % num_hw_threads;
        if (c >= static_cast<std::size_t>(num_cores))
            panic("Assignment::pinned: %zu eligible threads exceed %d "
                  "cores x %d contexts",
                  eligible.size(), num_cores, num_hw_threads);
        a.slot[c][h] = eligible[k];
    }
    return a;
}

int
Assignment::coreOf(int tid) const
{
    for (int c = 0; c < numCores; ++c)
        for (int h = 0; h < num_hw_threads; ++h)
            if (slot[static_cast<std::size_t>(c)]
                    [static_cast<std::size_t>(h)] == tid)
                return c;
    return -1;
}

bool
Assignment::operator==(const Assignment &o) const
{
    return numCores == o.numCores && slot == o.slot;
}

namespace {

/** Static placement: identical to the pre-scheduler dual-core path. */
class PinnedAllocator : public Allocator
{
  public:
    const char *name() const override { return "pinned"; }

    Assignment
    decide(const AllocContext &ctx) override
    {
        return Assignment::pinned(*ctx.eligible, ctx.numCores);
    }
};

/** Deterministic uniform re-pairing every quantum. */
class RandomAllocator : public Allocator
{
  public:
    const char *name() const override { return "random"; }

    Assignment
    decide(const AllocContext &ctx) override
    {
        std::vector<int> order = *ctx.eligible;
        // Seeded per (study, quantum): the shuffle depends only on what
        // is simulated, never on scheduling order or wall clock.
        Rng rng(hashCombine(ctx.seed, ctx.quantumIndex));
        for (std::size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1], order[rng.below(i)]);
        return Assignment::pinned(order, ctx.numCores);
    }
};

/**
 * SYNPA-style symbiosis predictor.
 *
 * Each core's predicted throughput is the pair's history IPC minus two
 * interference terms: co-missing beyond L2 (two streaming threads
 * fight over the shared backside) and GCT oversubscription (the
 * paper's Sec. 5 contention taxonomy). Note the raw IPC terms sum to
 * the same value for every way of pairing a fixed eligible set, so the
 * *penalties* are what distinguish pairings — a greedy
 * best-pair-first matcher is blind to that (it happily grabs the two
 * high-IPC threads and leaves the two streamers together). Instead
 * the allocator seeds from the previous assignment (or the static
 * packing) and hill-climbs with pairwise slot exchanges until no swap
 * improves the predicted chip throughput; a per-thread retention
 * bonus makes the search sticky so equivalent pairings don't thrash.
 */
class SymbiosisAllocator : public Allocator
{
  public:
    const char *name() const override { return "symbiosis"; }

    Assignment
    decide(const AllocContext &ctx) override
    {
        const std::vector<int> &elig = *ctx.eligible;

        // No history yet (first quantum): the static placement is as
        // good as any prediction.
        if (missingHistory(ctx))
            return Assignment::pinned(elig, ctx.numCores);

        cacheMetrics(ctx);
        Assignment cur = seed(ctx);

        // First-improvement pairwise exchange over slot coordinates.
        // Only the two touched cores' scores change per swap, so the
        // delta is cheap; the pass loop is bounded for determinism
        // and as a safety net (each accepted swap strictly raises the
        // total, so termination is guaranteed anyway).
        for (int pass = 0; pass < max_passes; ++pass) {
            bool improved = false;
            for (int c1 = 0; c1 < ctx.numCores; ++c1)
                for (int h1 = 0; h1 < num_hw_threads; ++h1)
                    for (int c2 = c1 + 1; c2 < ctx.numCores; ++c2)
                        for (int h2 = 0; h2 < num_hw_threads; ++h2)
                            improved |=
                                trySwap(ctx, cur, c1, h1, c2, h2);
            if (!improved)
                break;
        }
        return cur;
    }

  private:
    // Model constants (not config: they parameterize the predictor, not
    // the simulated machine).
    static constexpr double w_mem = 0.60;  ///< co-miss interference
    static constexpr double w_gct = 0.40;  ///< GCT oversubscription
    static constexpr double mpki_half = 10.0; ///< mpki normalization knee
    static constexpr double retain_eps = 0.01; ///< placement stability
    static constexpr int max_passes = 16;

    /** Averaged predictor inputs for one thread. */
    struct Metric
    {
        double ipc = 0.0;
        double mem = 0.0; ///< backside pressure in [0, 1)
        double occ = 0.0; ///< mean GCT groups held
    };

    std::vector<Metric> metric_;

    static bool
    missingHistory(const AllocContext &ctx)
    {
        for (int tid : *ctx.eligible)
            if ((*ctx.history)[static_cast<std::size_t>(tid)].empty())
                return true;
        return false;
    }

    void
    cacheMetrics(const AllocContext &ctx)
    {
        int max_id = 0;
        for (int tid : *ctx.eligible)
            max_id = std::max(max_id, tid);
        metric_.assign(static_cast<std::size_t>(max_id) + 1, Metric{});
        for (int tid : *ctx.eligible) {
            const ThreadSample s =
                (*ctx.history)[static_cast<std::size_t>(tid)].average();
            Metric &m = metric_[static_cast<std::size_t>(tid)];
            m.ipc = s.ipc();
            m.mem = s.l2MissesPerKiloInstr() /
                    (s.l2MissesPerKiloInstr() + mpki_half);
            m.occ = s.gctOccupancy;
        }
    }

    /**
     * Start from the previous assignment when it placed exactly this
     * eligible set (the common steady state; keeps the search sticky),
     * else from the static packing.
     */
    Assignment
    seed(const AllocContext &ctx) const
    {
        const Assignment *prev = ctx.previous;
        if (prev && prev->numCores == ctx.numCores) {
            std::vector<int> placed;
            for (int c = 0; c < prev->numCores; ++c)
                for (int h = 0; h < num_hw_threads; ++h) {
                    const int tid = prev->core(c)[static_cast<
                        std::size_t>(h)];
                    if (tid >= 0)
                        placed.push_back(tid);
                }
            std::sort(placed.begin(), placed.end());
            if (placed == *ctx.eligible)
                return *prev;
        }
        return Assignment::pinned(*ctx.eligible, ctx.numCores);
    }

    /** Predicted throughput of one core holding @p a and @p b
     *  (either may be -1 = empty context). */
    double
    coreScore(const AllocContext &ctx, int a, int b) const
    {
        if (a < 0 && b < 0)
            return 0.0;
        if (a < 0 || b < 0) {
            const int t = a < 0 ? b : a;
            return metric_[static_cast<std::size_t>(t)].ipc;
        }
        const Metric &ma = metric_[static_cast<std::size_t>(a)];
        const Metric &mb = metric_[static_cast<std::size_t>(b)];
        const double cap = std::max(1, ctx.gctCapacity);
        const double gct_over =
            std::max(0.0, ma.occ + mb.occ - cap) / cap;
        return ma.ipc + mb.ipc - w_mem * ma.mem * mb.mem -
               w_gct * gct_over;
    }

    /** Stability bonus: staying on the previous core has a value the
     *  counters can't see (warm L1/TLB; a move restarts the thread). */
    double
    retention(const AllocContext &ctx, int tid, int core) const
    {
        if (tid < 0 || !ctx.previous)
            return 0.0;
        return ctx.previous->coreOf(tid) == core ? retain_eps : 0.0;
    }

    /** Score of both cores a swap would touch, plus retention. */
    double
    localScore(const AllocContext &ctx, const Assignment &a, int c1,
               int c2) const
    {
        double s = 0.0;
        for (int c : {c1, c2}) {
            const auto &core = a.core(c);
            s += coreScore(ctx, core[0], core[1]);
            s += retention(ctx, core[0], c);
            s += retention(ctx, core[1], c);
        }
        return s;
    }

    /** Swap the occupants of (c1,h1) and (c2,h2) if that strictly
     *  improves the predicted throughput. */
    bool
    trySwap(const AllocContext &ctx, Assignment &a, int c1, int h1,
            int c2, int h2) const
    {
        auto &s1 = a.slot[static_cast<std::size_t>(c1)]
                         [static_cast<std::size_t>(h1)];
        auto &s2 = a.slot[static_cast<std::size_t>(c2)]
                         [static_cast<std::size_t>(h2)];
        if (s1 == s2) // both empty
            return false;
        const double before = localScore(ctx, a, c1, c2);
        std::swap(s1, s2);
        if (localScore(ctx, a, c1, c2) > before + 1e-9)
            return true;
        std::swap(s1, s2); // revert
        return false;
    }
};

} // namespace

std::unique_ptr<Allocator>
makeAllocator(AllocPolicy policy)
{
    switch (policy) {
      case AllocPolicy::Pinned:
        return std::make_unique<PinnedAllocator>();
      case AllocPolicy::Random:
        return std::make_unique<RandomAllocator>();
      case AllocPolicy::Symbiosis:
        return std::make_unique<SymbiosisAllocator>();
    }
    fatal("makeAllocator: bad policy %d", static_cast<int>(policy));
}

} // namespace p5
