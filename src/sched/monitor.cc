#include "sched/monitor.hh"

#include <string>

#include "common/log.hh"

namespace p5 {

QuantumMonitor::QuantumMonitor(SmtCore &core, Cycle quantum)
    : core_(core), quantum_(quantum), quantumStart_(core.cycle())
{
    if (quantum_ == 0)
        fatal("QuantumMonitor: quantum must be positive");
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        baseCommitted_[ti] = core_.thread(t).committedCtr.value();
        baseBeyondL2_[ti] = core_.hierarchy().beyondL2Of(t);
        const std::string ts = std::to_string(t);
        core_.stats().registerSeries("thread" + ts + ".symbiosis.ipc",
                                     &ipc_[ti]);
        core_.stats().registerSeries(
            "thread" + ts + ".symbiosis.l2Misses", &l2Misses_[ti]);
        core_.stats().registerSeries(
            "thread" + ts + ".symbiosis.gctOccupancy",
            &gctOccupancy_[ti]);
    }
}

void
QuantumMonitor::poll()
{
    for (ThreadId t = 0; t < num_hw_threads; ++t)
        occSum_[static_cast<std::size_t>(t)] +=
            core_.gct().occupancyOf(t);
    ++occPolls_;

    const Cycle now = core_.cycle();
    if (now - quantumStart_ >= quantum_)
        closeQuantum(now);
}

void
QuantumMonitor::closeQuantum(Cycle now)
{
    const Cycle elapsed = now - quantumStart_;
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        const std::uint64_t com = core_.thread(t).committedCtr.value();
        const std::uint64_t bl2 = core_.hierarchy().beyondL2Of(t);
        ipc_[ti].push_back(
            elapsed ? static_cast<double>(com - baseCommitted_[ti]) /
                          static_cast<double>(elapsed)
                    : 0.0);
        l2Misses_[ti].push_back(
            static_cast<double>(bl2 - baseBeyondL2_[ti]));
        gctOccupancy_[ti].push_back(
            occPolls_ ? occSum_[ti] / static_cast<double>(occPolls_)
                      : 0.0);
        baseCommitted_[ti] = com;
        baseBeyondL2_[ti] = bl2;
        occSum_[ti] = 0.0;
    }
    occPolls_ = 0;
    quantumStart_ = now;
    ++quanta_;
}

} // namespace p5
