/**
 * @file
 * QuantumMonitor: per-quantum symbiosis-input sampling for one core.
 *
 * Records, once per scheduler quantum, exactly the three inputs the
 * symbiosis allocator scores from — committed IPC, L2 misses (beyond-L2
 * accesses) and mean GCT occupancy, per hardware thread — and exposes
 * them as StatGroup series ("thread<t>.symbiosis.{ipc,l2Misses,
 * gctOccupancy}") so a plain `p5sim run` JSON dump carries everything
 * needed to replay an allocation decision offline (EXPERIMENTS.md).
 *
 * The monitor is a pure observer: poll it from a FameRunner chunk hook
 * (or any run loop); it never advances the core. Series registration
 * does not alter the scalar stat set (see StatGroup::registerSeries).
 */

#ifndef P5SIM_SCHED_MONITOR_HH
#define P5SIM_SCHED_MONITOR_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/smt_core.hh"

namespace p5 {

/** Samples one SmtCore's symbiosis inputs at quantum granularity. */
class QuantumMonitor
{
  public:
    /**
     * Registers the symbiosis series with @p core's StatGroup; the
     * monitor must outlive any dump of those stats.
     */
    QuantumMonitor(SmtCore &core, Cycle quantum);

    /**
     * Observe the core at its current cycle. Accumulates a GCT
     * occupancy sample; when at least a quantum has elapsed since the
     * last record, closes the quantum and appends one point per
     * series. Call at least a few times per quantum (a FAME chunk hook
     * with the default checkPeriod comfortably qualifies).
     */
    void poll();

    std::uint64_t quantaRecorded() const { return quanta_; }

    Cycle quantum() const { return quantum_; }

  private:
    void closeQuantum(Cycle now);

    SmtCore &core_;
    Cycle quantum_;
    Cycle quantumStart_;

    std::array<std::uint64_t, num_hw_threads> baseCommitted_{};
    std::array<std::uint64_t, num_hw_threads> baseBeyondL2_{};
    std::array<double, num_hw_threads> occSum_{};
    std::uint64_t occPolls_ = 0;
    std::uint64_t quanta_ = 0;

    std::array<std::vector<double>, num_hw_threads> ipc_;
    std::array<std::vector<double>, num_hw_threads> l2Misses_;
    std::array<std::vector<double>, num_hw_threads> gctOccupancy_;
};

} // namespace p5

#endif // P5SIM_SCHED_MONITOR_HH
