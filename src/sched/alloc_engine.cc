#include "sched/alloc_engine.hh"

#include <algorithm>

#include "common/log.hh"

namespace p5 {

AllocEngine::AllocEngine(Chip &chip, const Workload &workload,
                         const SchedParams &sched, std::uint64_t seed)
    : chip_(chip), workload_(workload), sched_(sched), seed_(seed),
      allocator_(makeAllocator(sched.policy)),
      current_(Assignment::empty(chip.numCores())), checker_(chip)
{
    sched_.validate();
    if (workload_.size() == 0)
        fatal("AllocEngine: empty workload");
    lastScheduled_.assign(static_cast<std::size_t>(workload_.size()), 0);
    history_.resize(static_cast<std::size_t>(workload_.size()));
}

std::vector<int>
AllocEngine::chooseEligible() const
{
    const int contexts = chip_.numCores() * num_hw_threads;
    std::vector<int> ids(static_cast<std::size_t>(workload_.size()));
    for (int i = 0; i < workload_.size(); ++i)
        ids[static_cast<std::size_t>(i)] = i;
    if (workload_.size() <= contexts)
        return ids;

    // Round-robin fairness: least-recently-scheduled first, id as the
    // deterministic tie-break; the allocator only places this set.
    std::sort(ids.begin(), ids.end(), [this](int a, int b) {
        const auto la = lastScheduled_[static_cast<std::size_t>(a)];
        const auto lb = lastScheduled_[static_cast<std::size_t>(b)];
        if (la != lb)
            return la < lb;
        return a < b;
    });
    ids.resize(static_cast<std::size_t>(contexts));
    std::sort(ids.begin(), ids.end());
    return ids;
}

void
AllocEngine::applyAssignment(const Assignment &next)
{
    // Detach first (a slot's occupant may move to another slot), then
    // attach changed slots. An unchanged slot is left alone — pinned
    // studies never detach after the first quantum, so they are
    // bit-identical to attaching once and running the chip directly.
    for (int c = 0; c < chip_.numCores(); ++c) {
        for (int h = 0; h < num_hw_threads; ++h) {
            const int prev = current_.core(c)[static_cast<std::size_t>(h)];
            const int want = next.core(c)[static_cast<std::size_t>(h)];
            if (prev != want && prev >= 0)
                chip_.core(c).detachThread(static_cast<ThreadId>(h));
        }
    }
    for (int c = 0; c < chip_.numCores(); ++c) {
        for (int h = 0; h < num_hw_threads; ++h) {
            const int prev = current_.core(c)[static_cast<std::size_t>(h)];
            const int want = next.core(c)[static_cast<std::size_t>(h)];
            if (prev != want && want >= 0) {
                const RunnableThread &rt = workload_.thread(want);
                chip_.core(c).attachThread(static_cast<ThreadId>(h),
                                           &workload_.program(want),
                                           rt.priority);
            }
        }
    }
}

Assignment
AllocEngine::decideQuantum(const std::vector<int> &eligible)
{
    AllocContext ctx;
    ctx.numCores = chip_.numCores();
    ctx.quantumIndex = quantumIndex_;
    ctx.seed = seed_;
    ctx.gctCapacity = chip_.core(0).params().gctGroups;
    ctx.eligible = &eligible;
    ctx.history = &history_;
    ctx.previous = haveCurrent_ ? &current_ : nullptr;

    const Assignment next = allocator_->decide(ctx);

    // Enforce the Allocator contract: exactly the eligible set, each
    // placed once.
    std::vector<int> placed;
    for (int c = 0; c < next.numCores; ++c)
        for (int h = 0; h < num_hw_threads; ++h) {
            const int tid = next.core(c)[static_cast<std::size_t>(h)];
            if (tid >= 0)
                placed.push_back(tid);
        }
    std::sort(placed.begin(), placed.end());
    if (placed != eligible)
        panic("allocator '%s' violated the placement contract at "
              "quantum %llu (placed %zu threads, eligible %zu)",
              allocator_->name(),
              static_cast<unsigned long long>(quantumIndex_),
              placed.size(), eligible.size());
    return next;
}

int
AllocEngine::countMigrations(const Assignment &next,
                             const std::vector<int> &eligible) const
{
    // Migrations: scheduled threads whose core changed.
    int migrations = 0;
    if (haveCurrent_) {
        for (int tid : eligible) {
            const int prev_core = current_.coreOf(tid);
            if (prev_core >= 0 && prev_core != next.coreOf(tid))
                ++migrations;
        }
    }
    return migrations;
}

AllocEngine::BaseGrid
AllocEngine::captureBaselines(const Assignment &next) const
{
    BaseGrid base(static_cast<std::size_t>(chip_.numCores()));
    for (int c = 0; c < chip_.numCores(); ++c)
        for (int h = 0; h < num_hw_threads; ++h) {
            SlotBase &sb = base[static_cast<std::size_t>(c)]
                               [static_cast<std::size_t>(h)];
            sb.tid = next.core(c)[static_cast<std::size_t>(h)];
            const auto t = static_cast<ThreadId>(h);
            sb.committed =
                chip_.core(c).thread(t).committedCtr.value();
            sb.beyondL2 = chip_.core(c).hierarchy().beyondL2Of(t);
        }
    return base;
}

void
AllocEngine::recordQuantum(Cycle quantum, const Assignment &next,
                           int migrations, const BaseGrid &base, int nsamp,
                           AllocRunResult &res)
{
    // Attribute the quantum's deltas to runnable threads.
    QuantumRecord rec;
    rec.index = quantumIndex_;
    rec.assignment = next;
    rec.migrations = migrations;
    rec.samples.resize(static_cast<std::size_t>(workload_.size()));
    std::uint64_t attributed = 0;
    for (int c = 0; c < chip_.numCores(); ++c)
        for (int h = 0; h < num_hw_threads; ++h) {
            const SlotBase &sb = base[static_cast<std::size_t>(c)]
                                     [static_cast<std::size_t>(h)];
            if (sb.tid < 0)
                continue;
            const auto t = static_cast<ThreadId>(h);
            ThreadSample s;
            s.committed =
                chip_.core(c).thread(t).committedCtr.value() -
                sb.committed;
            s.l2Misses =
                chip_.core(c).hierarchy().beyondL2Of(t) - sb.beyondL2;
            s.gctOccupancy = sb.occSum / nsamp;
            s.cycles = quantum;
            rec.samples[static_cast<std::size_t>(sb.tid)] = s;

            history_[static_cast<std::size_t>(sb.tid)].push(
                s, sched_.historyQuanta);
            lastScheduled_[static_cast<std::size_t>(sb.tid)] =
                quantumIndex_ + 1;

            AllocThreadTotals &tot =
                res.threads[static_cast<std::size_t>(sb.tid)];
            tot.committed += s.committed;
            tot.l2Misses += s.l2Misses;
            tot.cyclesScheduled += s.cycles;
            attributed += s.committed;
        }

    checker_.onQuantumBoundary(attributed);

    res.committed += attributed;
    res.migrations += static_cast<std::uint64_t>(migrations);
    ++res.quanta;
    if (res.log.size() < AllocRunResult::max_log_records)
        res.log.push_back(std::move(rec));
}

void
AllocEngine::runQuantum(Cycle quantum, AllocRunResult &res)
{
    // Control plane: choose, place, baseline (allocates; amortized
    // over the whole quantum — see the P5_ALLOW notes in the header).
    const std::vector<int> eligible = chooseEligible();
    const Assignment next = decideQuantum(eligible);
    const int migrations = countMigrations(next, eligible);

    applyAssignment(next);
    current_ = next;
    haveCurrent_ = true;

    BaseGrid base = captureBaselines(next);

    // Hot loop: run the quantum in chunks, sampling GCT occupancy at
    // each stop. Everything here rides the chip's zero-allocation
    // busy path.
    const int nsamp = static_cast<int>(std::min<Cycle>(
        gct_samples_per_quantum, std::max<Cycle>(quantum, 1)));
    Cycle remaining = quantum;
    for (int s = 0; s < nsamp; ++s) {
        const Cycle chunk = remaining / static_cast<Cycle>(nsamp - s);
        chip_.run(chunk);
        remaining -= chunk;
        for (int c = 0; c < chip_.numCores(); ++c)
            for (int h = 0; h < num_hw_threads; ++h)
                base[static_cast<std::size_t>(c)]
                    [static_cast<std::size_t>(h)]
                        .occSum += chip_.core(c).gct().occupancyOf(
                            static_cast<ThreadId>(h));
    }

    recordQuantum(quantum, next, migrations, base, nsamp, res);
    ++quantumIndex_;
}

AllocRunResult
AllocEngine::run(Cycle cycles)
{
    AllocRunResult res;
    // One-time result-shape setup, not per-quantum work.
    P5_ALLOW(hot_path_no_alloc)
    res.threads.resize(static_cast<std::size_t>(workload_.size()));

    // Baseline the conservation checker before the first quantum so
    // pre-study activity on a reused chip is never attributed here.
    checker_.onQuantumBoundary(0);

    const Cycle start = chip_.cycle();
    const Cycle end = saturatingAdd(start, cycles);
    while (chip_.cycle() < end) {
        const Cycle q =
            std::min<Cycle>(sched_.quantum, end - chip_.cycle());
        runQuantum(q, res);
    }

    res.cycles = chip_.cycle() - start;
    res.aggregateIpc =
        res.cycles > 0 ? static_cast<double>(res.committed) /
                             static_cast<double>(res.cycles)
                       : 0.0;
    res.checkViolations = checker_.violations();
    return res;
}

} // namespace p5
