#include "sched/workload.hh"

#include "common/log.hh"
#include "ubench/ubench.hh"

namespace p5 {

namespace {

std::vector<std::string>
splitNames(const std::string &text)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == ',') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

} // namespace

int
Workload::add(ProgramSpec spec, int priority)
{
    RunnableThread t;
    t.id = size();
    t.spec = spec;
    t.priority = priority;
    threads_.push_back(t);
    programs_.push_back(spec.build());
    return t.id;
}

Workload
Workload::fromMix(const std::string &mix, double scale)
{
    Workload w;
    for (const std::string &name : splitNames(mix)) {
        if (name.empty())
            fatal("workload mix '%s' has an empty benchmark name",
                  mix.c_str());
        w.add(ProgramSpec::ubench(ubenchFromName(name), scale));
    }
    return w;
}

const RunnableThread &
Workload::thread(int id) const
{
    if (id < 0 || id >= size())
        panic("Workload::thread(%d) out of range", id);
    return threads_[static_cast<std::size_t>(id)];
}

const InstrSource &
Workload::program(int id) const
{
    if (id < 0 || id >= size())
        panic("Workload::program(%d) out of range", id);
    return *programs_[static_cast<std::size_t>(id)];
}

std::string
Workload::describe() const
{
    std::string out;
    for (const RunnableThread &t : threads_) {
        if (!out.empty())
            out += '+';
        if (t.spec.kind == ProgramSpec::Kind::Ubench)
            out += ubenchName(static_cast<UbenchId>(t.spec.id));
        else if (t.spec.kind == ProgramSpec::Kind::Trace)
            out += t.spec.traceName;
        else
            out += t.spec.key();
    }
    return out;
}

} // namespace p5
