/**
 * @file
 * Allocator: the thread-to-core placement policy interface.
 *
 * Once per quantum the AllocEngine asks an Allocator where the
 * currently-eligible runnable threads should run. The allocator sees
 * per-thread counter history (committed IPC, L2 misses, GCT occupancy —
 * the SYNPA symbiosis inputs) and the previous placement, and returns an
 * Assignment mapping (core, hardware thread) slots to runnable ids.
 *
 * Contract (see DESIGN.md §10):
 *  - decide() must place *exactly* the threads in ctx.eligible, each
 *    once, and no others; slots beyond them stay empty (-1).
 *  - decide() must be a pure function of the AllocContext — any
 *    randomness comes from ctx.seed and ctx.quantumIndex, never from
 *    global state — so a study is reproducible from its config
 *    fingerprint alone.
 *  - The engine, not the allocator, owns time-multiplexing fairness:
 *    when more threads are runnable than the chip has hardware
 *    contexts, the engine picks which ones are eligible this quantum.
 */

#ifndef P5SIM_SCHED_ALLOCATOR_HH
#define P5SIM_SCHED_ALLOCATOR_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "core/chip.hh"
#include "sched/sched_params.hh"

namespace p5 {

/** One quantum's worth of counters for one runnable thread. */
struct ThreadSample
{
    /** Instructions committed over the quantum. */
    std::uint64_t committed = 0;

    /** Accesses that went beyond L2 (L2 misses) over the quantum. */
    std::uint64_t l2Misses = 0;

    /** Mean GCT groups held (sampled several times per quantum). */
    double gctOccupancy = 0.0;

    /** Cycles the thread was attached during the quantum. */
    Cycle cycles = 0;

    double
    ipc() const
    {
        return cycles > 0
            ? static_cast<double>(committed) / static_cast<double>(cycles)
            : 0.0;
    }

    double
    l2MissesPerKiloInstr() const
    {
        return committed > 0
            ? 1000.0 * static_cast<double>(l2Misses) /
                  static_cast<double>(committed)
            : 0.0;
    }
};

/** Bounded per-thread sample history, oldest first. */
struct ThreadHistory
{
    std::vector<ThreadSample> samples;

    bool empty() const { return samples.empty(); }

    /** Append @p s, discarding the oldest beyond @p cap samples. */
    void push(const ThreadSample &s, int cap);

    /** Component-wise mean over the stored samples (zeros if empty). */
    ThreadSample average() const;
};

/** A placement: runnable id per (core, hardware thread) slot, -1 empty. */
struct Assignment
{
    int numCores = 0;

    std::array<std::array<int, num_hw_threads>, max_cores> slot{};

    /** All-empty assignment over @p num_cores cores. */
    static Assignment empty(int num_cores);

    /**
     * The static placement: eligible[k] goes to core k/2, hardware
     * thread k%2, in eligible order.
     */
    static Assignment pinned(const std::vector<int> &eligible,
                             int num_cores);

    /** Core currently holding runnable @p tid, or -1. */
    int coreOf(int tid) const;

    /** Runnable ids on core @p c, co-runner first-slot first. */
    const std::array<int, num_hw_threads> &
    core(int c) const
    {
        return slot[static_cast<std::size_t>(c)];
    }

    bool operator==(const Assignment &o) const;
    bool operator!=(const Assignment &o) const { return !(*this == o); }
};

/** Everything an Allocator may look at when deciding. */
struct AllocContext
{
    int numCores = 0;

    /** 0-based index of the quantum being decided. */
    std::uint64_t quantumIndex = 0;

    /** Study-level deterministic seed (from the job's rngSeed()). */
    std::uint64_t seed = 0;

    /** Shared-GCT capacity in groups (CoreParams::gctGroups). */
    int gctCapacity = 0;

    /** Runnable ids to place this quantum (engine-chosen, sorted). */
    const std::vector<int> *eligible = nullptr;

    /** Per-runnable-id history; may be empty for fresh threads. */
    const std::vector<ThreadHistory> *history = nullptr;

    /** Last quantum's placement, or nullptr on the first quantum. */
    const Assignment *previous = nullptr;
};

/** The placement-policy interface. */
class Allocator
{
  public:
    virtual ~Allocator() = default;

    virtual const char *name() const = 0;

    /** Place ctx.eligible onto the chip (see contract above). */
    virtual Assignment decide(const AllocContext &ctx) = 0;
};

/** Factory over the AllocPolicy enum. */
std::unique_ptr<Allocator> makeAllocator(AllocPolicy policy);

} // namespace p5

#endif // P5SIM_SCHED_ALLOCATOR_HH
