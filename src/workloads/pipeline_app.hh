/**
 * @file
 * The FFT -> LU software pipeline of the paper's execution-time case
 * study (Sec. 5.4.1, Table 4).
 *
 * One thread runs an FFT over the next input while the sibling applies
 * an LU decomposition to the previous FFT's output; an iteration barrier
 * separates pipeline stages. The LU stage is much shorter, so it idles
 * at the barrier (the real application blocks in MPI receive, putting
 * the core in ST mode) — raising the FFT's priority shortens the
 * iteration until over-prioritization inverts the imbalance.
 */

#ifndef P5SIM_WORKLOADS_PIPELINE_APP_HH
#define P5SIM_WORKLOADS_PIPELINE_APP_HH

#include "core/smt_core.hh"
#include "program/program.hh"

namespace p5 {

/** Pipeline configuration. */
struct PipelineParams
{
    /** Priorities of the FFT (producer) and LU (consumer) threads. */
    int prioFft = default_priority;
    int prioLu = default_priority;

    /** Measured pipeline iterations (after one warm-up iteration). */
    int iterations = 6;

    /** Work multiplier for both stages. */
    double scale = 1.0;

    /** Cycle guard per iteration. */
    Cycle maxCyclesPerIteration = 50'000'000;
};

/** Timing of one run. */
struct PipelineResult
{
    /** Average busy time of each stage per iteration, in cycles. */
    double fftCycles = 0.0;
    double luCycles = 0.0;

    /** Average barrier-to-barrier iteration time, in cycles. */
    double iterationCycles = 0.0;

    bool hitCycleLimit = false;
};

/** Build the FFT stage program (one execution = one iteration). */
SyntheticProgram makeFftStage(double scale = 1.0);

/** Build the LU stage program (one execution = one iteration). */
SyntheticProgram makeLuStage(double scale = 1.0);

/** The pipeline driver. */
class PipelineApp
{
  public:
    explicit PipelineApp(const PipelineParams &params);

    /**
     * Run the two stages in SMT mode under the configured priorities.
     * A stage that reaches the barrier first is put to sleep (its
     * hardware thread shuts off, leaving the sibling in ST mode) until
     * the other arrives.
     */
    PipelineResult runSmt(const CoreParams &core_params) const;

    /**
     * Reference: run the two stages back-to-back on one thread
     * (the paper's "single-thread mode" row of Table 4).
     */
    PipelineResult runSingleThread(const CoreParams &core_params) const;

    const PipelineParams &params() const { return params_; }

  private:
    PipelineParams params_;
};

} // namespace p5

#endif // P5SIM_WORKLOADS_PIPELINE_APP_HH
