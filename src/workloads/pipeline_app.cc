#include "workloads/pipeline_app.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "program/builder.hh"

namespace p5 {

namespace {

constexpr RegIndex rIter = 1;
constexpr RegIndex rT0 = 3;
constexpr RegIndex fA = 32;
constexpr RegIndex fB = 33;
constexpr RegIndex fW = 34; // twiddle factor
constexpr RegIndex fT0 = 35;
constexpr RegIndex fT1 = 36;
constexpr RegIndex fV = 43;

std::uint64_t
scaledIters(std::uint64_t base, double scale)
{
    auto v = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(base) * scale));
    return std::max<std::uint64_t>(1, v);
}

} // namespace

SyntheticProgram
makeFftStage(double scale)
{
    // Radix-2 butterflies: strided loads (bit-reversed order defeats
    // L1, stays in L2), twiddle multiplies and cross-feeding adds.
    ProgramBuilder b("fft_stage");
    int back = b.alwaysTaken();
    constexpr int units = 8;
    b.beginPhase(scaledIters(700, scale));
    for (int s = 0; s < units; ++s) {
        const auto off = static_cast<std::uint64_t>(s) * 128;
        // Sequential butterflies: four consecutive iterations reuse a
        // fetched line before moving on (stride 32 within 128B lines),
        // as a real radix-2 pass over packed doubles does.
        int data = b.memPattern(0, units * 32, 512 * 1024, off);
        int twiddle =
            b.memPattern(1ULL << 28, units * 32, 32 * 1024, off);
        b.load(fV, data);
        b.load(fT0, twiddle);
        b.fpMul(fT1, fV, fW);
        b.fpAlu(fA, fA, fT1);
        b.fpAlu(fB, fB, fT0);
        b.store(data, fA);
        b.intAlu(rT0, rIter);
    }
    b.intAlu(rIter, rIter);
    b.branch(back);
    return b.build();
}

SyntheticProgram
makeLuStage(double scale)
{
    // Column elimination: FP multiply-subtract chains over a panel that
    // fits in L1; latency-bound like cpu_fp (moderate IPC).
    ProgramBuilder b("lu_stage");
    int back = b.alwaysTaken();
    constexpr int units = 12;
    b.beginPhase(scaledIters(180, scale));
    for (int s = 0; s < units; ++s) {
        const auto off = static_cast<std::uint64_t>(s) * 128;
        int panel = b.memPattern(0, units * 32, 16 * 1024, off);
        b.load(fV, panel);
        b.fpMul(fT0, fV, fB);
        b.fpAlu(fA, fA, fT0); // pivot-row accumulation chain
    }
    b.intAlu(rIter, rIter);
    b.branch(back);
    return b.build();
}

PipelineApp::PipelineApp(const PipelineParams &params) : params_(params)
{
    if (params_.iterations <= 0)
        fatal("pipeline needs at least one measured iteration");
    if (!isValidPriority(params_.prioFft) ||
        !isValidPriority(params_.prioLu))
        fatal("pipeline: invalid priorities (%d,%d)", params_.prioFft,
              params_.prioLu);
}

PipelineResult
PipelineApp::runSmt(const CoreParams &core_params) const
{
    const SyntheticProgram fft = makeFftStage(params_.scale);
    const SyntheticProgram lu = makeLuStage(params_.scale);

    SmtCore core(core_params);
    core.attachThread(0, &fft, params_.prioFft,
                      PrivilegeLevel::Supervisor);
    core.attachThread(1, &lu, params_.prioLu,
                      PrivilegeLevel::Supervisor);

    PipelineResult res;
    double fft_sum = 0.0;
    double lu_sum = 0.0;
    double iter_sum = 0.0;

    const int total_iters = params_.iterations + 1; // +1 warm-up
    Cycle iter_start = core.cycle();

    for (int iter = 0; iter < total_iters; ++iter) {
        const auto target = static_cast<std::uint64_t>(iter) + 1;
        bool fft_done = false;
        bool lu_done = false;
        Cycle fft_at = 0;
        Cycle lu_at = 0;
        const Cycle guard = core.cycle() + params_.maxCyclesPerIteration;

        while (!(fft_done && lu_done)) {
            if (core.cycle() >= guard) {
                res.hitCycleLimit = true;
                warn("pipeline iteration hit its cycle guard");
                break;
            }
            core.tick();
            if (!fft_done && core.executionsOf(0) >= target) {
                fft_done = true;
                fft_at = core.cycle();
                // Producer reached the barrier first: it blocks in MPI
                // send/receive, the kernel idles its hardware thread and
                // the consumer continues in ST mode.
                if (!lu_done)
                    core.setPriorityPair(0, params_.prioLu);
            }
            if (!lu_done && core.executionsOf(1) >= target) {
                lu_done = true;
                lu_at = core.cycle();
                if (!fft_done)
                    core.setPriorityPair(params_.prioFft, 0);
            }
        }

        // Barrier: both stages restart under the configured priorities.
        core.setPriorityPair(params_.prioFft, params_.prioLu);

        const Cycle iter_end = std::max(fft_at, lu_at);
        if (iter > 0) { // skip the pipeline-fill iteration
            fft_sum += static_cast<double>(fft_at - iter_start);
            lu_sum += static_cast<double>(lu_at - iter_start);
            iter_sum += static_cast<double>(iter_end - iter_start);
        }
        iter_start = iter_end;
        if (res.hitCycleLimit)
            break;
    }

    const double n = params_.iterations;
    res.fftCycles = fft_sum / n;
    res.luCycles = lu_sum / n;
    res.iterationCycles = iter_sum / n;
    return res;
}

PipelineResult
PipelineApp::runSingleThread(const CoreParams &core_params) const
{
    const SyntheticProgram fft = makeFftStage(params_.scale);
    const SyntheticProgram lu = makeLuStage(params_.scale);
    const auto reps = static_cast<std::uint64_t>(params_.iterations);

    PipelineResult res;

    // Skip the first (cold-cache) execution, like runSmt() skips its
    // pipeline-fill iteration.
    auto measure = [&](const SyntheticProgram &prog) {
        SmtCore core(core_params);
        core.attachThread(0, &prog, default_priority);
        if (!core.runUntilExecutions(0, reps + 1,
                                     (reps + 1) *
                                         params_.maxCyclesPerIteration))
            res.hitCycleLimit = true;
        Cycle first = 0;
        {
            // Re-derive the first execution boundary: run a twin core
            // for one execution only.
            SmtCore warm(core_params);
            warm.attachThread(0, &prog, default_priority);
            warm.runUntilExecutions(0, 1,
                                    params_.maxCyclesPerIteration);
            first = warm.lastExecutionCycleOf(0);
        }
        return (static_cast<double>(core.lastExecutionCycleOf(0)) -
                static_cast<double>(first)) /
               static_cast<double>(core.executionsOf(0) - 1);
    };
    res.fftCycles = measure(fft);
    res.luCycles = measure(lu);
    res.iterationCycles = res.fftCycles + res.luCycles;
    return res;
}

} // namespace p5
