/**
 * @file
 * Synthetic stand-ins for the SPEC benchmarks of the paper's throughput
 * case study (Sec. 5.3.1): 464.h264ref, 429.mcf, 173.applu, 183.equake.
 *
 * We do not have SPEC binaries or a POWER5 to run them on; each proxy
 * reproduces the *resource profile* the case study exploits — reported
 * SMT(4,4) IPCs of 0.920 / 0.144 / 0.500 / 0.140 and the bound class
 * (cpu-and-window-bound video encoder, pointer-chasing memory-bound
 * optimizer, FP loop nest, memory-heavy FP simulation). The case study
 * only depends on "high-IPC thread paired with low-IPC memory-bound
 * thread", which these preserve.
 */

#ifndef P5SIM_WORKLOADS_SPEC_PROXY_HH
#define P5SIM_WORKLOADS_SPEC_PROXY_HH

#include <string>
#include <vector>

#include "program/program.hh"

namespace p5 {

/** The four SPEC proxies used by the paper's case studies. */
enum class SpecProxyId
{
    H264ref,
    Mcf,
    Applu,
    Equake,
    NumProxies
};

constexpr int num_spec_proxies = static_cast<int>(SpecProxyId::NumProxies);

/** Paper name, e.g. "h264ref". */
const char *specProxyName(SpecProxyId id);

/** Reverse lookup; fatal() on unknown names. */
SpecProxyId specProxyFromName(const std::string &name);

/**
 * Build a proxy program.
 *
 * @param scale multiplies the work per execution (FAME repetition).
 */
SyntheticProgram makeSpecProxy(SpecProxyId id, double scale = 1.0);

} // namespace p5

#endif // P5SIM_WORKLOADS_SPEC_PROXY_HH
