#include "workloads/spec_proxy.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "program/builder.hh"

namespace p5 {

namespace {

constexpr RegIndex rA = 0;
constexpr RegIndex rIter = 1;
constexpr RegIndex rXi = 2;
constexpr RegIndex rT0 = 3;
constexpr RegIndex rT1 = 4;
constexpr RegIndex rV = 11;
constexpr RegIndex rPtr = 12;
constexpr RegIndex fA = 32;
constexpr RegIndex fB = 33;
constexpr RegIndex fT0 = 35;
constexpr RegIndex fT1 = 36;
constexpr RegIndex fV = 43;

std::uint64_t
scaledIters(std::uint64_t base, double scale)
{
    auto v = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(base) * scale));
    return std::max<std::uint64_t>(1, v);
}

/**
 * An "L2 ring": lines spaced one page apart so they collapse onto two
 * L1 sets (guaranteed L1 misses) while spreading across enough L2 sets
 * to stay L2-resident. Warm after one 128-access lap, touching only 128
 * pages — the proxy reaches steady state immediately instead of
 * streaming through megabytes of cold memory.
 */
int
l2Ring(ProgramBuilder &b, Addr base, int j)
{
    return b.memPattern(base, 4096, 512 * 1024,
                        static_cast<std::uint64_t>(j) * 128);
}

/**
 * An "L3 ring": lines spaced 128 KiB apart, which lands every access in
 * the same L2 set (32 lines >> 16 ways: guaranteed L2 misses) while the
 * L3 keeps the whole ring resident. 32 pages, warm after one lap.
 */
int
l3Ring(ProgramBuilder &b, Addr base, int j)
{
    return b.memPattern(base, 128 * 1024, 4 * 1024 * 1024,
                        static_cast<std::uint64_t>(j) * 256);
}

/**
 * h264ref: motion estimation / entropy coding — integer arithmetic with
 * well-predicted branches over hot (L1/L2) reference data. Window- and
 * decode-sensitive: co-running with a GCT-hogging memory thread
 * depresses it, prioritization recovers it, matching Fig. 5(a).
 */
SyntheticProgram
makeH264ref(double scale)
{
    ProgramBuilder b("h264ref");
    int back = b.alwaysTaken();
    constexpr int units = 12;
    b.beginPhase(scaledIters(20, scale));
    // SAD loops over reference frames: the current macroblock rows are
    // L2-resident; every fourth unit touches a reference-frame row that
    // streams from L3 (HD frames exceed L2). Latency is hidden by the
    // instruction window, which makes the encoder window-sensitive: a
    // GCT-hogging sibling depresses it and prioritization recovers it
    // (Fig. 5(a)).
    for (int s = 0; s < units; ++s) {
        int cur = l2Ring(b, 1ULL << 28, s);
        b.load(rT0, cur);
        if (s % 6 == 0) {
            b.load(rV, l3Ring(b, 0, s / 6)); // reference-frame rows
        } else {
            b.load(rV, l2Ring(b, 2ULL << 28, s));
        }
        b.intAlu(rT1, rV, rT0);
        b.intAlu(rA, rA, rT1);
        // Entropy-coding dependence chain: alternating multiply/add
        // accumulation caps the encoder's standalone IPC.
        if (s % 2 == 0)
            b.intMul(rA, rA, rXi);
        else
            b.intAlu(rA, rA, rXi);
        b.intAlu(rT0, rT1, rXi);
        b.branch(b.neverTaken(), rA);
    }
    b.intAlu(rIter, rIter);
    b.branch(back);
    return b.build();
}

/**
 * mcf: network-simplex pointer chasing — serially dependent loads whose
 * working set straddles L2 and L3. Memory-bound, priority-insensitive
 * on the gaining side but profitable to deprioritize.
 */
SyntheticProgram
makeMcf(double scale)
{
    ProgramBuilder b("mcf");
    int back = b.alwaysTaken();
    constexpr int units = 8;
    b.beginPhase(scaledIters(24, scale));
    for (int s = 0; s < units; ++s) {
        // Pointer chase through the arc array (L2-resident)...
        b.load(rPtr, l2Ring(b, 0, s), rPtr);
        b.intAlu(rT0, rPtr, rXi);
        b.intAlu(rA, rA, rT0);
        // ...with every other step chasing into the node data, which
        // spills to L3.
        if (s % 2 == 0)
            b.load(rV, l3Ring(b, 1ULL << 28, s / 2), rV);
        b.intAlu(rT1, rA, rXi);
    }
    b.intAlu(rIter, rIter);
    b.branch(back);
    return b.build();
}

/**
 * applu: SSOR loop nest — FP multiply/add chains over blocked data,
 * moderate IPC, mildly memory-sensitive.
 */
SyntheticProgram
makeApplu(double scale)
{
    ProgramBuilder b("applu");
    int back = b.alwaysTaken();
    constexpr int units = 16;
    b.beginPhase(scaledIters(24, scale));
    // SSOR sweeps: one operand panel is L2-resident, the wavefront
    // plane streams from L3; the window hides the latency, so a
    // GCT-hogging sibling depresses the loop and priority recovers it.
    for (int s = 0; s < units; ++s) {
        const int mem = s % 2 == 0 ? l3Ring(b, 1ULL << 28, s / 2)
                                   : l2Ring(b, 0, s);
        b.load(fV, mem);
        b.fpMul(fT0, fV, fB);
        b.fpAlu(fA, fA, fT0); // 6-cycle accumulation chain
        if (s % 4 == 3)
            b.fpMul(fT1, fT0, fB);
    }
    b.intAlu(rIter, rIter);
    b.branch(back);
    return b.build();
}

/**
 * equake: sparse matrix-vector FP — serially dependent loads into L3
 * with FP accumulation; low IPC, memory-bound.
 */
SyntheticProgram
makeEquake(double scale)
{
    ProgramBuilder b("equake");
    int back = b.alwaysTaken();
    constexpr int units = 8;
    b.beginPhase(scaledIters(16, scale));
    for (int s = 0; s < units; ++s) {
        // Column-index chase through L2-resident index arrays; every
        // fourth row's values spill to L3.
        b.load(rPtr, l2Ring(b, 1ULL << 28, s), rPtr);
        const int sparse = s % 4 == 0 ? l3Ring(b, 0, s / 4)
                                      : l2Ring(b, 2ULL << 28, s);
        b.load(fV, sparse, fV); // matrix values, serially dependent
        b.fpMul(fT0, fV, fB);
        b.fpAlu(fA, fA, fT0);
    }
    b.intAlu(rIter, rIter);
    b.branch(back);
    return b.build();
}

} // namespace

const char *
specProxyName(SpecProxyId id)
{
    switch (id) {
      case SpecProxyId::H264ref:
        return "h264ref";
      case SpecProxyId::Mcf:
        return "mcf";
      case SpecProxyId::Applu:
        return "applu";
      case SpecProxyId::Equake:
        return "equake";
      default:
        panic("specProxyName: bad id %d", static_cast<int>(id));
    }
}

SpecProxyId
specProxyFromName(const std::string &name)
{
    for (int i = 0; i < num_spec_proxies; ++i) {
        auto id = static_cast<SpecProxyId>(i);
        if (name == specProxyName(id))
            return id;
    }
    fatal("unknown SPEC proxy '%s'", name.c_str());
}

SyntheticProgram
makeSpecProxy(SpecProxyId id, double scale)
{
    switch (id) {
      case SpecProxyId::H264ref:
        return makeH264ref(scale);
      case SpecProxyId::Mcf:
        return makeMcf(scale);
      case SpecProxyId::Applu:
        return makeApplu(scale);
      case SpecProxyId::Equake:
        return makeEquake(scale);
      default:
        panic("makeSpecProxy: bad id %d", static_cast<int>(id));
    }
}

} // namespace p5
