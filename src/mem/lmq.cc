#include "mem/lmq.hh"

#include <algorithm>

#include "common/log.hh"

namespace p5 {

Lmq::Lmq(int entries) : capacity_(entries)
{
    if (entries <= 0)
        fatal("LMQ needs at least one entry");
    windows_.reserve(static_cast<std::size_t>(entries) * 2);
}

void
Lmq::recycle(Cycle now)
{
    std::erase_if(windows_,
                  [now](const Window &w) { return w.releaseCycle <= now; });
}

int
Lmq::overlapping(Cycle start_cycle, Cycle release_cycle) const
{
    int n = 0;
    for (const auto &w : windows_)
        if (w.startCycle < release_cycle && w.releaseCycle > start_cycle)
            ++n;
    return n;
}

Cycle
Lmq::reserve(ThreadId tid, Cycle now, Cycle start_cycle,
             Cycle release_cycle)
{
    recycle(now);
    if (release_cycle <= start_cycle)
        panic("LMQ window must have positive duration");

    const Cycle requested = start_cycle;
    while (overlapping(start_cycle, release_cycle) >=
           capacity_) {
        // Push the window to the earliest release among the windows
        // blocking it; each step retires at least one blocker, so the
        // loop terminates.
        Cycle next = never_cycle;
        for (const auto &w : windows_) {
            if (w.startCycle < release_cycle &&
                w.releaseCycle > start_cycle &&
                w.releaseCycle < next) {
                next = w.releaseCycle;
            }
        }
        if (next == never_cycle)
            panic("LMQ overflow with no blocking window");
        release_cycle += next - start_cycle;
        start_cycle = next;
    }

    if (start_cycle > requested) {
        ++queuedMisses_;
        queuedCycles_ += start_cycle - requested;
    }
    // windows_ is reserved to 2x the LMQ entry count at construction;
    // occupancy is bounded by the entry count, so no reallocation.
    P5_ALLOW(hot_path_no_alloc)
    windows_.push_back({tid, start_cycle, release_cycle});
    ++allocations_;
    return start_cycle;
}

void
Lmq::updateLastRelease(Cycle release_cycle)
{
    if (windows_.empty())
        panic("LMQ updateLastRelease with no windows");
    Window &w = windows_.back();
    if (release_cycle <= w.startCycle)
        panic("LMQ release before start");
    w.releaseCycle = release_cycle;
}

int
Lmq::occupancy(Cycle now)
{
    recycle(now);
    int n = 0;
    for (const auto &w : windows_)
        if (w.startCycle <= now)
            ++n;
    return n;
}

int
Lmq::occupancyOf(ThreadId tid, Cycle now)
{
    recycle(now);
    int n = 0;
    for (const auto &w : windows_)
        if (w.tid == tid && w.startCycle <= now)
            ++n;
    return n;
}

int
Lmq::busyAt(Cycle now) const
{
    int n = 0;
    for (const auto &w : windows_)
        if (w.startCycle <= now && w.releaseCycle > now)
            ++n;
    return n;
}

int
Lmq::busyOfAt(ThreadId tid, Cycle now) const
{
    int n = 0;
    for (const auto &w : windows_)
        if (w.tid == tid && w.startCycle <= now && w.releaseCycle > now)
            ++n;
    return n;
}

Cycle
Lmq::nextEventCycle(Cycle now) const
{
    Cycle next = never_cycle;
    for (const auto &w : windows_) {
        if (w.startCycle > now && w.startCycle < next)
            next = w.startCycle;
        if (w.releaseCycle > now && w.releaseCycle < next)
            next = w.releaseCycle;
    }
    return next;
}

void
Lmq::releaseThread(ThreadId tid)
{
    std::erase_if(windows_,
                  [tid](const Window &w) { return w.tid == tid; });
}

void
Lmq::reset()
{
    windows_.clear();
}

void
Lmq::registerStats(StatGroup &group) const
{
    group.registerCounter("lmq.allocations", &allocations_);
    group.registerCounter("lmq.queuedMisses", &queuedMisses_);
    group.registerCounter("lmq.queuedCycles", &queuedCycles_);
}

} // namespace p5
