/**
 * @file
 * Load-miss queue (LMQ / MSHR) model.
 *
 * POWER5's LMQ has eight entries shared by both threads; a load that
 * misses L1D needs an entry for the duration of the miss, which bounds
 * memory-level parallelism and creates contention between a memory-bound
 * thread and its sibling. The balancer watches per-thread occupancy as
 * its "too many outstanding L2 misses" signal.
 *
 * Entries are modeled as busy *windows* [start, release): a load whose
 * translation is still walking occupies its entry only once the cache
 * access begins (on real hardware the load is rejected and reissued
 * after the walk, holding no LMQ entry meanwhile). When all entries are
 * busy the new miss *queues*: its window is pushed back to the first
 * point where an entry frees.
 */

#ifndef P5SIM_MEM_LMQ_HH
#define P5SIM_MEM_LMQ_HH

#include <vector>

#include "common/annotate.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace p5 {

/** Shared load-miss queue with per-thread occupancy accounting. */
class Lmq
{
  public:
    explicit Lmq(int entries);

    /**
     * Reserve an entry for thread @p tid over [@p start_cycle,
     * @p release_cycle), queueing (delaying the window) while the queue
     * is full.
     *
     * @return the actual start cycle (>= start_cycle).
     */
    Cycle reserve(ThreadId tid, Cycle now, Cycle start_cycle,
                  Cycle release_cycle);

    /**
     * Adjust the release cycle of the most recently reserved window
     * (once the actual miss latency is known).
     */
    void updateLastRelease(Cycle release_cycle);

    /** Entries busy at @p now. */
    int occupancy(Cycle now);

    /** Entries of @p tid busy at @p now. */
    int occupancyOf(ThreadId tid, Cycle now);

    /**
     * Side-effect-free forms of occupancy()/occupancyOf() for
     * observers (p5check): count windows covering @p now without
     * recycling released entries.
     */
    int busyAt(Cycle now) const;
    int busyOfAt(ThreadId tid, Cycle now) const;

    /**
     * Earliest cycle after @p now at which occupancy can change (a
     * pending window starts or a busy one releases), or never_cycle.
     * Fast-forward next-event contract: busyAt()/busyOfAt() are
     * constant over (now, nextEventCycle(now)).
     */
    P5_PROBE_PURE Cycle nextEventCycle(Cycle now) const;

    /** Release everything belonging to @p tid (squash support). */
    void releaseThread(ThreadId tid);

    /** Release all entries. */
    void reset();

    int capacity() const { return capacity_; }
    std::uint64_t allocations() const { return allocations_.value(); }

    /** Misses that had to wait for a free entry. */
    std::uint64_t queuedMisses() const { return queuedMisses_.value(); }

    /** Total cycles misses spent waiting for entries. */
    std::uint64_t queuedCycles() const { return queuedCycles_.value(); }

    void registerStats(StatGroup &group) const;

    /** Serialize busy windows and counters. */
    void saveState(class CkptWriter &w) const;

    /** Restore state saved by saveState(); capacity must match. */
    void restoreState(class CkptReader &r);

  private:
    struct Window
    {
        ThreadId tid = 0;
        Cycle startCycle = 0;
        Cycle releaseCycle = 0;
    };

    void recycle(Cycle now);
    int overlapping(Cycle start_cycle, Cycle release_cycle) const;

    int capacity_;
    std::vector<Window> windows_;
    Counter allocations_;
    Counter queuedMisses_;
    Counter queuedCycles_;
};

} // namespace p5

#endif // P5SIM_MEM_LMQ_HH
