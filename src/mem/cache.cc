#include "mem/cache.hh"

#include <algorithm>

#include "common/log.hh"

namespace p5 {

namespace {

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheParams &params) : params_(params)
{
    if (params_.sizeBytes == 0 || params_.assoc <= 0 ||
        params_.lineBytes <= 0)
        fatal("cache '%s': bad geometry", params_.name.c_str());
    if (!isPowerOfTwo(params_.lineBytes))
        fatal("cache '%s': line size must be a power of two",
              params_.name.c_str());
    std::uint64_t lines = params_.sizeBytes /
                          static_cast<std::uint64_t>(params_.lineBytes);
    if (lines == 0 || lines % params_.assoc != 0)
        fatal("cache '%s': size/assoc/line mismatch", params_.name.c_str());
    numSets_ = lines / params_.assoc;
    if (!isPowerOfTwo(numSets_))
        fatal("cache '%s': set count must be a power of two",
              params_.name.c_str());
    lines_.resize(lines);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr / params_.lineBytes) & (numSets_ - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return (addr / params_.lineBytes) / numSets_;
}

bool
Cache::lookup(Addr addr)
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * params_.assoc];
    for (int w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUse = ++useClock_;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *base = &lines_[set * params_.assoc];
    for (int w = 0; w < params_.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::insert(Addr addr)
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * params_.assoc];

    // Already present: refresh recency only.
    for (int w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUse = ++useClock_;
            return;
        }
    }

    // Prefer an invalid way, else the LRU way.
    int victim = 0;
    for (int w = 0; w < params_.assoc; ++w) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lastUse < base[victim].lastUse)
            victim = w;
    }
    if (base[victim].valid)
        ++evictions_;
    base[victim].valid = true;
    base[victim].tag = tag;
    base[victim].lastUse = ++useClock_;
    ++insertions_;
}

void
Cache::invalidate(Addr addr)
{
    const std::uint64_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * params_.assoc];
    for (int w = 0; w < params_.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            base[w].valid = false;
}

void
Cache::flushAll()
{
    for (auto &line : lines_)
        line.valid = false;
    nextFree_ = 0;
}

Cycle
Cache::reserveService(Cycle now, Cycle ready)
{
    Cycle start = std::max(ready, nextFree_);
    // Consume one service slot in *request* order: a request that only
    // becomes serviceable far in the future must not hold the port idle
    // for everyone arriving in between.
    nextFree_ = std::min(start, std::max(now, nextFree_)) +
                static_cast<Cycle>(params_.serviceGap);
    return start;
}

void
Cache::registerStats(StatGroup &group) const
{
    group.registerCounter(params_.name + ".hits", &hits_);
    group.registerCounter(params_.name + ".misses", &misses_);
    group.registerCounter(params_.name + ".insertions", &insertions_);
    group.registerCounter(params_.name + ".evictions", &evictions_);
}

} // namespace p5
