/**
 * @file
 * Set-associative cache model with true-LRU replacement.
 *
 * p5sim uses a latency model rather than a message-passing memory system:
 * a lookup tells you whether the line is present (updating recency), an
 * insert victimizes the LRU way, and a per-cache service-bandwidth gate
 * (minimum gap between serviced requests) models port/bank contention —
 * which is what makes two co-running memory-bound threads slow each other
 * down as in the paper's Table 3.
 */

#ifndef P5SIM_MEM_CACHE_HH
#define P5SIM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/annotate.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace p5 {

/** Geometry and timing of one cache level. */
struct P5_CONFIG_STRUCT CacheParams
{
    // Display label, not simulated state: set per level by
    // HierarchyParams, never a config path of its own.
    P5_ALLOW(config_completeness) std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    int assoc = 4;
    int lineBytes = 128;
    int hitLatency = 2;

    /**
     * Minimum number of cycles between two requests *serviced by* this
     * level (i.e. misses from above that hit here). Models limited
     * fill/port bandwidth.
     */
    int serviceGap = 1;
};

/** One level of set-associative cache. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up @p addr; on a hit the line becomes most-recently-used.
     *
     * @return true on hit.
     */
    bool lookup(Addr addr);

    /** True iff @p addr is present; does not touch recency or stats. */
    bool probe(Addr addr) const;

    /** Insert the line containing @p addr, evicting LRU if needed. */
    void insert(Addr addr);

    /** Invalidate the line containing @p addr if present. */
    void invalidate(Addr addr);

    /** Drop all lines and reset the bandwidth gate (not the stats). */
    void flushAll();

    /**
     * Reserve a service slot for a request issued at @p now that
     * becomes serviceable at @p ready (>= now when the requester is
     * still translating); returns the cycle service actually starts.
     * Capacity is consumed in request order, so a far-future request
     * cannot block earlier ones.
     */
    Cycle reserveService(Cycle now, Cycle ready);

    const CacheParams &params() const { return params_; }
    std::uint64_t numSets() const { return numSets_; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t insertions() const { return insertions_.value(); }
    std::uint64_t evictions() const { return evictions_.value(); }

    /** Register this cache's statistics into @p group. */
    void registerStats(StatGroup &group) const;

    /** Serialize lines, recency clock, bandwidth gate and counters. */
    void saveState(class CkptWriter &w) const;

    /** Restore state saved by saveState(); geometry must match. */
    void restoreState(class CkptReader &r);

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheParams params_;
    std::uint64_t numSets_;
    std::vector<Line> lines_; // numSets_ * assoc, row-major by set
    std::uint64_t useClock_ = 0;
    Cycle nextFree_ = 0;

    Counter hits_;
    Counter misses_;
    Counter insertions_;
    Counter evictions_;
};

} // namespace p5

#endif // P5SIM_MEM_CACHE_HH
