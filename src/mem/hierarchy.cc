#include "mem/hierarchy.hh"

#include <algorithm>

#include "common/log.hh"

namespace p5 {

const char *
memLevelName(MemLevel level)
{
    switch (level) {
      case MemLevel::L1:
        return "L1";
      case MemLevel::L2:
        return "L2";
      case MemLevel::L3:
        return "L3";
      case MemLevel::Mem:
        return "Mem";
      default:
        panic("memLevelName: bad level %d", static_cast<int>(level));
    }
}

MemBackside::MemBackside(const HierarchyParams &params)
    : params_(params), l2_(params.l2), l3_(params.l3)
{
}

MemAccessResult
MemBackside::access(Addr addr, Cycle now, Cycle ready, bool *beyond_l2)
{
    MemAccessResult res;
    *beyond_l2 = false;

    if (l2_.lookup(addr)) {
        res.level = MemLevel::L2;
        Cycle start = l2_.reserveService(now, ready);
        res.doneCycle = start + static_cast<Cycle>(params_.l2.hitLatency);
        return res;
    }
    *beyond_l2 = true;

    if (l3_.lookup(addr)) {
        res.level = MemLevel::L3;
        Cycle start = l3_.reserveService(now, ready);
        res.doneCycle = start + static_cast<Cycle>(params_.l3.hitLatency);
        l2_.insert(addr);
        return res;
    }

    res.level = MemLevel::Mem;
    Cycle start = std::max(ready, dramNextFree_);
    // As in Cache::reserveService: consume DRAM bandwidth in request
    // order so future-scheduled accesses don't block earlier ones.
    dramNextFree_ = std::min(start, std::max(now, dramNextFree_)) +
                    static_cast<Cycle>(params_.dramServiceGap);
    res.doneCycle = start + static_cast<Cycle>(params_.dramLatency);
    l3_.insert(addr);
    l2_.insert(addr);
    return res;
}

MemLevel
MemBackside::probeLevel(Addr addr) const
{
    if (l2_.probe(addr))
        return MemLevel::L2;
    if (l3_.probe(addr))
        return MemLevel::L3;
    return MemLevel::Mem;
}

void
MemBackside::flushAll()
{
    l2_.flushAll();
    l3_.flushAll();
    dramNextFree_ = 0;
}

void
MemBackside::registerStats(StatGroup &group) const
{
    l2_.registerStats(group);
    l3_.registerStats(group);
}

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               MemBackside *shared)
    : params_(params), l1d_(params.l1d)
{
    if (shared) {
        backside_ = shared;
    } else {
        ownedBackside_ = std::make_unique<MemBackside>(params);
        backside_ = ownedBackside_.get();
    }
    for (int t = 0; t < num_hw_threads; ++t) {
        TlbParams tp = params.tlb;
        tp.name = tp.name + std::to_string(t);
        tlbs_[static_cast<size_t>(t)] = std::make_unique<Tlb>(tp);
    }
}

MemAccessResult
CacheHierarchy::access(ThreadId tid, Addr addr, bool is_store, Cycle now)
{
    auto &tlb = *tlbs_[static_cast<size_t>(tid)];

    Cycle t = now;
    bool tlb_miss = false;
    TlbResult tr = tlb.access(addr);
    if (!tr.hit) {
        tlb_miss = true;
        ++tlbMisses_[static_cast<size_t>(tid)];
        t += static_cast<Cycle>(tr.latency);
    }

    MemAccessResult res = accessCaches(tid, addr, is_store, now, t);
    res.tlbMiss = tlb_miss;
    return res;
}

MemAccessResult
CacheHierarchy::accessCaches(ThreadId tid, Addr addr, bool is_store,
                             Cycle now, Cycle ready)
{
    (void)is_store; // write-allocate: stores follow the load path

    if (l1d_.lookup(addr)) {
        MemAccessResult res;
        res.level = MemLevel::L1;
        res.doneCycle =
            ready + static_cast<Cycle>(params_.l1d.hitLatency);
        return res;
    }
    ++l1Misses_[static_cast<size_t>(tid)];

    bool beyond_l2 = false;
    MemAccessResult res = backside_->access(addr, now, ready, &beyond_l2);
    if (beyond_l2)
        ++beyondL2_[static_cast<size_t>(tid)];
    l1d_.insert(addr);
    return res;
}

MemLevel
CacheHierarchy::probeLevel(Addr addr) const
{
    if (l1d_.probe(addr))
        return MemLevel::L1;
    return backside_->probeLevel(addr);
}

bool
CacheHierarchy::wouldTlbMiss(ThreadId tid, Addr addr) const
{
    return !tlbs_[static_cast<size_t>(tid)]->probe(addr);
}

void
CacheHierarchy::flushAll()
{
    l1d_.flushAll();
    backside_->flushAll();
    for (auto &tlb : tlbs_)
        tlb->flushAll();
}

void
CacheHierarchy::registerStats(StatGroup &group) const
{
    l1d_.registerStats(group);
    if (ownedBackside_)
        ownedBackside_->registerStats(group);
    for (int t = 0; t < num_hw_threads; ++t) {
        auto ts = std::to_string(t);
        tlbs_[static_cast<size_t>(t)]->registerStats(group);
        group.registerCounter("thread" + ts + ".tlbMisses",
                              &tlbMisses_[static_cast<size_t>(t)]);
        group.registerCounter("thread" + ts + ".l1Misses",
                              &l1Misses_[static_cast<size_t>(t)]);
        group.registerCounter("thread" + ts + ".beyondL2",
                              &beyondL2_[static_cast<size_t>(t)]);
    }
}

} // namespace p5
