/**
 * @file
 * Cache hierarchy: per-core L1D + D-TLBs in front of a (possibly shared)
 * L2/L3/DRAM backside.
 *
 * POWER5-ish defaults: 32 KiB 4-way L1D (2 cycles), 1.875 MiB 10-way L2
 * (13 cycles), 36 MiB 12-way L3 (87 cycles), DRAM at 230 cycles. On the
 * real chip L2, L3 and memory are shared by both cores; p5sim models that
 * by letting two CacheHierarchy front-ends share one MemBackside. Each
 * level below L1 has a service-bandwidth gate, so co-running memory-bound
 * threads contend — the effect behind the paper's Table 3 degradations.
 */

#ifndef P5SIM_MEM_HIERARCHY_HH
#define P5SIM_MEM_HIERARCHY_HH

#include <array>
#include <memory>

#include "common/annotate.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/cache.hh"
#include "mem/tlb.hh"

namespace p5 {

/** The level that serviced a memory access. */
enum class MemLevel : std::uint8_t { L1, L2, L3, Mem };

/** Human-readable level name. */
const char *memLevelName(MemLevel level);

/** Hierarchy configuration. */
struct P5_CONFIG_STRUCT HierarchyParams
{
    CacheParams l1d{"l1d", 32 * 1024, 4, 128, 2, 1};
    CacheParams l2{"l2", 2 * 1024 * 1024, 16, 128, 13, 4};
    CacheParams l3{"l3", 32 * 1024 * 1024, 16, 256, 87, 10};
    TlbParams tlb{"dtlb", 1024, 4, 4096, 150};
    int dramLatency = 230;
    int dramServiceGap = 24;
};

/** Timing outcome of one data access. */
struct MemAccessResult
{
    /** Cycle the data is available (load) / the access retires (store). */
    Cycle doneCycle = 0;
    MemLevel level = MemLevel::L1;
    bool tlbMiss = false;
};

/**
 * The L2/L3/DRAM side of the memory system, shared chip-wide.
 */
class MemBackside
{
  public:
    explicit MemBackside(const HierarchyParams &params);

    /**
     * Service an L1 miss issued at @p now that becomes serviceable at
     * @p ready (>= now; later when translation is still walking).
     *
     * @param beyond_l2 set to true when L2 missed too.
     */
    MemAccessResult access(Addr addr, Cycle now, Cycle ready,
                           bool *beyond_l2);

    /** Level that @p addr would hit below L1; no side effects. */
    MemLevel probeLevel(Addr addr) const;

    /** Drop all cached state and bandwidth gates (not stats). */
    void flushAll();

    Cache &l2() { return l2_; }
    Cache &l3() { return l3_; }

    void registerStats(StatGroup &group) const;

    /** Serialize L2/L3 contents and the DRAM bandwidth gate. */
    void saveState(class CkptWriter &w) const;

    /** Restore state saved by saveState(); geometry must match. */
    void restoreState(class CkptReader &r);

  private:
    HierarchyParams params_;
    Cache l2_;
    Cache l3_;
    Cycle dramNextFree_ = 0;
};

/** The per-core front-end (L1D + per-thread D-TLBs) of the hierarchy. */
class CacheHierarchy
{
  public:
    /**
     * @param shared backside to share with other cores, or nullptr to
     *        own a private one.
     */
    explicit CacheHierarchy(const HierarchyParams &params,
                            MemBackside *shared = nullptr);

    /**
     * Perform a data access for thread @p tid at cycle @p now.
     *
     * Fills all levels on the way back (inclusive hierarchy) and charges
     * TLB-walk and service-bandwidth delays. (The core's LSU uses
     * accessCaches() instead and arbitrates walks itself.)
     */
    MemAccessResult access(ThreadId tid, Addr addr, bool is_store,
                           Cycle now);

    /**
     * Cache-only access path (no TLB): the request is issued at @p now
     * and becomes serviceable at @p ready. Used by the LSU, which
     * handles translation and the shared table-walk engine itself.
     */
    MemAccessResult accessCaches(ThreadId tid, Addr addr, bool is_store,
                                 Cycle now, Cycle ready);

    /** Level that @p addr would hit, with no side effects on state. */
    MemLevel probeLevel(Addr addr) const;

    /** Whether the next access by @p tid to @p addr would miss the TLB. */
    bool wouldTlbMiss(ThreadId tid, Addr addr) const;

    /** Drop all cached state (lines, TLB entries, bandwidth gates). */
    void flushAll();

    Cache &l1d() { return l1d_; }
    const Cache &l1d() const { return l1d_; }
    MemBackside &backside() { return *backside_; }
    Tlb &tlb(ThreadId tid) { return *tlbs_[static_cast<size_t>(tid)]; }

    const HierarchyParams &params() const { return params_; }

    /** Per-thread event counts, used by the balancer and stats. */
    std::uint64_t
    tlbMissesOf(ThreadId tid) const
    {
        return tlbMisses_[static_cast<size_t>(tid)].value();
    }
    std::uint64_t
    l1MissesOf(ThreadId tid) const
    {
        return l1Misses_[static_cast<size_t>(tid)].value();
    }
    /** Accesses that missed in L2 (serviced by L3 or DRAM). */
    std::uint64_t
    beyondL2Of(ThreadId tid) const
    {
        return beyondL2_[static_cast<size_t>(tid)].value();
    }

    void registerStats(StatGroup &group) const;

    /**
     * Serialize L1D, both TLBs, the per-thread miss counters and the
     * backside through backside_. @pre the backside is private to this
     * hierarchy (checkpointing rejects shared-backside chips).
     */
    void saveState(class CkptWriter &w) const;

    /** Restore state saved by saveState(); geometry must match. */
    void restoreState(class CkptReader &r);

  private:
    HierarchyParams params_;
    Cache l1d_;
    std::array<std::unique_ptr<Tlb>, num_hw_threads> tlbs_;
    std::unique_ptr<MemBackside> ownedBackside_;
    MemBackside *backside_;

    std::array<Counter, num_hw_threads> tlbMisses_;
    std::array<Counter, num_hw_threads> l1Misses_;
    std::array<Counter, num_hw_threads> beyondL2_;
};

} // namespace p5

#endif // P5SIM_MEM_HIERARCHY_HH
