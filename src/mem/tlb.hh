/**
 * @file
 * Per-thread data TLB model.
 *
 * A miss costs a table walk (latency configured in TlbParams). The paper's
 * ldint_mem benchmark strides across pages, so its DRAM misses are
 * compounded by walks — one of the reasons its measured IPC is as low as
 * 0.02 — and the POWER5 balancer uses TLB-miss thresholds as one of its
 * unbalance triggers (Sec. 3.1).
 */

#ifndef P5SIM_MEM_TLB_HH
#define P5SIM_MEM_TLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/annotate.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace p5 {

/** TLB geometry and timing. */
struct P5_CONFIG_STRUCT TlbParams
{
    // Display label, not simulated state (see CacheParams::name).
    P5_ALLOW(config_completeness) std::string name = "dtlb";
    int entries = 1024;
    int assoc = 4;
    std::uint64_t pageBytes = 4096;
    int walkLatency = 150;
};

/** Result of a TLB access. */
struct TlbResult
{
    bool hit = true;
    int latency = 0; ///< extra cycles (0 on hit, walkLatency on miss)
};

/** Set-associative TLB with LRU replacement. */
class Tlb
{
  public:
    explicit Tlb(const TlbParams &params);

    /** Translate @p addr: fills on miss and charges the walk. */
    TlbResult access(Addr addr);

    /** True iff the page of @p addr is cached; no side effects. */
    bool probe(Addr addr) const;

    /** Drop all entries (e.g. on a context switch). */
    void flushAll();

    const TlbParams &params() const { return params_; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    void registerStats(StatGroup &group) const;

    /** Serialize entries, recency clock and counters. */
    void saveState(class CkptWriter &w) const;

    /** Restore state saved by saveState(); geometry must match. */
    void restoreState(class CkptReader &r);

  private:
    struct Entry
    {
        std::uint64_t vpn = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::uint64_t setIndex(std::uint64_t vpn) const;

    TlbParams params_;
    std::uint64_t numSets_;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;

    Counter hits_;
    Counter misses_;
};

} // namespace p5

#endif // P5SIM_MEM_TLB_HH
