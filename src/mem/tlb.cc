#include "mem/tlb.hh"

#include "common/log.hh"

namespace p5 {

Tlb::Tlb(const TlbParams &params) : params_(params)
{
    if (params_.entries <= 0 || params_.assoc <= 0 ||
        params_.entries % params_.assoc != 0)
        fatal("tlb '%s': bad geometry", params_.name.c_str());
    if (params_.pageBytes == 0 ||
        (params_.pageBytes & (params_.pageBytes - 1)) != 0)
        fatal("tlb '%s': page size must be a power of two",
              params_.name.c_str());
    numSets_ = static_cast<std::uint64_t>(params_.entries / params_.assoc);
    if ((numSets_ & (numSets_ - 1)) != 0)
        fatal("tlb '%s': set count must be a power of two",
              params_.name.c_str());
    entries_.resize(static_cast<std::size_t>(params_.entries));
}

std::uint64_t
Tlb::setIndex(std::uint64_t vpn) const
{
    return vpn & (numSets_ - 1);
}

TlbResult
Tlb::access(Addr addr)
{
    const std::uint64_t vpn = addr / params_.pageBytes;
    const std::uint64_t set = setIndex(vpn);
    Entry *base = &entries_[set * params_.assoc];

    for (int w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].vpn == vpn) {
            base[w].lastUse = ++useClock_;
            ++hits_;
            return {true, 0};
        }
    }

    // Miss: walk, then install over invalid/LRU.
    ++misses_;
    int victim = 0;
    for (int w = 0; w < params_.assoc; ++w) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lastUse < base[victim].lastUse)
            victim = w;
    }
    base[victim].valid = true;
    base[victim].vpn = vpn;
    base[victim].lastUse = ++useClock_;
    return {false, params_.walkLatency};
}

bool
Tlb::probe(Addr addr) const
{
    const std::uint64_t vpn = addr / params_.pageBytes;
    const std::uint64_t set = setIndex(vpn);
    const Entry *base = &entries_[set * params_.assoc];
    for (int w = 0; w < params_.assoc; ++w)
        if (base[w].valid && base[w].vpn == vpn)
            return true;
    return false;
}

void
Tlb::flushAll()
{
    for (auto &e : entries_)
        e.valid = false;
}

void
Tlb::registerStats(StatGroup &group) const
{
    group.registerCounter(params_.name + ".hits", &hits_);
    group.registerCounter(params_.name + ".misses", &misses_);
}

} // namespace p5
