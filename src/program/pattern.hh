/**
 * @file
 * Memory-access and branch-direction patterns for synthetic programs.
 *
 * Patterns are pure functions of the dynamic execution count of the static
 * instruction they are attached to. This is what makes the instruction
 * stream rewindable after a pipeline squash: re-materializing instruction
 * @c k always yields the same address / direction.
 */

#ifndef P5SIM_PROGRAM_PATTERN_HH
#define P5SIM_PROGRAM_PATTERN_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace p5 {

/**
 * Strided memory-access pattern over a bounded footprint.
 *
 * The k-th dynamic access touches
 *   base + ((start + k * stride) mod footprint)
 * so the touched working set is exactly @c footprint bytes. Choosing
 * footprint relative to the cache sizes targets a hit level (the paper's
 * ldint_l1 / ldint_l2 / ldint_mem), and choosing stride relative to the
 * line and page sizes controls spatial locality and TLB behaviour.
 */
struct MemPattern
{
    Addr base = 0;
    std::uint64_t stride = 8;
    std::uint64_t footprint = 4096;
    std::uint64_t start = 0;

    /** Effective address of the k-th dynamic access. */
    Addr
    addressAt(std::uint64_t k) const
    {
        return base + (start + k * stride) % footprint;
    }
};

/** Kinds of branch-direction behaviour. */
enum class BranchKind : std::uint8_t
{
    AlwaysTaken,  ///< e.g. a loop back-edge
    NeverTaken,
    Periodic,     ///< taken once every @c period executions
    Random        ///< taken with probability @c takenProb (hashed, stable)
};

/**
 * Branch-direction pattern.
 *
 * Random directions are derived from hashMix(seed, k) so they are a pure
 * function of the execution count — required for squash/rewind, and it is
 * also what makes br_miss defeat the bimodal BHT just like the paper's
 * "a filled randomly (modulo 2)" array does.
 */
struct BranchPattern
{
    BranchKind kind = BranchKind::AlwaysTaken;
    std::uint32_t period = 1;
    double takenProb = 0.5;
    std::uint64_t seed = 1;

    /** Actual direction of the k-th dynamic execution. */
    bool directionAt(std::uint64_t k) const;

    /** Human-readable description ("random p=0.50", ...). */
    std::string toString() const;
};

} // namespace p5

#endif // P5SIM_PROGRAM_PATTERN_HH
