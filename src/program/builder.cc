#include "program/builder.hh"

#include "common/log.hh"

namespace p5 {

int
ProgramBuilder::memPattern(Addr base, std::uint64_t stride,
                           std::uint64_t footprint, std::uint64_t start)
{
    if (footprint == 0)
        fatal("program '%s': zero-size memory footprint", name_.c_str());
    MemPattern p;
    p.base = base;
    p.stride = stride;
    p.footprint = footprint;
    p.start = start;
    memPatterns_.push_back(p);
    return static_cast<int>(memPatterns_.size()) - 1;
}

int
ProgramBuilder::branchPattern(const BranchPattern &p)
{
    branchPatterns_.push_back(p);
    return static_cast<int>(branchPatterns_.size()) - 1;
}

int
ProgramBuilder::alwaysTaken()
{
    BranchPattern p;
    p.kind = BranchKind::AlwaysTaken;
    return branchPattern(p);
}

int
ProgramBuilder::neverTaken()
{
    BranchPattern p;
    p.kind = BranchKind::NeverTaken;
    return branchPattern(p);
}

int
ProgramBuilder::randomBranch(double taken_prob, std::uint64_t seed)
{
    BranchPattern p;
    p.kind = BranchKind::Random;
    p.takenProb = taken_prob;
    p.seed = seed;
    return branchPattern(p);
}

void
ProgramBuilder::beginPhase(std::uint64_t iterations)
{
    ProgramPhase phase;
    phase.iterations = iterations;
    phases_.push_back(std::move(phase));
}

void
ProgramBuilder::requirePhase() const
{
    if (phases_.empty())
        fatal("program '%s': instruction appended before beginPhase()",
              name_.c_str());
}

void
ProgramBuilder::append(const StaticInstr &si)
{
    requirePhase();
    phases_.back().body.push_back(si);
}

ProgramBuilder &
ProgramBuilder::intAlu(RegIndex dst, RegIndex s0, RegIndex s1)
{
    StaticInstr si;
    si.op = OpClass::IntAlu;
    si.dst = dst;
    si.src0 = s0;
    si.src1 = s1;
    append(si);
    return *this;
}

ProgramBuilder &
ProgramBuilder::intMul(RegIndex dst, RegIndex s0, RegIndex s1)
{
    StaticInstr si;
    si.op = OpClass::IntMul;
    si.dst = dst;
    si.src0 = s0;
    si.src1 = s1;
    append(si);
    return *this;
}

ProgramBuilder &
ProgramBuilder::intDiv(RegIndex dst, RegIndex s0, RegIndex s1)
{
    StaticInstr si;
    si.op = OpClass::IntDiv;
    si.dst = dst;
    si.src0 = s0;
    si.src1 = s1;
    append(si);
    return *this;
}

ProgramBuilder &
ProgramBuilder::fpAlu(RegIndex dst, RegIndex s0, RegIndex s1)
{
    StaticInstr si;
    si.op = OpClass::FpAlu;
    si.dst = dst;
    si.src0 = s0;
    si.src1 = s1;
    append(si);
    return *this;
}

ProgramBuilder &
ProgramBuilder::fpMul(RegIndex dst, RegIndex s0, RegIndex s1)
{
    StaticInstr si;
    si.op = OpClass::FpMul;
    si.dst = dst;
    si.src0 = s0;
    si.src1 = s1;
    append(si);
    return *this;
}

ProgramBuilder &
ProgramBuilder::load(RegIndex dst, int mem_pattern, RegIndex addr_src)
{
    if (mem_pattern < 0 ||
        static_cast<std::size_t>(mem_pattern) >= memPatterns_.size())
        fatal("program '%s': load with bad pattern id %d", name_.c_str(),
              mem_pattern);
    StaticInstr si;
    si.op = OpClass::Load;
    si.dst = dst;
    si.src0 = addr_src;
    si.memPattern = mem_pattern;
    append(si);
    return *this;
}

ProgramBuilder &
ProgramBuilder::store(int mem_pattern, RegIndex value_src,
                      RegIndex addr_src)
{
    if (mem_pattern < 0 ||
        static_cast<std::size_t>(mem_pattern) >= memPatterns_.size())
        fatal("program '%s': store with bad pattern id %d", name_.c_str(),
              mem_pattern);
    StaticInstr si;
    si.op = OpClass::Store;
    si.src0 = value_src;
    si.src1 = addr_src;
    si.memPattern = mem_pattern;
    append(si);
    return *this;
}

ProgramBuilder &
ProgramBuilder::branch(int branch_pattern, RegIndex cond_src)
{
    if (branch_pattern < 0 ||
        static_cast<std::size_t>(branch_pattern) >= branchPatterns_.size())
        fatal("program '%s': branch with bad pattern id %d", name_.c_str(),
              branch_pattern);
    StaticInstr si;
    si.op = OpClass::Branch;
    si.src0 = cond_src;
    si.branchPattern = branch_pattern;
    append(si);
    return *this;
}

ProgramBuilder &
ProgramBuilder::nop()
{
    StaticInstr si;
    si.op = OpClass::Nop;
    append(si);
    return *this;
}

ProgramBuilder &
ProgramBuilder::prioNop(int or_reg)
{
    StaticInstr si;
    si.op = OpClass::PrioNop;
    si.prioNopReg = or_reg;
    append(si);
    return *this;
}

std::size_t
ProgramBuilder::currentBodySize() const
{
    return phases_.empty() ? 0 : phases_.back().body.size();
}

SyntheticProgram
ProgramBuilder::build()
{
    if (built_)
        panic("ProgramBuilder for '%s' reused after build()",
              name_.c_str());
    built_ = true;
    return SyntheticProgram(std::move(name_), std::move(phases_),
                            std::move(memPatterns_),
                            std::move(branchPatterns_));
}

} // namespace p5
