/**
 * @file
 * Fluent builder for synthetic programs.
 *
 * The micro-benchmark and workload factories use this to express loop
 * bodies close to how the paper's Table 2 writes them, e.g.:
 *
 * @code
 * ProgramBuilder b("cpu_int");
 * b.beginPhase(1000);
 * for (int x = 0; x < 54; ++x) {
 *     b.intMul(t0, iter, iter);  // iter * (iter - 1)
 *     b.intMul(t1, xreg, iter);  // xi * iter
 *     b.intAlu(acc, acc, t0);    // a += ... (dependence chain)
 * }
 * b.branch(back_edge);
 * SyntheticProgram p = b.build();
 * @endcode
 */

#ifndef P5SIM_PROGRAM_BUILDER_HH
#define P5SIM_PROGRAM_BUILDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "program/program.hh"

namespace p5 {

/** Incremental construction of a SyntheticProgram. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name) : name_(std::move(name)) {}

    /**
     * Register a memory pattern; returns its id for load()/store().
     *
     * @param base region base address (regions of different patterns
     *        should not overlap unless sharing is intended).
     * @param stride byte distance between consecutive accesses.
     * @param footprint working-set size in bytes (accesses wrap).
     */
    int memPattern(Addr base, std::uint64_t stride,
                   std::uint64_t footprint, std::uint64_t start = 0);

    /** Register a branch pattern; returns its id for branch(). */
    int branchPattern(const BranchPattern &p);
    int alwaysTaken();
    int neverTaken();
    int randomBranch(double taken_prob, std::uint64_t seed);

    /**
     * Open a new phase executing the instructions appended after this
     * call @p iterations times. Every program needs at least one phase.
     */
    void beginPhase(std::uint64_t iterations);

    /** Append a generic instruction to the current phase body. */
    void append(const StaticInstr &si);

    // Convenience emitters. All return *this for chaining.
    ProgramBuilder &intAlu(RegIndex dst, RegIndex s0,
                           RegIndex s1 = invalid_reg);
    ProgramBuilder &intMul(RegIndex dst, RegIndex s0,
                           RegIndex s1 = invalid_reg);
    ProgramBuilder &intDiv(RegIndex dst, RegIndex s0,
                           RegIndex s1 = invalid_reg);
    ProgramBuilder &fpAlu(RegIndex dst, RegIndex s0,
                          RegIndex s1 = invalid_reg);
    ProgramBuilder &fpMul(RegIndex dst, RegIndex s0,
                          RegIndex s1 = invalid_reg);
    ProgramBuilder &load(RegIndex dst, int mem_pattern,
                         RegIndex addr_src = invalid_reg);
    ProgramBuilder &store(int mem_pattern, RegIndex value_src,
                          RegIndex addr_src = invalid_reg);
    ProgramBuilder &branch(int branch_pattern,
                           RegIndex cond_src = invalid_reg);
    ProgramBuilder &nop();
    ProgramBuilder &prioNop(int or_reg);

    /** Number of instructions appended to the current phase body. */
    std::size_t currentBodySize() const;

    /** Finalize. The builder must not be reused afterwards. */
    SyntheticProgram build();

  private:
    void requirePhase() const;

    std::string name_;
    std::vector<ProgramPhase> phases_;
    std::vector<MemPattern> memPatterns_;
    std::vector<BranchPattern> branchPatterns_;
    bool built_ = false;
};

} // namespace p5

#endif // P5SIM_PROGRAM_BUILDER_HH
