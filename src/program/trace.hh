/**
 * @file
 * Compact replayable instruction traces.
 *
 * A trace file captures the dynamic instruction sequence of an
 * InstrSource so it can be replayed later — by a different process, a
 * different build, or a frontend that never links the generator. The
 * format follows the checkpoint container discipline (ckpt.hh): one
 * compact JSON header line (magic, version, name, instruction counts,
 * payload byte count, payload checksum) terminated by '\n', followed by
 * a delta+varint encoded record stream. `head -1` inspects any trace;
 * publication is atomic (temp file + rename); every invalid file can be
 * quarantined to "<name>.bad" like a corrupt ResultStore entry.
 *
 * Per record the payload stores: the op class and branch outcome in one
 * byte, the destination register, each source as either a small
 * backward *distance* to its producer record (dataflow, not register
 * names — the common case after a producer) or an escaped literal
 * register for live-ins, the PrioNop payload where applicable, and the
 * PC and memory address as zigzag deltas against the previous record.
 *
 * Replay wraps modulo the recorded span: a trace of E executions
 * repeats its E*N records forever, which keeps FAME repetition
 * accounting exact (the generator's per-execution instruction count N
 * travels in the header) as long as runs don't outlive the recording —
 * dump enough executions for the measurement at hand.
 */

#ifndef P5SIM_PROGRAM_TRACE_HH
#define P5SIM_PROGRAM_TRACE_HH

#include <memory>

#include "program/source.hh"

namespace p5 {

/** Version of the trace container + record stream layout. */
constexpr int trace_format_version = 1;

/** Magic the header line must carry. */
constexpr const char *trace_magic = "p5sim-trace";

/** Parsed trace header (the one-line JSON prefix of a trace file). */
struct TraceHeader
{
    std::string name;
    std::uint64_t instrsPerExecution = 0;
    std::uint64_t records = 0;
    std::uint64_t executions = 0;
    std::uint64_t bytes = 0;    ///< payload size after the header line
    std::uint64_t checksum = 0; ///< payload digest (CkptWriter chain)

    /**
     * 16-hex-digit content identity of the trace: a hash of the name,
     * the counts and the payload checksum. Folded into ProgramSpec keys
     * and the config fingerprint so a trace-driven point can never
     * alias a synthetic one (or a different trace) in the result or
     * checkpoint stores.
     */
    std::string fingerprint() const;
};

/** An InstrSource that replays a loaded trace. */
class TraceProgram : public InstrSource
{
  public:
    TraceProgram(TraceHeader header,
                 std::vector<PredecodedInstr> table);

    const std::string &name() const override { return header_.name; }

    /** The *generator's* per-execution count, from the header. */
    std::uint64_t instrsPerExecution() const override
    {
        return header_.instrsPerExecution;
    }

    Cursor locate(SeqNum seq) const override;

    const std::vector<PredecodedInstr> &fetchTable() const override
    {
        return table_;
    }

    /** Every slot carries its address/direction in the prototype. */
    const std::vector<MemPattern> &memPatterns() const override
    {
        return noMemPatterns_;
    }

    const std::vector<BranchPattern> &branchPatterns() const override
    {
        return noBranchPatterns_;
    }

    /** One phase spanning all records once; replay wraps there. */
    std::vector<PhaseGeom> phaseGeometry() const override;

    const TraceHeader &header() const { return header_; }

    /** Dynamic records in the recorded span (= table size). */
    std::uint64_t records() const { return header_.records; }

  private:
    TraceHeader header_;
    std::vector<PredecodedInstr> table_;
    std::vector<MemPattern> noMemPatterns_;
    std::vector<BranchPattern> noBranchPatterns_;
};

/**
 * Record @p executions executions of @p source into @p path
 * (atomically). fatal() on I/O failure or a zero request.
 */
void dumpTrace(const InstrSource &source, std::uint64_t executions,
               const std::string &path);

/**
 * Header-only read (cheap: first line, no payload decode or checksum).
 * Returns false with a reason in @p error on any validation failure.
 */
bool tryReadTraceHeader(const std::string &path, TraceHeader &out,
                        std::string *error = nullptr);

/** tryReadTraceHeader that fatal()s with the reason. */
TraceHeader readTraceHeader(const std::string &path);

/**
 * Full validated load: header, payload size, checksum, and per-record
 * bounds (op class, register indices, dependence distances pointing at
 * real producers). Returns false with a reason in @p error; @p out is
 * untouched on failure.
 */
bool tryLoadTrace(const std::string &path,
                  std::unique_ptr<TraceProgram> &out,
                  std::string *error = nullptr);

/** tryLoadTrace that fatal()s with the reason. */
std::unique_ptr<TraceProgram> loadTrace(const std::string &path);

/**
 * Quarantine a corrupt trace to "<path>.bad" (ResultStore discipline);
 * returns the new path. warn()s; fatal() when the rename fails.
 */
std::string quarantineTrace(const std::string &path);

} // namespace p5

#endif // P5SIM_PROGRAM_TRACE_HH
