#include "program/pattern.hh"

#include <cstdio>

#include "common/log.hh"
#include "common/rng.hh"

namespace p5 {

bool
BranchPattern::directionAt(std::uint64_t k) const
{
    switch (kind) {
      case BranchKind::AlwaysTaken:
        return true;
      case BranchKind::NeverTaken:
        return false;
      case BranchKind::Periodic:
        return period != 0 && (k % period) == period - 1;
      case BranchKind::Random: {
        // Map the hash to [0,1) and compare against the taken
        // probability; stable across rewinds by construction.
        std::uint64_t h = hashCombine(seed, k);
        double u = static_cast<double>(h >> 11) * 0x1.0p-53;
        return u < takenProb;
      }
      default:
        panic("BranchPattern: bad kind %d", static_cast<int>(kind));
    }
}

std::string
BranchPattern::toString() const
{
    char buf[64];
    switch (kind) {
      case BranchKind::AlwaysTaken:
        return "always-taken";
      case BranchKind::NeverTaken:
        return "never-taken";
      case BranchKind::Periodic:
        std::snprintf(buf, sizeof(buf), "periodic %u", period);
        return buf;
      case BranchKind::Random:
        std::snprintf(buf, sizeof(buf), "random p=%.2f", takenProb);
        return buf;
      default:
        panic("BranchPattern: bad kind %d", static_cast<int>(kind));
    }
}

} // namespace p5
