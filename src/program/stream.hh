/**
 * @file
 * Rewindable per-thread instruction stream.
 *
 * The core's decode stage pulls dynamic instructions from an InstrStream.
 * On a branch mispredict or balancer flush the core rewinds the stream to
 * the sequence number following the last surviving instruction; because
 * sources are pure functions of the index, re-fetched instructions are
 * identical to the squashed ones.
 *
 * Fetch is memoized: the stream keeps an incremental cursor (phase,
 * iteration, body position) into the source's pre-decoded fetch table,
 * so the common-path fetch is a prototype copy plus the two pattern
 * evaluations — no per-fetch division back into source coordinates.
 * The stream captures the source's fetch table, pattern tables and
 * phase geometry at construction, so the hot path never makes a
 * virtual call either; only rewinds (and only rewinds) go back to the
 * source's virtual locate() to re-derive the cursor.
 */

#ifndef P5SIM_PROGRAM_STREAM_HH
#define P5SIM_PROGRAM_STREAM_HH

#include "program/source.hh"

namespace p5 {

/** A thread's position in its (infinitely repeating) source. */
class InstrStream
{
  public:
    /** @param source must outlive the stream. */
    InstrStream(const InstrSource *source, ThreadId tid);

    /** Materialize the instruction at the current position and advance. */
    DynInstr
    fetch()
    {
        DynInstr di = materializeAtCursor();
        advance();
        return di;
    }

    /** Peek without advancing. */
    DynInstr
    peek() const
    {
        return materializeAtCursor();
    }

    /** Sequence number the next fetch() will return. */
    SeqNum nextSeq() const { return pos_; }

    /** Rewind so the next fetch() returns @p seq. @pre seq <= nextSeq. */
    void rewindTo(SeqNum seq);

    /**
     * Position the cursor at an arbitrary @p seq, forward or backward.
     * Checkpoint restore uses this to reproduce a saved stream position
     * on a freshly attached stream.
     */
    void seekTo(SeqNum seq);

    /** Completed source executions within the first @p seq instrs
     *  (captured divisor — no virtual call; commit-path safe). */
    std::uint64_t
    executionsAt(SeqNum seq) const
    {
        return seq / instrsPerExec_;
    }

    /** Dynamic instructions per FAME execution (captured). */
    std::uint64_t instrsPerExecution() const { return instrsPerExec_; }

    const InstrSource &source() const { return *source_; }
    ThreadId tid() const { return tid_; }

  private:
    /** Build the DynInstr at the cursor (no divisions, no advance). */
    DynInstr
    materializeAtCursor() const
    {
        const PredecodedInstr &ps = table_[flatIdx_];
        DynInstr di = ps.proto;
        di.tid = tid_;
        di.seq = pos_;

        // Dynamic occurrence count of this static instruction.
        const std::uint64_t k = exec_ * iterations_ + iter_;
        if (ps.memPattern >= 0)
            di.addr = memPats_[ps.memPattern].addressAt(k);
        if (ps.branchPattern >= 0)
            di.branchTaken = branchPats_[ps.branchPattern].directionAt(k);
        return di;
    }

    /** Step the cursor one instruction forward. */
    void advance();

    /** Re-derive the cursor for an arbitrary position (rewind path). */
    void reposition(SeqNum seq);

    /** Refresh the cached per-phase constants after a phase change. */
    void loadPhase();

    const InstrSource *source_;
    ThreadId tid_;
    SeqNum pos_ = 0;

    // Captured at construction: the source's tables and geometry, so
    // fetch/advance never dispatch through the source.
    const PredecodedInstr *table_ = nullptr;
    const MemPattern *memPats_ = nullptr;
    const BranchPattern *branchPats_ = nullptr;
    std::vector<InstrSource::PhaseGeom> geom_;
    std::uint64_t instrsPerExec_ = 0;

    // Memoized decode cursor: invariant flatIdx_ ==
    // geom_[phase_].flatStart + bodyIdx_.
    std::uint64_t exec_ = 0;
    std::size_t phase_ = 0;
    std::uint64_t iter_ = 0;
    std::size_t bodyIdx_ = 0;
    std::size_t flatIdx_ = 0;
    std::size_t bodySize_ = 0;
    std::uint64_t iterations_ = 0;
};

} // namespace p5

#endif // P5SIM_PROGRAM_STREAM_HH
