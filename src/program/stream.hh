/**
 * @file
 * Rewindable per-thread instruction stream.
 *
 * The core's decode stage pulls dynamic instructions from an InstrStream.
 * On a branch mispredict or balancer flush the core rewinds the stream to
 * the sequence number following the last surviving instruction; because
 * programs are pure functions of the index, re-fetched instructions are
 * identical to the squashed ones.
 */

#ifndef P5SIM_PROGRAM_STREAM_HH
#define P5SIM_PROGRAM_STREAM_HH

#include "program/program.hh"

namespace p5 {

/** A thread's position in its (infinitely repeating) program. */
class InstrStream
{
  public:
    /** @param program must outlive the stream. */
    InstrStream(const SyntheticProgram *program, ThreadId tid);

    /** Materialize the instruction at the current position and advance. */
    DynInstr fetch();

    /** Peek without advancing. */
    DynInstr peek() const;

    /** Sequence number the next fetch() will return. */
    SeqNum nextSeq() const { return pos_; }

    /** Rewind so the next fetch() returns @p seq. @pre seq <= nextSeq. */
    void rewindTo(SeqNum seq);

    /** Completed program executions within the first @p seq instrs. */
    std::uint64_t
    executionsAt(SeqNum seq) const
    {
        return program_->executionsAt(seq);
    }

    const SyntheticProgram &program() const { return *program_; }
    ThreadId tid() const { return tid_; }

  private:
    const SyntheticProgram *program_;
    ThreadId tid_;
    SeqNum pos_ = 0;
};

} // namespace p5

#endif // P5SIM_PROGRAM_STREAM_HH
