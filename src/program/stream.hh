/**
 * @file
 * Rewindable per-thread instruction stream.
 *
 * The core's decode stage pulls dynamic instructions from an InstrStream.
 * On a branch mispredict or balancer flush the core rewinds the stream to
 * the sequence number following the last surviving instruction; because
 * programs are pure functions of the index, re-fetched instructions are
 * identical to the squashed ones.
 *
 * Fetch is memoized: the stream keeps an incremental cursor (phase,
 * iteration, body position) into the program's pre-decoded fetch table,
 * so the common-path fetch is a prototype copy plus the two pattern
 * evaluations — no per-fetch division back into program coordinates.
 * Rewinds (and only rewinds) re-derive the cursor arithmetically, so
 * mispredict-heavy replay hits the memoized table too.
 */

#ifndef P5SIM_PROGRAM_STREAM_HH
#define P5SIM_PROGRAM_STREAM_HH

#include "program/program.hh"

namespace p5 {

/** A thread's position in its (infinitely repeating) program. */
class InstrStream
{
  public:
    /** @param program must outlive the stream. */
    InstrStream(const SyntheticProgram *program, ThreadId tid);

    /** Materialize the instruction at the current position and advance. */
    DynInstr
    fetch()
    {
        DynInstr di = materializeAtCursor();
        advance();
        return di;
    }

    /** Peek without advancing. */
    DynInstr
    peek() const
    {
        return materializeAtCursor();
    }

    /** Sequence number the next fetch() will return. */
    SeqNum nextSeq() const { return pos_; }

    /** Rewind so the next fetch() returns @p seq. @pre seq <= nextSeq. */
    void rewindTo(SeqNum seq);

    /**
     * Position the cursor at an arbitrary @p seq, forward or backward.
     * Checkpoint restore uses this to reproduce a saved stream position
     * on a freshly attached stream.
     */
    void seekTo(SeqNum seq);

    /** Completed program executions within the first @p seq instrs. */
    std::uint64_t
    executionsAt(SeqNum seq) const
    {
        return program_->executionsAt(seq);
    }

    const SyntheticProgram &program() const { return *program_; }
    ThreadId tid() const { return tid_; }

  private:
    /** Build the DynInstr at the cursor (no divisions, no advance). */
    DynInstr materializeAtCursor() const;

    /** Step the cursor one instruction forward. */
    void advance();

    /** Re-derive the cursor for an arbitrary position (rewind path). */
    void reposition(SeqNum seq);

    /** Refresh the cached per-phase constants after a phase change. */
    void loadPhase();

    const SyntheticProgram *program_;
    ThreadId tid_;
    SeqNum pos_ = 0;

    // Memoized decode cursor: invariant flatIdx_ ==
    // program_->flatStart()[phase_] + bodyIdx_.
    std::uint64_t exec_ = 0;
    std::size_t phase_ = 0;
    std::uint64_t iter_ = 0;
    std::size_t bodyIdx_ = 0;
    std::size_t flatIdx_ = 0;
    std::size_t bodySize_ = 0;
    std::uint64_t iterations_ = 0;
};

} // namespace p5

#endif // P5SIM_PROGRAM_STREAM_HH
