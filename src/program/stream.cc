#include "program/stream.hh"

#include "common/log.hh"

namespace p5 {

InstrStream::InstrStream(const SyntheticProgram *program, ThreadId tid)
    : program_(program), tid_(tid)
{
    if (!program_)
        panic("InstrStream constructed with null program");
    reposition(0);
}

DynInstr
InstrStream::materializeAtCursor() const
{
    const PredecodedInstr &ps = program_->fetchTable()[flatIdx_];
    DynInstr di = ps.proto;
    di.tid = tid_;
    di.seq = pos_;

    // Dynamic occurrence count of this static instruction.
    const std::uint64_t k = exec_ * iterations_ + iter_;
    if (ps.memPattern >= 0)
        di.addr = program_->memPatterns()[ps.memPattern].addressAt(k);
    if (ps.branchPattern >= 0)
        di.branchTaken =
            program_->branchPatterns()[ps.branchPattern].directionAt(k);
    return di;
}

void
InstrStream::advance()
{
    ++pos_;
    ++flatIdx_;
    if (++bodyIdx_ != bodySize_)
        return;
    bodyIdx_ = 0;
    flatIdx_ -= bodySize_;
    if (++iter_ != iterations_)
        return;
    iter_ = 0;
    flatIdx_ += bodySize_;
    if (++phase_ == program_->phases().size()) {
        phase_ = 0;
        flatIdx_ = 0;
        ++exec_;
    }
    loadPhase();
}

void
InstrStream::loadPhase()
{
    const ProgramPhase &phase = program_->phases()[phase_];
    bodySize_ = phase.body.size();
    iterations_ = phase.iterations;
}

void
InstrStream::reposition(SeqNum seq)
{
    const SyntheticProgram::Cursor cur = program_->locate(seq);
    pos_ = seq;
    exec_ = cur.exec;
    phase_ = cur.phase;
    iter_ = cur.iter;
    bodyIdx_ = cur.bodyIdx;
    flatIdx_ = program_->flatStart()[phase_] + bodyIdx_;
    loadPhase();
}

void
InstrStream::seekTo(SeqNum seq)
{
    reposition(seq);
}

void
InstrStream::rewindTo(SeqNum seq)
{
    if (seq > pos_)
        panic("InstrStream rewind forward: %llu > %llu",
              static_cast<unsigned long long>(seq),
              static_cast<unsigned long long>(pos_));
    reposition(seq);
}

} // namespace p5
