#include "program/stream.hh"

#include "common/log.hh"

namespace p5 {

InstrStream::InstrStream(const SyntheticProgram *program, ThreadId tid)
    : program_(program), tid_(tid)
{
    if (!program_)
        panic("InstrStream constructed with null program");
}

DynInstr
InstrStream::fetch()
{
    return program_->materialize(pos_++, tid_);
}

DynInstr
InstrStream::peek() const
{
    return program_->materialize(pos_, tid_);
}

void
InstrStream::rewindTo(SeqNum seq)
{
    if (seq > pos_)
        panic("InstrStream rewind forward: %llu > %llu",
              static_cast<unsigned long long>(seq),
              static_cast<unsigned long long>(pos_));
    pos_ = seq;
}

} // namespace p5
