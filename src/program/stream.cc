#include "program/stream.hh"

#include "common/log.hh"

namespace p5 {

InstrStream::InstrStream(const InstrSource *source, ThreadId tid)
    : source_(source), tid_(tid)
{
    if (!source_)
        panic("InstrStream constructed with null source");
    table_ = source_->fetchTable().data();
    memPats_ = source_->memPatterns().data();
    branchPats_ = source_->branchPatterns().data();
    geom_ = source_->phaseGeometry();
    instrsPerExec_ = source_->instrsPerExecution();
    if (geom_.empty())
        panic("InstrStream source '%s' has no phases",
              source_->name().c_str());
    if (instrsPerExec_ == 0)
        panic("InstrStream source '%s' has no instructions",
              source_->name().c_str());
    reposition(0);
}

void
InstrStream::advance()
{
    ++pos_;
    ++flatIdx_;
    if (++bodyIdx_ != bodySize_)
        return;
    bodyIdx_ = 0;
    flatIdx_ -= bodySize_;
    if (++iter_ != iterations_)
        return;
    iter_ = 0;
    flatIdx_ += bodySize_;
    if (++phase_ == geom_.size()) {
        phase_ = 0;
        flatIdx_ = 0;
        ++exec_;
    }
    loadPhase();
}

void
InstrStream::loadPhase()
{
    bodySize_ = geom_[phase_].bodySize;
    iterations_ = geom_[phase_].iterations;
}

void
InstrStream::reposition(SeqNum seq)
{
    const InstrSource::Cursor cur = source_->locate(seq);
    pos_ = seq;
    exec_ = cur.exec;
    phase_ = cur.phase;
    iter_ = cur.iter;
    bodyIdx_ = cur.bodyIdx;
    flatIdx_ = geom_[phase_].flatStart + bodyIdx_;
    loadPhase();
}

void
InstrStream::seekTo(SeqNum seq)
{
    reposition(seq);
}

void
InstrStream::rewindTo(SeqNum seq)
{
    if (seq > pos_)
        panic("InstrStream rewind forward: %llu > %llu",
              static_cast<unsigned long long>(seq),
              static_cast<unsigned long long>(pos_));
    reposition(seq);
}

} // namespace p5
