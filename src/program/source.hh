/**
 * @file
 * Instruction-source abstraction behind InstrStream.
 *
 * An InstrSource is anything that can supply the infinite, rewindable
 * dynamic instruction sequence of one software thread: the synthetic
 * generator (SyntheticProgram) or a recorded trace replayed from disk
 * (TraceProgram). The interface is deliberately cold: InstrStream calls
 * it at construction to capture the pre-decoded fetch table, the pattern
 * tables and the phase geometry, and afterwards only on rewinds/seeks
 * (locate()). The per-fetch hot path never makes a virtual call —
 * dispatch happens once, at stream-construction time.
 */

#ifndef P5SIM_PROGRAM_SOURCE_HH
#define P5SIM_PROGRAM_SOURCE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "program/pattern.hh"

namespace p5 {

/** Abstract supplier of a thread's dynamic instruction sequence. */
class InstrSource
{
  public:
    virtual ~InstrSource() = default;

    /** Decomposition of a global index into source coordinates. */
    struct Cursor
    {
        std::uint64_t exec = 0;  ///< completed executions before seq
        std::size_t phase = 0;   ///< phase containing seq
        std::uint64_t iter = 0;  ///< loop iteration within the phase
        std::size_t bodyIdx = 0; ///< position within the loop body
    };

    /**
     * Shape of one phase as the stream's incremental cursor needs it:
     * body length, iteration count and the phase's offset into the flat
     * fetch table. Captured once per stream; the fetch/advance hot path
     * walks these values without consulting the source again.
     */
    struct PhaseGeom
    {
        std::size_t bodySize = 0;
        std::uint64_t iterations = 0;
        std::size_t flatStart = 0;
    };

    virtual const std::string &name() const = 0;

    /**
     * Dynamic instructions in one FAME execution (repetition). For a
     * trace this is the *generator's* per-execution count recorded in
     * the header, so replayed runs account repetitions identically.
     */
    virtual std::uint64_t instrsPerExecution() const = 0;

    /** Locate global index @p seq (rewind/seek path only — may be
     *  virtual-dispatched; never called per fetch). */
    virtual Cursor locate(SeqNum seq) const = 0;

    /** Pre-decoded fetch table, phase order (see PredecodedInstr). */
    virtual const std::vector<PredecodedInstr> &fetchTable() const = 0;

    /** Memory patterns the fetch table's memPattern ids index (may be
     *  empty when every slot carries its address in the prototype). */
    virtual const std::vector<MemPattern> &memPatterns() const = 0;

    /** Branch patterns the fetch table's branchPattern ids index. */
    virtual const std::vector<BranchPattern> &branchPatterns() const = 0;

    /** Per-phase geometry, phase order (size >= 1). */
    virtual std::vector<PhaseGeom> phaseGeometry() const = 0;
};

} // namespace p5

#endif // P5SIM_PROGRAM_SOURCE_HH
