/**
 * @file
 * Synthetic program model.
 *
 * A SyntheticProgram is a sequence of phases, each of which iterates a
 * fixed loop body a fixed number of times. One pass through all phases is
 * an "execution" in the FAME sense (one repetition of the benchmark); the
 * program restarts from the first phase afterwards and runs indefinitely.
 *
 * The dynamic instruction at any global index is a pure function of that
 * index, which makes streams rewindable after squashes and keeps the whole
 * simulation deterministic.
 */

#ifndef P5SIM_PROGRAM_PROGRAM_HH
#define P5SIM_PROGRAM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hh"
#include "isa/static_instr.hh"
#include "program/pattern.hh"
#include "program/source.hh"

namespace p5 {

/** One phase: a loop body executed @c iterations times. */
struct ProgramPhase
{
    std::vector<StaticInstr> body;
    std::uint64_t iterations = 1;

    std::uint64_t
    instructions() const
    {
        return body.size() * iterations;
    }
};

/** A complete synthetic program. */
class SyntheticProgram : public InstrSource
{
  public:
    SyntheticProgram(std::string name, std::vector<ProgramPhase> phases,
                     std::vector<MemPattern> mem_patterns,
                     std::vector<BranchPattern> branch_patterns);

    const std::string &name() const override { return name_; }
    const std::vector<ProgramPhase> &phases() const { return phases_; }
    const std::vector<MemPattern> &memPatterns() const override
    {
        return memPatterns_;
    }
    const std::vector<BranchPattern> &branchPatterns() const override
    {
        return branchPatterns_;
    }

    /** Dynamic instructions in one execution (all phases once). */
    std::uint64_t instrsPerExecution() const override
    {
        return instrsPerExec_;
    }

    /** Number of complete executions contained in @p seq instructions. */
    std::uint64_t
    executionsAt(SeqNum seq) const
    {
        return seq / instrsPerExec_;
    }

    /**
     * Materialize the dynamic instruction at global index @p seq for
     * thread @p tid.
     *
     * The result is deterministic: addresses come from the memory
     * patterns, branch directions from the branch patterns, both keyed by
     * the per-static-instruction dynamic occurrence count.
     */
    DynInstr materialize(SeqNum seq, ThreadId tid) const;

    /** Locate global index @p seq (the materialize() arithmetic). */
    Cursor locate(SeqNum seq) const override;

    /**
     * The pre-decoded fetch table: one slot per static instruction, in
     * phase order (flat index = flatStart()[phase] + bodyIdx). Built
     * once at construction; InstrStream fetches by copying prototypes
     * from here instead of re-deriving every DynInstr field.
     */
    const std::vector<PredecodedInstr> &
    fetchTable() const override
    {
        return fetchTable_;
    }

    /** Flat fetch-table offset of each phase (size phases+1). */
    const std::vector<std::size_t> &
    flatStart() const
    {
        return flatStart_;
    }

    std::vector<PhaseGeom> phaseGeometry() const override;

    /** Instruction-mix census over one execution (per op class). */
    std::vector<std::uint64_t> opClassMix() const;

  private:
    std::string name_;
    std::vector<ProgramPhase> phases_;
    std::vector<MemPattern> memPatterns_;
    std::vector<BranchPattern> branchPatterns_;

    /** Prefix sums of per-phase instruction counts (size phases+1). */
    std::vector<std::uint64_t> phaseStart_;
    std::uint64_t instrsPerExec_ = 0;

    std::vector<PredecodedInstr> fetchTable_;
    std::vector<std::size_t> flatStart_;
};

} // namespace p5

#endif // P5SIM_PROGRAM_PROGRAM_HH
