#include "program/program.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"

namespace p5 {

SyntheticProgram::SyntheticProgram(std::string name,
                                   std::vector<ProgramPhase> phases,
                                   std::vector<MemPattern> mem_patterns,
                                   std::vector<BranchPattern>
                                       branch_patterns)
    : name_(std::move(name)), phases_(std::move(phases)),
      memPatterns_(std::move(mem_patterns)),
      branchPatterns_(std::move(branch_patterns))
{
    if (phases_.empty())
        fatal("program '%s' has no phases", name_.c_str());

    // Assign synthetic PCs: a name-derived base keeps distinct programs
    // in distinct BHT regions, matching distinct processes on real HW.
    Addr pc = hashMix(std::hash<std::string>{}(name_)) & ~Addr{0xffff};
    for (auto &phase : phases_)
        for (auto &si : phase.body) {
            si.pc = pc;
            pc += 4;
        }

    phaseStart_.push_back(0);
    for (const auto &phase : phases_) {
        if (phase.body.empty())
            fatal("program '%s' has an empty phase body", name_.c_str());
        if (phase.iterations == 0)
            fatal("program '%s' has a zero-iteration phase",
                  name_.c_str());
        for (const auto &si : phase.body) {
            if (isMemOp(si.op)) {
                if (si.memPattern < 0 ||
                    static_cast<std::size_t>(si.memPattern) >=
                        memPatterns_.size()) {
                    fatal("program '%s': bad mem pattern id %d",
                          name_.c_str(), si.memPattern);
                }
            }
            if (si.op == OpClass::Branch) {
                if (si.branchPattern < 0 ||
                    static_cast<std::size_t>(si.branchPattern) >=
                        branchPatterns_.size()) {
                    fatal("program '%s': bad branch pattern id %d",
                          name_.c_str(), si.branchPattern);
                }
            }
        }
        phaseStart_.push_back(phaseStart_.back() + phase.instructions());
    }
    instrsPerExec_ = phaseStart_.back();

    // Pre-decode the fetch table: every field of a DynInstr that does
    // not depend on the dynamic occurrence count, decoded once.
    flatStart_.push_back(0);
    for (const auto &phase : phases_) {
        for (const auto &si : phase.body) {
            PredecodedInstr ps;
            ps.proto.op = si.op;
            ps.proto.dst = si.dst;
            ps.proto.src0 = si.src0;
            ps.proto.src1 = si.src1;
            ps.proto.prioNopReg = si.prioNopReg;
            ps.proto.pc = si.pc;
            if (isMemOp(si.op))
                ps.memPattern = si.memPattern;
            if (si.op == OpClass::Branch)
                ps.branchPattern = si.branchPattern;
            fetchTable_.push_back(ps);
        }
        flatStart_.push_back(flatStart_.back() + phase.body.size());
    }
}

SyntheticProgram::Cursor
SyntheticProgram::locate(SeqNum seq) const
{
    Cursor cur;
    cur.exec = seq / instrsPerExec_;
    const std::uint64_t in_exec = seq % instrsPerExec_;

    // Locate the phase containing in_exec (few phases: linear scan).
    while (in_exec >= phaseStart_[cur.phase + 1])
        ++cur.phase;
    const ProgramPhase &phase = phases_[cur.phase];
    const std::uint64_t in_phase = in_exec - phaseStart_[cur.phase];
    cur.iter = in_phase / phase.body.size();
    cur.bodyIdx =
        static_cast<std::size_t>(in_phase % phase.body.size());
    return cur;
}

DynInstr
SyntheticProgram::materialize(SeqNum seq, ThreadId tid) const
{
    const Cursor cur = locate(seq);
    const ProgramPhase &phase = phases_[cur.phase];
    const PredecodedInstr &ps =
        fetchTable_[flatStart_[cur.phase] + cur.bodyIdx];

    // Dynamic occurrence count of this static instruction.
    const std::uint64_t k = cur.exec * phase.iterations + cur.iter;

    DynInstr di = ps.proto;
    di.tid = tid;
    di.seq = seq;
    if (ps.memPattern >= 0)
        di.addr = memPatterns_[ps.memPattern].addressAt(k);
    if (ps.branchPattern >= 0)
        di.branchTaken = branchPatterns_[ps.branchPattern].directionAt(k);
    return di;
}

std::vector<InstrSource::PhaseGeom>
SyntheticProgram::phaseGeometry() const
{
    std::vector<PhaseGeom> geom;
    geom.reserve(phases_.size());
    for (std::size_t p = 0; p < phases_.size(); ++p)
        geom.push_back({phases_[p].body.size(), phases_[p].iterations,
                        flatStart_[p]});
    return geom;
}

std::vector<std::uint64_t>
SyntheticProgram::opClassMix() const
{
    std::vector<std::uint64_t> mix(num_op_classes, 0);
    for (const auto &phase : phases_)
        for (const auto &si : phase.body)
            mix[static_cast<int>(si.op)] += phase.iterations;
    return mix;
}

} // namespace p5
