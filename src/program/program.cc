#include "program/program.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/rng.hh"

namespace p5 {

SyntheticProgram::SyntheticProgram(std::string name,
                                   std::vector<ProgramPhase> phases,
                                   std::vector<MemPattern> mem_patterns,
                                   std::vector<BranchPattern>
                                       branch_patterns)
    : name_(std::move(name)), phases_(std::move(phases)),
      memPatterns_(std::move(mem_patterns)),
      branchPatterns_(std::move(branch_patterns))
{
    if (phases_.empty())
        fatal("program '%s' has no phases", name_.c_str());

    // Assign synthetic PCs: a name-derived base keeps distinct programs
    // in distinct BHT regions, matching distinct processes on real HW.
    Addr pc = hashMix(std::hash<std::string>{}(name_)) & ~Addr{0xffff};
    for (auto &phase : phases_)
        for (auto &si : phase.body) {
            si.pc = pc;
            pc += 4;
        }

    phaseStart_.push_back(0);
    for (const auto &phase : phases_) {
        if (phase.body.empty())
            fatal("program '%s' has an empty phase body", name_.c_str());
        if (phase.iterations == 0)
            fatal("program '%s' has a zero-iteration phase",
                  name_.c_str());
        for (const auto &si : phase.body) {
            if (isMemOp(si.op)) {
                if (si.memPattern < 0 ||
                    static_cast<std::size_t>(si.memPattern) >=
                        memPatterns_.size()) {
                    fatal("program '%s': bad mem pattern id %d",
                          name_.c_str(), si.memPattern);
                }
            }
            if (si.op == OpClass::Branch) {
                if (si.branchPattern < 0 ||
                    static_cast<std::size_t>(si.branchPattern) >=
                        branchPatterns_.size()) {
                    fatal("program '%s': bad branch pattern id %d",
                          name_.c_str(), si.branchPattern);
                }
            }
        }
        phaseStart_.push_back(phaseStart_.back() + phase.instructions());
    }
    instrsPerExec_ = phaseStart_.back();
}

DynInstr
SyntheticProgram::materialize(SeqNum seq, ThreadId tid) const
{
    const std::uint64_t exec = seq / instrsPerExec_;
    const std::uint64_t in_exec = seq % instrsPerExec_;

    // Locate the phase containing in_exec (few phases: linear scan).
    std::size_t p = 0;
    while (in_exec >= phaseStart_[p + 1])
        ++p;
    const ProgramPhase &phase = phases_[p];
    const std::uint64_t in_phase = in_exec - phaseStart_[p];
    const std::uint64_t iter = in_phase / phase.body.size();
    const std::uint64_t body_idx = in_phase % phase.body.size();
    const StaticInstr &si = phase.body[body_idx];

    // Dynamic occurrence count of this static instruction.
    const std::uint64_t k = exec * phase.iterations + iter;

    DynInstr di;
    di.tid = tid;
    di.seq = seq;
    di.op = si.op;
    di.dst = si.dst;
    di.src0 = si.src0;
    di.src1 = si.src1;
    di.prioNopReg = si.prioNopReg;
    di.pc = si.pc;
    if (isMemOp(si.op))
        di.addr = memPatterns_[si.memPattern].addressAt(k);
    if (si.op == OpClass::Branch)
        di.branchTaken = branchPatterns_[si.branchPattern].directionAt(k);
    return di;
}

std::vector<std::uint64_t>
SyntheticProgram::opClassMix() const
{
    std::vector<std::uint64_t> mix(num_op_classes, 0);
    for (const auto &phase : phases_)
        for (const auto &si : phase.body)
            mix[static_cast<int>(si.op)] += phase.iterations;
    return mix;
}

} // namespace p5
