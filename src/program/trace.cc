#include "program/trace.hh"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "ckpt/ckpt_io.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "program/stream.hh"

namespace p5 {

namespace {

/** Distinct chain constant: trace identities never collide with the
 *  checkpoint or config fingerprint domains. */
constexpr std::uint64_t trace_fp_chain = 0x7eace0de5eedc0deULL;

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
}

/** Unsigned LEB128 append. */
void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Bounds-checked payload cursor; every read reports underrun. */
struct ByteReader
{
    const std::uint8_t *data;
    std::size_t size;
    std::size_t pos = 0;

    bool
    u8(std::uint8_t &out)
    {
        if (pos >= size)
            return false;
        out = data[pos++];
        return true;
    }

    bool
    varint(std::uint64_t &out)
    {
        out = 0;
        for (int shift = 0; shift < 64; shift += 7) {
            std::uint8_t byte = 0;
            if (!u8(byte))
                return false;
            out |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
            if (!(byte & 0x80))
                return true;
        }
        return false; // > 10 continuation bytes: malformed
    }
};

bool
failLoad(std::string *error, const std::string &why)
{
    if (error)
        *error = why;
    return false;
}

/** Source-register wire encoding: 0 none, even = producer distance,
 *  odd = literal live-in register. */
std::uint64_t
encodeSrc(RegIndex reg, const std::vector<SeqNum> &producer_of,
          std::uint64_t idx)
{
    if (reg == invalid_reg)
        return 0;
    const SeqNum prod = producer_of[static_cast<std::size_t>(reg)];
    if (prod != static_cast<SeqNum>(-1))
        return (idx - prod) << 1;
    return ((static_cast<std::uint64_t>(reg) + 1) << 1) | 1;
}

bool
decodeSrc(std::uint64_t wire, const std::vector<PredecodedInstr> &table,
          std::uint64_t idx, RegIndex &out, std::string *error)
{
    if (wire == 0) {
        out = invalid_reg;
        return true;
    }
    const std::uint64_t payload = wire >> 1;
    if (wire & 1) { // literal live-in register
        if (payload == 0 ||
            payload > static_cast<std::uint64_t>(num_arch_regs))
            return failLoad(error, "source register out of range");
        out = static_cast<RegIndex>(payload - 1);
        return true;
    }
    // Backward distance to the producer record.
    if (payload == 0 || payload > idx)
        return failLoad(error, "dependence distance out of bounds");
    const RegIndex dst =
        table[static_cast<std::size_t>(idx - payload)].proto.dst;
    if (dst == invalid_reg)
        return failLoad(error,
                        "dependence distance points at a non-producer");
    out = dst;
    return true;
}

bool
readFileText(const std::string &path, std::string &out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    out = ss.str();
    return true;
}

std::uint64_t
headerU64(const JsonValue &hdr, const char *field, bool &ok)
{
    const JsonValue *v = hdr.find(field);
    if (!v || !v->isInt() || v->asInt() < 0) {
        ok = false;
        return 0;
    }
    return static_cast<std::uint64_t>(v->asInt());
}

/** Parse + validate the header line (without touching the payload). */
bool
parseHeaderLine(const std::string &line, const std::string &path,
                TraceHeader &out, std::string *error)
{
    JsonValue hdr;
    std::string parse_error;
    if (!tryParseJson(line, hdr, &parse_error, path))
        return failLoad(error, "bad trace header: " + parse_error);
    if (!hdr.isObject())
        return failLoad(error, "trace header is not a JSON object");

    const JsonValue *magic = hdr.find("magic");
    if (!magic || !magic->isString() ||
        magic->asString() != trace_magic)
        return failLoad(error, "not a p5sim trace (bad magic)");
    const JsonValue *version = hdr.find("version");
    if (!version || !version->isInt() ||
        version->asInt() != trace_format_version)
        return failLoad(error, "unsupported trace format version");
    const JsonValue *name = hdr.find("name");
    if (!name || !name->isString() || name->asString().empty())
        return failLoad(error, "trace header has no name");

    TraceHeader h;
    h.name = name->asString();
    bool ok = true;
    h.instrsPerExecution = headerU64(hdr, "instrsPerExecution", ok);
    h.records = headerU64(hdr, "records", ok);
    h.executions = headerU64(hdr, "executions", ok);
    h.bytes = headerU64(hdr, "bytes", ok);
    if (!ok)
        return failLoad(error, "trace header has a bad count field");
    const JsonValue *checksum = hdr.find("checksum");
    if (!checksum || !checksum->isString() ||
        checksum->asString().size() != 16)
        return failLoad(error, "trace header has a bad checksum field");
    std::uint64_t sum = 0;
    for (char c : checksum->asString()) {
        sum <<= 4;
        if (c >= '0' && c <= '9')
            sum |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            sum |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return failLoad(error,
                            "trace header has a bad checksum field");
    }
    h.checksum = sum;

    if (h.instrsPerExecution == 0 || h.executions == 0 ||
        h.records == 0)
        return failLoad(error, "trace header has a zero count");
    if (h.records != h.executions * h.instrsPerExecution)
        return failLoad(error,
                        "trace records != executions * instrsPerExecution");
    out = h;
    return true;
}

} // namespace

std::string
TraceHeader::fingerprint() const
{
    std::uint64_t h = hashMix(trace_fp_chain ^ name.size());
    for (char c : name)
        h = hashCombine(h, static_cast<unsigned char>(c));
    h = hashCombine(h, instrsPerExecution);
    h = hashCombine(h, records);
    h = hashCombine(h, executions);
    h = hashCombine(h, checksum);
    return hex16(h);
}

TraceProgram::TraceProgram(TraceHeader header,
                           std::vector<PredecodedInstr> table)
    : header_(std::move(header)), table_(std::move(table))
{
    if (table_.empty())
        fatal("trace '%s' has no records", header_.name.c_str());
    if (table_.size() != header_.records)
        fatal("trace '%s' table/header record mismatch",
              header_.name.c_str());
}

InstrSource::Cursor
TraceProgram::locate(SeqNum seq) const
{
    // One phase of `records` single-iteration records: replay wraps
    // modulo the recorded span.
    const std::uint64_t span = header_.records;
    Cursor cur;
    cur.exec = seq / span;
    cur.phase = 0;
    cur.iter = 0;
    cur.bodyIdx = static_cast<std::size_t>(seq % span);
    return cur;
}

std::vector<InstrSource::PhaseGeom>
TraceProgram::phaseGeometry() const
{
    return {{table_.size(), 1, 0}};
}

void
dumpTrace(const InstrSource &source, std::uint64_t executions,
          const std::string &path)
{
    if (executions == 0)
        fatal("dumpTrace: at least one execution is required");
    const std::uint64_t ipe = source.instrsPerExecution();
    const std::uint64_t n = executions * ipe;

    // Record the dynamic sequence through the same stream the core
    // would fetch from, so replay is bit-for-bit what a core saw.
    InstrStream stream(&source, 0);

    std::vector<std::uint8_t> payload;
    payload.reserve(static_cast<std::size_t>(n) * 6);
    std::vector<SeqNum> producer_of(num_arch_regs,
                                    static_cast<SeqNum>(-1));
    Addr prev_pc = 0;
    Addr prev_addr = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const DynInstr di = stream.fetch();
        const auto op = static_cast<std::uint8_t>(di.op);
        payload.push_back(op | (di.branchTaken ? 0x80 : 0));
        putVarint(payload,
                  di.dst == invalid_reg
                      ? 0
                      : static_cast<std::uint64_t>(di.dst) + 1);
        putVarint(payload, encodeSrc(di.src0, producer_of, i));
        putVarint(payload, encodeSrc(di.src1, producer_of, i));
        if (di.op == OpClass::PrioNop)
            putVarint(payload,
                      static_cast<std::uint64_t>(di.prioNopReg));
        putVarint(payload, zigzag(static_cast<std::int64_t>(
                               di.pc - prev_pc)));
        prev_pc = di.pc;
        if (isMemOp(di.op)) {
            putVarint(payload, zigzag(static_cast<std::int64_t>(
                                   di.addr - prev_addr)));
            prev_addr = di.addr;
        }
        if (di.dst != invalid_reg)
            producer_of[static_cast<std::size_t>(di.dst)] = i;
    }

    TraceHeader h;
    h.name = source.name();
    h.instrsPerExecution = ipe;
    h.records = n;
    h.executions = executions;
    h.bytes = payload.size();
    h.checksum = CkptWriter::ckptChecksum(payload.data(), payload.size());

    std::ostringstream header_line;
    {
        JsonWriter w(header_line, -1); // compact: one line
        w.beginObject();
        w.member("magic", trace_magic);
        w.member("version", trace_format_version);
        w.member("name", h.name);
        w.member("instrsPerExecution", h.instrsPerExecution);
        w.member("records", h.records);
        w.member("executions", h.executions);
        w.member("bytes", h.bytes);
        w.member("checksum", hex16(h.checksum));
        w.endObject();
    }

    // Atomic publication: write a temp file, then rename into place.
    static std::atomic<std::uint64_t> temp_counter{0};
    const std::string temp =
        path + ".tmp." + std::to_string(::getpid()) + "." +
        std::to_string(temp_counter.fetch_add(1));
    {
        std::ofstream os(temp, std::ios::binary | std::ios::trunc);
        if (!os)
            fatal("cannot write trace temp file '%s'", temp.c_str());
        os << header_line.str() << '\n';
        os.write(reinterpret_cast<const char *>(payload.data()),
                 static_cast<std::streamsize>(payload.size()));
        os.flush();
        if (!os)
            fatal("short write to trace temp file '%s'", temp.c_str());
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0)
        fatal("cannot publish trace '%s'", path.c_str());
}

bool
tryReadTraceHeader(const std::string &path, TraceHeader &out,
                   std::string *error)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return failLoad(error, "cannot open trace '" + path + "'");
    std::string line;
    if (!std::getline(is, line) || line.empty())
        return failLoad(error,
                        "trace '" + path + "' has no header line");
    return parseHeaderLine(line, path, out, error);
}

TraceHeader
readTraceHeader(const std::string &path)
{
    TraceHeader h;
    std::string error;
    if (!tryReadTraceHeader(path, h, &error))
        fatal("%s", error.c_str());
    return h;
}

bool
tryLoadTrace(const std::string &path,
             std::unique_ptr<TraceProgram> &out, std::string *error)
{
    std::string blob;
    if (!readFileText(path, blob))
        return failLoad(error, "cannot open trace '" + path + "'");
    const std::size_t nl = blob.find('\n');
    if (nl == std::string::npos)
        return failLoad(error,
                        "trace '" + path + "' has no header line");
    TraceHeader h;
    if (!parseHeaderLine(blob.substr(0, nl), path, h, error))
        return false;

    const auto *payload =
        reinterpret_cast<const std::uint8_t *>(blob.data()) + nl + 1;
    const std::size_t payload_size = blob.size() - nl - 1;
    if (payload_size != h.bytes)
        return failLoad(error, "trace payload is " +
                                   std::to_string(payload_size) +
                                   " bytes, header says " +
                                   std::to_string(h.bytes));
    if (CkptWriter::ckptChecksum(payload, payload_size) != h.checksum)
        return failLoad(error, "trace payload checksum mismatch");

    std::vector<PredecodedInstr> table;
    table.reserve(static_cast<std::size_t>(h.records));
    ByteReader r{payload, payload_size};
    Addr prev_pc = 0;
    Addr prev_addr = 0;
    for (std::uint64_t i = 0; i < h.records; ++i) {
        std::uint8_t op_byte = 0;
        std::uint64_t dst = 0, src0 = 0, src1 = 0;
        if (!r.u8(op_byte) || !r.varint(dst) || !r.varint(src0) ||
            !r.varint(src1))
            return failLoad(error, "trace payload truncated");
        const std::uint8_t op_raw = op_byte & 0x7f;
        if (op_raw >= static_cast<std::uint8_t>(OpClass::NumOpClasses))
            return failLoad(error, "trace record has a bad op class");
        const auto op = static_cast<OpClass>(op_raw);
        if ((op_byte & 0x80) && op != OpClass::Branch)
            return failLoad(error,
                            "taken bit set on a non-branch record");
        if (dst > static_cast<std::uint64_t>(num_arch_regs))
            return failLoad(error,
                            "destination register out of range");

        PredecodedInstr ps;
        ps.proto.op = op;
        ps.proto.dst =
            dst == 0 ? invalid_reg : static_cast<RegIndex>(dst - 1);
        ps.proto.branchTaken = (op_byte & 0x80) != 0;
        if (!decodeSrc(src0, table, i, ps.proto.src0, error) ||
            !decodeSrc(src1, table, i, ps.proto.src1, error))
            return false;
        if (op == OpClass::PrioNop) {
            std::uint64_t prio_reg = 0;
            if (!r.varint(prio_reg))
                return failLoad(error, "trace payload truncated");
            if (prio_reg >= static_cast<std::uint64_t>(num_arch_regs))
                return failLoad(error,
                                "PrioNop register out of range");
            ps.proto.prioNopReg = static_cast<int>(prio_reg);
        }
        std::uint64_t pc_delta = 0;
        if (!r.varint(pc_delta))
            return failLoad(error, "trace payload truncated");
        ps.proto.pc =
            prev_pc + static_cast<Addr>(unzigzag(pc_delta));
        prev_pc = ps.proto.pc;
        if (isMemOp(op)) {
            std::uint64_t addr_delta = 0;
            if (!r.varint(addr_delta))
                return failLoad(error, "trace payload truncated");
            ps.proto.addr =
                prev_addr + static_cast<Addr>(unzigzag(addr_delta));
            prev_addr = ps.proto.addr;
        }
        table.push_back(ps);
    }
    if (r.pos != r.size)
        return failLoad(error,
                        "trace payload has trailing bytes after the "
                        "last record");

    out = std::make_unique<TraceProgram>(h, std::move(table));
    return true;
}

std::unique_ptr<TraceProgram>
loadTrace(const std::string &path)
{
    std::unique_ptr<TraceProgram> prog;
    std::string error;
    if (!tryLoadTrace(path, prog, &error))
        fatal("%s", error.c_str());
    return prog;
}

std::string
quarantineTrace(const std::string &path)
{
    const std::string bad = path + ".bad";
    if (std::rename(path.c_str(), bad.c_str()) != 0)
        fatal("cannot quarantine corrupt trace '%s'", path.c_str());
    warn("quarantined corrupt trace to '%s'", bad.c_str());
    return bad;
}

} // namespace p5
