/**
 * @file
 * Linux-kernel model for the priority experiments (paper Sec. 4.3).
 *
 * The stock 2.6.23 kernel on POWER5:
 *  - exposes only priorities 2..4 to user code (the or-nop form);
 *  - itself lowers a hardware thread's priority when it spins on a
 *    lock, waits for an smp_call_function(), or runs the idle loop;
 *  - does not track priorities, so it conservatively resets a thread to
 *    MEDIUM (4) on *every* kernel entry: interrupts, exceptions and
 *    system calls.
 *
 * The paper's experimental kernel patch (a) exposes priorities 1..6
 * through a /sys interface, (b) removes the kernel's own priority
 * writes, and (c) leaves 0 and 7 to a hypervisor call. KernelSim models
 * both configurations: construct with patched=false for stock
 * behaviour, patched=true for the paper's environment.
 */

#ifndef P5SIM_OS_KERNEL_HH
#define P5SIM_OS_KERNEL_HH

#include <array>

#include "common/stats.hh"
#include "core/smt_core.hh"

namespace p5 {

/** Reasons a hardware thread enters the kernel. */
enum class KernelEntry
{
    Interrupt,
    Exception,
    Syscall
};

/** Kernel configuration. */
struct KernelParams
{
    /** The paper's patch: expose 1..6, remove kernel priority writes. */
    bool patched = false;

    /** Cycles between timer interrupts (0 disables the timer). */
    Cycle timerPeriod = 1'000'000;

    /** Cycles a kernel entry keeps the thread busy. */
    Cycle entryOverhead = 200;
};

/** Models the kernel's interaction with the priority hardware. */
class KernelSim
{
  public:
    /** @param core must outlive the kernel. */
    KernelSim(SmtCore *core, const KernelParams &params);

    const KernelParams &params() const { return params_; }

    /**
     * Advance the core one cycle, injecting timer interrupts on both
     * hardware threads at the configured period.
     */
    void tick();

    /** Advance @p cycles cycles. */
    void run(Cycle cycles);

    /**
     * A kernel entry on @p tid. The stock kernel resets the thread's
     * priority to MEDIUM; the patched kernel leaves priorities alone.
     */
    void enterKernel(ThreadId tid, KernelEntry reason);

    /**
     * The /sys interface of the kernel patch: request priority @p prio
     * for @p tid on behalf of user software. With the patch the request
     * is executed with supervisor rights (1..6); without it only the
     * plain user or-nop levels (2..4) work.
     *
     * @return true when the priority was applied.
     */
    bool sysSetPriority(ThreadId tid, int prio);

    /**
     * Hypervisor call: the full 0..7 range, including shutting a thread
     * off (0) and single-thread mode (7).
     */
    bool hcallSetPriority(ThreadId tid, int prio);

    /**
     * The kernel begins spinning on a lock / waiting for a cross-CPU
     * call on @p tid: its priority drops to the spin level (1, Very
     * low). Restored to MEDIUM by endSpin().
     */
    void beginSpin(ThreadId tid);
    void endSpin(ThreadId tid);

    /** The idle loop runs on @p tid: drop priority (stock kernel). */
    void enterIdle(ThreadId tid);
    void exitIdle(ThreadId tid);

    std::uint64_t priorityResets() const { return resets_.value(); }
    std::uint64_t timerInterrupts() const { return timerIrqs_.value(); }

  private:
    SmtCore *core_;
    KernelParams params_;
    Cycle nextTimer_;
    std::array<bool, num_hw_threads> spinning_{};
    std::array<bool, num_hw_threads> idle_{};

    Counter resets_;
    Counter timerIrqs_;
};

} // namespace p5

#endif // P5SIM_OS_KERNEL_HH
