#include "os/kernel.hh"

#include "common/log.hh"

namespace p5 {

namespace {

/** Priority the stock kernel uses for spinning/idle contexts. */
constexpr int spin_priority = 1;

} // namespace

KernelSim::KernelSim(SmtCore *core, const KernelParams &params)
    : core_(core), params_(params),
      nextTimer_(params.timerPeriod ? params.timerPeriod : never_cycle)
{
    if (!core_)
        panic("KernelSim constructed with null core");
}

void
KernelSim::tick()
{
    if (core_->cycle() >= nextTimer_) {
        ++timerIrqs_;
        for (ThreadId t = 0; t < num_hw_threads; ++t)
            if (core_->threadAttached(t))
                enterKernel(t, KernelEntry::Interrupt);
        nextTimer_ += params_.timerPeriod;
    }
    core_->tick();
}

void
KernelSim::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        tick();
}

void
KernelSim::enterKernel(ThreadId tid, KernelEntry reason)
{
    (void)reason;
    if (params_.patched)
        return; // the patch removes every kernel priority write
    if (spinning_[static_cast<size_t>(tid)] ||
        idle_[static_cast<size_t>(tid)])
        return; // those paths manage the priority themselves
    // The stock kernel does not track priorities: conservatively reset
    // to MEDIUM on every kernel service routine.
    if (core_->priorityOf(tid) != default_priority) {
        core_->requestPriority(tid, default_priority,
                               PrivilegeLevel::Supervisor);
        ++resets_;
    }
}

bool
KernelSim::sysSetPriority(ThreadId tid, int prio)
{
    if (!isValidPriority(prio))
        return false;
    if (params_.patched) {
        // The patch executes the request in kernel mode: 1..6.
        return core_->requestPriority(tid, prio,
                                      PrivilegeLevel::Supervisor);
    }
    // Without the patch, user software can only use the or-nop levels.
    return core_->requestPriority(tid, prio, PrivilegeLevel::User);
}

bool
KernelSim::hcallSetPriority(ThreadId tid, int prio)
{
    return core_->requestPriority(tid, prio, PrivilegeLevel::Hypervisor);
}

void
KernelSim::beginSpin(ThreadId tid)
{
    spinning_[static_cast<size_t>(tid)] = true;
    if (!params_.patched)
        core_->requestPriority(tid, spin_priority,
                               PrivilegeLevel::Supervisor);
}

void
KernelSim::endSpin(ThreadId tid)
{
    spinning_[static_cast<size_t>(tid)] = false;
    if (!params_.patched)
        core_->requestPriority(tid, default_priority,
                               PrivilegeLevel::Supervisor);
}

void
KernelSim::enterIdle(ThreadId tid)
{
    idle_[static_cast<size_t>(tid)] = true;
    if (!params_.patched)
        core_->requestPriority(tid, spin_priority,
                               PrivilegeLevel::Supervisor);
}

void
KernelSim::exitIdle(ThreadId tid)
{
    idle_[static_cast<size_t>(tid)] = false;
    if (!params_.patched)
        core_->requestPriority(tid, default_priority,
                               PrivilegeLevel::Supervisor);
}

} // namespace p5
