#include "core/params.hh"

#include "common/log.hh"

namespace p5 {

int
CoreParams::fuOccupancy(OpClass oc) const
{
    // POWER5's FXU multiply and both divides are not fully pipelined,
    // and stores hold their LSU slot for address generation + data
    // steering, which makes store-heavy loops LS-bandwidth bound.
    switch (oc) {
      case OpClass::IntMul:
        return 3;
      case OpClass::IntDiv:
        return 36;
      case OpClass::FpDiv:
        return 33;
      case OpClass::Store:
        return 2;
      default:
        return 1;
    }
}

void
CoreParams::validate() const
{
    if (decodeWidth <= 0 || decodeWidth > 8)
        fatal("decodeWidth %d out of range", decodeWidth);
    if (minoritySlotWidth <= 0 || minoritySlotWidth > decodeWidth)
        fatal("minoritySlotWidth must be in [1, decodeWidth]");
    if (groupSize <= 0 || groupSize > decodeWidth)
        fatal("groupSize %d must be in [1, decodeWidth]", groupSize);
    if (gctGroups <= 1)
        fatal("gctGroups %d too small", gctGroups);
    if (lmqEntries <= 0)
        fatal("lmqEntries %d must be positive", lmqEntries);
    if (mispredictPenalty < 0)
        fatal("mispredictPenalty must be >= 0");
    for (int fc = 0; fc < static_cast<int>(FuClass::None); ++fc)
        if (fuCount[fc] <= 0)
            fatal("fuCount[%s] must be positive",
                  fuClassName(static_cast<FuClass>(fc)));
    if (balancer.gctShareThreshold <= 0.0 ||
        balancer.gctShareThreshold > 1.0)
        fatal("balancer.gctShareThreshold must be in (0, 1]");
    if (balancer.lmqThreshold <= 0 || balancer.lmqThreshold > lmqEntries)
        fatal("balancer.lmqThreshold must be in [1, lmqEntries]");
}

} // namespace p5
