/**
 * @file
 * Ready-instruction queues.
 *
 * Instructions whose operands are available wait here, one queue per
 * functional-unit class, ordered oldest-first by dispatch stamp across
 * both threads. Entries are (tid, seq, epoch) references validated by the
 * core at pop time, so squashed instructions simply evaporate.
 */

#ifndef P5SIM_CORE_ISSUE_QUEUE_HH
#define P5SIM_CORE_ISSUE_QUEUE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/op_class.hh"

namespace p5 {

/** Reference to an in-flight instruction awaiting issue. */
struct ReadyRef
{
    std::uint64_t stamp = 0; ///< global dispatch order (issue priority)
    ThreadId tid = 0;
    SeqNum seq = 0;
    std::uint64_t epoch = 0; ///< thread squash epoch at dispatch
    std::uint32_t slot = 0;  ///< window-slot hint for O(1) resolve
};

/** Oldest-first (smallest stamp) ordering for the ready heaps. */
struct ReadyRefLater
{
    bool
    operator()(const ReadyRef &a, const ReadyRef &b) const
    {
        return a.stamp > b.stamp;
    }
};

/**
 * Per-FuClass oldest-first ready queues.
 *
 * Each queue is a binary heap over a plain vector (std::push_heap /
 * std::pop_heap) rather than std::priority_queue, so observers — the
 * p5check flow checker in particular — can walk the live entries
 * without disturbing them.
 */
class IssueQueue
{
  public:
    IssueQueue();

    /** Enqueue a ready instruction for its unit class. */
    void push(FuClass fc, const ReadyRef &ref);

    bool empty(FuClass fc) const;

    std::size_t size(FuClass fc) const;

    /** Peek the oldest entry; queue must be non-empty. */
    const ReadyRef &top(FuClass fc) const;

    /** Remove the oldest entry; queue must be non-empty. */
    ReadyRef pop(FuClass fc);

    /** Drop everything (between runs). */
    void clear();

    /** Total entries across all classes. */
    std::size_t totalSize() const;

    /** Live entries of @p fc in heap order (observers only). */
    const std::vector<ReadyRef> &
    entries(FuClass fc) const
    {
        return queues_[static_cast<int>(fc)];
    }

    /** Serialize every heap array verbatim (heap order preserved). */
    void saveState(class CkptWriter &w) const;

    /** Restore state saved by saveState(). */
    void restoreState(class CkptReader &r);

  private:
    std::vector<ReadyRef> queues_[static_cast<int>(FuClass::NumFuClasses)];
};

} // namespace p5

#endif // P5SIM_CORE_ISSUE_QUEUE_HH
