#include "core/chip.hh"

#include "common/log.hh"

namespace p5 {

Chip::Chip(const CoreParams &base)
{
    backside_ = std::make_unique<MemBackside>(base.mem);
    for (int c = 0; c < num_cores; ++c) {
        CoreParams p = base;
        p.coreId = c;
        cores_[c] = std::make_unique<SmtCore>(p, backside_.get());
    }
}

SmtCore &
Chip::core(int idx)
{
    if (idx < 0 || idx >= num_cores)
        panic("Chip::core(%d) out of range", idx);
    return *cores_[idx];
}

const SmtCore &
Chip::core(int idx) const
{
    if (idx < 0 || idx >= num_cores)
        panic("Chip::core(%d) out of range", idx);
    return *cores_[idx];
}

void
Chip::tick()
{
    for (auto &core : cores_)
        core->tick();
}

void
Chip::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        tick();
}

} // namespace p5
