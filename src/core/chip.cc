#include "core/chip.hh"

#include <cassert>

#include "common/log.hh"

namespace p5 {

void
ChipParams::validate() const
{
    if (numCores < 1 || numCores > max_cores)
        fatal("ChipParams::numCores %d out of range [1, %d]", numCores,
              max_cores);
    core.validate();
}

Chip::Chip(const ChipParams &params)
{
    params.validate();
    backside_ = std::make_unique<MemBackside>(params.core.mem);
    cores_.reserve(static_cast<std::size_t>(params.numCores));
    for (int c = 0; c < params.numCores; ++c) {
        CoreParams p = params.core;
        p.coreId = c;
        cores_.push_back(std::make_unique<SmtCore>(p, backside_.get()));
    }
    gates_.resize(cores_.size());
}

Chip::Chip(const CoreParams &base) : Chip(ChipParams{2, base}) {}

SmtCore &
Chip::core(int idx)
{
    if (idx < 0 || idx >= numCores())
        panic("Chip::core(%d) out of range", idx);
    return *cores_[static_cast<std::size_t>(idx)];
}

const SmtCore &
Chip::core(int idx) const
{
    if (idx < 0 || idx >= numCores())
        panic("Chip::core(%d) out of range", idx);
    return *cores_[static_cast<std::size_t>(idx)];
}

void
Chip::tick()
{
    for (auto &core : cores_)
        core->tick();
}

void
Chip::run(Cycle cycles)
{
    const Cycle end = saturatingAdd(cycle(), cycles);
    const bool ff = cores_[0]->params().fastForward;

    // Chip-level adaptive arming, mirroring SmtCore::run(): probe the
    // coordinated skip only after a tick in which no core made
    // progress. Arming is a pure wall-clock optimization — an
    // un-probed idle cycle is simply ticked — so it never changes
    // stats. Armed at entry like a fresh core.
    constexpr std::uint32_t arm_streak = 2;
    std::uint32_t idle_streak = arm_streak;

    while (cycle() < end) {
        if (ff && idle_streak >= arm_streak) {
            // A joint skip is valid only when every core is idle this
            // cycle: the probes are side-effect-free, and jumping all
            // cores to the chip-wide minimum target keeps each core
            // inside its own verified-idle gap (any prefix of an idle
            // gap is idle) while no core can touch the shared
            // backside in between.
            Cycle target = end;
            bool all_idle = true;
            for (std::size_t c = 0; c < cores_.size(); ++c) {
                const Cycle t = cores_[c]->idleTarget(end, &gates_[c]);
                if (t <= cores_[c]->cycle()) {
                    all_idle = false;
                    break;
                }
                if (t < target)
                    target = t;
            }
            if (all_idle) {
                for (std::size_t c = 0; c < cores_.size(); ++c)
                    cores_[c]->skipIdleTo(target, gates_[c]);
                continue;
            }
        }
        bool progress = false;
        for (auto &core : cores_) {
            core->tick();
            progress = progress || core->tickMadeProgress();
        }
        idle_streak = progress ? 0 : idle_streak + 1;
    }
}

Cycle
Chip::cycle() const
{
#ifndef NDEBUG
    for (const auto &core : cores_)
        assert(core->cycle() == cores_[0]->cycle() &&
               "Chip lockstep contract violated: a core was advanced "
               "behind the chip's back");
#endif
    return cores_[0]->cycle();
}

} // namespace p5
