#include "core/balancer.hh"

#include <algorithm>

namespace p5 {

Balancer::Balancer(const BalancerParams &params) : params_(params) {}

void
Balancer::setPriorityView(const DecodeSlotAllocator *allocator)
{
    priorities_ = allocator;
}

int
Balancer::lmqThresholdFor(ThreadId tid, int lmq_capacity) const
{
    if (!params_.priorityAwareLmq || !priorities_ ||
        priorities_->mode() != SlotMode::Dual)
        return params_.lmqThreshold;
    const double scaled =
        params_.lmqThreshold * 2.0 * priorities_->shareOf(tid);
    return std::clamp(static_cast<int>(scaled), 1,
                      std::max(1, lmq_capacity - 1));
}

double
Balancer::gctThresholdFor(ThreadId tid) const
{
    if (!params_.priorityAwareGct || !priorities_ ||
        priorities_->mode() != SlotMode::Dual)
        return params_.gctShareThreshold;
    const double scaled =
        params_.gctShareThreshold * 2.0 * priorities_->shareOf(tid);
    return std::clamp(scaled, params_.minGctShareThreshold,
                      params_.maxGctShareThreshold);
}

BalancerDecision
Balancer::probe(const Gct &gct, const Lmq &lmq, const Lsu &lsu,
                bool both_running, Cycle now) const
{
    BalancerDecision d;
    if (!params_.enabled)
        return d;

    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<size_t>(t);

        // Resource hogging is only "offending" when there is a sibling
        // to block.
        if (!both_running)
            continue;

        // An outstanding TLB walk blocks further decode of the walking
        // thread (it would only pile more work behind the walk).
        if (params_.blockOnTlbMiss && lsu.tlbWalkInProgress(t, now)) {
            d.block[ti] = true;
            d.reason[ti] = BalanceBlock::Tlb;
            continue;
        }

        const int gct_held = gct.occupancyOf(t);
        const bool gct_hog =
            gct_held > params_.minGctGroups &&
            static_cast<double>(gct_held) >
                gctThresholdFor(t) * gct.capacity();
        if (gct_hog) {
            d.block[ti] = true;
            d.reason[ti] = BalanceBlock::Gct;
            if (params_.action == BalanceAction::Flush)
                d.flush[ti] = true;
            continue;
        }

        if (lmq.busyOfAt(t, now) >=
            lmqThresholdFor(t, lmq.capacity())) {
            d.block[ti] = true;
            d.reason[ti] = BalanceBlock::Lmq;
        }
    }
    return d;
}

void
Balancer::charge(const BalancerDecision &d, std::uint64_t cycles)
{
    for (size_t ti = 0; ti < num_hw_threads; ++ti) {
        switch (d.reason[ti]) {
          case BalanceBlock::None:
            break;
          case BalanceBlock::Tlb:
            tlbBlocks_[ti] += cycles;
            break;
          case BalanceBlock::Gct:
            gctBlocks_[ti] += cycles;
            if (d.flush[ti])
                flushes_[ti] += cycles;
            break;
          case BalanceBlock::Lmq:
            lmqBlocks_[ti] += cycles;
            break;
        }
    }
}

BalancerDecision
Balancer::evaluate(const Gct &gct, const Lmq &lmq, const Lsu &lsu,
                   bool both_running, Cycle now)
{
    BalancerDecision d = probe(gct, lmq, lsu, both_running, now);
    charge(d, 1);
    return d;
}

void
Balancer::registerStats(StatGroup &group) const
{
    for (int t = 0; t < num_hw_threads; ++t) {
        auto ts = std::to_string(t);
        group.registerCounter("balancer.thread" + ts + ".gctBlocks",
                              &gctBlocks_[static_cast<size_t>(t)]);
        group.registerCounter("balancer.thread" + ts + ".lmqBlocks",
                              &lmqBlocks_[static_cast<size_t>(t)]);
        group.registerCounter("balancer.thread" + ts + ".tlbBlocks",
                              &tlbBlocks_[static_cast<size_t>(t)]);
        group.registerCounter("balancer.thread" + ts + ".flushes",
                              &flushes_[static_cast<size_t>(t)]);
    }
}

} // namespace p5
