/**
 * @file
 * Decode-slot arbitration.
 *
 * Combines the software-priority slot allocator with per-cycle usability
 * (redirect penalties, balancer blocks, GCT space) and accounts for what
 * happened to every slot. A slot whose owner cannot use it is forfeited —
 * POWER5 slots are strictly owned — unless the work-conserving ablation
 * knob hands it to the sibling.
 */

#ifndef P5SIM_CORE_DECODE_ARBITER_HH
#define P5SIM_CORE_DECODE_ARBITER_HH

#include <array>

#include "common/stats.hh"
#include "common/types.hh"
#include "prio/slot_allocator.hh"

namespace p5 {

/** The decode arbiter of one SMT core. */
class DecodeArbiter
{
  public:
    DecodeArbiter(int decode_width, int minority_width,
                  bool work_conserving);

    /** Access to the underlying priority allocator. */
    DecodeSlotAllocator &allocator() { return allocator_; }
    const DecodeSlotAllocator &allocator() const { return allocator_; }

    /**
     * Decide this cycle's decode grant.
     *
     * @param can_use whether each thread could decode this cycle if
     *        granted the slot (attached, not blocked, has GCT space).
     */
    SlotGrant decide(Cycle now,
                     const std::array<bool, num_hw_threads> &can_use);

    /**
     * Account every slot in [@p begin, @p end) as forfeited by its
     * owner. Used by the fast-forward path for gaps where no thread can
     * decode: decide() would have charged exactly one forfeit to the
     * slot owner of each cycle, which ownedSlotsInRange() reproduces
     * arithmetically.
     */
    void chargeForfeits(Cycle begin, Cycle end);

    /** Whether forfeited slots are handed to a usable sibling. */
    bool workConserving() const { return workConserving_; }

    std::uint64_t
    slotsGrantedTo(ThreadId tid) const
    {
        return granted_[static_cast<size_t>(tid)].value();
    }
    std::uint64_t
    slotsForfeitedBy(ThreadId tid) const
    {
        return forfeited_[static_cast<size_t>(tid)].value();
    }
    std::uint64_t
    slotsReassignedTo(ThreadId tid) const
    {
        return reassigned_[static_cast<size_t>(tid)].value();
    }

    void registerStats(StatGroup &group) const;

    /**
     * Serialize the slot counters. The allocator is a pure function of
     * the priorities, which the restoring core re-applies itself.
     */
    void saveState(class CkptWriter &w) const;

    /** Restore state saved by saveState(). */
    void restoreState(class CkptReader &r);

  private:
    DecodeSlotAllocator allocator_;
    bool workConserving_;

    std::array<Counter, num_hw_threads> granted_;
    std::array<Counter, num_hw_threads> forfeited_;
    std::array<Counter, num_hw_threads> reassigned_;
};

} // namespace p5

#endif // P5SIM_CORE_DECODE_ARBITER_HH
