#include "core/decode_arbiter.hh"

namespace p5 {

DecodeArbiter::DecodeArbiter(int decode_width, int minority_width,
                             bool work_conserving)
    : allocator_(decode_width, minority_width),
      workConserving_(work_conserving)
{
}

SlotGrant
DecodeArbiter::decide(Cycle now,
                      const std::array<bool, num_hw_threads> &can_use)
{
    SlotGrant g = allocator_.grantAt(now);
    if (g.owner < 0)
        return g;

    const auto owner = static_cast<size_t>(g.owner);
    if (can_use[owner]) {
        ++granted_[owner];
        return g;
    }

    ++forfeited_[owner];
    const ThreadId sibling = static_cast<ThreadId>(1 - g.owner);
    if (workConserving_ && can_use[static_cast<size_t>(sibling)] &&
        allocator_.threadActive(sibling)) {
        g.owner = sibling;
        ++reassigned_[static_cast<size_t>(sibling)];
        return g;
    }

    g.owner = -1;
    g.maxWidth = 0;
    return g;
}

void
DecodeArbiter::chargeForfeits(Cycle begin, Cycle end)
{
    const auto owned = allocator_.ownedSlotsInRange(begin, end);
    for (size_t ti = 0; ti < num_hw_threads; ++ti)
        forfeited_[ti] += owned[ti];
}

void
DecodeArbiter::registerStats(StatGroup &group) const
{
    for (int t = 0; t < num_hw_threads; ++t) {
        auto ts = std::to_string(t);
        group.registerCounter("decode.thread" + ts + ".slotsGranted",
                              &granted_[static_cast<size_t>(t)]);
        group.registerCounter("decode.thread" + ts + ".slotsForfeited",
                              &forfeited_[static_cast<size_t>(t)]);
        group.registerCounter("decode.thread" + ts + ".slotsReassigned",
                              &reassigned_[static_cast<size_t>(t)]);
    }
}

} // namespace p5
