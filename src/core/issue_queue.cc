#include "core/issue_queue.hh"

#include <algorithm>

#include "common/annotate.hh"
#include "common/log.hh"

namespace p5 {

IssueQueue::IssueQueue()
{
    // Above the worst-case high-water mark (both threads' windows are
    // GCT-bound, so ready entries of one class can't exceed the total
    // in-flight count), so pushes never reallocate on the busy path.
    for (auto &q : queues_)
        q.reserve(256);
}

void
IssueQueue::push(FuClass fc, const ReadyRef &ref)
{
    auto &q = queues_[static_cast<int>(fc)];
    // Pre-reserved in the constructor (above the worst-case
    // high-water mark); push only spills if that bound is wrong.
    P5_ALLOW(hot_path_no_alloc) q.push_back(ref);
    std::push_heap(q.begin(), q.end(), ReadyRefLater{});
}

bool
IssueQueue::empty(FuClass fc) const
{
    return queues_[static_cast<int>(fc)].empty();
}

std::size_t
IssueQueue::size(FuClass fc) const
{
    return queues_[static_cast<int>(fc)].size();
}

const ReadyRef &
IssueQueue::top(FuClass fc) const
{
    const auto &q = queues_[static_cast<int>(fc)];
    if (q.empty())
        panic("IssueQueue::top on empty %s queue", fuClassName(fc));
    return q.front();
}

ReadyRef
IssueQueue::pop(FuClass fc)
{
    auto &q = queues_[static_cast<int>(fc)];
    if (q.empty())
        panic("IssueQueue::pop on empty %s queue", fuClassName(fc));
    std::pop_heap(q.begin(), q.end(), ReadyRefLater{});
    ReadyRef ref = q.back();
    q.pop_back();
    return ref;
}

void
IssueQueue::clear()
{
    for (auto &q : queues_)
        q.clear();
}

std::size_t
IssueQueue::totalSize() const
{
    std::size_t n = 0;
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

} // namespace p5
