/**
 * @file
 * Functional-unit pool.
 *
 * Tracks per-unit busy-until cycles so that partially pipelined operations
 * (integer multiply, divides) block their unit for several cycles, as on
 * the real FXU/FPU — one of the effects that keeps cpu_int's ST IPC near 1
 * despite two fixed-point units.
 */

#ifndef P5SIM_CORE_FU_POOL_HH
#define P5SIM_CORE_FU_POOL_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/op_class.hh"

namespace p5 {

/** Pool of functional units, grouped by FuClass. */
class FuPool
{
  public:
    /** @param counts units per FuClass (index by FuClass). */
    explicit FuPool(const int counts[static_cast<int>(
        FuClass::NumFuClasses)]);

    /**
     * Try to acquire a unit of class @p fc at cycle @p now, holding it
     * for @p occupancy cycles.
     *
     * @return true on success. FuClass::None always succeeds (nops do
     *         not occupy a unit).
     */
    bool tryAcquire(FuClass fc, Cycle now, int occupancy);

    /** Free units of class @p fc at cycle @p now. */
    int freeUnits(FuClass fc, Cycle now) const;

    /**
     * Earliest cycle at which a unit of class @p fc is (or becomes)
     * free: @p now itself when one is already free, never_cycle when
     * the class has no units at all. Fast-forward next-event contract:
     * freeUnits(fc, c) == 0 for all c in [now, nextFreeCycle(fc, now)).
     */
    Cycle nextFreeCycle(FuClass fc, Cycle now) const;

    int unitCount(FuClass fc) const;

    /** Release every unit (used between experiment runs). */
    void reset();

    std::uint64_t
    acquisitions(FuClass fc) const
    {
        return acquisitions_[static_cast<int>(fc)].value();
    }

    void registerStats(StatGroup &group) const;

    /** Serialize per-unit busy-until cycles and counters. */
    void saveState(class CkptWriter &w) const;

    /** Restore state saved by saveState(); unit counts must match. */
    void restoreState(class CkptReader &r);

  private:
    std::vector<Cycle> busyUntil_[static_cast<int>(FuClass::NumFuClasses)];
    Counter acquisitions_[static_cast<int>(FuClass::NumFuClasses)];
};

} // namespace p5

#endif // P5SIM_CORE_FU_POOL_HH
