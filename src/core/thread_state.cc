#include "core/thread_state.hh"

#include "common/log.hh"

namespace p5 {

void
ThreadState::attach(const InstrSource *source,
                    std::size_t window_capacity)
{
    if (!source)
        panic("ThreadState::attach(null source)");
    stream_ = std::make_unique<InstrStream>(source, tid_);
    window.clear();
    if (window_capacity > 0) {
        window.reserve(window_capacity);
        // Pre-warm every pooled slot's wakeup-list spill buffer to the
        // fan-out high-water mark (a hot producer in a tight loop feeds
        // every consumer dispatched before it completes — ~30 on the
        // compute-bound micro-benchmarks). Paying all the growth here
        // keeps steady-state dispatch allocation-free (DESIGN §8).
        window.forEachSlot(
            [](InFlight &e) { e.dependents.reserve(dependents_reserve); });
    }
    for (auto &e : renameMap)
        e = RenameEntry{};
    epoch = 0;
    decodeBlockedUntil = 0;
    committed = 0;
    executionsCompleted = 0;
    lastExecutionCycle = 0;
}

void
ThreadState::detach()
{
    stream_.reset();
    window.clear();
    for (auto &e : renameMap)
        e = RenameEntry{};
}

InFlight *
ThreadState::find(SeqNum seq)
{
    if (window.empty())
        return nullptr;
    const SeqNum head = window.front().di.seq;
    if (seq < head)
        return nullptr;
    const std::uint64_t idx = seq - head;
    if (idx >= window.size())
        return nullptr;
    return &window[static_cast<std::size_t>(idx)];
}

const InFlight *
ThreadState::find(SeqNum seq) const
{
    return const_cast<ThreadState *>(this)->find(seq);
}

InFlight *
ThreadState::find(SeqNum seq, std::uint64_t expected_epoch)
{
    InFlight *e = find(seq);
    if (!e || e->epoch != expected_epoch)
        return nullptr;
    return e;
}

void
ThreadState::rebuildRenameMap()
{
    for (auto &e : renameMap)
        e = RenameEntry{};
    for (const auto &entry : window) {
        if (entry.di.dst != invalid_reg) {
            RenameEntry &re = renameMap[entry.di.dst];
            re.valid = true;
            re.seq = entry.di.seq;
            re.epoch = entry.epoch;
        }
    }
}

} // namespace p5
