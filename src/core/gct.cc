#include "core/gct.hh"

#include "common/annotate.hh"
#include "common/log.hh"

namespace p5 {

Gct::Gct(int num_groups) : capacity_(num_groups)
{
    if (num_groups <= 0)
        fatal("GCT needs at least one group");
    // Occupancy never exceeds capacity, so pre-sizing the rings here
    // keeps the per-cycle allocate/retire path allocation-free.
    for (auto &q : groups_)
        q.reserve(static_cast<std::size_t>(num_groups));
}

void
Gct::allocate(ThreadId tid, SeqNum start_seq, int count)
{
    if (!hasFreeGroup())
        panic("GCT allocate with no free group");
    if (count <= 0)
        panic("GCT allocate with count %d", count);
    auto &q = groups_[static_cast<size_t>(tid)];
    if (!q.empty()) {
        const GctGroup &last = q.back();
        if (start_seq != last.startSeq + static_cast<SeqNum>(last.count))
            panic("GCT groups of thread %d not contiguous", tid);
    }
    // Rings are pre-sized to full GCT capacity in the constructor;
    // occupancy can never exceed it, so this push never reallocates.
    P5_ALLOW(hot_path_no_alloc) q.push_back({start_seq, count});
    ++allocated_;
}

const GctGroup &
Gct::oldest(ThreadId tid) const
{
    const auto &q = groups_[static_cast<size_t>(tid)];
    if (q.empty())
        panic("GCT oldest() on empty thread %d", tid);
    return q.front();
}

void
Gct::popOldest(ThreadId tid)
{
    auto &q = groups_[static_cast<size_t>(tid)];
    if (q.empty())
        panic("GCT popOldest() on empty thread %d", tid);
    q.pop_front();
    ++retired_;
}

void
Gct::squash(ThreadId tid, SeqNum last_good_seq)
{
    squashFrom(tid, last_good_seq + 1);
}

void
Gct::squashFrom(ThreadId tid, SeqNum first_bad_seq)
{
    auto &q = groups_[static_cast<size_t>(tid)];
    while (!q.empty()) {
        GctGroup &g = q.back();
        if (g.startSeq >= first_bad_seq) {
            q.pop_back();
            continue;
        }
        const SeqNum end = g.startSeq + static_cast<SeqNum>(g.count);
        if (end > first_bad_seq)
            g.count = static_cast<int>(first_bad_seq - g.startSeq);
        break;
    }
}

void
Gct::clearThread(ThreadId tid)
{
    groups_[static_cast<size_t>(tid)].clear();
}

void
Gct::registerStats(StatGroup &group) const
{
    group.registerCounter("gct.allocated", &allocated_);
    group.registerCounter("gct.retired", &retired_);
}

} // namespace p5
