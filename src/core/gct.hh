/**
 * @file
 * Global Completion Table (the POWER5 reorder buffer).
 *
 * The GCT is a pool of group entries shared by both threads; each group
 * holds up to groupSize consecutive instructions of one thread. Decode
 * dispatches one group per cycle; commit retires the oldest group of a
 * thread once all of its instructions have finished. Per-thread occupancy
 * is what the dynamic resource balancer watches.
 */

#ifndef P5SIM_CORE_GCT_HH
#define P5SIM_CORE_GCT_HH

#include "common/ring_deque.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace p5 {

/** One GCT group: instructions [startSeq, startSeq + count) of a thread. */
struct GctGroup
{
    SeqNum startSeq = 0;
    int count = 0;
};

/** The shared GCT. */
class Gct
{
  public:
    explicit Gct(int num_groups);

    /** Total group capacity. */
    int capacity() const { return capacity_; }

    /** Groups currently allocated (both threads). */
    int
    occupancy() const
    {
        return static_cast<int>(groups_[0].size() + groups_[1].size());
    }

    /** Groups currently allocated by @p tid. */
    int
    occupancyOf(ThreadId tid) const
    {
        return static_cast<int>(groups_[static_cast<size_t>(tid)].size());
    }

    bool hasFreeGroup() const { return occupancy() < capacity_; }

    /** Allocate a group; panics if full (caller checks hasFreeGroup). */
    void allocate(ThreadId tid, SeqNum start_seq, int count);

    /** @return the oldest group of @p tid; panics if none. */
    const GctGroup &oldest(ThreadId tid) const;

    bool
    empty(ThreadId tid) const
    {
        return groups_[static_cast<size_t>(tid)].empty();
    }

    /** Retire the oldest group of @p tid. */
    void popOldest(ThreadId tid);

    /**
     * Squash: drop all groups of @p tid whose instructions are entirely
     * after @p last_good_seq and truncate the group that straddles it.
     */
    void squash(ThreadId tid, SeqNum last_good_seq);

    /**
     * Squash every instruction of @p tid with seq >= @p first_bad_seq
     * (the underflow-safe form used for dispatch flushes).
     */
    void squashFrom(ThreadId tid, SeqNum first_bad_seq);

    /** Drop every group of @p tid. */
    void clearThread(ThreadId tid);

    /** Iterate over @p tid's groups, oldest first. */
    const RingDeque<GctGroup> &
    groupsOf(ThreadId tid) const
    {
        return groups_[static_cast<size_t>(tid)];
    }

    std::uint64_t allocated() const { return allocated_.value(); }
    std::uint64_t retired() const { return retired_.value(); }

    void registerStats(StatGroup &group) const;

    /** Serialize both threads' group rings and counters. */
    void saveState(class CkptWriter &w) const;

    /** Restore state saved by saveState(); capacity must match. */
    void restoreState(class CkptReader &r);

  private:
    int capacity_;
    RingDeque<GctGroup> groups_[num_hw_threads];
    Counter allocated_;
    Counter retired_;
};

} // namespace p5

#endif // P5SIM_CORE_GCT_HH
