#include "core/lsu.hh"

#include <algorithm>

#include "common/log.hh"

namespace p5 {

Lsu::Lsu(const CoreParams &params, CacheHierarchy *hierarchy, Lmq *lmq)
    : params_(params), hierarchy_(hierarchy), lmq_(lmq)
{
    if (!hierarchy_ || !lmq_)
        panic("Lsu constructed with null hierarchy/lmq");
}

void
Lsu::setPriorityView(const DecodeSlotAllocator *allocator)
{
    priorities_ = allocator;
}

Addr
Lsu::effectiveAddr(ThreadId tid, Addr addr) const
{
    const Addr asid =
        static_cast<Addr>(params_.coreId * num_hw_threads + tid + 1);
    return addr + (asid << params_.asidShift);
}

Cycle
Lsu::reserveWalker(ThreadId tid, Cycle now)
{
    const int walk = params_.mem.tlb.walkLatency;
    const ThreadId sibling = static_cast<ThreadId>(1 - tid);

    // One outstanding walk per thread: a second miss waits for the
    // first walk (including any priority delay) to finish.
    Cycle start = std::max(
        {now, walkUntil_[static_cast<size_t>(tid)], walkerNextFree_});
    // The walker itself is occupied for one walk from the unpenalized
    // position; a deprioritized walk executes later but must not block
    // the sibling's walks behind its idle wait.
    walkerNextFree_ = start + static_cast<Cycle>(walk);

    // When both threads use the walker, its slots follow the thread
    // priorities like the decode slots: the lower-priority thread only
    // gets 1 of every R walk slots. Modeled as an extra (R-1) walk-times
    // delay per walk while the sibling is actively walking.
    const Cycle sibling_last =
        lastWalkRequest_[static_cast<size_t>(sibling)];
    const bool contended =
        sibling_last != never_cycle &&
        sibling_last + static_cast<Cycle>(3 * walk) >= now;
    if (contended && priorities_ && params_.priorityAwareWalker &&
        priorities_->mode() == SlotMode::Dual) {
        const int mine = priorities_->priorityOf(tid);
        const int theirs = priorities_->priorityOf(sibling);
        if (mine < theirs) {
            const int r = DecodeSlotAllocator::computeR(mine, theirs);
            start += static_cast<Cycle>((r - 1) * walk);
        }
    }

    lastWalkRequest_[static_cast<size_t>(tid)] = now;

    // Record the service window for the sibling LSU port gate. (For a
    // deprioritized walk the service executes later than the capacity
    // slot; the approximation keeps one window per walker.)
    walkerTid_ = tid;
    if (walkerNextFree_ > walkerServiceUntil_)
        walkerServiceUntil_ = walkerNextFree_;

    return start;
}

Cycle
Lsu::portGate(ThreadId tid, Cycle now, Cycle ready)
{
    if (params_.walkerPortGap <= 0 || walkerTid_ < 0 ||
        walkerTid_ == tid || now >= walkerServiceUntil_)
        return ready;

    // The gate scales with the walking thread's pipeline share: a
    // deprioritized sibling's walks tie up almost no LSU slots, which
    // is what makes a priority-1 background nearly transparent
    // (Fig. 6) while an equal-priority memory thread crushes a
    // load-hot partner (Table 3).
    int gap = params_.walkerPortGap;
    if (priorities_ && priorities_->mode() == SlotMode::Dual) {
        const double share = priorities_->shareOf(walkerTid_);
        gap = static_cast<int>(
            params_.walkerPortGap * std::min(1.0, 2.0 * share) + 0.5);
    }
    if (gap <= 0)
        return ready;

    // The gate window only ever moves forward: each gated access holds
    // the port for `gap` cycles from when it passes the gate.
    const Cycle start = std::max(ready, portNextFree_);
    portNextFree_ = start + static_cast<Cycle>(gap);
    return start;
}

Cycle
Lsu::nextEventCycle(Cycle now) const
{
    Cycle next = never_cycle;
    const auto consider = [&next, now](Cycle c) {
        if (c > now && c < next)
            next = c;
    };
    for (Cycle until : walkUntil_)
        consider(until);
    consider(walkerNextFree_);
    consider(walkerServiceUntil_);
    consider(portNextFree_);
    return next;
}

Cycle
Lsu::translate(ThreadId tid, Addr ea, Cycle now, bool *walked)
{
    *walked = false;
    TlbResult tr = hierarchy_->tlb(tid).access(ea);
    if (tr.hit)
        return now;

    *walked = true;
    ++walks_[static_cast<size_t>(tid)];
    const Cycle start = reserveWalker(tid, now);
    const Cycle done =
        start + static_cast<Cycle>(params_.mem.tlb.walkLatency);
    auto &until = walkUntil_[static_cast<size_t>(tid)];
    if (done > until)
        until = done;
    return done;
}

MemAccessResult
Lsu::issueLoad(ThreadId tid, Addr addr, Cycle now)
{
    const Addr ea = effectiveAddr(tid, addr);

    bool walked = false;
    Cycle ready = translate(tid, ea, now, &walked);
    ready = portGate(tid, now, ready);

    // An L1 miss occupies an LMQ entry for the miss duration; when the
    // queue is full the miss queues behind the blocking entries.
    const MemLevel probed = hierarchy_->probeLevel(ea);
    if (probed != MemLevel::L1) {
        const Cycle est_release =
            ready + static_cast<Cycle>(estimatedLatency(probed));
        ready = lmq_->reserve(tid, now, ready, est_release);
    }

    MemAccessResult res = hierarchy_->accessCaches(tid, ea, false, now, ready);
    res.tlbMiss = walked;
    ++loads_[static_cast<size_t>(tid)];
    ++levelCounts_[static_cast<int>(res.level)];

    if (probed != MemLevel::L1)
        lmq_->updateLastRelease(res.doneCycle);
    return res;
}

int
Lsu::estimatedLatency(MemLevel level) const
{
    switch (level) {
      case MemLevel::L1:
        return params_.mem.l1d.hitLatency;
      case MemLevel::L2:
        return params_.mem.l2.hitLatency;
      case MemLevel::L3:
        return params_.mem.l3.hitLatency;
      case MemLevel::Mem:
        return params_.mem.dramLatency;
      default:
        panic("estimatedLatency: bad level %d", static_cast<int>(level));
    }
}

MemAccessResult
Lsu::issueStore(ThreadId tid, Addr addr, Cycle now)
{
    const Addr ea = effectiveAddr(tid, addr);
    bool walked = false;
    Cycle ready = translate(tid, ea, now, &walked);
    ready = portGate(tid, now, ready);
    MemAccessResult res =
        hierarchy_->accessCaches(tid, ea, true, now, ready);
    res.tlbMiss = walked;
    ++stores_[static_cast<size_t>(tid)];
    return res;
}

void
Lsu::registerStats(StatGroup &group) const
{
    for (int t = 0; t < num_hw_threads; ++t) {
        auto ts = std::to_string(t);
        group.registerCounter("lsu.thread" + ts + ".loads",
                              &loads_[static_cast<size_t>(t)]);
        group.registerCounter("lsu.thread" + ts + ".stores",
                              &stores_[static_cast<size_t>(t)]);
        group.registerCounter("lsu.thread" + ts + ".walks",
                              &walks_[static_cast<size_t>(t)]);
    }
    group.registerCounter("lsu.loads.l1", &levelCounts_[0]);
    group.registerCounter("lsu.loads.l2", &levelCounts_[1]);
    group.registerCounter("lsu.loads.l3", &levelCounts_[2]);
    group.registerCounter("lsu.loads.mem", &levelCounts_[3]);
}

} // namespace p5
