#include "core/fu_pool.hh"

#include "common/log.hh"

namespace p5 {

FuPool::FuPool(const int counts[static_cast<int>(FuClass::NumFuClasses)])
{
    for (int fc = 0; fc < static_cast<int>(FuClass::None); ++fc) {
        if (counts[fc] < 0)
            fatal("negative FU count for %s",
                  fuClassName(static_cast<FuClass>(fc)));
        busyUntil_[fc].assign(static_cast<std::size_t>(counts[fc]), 0);
    }
}

bool
FuPool::tryAcquire(FuClass fc, Cycle now, int occupancy)
{
    if (fc == FuClass::None) {
        ++acquisitions_[static_cast<int>(fc)];
        return true;
    }
    auto &units = busyUntil_[static_cast<int>(fc)];
    for (auto &until : units) {
        if (until <= now) {
            until = now + static_cast<Cycle>(occupancy);
            ++acquisitions_[static_cast<int>(fc)];
            return true;
        }
    }
    return false;
}

int
FuPool::freeUnits(FuClass fc, Cycle now) const
{
    if (fc == FuClass::None)
        return 1;
    int n = 0;
    for (auto until : busyUntil_[static_cast<int>(fc)])
        if (until <= now)
            ++n;
    return n;
}

Cycle
FuPool::nextFreeCycle(FuClass fc, Cycle now) const
{
    if (fc == FuClass::None)
        return now;
    Cycle next = never_cycle;
    for (auto until : busyUntil_[static_cast<int>(fc)]) {
        if (until <= now)
            return now;
        if (until < next)
            next = until;
    }
    return next;
}

int
FuPool::unitCount(FuClass fc) const
{
    if (fc == FuClass::None)
        return 0;
    return static_cast<int>(busyUntil_[static_cast<int>(fc)].size());
}

void
FuPool::reset()
{
    for (auto &units : busyUntil_)
        for (auto &until : units)
            until = 0;
}

void
FuPool::registerStats(StatGroup &group) const
{
    for (int fc = 0; fc < static_cast<int>(FuClass::NumFuClasses); ++fc) {
        group.registerCounter(std::string("fu.") +
                                  fuClassName(static_cast<FuClass>(fc)) +
                                  ".acquisitions",
                              &acquisitions_[fc]);
    }
}

} // namespace p5
