/**
 * @file
 * Dual-core POWER5 chip: two SMT cores sharing the L2/L3/DRAM backside.
 *
 * The paper's methodology pins all OS noise (user-land daemons, IRQs) to
 * the first core and measures on the second; the Chip class makes that
 * setup expressible — core 0 can run a noise workload while core 1 runs
 * the experiment, contending only below L1.
 */

#ifndef P5SIM_CORE_CHIP_HH
#define P5SIM_CORE_CHIP_HH

#include <memory>

#include "core/smt_core.hh"

namespace p5 {

/** Number of cores per chip. */
constexpr int num_cores = 2;

/** The dual-core chip. */
class Chip
{
  public:
    /** @param base per-core configuration; coreId is set per core. */
    explicit Chip(const CoreParams &base);

    SmtCore &core(int idx);
    const SmtCore &core(int idx) const;

    MemBackside &backside() { return *backside_; }

    /** Advance both cores one cycle. */
    void tick();

    /** Advance both cores @p cycles cycles. */
    void run(Cycle cycles);

    Cycle cycle() const { return core(0).cycle(); }

  private:
    std::unique_ptr<MemBackside> backside_;
    std::unique_ptr<SmtCore> cores_[num_cores];
};

} // namespace p5

#endif // P5SIM_CORE_CHIP_HH
