/**
 * @file
 * N-core POWER5-like chip: SMT cores sharing the L2/L3/DRAM backside.
 *
 * The paper's methodology pins all OS noise (user-land daemons, IRQs) to
 * the first core and measures on the second; the Chip class makes that
 * setup expressible — one core can run a noise workload while another
 * runs the experiment, contending only below L1. Beyond the paper's
 * dual-core part, the core count is a ChipParams knob (ROADMAP item 3:
 * the SYNPA-style allocation studies in src/sched/ schedule M runnable
 * threads onto N cores x 2 hardware contexts).
 *
 * Lockstep contract: every Chip entry point (tick(), run()) advances
 * all cores together, so all cores always agree on the current cycle.
 * This is not cosmetic — cores interact through the shared backside
 * (DRAM bandwidth gates, L2/L3 service gaps), whose state depends on
 * the global arrival order of accesses; letting one core run ahead
 * would reorder arrivals and change results. Driving an individual
 * core(i).run() directly breaks the contract; cycle() asserts
 * agreement in debug builds to catch exactly that.
 */

#ifndef P5SIM_CORE_CHIP_HH
#define P5SIM_CORE_CHIP_HH

#include <memory>
#include <vector>

#include "core/smt_core.hh"

namespace p5 {

/** Upper bound on cores per chip (CoreParams::coreId is 0..7). */
constexpr int max_cores = 8;

/** Chip-level configuration. */
struct ChipParams
{
    /** Cores on the chip, 1..max_cores. */
    int numCores = 2;

    /** Per-core base configuration; coreId is set per core. */
    CoreParams core;

    /** fatal() on out-of-range values (includes core.validate()). */
    void validate() const;
};

/** The N-core chip. */
class Chip
{
  public:
    explicit Chip(const ChipParams &params);

    /** Dual-core chip from a per-core base (the paper's setup). */
    explicit Chip(const CoreParams &base);

    int numCores() const { return static_cast<int>(cores_.size()); }

    SmtCore &core(int idx);
    const SmtCore &core(int idx) const;

    MemBackside &backside() { return *backside_; }

    /** Advance all cores one cycle, in core-index order. */
    P5_HOT_PATH void tick();

    /**
     * Advance all cores @p cycles cycles in lockstep. With
     * fastForward enabled on the base CoreParams, stretches where
     * *every* core is provably idle are skipped in one coordinated
     * jump to the earliest event on any core; stats are bit-identical
     * to cycle-by-cycle ticking. A joint skip is the only safe kind:
     * while any core has work it may touch the shared backside, whose
     * first-come-first-served gates make results depend on the global
     * order of accesses.
     */
    P5_HOT_PATH void run(Cycle cycles);

    /**
     * Current cycle of the chip. All cores agree by the lockstep
     * contract above; debug builds assert it (a mismatch means some
     * core was advanced behind the chip's back).
     */
    P5_HOT_PATH Cycle cycle() const;

  private:
    std::unique_ptr<MemBackside> backside_;
    std::vector<std::unique_ptr<SmtCore>> cores_;

    /** Scratch gates for the coordinated fast-forward (one per core). */
    std::vector<SmtCore::IdleGate> gates_;
};

} // namespace p5

#endif // P5SIM_CORE_CHIP_HH
