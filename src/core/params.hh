/**
 * @file
 * Configuration of one SMT core (POWER5-flavoured defaults).
 */

#ifndef P5SIM_CORE_PARAMS_HH
#define P5SIM_CORE_PARAMS_HH

#include <cstdint>

#include "branch/bht.hh"
#include "common/annotate.hh"
#include "isa/op_class.hh"
#include "mem/hierarchy.hh"

namespace p5 {

/** Which corrective action the dynamic resource balancer takes. */
enum class BalanceAction
{
    Stall, ///< stop decoding the offending thread until congestion clears
    Flush  ///< additionally flush the offender's not-yet-issued instrs
};

/** Dynamic hardware resource-balancing configuration (paper Sec. 3.1). */
struct P5_CONFIG_STRUCT BalancerParams
{
    bool enabled = true;

    /**
     * A thread holding more than this fraction of occupied GCT groups
     * (and more than minGctGroups groups) is considered offending.
     */
    double gctShareThreshold = 0.55;

    /**
     * Scale each thread's GCT-share threshold by its decode-slot share
     * (2 x share, clamped below): a software-deprioritized thread is
     * allowed proportionally fewer GCT groups before it counts as
     * offending. This couples the hardware balancing with the
     * software priorities, which is what lets a prioritized thread's
     * instruction window — and so its latency-hiding — recover.
     */
    bool priorityAwareGct = true;

    /** Clamp range for the priority-scaled GCT threshold. */
    double minGctShareThreshold = 0.20;
    double maxGctShareThreshold = 0.85;

    /**
     * Scale the LMQ threshold with the decode-slot share as well: a
     * thread entitled to nearly all decode slots may fill the LMQ
     * before counting as offending.
     */
    bool priorityAwareLmq = true;

    /** GCT groups a thread may always hold without being offending. */
    int minGctGroups = 2;

    /** LMQ entries held by one thread that count as "too many L2
     *  misses". */
    int lmqThreshold = 6;

    /** Block decode of a thread with an outstanding TLB walk. */
    bool blockOnTlbMiss = true;

    BalanceAction action = BalanceAction::Stall;
};

/** Full configuration of one SMT core. */
struct P5_CONFIG_STRUCT CoreParams
{
    /** Identity of this core on the chip (affects address spaces). */
    int coreId = 0;

    /** Decode width: instructions per decode slot (one thread/cycle). */
    int decodeWidth = 5;

    /**
     * Instructions deliverable in the single slot the *lower*-priority
     * thread of an unequal pair receives. Real POWER5 measurements
     * (paper Sec. 5.2: up to 42x slowdown at -5, i.e. ~2 instructions
     * per 64-cycle window) show the starved thread's slots deliver far
     * fewer than decodeWidth IOPs; calibrated to 2. Set to decodeWidth
     * to ablate.
     */
    int minoritySlotWidth = 2;

    /** Max instructions per GCT group (group == dispatch unit). */
    int groupSize = 5;

    /** Shared GCT (reorder buffer) capacity in groups. */
    int gctGroups = 20;

    /** Functional units: 2 FX, 2 FP, 2 LS, 1 BR as on POWER5. */
    int fuCount[static_cast<int>(FuClass::NumFuClasses)] = {2, 2, 2, 1, 0};

    /** Load-miss-queue entries shared by both threads. */
    int lmqEntries = 8;

    /** Decode-redirect delay after a mispredicted branch. */
    int mispredictPenalty = 7;

    /**
     * Cycles an instruction of each class occupies its functional unit
     * before another may issue to it (issue-to-issue). Latency itself
     * comes from opLatency()/the memory system.
     */
    int fuOccupancy(OpClass oc) const;

    /**
     * Give a decode slot forfeited by its owner (stalled / blocked /
     * nothing to decode) to the sibling thread. Real POWER5 slots are
     * strictly owned; this is an ablation knob.
     */
    bool workConservingSlots = false;

    /** Per-thread address-space separation (bits). */
    int asidShift = 44;

    /**
     * Schedule the shared table-walk engine by thread priority like the
     * decode slots (see Lsu::reserveWalker). Ablation knob for the
     * mem-vs-mem priority sensitivity of Figs. 2(f)/3(f).
     */
    bool priorityAwareWalker = true;

    /**
     * While the walker is servicing one thread's translation it ties up
     * LSU resources: the *sibling's* loads/stores serialize through a
     * port gate of this many cycles each. This is what crushes a
     * load-hot thread (ldint_l1) co-run with a TLB-missing sibling at
     * equal priorities (paper Table 3: pt 0.79 vs ST 2.29) and what
     * prioritization then wins back (Fig. 4's ~2x total-IPC gains).
     * 0 disables the effect.
     */
    int walkerPortGap = 2;

    /**
     * Skip idle cycles in SmtCore::run(): when no thread can decode and
     * nothing can issue or commit, jump straight to the earliest
     * component event instead of ticking through the gap. Stall, slot
     * and balancer counters are advanced arithmetically, so every
     * observable stat is bit-identical to cycle-by-cycle ticking — the
     * knob exists as an escape hatch (--no-fast-forward) and for the
     * equivalence tests, not because results differ.
     */
    bool fastForward = true;

    BalancerParams balancer;
    HierarchyParams mem;
    BhtParams bht;

    /** Sanity-check the configuration; fatal() on nonsense. */
    void validate() const;
};

} // namespace p5

#endif // P5SIM_CORE_PARAMS_HH
