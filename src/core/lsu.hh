/**
 * @file
 * Load/store unit: bridges the core to the cache hierarchy and the LMQ.
 *
 * Responsibilities:
 *  - per-thread address-space separation (two hardware threads run two
 *    processes; they share cache *capacity*, not cache *lines*);
 *  - address translation through the per-thread D-TLBs, with a single
 *    shared table-walk engine per core whose scheduling follows the
 *    software-controlled thread priorities like the decode slots do —
 *    this is what makes a low-priority memory-bound thread collapse when
 *    co-run with a walking sibling (paper Fig. 3(f)) while staying
 *    insensitive otherwise;
 *  - LMQ admission control: a load that would miss L1 cannot issue
 *    without a free LMQ entry;
 *  - tracking outstanding TLB walks for the balancer.
 */

#ifndef P5SIM_CORE_LSU_HH
#define P5SIM_CORE_LSU_HH

#include <array>

#include "common/annotate.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/params.hh"
#include "mem/hierarchy.hh"
#include "mem/lmq.hh"
#include "prio/slot_allocator.hh"

namespace p5 {

/** The load/store unit of one SMT core. */
class Lsu
{
  public:
    /** @param hierarchy and @p lmq must outlive the LSU. */
    Lsu(const CoreParams &params, CacheHierarchy *hierarchy, Lmq *lmq);

    /**
     * Give the LSU a view of the current thread priorities so the
     * table-walk engine can arbitrate like the decode slots.
     */
    void setPriorityView(const DecodeSlotAllocator *allocator);

    /** Thread-private effective address (ASID offset applied). */
    Addr effectiveAddr(ThreadId tid, Addr addr) const;

    /**
     * Issue a load at @p now. An L1 miss needs an LMQ entry; when the
     * queue is full the miss waits (its latency grows) until an entry
     * frees.
     */
    MemAccessResult issueLoad(ThreadId tid, Addr addr, Cycle now);

    /**
     * Issue a store at @p now. Stores are fire-and-forget for timing
     * purposes (the STQ drains post-commit) but consume hierarchy
     * bandwidth and warm/evict lines.
     */
    MemAccessResult issueStore(ThreadId tid, Addr addr, Cycle now);

    /** True while a table walk for @p tid is outstanding at @p now. */
    bool
    tlbWalkInProgress(ThreadId tid, Cycle now) const
    {
        return walkUntil_[static_cast<size_t>(tid)] > now;
    }

    /**
     * Earliest cycle after @p now at which any LSU-side timing state
     * changes (a walk completes, the walker or its service window
     * frees, the sibling port gate opens), or never_cycle when nothing
     * is pending. Part of the fast-forward next-event contract: between
     * now and the returned cycle every LSU predicate the core or the
     * balancer consults is constant.
     */
    P5_PROBE_PURE Cycle nextEventCycle(Cycle now) const;

    std::uint64_t
    loadsOf(ThreadId tid) const
    {
        return loads_[static_cast<size_t>(tid)].value();
    }
    std::uint64_t
    storesOf(ThreadId tid) const
    {
        return stores_[static_cast<size_t>(tid)].value();
    }
    std::uint64_t
    walksOf(ThreadId tid) const
    {
        return walks_[static_cast<size_t>(tid)].value();
    }
    void registerStats(StatGroup &group) const;

    /**
     * Serialize walker/port timing state and counters. The params /
     * hierarchy / lmq / priority-view pointers are wiring, not state —
     * the restoring core re-establishes them at construction.
     */
    void saveState(class CkptWriter &w) const;

    /** Restore state saved by saveState(). */
    void restoreState(class CkptReader &r);

  private:
    /** Translate; returns the cycle the physical access may start. */
    Cycle translate(ThreadId tid, Addr ea, Cycle now, bool *walked);

    /** Expected latency of a miss serviced at @p level (for LMQ
     *  windows). */
    int estimatedLatency(MemLevel level) const;

    /** Reserve the shared walker; returns the walk's start cycle. */
    Cycle reserveWalker(ThreadId tid, Cycle now);

    const CoreParams &params_;
    CacheHierarchy *hierarchy_;
    Lmq *lmq_;
    const DecodeSlotAllocator *priorities_ = nullptr;

    Cycle walkerNextFree_ = 0;
    /** Cycle of each thread's most recent walk request; never_cycle
     *  until its first walk, so a thread whose sibling has never walked
     *  is not treated as contended at start-of-run. */
    std::array<Cycle, num_hw_threads> lastWalkRequest_{never_cycle,
                                                       never_cycle};
    std::array<Cycle, num_hw_threads> walkUntil_{};

    /** Current walker service window (for the sibling port gate). */
    ThreadId walkerTid_ = -1;
    Cycle walkerServiceUntil_ = 0;
    Cycle portNextFree_ = 0;

    /** Apply the sibling port gate to an access at @p ready. */
    Cycle portGate(ThreadId tid, Cycle now, Cycle ready);

    std::array<Counter, num_hw_threads> loads_;
    std::array<Counter, num_hw_threads> stores_;
    std::array<Counter, num_hw_threads> walks_;
    Counter levelCounts_[4];
};

} // namespace p5

#endif // P5SIM_CORE_LSU_HH
