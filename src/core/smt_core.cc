#include "core/smt_core.hh"

#include <algorithm>
#include <chrono>

#include "check/check.hh"
#include "common/log.hh"
#include "common/small_vector.hh"

// -DP5SIM_CHECK=1 (the P5SIM_CHECK CMake option) turns every core into
// a checked core: the standard p5check suite is installed at
// construction and violations are fatal.
#ifndef P5SIM_CHECK
#define P5SIM_CHECK 0
#endif

namespace p5 {

SmtCore::SmtCore(const CoreParams &params, MemBackside *shared_backside)
    : params_(params), hierarchy_(params.mem, shared_backside),
      lmq_(params.lmqEntries), lsu_(params_, &hierarchy_, &lmq_),
      bht_(params.bht), gct_(params.gctGroups), fuPool_(params.fuCount),
      arbiter_(params.decodeWidth, params.minoritySlotWidth,
               params.workConservingSlots),
      balancer_(params.balancer),
      stats_("core" + std::to_string(params.coreId))
{
    params_.validate();
    for (ThreadId t = 0; t < num_hw_threads; ++t)
        threads_[static_cast<size_t>(t)] = std::make_unique<ThreadState>(t);
    // Both threads start shut off; attachThread turns them on.
    arbiter_.allocator().setPriorities(0, 0);
    lsu_.setPriorityView(&arbiter_.allocator());
    balancer_.setPriorityView(&arbiter_.allocator());
    // Pre-size the completion heap past any plausible in-flight count
    // so busy-path pushes never reallocate.
    completions_.reserve(256);
    registerStats();
#if P5SIM_CHECK
    check::installStandardCheckers(*this);
#endif
}

SmtCore::~SmtCore() = default;

check::CheckRegistry &
SmtCore::checks()
{
    if (!checks_)
        checks_ = std::make_unique<check::CheckRegistry>(P5SIM_CHECK != 0);
    return *checks_;
}

void
SmtCore::registerStats()
{
    hierarchy_.registerStats(stats_);
    lmq_.registerStats(stats_);
    lsu_.registerStats(stats_);
    bht_.registerStats(stats_);
    gct_.registerStats(stats_);
    fuPool_.registerStats(stats_);
    arbiter_.registerStats(stats_);
    balancer_.registerStats(stats_);
    for (int t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<size_t>(t);
        auto ts = std::to_string(t);
        ThreadState &th = *threads_[ti];
        stats_.registerCounter("thread" + ts + ".committed",
                               &th.committedCtr);
        stats_.registerCounter("thread" + ts + ".squashed",
                               &th.squashedCtr);
        stats_.registerCounter("thread" + ts + ".mispredicts",
                               &th.mispredictsCtr);
        stats_.registerCounter("thread" + ts + ".prioNopsApplied",
                               &th.prioNopsApplied);
        stats_.registerCounter("thread" + ts + ".prioNopsIgnored",
                               &th.prioNopsIgnored);
        stats_.registerCounter("thread" + ts + ".decoded", &decoded_[ti]);
        stats_.registerCounter("thread" + ts + ".stallBalancer",
                               &stallBalancer_[ti]);
        stats_.registerCounter("thread" + ts + ".stallRedirect",
                               &stallRedirect_[ti]);
        stats_.registerCounter("thread" + ts + ".stallGct",
                               &stallGct_[ti]);
        stats_.registerCounter("thread" + ts + ".flushedInstrs",
                               &flushedInstrs_[ti]);
    }
}

// --- thread management ----------------------------------------------

void
SmtCore::attachThread(ThreadId tid, const InstrSource *program,
                      int priority, PrivilegeLevel privilege)
{
    if (tid < 0 || tid >= num_hw_threads)
        panic("attachThread: bad tid %d", tid);
    ThreadState &ts = *threads_[static_cast<size_t>(tid)];
    // The window can never outgrow the GCT's instruction capacity; one
    // extra group of slack keeps the ring from re-layouting (which
    // would invalidate slot handles until their first fallback lookup).
    const std::size_t window_cap =
        static_cast<std::size_t>(params_.gctGroups + 1) *
        static_cast<std::size_t>(params_.groupSize);
    ts.attach(program, window_cap);
    ts.privilege = privilege;
    arbiter_.allocator().setPriority(tid, priority);
    idleStreak_ = ff_arm_streak;
}

void
SmtCore::detachThread(ThreadId tid)
{
    ThreadState &ts = *threads_[static_cast<size_t>(tid)];
    ts.detach();
    lmq_.releaseThread(tid);
    gct_.clearThread(tid);
    arbiter_.allocator().setPriority(tid, 0);
    idleStreak_ = ff_arm_streak;
}

bool
SmtCore::threadAttached(ThreadId tid) const
{
    return threads_[static_cast<size_t>(tid)]->attached();
}

// --- priorities -------------------------------------------------------

void
SmtCore::setPriorityPair(int prio_p, int prio_s)
{
    arbiter_.allocator().setPriorities(prio_p, prio_s);
}

bool
SmtCore::requestPriority(ThreadId tid, int prio, PrivilegeLevel priv)
{
    if (!isValidPriority(prio))
        return false;
    if (!canSetPriority(priv, prio))
        return false;
    arbiter_.allocator().setPriority(tid, prio);
    return true;
}

int
SmtCore::priorityOf(ThreadId tid) const
{
    return arbiter_.allocator().priorityOf(tid);
}

void
SmtCore::setPrivilege(ThreadId tid, PrivilegeLevel priv)
{
    threads_[static_cast<size_t>(tid)]->privilege = priv;
}

void
SmtCore::setPrioNopListener(PrioNopListener fn)
{
    prioNopListener_ = std::move(fn);
}

// --- observation -----------------------------------------------------

ThreadState &
SmtCore::thread(ThreadId tid)
{
    return *threads_[static_cast<size_t>(tid)];
}

const ThreadState &
SmtCore::thread(ThreadId tid) const
{
    return *threads_[static_cast<size_t>(tid)];
}

std::uint64_t
SmtCore::committedOf(ThreadId tid) const
{
    return threads_[static_cast<size_t>(tid)]->committed;
}

std::uint64_t
SmtCore::executionsOf(ThreadId tid) const
{
    return threads_[static_cast<size_t>(tid)]->executionsCompleted;
}

Cycle
SmtCore::lastExecutionCycleOf(ThreadId tid) const
{
    return threads_[static_cast<size_t>(tid)]->lastExecutionCycle;
}

double
SmtCore::ipcOf(ThreadId tid) const
{
    if (cycle_ == 0)
        return 0.0;
    return static_cast<double>(committedOf(tid)) /
           static_cast<double>(cycle_);
}

double
SmtCore::totalIpc() const
{
    return ipcOf(0) + ipcOf(1);
}

// --- simulation loop --------------------------------------------------

void
SmtCore::tick()
{
    tickProgress_ = false;
    if (profile_) {
        tickTimed();
    } else {
        processCompletions();
        issueStage();
        commitStage();
        decodeStage();
    }
    if (checks_)
        checks_->onCycle(*this, cycle_);
    ++cycle_;
}

void
SmtCore::tickTimed()
{
    using clock = std::chrono::steady_clock;
    const auto ns = [](clock::time_point a, clock::time_point b) {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(b - a)
                .count());
    };
    const auto t0 = clock::now();
    processCompletions();
    const auto t1 = clock::now();
    issueStage();
    const auto t2 = clock::now();
    commitStage();
    const auto t3 = clock::now();
    decodeStage();
    const auto t4 = clock::now();
    profile_->completionsNs += ns(t0, t1);
    profile_->issueNs += ns(t1, t2);
    profile_->commitNs += ns(t2, t3);
    profile_->decodeNs += ns(t3, t4);
    ++profile_->timedTicks;
}

bool
SmtCore::probeFastForward(Cycle limit)
{
    ++ffProbes_;
    if (!profile_)
        return tryFastForward(limit);
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const bool skipped = tryFastForward(limit);
    profile_->probeNs += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             t0)
            .count());
    ++profile_->timedProbes;
    return skipped;
}

void
SmtCore::run(Cycle cycles)
{
    const Cycle end = saturatingAdd(cycle_, cycles);
    while (cycle_ < end) {
        // A successful skip leaves the probe armed: the landing cycle
        // usually has work, but conservative event sources mean it may
        // not, and only a probe can prove that.
        if (params_.fastForward && idleStreak_ >= ff_arm_streak &&
            probeFastForward(end))
            continue;
        tick();
        idleStreak_ = tickProgress_ ? 0 : idleStreak_ + 1;
    }
}

bool
SmtCore::runUntilExecutions(ThreadId tid, std::uint64_t executions,
                            Cycle max_cycles)
{
    const Cycle limit = saturatingAdd(cycle_, max_cycles);
    while (cycle_ < limit) {
        if (executionsOf(tid) >= executions)
            return true;
        if (params_.fastForward && idleStreak_ >= ff_arm_streak &&
            probeFastForward(limit))
            continue;
        tick();
        idleStreak_ = tickProgress_ ? 0 : idleStreak_ + 1;
    }
    return executionsOf(tid) >= executions;
}

// --- idle-cycle fast-forward ------------------------------------------
//
// A cycle is *idle* when tick() would change nothing except the cycle
// number and a fixed set of per-cycle counters (stall, balancer-block
// and slot-forfeit counters). tryFastForward() proves a cycle idle by
// replaying each stage's gating read-only, computes the earliest future
// cycle at which any gate input can change, and jumps there with the
// counters advanced arithmetically. Counters are affine in the gap
// length because every gate input is constant across the gap — which
// the equivalence suite (test_fast_forward.cc) and the skip-aware
// p5check protocol both verify.

namespace {
constexpr FuClass issue_classes[] = {FuClass::FX, FuClass::FP,
                                     FuClass::LS, FuClass::BR};
} // namespace

bool
SmtCore::commitReady(ThreadId t) const
{
    const ThreadState &ts = *threads_[static_cast<size_t>(t)];
    if (!ts.attached() || gct_.empty(t))
        return false;
    const GctGroup group = gct_.oldest(t);
    for (int i = 0; i < group.count; ++i) {
        const InFlight *e =
            ts.find(group.startSeq + static_cast<SeqNum>(i));
        if (!e)
            return true; // corrupt: let commitStage() raise the panic
        if (e->phase != InstrPhase::Finished)
            return false;
    }
    return true;
}

bool
SmtCore::probeDecodeIdle(IdleGate *gate) const
{
    const bool both_running = threads_[0]->attached() &&
                              threads_[1]->attached() &&
                              arbiter_.allocator().threadActive(0) &&
                              arbiter_.allocator().threadActive(1);
    gate->bd = balancer_.probe(gct_, lmq_, lsu_, both_running, cycle_);

    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<size_t>(t);
        const ThreadState &ts = *threads_[ti];
        if (!ts.attached())
            continue;
        // A flush that would actually drop instructions mutates state:
        // not an idle cycle. (A flush of an empty/issued-only window is
        // a no-op beyond the flush counter, which charge() advances.)
        if (gate->bd.flush[ti] && !ts.window.empty() &&
            ts.window.back().phase == InstrPhase::Dispatched)
            return false;
        if (gate->bd.block[ti]) {
            gate->stall[ti] = IdleGate::Stall::Balancer;
            continue;
        }
        if (cycle_ < ts.decodeBlockedUntil) {
            gate->stall[ti] = IdleGate::Stall::Redirect;
            continue;
        }
        const ThreadId sib = static_cast<ThreadId>(1 - t);
        const bool bigger_holder =
            threads_[static_cast<size_t>(sib)]->attached() &&
            gct_.occupancyOf(t) > gct_.occupancyOf(sib);
        const int needed = bigger_holder ? 2 : 1;
        if (gct_.capacity() - gct_.occupancy() < needed) {
            gate->stall[ti] = IdleGate::Stall::Gct;
            continue;
        }
        gate->canUse[ti] = true;
    }

    // Mirror DecodeArbiter::decide(): the cycle is only idle if neither
    // the slot owner nor (work-conserving) an active sibling can use it.
    const DecodeSlotAllocator &alloc = arbiter_.allocator();
    const SlotGrant g = alloc.grantAt(cycle_);
    if (g.owner >= 0) {
        if (gate->canUse[static_cast<size_t>(g.owner)])
            return false;
        const ThreadId sib = static_cast<ThreadId>(1 - g.owner);
        if (arbiter_.workConserving() &&
            gate->canUse[static_cast<size_t>(sib)] &&
            alloc.threadActive(sib))
            return false;
    }
    return true;
}

Cycle
SmtCore::nextInterestingCycle(Cycle limit, const IdleGate &gate) const
{
    Cycle next = limit;
    const auto consider = [&next, this](Cycle c) {
        if (c > cycle_ && c < next)
            next = c;
    };

    if (!completions_.empty())
        consider(completions_.front().cycle);
    for (FuClass fc : issue_classes)
        if (!readyQ_.empty(fc))
            consider(fuPool_.nextFreeCycle(fc, cycle_));
    consider(lmq_.nextEventCycle(cycle_));
    consider(lsu_.nextEventCycle(cycle_));

    const DecodeSlotAllocator &alloc = arbiter_.allocator();
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<size_t>(t);
        const ThreadState &ts = *threads_[ti];
        if (!ts.attached())
            continue;
        if (cycle_ < ts.decodeBlockedUntil)
            consider(ts.decodeBlockedUntil);
        if (gate.canUse[ti]) {
            // Usable but slotless: wake at its next owned slot, or —
            // work-conserving — at any slot it could inherit.
            consider(alloc.nextGrantCycle(cycle_, t));
            if (arbiter_.workConserving() && alloc.threadActive(t))
                consider(alloc.nextAnyGrantCycle(cycle_));
        }
    }
    return next;
}

void
SmtCore::advanceIdle(Cycle target, const IdleGate &gate)
{
    const std::uint64_t gap = target - cycle_;

    // What decodeStage() would have accumulated over the gap, cycle by
    // cycle: the balancer decision and each thread's stall class are
    // constant (that is what made the gap idle), so each counter gains
    // exactly gap.
    balancer_.charge(gate.bd, gap);
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<size_t>(t);
        if (!threads_[ti]->attached())
            continue;
        switch (gate.stall[ti]) {
          case IdleGate::Stall::None:
            break;
          case IdleGate::Stall::Balancer:
            stallBalancer_[ti] += gap;
            break;
          case IdleGate::Stall::Redirect:
            stallRedirect_[ti] += gap;
            break;
          case IdleGate::Stall::Gct:
            stallGct_[ti] += gap;
            break;
        }
    }
    // Every slot granted in the gap was forfeited by its owner (no
    // thread could use one — that too is what made the gap idle).
    arbiter_.chargeForfeits(cycle_, target);

    if (checks_)
        checks_->onSkip(*this, cycle_, target);
    idleSkipped_ += gap;
    cycle_ = target;
}

Cycle
SmtCore::computeIdleTarget(Cycle limit, IdleGate *gate) const
{
    // Reset the caller's gate: Chip::run() reuses per-core gate
    // storage across probes, and probeDecodeIdle() only ever *sets*
    // fields — a stale canUse[] from an earlier probe would make
    // every later probe report busy (and mis-attribute skipped-cycle
    // stats in advanceIdle()).
    *gate = IdleGate{};
    if (!completions_.empty() && completions_.front().cycle <= cycle_)
        return cycle_;
    for (FuClass fc : issue_classes)
        if (!readyQ_.empty(fc) && fuPool_.freeUnits(fc, cycle_) > 0)
            return cycle_;
    for (ThreadId t = 0; t < num_hw_threads; ++t)
        if (commitReady(t))
            return cycle_;
    if (!probeDecodeIdle(gate))
        return cycle_;
    return nextInterestingCycle(limit, *gate);
}

bool
SmtCore::tryFastForward(Cycle limit)
{
    IdleGate gate;
    const Cycle target = computeIdleTarget(limit, &gate);
    if (target <= cycle_)
        return false;
    advanceIdle(target, gate);
    return true;
}

Cycle
SmtCore::idleTarget(Cycle limit, IdleGate *gate) const
{
    // Probe accounting, not simulation state (ffProbes_ is mutable).
    P5_ALLOW(probe_purity) ++ffProbes_;
    return computeIdleTarget(limit, gate);
}

void
SmtCore::skipIdleTo(Cycle target, const IdleGate &gate)
{
    if (target <= cycle_)
        return;
    advanceIdle(target, gate);
}

// --- pipeline stages ---------------------------------------------------

void
SmtCore::processCompletions()
{
    while (!completions_.empty() &&
           completions_.front().cycle <= cycle_) {
        tickProgress_ = true;
        const Completion c = completions_.front();
        std::pop_heap(completions_.begin(), completions_.end(),
                      CompletionLater{});
        completions_.pop_back();
        ThreadState &ts = *threads_[static_cast<size_t>(c.tid)];
        InFlight *e = ts.resolve({c.slot, c.seq, c.epoch});
        if (!e || e->phase != InstrPhase::Issued)
            continue; // squashed since issue
        e->phase = InstrPhase::Finished;

        if (e->di.isBranch()) {
            bht_.update(e->di.pc, e->di.branchTaken);
            if (e->di.mispredicted()) {
                ++ts.mispredictsCtr;
                squashAfter(ts, e->di.seq, true);
                // NOTE: squashAfter only removes *younger* entries, so
                // the pointer e (the branch itself) stays valid.
            }
        }
        wakeDependents(ts, *e);
    }
}

void
SmtCore::wakeDependents(ThreadState &ts, InFlight &e)
{
    for (const InFlightRef &dep : e.dependents) {
        InFlight *d = ts.resolve(dep);
        if (!d || d->phase != InstrPhase::Dispatched)
            continue;
        if (d->pendingSrcs > 0 && --d->pendingSrcs == 0)
            pushReady(ts, *d);
    }
    e.dependents.clear();
}

void
SmtCore::pushReady(ThreadState &ts, InFlight &e)
{
    if (e.inReadyQueue)
        return;
    e.inReadyQueue = true;
    ReadyRef ref;
    ref.stamp = e.stamp;
    ref.tid = ts.tid();
    ref.seq = e.di.seq;
    ref.epoch = e.epoch;
    ref.slot = ts.window.physIndexOf(&e);
    readyQ_.push(fuClassOf(e.di.op), ref);
}

void
SmtCore::issueStage()
{
    static constexpr FuClass kClasses[] = {FuClass::FX, FuClass::FP,
                                           FuClass::LS, FuClass::BR};
    for (FuClass fc : kClasses) {
        while (!readyQ_.empty(fc) && fuPool_.freeUnits(fc, cycle_) > 0) {
            tickProgress_ = true;
            ReadyRef ref = readyQ_.pop(fc);
            ThreadState &ts = *threads_[static_cast<size_t>(ref.tid)];
            InFlight *e = ts.resolve({ref.slot, ref.seq, ref.epoch});
            if (!e || e->phase != InstrPhase::Dispatched ||
                e->pendingSrcs > 0)
                continue; // stale reference
            e->inReadyQueue = false;

            Cycle done;
            if (e->di.isLoad()) {
                MemAccessResult res =
                    lsu_.issueLoad(ref.tid, e->di.addr, cycle_);
                done = res.doneCycle;
            } else if (e->di.isStore()) {
                lsu_.issueStore(ref.tid, e->di.addr, cycle_);
                done = cycle_ + static_cast<Cycle>(opLatency(e->di.op));
            } else {
                done = cycle_ + static_cast<Cycle>(opLatency(e->di.op));
            }

            if (!fuPool_.tryAcquire(fc, cycle_,
                                    params_.fuOccupancy(e->di.op)))
                panic("FU acquire failed with free units available");

            e->phase = InstrPhase::Issued;
            e->di.completeCycle = done;
            // Heap storage is pre-reserved in the constructor; push
            // only spills past the high-water mark of in-flight ops.
            P5_ALLOW(hot_path_no_alloc)
            completions_.push_back({done, ref.tid, ref.seq, ref.epoch,
                                    ref.slot});
            std::push_heap(completions_.begin(), completions_.end(),
                           CompletionLater{});
        }
    }
}

void
SmtCore::commitStage()
{
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        ThreadState &ts = *threads_[static_cast<size_t>(t)];
        if (!ts.attached() || gct_.empty(t))
            continue;

        const GctGroup group = gct_.oldest(t);
        bool all_finished = true;
        for (int i = 0; i < group.count; ++i) {
            InFlight *e = ts.find(group.startSeq +
                                  static_cast<SeqNum>(i));
            if (!e)
                panic("GCT group references missing instruction");
            if (e->phase != InstrPhase::Finished) {
                all_finished = false;
                break;
            }
        }
        if (!all_finished)
            continue;

        tickProgress_ = true;
        for (int i = 0; i < group.count; ++i) {
            InFlight &e = ts.window.front();
            if (e.di.seq != group.startSeq + static_cast<SeqNum>(i))
                panic("commit: window head out of sync with GCT");
            if (e.di.op == OpClass::PrioNop) {
                const int level = priorityFromOrNop(e.di.prioNopReg);
                bool applied = false;
                if (level >= 0)
                    applied = requestPriority(t, level, ts.privilege);
                if (applied)
                    ++ts.prioNopsApplied;
                else
                    ++ts.prioNopsIgnored;
                if (prioNopListener_)
                    prioNopListener_(t, level, applied);
            }
            ts.window.pop_front();
            ++ts.committed;
            ++ts.committedCtr;
        }
        gct_.popOldest(t);

        const std::uint64_t execs =
            ts.stream().executionsAt(ts.committed);
        if (execs > ts.executionsCompleted) {
            ts.executionsCompleted = execs;
            ts.lastExecutionCycle = cycle_ + 1;
        }
    }
}

void
SmtCore::decodeStage()
{
    const bool both_running = threads_[0]->attached() &&
                              threads_[1]->attached() &&
                              arbiter_.allocator().threadActive(0) &&
                              arbiter_.allocator().threadActive(1);
    BalancerDecision bd =
        balancer_.evaluate(gct_, lmq_, lsu_, both_running, cycle_);

    std::array<bool, num_hw_threads> can_use{};
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<size_t>(t);
        ThreadState &ts = *threads_[ti];
        if (!ts.attached())
            continue;
        if (bd.flush[ti])
            flushDispatched(ts);
        if (bd.block[ti]) {
            ++stallBalancer_[ti];
            continue;
        }
        if (cycle_ < ts.decodeBlockedUntil) {
            ++stallRedirect_[ti];
            continue;
        }
        // GCT admission: the bigger holder must leave one free group
        // for the sibling, or a fast thread walls the slow one out of
        // the machine entirely.
        const ThreadId sib = static_cast<ThreadId>(1 - t);
        const bool bigger_holder =
            threads_[static_cast<size_t>(sib)]->attached() &&
            gct_.occupancyOf(t) > gct_.occupancyOf(sib);
        const int needed = bigger_holder ? 2 : 1;
        if (gct_.capacity() - gct_.occupancy() < needed) {
            ++stallGct_[ti];
            continue;
        }
        can_use[ti] = true;
    }

    SlotGrant grant = arbiter_.decide(cycle_, can_use);
    if (grant.owner < 0)
        return;

    tickProgress_ = true;
    ThreadState &ts = *threads_[static_cast<size_t>(grant.owner)];
    const int width = std::min(grant.maxWidth, params_.groupSize);

    // Inline capacity covers the 5-wide decode; a (configured) wider
    // group would spill once per cycle, so keep the margin generous.
    SmallVector<DynInstr, 8> group;
    while (static_cast<int>(group.size()) < width) {
        DynInstr di = ts.stream().fetch();
        if (di.isBranch())
            di.branchPredictedTaken = bht_.predict(di.pc);
        const bool ends_group = di.isBranch();
        group.push_back(di);
        if (ends_group)
            break; // branches end dispatch groups
    }

    gct_.allocate(grant.owner, group.front().seq,
                  static_cast<int>(group.size()));
    for (const DynInstr &di : group)
        dispatchOne(ts, di);
    decoded_[static_cast<size_t>(grant.owner)] +=
        static_cast<std::uint64_t>(group.size());
}

void
SmtCore::dispatchOne(ThreadState &ts, const DynInstr &di)
{
    // Claim the pooled window slot before touching producers: if the
    // ring ever had to grow it would move entries, and taking producer
    // pointers afterwards keeps them valid either way. The stale slot
    // is reset field-wise; dependents.clear() keeps any spilled buffer,
    // so steady-state dispatch performs no allocation.
    InFlight &e = ts.window.pushSlot();
    e.di = di;
    e.phase = InstrPhase::Dispatched;
    e.pendingSrcs = 0;
    e.epoch = ts.epoch;
    e.stamp = dispatchStamp_++;
    e.inReadyQueue = false;
    e.dependents.clear();

    const std::uint32_t slot = ts.window.physIndexOf(&e);

    int pending = 0;
    for (RegIndex src : {di.src0, di.src1}) {
        if (src == invalid_reg)
            continue;
        const RenameEntry &re = ts.renameMap[src];
        if (!re.valid)
            continue;
        InFlight *producer = ts.find(re.seq, re.epoch);
        if (producer && producer->phase != InstrPhase::Finished) {
            ++pending;
            producer->dependents.push_back({slot, di.seq, e.epoch});
        }
    }
    e.pendingSrcs = pending;

    if (di.dst != invalid_reg) {
        RenameEntry &re = ts.renameMap[di.dst];
        re.valid = true;
        re.seq = di.seq;
        re.epoch = e.epoch;
    }

    if (fuClassOf(di.op) == FuClass::None) {
        // Nops and priority nops consume decode/commit bandwidth only.
        e.phase = InstrPhase::Finished;
    } else if (e.pendingSrcs == 0) {
        pushReady(ts, e);
    }
}

void
SmtCore::squashAfter(ThreadState &ts, SeqNum last_good_seq,
                     bool redirect_penalty)
{
    std::uint64_t squashed = 0;
    while (!ts.window.empty() &&
           ts.window.back().di.seq > last_good_seq) {
        ts.window.pop_back();
        ++squashed;
    }
    if (squashed > 0) {
        ts.squashedCtr += squashed;
        ++ts.epoch;
        gct_.squashFrom(ts.tid(), last_good_seq + 1);
        ts.rebuildRenameMap();
        ts.stream().rewindTo(last_good_seq + 1);
    }
    if (redirect_penalty) {
        const Cycle until = cycle_ + 1 +
                            static_cast<Cycle>(params_.mispredictPenalty);
        if (until > ts.decodeBlockedUntil)
            ts.decodeBlockedUntil = until;
    }
}

void
SmtCore::flushDispatched(ThreadState &ts)
{
    if (ts.window.empty())
        return;
    SeqNum first_bad = never_cycle;
    std::uint64_t flushed = 0;
    while (!ts.window.empty() &&
           ts.window.back().phase == InstrPhase::Dispatched) {
        first_bad = ts.window.back().di.seq;
        ts.window.pop_back();
        ++flushed;
    }
    if (flushed == 0)
        return;
    tickProgress_ = true;
    flushedInstrs_[static_cast<size_t>(ts.tid())] += flushed;
    ts.squashedCtr += flushed;
    ++ts.epoch;
    gct_.squashFrom(ts.tid(), first_bad);
    ts.rebuildRenameMap();
    ts.stream().rewindTo(first_bad);
}

} // namespace p5
