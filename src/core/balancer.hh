/**
 * @file
 * Dynamic hardware resource balancer (paper Sec. 3.1).
 *
 * POWER5 monitors whether one thread is blocking the other and throttles
 * the offender. The triggers modeled here match the paper's description:
 * too many GCT (reorder buffer) groups held, too many outstanding L2
 * misses (LMQ occupancy), or an outstanding TLB miss. The corrective
 * action is either Stall (stop decoding the offender until the congestion
 * clears) or Flush (additionally drop the offender's not-yet-issued
 * instructions).
 */

#ifndef P5SIM_CORE_BALANCER_HH
#define P5SIM_CORE_BALANCER_HH

#include <array>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/gct.hh"
#include "core/lsu.hh"
#include "core/params.hh"
#include "mem/lmq.hh"
#include "prio/slot_allocator.hh"

namespace p5 {

/** Per-cycle balancing decision. */
struct BalancerDecision
{
    /** Block decode of thread t this cycle. */
    std::array<bool, num_hw_threads> block{};

    /** Additionally flush thread t's not-yet-issued instructions. */
    std::array<bool, num_hw_threads> flush{};
};

/** The balancer itself: pure policy over observable core state. */
class Balancer
{
  public:
    explicit Balancer(const BalancerParams &params);

    /** Priority view for the priority-aware GCT threshold. */
    void setPriorityView(const DecodeSlotAllocator *allocator);

    /** Effective GCT-share threshold for @p tid under the priorities. */
    double gctThresholdFor(ThreadId tid) const;

    /** Effective LMQ-occupancy threshold for @p tid. */
    int lmqThresholdFor(ThreadId tid, int lmq_capacity) const;

    /**
     * Evaluate the triggers at cycle @p now.
     *
     * @param both_running whether both threads are attached and active;
     *        resource hogging is only "offending" when a sibling exists.
     */
    BalancerDecision evaluate(const Gct &gct, Lmq &lmq, const Lsu &lsu,
                              bool both_running, Cycle now);

    const BalancerParams &params() const { return params_; }

    std::uint64_t
    gctBlocksOf(ThreadId tid) const
    {
        return gctBlocks_[static_cast<size_t>(tid)].value();
    }
    std::uint64_t
    lmqBlocksOf(ThreadId tid) const
    {
        return lmqBlocks_[static_cast<size_t>(tid)].value();
    }
    std::uint64_t
    tlbBlocksOf(ThreadId tid) const
    {
        return tlbBlocks_[static_cast<size_t>(tid)].value();
    }
    std::uint64_t
    flushesOf(ThreadId tid) const
    {
        return flushes_[static_cast<size_t>(tid)].value();
    }

    void registerStats(StatGroup &group) const;

  private:
    BalancerParams params_;
    const DecodeSlotAllocator *priorities_ = nullptr;
    std::array<Counter, num_hw_threads> gctBlocks_;
    std::array<Counter, num_hw_threads> lmqBlocks_;
    std::array<Counter, num_hw_threads> tlbBlocks_;
    std::array<Counter, num_hw_threads> flushes_;
};

} // namespace p5

#endif // P5SIM_CORE_BALANCER_HH
