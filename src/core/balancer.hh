/**
 * @file
 * Dynamic hardware resource balancer (paper Sec. 3.1).
 *
 * POWER5 monitors whether one thread is blocking the other and throttles
 * the offender. The triggers modeled here match the paper's description:
 * too many GCT (reorder buffer) groups held, too many outstanding L2
 * misses (LMQ occupancy), or an outstanding TLB miss. The corrective
 * action is either Stall (stop decoding the offender until the congestion
 * clears) or Flush (additionally drop the offender's not-yet-issued
 * instructions).
 */

#ifndef P5SIM_CORE_BALANCER_HH
#define P5SIM_CORE_BALANCER_HH

#include <array>

#include "common/stats.hh"
#include "common/types.hh"
#include "core/gct.hh"
#include "core/lsu.hh"
#include "core/params.hh"
#include "mem/lmq.hh"
#include "prio/slot_allocator.hh"

namespace p5 {

/** Which trigger blocked a thread (for per-trigger stat accounting). */
enum class BalanceBlock : std::uint8_t
{
    None, ///< not blocked
    Tlb,  ///< outstanding TLB walk
    Gct,  ///< holding too many GCT groups
    Lmq   ///< too many outstanding L2 misses
};

/** Per-cycle balancing decision. */
struct BalancerDecision
{
    /** Block decode of thread t this cycle. */
    std::array<bool, num_hw_threads> block{};

    /** Additionally flush thread t's not-yet-issued instructions. */
    std::array<bool, num_hw_threads> flush{};

    /** The trigger behind block[t] (None when not blocked). */
    std::array<BalanceBlock, num_hw_threads> reason{};
};

/** The balancer itself: pure policy over observable core state. */
class Balancer
{
  public:
    explicit Balancer(const BalancerParams &params);

    /** Priority view for the priority-aware GCT threshold. */
    void setPriorityView(const DecodeSlotAllocator *allocator);

    /** Effective GCT-share threshold for @p tid under the priorities. */
    double gctThresholdFor(ThreadId tid) const;

    /** Effective LMQ-occupancy threshold for @p tid. */
    int lmqThresholdFor(ThreadId tid, int lmq_capacity) const;

    /**
     * Evaluate the triggers at cycle @p now without touching the
     * per-trigger counters. Pure policy over observable state: calling
     * probe() repeatedly at the same cycle returns the same decision.
     */
    BalancerDecision probe(const Gct &gct, const Lmq &lmq,
                           const Lsu &lsu, bool both_running,
                           Cycle now) const;

    /**
     * Account @p cycles cycles of decision @p d in the per-trigger
     * block/flush counters. Together with probe() this lets the
     * fast-forward path advance an idle gap arithmetically: the
     * decision is constant across the gap, so charging it N times in
     * one call is bit-identical to N evaluate() calls.
     */
    void charge(const BalancerDecision &d, std::uint64_t cycles);

    /**
     * Evaluate the triggers at cycle @p now and account one cycle:
     * probe() + charge(d, 1).
     *
     * @param both_running whether both threads are attached and active;
     *        resource hogging is only "offending" when a sibling exists.
     */
    BalancerDecision evaluate(const Gct &gct, const Lmq &lmq,
                              const Lsu &lsu, bool both_running,
                              Cycle now);

    const BalancerParams &params() const { return params_; }

    std::uint64_t
    gctBlocksOf(ThreadId tid) const
    {
        return gctBlocks_[static_cast<size_t>(tid)].value();
    }
    std::uint64_t
    lmqBlocksOf(ThreadId tid) const
    {
        return lmqBlocks_[static_cast<size_t>(tid)].value();
    }
    std::uint64_t
    tlbBlocksOf(ThreadId tid) const
    {
        return tlbBlocks_[static_cast<size_t>(tid)].value();
    }
    std::uint64_t
    flushesOf(ThreadId tid) const
    {
        return flushes_[static_cast<size_t>(tid)].value();
    }

    void registerStats(StatGroup &group) const;

    /** Serialize the per-trigger counters (policy itself is stateless). */
    void saveState(class CkptWriter &w) const;

    /** Restore state saved by saveState(). */
    void restoreState(class CkptReader &r);

  private:
    BalancerParams params_;
    const DecodeSlotAllocator *priorities_ = nullptr;
    std::array<Counter, num_hw_threads> gctBlocks_;
    std::array<Counter, num_hw_threads> lmqBlocks_;
    std::array<Counter, num_hw_threads> tlbBlocks_;
    std::array<Counter, num_hw_threads> flushes_;
};

} // namespace p5

#endif // P5SIM_CORE_BALANCER_HH
