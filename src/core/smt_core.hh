/**
 * @file
 * The POWER5-like two-way SMT core.
 *
 * A cycle-driven out-of-order core with the structure the paper's effects
 * hinge on:
 *
 *  - decode: 5-wide, one thread per cycle, slots allocated by the
 *    software-controlled priority mechanism (R-1:1 of R), gated by the
 *    dynamic resource balancer and by GCT space;
 *  - dispatch in groups into the shared Global Completion Table;
 *  - out-of-order issue, oldest-first, to 2 FX + 2 LS + 2 FP + 1 BR
 *    units; loads need LMQ entries when they miss L1;
 *  - branch resolution at execute with stream rewind + redirect penalty;
 *  - in-order group commit per thread, where "or X,X,X" priority nops
 *    take effect subject to privilege (Table 1).
 */

#ifndef P5SIM_CORE_SMT_CORE_HH
#define P5SIM_CORE_SMT_CORE_HH

#include <array>
#include <functional>
#include <memory>

#include "branch/bht.hh"
#include "common/annotate.hh"
#include "common/stats.hh"
#include "core/balancer.hh"
#include "core/decode_arbiter.hh"
#include "core/fu_pool.hh"
#include "core/gct.hh"
#include "core/issue_queue.hh"
#include "core/lsu.hh"
#include "core/params.hh"
#include "core/thread_state.hh"
#include "mem/hierarchy.hh"
#include "mem/lmq.hh"

namespace p5 {

namespace check {
class CheckRegistry;
} // namespace check

/** One SMT core. */
class SmtCore
{
  public:
    /**
     * @param shared_backside chip-shared L2/L3/DRAM; nullptr gives the
     *        core a private one (single-core experiments).
     */
    explicit SmtCore(const CoreParams &params,
                     MemBackside *shared_backside = nullptr);
    ~SmtCore();

    SmtCore(const SmtCore &) = delete;
    SmtCore &operator=(const SmtCore &) = delete;

    // --- thread management -------------------------------------------

    /**
     * Bind @p program (any InstrSource: synthetic or trace replay) to
     * hardware thread @p tid and give it priority @p priority. A
     * freshly constructed core has both threads shut off (priority 0),
     * so attaching a single thread yields ST mode.
     */
    void attachThread(ThreadId tid, const InstrSource *program,
                      int priority = default_priority,
                      PrivilegeLevel privilege = PrivilegeLevel::User);

    /** Shut the thread off (priority 0) and drop its state. */
    void detachThread(ThreadId tid);

    bool threadAttached(ThreadId tid) const;

    // --- priorities ---------------------------------------------------

    /** Set both priorities directly (the hypervisor/experiment path). */
    void setPriorityPair(int prio_p, int prio_s);

    /**
     * Checked priority request on behalf of @p tid's software at
     * privilege @p priv; a nop (returns false) when not permitted —
     * exactly the or-nop semantics.
     */
    bool requestPriority(ThreadId tid, int prio, PrivilegeLevel priv);

    int priorityOf(ThreadId tid) const;

    void setPrivilege(ThreadId tid, PrivilegeLevel priv);

    /** Called after every committed PrioNop: (tid, level, applied). */
    using PrioNopListener = std::function<void(ThreadId, int, bool)>;
    void setPrioNopListener(PrioNopListener fn);

    // --- simulation ---------------------------------------------------

    /** Advance one cycle. */
    P5_HOT_PATH void tick();

    /**
     * Advance @p cycles cycles. With params().fastForward (the
     * default), idle gaps — stretches where no thread can decode and
     * nothing can issue or commit — are skipped in one jump to the
     * earliest component event, with all counters advanced
     * arithmetically; every observable stat is bit-identical to
     * cycle-by-cycle ticking.
     *
     * Probing is adaptive: the fast-forward gate replay only runs
     * after a tick that made no forward progress (nothing completed,
     * issued, committed, decoded or flushed). Busy stretches pay one
     * progress-flag write per cycle instead of a full probe; idle gaps
     * pay at most one extra tick before the jump.
     */
    P5_HOT_PATH void run(Cycle cycles);

    /**
     * Run until thread @p tid has completed @p executions program
     * executions, or @p max_cycles elapse.
     *
     * @return true when the target was reached.
     */
    P5_HOT_PATH bool runUntilExecutions(ThreadId tid,
                                        std::uint64_t executions,
                                        Cycle max_cycles);

    Cycle cycle() const { return cycle_; }

    // --- observation ----------------------------------------------------

    std::uint64_t committedOf(ThreadId tid) const;
    std::uint64_t executionsOf(ThreadId tid) const;
    Cycle lastExecutionCycleOf(ThreadId tid) const;

    /** Committed instructions of @p tid per elapsed cycle. */
    double ipcOf(ThreadId tid) const;

    /** Sum of both threads' IPC. */
    double totalIpc() const;

    const CoreParams &params() const { return params_; }
    ThreadState &thread(ThreadId tid);
    const ThreadState &thread(ThreadId tid) const;
    Gct &gct() { return gct_; }
    const Gct &gct() const { return gct_; }
    Lmq &lmq() { return lmq_; }
    const Lmq &lmq() const { return lmq_; }
    Lsu &lsu() { return lsu_; }
    const Lsu &lsu() const { return lsu_; }
    Bht &bht() { return bht_; }
    CacheHierarchy &hierarchy() { return hierarchy_; }
    const CacheHierarchy &hierarchy() const { return hierarchy_; }
    DecodeArbiter &arbiter() { return arbiter_; }
    const DecodeArbiter &arbiter() const { return arbiter_; }
    Balancer &balancer() { return balancer_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }
    FuPool &fuPool() { return fuPool_; }
    const FuPool &fuPool() const { return fuPool_; }
    IssueQueue &readyQueue() { return readyQ_; }
    const IssueQueue &readyQueue() const { return readyQ_; }

    // --- runtime verification (p5check) --------------------------------

    /**
     * The core's invariant-checker registry, created on first use.
     * Registered checkers run at the end of every tick(); a core whose
     * registry was never touched pays one null-pointer test per cycle.
     * Checked builds (-DP5SIM_CHECK=ON) install the standard suite in
     * fatal mode at construction.
     */
    check::CheckRegistry &checks();

    /** True iff a checker registry exists (without creating one). */
    bool hasChecks() const { return checks_ != nullptr; }

    std::uint64_t
    decodedOf(ThreadId tid) const
    {
        return decoded_[static_cast<size_t>(tid)].value();
    }

    /**
     * Cycles run() crossed by fast-forward jumps instead of ticks.
     * Observability only — deliberately *not* a registered stat, so the
     * stat set stays identical with fastForward on and off.
     */
    std::uint64_t idleCyclesSkipped() const { return idleSkipped_; }

    /**
     * Fast-forward probes attempted (successful or not). Like
     * idleCyclesSkipped() this is observability only, not a stat; the
     * adaptive-probe test uses it to show busy runs barely probe.
     */
    std::uint64_t fastForwardProbes() const { return ffProbes_; }

    // --- chip-coordinated fast-forward ---------------------------------

    /**
     * Side-effect-free replica of the per-cycle gating: the balancer
     * decision and per-thread decode usability at cycle(), plus how
     * each non-usable thread's stall would be classified by
     * decodeStage(). Opaque to callers: Chip::run() holds one per core
     * between idleTarget() and skipIdleTo().
     */
    struct IdleGate
    {
        BalancerDecision bd;
        std::array<bool, num_hw_threads> canUse{};
        enum class Stall : std::uint8_t
        {
            None,
            Balancer,
            Redirect,
            Gct
        };
        std::array<Stall, num_hw_threads> stall{};
    };

    /**
     * Probe for a chip-coordinated fast-forward: when the current
     * cycle is provably idle for this core, return the earliest cycle
     * in (cycle(), limit] at which anything can happen here and fill
     * @p gate; return cycle() itself when this cycle has work. The
     * caller (Chip::run) intersects the targets of all cores — a joint
     * skip is only valid when every core is idle, since an active core
     * could touch the shared backside mid-gap — and then jumps each
     * core with skipIdleTo(). Counts as a fast-forward probe; no other
     * side effects.
     */
    P5_PROBE_PURE Cycle idleTarget(Cycle limit, IdleGate *gate) const;

    /**
     * Jump cycle() to @p target across a gap idleTarget() verified
     * (with the gate it filled), advancing all counters exactly as
     * (target - cycle()) individual ticks would have. @p target may be
     * earlier than this core's own idleTarget() — any prefix of a
     * verified-idle gap is idle — which is what lets Chip::run() jump
     * every core to the chip-wide minimum.
     */
    void skipIdleTo(Cycle target, const IdleGate &gate);

    /**
     * Whether the most recent tick() mutated any state (completion,
     * issue, commit, decode or flush). Chip::run() uses it to arm its
     * coordinated probe the same way run() arms the per-core one.
     */
    bool tickMadeProgress() const { return tickProgress_; }

    /**
     * Per-stage wall-time accumulators for --p5sim_profile_stages.
     * While a profile is attached every tick routes through a timed
     * path; detach (nullptr) to restore the untimed hot loop.
     */
    struct StageProfile
    {
        std::uint64_t completionsNs = 0;
        std::uint64_t issueNs = 0;
        std::uint64_t commitNs = 0;
        std::uint64_t decodeNs = 0;
        std::uint64_t probeNs = 0;
        std::uint64_t timedTicks = 0;
        std::uint64_t timedProbes = 0;
    };

    void setStageProfile(StageProfile *profile) { profile_ = profile; }

    // --- checkpointing --------------------------------------------------

    /**
     * Serialize the core's complete mutable state — cycle, per-thread
     * windows/streams, all pipeline structures, the memory hierarchy and
     * every counter — such that a core restored from the stream produces
     * bit-identical stats to one that kept running. The params and
     * attached programs are NOT in the stream: restoreState() requires a
     * core constructed with the same params and the same threads already
     * attached (that is what the checkpoint key guarantees).
     * @pre the hierarchy backside is private (no shared-backside chips).
     * Serialize root (p5lint): nothing in this call tree may iterate an
     * unordered container, and it must stay unreachable from hot roots.
     */
    P5_SERIALIZE_ROOT P5_COLD void saveState(class CkptWriter &w) const;

    /**
     * Restore state saved by saveState(). @pre this core was constructed
     * with the same CoreParams and had the same programs attached at the
     * same priorities as the saved core at save time. Checkers re-arm on
     * the restored state via their first-observation priming.
     */
    P5_SERIALIZE_ROOT P5_COLD void restoreState(class CkptReader &r);

  private:
    struct Completion
    {
        Cycle cycle;
        ThreadId tid;
        SeqNum seq;
        std::uint64_t epoch;
        std::uint32_t slot; ///< window-slot hint for O(1) resolve
    };
    struct CompletionLater
    {
        bool
        operator()(const Completion &a, const Completion &b) const
        {
            return a.cycle > b.cycle;
        }
    };

    void processCompletions();
    void issueStage();
    void commitStage();
    void decodeStage();

    /** tick() body with per-stage timing (profile attached). */
    void tickTimed();

    /** Counted (and, with a profile, timed) tryFastForward wrapper. */
    bool probeFastForward(Cycle limit);

    // --- idle-cycle fast-forward --------------------------------------

    /**
     * Probe whether decode could make progress (or mutate state) at
     * cycle_. Returns false — "activity, must tick" — when the slot
     * owner (or a work-conserving sibling) could decode, or when a
     * balancer flush would actually drop instructions. Fills @p gate
     * for advanceIdle()'s arithmetic counter advance.
     */
    P5_PROBE_PURE bool probeDecodeIdle(IdleGate *gate) const;

    /** True iff thread t's oldest GCT group would commit at cycle_. */
    P5_PROBE_PURE bool commitReady(ThreadId t) const;

    /**
     * Earliest cycle in (cycle_, limit] at which anything can happen,
     * or cycle_ itself when this cycle has work. Conservative events
     * (a component state change that may not unblock anything) are
     * fine — the loop re-probes at every stop; missing a real event is
     * not, so every quantity the gating consults maps to an event
     * source here.
     */
    P5_PROBE_PURE Cycle nextInterestingCycle(Cycle limit,
                                             const IdleGate &gate) const;

    /**
     * idleTarget() without the probe accounting: the shared body of
     * the per-core and chip-coordinated fast-forward paths.
     */
    P5_PROBE_PURE Cycle computeIdleTarget(Cycle limit, IdleGate *gate) const;

    /**
     * Jump cycle_ -> target across a verified-idle gap, advancing the
     * stall, balancer and slot-forfeit counters by exactly what
     * (target - cycle_) individual ticks would have added, then
     * notifying the checkers' skip protocol.
     */
    void advanceIdle(Cycle target, const IdleGate &gate);

    /**
     * One fast-forward attempt bounded by @p limit: returns true when
     * an idle gap was skipped (cycle_ advanced), false when this cycle
     * has work and the caller must tick().
     */
    bool tryFastForward(Cycle limit);

    void dispatchOne(ThreadState &ts, const DynInstr &di);
    void pushReady(ThreadState &ts, InFlight &e);
    void wakeDependents(ThreadState &ts, InFlight &e);
    void squashAfter(ThreadState &ts, SeqNum last_good_seq,
                     bool redirect_penalty);
    void flushDispatched(ThreadState &ts);
    void registerStats();

    CoreParams params_;
    CacheHierarchy hierarchy_;
    Lmq lmq_;
    Lsu lsu_;
    Bht bht_;
    Gct gct_;
    FuPool fuPool_;
    IssueQueue readyQ_;
    DecodeArbiter arbiter_;
    Balancer balancer_;
    std::array<std::unique_ptr<ThreadState>, num_hw_threads> threads_;

    Cycle cycle_ = 0;
    std::uint64_t idleSkipped_ = 0;
    // mutable: probe accounting, not simulation state — idleTarget() is
    // const (P5_PROBE_PURE) yet counts its own invocations.
    mutable std::uint64_t ffProbes_ = 0;
    std::uint64_t dispatchStamp_ = 0;

    /**
     * Adaptive-probe state: tick() clears tickProgress_ and the stages
     * set it on any state mutation; the run loops count consecutive
     * no-progress ticks and only probe once the streak reaches
     * ff_arm_streak, so the 1–2 cycle bubbles that pepper compute-bound
     * runs never pay for a (mostly failing) gate replay. Skipping a
     * probe never changes stats — an un-probed idle cycle is simply
     * ticked.
     */
    static constexpr std::uint32_t ff_arm_streak = 2;
    bool tickProgress_ = false;
    std::uint32_t idleStreak_ = ff_arm_streak;

    StageProfile *profile_ = nullptr;

    /**
     * Pending completion events as an explicit binary heap over a plain
     * vector (std::push_heap / std::pop_heap with CompletionLater).
     * Equivalent to the std::priority_queue it replaces — the adaptor is
     * specified in terms of the same heap algorithms, so pop order is
     * identical — but the underlying array is directly serializable for
     * checkpoints (and restorable verbatim, preserving heap layout).
     */
    std::vector<Completion> completions_;

    PrioNopListener prioNopListener_;

    std::unique_ptr<check::CheckRegistry> checks_;

    StatGroup stats_;
    std::array<Counter, num_hw_threads> decoded_;
    std::array<Counter, num_hw_threads> stallBalancer_;
    std::array<Counter, num_hw_threads> stallRedirect_;
    std::array<Counter, num_hw_threads> stallGct_;
    std::array<Counter, num_hw_threads> flushedInstrs_;
};

} // namespace p5

#endif // P5SIM_CORE_SMT_CORE_HH
