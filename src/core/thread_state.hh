/**
 * @file
 * Per-hardware-thread state: instruction window, rename map, stream
 * position, squash epoch and retirement accounting.
 */

#ifndef P5SIM_CORE_THREAD_STATE_HH
#define P5SIM_CORE_THREAD_STATE_HH

#include <deque>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/instruction.hh"
#include "prio/priority.hh"
#include "program/stream.hh"

namespace p5 {

/** One in-flight instruction plus its dataflow bookkeeping. */
struct InFlight
{
    DynInstr di;
    InstrPhase phase = InstrPhase::Dispatched;

    /** Source operands still waiting for a producer. */
    int pendingSrcs = 0;

    /** Squash epoch this entry was dispatched in. */
    std::uint64_t epoch = 0;

    /** Global dispatch stamp: age priority for oldest-first issue. */
    std::uint64_t stamp = 0;

    /** Guard against double-insertion into the ready queues. */
    bool inReadyQueue = false;

    /** Same-thread consumers to wake on completion: (seq, epoch). */
    std::vector<std::pair<SeqNum, std::uint64_t>> dependents;
};

/** Rename-map entry: the youngest producer of an architectural reg. */
struct RenameEntry
{
    bool valid = false;
    SeqNum seq = 0;
    std::uint64_t epoch = 0;
};

/** All per-thread state of one SMT core. */
class ThreadState
{
  public:
    explicit ThreadState(ThreadId tid) : tid_(tid) {}

    /** Bind a program; resets window, rename state and accounting. */
    void attach(const SyntheticProgram *program);

    /** Unbind; the thread decodes nothing afterwards. */
    void detach();

    bool attached() const { return stream_ != nullptr; }
    InstrStream &stream() { return *stream_; }
    const InstrStream &stream() const { return *stream_; }
    ThreadId tid() const { return tid_; }

    /** The in-flight window, oldest first. */
    std::deque<InFlight> window;

    /** Rename map over the flat architectural register space. */
    RenameEntry renameMap[num_arch_regs];

    /** Current squash epoch (bumped by every squash). */
    std::uint64_t epoch = 0;

    /** Decode is blocked until this cycle (redirect penalty). */
    Cycle decodeBlockedUntil = 0;

    /** Privilege the thread's software runs at (for or-nops). */
    PrivilegeLevel privilege = PrivilegeLevel::User;

    /** Find the in-flight entry with @p seq, or nullptr. */
    InFlight *find(SeqNum seq);
    const InFlight *find(SeqNum seq) const;

    /** find() with an epoch identity check. */
    InFlight *find(SeqNum seq, std::uint64_t expected_epoch);

    /**
     * Rebuild the rename map from the surviving window after a squash
     * (youngest surviving producer of each register wins).
     */
    void rebuildRenameMap();

    /** Retirement accounting. */
    std::uint64_t committed = 0;

    /** Completed program executions (committed / instrsPerExecution). */
    std::uint64_t executionsCompleted = 0;

    /** Cycle at which the last completed execution retired. */
    Cycle lastExecutionCycle = 0;

    /** Counters for stats. */
    Counter committedCtr;
    Counter squashedCtr;
    Counter mispredictsCtr;
    Counter prioNopsApplied;
    Counter prioNopsIgnored;

  private:
    ThreadId tid_;
    std::unique_ptr<InstrStream> stream_;
};

} // namespace p5

#endif // P5SIM_CORE_THREAD_STATE_HH
