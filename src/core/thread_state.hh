/**
 * @file
 * Per-hardware-thread state: instruction window, rename map, stream
 * position, squash epoch and retirement accounting.
 */

#ifndef P5SIM_CORE_THREAD_STATE_HH
#define P5SIM_CORE_THREAD_STATE_HH

#include <memory>

#include "common/ring_deque.hh"
#include "common/small_vector.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "isa/instruction.hh"
#include "prio/priority.hh"
#include "program/stream.hh"

namespace p5 {

/**
 * Handle to an in-flight instruction: a physical window-slot hint plus
 * the (seq, epoch) identity that validates it. Resolution is an O(1)
 * slot access on the hot path; when the hint misses (the slot was
 * reused, or the ring re-layouted on growth) resolve() falls back to
 * the seq-indexed lookup, so a handle is never wrong — at worst slow.
 */
struct InFlightRef
{
    std::uint32_t slot = 0;
    SeqNum seq = 0;
    std::uint64_t epoch = 0;
};

/** One in-flight instruction plus its dataflow bookkeeping. */
struct InFlight
{
    DynInstr di;
    InstrPhase phase = InstrPhase::Dispatched;

    /** Source operands still waiting for a producer. */
    int pendingSrcs = 0;

    /** Squash epoch this entry was dispatched in. */
    std::uint64_t epoch = 0;

    /** Global dispatch stamp: age priority for oldest-first issue. */
    std::uint64_t stamp = 0;

    /** Guard against double-insertion into the ready queues. */
    bool inReadyQueue = false;

    /**
     * Same-thread consumers to wake on completion. Inline for the
     * common fan-out; a spill's buffer stays with the pooled window
     * slot, and attach() pre-warms every slot to @ref
     * dependents_reserve, so steady-state dispatch never allocates.
     */
    SmallVector<InFlightRef, 4> dependents;
};

/**
 * Pre-warmed wakeup-list capacity per pooled window slot: double the
 * largest fan-out observed across the paper's micro-benchmarks (~30,
 * a loop-carried value read by every consumer dispatched before it
 * completes).
 */
inline constexpr std::size_t dependents_reserve = 64;

/** Rename-map entry: the youngest producer of an architectural reg. */
struct RenameEntry
{
    bool valid = false;
    SeqNum seq = 0;
    std::uint64_t epoch = 0;
};

/** All per-thread state of one SMT core. */
class ThreadState
{
  public:
    explicit ThreadState(ThreadId tid) : tid_(tid) {}

    /**
     * Bind an instruction source; resets window, rename state and
     * accounting. @p window_capacity pre-sizes the in-flight ring (the
     * core passes its GCT bound) so the window never re-layouts
     * mid-run; 0 keeps the current capacity and grows on demand.
     */
    void attach(const InstrSource *source,
                std::size_t window_capacity = 0);

    /** Unbind; the thread decodes nothing afterwards. */
    void detach();

    bool attached() const { return stream_ != nullptr; }
    InstrStream &stream() { return *stream_; }
    const InstrStream &stream() const { return *stream_; }
    ThreadId tid() const { return tid_; }

    /** The in-flight window, oldest first (pooled ring slots). */
    RingDeque<InFlight> window;

    /** Rename map over the flat architectural register space. */
    RenameEntry renameMap[num_arch_regs];

    /** Current squash epoch (bumped by every squash). */
    std::uint64_t epoch = 0;

    /** Decode is blocked until this cycle (redirect penalty). */
    Cycle decodeBlockedUntil = 0;

    /** Privilege the thread's software runs at (for or-nops). */
    PrivilegeLevel privilege = PrivilegeLevel::User;

    /** Find the in-flight entry with @p seq, or nullptr. */
    InFlight *find(SeqNum seq);
    const InFlight *find(SeqNum seq) const;

    /** find() with an epoch identity check. */
    InFlight *find(SeqNum seq, std::uint64_t expected_epoch);

    /**
     * Resolve a handle: O(1) slot access validated by (seq, epoch),
     * with the seq-indexed lookup as the miss fallback. nullptr when
     * the instruction is gone (committed or squashed).
     */
    InFlight *
    resolve(const InFlightRef &ref)
    {
        InFlight *e = window.liveAtPhys(ref.slot);
        if (e && e->di.seq == ref.seq && e->epoch == ref.epoch)
            return e;
        return find(ref.seq, ref.epoch);
    }

    /** The handle of a live window entry. */
    InFlightRef
    refOf(const InFlight &e) const
    {
        return {window.physIndexOf(&e), e.di.seq, e.epoch};
    }

    /**
     * Rebuild the rename map from the surviving window after a squash
     * (youngest surviving producer of each register wins).
     */
    void rebuildRenameMap();

    /** Retirement accounting. */
    std::uint64_t committed = 0;

    /** Completed program executions (committed / instrsPerExecution). */
    std::uint64_t executionsCompleted = 0;

    /** Cycle at which the last completed execution retired. */
    Cycle lastExecutionCycle = 0;

    /** Counters for stats. */
    Counter committedCtr;
    Counter squashedCtr;
    Counter mispredictsCtr;
    Counter prioNopsApplied;
    Counter prioNopsIgnored;

    /**
     * Serialize the complete per-thread state: the window ring's
     * physical layout (every slot verbatim, vacant ones included, so
     * slot handles recorded in the ready/completion queues stay valid
     * after restore), rename map, epoch/accounting scalars, stream
     * cursor and counters.
     */
    void saveState(class CkptWriter &w) const;

    /**
     * Restore state saved by saveState(). @pre attach() was already
     * called with the same program and window capacity — restore
     * overwrites position and window contents but not the binding.
     */
    void restoreState(class CkptReader &r);

  private:
    ThreadId tid_;
    std::unique_ptr<InstrStream> stream_;
};

} // namespace p5

#endif // P5SIM_CORE_THREAD_STATE_HH
