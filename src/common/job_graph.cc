#include "common/job_graph.hh"

#include <condition_variable>
#include <mutex>

#include "common/log.hh"

namespace p5 {

JobGraph::NodeId
JobGraph::add(std::function<void()> fn, std::vector<NodeId> deps)
{
    const NodeId id = nodes_.size();
    for (NodeId d : deps)
        if (d >= id)
            fatal("JobGraph: node %zu depends on not-yet-added node %zu",
                  id, d);
    nodes_.push_back(Node{std::move(fn), std::move(deps)});
    return id;
}

void
JobGraph::run(ThreadPool &pool)
{
    const std::size_t n = nodes_.size();
    if (n == 0)
        return;

    struct State
    {
        std::mutex mutex;
        std::condition_variable done;
        std::vector<std::size_t> remainingDeps;
        std::vector<std::vector<NodeId>> dependents;
        std::size_t finished = 0;
        std::size_t scheduled = 0;
        std::exception_ptr error;
    } st;

    st.remainingDeps.resize(n);
    st.dependents.resize(n);
    for (NodeId id = 0; id < n; ++id) {
        st.remainingDeps[id] = nodes_[id].deps.size();
        for (NodeId d : nodes_[id].deps)
            st.dependents[d].push_back(id);
    }

    // Submits a ready node; its completion hook schedules dependents.
    std::function<void(NodeId)> schedule = [&](NodeId id) {
        ++st.scheduled;
        pool.submit([this, &st, &schedule, id] {
            std::exception_ptr err;
            try {
                nodes_[id].fn();
            } catch (...) {
                err = std::current_exception();
            }
            std::lock_guard<std::mutex> lock(st.mutex);
            ++st.finished;
            if (err && !st.error)
                st.error = err;
            if (!st.error)
                for (NodeId dep : st.dependents[id])
                    if (--st.remainingDeps[dep] == 0)
                        schedule(dep);
            st.done.notify_all();
        });
    };

    {
        std::lock_guard<std::mutex> lock(st.mutex);
        for (NodeId id = 0; id < n; ++id)
            if (st.remainingDeps[id] == 0)
                schedule(id);
        if (st.scheduled == 0)
            panic("JobGraph: no root nodes");
    }

    std::unique_lock<std::mutex> lock(st.mutex);
    st.done.wait(lock, [&] { return st.finished == st.scheduled; });
    if (st.error)
        std::rethrow_exception(st.error);
}

} // namespace p5
