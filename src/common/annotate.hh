/**
 * @file
 * Static-analysis annotations for the p5lint contract checker.
 *
 * The engine rests on three contracts that ordinary testing can only
 * sample: the busy path must never allocate (DESIGN §8), the
 * fast-forward idle probe must be side-effect-free (DESIGN §7's
 * bit-identical-stats guarantee), and results must be deterministic
 * under a fixed seed (the FAME methodology and the SimRunner result
 * cache both assume it). tools/p5lint.py closes all reachable paths at
 * compile time; these macros are how source code declares which
 * contract applies where (DESIGN §11).
 *
 *  - P5_HOT_PATH      marks a root of the per-cycle busy path: nothing
 *                     transitively reachable from it may allocate.
 *  - P5_PROBE_PURE    marks a root of the idle-probe family: everything
 *                     reachable must be const and free of writes to
 *                     members or globals.
 *  - P5_CONFIG_STRUCT marks a parameter struct whose every field must
 *                     be bound to a config path in ConfigTree::bindAll()
 *                     (a fingerprint hole otherwise).
 *  - P5_SERIALIZE_ROOT marks a checkpoint serialize/restore entry point
 *                     (DESIGN §14): nothing transitively reachable from
 *                     it may iterate an unordered container, and here
 *                     P5_ALLOW(determinism) is void — a lookup-only
 *                     exemption cannot be told apart from iteration
 *                     feeding the serialized byte stream.
 *  - P5_COLD          declares a function legitimately off the
 *                     per-cycle path (checkpoint restore, store I/O).
 *                     p5lint rejects any P5_COLD function reachable
 *                     from a P5_HOT_PATH root.
 *  - P5_ALLOW(rule)   grants a reviewed exemption from one rule, either
 *                     for a whole function/member (prefix the
 *                     declaration) or for a single statement (prefix the
 *                     statement). Every use must carry a comment saying
 *                     why the exemption is sound.
 *
 * Rule names are the snake_case forms of the p5lint rules:
 * hot_path_no_alloc, probe_purity, determinism, config_completeness.
 *
 * Under Clang the macros expand to [[clang::annotate]] so an AST
 * frontend sees them; under other compilers they expand to nothing.
 * p5lint's built-in lexing frontend recognizes the macro names
 * textually, so the contracts are enforced regardless of which
 * compiler produced the compile database.
 */

#ifndef P5SIM_COMMON_ANNOTATE_HH
#define P5SIM_COMMON_ANNOTATE_HH

#if defined(__clang__)
#define P5_ANNOTATE(text) [[clang::annotate(text)]]
#else
#define P5_ANNOTATE(text)
#endif

/** Root of the per-cycle busy path: no reachable allocation. */
#define P5_HOT_PATH P5_ANNOTATE("p5:hot_path")

/** Root of the idle-probe family: const-only, no reachable writes. */
#define P5_PROBE_PURE P5_ANNOTATE("p5:probe_pure")

/** Parameter struct whose fields must all be bound in bindAll(). */
#define P5_CONFIG_STRUCT P5_ANNOTATE("p5:config_struct")

/** Checkpoint serialize/restore entry point: deterministic bytes only. */
#define P5_SERIALIZE_ROOT P5_ANNOTATE("p5:serialize_root")

/** Legitimately off the per-cycle path; must stay hot-unreachable. */
#define P5_COLD P5_ANNOTATE("p5:cold")

/** Reviewed exemption from one p5lint rule (always comment the why). */
#define P5_ALLOW(rule) P5_ANNOTATE("p5:allow:" #rule)

#endif // P5SIM_COMMON_ANNOTATE_HH
