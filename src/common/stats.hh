/**
 * @file
 * Lightweight statistics package.
 *
 * Simulator components expose named statistics through a StatGroup so that
 * experiment harnesses and tests can read them generically, and a full dump
 * can be produced at the end of a run.
 */

#ifndef P5SIM_COMMON_STATS_HH
#define P5SIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace p5 {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    /** Overwrite the count (checkpoint restore only). */
    void restore(std::uint64_t v) { value_ = v; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max over a stream of samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return min_; }
    double max() const { return max_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
        min_ = 0.0;
        max_ = 0.0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-bucket histogram over [0, buckets * bucketWidth). */
class Distribution
{
  public:
    Distribution(std::size_t buckets, double bucket_width)
        : counts_(buckets, 0), bucketWidth_(bucket_width)
    {}

    void
    sample(double v)
    {
        ++total_;
        if (v < 0) {
            ++underflow_;
            return;
        }
        auto idx = static_cast<std::size_t>(v / bucketWidth_);
        if (idx >= counts_.size())
            ++overflow_;
        else
            ++counts_[idx];
    }

    std::uint64_t total() const { return total_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
    std::size_t numBuckets() const { return counts_.size(); }
    double bucketWidth() const { return bucketWidth_; }

    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        total_ = underflow_ = overflow_ = 0;
    }

  private:
    std::vector<std::uint64_t> counts_;
    double bucketWidth_;
    std::uint64_t total_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

/**
 * A named collection of scalar statistics.
 *
 * Components register counters (by pointer) or derived values (by callback)
 * under dotted names; value() and dump() read them on demand.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a counter under @p stat_name. Pointer must outlive group. */
    void registerCounter(const std::string &stat_name, const Counter *c);

    /** Register a derived (computed on read) statistic. */
    void registerDerived(const std::string &stat_name,
                         double (*fn)(const void *), const void *ctx);

    /**
     * Register a per-quantum time-series under @p series_name. Series
     * live in their own namespace: they are emitted by dumpJson()
     * (after the scalars, as JSON arrays) but deliberately do not
     * appear in names()/value()/dump(), so the *scalar* stat set — the
     * identity that the fast-forward and perf-gate machinery compares —
     * is unchanged by attaching a sampler. Pointer must outlive group.
     */
    void registerSeries(const std::string &series_name,
                        const std::vector<double> *v);

    /** True iff @p stat_name is registered. */
    bool has(const std::string &stat_name) const;

    /** True iff a series named @p series_name is registered. */
    bool hasSeries(const std::string &series_name) const;

    /** All registered series names, sorted. */
    std::vector<std::string> seriesNames() const;

    /** Read a series by name; fatal() if unknown. */
    const std::vector<double> &series(const std::string &series_name) const;

    /** Read a statistic by name; fatal() if unknown. */
    double value(const std::string &stat_name) const;

    /** All registered statistic names, sorted. */
    std::vector<std::string> names() const;

    /** Write "group.stat value" lines to @p os. */
    void dump(std::ostream &os) const;

    /**
     * Emit one JSON object member per statistic (sorted by name) at
     * @p w's current position. Counters that hold integral values are
     * written as JSON integers, derived values as doubles.
     */
    void dumpJson(class JsonWriter &w) const;

    const std::string &name() const { return name_; }

  private:
    struct Entry
    {
        const Counter *counter = nullptr;
        double (*fn)(const void *) = nullptr;
        const void *ctx = nullptr;
    };

    std::string name_;
    std::map<std::string, Entry> entries_;
    std::map<std::string, const std::vector<double> *> series_;
};

} // namespace p5

#endif // P5SIM_COMMON_STATS_HH
