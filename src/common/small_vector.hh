/**
 * @file
 * Fixed-inline-capacity vector with heap spill.
 *
 * The simulator's per-cycle path must not allocate (DESIGN §8), so the
 * short, bounded sequences it builds every cycle — a decode group, an
 * instruction's wakeup list — live in a SmallVector: the first N
 * elements sit inline in the object, and only pathological overflows
 * spill to the heap. clear() keeps whatever capacity was acquired, so a
 * pooled slot (e.g. an in-flight-window entry) that spilled once never
 * allocates again when reused.
 */

#ifndef P5SIM_COMMON_SMALL_VECTOR_HH
#define P5SIM_COMMON_SMALL_VECTOR_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/annotate.hh"

namespace p5 {

/** Vector with @p N elements of inline storage. */
template <typename T, std::size_t N>
class SmallVector
{
    static_assert(N > 0, "SmallVector needs inline capacity");

  public:
    SmallVector() = default;

    SmallVector(const SmallVector &other) { appendAll(other); }

    SmallVector(SmallVector &&other) noexcept { adopt(std::move(other)); }

    SmallVector &
    operator=(const SmallVector &other)
    {
        if (this != &other) {
            clear();
            appendAll(other);
        }
        return *this;
    }

    SmallVector &
    operator=(SmallVector &&other) noexcept
    {
        if (this != &other) {
            destroyStorage();
            adopt(std::move(other));
        }
        return *this;
    }

    ~SmallVector() { destroyStorage(); }

    void
    push_back(const T &value)
    {
        emplace_back(value);
    }

    void
    push_back(T &&value)
    {
        emplace_back(std::move(value));
    }

    template <typename... Args>
    T &
    emplace_back(Args &&...args)
    {
        if (size_ == capacity_)
            grow(capacity_ * 2);
        T *slot = data_ + size_;
        ::new (static_cast<void *>(slot)) T(std::forward<Args>(args)...);
        ++size_;
        return *slot;
    }

    void
    pop_back()
    {
        --size_;
        data_[size_].~T();
    }

    /** Destroy the elements but keep the acquired capacity. */
    void
    clear()
    {
        for (std::size_t i = 0; i < size_; ++i)
            data_[i].~T();
        size_ = 0;
    }

    void
    reserve(std::size_t capacity)
    {
        if (capacity > capacity_)
            grow(capacity);
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }
    bool empty() const { return size_ == 0; }

    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

    T &operator[](std::size_t i) { return data_[i]; }
    const T &operator[](std::size_t i) const { return data_[i]; }

    T &front() { return data_[0]; }
    const T &front() const { return data_[0]; }
    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }

  private:
    T *
    inlineData()
    {
        return reinterpret_cast<T *>(inline_);
    }

    const T *
    inlineData() const
    {
        return reinterpret_cast<const T *>(inline_);
    }

    bool onHeap() const { return data_ != inlineData(); }

    // Spill path: runs only when an attach-time reservation was
    // undersized; steady-state hot-path pushes stay inline.
    P5_ALLOW(hot_path_no_alloc)
    void
    grow(std::size_t min_capacity)
    {
        std::size_t capacity = capacity_;
        while (capacity < min_capacity)
            capacity *= 2;
        T *fresh = static_cast<T *>(
            ::operator new(capacity * sizeof(T), std::align_val_t{alignof(T)}));
        for (std::size_t i = 0; i < size_; ++i) {
            ::new (static_cast<void *>(fresh + i)) T(std::move(data_[i]));
            data_[i].~T();
        }
        releaseHeap();
        data_ = fresh;
        capacity_ = capacity;
    }

    void
    releaseHeap()
    {
        if (onHeap())
            ::operator delete(data_, std::align_val_t{alignof(T)});
    }

    /** clear() plus release of any heap buffer (back to inline). */
    void
    destroyStorage()
    {
        clear();
        releaseHeap();
        data_ = inlineData();
        capacity_ = N;
    }

    void
    appendAll(const SmallVector &other)
    {
        reserve(other.size_);
        for (std::size_t i = 0; i < other.size_; ++i)
            emplace_back(other.data_[i]);
    }

    /** Steal @p other's heap buffer, or move its inline elements. */
    void
    adopt(SmallVector &&other) noexcept
    {
        if (other.onHeap()) {
            data_ = other.data_;
            size_ = other.size_;
            capacity_ = other.capacity_;
            other.data_ = other.inlineData();
            other.size_ = 0;
            other.capacity_ = N;
        } else {
            data_ = inlineData();
            size_ = other.size_;
            capacity_ = N;
            for (std::size_t i = 0; i < size_; ++i) {
                ::new (static_cast<void *>(data_ + i))
                    T(std::move(other.data_[i]));
                other.data_[i].~T();
            }
            other.size_ = 0;
        }
    }

    T *data_ = inlineData();
    std::size_t size_ = 0;
    std::size_t capacity_ = N;
    alignas(T) unsigned char inline_[N * sizeof(T)];
};

} // namespace p5

#endif // P5SIM_COMMON_SMALL_VECTOR_HH
