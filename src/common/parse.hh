/**
 * @file
 * Strict textual number parsing shared by every user-input surface.
 *
 * The CLI layer, the config tree and the store/serve query parsers all
 * accept numbers typed by a user (or replayed from a sweep script).
 * Each used to call strtoll/strtod with slightly different checking, so
 * "8x" or an out-of-range literal could slip through one surface and be
 * rejected by another. These helpers centralize the policy:
 *
 *  - the whole token must parse (trailing garbage is an error);
 *  - empty strings are an error, reported distinctly;
 *  - out-of-range values (ERANGE) are an error, never silently
 *    saturated — a sweep point that saturates would be cached and
 *    served under a fingerprint describing a different configuration;
 *  - unsigned parses reject a minus sign anywhere (strtoull wraps
 *    negative input).
 *
 * Callers that treat failure as a user error combine the returned
 * status with parseStatusName() in their fatal() message.
 */

#ifndef P5SIM_COMMON_PARSE_HH
#define P5SIM_COMMON_PARSE_HH

#include <cstdint>
#include <string>

namespace p5 {

/** Why a textual number failed to parse (Ok when it did not). */
enum class ParseStatus
{
    Ok,
    Empty,      ///< empty (or all-whitespace) input
    Invalid,    ///< not a number, or trailing garbage after one
    OutOfRange, ///< parses but overflows the target type
};

/** Human-readable reason for an error status ("" for Ok). */
const char *parseStatusName(ParseStatus status);

/**
 * Parse @p text as a signed 64-bit integer (base auto-detected like
 * strtoll: 0x hex, leading-0 octal). @p out is written only on Ok.
 */
ParseStatus parseInt64(const std::string &text, std::int64_t &out);

/** Parse @p text as an unsigned 64-bit integer; rejects any '-'. */
ParseStatus parseUint64(const std::string &text, std::uint64_t &out);

/**
 * Parse @p text as a double. Overflow (ERANGE to ±HUGE_VAL) is an
 * error; gradual underflow to a subnormal or zero is accepted.
 */
ParseStatus parseFloat64(const std::string &text, double &out);

} // namespace p5

#endif // P5SIM_COMMON_PARSE_HH
