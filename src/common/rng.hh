/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Two facilities are provided:
 *
 *  - Rng: a stateful xoshiro256** generator for sequential draws;
 *  - hashMix(): a stateless SplitMix64-style mixer used where a value must
 *    be a pure function of an index (e.g. the taken/not-taken direction of
 *    branch @c i in a synthetic program, which must be recomputable after a
 *    pipeline flush rewinds the instruction stream).
 */

#ifndef P5SIM_COMMON_RNG_HH
#define P5SIM_COMMON_RNG_HH

#include <cstdint>

namespace p5 {

/** Mix a 64-bit value into a well-distributed 64-bit hash (SplitMix64). */
constexpr std::uint64_t
hashMix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine two 64-bit values into one hash (order sensitive). */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return hashMix(a ^ (hashMix(b) + 0x9e3779b97f4a7c15ULL + (a << 6)));
}

/**
 * Deterministic xoshiro256** generator.
 *
 * Seeded via SplitMix64 so that any 64-bit seed yields a full state.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x = hashMix(x);
            word = x;
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform draw in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace p5

#endif // P5SIM_COMMON_RNG_HH
