/**
 * @file
 * ASCII and CSV table rendering for experiment output.
 *
 * Experiment harnesses build a Table (column headers + rows of cells) and
 * render it either as an aligned ASCII grid (for terminals, matching the
 * paper's table layout) or as CSV (for plotting).
 */

#ifndef P5SIM_COMMON_TABLE_HH
#define P5SIM_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace p5 {

/** A rectangular table of string cells with named columns. */
class Table
{
  public:
    explicit Table(std::string title = "") : title_(std::move(title)) {}

    /** Set the column headers. Must be called before addRow(). */
    void setColumns(std::vector<std::string> headers);

    /** Append a row; must match the column count. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision fractional digits. */
    static std::string fmt(double v, int precision = 3);

    /** Format a double as "1.23x" style factor. */
    static std::string fmtFactor(double v, int precision = 2);

    /** Format a fraction as a percentage string, e.g. "23.7%". */
    static std::string fmtPercent(double fraction, int precision = 1);

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numColumns() const { return headers_.size(); }
    const std::string &title() const { return title_; }
    const std::vector<std::string> &header() const { return headers_; }
    const std::vector<std::string> &row(std::size_t i) const;

    /** Render as an aligned ASCII grid. */
    void printAscii(std::ostream &os) const;

    /** Render as CSV (RFC-4180-ish quoting for commas/quotes). */
    void printCsv(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace p5

#endif // P5SIM_COMMON_TABLE_HH
