/**
 * @file
 * Minimal command-line flag parser for bench and example binaries.
 *
 * Supports flags of the form "--name=value", "--name value" and boolean
 * "--name". Unknown flags are fatal so that typos in experiment sweeps do
 * not silently run the wrong configuration.
 */

#ifndef P5SIM_COMMON_CLI_HH
#define P5SIM_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace p5 {

/** Parsed command line with typed accessors and defaults. */
class Cli
{
  public:
    /**
     * Declare a flag before parse().
     *
     * @param name flag name without leading dashes.
     * @param default_value textual default.
     * @param help one-line description for usage().
     */
    void declare(const std::string &name, const std::string &default_value,
                 const std::string &help);

    /** Parse argv; fatal() on unknown flags. "--help" prints usage. */
    void parse(int argc, const char *const *argv);

    std::string str(const std::string &name) const;
    std::int64_t integer(const std::string &name) const;
    double real(const std::string &name) const;
    bool boolean(const std::string &name) const;

    /** True iff the flag was explicitly set on the command line. */
    bool isSet(const std::string &name) const;

    /** Render usage text. */
    std::string usage(const std::string &prog) const;

  private:
    struct Flag
    {
        std::string value;
        std::string help;
        bool set = false;
    };

    const Flag &find(const std::string &name) const;

    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;
};

} // namespace p5

#endif // P5SIM_COMMON_CLI_HH
