/**
 * @file
 * Minimal command-line flag parser for the p5sim driver, bench and
 * example binaries.
 *
 * Supports flags of the form "--name=value", "--name value" and boolean
 * "--name", plus repeatable flags (declareMulti) that accumulate every
 * occurrence in order — the driver's "--set key=value" and
 * "--sweep key=v1,v2" use those. Unknown flags are fatal so that typos
 * in experiment sweeps do not silently run the wrong configuration.
 */

#ifndef P5SIM_COMMON_CLI_HH
#define P5SIM_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace p5 {

/** Parsed command line with typed accessors and defaults. */
class Cli
{
  public:
    /**
     * Declare a flag before parse().
     *
     * @param name flag name without leading dashes.
     * @param default_value textual default.
     * @param help one-line description for usage().
     */
    void declare(const std::string &name, const std::string &default_value,
                 const std::string &help);

    /**
     * Declare a repeatable flag: every "--name=value" occurrence is
     * appended to the list returned by list(). A repeatable flag has no
     * default and no scalar accessors.
     */
    void declareMulti(const std::string &name, const std::string &help);

    /**
     * Parse argv; fatal() on unknown flags. "--help" prints usage and
     * exits unless setExitOnHelp(false) was called, in which case
     * helpRequested() reports it and parsing continues.
     */
    void parse(int argc, const char *const *argv);

    /** In-process help handling for the driver (and its tests). */
    void setExitOnHelp(bool exit_on_help) { exitOnHelp_ = exit_on_help; }
    bool helpRequested() const { return helpRequested_; }

    std::string str(const std::string &name) const;
    std::int64_t integer(const std::string &name) const;
    double real(const std::string &name) const;
    bool boolean(const std::string &name) const;

    /** True iff the flag was explicitly set on the command line. */
    bool isSet(const std::string &name) const;

    /** All values of a repeatable flag, in command-line order. */
    const std::vector<std::string> &list(const std::string &name) const;

    /** Render usage text. */
    std::string usage(const std::string &prog) const;

  private:
    struct Flag
    {
        std::string value;
        std::string help;
        bool set = false;
        bool multi = false;
        std::vector<std::string> values;
    };

    const Flag &find(const std::string &name) const;

    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;
    bool exitOnHelp_ = true;
    bool helpRequested_ = false;
};

} // namespace p5

#endif // P5SIM_COMMON_CLI_HH
