/**
 * @file
 * Logging and error-reporting helpers in the gem5 style.
 *
 * panic()  — internal simulator bug; aborts.
 * fatal()  — user/configuration error; exits with status 1.
 * warn()   — suspicious but non-fatal condition.
 * inform() — status message.
 *
 * All of them accept printf-style formatting.
 */

#ifndef P5SIM_COMMON_LOG_HH
#define P5SIM_COMMON_LOG_HH

#include <cstdarg>
#include <cstdint>
#include <string>

namespace p5 {

/** Verbosity control: messages below this level are suppressed. */
enum class LogLevel { Silent = 0, Fatal = 1, Warn = 2, Inform = 3 };

/** Set the global log verbosity. Returns the previous level. */
LogLevel setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

/** Report an internal simulator bug and abort. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an unrecoverable user error and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious condition; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report an informational status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Number of warn() calls since process start (used by tests). */
std::uint64_t warnCount();

/**
 * Report a p5check invariant violation; logged at Warn verbosity with a
 * distinct prefix and counted separately so harnesses can assert that a
 * run was violation-free (see checkFailCount()).
 */
void checkfail(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Number of checkfail() calls since process start. */
std::uint64_t checkFailCount();

namespace detail {
/** Shared formatting helper for the log front-ends. */
std::string vformat(const char *fmt, va_list ap);
} // namespace detail

} // namespace p5

#endif // P5SIM_COMMON_LOG_HH
