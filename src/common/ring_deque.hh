/**
 * @file
 * Pooled power-of-two ring deque.
 *
 * std::deque allocates and frees 512-byte nodes as elements cycle
 * through it, which puts a steady trickle of heap traffic on the
 * simulator's per-cycle path (the in-flight window and the GCT group
 * lists both push at the tail and pop at the head every few cycles).
 * RingDeque replaces that with a power-of-two ring whose slots are
 * constructed once and then *reused*: popping never destroys, pushing
 * hands back the stale slot for the caller to overwrite. A slot's
 * acquired resources (e.g. a spilled SmallVector buffer) therefore
 * survive reuse, which is what makes the steady-state tick loop
 * allocation-free.
 *
 * Slots also serve as stable handles: a live element never moves, so
 * `physIndexOf()` / `liveAtPhys()` give O(1) re-resolution of an
 * element by its physical slot (validated by the caller against
 * seq/epoch identity). Handles are hints — growth re-layouts the ring,
 * after which `liveAtPhys` misses and callers fall back to a logical
 * lookup — so pre-size with `reserve()` where the population bound is
 * known.
 */

#ifndef P5SIM_COMMON_RING_DEQUE_HH
#define P5SIM_COMMON_RING_DEQUE_HH

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "common/annotate.hh"

namespace p5 {

/** FIFO-with-tail-pops ring over permanently constructed slots. */
template <typename T>
class RingDeque
{
  public:
    RingDeque() = default;

    explicit RingDeque(std::size_t capacity_hint)
    {
        reserve(capacity_hint);
    }

    /**
     * Grow the ring to at least @p capacity slots (rounded up to a
     * power of two). Re-layouts the ring: physical-slot handles taken
     * before a grow stop resolving (they miss, they don't mislead).
     */
    // Spill path: runs at attach-time reservation and only again if
    // that reservation was undersized; steady-state pushSlot() reuses
    // acquired capacity.
    P5_ALLOW(hot_path_no_alloc)
    void
    reserve(std::size_t capacity)
    {
        if (capacity <= slots_.size())
            return;
        std::size_t pow2 = slots_.empty() ? min_capacity : slots_.size();
        while (pow2 < capacity)
            pow2 *= 2;
        std::vector<T> fresh(pow2);
        for (std::size_t i = 0; i < size_; ++i)
            fresh[i] = std::move(slots_[(head_ + i) & mask_]);
        slots_ = std::move(fresh);
        mask_ = pow2 - 1;
        head_ = 0;
    }

    /**
     * Extend the deque by one at the tail and return the slot. The slot
     * holds whatever its previous occupant left behind — the caller
     * overwrites every live field (and may reuse acquired capacity).
     */
    T &
    pushSlot()
    {
        if (size_ > mask_ || slots_.empty())
            reserve(size_ + 1);
        T &slot = slots_[(head_ + size_) & mask_];
        ++size_;
        return slot;
    }

    void
    push_back(const T &value)
    {
        pushSlot() = value;
    }

    /** Pop the head; the slot's contents stay constructed for reuse. */
    void
    pop_front()
    {
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    /** Pop the tail; the slot's contents stay constructed for reuse. */
    void
    pop_back()
    {
        --size_;
    }

    /** Drop every element (slot contents remain pooled). */
    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::size_t capacity() const { return slots_.size(); }

    /**
     * Visit every constructed slot, vacant ones included. This is how a
     * caller pre-warms pooled per-slot resources (e.g. reserving a
     * SmallVector's spill buffer) so the busy path never grows them.
     */
    template <typename Fn>
    void
    forEachSlot(Fn &&fn)
    {
        for (T &slot : slots_)
            fn(slot);
    }

    T &front() { return slots_[head_]; }
    const T &front() const { return slots_[head_]; }
    T &back() { return slots_[(head_ + size_ - 1) & mask_]; }
    const T &back() const { return slots_[(head_ + size_ - 1) & mask_]; }

    /** Logical index from the front (0 == oldest). */
    T &
    operator[](std::size_t i)
    {
        return slots_[(head_ + i) & mask_];
    }

    const T &
    operator[](std::size_t i) const
    {
        return slots_[(head_ + i) & mask_];
    }

    // --- checkpoint shape access --------------------------------------

    /** Physical index of the head slot (for checkpoint save). */
    std::size_t headIndex() const { return head_; }

    /**
     * Overwrite head/size without touching slot contents. Checkpoint
     * restore uses this after reserve() + slotAt() writes to reproduce
     * the exact physical layout of the saved ring, so slot handles
     * recorded elsewhere in the checkpoint stay valid.
     * @pre head < capacity() && size <= capacity()
     */
    void
    setShape(std::size_t head, std::size_t size)
    {
        head_ = head;
        size_ = size;
    }

    /** Direct access to physical slot @p phys, live or vacant. */
    T &slotAt(std::size_t phys) { return slots_[phys]; }
    const T &slotAt(std::size_t phys) const { return slots_[phys]; }

    // --- physical-slot handles ---------------------------------------

    /** Physical slot of a live element (for later re-resolution). */
    std::uint32_t
    physIndexOf(const T *element) const
    {
        return static_cast<std::uint32_t>(element - slots_.data());
    }

    /**
     * The element occupying physical slot @p phys, or nullptr when the
     * slot is vacant, out of range, or the ring re-layouted since the
     * handle was taken. A non-null result still needs an identity check
     * by the caller — the slot may have been reused.
     */
    T *
    liveAtPhys(std::uint32_t phys)
    {
        if (phys >= slots_.size())
            return nullptr;
        if (((phys - head_) & mask_) >= size_)
            return nullptr;
        return &slots_[phys];
    }

    // --- iteration (oldest first) ------------------------------------

    template <bool Const>
    class Iterator
    {
        using Container =
            std::conditional_t<Const, const RingDeque, RingDeque>;

      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = std::conditional_t<Const, const T *, T *>;
        using reference = std::conditional_t<Const, const T &, T &>;

        Iterator() = default;
        Iterator(Container *ring, std::size_t logical)
            : ring_(ring), logical_(logical)
        {
        }

        reference operator*() const { return (*ring_)[logical_]; }
        pointer operator->() const { return &(*ring_)[logical_]; }

        Iterator &
        operator++()
        {
            ++logical_;
            return *this;
        }

        Iterator
        operator++(int)
        {
            Iterator prev = *this;
            ++logical_;
            return prev;
        }

        bool
        operator==(const Iterator &other) const
        {
            return logical_ == other.logical_;
        }

        bool
        operator!=(const Iterator &other) const
        {
            return logical_ != other.logical_;
        }

      private:
        Container *ring_ = nullptr;
        std::size_t logical_ = 0;
    };

    using iterator = Iterator<false>;
    using const_iterator = Iterator<true>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, size_); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const { return const_iterator(this, size_); }

  private:
    static constexpr std::size_t min_capacity = 8;

    std::vector<T> slots_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace p5

#endif // P5SIM_COMMON_RING_DEQUE_HH
