#include "common/log.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace p5 {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::atomic<std::uint64_t> g_warn_count{0};
std::atomic<std::uint64_t> g_checkfail_count{0};

void
emit(const char *prefix, const char *fmt, va_list ap)
{
    std::string body = detail::vformat(fmt, ap);
    std::fprintf(stderr, "%s: %s\n", prefix, body.c_str());
}

} // namespace

namespace detail {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int needed = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (needed < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

} // namespace detail

LogLevel
setLogLevel(LogLevel level)
{
    return g_level.exchange(level);
}

LogLevel
logLevel()
{
    return g_level.load();
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    g_warn_count.fetch_add(1);
    if (logLevel() < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Inform)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

std::uint64_t
warnCount()
{
    return g_warn_count.load();
}

void
checkfail(const char *fmt, ...)
{
    g_checkfail_count.fetch_add(1);
    if (logLevel() < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    emit("p5check", fmt, ap);
    va_end(ap);
}

std::uint64_t
checkFailCount()
{
    return g_checkfail_count.load();
}

} // namespace p5
