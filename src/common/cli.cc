#include "common/cli.hh"

#include <cstdio>

#include "common/log.hh"
#include "common/parse.hh"

namespace p5 {

void
Cli::declare(const std::string &name, const std::string &default_value,
             const std::string &help)
{
    if (flags_.count(name))
        panic("CLI flag '--%s' declared twice", name.c_str());
    Flag f;
    f.value = default_value;
    f.help = help;
    flags_[name] = f;
    order_.push_back(name);
}

void
Cli::declareMulti(const std::string &name, const std::string &help)
{
    if (flags_.count(name))
        panic("CLI flag '--%s' declared twice", name.c_str());
    Flag f;
    f.help = help;
    f.multi = true;
    flags_[name] = f;
    order_.push_back(name);
}

void
Cli::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            fatal("unexpected positional argument '%s'", arg.c_str());
        arg = arg.substr(2);

        if (arg == "help") {
            if (!exitOnHelp_) {
                helpRequested_ = true;
                continue;
            }
            std::fputs(usage(argv[0]).c_str(), stdout);
            std::exit(0);
        }

        std::string name;
        std::string value;
        bool have_value = false;
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            have_value = true;
        } else {
            name = arg;
        }

        auto it = flags_.find(name);
        if (it == flags_.end())
            fatal("unknown flag '--%s' (try --help)", name.c_str());

        if (!have_value) {
            // "--flag value" if the next token is not a flag, else boolean.
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            } else {
                value = "true";
            }
        }
        if (it->second.multi)
            it->second.values.push_back(value);
        else
            it->second.value = value;
        it->second.set = true;
    }
}

const Cli::Flag &
Cli::find(const std::string &name) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        panic("CLI flag '--%s' read but never declared", name.c_str());
    return it->second;
}

std::string
Cli::str(const std::string &name) const
{
    const Flag &f = find(name);
    if (f.multi)
        panic("CLI flag '--%s' is repeatable; use list()", name.c_str());
    return f.value;
}

std::int64_t
Cli::integer(const std::string &name) const
{
    const std::string &v = find(name).value;
    std::int64_t out = 0;
    const ParseStatus status = parseInt64(v, out);
    if (status != ParseStatus::Ok)
        fatal("flag '--%s' expects an integer, got '%s' (%s)",
              name.c_str(), v.c_str(), parseStatusName(status));
    return out;
}

double
Cli::real(const std::string &name) const
{
    const std::string &v = find(name).value;
    double out = 0.0;
    const ParseStatus status = parseFloat64(v, out);
    if (status != ParseStatus::Ok)
        fatal("flag '--%s' expects a number, got '%s' (%s)",
              name.c_str(), v.c_str(), parseStatusName(status));
    return out;
}

bool
Cli::boolean(const std::string &name) const
{
    const std::string &v = find(name).value;
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("flag '--%s' expects a boolean, got '%s'", name.c_str(),
          v.c_str());
}

bool
Cli::isSet(const std::string &name) const
{
    return find(name).set;
}

const std::vector<std::string> &
Cli::list(const std::string &name) const
{
    const Flag &f = find(name);
    if (!f.multi)
        panic("CLI flag '--%s' is not repeatable", name.c_str());
    return f.values;
}

std::string
Cli::usage(const std::string &prog) const
{
    std::string out = "usage: " + prog + " [flags]\n";
    for (const auto &name : order_) {
        const Flag &f = flags_.at(name);
        if (f.multi)
            out += "  --" + name + " (repeatable)  " + f.help + "\n";
        else
            out += "  --" + name + " (default: " + f.value + ")  " +
                   f.help + "\n";
    }
    return out;
}

} // namespace p5
