/**
 * @file
 * A fixed-size worker pool for CPU-bound simulation jobs.
 *
 * Tasks are submitted as callables and their results retrieved through
 * std::future, so exceptions thrown inside a task propagate to whoever
 * calls get(). The pool is deliberately minimal: no priorities, no work
 * stealing — simulation jobs are long and uniform enough that a single
 * locked queue is nowhere near contention.
 */

#ifndef P5SIM_COMMON_THREAD_POOL_HH
#define P5SIM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace p5 {

/** Fixed set of worker threads consuming a shared task queue. */
class ThreadPool
{
  public:
    /**
     * @param workers number of worker threads; 0 selects
     *        defaultWorkers() (the hardware concurrency).
     */
    explicit ThreadPool(unsigned workers = 0);

    /** Joins all workers; queued-but-unstarted tasks still run first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p fn and return a future for its result. An exception
     * escaping @p fn is captured and rethrown from future::get().
     */
    template <typename Fn>
    std::future<std::invoke_result_t<Fn>>
    submit(Fn &&fn)
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace([task] { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

    unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

    /** Tasks submitted but not yet finished. */
    std::size_t pending() const;

    /** max(1, std::thread::hardware_concurrency()). */
    static unsigned defaultWorkers();

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::queue<std::function<void()>> queue_;
    std::vector<std::thread> threads_;
    std::size_t inFlight_ = 0;
    bool stop_ = false;
};

} // namespace p5

#endif // P5SIM_COMMON_THREAD_POOL_HH
