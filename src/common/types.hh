/**
 * @file
 * Fundamental scalar type aliases used across p5sim.
 */

#ifndef P5SIM_COMMON_TYPES_HH
#define P5SIM_COMMON_TYPES_HH

#include <cstdint>

namespace p5 {

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Simulated (virtual) byte address. */
using Addr = std::uint64_t;

/** Global dynamic-instruction sequence number (per thread). */
using SeqNum = std::uint64_t;

/** Hardware thread identifier within one SMT core (0 or 1). */
using ThreadId = int;

/** Architectural register index. */
using RegIndex = std::int16_t;

/** Sentinel for "no register operand". */
constexpr RegIndex invalid_reg = -1;

/** Number of hardware threads per SMT core (POWER5: two). */
constexpr int num_hw_threads = 2;

/** Sentinel cycle value meaning "never" / "not scheduled". */
constexpr Cycle never_cycle = ~Cycle{0};

/**
 * a + b clamped to never_cycle on overflow, so "max_cycles = ~0" style
 * no-limit arguments cannot wrap deadline arithmetic.
 */
constexpr Cycle
saturatingAdd(Cycle a, Cycle b)
{
    return b > never_cycle - a ? never_cycle : a + b;
}

} // namespace p5

#endif // P5SIM_COMMON_TYPES_HH
