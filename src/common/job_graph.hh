/**
 * @file
 * A small dependency graph executed over a ThreadPool.
 *
 * Nodes are void() callables with explicit predecessor edges; run()
 * schedules every node whose dependencies have completed, keeping the
 * pool saturated with all currently-ready nodes. Independent nodes (the
 * common case for simulation batches) therefore run fully in parallel.
 */

#ifndef P5SIM_COMMON_JOB_GRAPH_HH
#define P5SIM_COMMON_JOB_GRAPH_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "common/thread_pool.hh"

namespace p5 {

/** Static DAG of tasks; build with add(), execute with run(). */
class JobGraph
{
  public:
    using NodeId = std::size_t;

    /**
     * Add a node running @p fn after every node in @p deps.
     * Dependencies must already have been added (ids are dense,
     * in insertion order), which also makes cycles unrepresentable.
     */
    NodeId add(std::function<void()> fn, std::vector<NodeId> deps = {});

    std::size_t size() const { return nodes_.size(); }

    /**
     * Execute the whole graph on @p pool and block until done.
     *
     * If a node throws, no new nodes are scheduled, in-flight nodes are
     * drained, and the first exception is rethrown here. Nodes whose
     * dependency threw never run.
     */
    void run(ThreadPool &pool);

  private:
    struct Node
    {
        std::function<void()> fn;
        std::vector<NodeId> deps;
    };

    std::vector<Node> nodes_;
};

} // namespace p5

#endif // P5SIM_COMMON_JOB_GRAPH_HH
