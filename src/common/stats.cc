#include "common/stats.hh"

#include <algorithm>

#include "common/json.hh"
#include "common/log.hh"

namespace p5 {

void
StatGroup::registerCounter(const std::string &stat_name, const Counter *c)
{
    if (entries_.count(stat_name))
        panic("stat '%s.%s' registered twice", name_.c_str(),
              stat_name.c_str());
    Entry e;
    e.counter = c;
    entries_[stat_name] = e;
}

void
StatGroup::registerDerived(const std::string &stat_name,
                           double (*fn)(const void *), const void *ctx)
{
    if (entries_.count(stat_name))
        panic("stat '%s.%s' registered twice", name_.c_str(),
              stat_name.c_str());
    Entry e;
    e.fn = fn;
    e.ctx = ctx;
    entries_[stat_name] = e;
}

void
StatGroup::registerSeries(const std::string &series_name,
                          const std::vector<double> *v)
{
    if (series_.count(series_name))
        panic("series '%s.%s' registered twice", name_.c_str(),
              series_name.c_str());
    series_[series_name] = v;
}

bool
StatGroup::has(const std::string &stat_name) const
{
    return entries_.count(stat_name) != 0;
}

bool
StatGroup::hasSeries(const std::string &series_name) const
{
    return series_.count(series_name) != 0;
}

std::vector<std::string>
StatGroup::seriesNames() const
{
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto &kv : series_)
        out.push_back(kv.first);
    return out;
}

const std::vector<double> &
StatGroup::series(const std::string &series_name) const
{
    auto it = series_.find(series_name);
    if (it == series_.end())
        fatal("unknown series '%s.%s'", name_.c_str(),
              series_name.c_str());
    return *it->second;
}

double
StatGroup::value(const std::string &stat_name) const
{
    auto it = entries_.find(stat_name);
    if (it == entries_.end())
        fatal("unknown stat '%s.%s'", name_.c_str(), stat_name.c_str());
    const Entry &e = it->second;
    if (e.counter)
        return static_cast<double>(e.counter->value());
    return e.fn(e.ctx);
}

std::vector<std::string>
StatGroup::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &kv : entries_)
        out.push_back(kv.first);
    return out;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &kv : entries_)
        os << name_ << '.' << kv.first << ' ' << value(kv.first) << '\n';
}

void
StatGroup::dumpJson(JsonWriter &w) const
{
    w.beginObject();
    for (const auto &kv : entries_) {
        const Entry &e = kv.second;
        if (e.counter)
            w.member(kv.first, e.counter->value());
        else
            w.member(kv.first, e.fn(e.ctx));
    }
    for (const auto &kv : series_) {
        w.key(kv.first);
        w.beginArray();
        for (double v : *kv.second)
            w.value(v);
        w.endArray();
    }
    w.endObject();
}

} // namespace p5
