#include "common/json.hh"

#include <cmath>
#include <cstdio>

#include "common/log.hh"

namespace p5 {

JsonWriter::JsonWriter(std::ostream &os, int indentWidth)
    : os_(os), indentWidth_(indentWidth)
{}

JsonWriter::~JsonWriter()
{
    if (!stack_.empty())
        panic("JsonWriter destroyed with %zu open scopes", stack_.size());
    os_ << '\n';
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::newline()
{
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        for (int s = 0; s < indentWidth_; ++s)
            os_ << ' ';
}

void
JsonWriter::prepareValue()
{
    if (stack_.empty()) {
        if (rootWritten_)
            panic("JsonWriter: second root value");
        rootWritten_ = true;
        return;
    }
    if (stack_.back() == Scope::Object) {
        if (!keyPending_)
            panic("JsonWriter: value in object without a key");
        keyPending_ = false;
        return;
    }
    if (!firstInScope_)
        os_ << ',';
    firstInScope_ = false;
    newline();
}

void
JsonWriter::raw(std::string_view text)
{
    os_ << text;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    if (stack_.empty() || stack_.back() != Scope::Object)
        panic("JsonWriter: key() outside an object");
    if (keyPending_)
        panic("JsonWriter: key() twice without a value");
    if (!firstInScope_)
        os_ << ',';
    firstInScope_ = false;
    newline();
    os_ << '"' << escape(name) << "\": ";
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    prepareValue();
    os_ << '{';
    stack_.push_back(Scope::Object);
    firstInScope_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Scope::Object || keyPending_)
        panic("JsonWriter: mismatched endObject()");
    const bool empty = firstInScope_;
    stack_.pop_back();
    if (!empty)
        newline();
    os_ << '}';
    firstInScope_ = false;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prepareValue();
    os_ << '[';
    stack_.push_back(Scope::Array);
    firstInScope_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Scope::Array)
        panic("JsonWriter: mismatched endArray()");
    const bool empty = firstInScope_;
    stack_.pop_back();
    if (!empty)
        newline();
    os_ << ']';
    firstInScope_ = false;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    prepareValue();
    os_ << '"' << escape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string_view(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    prepareValue();
    if (!std::isfinite(v)) {
        os_ << "null"; // JSON has no NaN/Inf
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    prepareValue();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    prepareValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    prepareValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    prepareValue();
    os_ << "null";
    return *this;
}

} // namespace p5
