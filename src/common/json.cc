#include "common/json.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "common/parse.hh"

namespace p5 {

JsonWriter::JsonWriter(std::ostream &os, int indentWidth)
    : os_(os), indentWidth_(indentWidth)
{}

JsonWriter::~JsonWriter()
{
    if (!stack_.empty())
        panic("JsonWriter destroyed with %zu open scopes", stack_.size());
    if (indentWidth_ >= 0)
        os_ << '\n';
}

std::string
JsonWriter::escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonWriter::newline()
{
    if (indentWidth_ < 0)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        for (int s = 0; s < indentWidth_; ++s)
            os_ << ' ';
}

void
JsonWriter::prepareValue()
{
    if (stack_.empty()) {
        if (rootWritten_)
            panic("JsonWriter: second root value");
        rootWritten_ = true;
        return;
    }
    if (stack_.back() == Scope::Object) {
        if (!keyPending_)
            panic("JsonWriter: value in object without a key");
        keyPending_ = false;
        return;
    }
    if (!firstInScope_)
        os_ << ',';
    firstInScope_ = false;
    newline();
}

void
JsonWriter::raw(std::string_view text)
{
    os_ << text;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    if (stack_.empty() || stack_.back() != Scope::Object)
        panic("JsonWriter: key() outside an object");
    if (keyPending_)
        panic("JsonWriter: key() twice without a value");
    if (!firstInScope_)
        os_ << ',';
    firstInScope_ = false;
    newline();
    os_ << '"' << escape(name) << "\": ";
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::beginObject()
{
    prepareValue();
    os_ << '{';
    stack_.push_back(Scope::Object);
    firstInScope_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Scope::Object || keyPending_)
        panic("JsonWriter: mismatched endObject()");
    const bool empty = firstInScope_;
    stack_.pop_back();
    if (!empty)
        newline();
    os_ << '}';
    firstInScope_ = false;
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prepareValue();
    os_ << '[';
    stack_.push_back(Scope::Array);
    firstInScope_ = true;
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Scope::Array)
        panic("JsonWriter: mismatched endArray()");
    const bool empty = firstInScope_;
    stack_.pop_back();
    if (!empty)
        newline();
    os_ << ']';
    firstInScope_ = false;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    prepareValue();
    os_ << '"' << escape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string_view(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    prepareValue();
    if (!std::isfinite(v)) {
        os_ << "null"; // JSON has no NaN/Inf
        return *this;
    }
    os_ << formatDouble(v);
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    prepareValue();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    prepareValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    prepareValue();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    prepareValue();
    os_ << "null";
    return *this;
}

std::string
formatDouble(double v)
{
    char buf[40];
    for (int precision : {15, 16, 17}) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
        if (std::strtod(buf, nullptr) == v)
            break;
    }
    return buf;
}

// --- JsonValue ---------------------------------------------------------

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue out;
    out.kind_ = Kind::Bool;
    out.bool_ = v;
    return out;
}

JsonValue
JsonValue::makeInt(std::int64_t v)
{
    JsonValue out;
    out.kind_ = Kind::Int;
    out.int_ = v;
    return out;
}

JsonValue
JsonValue::makeDouble(double v)
{
    JsonValue out;
    out.kind_ = Kind::Double;
    out.double_ = v;
    return out;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue out;
    out.kind_ = Kind::String;
    out.string_ = std::move(v);
    return out;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue out;
    out.kind_ = Kind::Array;
    return out;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue out;
    out.kind_ = Kind::Object;
    return out;
}

namespace {

const char *
jsonKindName(JsonValue::Kind kind)
{
    switch (kind) {
      case JsonValue::Kind::Null:
        return "null";
      case JsonValue::Kind::Bool:
        return "bool";
      case JsonValue::Kind::Int:
        return "integer";
      case JsonValue::Kind::Double:
        return "double";
      case JsonValue::Kind::String:
        return "string";
      case JsonValue::Kind::Array:
        return "array";
      case JsonValue::Kind::Object:
        return "object";
    }
    return "?";
}

} // namespace

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        fatal("JSON value is %s, expected bool", jsonKindName(kind_));
    return bool_;
}

std::int64_t
JsonValue::asInt() const
{
    if (kind_ != Kind::Int)
        fatal("JSON value is %s, expected integer", jsonKindName(kind_));
    return int_;
}

double
JsonValue::asDouble() const
{
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    if (kind_ != Kind::Double)
        fatal("JSON value is %s, expected number", jsonKindName(kind_));
    return double_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        fatal("JSON value is %s, expected string", jsonKindName(kind_));
    return string_;
}

const std::vector<JsonValue> &
JsonValue::elements() const
{
    if (kind_ != Kind::Array)
        fatal("JSON value is %s, expected array", jsonKindName(kind_));
    return elements_;
}

std::vector<JsonValue> &
JsonValue::elements()
{
    if (kind_ != Kind::Array)
        fatal("JSON value is %s, expected array", jsonKindName(kind_));
    return elements_;
}

const std::vector<JsonValue::Member> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        fatal("JSON value is %s, expected object", jsonKindName(kind_));
    return members_;
}

const JsonValue *
JsonValue::find(std::string_view name) const
{
    for (const Member &m : members())
        if (m.first == name)
            return &m.second;
    return nullptr;
}

void
JsonValue::append(JsonValue v)
{
    if (kind_ != Kind::Array)
        fatal("JSON append on %s, expected array", jsonKindName(kind_));
    elements_.push_back(std::move(v));
}

void
JsonValue::setMember(std::string name, JsonValue v)
{
    if (kind_ != Kind::Object)
        fatal("JSON setMember on %s, expected object",
              jsonKindName(kind_));
    for (Member &m : members_) {
        if (m.first == name) {
            m.second = std::move(v);
            return;
        }
    }
    members_.emplace_back(std::move(name), std::move(v));
}

void
JsonValue::write(JsonWriter &w) const
{
    switch (kind_) {
      case Kind::Null:
        w.null();
        break;
      case Kind::Bool:
        w.value(bool_);
        break;
      case Kind::Int:
        w.value(int_);
        break;
      case Kind::Double:
        w.value(double_);
        break;
      case Kind::String:
        w.value(string_);
        break;
      case Kind::Array:
        w.beginArray();
        for (const JsonValue &v : elements_)
            v.write(w);
        w.endArray();
        break;
      case Kind::Object:
        w.beginObject();
        for (const Member &m : members_) {
            w.key(m.first);
            m.second.write(w);
        }
        w.endObject();
        break;
    }
}

std::string
JsonValue::dump(int indent_width) const
{
    std::ostringstream os;
    {
        JsonWriter w(os, indent_width);
        write(w);
    }
    return os.str();
}

bool
JsonValue::operator==(const JsonValue &other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return bool_ == other.bool_;
      case Kind::Int:
        return int_ == other.int_;
      case Kind::Double:
        return double_ == other.double_;
      case Kind::String:
        return string_ == other.string_;
      case Kind::Array:
        return elements_ == other.elements_;
      case Kind::Object:
        return members_ == other.members_;
    }
    return false;
}

// --- parser ------------------------------------------------------------

namespace {

/** Internal: carries a parse error to the fatal/non-fatal front-ends. */
struct JsonParseError
{
    std::string message;
};

/**
 * Recursive-descent JSON parser; every error throws JsonParseError with
 * a line:column position (parseJson() turns that into fatal()).
 */
class JsonParser
{
  public:
    JsonParser(std::string_view text, const std::string &where)
        : text_(text), where_(where)
    {}

    JsonValue
    parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            error("trailing content after the JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    error(const char *what)
    {
        std::size_t line = 1;
        std::size_t col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        char buf[512];
        std::snprintf(buf, sizeof(buf), "%s:%zu:%zu: %s",
                      where_.empty() ? "<json>" : where_.c_str(), line,
                      col, what);
        throw JsonParseError{buf};
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            error("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c, const char *what)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            error(what);
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return JsonValue::makeString(parseString());
          case 't':
            if (consumeLiteral("true"))
                return JsonValue::makeBool(true);
            error("invalid literal");
          case 'f':
            if (consumeLiteral("false"))
                return JsonValue::makeBool(false);
            error("invalid literal");
          case 'n':
            if (consumeLiteral("null"))
                return JsonValue::makeNull();
            error("invalid literal");
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{', "expected '{'");
        JsonValue obj = JsonValue::makeObject();
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                error("expected a string object key");
            std::string name = parseString();
            skipWs();
            expect(':', "expected ':' after object key");
            if (obj.find(name) != nullptr)
                error("duplicate object key");
            obj.setMember(std::move(name), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}', "expected ',' or '}' in object");
            return obj;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[', "expected '['");
        JsonValue arr = JsonValue::makeArray();
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.append(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']', "expected ',' or ']' in array");
            return arr;
        }
    }

    std::string
    parseString()
    {
        expect('"', "expected '\"'");
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                error("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                error("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                error("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    error("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        error("invalid \\u escape digit");
                }
                // UTF-8 encode the BMP code point (the writer only
                // ever emits \u00xx control escapes; surrogate pairs
                // are out of scope for config/report files).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                error("unknown escape character");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start || (text_[start] == '-' && pos_ == start + 1))
            error("invalid number");
        const std::string token(text_.substr(start, pos_ - start));
        // JSON forbids leading zeros ("010"); parseInt64 would read
        // them as octal, silently changing the value, so reject them
        // here before delegating.
        const std::size_t digit0 =
            start + (text_[start] == '-' ? 1 : 0);
        if (integral && text_[digit0] == '0' && pos_ > digit0 + 1) {
            pos_ = start;
            badNumber(token);
        }
        if (integral) {
            std::int64_t v = 0;
            const ParseStatus st = parseInt64(token, v);
            if (st == ParseStatus::Ok)
                return JsonValue::makeInt(v);
            if (st != ParseStatus::OutOfRange) {
                pos_ = start;
                badNumber(token);
            }
            // Out-of-range integers fall through to double.
        }
        double v = 0.0;
        if (parseFloat64(token, v) != ParseStatus::Ok) {
            pos_ = start;
            badNumber(token);
        }
        return JsonValue::makeDouble(v);
    }

    [[noreturn]] void
    badNumber(const std::string &token)
    {
        char what[128];
        std::snprintf(what, sizeof(what), "invalid number '%.80s'",
                      token.c_str());
        error(what);
    }

    std::string_view text_;
    std::string where_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(std::string_view text, const std::string &where)
{
    try {
        return JsonParser(text, where).parseDocument();
    } catch (const JsonParseError &e) {
        fatal("%s", e.message.c_str());
    }
}

bool
tryParseJson(std::string_view text, JsonValue &out, std::string *error,
             const std::string &where)
{
    try {
        out = JsonParser(text, where).parseDocument();
        return true;
    } catch (const JsonParseError &e) {
        if (error)
            *error = e.message;
        return false;
    }
}

JsonValue
parseJsonFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot read JSON file '%s'", path.c_str());
    std::ostringstream buf;
    buf << is.rdbuf();
    return parseJson(buf.str(), path);
}

} // namespace p5
