#include "common/parse.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace p5 {

namespace {

bool
allWhitespace(const std::string &text)
{
    for (char c : text)
        if (!std::isspace(static_cast<unsigned char>(c)))
            return false;
    return true;
}

} // namespace

const char *
parseStatusName(ParseStatus status)
{
    switch (status) {
      case ParseStatus::Ok:
        return "";
      case ParseStatus::Empty:
        return "empty value";
      case ParseStatus::Invalid:
        return "not a number (or trailing garbage)";
      case ParseStatus::OutOfRange:
        return "out of range";
    }
    return "?";
}

ParseStatus
parseInt64(const std::string &text, std::int64_t &out)
{
    if (text.empty() || allWhitespace(text))
        return ParseStatus::Empty;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0')
        return ParseStatus::Invalid;
    if (errno == ERANGE)
        return ParseStatus::OutOfRange;
    out = v;
    return ParseStatus::Ok;
}

ParseStatus
parseUint64(const std::string &text, std::uint64_t &out)
{
    if (text.empty() || allWhitespace(text))
        return ParseStatus::Empty;
    // strtoull accepts "-1" and wraps; an unsigned field must not.
    if (text.find('-') != std::string::npos)
        return ParseStatus::Invalid;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0')
        return ParseStatus::Invalid;
    if (errno == ERANGE)
        return ParseStatus::OutOfRange;
    out = v;
    return ParseStatus::Ok;
}

ParseStatus
parseFloat64(const std::string &text, double &out)
{
    if (text.empty() || allWhitespace(text))
        return ParseStatus::Empty;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        return ParseStatus::Invalid;
    // ERANGE covers both overflow (±HUGE_VAL) and gradual underflow
    // (a subnormal or zero); only overflow loses the value.
    if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL))
        return ParseStatus::OutOfRange;
    out = v;
    return ParseStatus::Ok;
}

} // namespace p5
