/**
 * @file
 * A minimal streaming JSON writer for machine-readable reports.
 *
 * Emits syntactically valid, indented JSON with correct string escaping
 * and round-trippable doubles. The writer keeps a nesting stack and
 * inserts commas itself; callers just interleave key()/value() and
 * begin/end calls. Misuse (a value where a key is required, unbalanced
 * end calls) is a panic, not silently broken output.
 */

#ifndef P5SIM_COMMON_JSON_HH
#define P5SIM_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace p5 {

/** Streaming JSON emitter. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, int indentWidth = 2);

    /** All containers must be closed by the time this runs. */
    ~JsonWriter();

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be inside an object. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<std::uint64_t>(v));
    }
    JsonWriter &null();

    /** key(name) followed by value(v). */
    template <typename T>
    JsonWriter &
    member(std::string_view name, T &&v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

    /** Escape @p s per RFC 8259 (without surrounding quotes). */
    static std::string escape(std::string_view s);

  private:
    enum class Scope { Object, Array };

    void prepareValue(); ///< comma/indent bookkeeping before a value
    void newline();
    void raw(std::string_view text);

    std::ostream &os_;
    int indentWidth_;
    std::vector<Scope> stack_;
    bool firstInScope_ = true;
    bool keyPending_ = false;
    bool rootWritten_ = false;
};

} // namespace p5

#endif // P5SIM_COMMON_JSON_HH
