/**
 * @file
 * Minimal JSON support for machine-readable reports and config files.
 *
 * Two halves:
 *
 *  - JsonWriter: a streaming emitter of syntactically valid, indented
 *    JSON with correct string escaping and round-trippable doubles. The
 *    writer keeps a nesting stack and inserts commas itself; callers
 *    just interleave key()/value() and begin/end calls. Misuse (a value
 *    where a key is required, unbalanced end calls) is a panic, not
 *    silently broken output.
 *
 *  - JsonValue + parseJson(): a parsed document tree, used by the
 *    config layer to load configuration files and by tests to compare
 *    reports structurally. Integers and doubles are kept apart so that
 *    serialize -> parse -> re-serialize round trips byte-identically;
 *    object members preserve insertion order. Parse errors are fatal()
 *    with a line:column position (config files are user input).
 */

#ifndef P5SIM_COMMON_JSON_HH
#define P5SIM_COMMON_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace p5 {

/**
 * Streaming JSON emitter. A negative @c indentWidth selects compact
 * mode: no newlines or indentation anywhere (single-line documents for
 * line-oriented protocols like `p5sim serve`).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os, int indentWidth = 2);

    /** All containers must be closed by the time this runs. */
    ~JsonWriter();

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an object key; must be inside an object. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(unsigned v)
    {
        return value(static_cast<std::uint64_t>(v));
    }
    JsonWriter &null();

    /** key(name) followed by value(v). */
    template <typename T>
    JsonWriter &
    member(std::string_view name, T &&v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

    /** Escape @p s per RFC 8259 (without surrounding quotes). */
    static std::string escape(std::string_view s);

  private:
    enum class Scope { Object, Array };

    void prepareValue(); ///< comma/indent bookkeeping before a value
    void newline();
    void raw(std::string_view text);

    std::ostream &os_;
    int indentWidth_;
    std::vector<Scope> stack_;
    bool firstInScope_ = true;
    bool keyPending_ = false;
    bool rootWritten_ = false;
};

/**
 * Render @p v with the fewest significant digits that parse back to
 * exactly @p v (tries %.15g, %.16g, %.17g). Non-finite values render as
 * "null" would in JSON; callers that need a number must not pass them.
 */
std::string formatDouble(double v);

/** A parsed JSON document node. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Int, Double, String, Array, Object };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default; ///< Null

    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool v);
    static JsonValue makeInt(std::int64_t v);
    static JsonValue makeDouble(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray();
    static JsonValue makeObject();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isDouble() const { return kind_ == Kind::Double; }
    bool isNumber() const { return isInt() || isDouble(); }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; fatal() on kind mismatch. */
    bool asBool() const;
    std::int64_t asInt() const;       ///< Int only
    double asDouble() const;          ///< Int or Double
    const std::string &asString() const;

    /** Array elements; fatal() unless isArray(). */
    const std::vector<JsonValue> &elements() const;
    std::vector<JsonValue> &elements();

    /** Object members in insertion order; fatal() unless isObject(). */
    const std::vector<Member> &members() const;

    /** Member lookup; nullptr when absent. fatal() unless isObject(). */
    const JsonValue *find(std::string_view name) const;

    /** Append to an array; fatal() unless isArray(). */
    void append(JsonValue v);

    /** Add/replace an object member; fatal() unless isObject(). */
    void setMember(std::string name, JsonValue v);

    /** Re-emit this node through @p w (at the writer's position). */
    void write(JsonWriter &w) const;

    /** Serialize as a complete document (trailing newline included). */
    std::string dump(int indent_width = 2) const;

    /** Structural equality (Int(3) != Double(3.0) by design). */
    bool operator==(const JsonValue &other) const;
    bool operator!=(const JsonValue &other) const
    {
        return !(*this == other);
    }

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<JsonValue> elements_;
    std::vector<Member> members_;
};

/**
 * Parse a complete JSON document. @p where names the source (file name)
 * in error messages; any syntax error is fatal().
 */
JsonValue parseJson(std::string_view text, const std::string &where = "");

/** Read and parse @p path; fatal() when unreadable or malformed. */
JsonValue parseJsonFile(const std::string &path);

/**
 * Non-fatal parse for untrusted input (e.g. store files that may have
 * been truncated by a killed writer). Returns false on malformed input
 * with the position-annotated message in @p error; @p out is
 * unspecified on failure.
 */
bool tryParseJson(std::string_view text, JsonValue &out,
                  std::string *error = nullptr,
                  const std::string &where = "");

} // namespace p5

#endif // P5SIM_COMMON_JSON_HH
