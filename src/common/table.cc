#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/log.hh"

namespace p5 {

void
Table::setColumns(std::vector<std::string> headers)
{
    if (!rows_.empty())
        panic("Table::setColumns after rows were added");
    headers_ = std::move(headers);
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        panic("Table row has %zu cells, expected %zu", cells.size(),
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::fmtFactor(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
    return buf;
}

std::string
Table::fmtPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

const std::vector<std::string> &
Table::row(std::size_t i) const
{
    if (i >= rows_.size())
        panic("Table row index %zu out of range (%zu rows)", i,
              rows_.size());
    return rows_[i];
}

void
Table::printAscii(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_sep = [&] {
        os << '+';
        for (auto w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto print_row = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c]
               << std::string(widths[c] - cells[c].size(), ' ') << " |";
        }
        os << '\n';
    };

    if (!title_.empty())
        os << title_ << '\n';
    print_sep();
    print_row(headers_);
    print_sep();
    for (const auto &row : rows_)
        print_row(row);
    print_sep();
}

namespace {

std::string
csvEscape(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char ch : s) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
Table::printCsv(std::ostream &os) const
{
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << csvEscape(cells[c]);
        }
        os << '\n';
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace p5
