#include "common/thread_pool.hh"

namespace p5 {

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0)
        workers = defaultWorkers();
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

std::size_t
ThreadPool::pending() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size() + inFlight_;
}

unsigned
ThreadPool::defaultWorkers()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop();
            ++inFlight_;
        }
        task(); // exceptions are captured by the packaged_task
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
        }
    }
}

} // namespace p5
