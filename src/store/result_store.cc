#include "store/result_store.hh"

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "store/result_io.hh"

namespace p5 {

namespace {

constexpr const char *meta_name = "store_meta.json";

/** mkdir -p for the two-level store layout; fatal on failure. */
void
makeDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST)
        return;
    fatal("cannot create store directory '%s': %s", path.c_str(),
          std::strerror(errno));
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        return "";
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/** Write @p text to @p path via temp file + rename (atomic publish). */
void
writeFileAtomic(const std::string &path, const std::string &temp,
                const std::string &text)
{
    {
        std::ofstream os(temp);
        if (!os)
            fatal("cannot write store file '%s'", temp.c_str());
        os << text;
        if (!os.flush())
            fatal("short write to store file '%s'", temp.c_str());
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0)
        fatal("cannot publish store file '%s': %s", path.c_str(),
              std::strerror(errno));
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

} // namespace

ResultStore::ResultStore(std::string dir, int schema_version)
    : dir_(std::move(dir)), schemaVersion_(schema_version)
{
    if (dir_.empty())
        fatal("result store directory must not be empty");
    while (dir_.size() > 1 && dir_.back() == '/')
        dir_.pop_back();
    makeDir(dir_);

    const std::string meta_path = dir_ + "/" + meta_name;
    const std::string meta_text = readFileOrEmpty(meta_path);
    if (!meta_text.empty()) {
        // An existing store: its pinned versions must match ours, or
        // every lookup would be answered from configurations whose
        // fingerprints mean something else (stale-store poisoning).
        JsonValue meta;
        std::string error;
        if (!tryParseJson(meta_text, meta, &error, meta_path))
            fatal("corrupt store metadata: %s", error.c_str());
        const JsonValue *store_v =
            meta.isObject() ? meta.find("storeVersion") : nullptr;
        const JsonValue *schema_v =
            meta.isObject() ? meta.find("schemaVersion") : nullptr;
        if (!store_v || !store_v->isInt() || !schema_v ||
            !schema_v->isInt())
            fatal("store metadata '%s' is missing its version members",
                  meta_path.c_str());
        if (store_v->asInt() != store_format_version)
            fatal("store '%s' uses file format v%lld; this binary "
                  "writes v%d — refusing to mix formats",
                  dir_.c_str(),
                  static_cast<long long>(store_v->asInt()),
                  store_format_version);
        if (schema_v->asInt() != schemaVersion_)
            fatal("store '%s' was written under config schema version "
                  "%lld; this binary uses version %d — refusing to "
                  "resume from (or write into) an incompatible store",
                  dir_.c_str(),
                  static_cast<long long>(schema_v->asInt()),
                  schemaVersion_);
    } else {
        std::ostringstream os;
        {
            JsonWriter w(os);
            w.beginObject();
            w.member("storeVersion", store_format_version);
            w.member("schemaVersion", schemaVersion_);
            w.endObject();
        }
        // Concurrent creators write identical bytes; rename races are
        // therefore harmless.
        writeFileAtomic(meta_path,
                        meta_path + ".tmp." +
                            std::to_string(::getpid()),
                        os.str());
    }
}

std::string
ResultStore::fingerprintHex(const SimJob &job)
{
    const std::string key = job.key();
    // Distinct chain from SimJob::rngSeed() (different initial mix), so
    // the store address and the RNG stream stay independent functions
    // of the key.
    std::uint64_t h = hashMix(0xce5707ed2f00dbadULL ^ key.size());
    for (char c : key)
        h = hashCombine(h, static_cast<unsigned char>(c));
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

std::string
ResultStore::pathFor(const std::string &fp_hex) const
{
    return dir_ + "/" + fp_hex.substr(0, 2) + "/" + fp_hex + "-v" +
           std::to_string(schemaVersion_) + ".json";
}

bool
ResultStore::contains(const SimJob &job) const
{
    if (!storableKind(job.kind))
        return false;
    return fileExists(pathFor(fingerprintHex(job)));
}

void
ResultStore::quarantine(const std::string &path)
{
    // Another thread/process may have quarantined (or replaced) the
    // file already; either way the bad bytes are out of the lookup
    // path, which is all that matters.
    std::rename(path.c_str(), (path + ".bad").c_str());
    quarantined_.fetch_add(1);
    warn("quarantined corrupt store file '%s' (now .bad)", path.c_str());
}

bool
ResultStore::loadFile(const std::string &path, JsonValue &out)
{
    const std::string text = readFileOrEmpty(path);
    if (text.empty()) {
        // Empty reads both for missing files (a plain miss, common)
        // and zero-byte corpses (quarantine-worthy, rare).
        if (!fileExists(path))
            return false;
        quarantine(path);
        return false;
    }
    std::string error;
    if (!tryParseJson(text, out, &error, path)) {
        quarantine(path);
        return false;
    }
    if (!out.isObject()) {
        quarantine(path);
        return false;
    }
    const JsonValue *store_v = out.find("storeVersion");
    const JsonValue *schema_v = out.find("schemaVersion");
    if (!store_v || !store_v->isInt() ||
        store_v->asInt() != store_format_version || !schema_v ||
        !schema_v->isInt() || schema_v->asInt() != schemaVersion_) {
        quarantine(path);
        return false;
    }
    return true;
}

bool
ResultStore::load(const SimJob &job, SimResult &out)
{
    if (!storableKind(job.kind)) {
        misses_.fetch_add(1);
        return false;
    }
    const std::string fp = fingerprintHex(job);
    const std::string path = pathFor(fp);
    JsonValue doc;
    if (!loadFile(path, doc)) {
        misses_.fetch_add(1);
        return false;
    }
    // The embedded canonical key turns a fingerprint collision (or a
    // hand-misplaced file) into a miss instead of a wrong result.
    const JsonValue *job_key = doc.find("jobKey");
    const JsonValue *result = doc.find("result");
    if (!job_key || !job_key->isString() ||
        job_key->asString() != job.key() || !result ||
        !readSimResult(*result, out)) {
        quarantine(path);
        misses_.fetch_add(1);
        return false;
    }
    hits_.fetch_add(1);
    return true;
}

void
ResultStore::put(const SimJob &job, const SimResult &result,
                 const StoreProvenance &prov)
{
    if (!storableKind(job.kind))
        return;
    const std::string fp = fingerprintHex(job);
    makeDir(dir_ + "/" + fp.substr(0, 2));
    const std::string path = pathFor(fp);

    std::ostringstream os;
    {
        JsonWriter w(os);
        w.beginObject();
        w.member("storeVersion", store_format_version);
        w.member("schemaVersion", schemaVersion_);
        w.member("fingerprint", fp);
        w.member("configFingerprint", job.configTag);
        w.member("jobKey", job.key());
        w.member("seed", prov.seed);
        w.key("sweep");
        w.beginObject();
        for (const auto &coord : prov.sweep)
            w.member(coord.first, coord.second);
        w.endObject();
        w.key("result");
        writeSimResult(w, result);
        w.endObject();
    }
    const std::string temp = path + ".tmp." +
                             std::to_string(::getpid()) + "." +
                             std::to_string(tempCounter_.fetch_add(1));
    writeFileAtomic(path, temp, os.str());
    writes_.fetch_add(1);
}

bool
ResultStore::loadRaw(const std::string &fp_hex, JsonValue &out)
{
    if (fp_hex.size() != 16)
        return false;
    for (char c : fp_hex)
        if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
            return false;
    return loadFile(pathFor(fp_hex), out);
}

std::size_t
ResultStore::countEntries() const
{
    std::size_t count = 0;
    DIR *top = ::opendir(dir_.c_str());
    if (!top)
        return 0;
    while (const dirent *shard = ::readdir(top)) {
        const std::string name = shard->d_name;
        if (name.size() != 2 || name == "..")
            continue;
        DIR *sub = ::opendir((dir_ + "/" + name).c_str());
        if (!sub)
            continue;
        while (const dirent *entry = ::readdir(sub)) {
            const std::string file = entry->d_name;
            if (endsWith(file, ".json") &&
                file.find(".tmp.") == std::string::npos)
                ++count;
        }
        ::closedir(sub);
    }
    ::closedir(top);
    return count;
}

} // namespace p5
