/**
 * @file
 * ResultStore: a persistent, content-addressed map from simulation
 * identity to result + provenance.
 *
 * The in-process ResultCache (fame/sim_runner.hh) coalesces identical
 * jobs within one process; the ResultStore extends that across
 * processes and machines. Every storable SimJob has a 64-bit
 * fingerprint — a SplitMix64 chain over its canonical key(), which
 * itself embeds the config-tree fingerprint (configTag), the program
 * specs, priorities and every parameter — and the store keeps one JSON
 * file per fingerprint:
 *
 *     <dir>/<fp[0:2]>/<fp>-v<schema>.json
 *
 * Layout properties, each load-bearing:
 *
 *  - two-hex-digit shard directories keep any one directory small even
 *    for 10^5-point sweeps (≤ 256-way fanout);
 *  - the config schema version is part of the *filename*, so a store
 *    written by an older schema can never satisfy a lookup from a newer
 *    binary — the on-disk analogue of the fingerprint cache-poisoning
 *    hole p5lint's config-completeness rule guards. A store_meta.json
 *    at the root additionally pins the version, and opening a store
 *    written by a different schema is fatal with a clear message;
 *  - writes go to a temp file in the final directory and are published
 *    with rename(2), so concurrent writers (sharded sweeps over one
 *    shared directory) never expose a torn file; both writers of the
 *    same fingerprint write identical bytes, so last-rename-wins is
 *    harmless;
 *  - every file embeds the full canonical job key. Loads verify it
 *    against the requesting job, so even a 64-bit fingerprint collision
 *    degrades to a re-simulation, never a wrong result.
 *
 * Corrupt or truncated files (a writer killed mid-write before the
 * rename can't cause this, but disks and manual edits can) are
 * quarantined: renamed to "<name>.bad" and treated as a miss, so the
 * point transparently re-simulates and the evidence survives for
 * inspection.
 *
 * All methods are thread-safe; the store holds no mutable state beyond
 * atomic counters, so concurrent readers and writers — including from
 * multiple processes — need no coordination beyond the filesystem's.
 */

#ifndef P5SIM_STORE_RESULT_STORE_HH
#define P5SIM_STORE_RESULT_STORE_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "config/config.hh"
#include "fame/sim_job.hh"

namespace p5 {

/** Version of the store file layout itself (member names, placement). */
constexpr int store_format_version = 1;

/** Run context stamped into every stored file for auditability. */
struct StoreProvenance
{
    /** exp.seed of the run that produced the result. */
    std::uint64_t seed = 0;

    /** Sweep coordinates of the point ("" outside a sweep). */
    std::vector<std::pair<std::string, std::string>> sweep;
};

/** On-disk content-addressed result store. */
class ResultStore
{
  public:
    /**
     * Open @p dir, creating it (and store_meta.json) when absent.
     * Fatal when the directory cannot be created or when an existing
     * store was written by a different config schema version.
     */
    explicit ResultStore(std::string dir,
                         int schema_version = config_schema_version);

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    const std::string &dir() const { return dir_; }
    int schemaVersion() const { return schemaVersion_; }

    // --- addressing -----------------------------------------------------

    /** 16-hex-digit content address of @p job (hash of its key()). */
    static std::string fingerprintHex(const SimJob &job);

    /** Absolute path a fingerprint maps to under this store. */
    std::string pathFor(const std::string &fp_hex) const;

    // --- access ---------------------------------------------------------

    /** Cheap existence probe (no read or validation). */
    bool contains(const SimJob &job) const;

    /**
     * Validated read: parse the file at @p job's address, check the
     * store format, schema version and embedded job key, and
     * reconstruct the result. A missing file is a plain miss; an
     * invalid one is quarantined and reported as a miss.
     */
    bool load(const SimJob &job, SimResult &out);

    /** Write @p result under @p job's address (atomic publish). */
    void put(const SimJob &job, const SimResult &result,
             const StoreProvenance &prov);

    /**
     * Raw lookup by fingerprint for the serve path: the parsed stored
     * document, validated like load() but without a requesting job to
     * check the key against. Invalid files are quarantined.
     */
    bool loadRaw(const std::string &fp_hex, JsonValue &out);

    /** Count of result files currently in the store (directory scan). */
    std::size_t countEntries() const;

    // --- observability --------------------------------------------------

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t writes() const { return writes_.load(); }
    std::uint64_t quarantined() const { return quarantined_.load(); }

  private:
    /** Parse + validate one store file; quarantines on failure. */
    bool loadFile(const std::string &path, JsonValue &out);
    void quarantine(const std::string &path);

    std::string dir_;
    int schemaVersion_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> writes_{0};
    std::atomic<std::uint64_t> quarantined_{0};
    std::atomic<std::uint64_t> tempCounter_{0};
};

} // namespace p5

#endif // P5SIM_STORE_RESULT_STORE_HH
