/**
 * @file
 * JSON round-trip for SimResult records stored in a ResultStore.
 *
 * The serialized form keeps only the raw integer measurements (cycle
 * and instruction counters) plus exactly-rendered doubles, so a result
 * read back from disk is bit-identical to the one the simulation
 * produced — derived values (avgIpc, avgExecTime) are recomputed from
 * the same integers and therefore agree to the last bit.
 *
 * Reading is strictly non-fatal: a store file may have been truncated
 * by a killed writer or corrupted on disk, and the store's contract is
 * to quarantine such files and re-simulate, never to bring the process
 * down. readSimResult() therefore validates every member's presence
 * and kind and returns false on the first mismatch.
 *
 * AllocMix results are not storable: they carry an unbounded per-
 * quantum log whose faithful round-trip would dominate the store, and
 * no batch producer re-reads them across processes today. storableKind
 * gates them out so the runner simply always executes them.
 */

#ifndef P5SIM_STORE_RESULT_IO_HH
#define P5SIM_STORE_RESULT_IO_HH

#include <string>

#include "common/json.hh"
#include "fame/sim_job.hh"

namespace p5 {

/** Stable textual tag of a job kind (part of the stored file). */
const char *simJobKindName(SimJobKind kind);

/** Reverse of simJobKindName(); false on unknown tags. */
bool simJobKindFromName(const std::string &name, SimJobKind &out);

/** True when results of @p kind can live in a ResultStore. */
bool storableKind(SimJobKind kind);

/** Emit @p result as one JSON object at the writer's position. */
void writeSimResult(JsonWriter &w, const SimResult &result);

/**
 * Reconstruct a SimResult from @p node. Returns false (leaving @p out
 * unspecified) on any missing member, kind mismatch or non-storable
 * kind; never fatal.
 */
bool readSimResult(const JsonValue &node, SimResult &out);

} // namespace p5

#endif // P5SIM_STORE_RESULT_IO_HH
