#include "store/result_io.hh"

#include "common/log.hh"
#include "common/parse.hh"

namespace p5 {

namespace {

// --- non-fatal JsonValue readers ---------------------------------------
//
// JsonValue's asInt()/asString() accessors are fatal() on kind
// mismatch, which is right for config files (the user must fix them)
// and wrong for store files (the store must quarantine them). These
// helpers probe kind first and report failure through their return
// value.

const JsonValue *
member(const JsonValue &obj, const char *name)
{
    if (!obj.isObject())
        return nullptr;
    return obj.find(name);
}

bool
readU64(const JsonValue &obj, const char *name, std::uint64_t &out)
{
    const JsonValue *v = member(obj, name);
    if (!v || !v->isInt() || v->asInt() < 0)
        return false;
    out = static_cast<std::uint64_t>(v->asInt());
    return true;
}

bool
readBool(const JsonValue &obj, const char *name, bool &out)
{
    const JsonValue *v = member(obj, name);
    if (!v || !v->isBool())
        return false;
    out = v->asBool();
    return true;
}

bool
readDouble(const JsonValue &obj, const char *name, double &out)
{
    const JsonValue *v = member(obj, name);
    if (!v || !v->isNumber())
        return false;
    out = v->asDouble();
    return true;
}

// A full-range uint64 (e.g. the SplitMix64 rngSeed) cannot ride a JSON
// number: values above INT64_MAX would be demoted to doubles by the
// parser and lose low bits. It is stored as a decimal string instead.
bool
readU64String(const JsonValue &obj, const char *name, std::uint64_t &out)
{
    const JsonValue *v = member(obj, name);
    if (!v || !v->isString())
        return false;
    return parseUint64(v->asString(), out) == ParseStatus::Ok;
}

void
writeFame(JsonWriter &w, const FameResult &fame)
{
    w.beginObject();
    w.member("totalCycles", static_cast<std::uint64_t>(fame.totalCycles));
    w.member("converged", fame.converged);
    w.member("hitCycleLimit", fame.hitCycleLimit);
    w.key("threads");
    w.beginArray();
    for (const ThreadMeasurement &t : fame.thread) {
        w.beginObject();
        w.member("present", t.present);
        w.member("executions", t.executions);
        w.member("accountedCycles",
                 static_cast<std::uint64_t>(t.accountedCycles));
        w.member("accountedInstrs", t.accountedInstrs);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

bool
readFame(const JsonValue &node, FameResult &out)
{
    if (!readU64(node, "totalCycles", out.totalCycles) ||
        !readBool(node, "converged", out.converged) ||
        !readBool(node, "hitCycleLimit", out.hitCycleLimit))
        return false;
    const JsonValue *threads = member(node, "threads");
    if (!threads || !threads->isArray() ||
        threads->elements().size() != out.thread.size())
        return false;
    for (std::size_t i = 0; i < out.thread.size(); ++i) {
        const JsonValue &t = threads->elements()[i];
        ThreadMeasurement &m = out.thread[i];
        if (!readBool(t, "present", m.present) ||
            !readU64(t, "executions", m.executions) ||
            !readU64(t, "accountedCycles", m.accountedCycles) ||
            !readU64(t, "accountedInstrs", m.accountedInstrs))
            return false;
    }
    return true;
}

void
writePipeline(JsonWriter &w, const PipelineResult &pipe)
{
    w.beginObject();
    w.member("fftCycles", pipe.fftCycles);
    w.member("luCycles", pipe.luCycles);
    w.member("iterationCycles", pipe.iterationCycles);
    w.member("hitCycleLimit", pipe.hitCycleLimit);
    w.endObject();
}

bool
readPipeline(const JsonValue &node, PipelineResult &out)
{
    return readDouble(node, "fftCycles", out.fftCycles) &&
           readDouble(node, "luCycles", out.luCycles) &&
           readDouble(node, "iterationCycles", out.iterationCycles) &&
           readBool(node, "hitCycleLimit", out.hitCycleLimit);
}

} // namespace

const char *
simJobKindName(SimJobKind kind)
{
    switch (kind) {
      case SimJobKind::FamePair:
        return "fame";
      case SimJobKind::PipelineSingleThread:
        return "pipeline-st";
      case SimJobKind::PipelineSmt:
        return "pipeline-smt";
      case SimJobKind::AllocMix:
        return "alloc";
    }
    return "?";
}

bool
simJobKindFromName(const std::string &name, SimJobKind &out)
{
    for (SimJobKind kind :
         {SimJobKind::FamePair, SimJobKind::PipelineSingleThread,
          SimJobKind::PipelineSmt, SimJobKind::AllocMix}) {
        if (name == simJobKindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

bool
storableKind(SimJobKind kind)
{
    switch (kind) {
      case SimJobKind::FamePair:
      case SimJobKind::PipelineSingleThread:
      case SimJobKind::PipelineSmt:
        return true;
      case SimJobKind::AllocMix:
        return false;
    }
    return false;
}

void
writeSimResult(JsonWriter &w, const SimResult &result)
{
    w.beginObject();
    w.member("kind", simJobKindName(result.kind));
    w.member("rngSeed", std::to_string(result.rngSeed));
    switch (result.kind) {
      case SimJobKind::FamePair:
        w.key("fame");
        writeFame(w, result.fame);
        break;
      case SimJobKind::PipelineSingleThread:
      case SimJobKind::PipelineSmt:
        w.key("pipeline");
        writePipeline(w, result.pipeline);
        break;
      case SimJobKind::AllocMix:
        // Not storable (see header); writing one is a caller bug.
        panic("writeSimResult on a non-storable AllocMix result");
    }
    w.endObject();
}

bool
readSimResult(const JsonValue &node, SimResult &out)
{
    const JsonValue *kind = member(node, "kind");
    if (!kind || !kind->isString() ||
        !simJobKindFromName(kind->asString(), out.kind) ||
        !storableKind(out.kind))
        return false;
    if (!readU64String(node, "rngSeed", out.rngSeed))
        return false;
    switch (out.kind) {
      case SimJobKind::FamePair: {
        const JsonValue *fame = member(node, "fame");
        return fame && readFame(*fame, out.fame);
      }
      case SimJobKind::PipelineSingleThread:
      case SimJobKind::PipelineSmt: {
        const JsonValue *pipe = member(node, "pipeline");
        return pipe && readPipeline(*pipe, out.pipeline);
      }
      case SimJobKind::AllocMix:
        break;
    }
    return false;
}

} // namespace p5
