#include "ubench/ubench.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "program/builder.hh"

namespace p5 {

namespace {

// Register conventions (flat space, see isa/static_instr.hh):
// integer registers 0..31, floating-point registers 32..63.
constexpr RegIndex rA = 0;    // integer accumulator
constexpr RegIndex rIter = 1; // loop induction value
constexpr RegIndex rXi = 2;   // the xi constants
constexpr RegIndex rT0 = 3;
constexpr RegIndex rT1 = 4;
constexpr RegIndex rT2 = 5;
constexpr RegIndex rP = 6;    // iterp of cpu_int_add
constexpr RegIndex rV = 11;   // load destination (self-chained)
constexpr RegIndex rW = 12;   // incremented value
constexpr RegIndex rIdx = 13; // index update
constexpr RegIndex fA = 32;   // FP accumulator
constexpr RegIndex fIter = 33;
constexpr RegIndex fXi = 34;
constexpr RegIndex fT0 = 35;
constexpr RegIndex fT1 = 36;
constexpr RegIndex fV = 43;   // FP load destination

const UbenchInfo kInfos[num_ubench] = {
    {UbenchId::CpuInt, "cpu_int", UbenchGroup::Integer,
     "a += (iter * (iter - 1)) - xi * iter : xi in {1..54}"},
    {UbenchId::CpuIntAdd, "cpu_int_add", UbenchGroup::Integer,
     "a += (iter + (iterp)) - xi + iter : xi in {1..54}; "
     "iterp = iter - 1 + a"},
    {UbenchId::CpuIntMul, "cpu_int_mul", UbenchGroup::Integer,
     "a = (iter * iter) * xi * iter : xi in {1..54}"},
    {UbenchId::LngChainCpuint, "lng_chain_cpuint", UbenchGroup::Integer,
     "a += (iter * (iter - 1)) - x0 * iter; b += ... + a; "
     "50-line cross-statement dependence chain"},
    {UbenchId::CpuFp, "cpu_fp", UbenchGroup::FloatingPoint,
     "a += (tmp * (tmp - 1.0)) - xi * tmp : xi in {1.0..54.0}"},
    {UbenchId::BrHit, "br_hit", UbenchGroup::Branch,
     "if (a[s]==0) a=a+1; else a=a-1; a filled with all 0's"},
    {UbenchId::BrMiss, "br_miss", UbenchGroup::Branch,
     "if (a[s]==0) a=a+1; else a=a-1; a filled randomly (modulo 2)"},
    {UbenchId::LdintL1, "ldint_l1", UbenchGroup::Memory,
     "a[i+s] = a[i+s]+1; s set so accesses always hit L1"},
    {UbenchId::LdintL2, "ldint_l2", UbenchGroup::Memory,
     "a[i+s] = a[i+s]+1; s set so accesses always hit L2"},
    {UbenchId::LdintL3, "ldint_l3", UbenchGroup::Memory,
     "a[i+s] = a[i+s]+1; s set so accesses always hit L3"},
    {UbenchId::LdintMem, "ldint_mem", UbenchGroup::Memory,
     "a[i+s] = a[i+s]+1; s set so accesses always miss all caches"},
    {UbenchId::LdfpL1, "ldfp_l1", UbenchGroup::Memory,
     "float a[i+s] = a[i+s]+1.0; accesses hit L1"},
    {UbenchId::LdfpL2, "ldfp_l2", UbenchGroup::Memory,
     "float a[i+s] = a[i+s]+1.0; accesses hit L2"},
    {UbenchId::LdfpL3, "ldfp_l3", UbenchGroup::Memory,
     "float a[i+s] = a[i+s]+1.0; accesses hit L3"},
    {UbenchId::LdfpMem, "ldfp_mem", UbenchGroup::Memory,
     "float a[i+s] = a[i+s]+1.0; accesses miss all caches"},
};

std::uint64_t
scaledIters(std::uint64_t base, double scale)
{
    auto v = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(base) * scale));
    return std::max<std::uint64_t>(1, v);
}

/** Close the loop body: induction update + predictable back-edge. */
void
closeLoop(ProgramBuilder &b, int back_edge, RegIndex induction)
{
    b.intAlu(induction, induction);
    b.branch(back_edge);
}

SyntheticProgram
makeCpuInt(double scale)
{
    ProgramBuilder b("cpu_int");
    int back = b.alwaysTaken();
    b.beginPhase(scaledIters(12, scale));
    for (int s = 0; s < 54; ++s) {
        b.intMul(rT0, rIter, rIter); // iter * (iter - 1)
        b.intMul(rT1, rXi, rIter);   // xi * iter
        b.intAlu(rT2, rT0, rT1);     // difference
        b.intAlu(rA, rA, rT2);       // a += ... (dependence chain)
    }
    closeLoop(b, back, rIter);
    return b.build();
}

SyntheticProgram
makeCpuIntAdd(double scale)
{
    ProgramBuilder b("cpu_int_add");
    int back = b.alwaysTaken();
    b.beginPhase(scaledIters(12, scale));
    for (int s = 0; s < 54; ++s) {
        b.intAlu(rT0, rIter, rP); // iter + iterp
        b.intAlu(rT1, rT0, rXi);  // - xi + iter
        b.intAlu(rP, rIter, rA);  // iterp = iter - 1 + a
        b.intAlu(rA, rA, rT1);    // a += ...
    }
    closeLoop(b, back, rIter);
    return b.build();
}

SyntheticProgram
makeCpuIntMul(double scale)
{
    ProgramBuilder b("cpu_int_mul");
    int back = b.alwaysTaken();
    b.beginPhase(scaledIters(12, scale));
    for (int s = 0; s < 54; ++s) {
        b.intMul(rT0, rIter, rIter); // iter * iter
        b.intMul(rT1, rT0, rXi);     // * xi
        b.intMul(rA, rT1, rIter);    // * iter (a overwritten: no
                                     //  cross-statement chain)
    }
    closeLoop(b, back, rIter);
    return b.build();
}

SyntheticProgram
makeLngChainCpuint(double scale)
{
    ProgramBuilder b("lng_chain_cpuint");
    int back = b.alwaysTaken();
    b.beginPhase(scaledIters(12, scale));
    for (int s = 0; s < 50; ++s) {
        // The multiply sits *inside* the cross-line dependence chain:
        // each line consumes the previous line's accumulator.
        b.intMul(rT0, rA, rXi);
        b.intAlu(rT1, rIter, rXi);
        b.intAlu(rT2, rT1, rIter);
        b.intAlu(rA, rA, rT0);
    }
    closeLoop(b, back, rIter);
    return b.build();
}

SyntheticProgram
makeCpuFp(double scale)
{
    ProgramBuilder b("cpu_fp");
    int back = b.alwaysTaken();
    b.beginPhase(scaledIters(15, scale));
    for (int s = 0; s < 54; ++s) {
        // a += (tmp*(tmp-1.0)) - xi*tmp: the accumulator add is a 6-cycle
        // FP chain; the products overlap underneath it.
        b.fpMul(fT0, fIter, fIter);
        if (s % 2 == 0) {
            b.fpAlu(fA, fA, fT0);
        } else {
            b.fpAlu(fT1, fT0, fXi);
            b.fpAlu(fA, fA, fT1);
        }
    }
    closeLoop(b, back, rIter);
    return b.build();
}

SyntheticProgram
makeBranchBench(bool predictable, double scale)
{
    ProgramBuilder b(predictable ? "br_hit" : "br_miss");
    int back = b.alwaysTaken();
    b.beginPhase(scaledIters(25, scale));
    for (int s = 0; s < 28; ++s) {
        int dir = predictable
                      ? b.neverTaken()
                      : b.randomBranch(0.5, 0x9e00 + static_cast<
                                                std::uint64_t>(s));
        // The paper's condition array a[1..28]: a fixed, L1-hot set of
        // entries (stride 0: each static load rereads its own slot).
        int slot = b.memPattern(0, 0, 28 * 128,
                                static_cast<std::uint64_t>(s) * 128);
        b.load(rV, slot);
        b.branch(dir, rV);     // if (a[s] == 0)
        b.intAlu(rA, rA, rV);  // a = a +/- 1
    }
    closeLoop(b, back, rIter);
    return b.build();
}

/** Elements (distinct lines) touched per micro-iteration. */
constexpr int kLoadElems = 16;

/**
 * Common shape of the eight ldint/ldfp benchmarks: per micro-iteration,
 * a[i+s] = a[i+s] + 1 over kLoadElems consecutive cache lines, the whole
 * array of @p footprint bytes being swept cyclically (each element s has
 * its own pattern offset s*stride and advances by a full iteration's
 * footprint per execution of the static instruction).
 */
SyntheticProgram
makeLoadBench(const char *name, bool fp, bool chained,
              std::uint64_t stride, std::uint64_t footprint,
              std::uint64_t iters, double scale)
{
    ProgramBuilder b(name);
    int back = b.alwaysTaken();
    const std::uint64_t iter_advance = kLoadElems * stride;
    const RegIndex val = fp ? fV : rV;
    const RegIndex inc = fp ? fT0 : rW;
    b.beginPhase(scaledIters(iters, scale));
    for (int s = 0; s < kLoadElems; ++s) {
        int elem = b.memPattern(0, iter_advance, footprint,
                                static_cast<std::uint64_t>(s) * stride);
        // Cache-missing variants self-chain the loads (src == dst):
        // access k+1 depends on access k, so the element time is the
        // hit latency of the targeted level — the "always hit in the
        // desired cache level" behaviour. The L1 variant issues its
        // loads independently (they all hit) and is bound by LS-unit
        // bandwidth instead, like the high-IPC original.
        b.load(val, elem, chained ? val : invalid_reg);
        if (fp)
            b.fpAlu(inc, val);
        else
            b.intAlu(inc, val);
        b.store(elem, inc);
        b.intAlu(rIdx, rIdx); // index bookkeeping, overlaps the loads
    }
    closeLoop(b, back, rIter);
    return b.build();
}

} // namespace

const UbenchInfo &
ubenchInfo(UbenchId id)
{
    const int idx = static_cast<int>(id);
    if (idx < 0 || idx >= num_ubench)
        panic("ubenchInfo: bad id %d", idx);
    return kInfos[idx];
}

const char *
ubenchName(UbenchId id)
{
    return ubenchInfo(id).name;
}

const char *
ubenchGroupName(UbenchGroup group)
{
    switch (group) {
      case UbenchGroup::Integer:
        return "Integer";
      case UbenchGroup::FloatingPoint:
        return "Floating Point";
      case UbenchGroup::Memory:
        return "Memory";
      case UbenchGroup::Branch:
        return "Branch";
      default:
        panic("ubenchGroupName: bad group %d", static_cast<int>(group));
    }
}

UbenchId
ubenchFromName(const std::string &name)
{
    for (const auto &info : kInfos)
        if (name == info.name)
            return info.id;
    fatal("unknown micro-benchmark '%s'", name.c_str());
}

SyntheticProgram
makeUbench(UbenchId id, double scale)
{
    // Footprints select the servicing level relative to the default
    // hierarchy: L1 32 KiB, L2 1.875 MiB, L3 36 MiB.
    constexpr std::uint64_t kKi = 1024;
    constexpr std::uint64_t kMi = 1024 * 1024;
    switch (id) {
      case UbenchId::CpuInt:
        return makeCpuInt(scale);
      case UbenchId::CpuIntAdd:
        return makeCpuIntAdd(scale);
      case UbenchId::CpuIntMul:
        return makeCpuIntMul(scale);
      case UbenchId::LngChainCpuint:
        return makeLngChainCpuint(scale);
      case UbenchId::CpuFp:
        return makeCpuFp(scale);
      case UbenchId::BrHit:
        return makeBranchBench(true, scale);
      case UbenchId::BrMiss:
        return makeBranchBench(false, scale);
      // Footprints: L1 variant fits L1; L2 variant exceeds L1, fits L2
      // and one execution sweeps the whole array (steady state from the
      // second repetition); L3 variant exceeds L2, fits L3; mem variant
      // exceeds L3, so every line's reuse distance beats every cache and
      // each access goes to DRAM — cold and steady state coincide.
      case UbenchId::LdintL1:
        return makeLoadBench("ldint_l1", false, false, 128, 16 * kKi, 30,
                             scale);
      case UbenchId::LdintL2:
        return makeLoadBench("ldint_l2", false, true, 128, 256 * kKi,
                             128, scale);
      case UbenchId::LdintL3:
        return makeLoadBench("ldint_l3", false, true, 128, 4 * kMi, 2048,
                             scale);
      case UbenchId::LdintMem:
        // Page-crossing stride: every element misses the TLB as well as
        // every cache, so the element rate is set by the shared table
        // walker — the behaviour behind the paper's mem-vs-mem results.
        return makeLoadBench("ldint_mem", false, false, 4224, 64 * kMi,
                             16, scale);
      case UbenchId::LdfpL1:
        return makeLoadBench("ldfp_l1", true, false, 128, 16 * kKi, 30,
                             scale);
      case UbenchId::LdfpL2:
        return makeLoadBench("ldfp_l2", true, true, 128, 256 * kKi, 128,
                             scale);
      case UbenchId::LdfpL3:
        return makeLoadBench("ldfp_l3", true, true, 128, 4 * kMi, 2048,
                             scale);
      case UbenchId::LdfpMem:
        return makeLoadBench("ldfp_mem", true, false, 4224, 64 * kMi, 16,
                             scale);
      default:
        panic("makeUbench: bad id %d", static_cast<int>(id));
    }
}

const std::vector<UbenchId> &
presentedUbench()
{
    static const std::vector<UbenchId> six = {
        UbenchId::CpuInt,   UbenchId::LngChainCpuint, UbenchId::CpuFp,
        UbenchId::LdintL1,  UbenchId::LdintL2,        UbenchId::LdintMem,
    };
    return six;
}

const std::vector<UbenchId> &
allUbench()
{
    static const std::vector<UbenchId> all = [] {
        std::vector<UbenchId> v;
        for (int i = 0; i < num_ubench; ++i)
            v.push_back(static_cast<UbenchId>(i));
        return v;
    }();
    return all;
}

} // namespace p5
