/**
 * @file
 * The paper's 15 synthetic micro-benchmarks (Table 2).
 *
 * Each factory reproduces the *characteristics* of the corresponding
 * xlc-compiled loop: operation class, latency class, dependence structure,
 * memory footprint/stride (which selects the cache level that services the
 * loads) and branch behaviour. Six of them are the ones the paper presents
 * results for (the others behave like one of the six, as the paper notes).
 */

#ifndef P5SIM_UBENCH_UBENCH_HH
#define P5SIM_UBENCH_UBENCH_HH

#include <string>
#include <vector>

#include "program/program.hh"

namespace p5 {

/** Identifier of one micro-benchmark. */
enum class UbenchId
{
    CpuInt,
    CpuIntAdd,
    CpuIntMul,
    LngChainCpuint,
    CpuFp,
    BrHit,
    BrMiss,
    LdintL1,
    LdintL2,
    LdintL3,
    LdintMem,
    LdfpL1,
    LdfpL2,
    LdfpL3,
    LdfpMem,
    NumUbench
};

/** Number of micro-benchmarks. */
constexpr int num_ubench = static_cast<int>(UbenchId::NumUbench);

/** Table-2 grouping. */
enum class UbenchGroup { Integer, FloatingPoint, Memory, Branch };

/** Static description of one micro-benchmark. */
struct UbenchInfo
{
    UbenchId id;
    const char *name;        ///< paper name, e.g. "ldint_l2"
    UbenchGroup group;
    const char *loopBody;    ///< Table-2 style loop-body description
};

/** Info for @p id. */
const UbenchInfo &ubenchInfo(UbenchId id);

/** Paper name of @p id (e.g. "lng_chain_cpuint"). */
const char *ubenchName(UbenchId id);

/** Group name ("Integer", ...). */
const char *ubenchGroupName(UbenchGroup group);

/** Reverse lookup; fatal() on unknown names. */
UbenchId ubenchFromName(const std::string &name);

/**
 * Build the micro-benchmark program.
 *
 * @param scale multiplies the micro-iteration count of one execution
 *        (FAME repetition); 1.0 gives executions of a few thousand
 *        dynamic instructions, sized so the full experiment sweeps run
 *        in seconds.
 */
SyntheticProgram makeUbench(UbenchId id, double scale = 1.0);

/** The six benchmarks the paper presents results for (Sec. 4.2). */
const std::vector<UbenchId> &presentedUbench();

/** All fifteen. */
const std::vector<UbenchId> &allUbench();

} // namespace p5

#endif // P5SIM_UBENCH_UBENCH_HH
