#include "check/checkers.hh"

#include "core/smt_core.hh"

namespace p5::check {

void
MemChecker::onCycle(const SmtCore &core, Cycle cycle)
{
    // LMQ occupancy: entry windows overlapping "now" never exceed the
    // queue, and per-thread occupancies account for every busy entry.
    const Lmq &lmq = core.lmq();
    const int busy = lmq.busyAt(cycle);
    if (busy < 0 || busy > lmq.capacity()) {
        fail(cycle, -1, "lmq-capacity",
             "0.." + std::to_string(lmq.capacity()) + " busy entries",
             std::to_string(busy));
    }
    int busy_sum = 0;
    for (ThreadId t = 0; t < num_hw_threads; ++t)
        busy_sum += lmq.busyOfAt(t, cycle);
    if (busy_sum != busy) {
        fail(cycle, -1, "lmq-occupancy-sum",
             std::to_string(busy) + " busy entries",
             std::to_string(busy_sum) + " across threads");
    }

    const Cache &l1 = core.hierarchy().l1d();
    const std::uint64_t l1_hits = l1.hits();
    const std::uint64_t l1_misses = l1.misses();
    const std::uint64_t l1_ins = l1.insertions();
    const std::uint64_t l1_evict = l1.evictions();
    const std::uint64_t lmq_allocs = lmq.allocations();
    const std::uint64_t lmq_queued = lmq.queuedMisses();

    std::array<std::uint64_t, num_hw_threads> t_l1miss{};
    std::array<std::uint64_t, num_hw_threads> t_beyond{};
    std::array<std::uint64_t, num_hw_threads> t_loads{};
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        t_l1miss[ti] = core.hierarchy().l1MissesOf(t);
        t_beyond[ti] = core.hierarchy().beyondL2Of(t);
        t_loads[ti] = core.lsu().loadsOf(t);
    }
    // Loads by service level, through the stats layer (this doubles as
    // a check that the LSU's stats registration stays intact).
    std::uint64_t level_loads = 0;
    bool have_levels = true;
    for (const char *stat : {"lsu.loads.l1", "lsu.loads.l2",
                             "lsu.loads.l3", "lsu.loads.mem"}) {
        if (!core.stats().has(stat)) {
            fail(cycle, -1, "stats-registration",
                 std::string("statistic '") + stat + "' registered",
                 "missing");
            have_levels = false;
            break;
        }
        level_loads +=
            static_cast<std::uint64_t>(core.stats().value(stat));
    }

    if (primed_) {
        const bool monotonic =
            l1_hits >= prevL1Hits_ && l1_misses >= prevL1Misses_ &&
            l1_ins >= prevL1Insertions_ && l1_evict >= prevL1Evictions_ &&
            lmq_allocs >= prevLmqAllocations_ &&
            lmq_queued >= prevLmqQueuedMisses_;
        if (!monotonic) {
            fail(cycle, -1, "counter-monotonicity",
                 "L1/LMQ counters never decrease", "decreased");
        } else {
            const std::uint64_t miss_d = l1_misses - prevL1Misses_;
            const std::uint64_t ins_d = l1_ins - prevL1Insertions_;
            const std::uint64_t evict_d = l1_evict - prevL1Evictions_;
            const std::uint64_t alloc_d = lmq_allocs - prevLmqAllocations_;
            if (ins_d > miss_d) {
                fail(cycle, -1, "l1-insert-without-miss",
                     "at most " + std::to_string(miss_d) +
                         " L1 fills (one per miss)",
                     std::to_string(ins_d));
            }
            if (evict_d > ins_d) {
                fail(cycle, -1, "l1-evict-without-insert",
                     "at most " + std::to_string(ins_d) + " evictions",
                     std::to_string(evict_d));
            }
            if (alloc_d > miss_d) {
                fail(cycle, -1, "lmq-alloc-without-miss",
                     "at most " + std::to_string(miss_d) +
                         " LMQ allocations (one per L1 load miss)",
                     std::to_string(alloc_d));
            }
            std::uint64_t t_miss_d = 0;
            for (ThreadId t = 0; t < num_hw_threads; ++t) {
                const auto ti = static_cast<std::size_t>(t);
                if (t_l1miss[ti] < prevThreadL1Misses_[ti] ||
                    t_beyond[ti] < prevBeyondL2_[ti] ||
                    t_loads[ti] < prevLoads_[ti]) {
                    fail(cycle, t, "counter-monotonicity",
                         "per-thread memory counters never decrease",
                         "decreased");
                    continue;
                }
                t_miss_d += t_l1miss[ti] - prevThreadL1Misses_[ti];
                if (t_beyond[ti] - prevBeyondL2_[ti] >
                    t_l1miss[ti] - prevThreadL1Misses_[ti]) {
                    fail(cycle, t, "beyond-l2-attribution",
                         "beyond-L2 count bounded by L1 misses",
                         std::to_string(t_beyond[ti] -
                                        prevBeyondL2_[ti]));
                }
            }
            if (t_miss_d != miss_d) {
                fail(cycle, -1, "l1-miss-attribution",
                     std::to_string(miss_d) +
                         " L1 misses attributed to threads",
                     std::to_string(t_miss_d));
            }
            if (have_levels) {
                const std::uint64_t loads_d =
                    (t_loads[0] - prevLoads_[0]) +
                    (t_loads[1] - prevLoads_[1]);
                if (level_loads - prevLevelLoads_ != loads_d) {
                    fail(cycle, -1, "load-level-conservation",
                         std::to_string(loads_d) +
                             " loads serviced at some level",
                         std::to_string(level_loads - prevLevelLoads_));
                }
            }
        }
    }

    primed_ = true;
    prevL1Hits_ = l1_hits;
    prevL1Misses_ = l1_misses;
    prevL1Insertions_ = l1_ins;
    prevL1Evictions_ = l1_evict;
    prevLmqAllocations_ = lmq_allocs;
    prevLmqQueuedMisses_ = lmq_queued;
    prevThreadL1Misses_ = t_l1miss;
    prevBeyondL2_ = t_beyond;
    prevLoads_ = t_loads;
    prevLevelLoads_ = level_loads;
}

} // namespace p5::check
