#include "check/chip_checker.hh"

#include "common/log.hh"
#include "core/chip.hh"

namespace p5 {
namespace check {

ChipConservation::ChipConservation(const Chip &chip) : chip_(chip)
{
    committed_.resize(static_cast<std::size_t>(chip.numCores()));
    beyondL2_.resize(static_cast<std::size_t>(chip.numCores()));
}

void
ChipConservation::onQuantumBoundary(std::uint64_t attributed_committed)
{
    const int n = chip_.numCores();

    // Lockstep: Chip::cycle() asserts in debug builds; re-verify here
    // in all builds since a violation invalidates every attribution.
    const Cycle now = chip_.core(0).cycle();
    for (int c = 1; c < n; ++c) {
        if (chip_.core(c).cycle() != now) {
            ++violations_;
            checkfail("ChipConservation: core %d at cycle %llu but core "
                      "0 at %llu (lockstep contract violated)",
                      c,
                      static_cast<unsigned long long>(
                          chip_.core(c).cycle()),
                      static_cast<unsigned long long>(now));
        }
    }

    std::uint64_t chip_delta = 0;
    for (int c = 0; c < n; ++c) {
        const SmtCore &core = chip_.core(c);
        for (ThreadId t = 0; t < num_hw_threads; ++t) {
            const auto ci = static_cast<std::size_t>(c);
            const auto ti = static_cast<std::size_t>(t);
            const std::uint64_t com = core.thread(t).committedCtr.value();
            const std::uint64_t bl2 = core.hierarchy().beyondL2Of(t);
            if (baselined_) {
                if (com < committed_[ci][ti]) {
                    ++violations_;
                    checkfail("ChipConservation: core %d thread %d "
                              "committed went backwards (%llu -> %llu)",
                              c, t,
                              static_cast<unsigned long long>(
                                  committed_[ci][ti]),
                              static_cast<unsigned long long>(com));
                }
                if (bl2 < beyondL2_[ci][ti]) {
                    ++violations_;
                    checkfail("ChipConservation: core %d thread %d "
                              "beyondL2 went backwards (%llu -> %llu)",
                              c, t,
                              static_cast<unsigned long long>(
                                  beyondL2_[ci][ti]),
                              static_cast<unsigned long long>(bl2));
                }
                chip_delta += com - committed_[ci][ti];
            }
            committed_[ci][ti] = com;
            beyondL2_[ci][ti] = bl2;
        }
    }

    if (baselined_) {
        if (now < lastCycle_) {
            ++violations_;
            checkfail("ChipConservation: chip cycle went backwards "
                      "(%llu -> %llu)",
                      static_cast<unsigned long long>(lastCycle_),
                      static_cast<unsigned long long>(now));
        }
        if (chip_delta != attributed_committed) {
            ++violations_;
            checkfail("ChipConservation: quantum attributed %llu "
                      "committed instructions but the chip retired %llu",
                      static_cast<unsigned long long>(
                          attributed_committed),
                      static_cast<unsigned long long>(chip_delta));
        }
    }
    lastCycle_ = now;
    baselined_ = true;
}

} // namespace check
} // namespace p5
