#include "check/checkers.hh"

#include <cstdlib>

#include "core/smt_core.hh"

namespace p5::check {

DecodeSlotChecker::ExpectedGrant
DecodeSlotChecker::expectedGrant(int prio_p, int prio_s, Cycle cycle,
                                 int decode_width, int minority_width)
{
    ExpectedGrant g;
    if (minority_width <= 0)
        minority_width = decode_width;

    if (prio_p == 0 && prio_s == 0)
        return g;
    if (prio_p == 7 || prio_s == 0) {
        g.owner = 0;
        g.maxWidth = decode_width;
        return g;
    }
    if (prio_s == 7 || prio_p == 0) {
        g.owner = 1;
        g.maxWidth = decode_width;
        return g;
    }
    if (prio_p == 1 && prio_s == 1) {
        // Low-power mode: one instruction decoded every 32 cycles in
        // total, the slot alternating between the threads.
        if (cycle % 32 == 0) {
            g.owner = static_cast<ThreadId>((cycle / 32) % 2);
            g.maxWidth = 1;
        }
        return g;
    }
    if (prio_p == prio_s) {
        // Equal priorities: R == 2, strict alternation at full width.
        g.owner = static_cast<ThreadId>(cycle % 2);
        g.maxWidth = decode_width;
        return g;
    }
    const int r = 1 << (std::abs(prio_p - prio_s) + 1);
    const Cycle pos = cycle % static_cast<Cycle>(r);
    const ThreadId high = prio_p > prio_s ? 0 : 1;
    if (pos < static_cast<Cycle>(r - 1)) {
        g.owner = high;
        g.maxWidth = decode_width;
    } else {
        g.owner = static_cast<ThreadId>(1 - high);
        g.maxWidth = minority_width;
    }
    return g;
}

std::array<std::uint64_t, num_hw_threads>
DecodeSlotChecker::expectedOwnedInRange(int prio_p, int prio_s,
                                        int decode_width,
                                        int minority_width, Cycle begin,
                                        Cycle end)
{
    // The slot pattern is periodic in the cycle number with period 64
    // under every mode: Dual windows R = 2^(|d|+1) <= 64 divide 64, and
    // low-power mode (owner = (c/32)%2 at c%32==0) repeats every 64.
    // Each residue class r therefore has one owner, expectedGrant(r),
    // and counting class members in [begin, end) is arithmetic.
    constexpr Cycle period = 64;
    const auto congruent_below = [](Cycle x, Cycle r) -> std::uint64_t {
        return x > r ? (x - r - 1) / period + 1 : 0;
    };
    std::array<std::uint64_t, num_hw_threads> counts{};
    if (end <= begin)
        return counts;
    for (Cycle r = 0; r < period; ++r) {
        const ExpectedGrant g =
            expectedGrant(prio_p, prio_s, r, decode_width, minority_width);
        if (g.owner >= 0)
            counts[static_cast<std::size_t>(g.owner)] +=
                congruent_below(end, r) - congruent_below(begin, r);
    }
    return counts;
}

void
DecodeSlotChecker::onSkip(const SmtCore &core, Cycle from, Cycle to)
{
    const DecodeSlotAllocator &alloc = core.arbiter().allocator();
    const int prio_p = alloc.priorityOf(0);
    const int prio_s = alloc.priorityOf(1);
    const int decode_width = core.params().decodeWidth;
    const int minority_width = core.params().minoritySlotWidth;

    std::array<std::uint64_t, num_hw_threads> granted{};
    std::array<std::uint64_t, num_hw_threads> forfeited{};
    std::array<std::uint64_t, num_hw_threads> reassigned{};
    std::array<std::uint64_t, num_hw_threads> decoded{};
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        granted[ti] = core.arbiter().slotsGrantedTo(t);
        forfeited[ti] = core.arbiter().slotsForfeitedBy(t);
        reassigned[ti] = core.arbiter().slotsReassignedTo(t);
        decoded[ti] = core.decodedOf(t);
    }

    bool verify = true;
    if (!primed_) {
        primed_ = true;
        // Attached mid-run (from != 0): no baseline for the gap start,
        // so this skip only primes. From cycle 0 the zero-initialized
        // prev counters are the correct baseline, as in onCycle().
        verify = from == 0;
    }

    if (verify) {
        const auto owned = expectedOwnedInRange(
            prio_p, prio_s, decode_width, minority_width, from, to);
        const auto range = "[" + std::to_string(from) + "," +
                           std::to_string(to) + ") of pair (" +
                           std::to_string(prio_p) + "," +
                           std::to_string(prio_s) + ")";
        for (ThreadId t = 0; t < num_hw_threads; ++t) {
            const auto ti = static_cast<std::size_t>(t);
            if (granted[ti] != prevGranted_[ti] ||
                reassigned[ti] != prevReassigned_[ti] ||
                decoded[ti] != prevDecoded_[ti]) {
                fail(to, t, "skip-decode-activity",
                     "no grants/reassignments/decodes across the "
                     "skipped gap " + range,
                     "granted+" +
                         std::to_string(granted[ti] - prevGranted_[ti]) +
                         " reassigned+" +
                         std::to_string(reassigned[ti] -
                                        prevReassigned_[ti]) +
                         " decoded+" +
                         std::to_string(decoded[ti] - prevDecoded_[ti]));
            }
            if (forfeited[ti] - prevForfeited_[ti] != owned[ti]) {
                fail(to, t, "skip-forfeit-conservation",
                     "one forfeit per formula-owned slot (" +
                         std::to_string(owned[ti]) + ") across " + range,
                     std::to_string(forfeited[ti] - prevForfeited_[ti]));
            }
        }
    }

    prevGranted_ = granted;
    prevForfeited_ = forfeited;
    prevReassigned_ = reassigned;
    prevDecoded_ = decoded;

    rebuildWindowAfterSkip(prio_p, prio_s, decode_width, minority_width,
                           from, to);
}

void
DecodeSlotChecker::rebuildWindowAfterSkip(int prio_p, int prio_s,
                                          int decode_width,
                                          int minority_width, Cycle from,
                                          Cycle to)
{
    // Mirror checkWindowConformance()'s mode handling: the R-window
    // invariant only applies in Dual mode.
    const bool dual = prio_p >= 1 && prio_p <= 6 && prio_s >= 1 &&
                      prio_s <= 6 && !(prio_p == 1 && prio_s == 1);
    if (!dual) {
        winPrioP_ = -1;
        winPrioS_ = -1;
        winObserved_ = 0;
        return;
    }

    const int r = 1 << (std::abs(prio_p - prio_s) + 1);
    bool continuous = prio_p == winPrioP_ && prio_s == winPrioS_;
    winPrioP_ = prio_p;
    winPrioS_ = prio_s;

    const auto count_owned = [&](Cycle begin, Cycle end) {
        const auto owned = expectedOwnedInRange(
            prio_p, prio_s, decode_width, minority_width, begin, end);
        for (std::size_t ti = 0; ti < num_hw_threads; ++ti)
            winOwned_[ti] += static_cast<int>(owned[ti]);
    };

    // The next onCycle() call is for cycle `to`; its window starts at
    // the last multiple of R at or below `to`.
    const Cycle win_start = to - to % static_cast<Cycle>(r);
    if (win_start >= from) {
        // The partial window [win_start, to) lies entirely inside the
        // skipped gap: every one of its slots was a verified forfeit,
        // so the ownership tally comes straight from the formula.
        winOwned_ = {};
        winObserved_ = 0;
        count_owned(win_start, to);
        winObserved_ = to - win_start;
        return;
    }
    // `to` is still in the window that contains `from`. Extend the
    // tally arithmetically when observation of that window has been
    // continuous (winObserved_ matches the cycles since its start);
    // otherwise give up on this window — a partial tally can never
    // reach winObserved_ == R, so the conformance check stays silent
    // until the next window boundary resets it.
    continuous = continuous &&
                 winObserved_ == from % static_cast<Cycle>(r);
    if (continuous) {
        count_owned(from, to);
        winObserved_ += to - from;
    } else {
        winOwned_ = {};
        winObserved_ = 0;
    }
}

void
DecodeSlotChecker::onCycle(const SmtCore &core, Cycle cycle)
{
    const DecodeSlotAllocator &alloc = core.arbiter().allocator();

    std::array<std::uint64_t, num_hw_threads> granted{};
    std::array<std::uint64_t, num_hw_threads> forfeited{};
    std::array<std::uint64_t, num_hw_threads> reassigned{};
    std::array<std::uint64_t, num_hw_threads> decoded{};
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        granted[ti] = core.arbiter().slotsGrantedTo(t);
        forfeited[ti] = core.arbiter().slotsForfeitedBy(t);
        reassigned[ti] = core.arbiter().slotsReassignedTo(t);
        decoded[ti] = core.decodedOf(t);
    }

    if (!primed_) {
        primed_ = true;
        if (cycle != 0) {
            // Attached mid-run: this observation is the baseline.
            prevGranted_ = granted;
            prevForfeited_ = forfeited;
            prevReassigned_ = reassigned;
            prevDecoded_ = decoded;
            return;
        }
        // Attached at construction: the zero-initialized prev counters
        // are the correct cycle-0 baseline.
    }

    Observation obs;
    obs.cycle = cycle;
    obs.prioP = alloc.priorityOf(0);
    obs.prioS = alloc.priorityOf(1);
    obs.decodeWidth = core.params().decodeWidth;
    obs.minorityWidth = core.params().minoritySlotWidth;
    obs.groupSize = core.params().groupSize;
    obs.workConserving = core.params().workConservingSlots;
    for (std::size_t ti = 0; ti < num_hw_threads; ++ti) {
        obs.granted[ti] = granted[ti] - prevGranted_[ti];
        obs.forfeited[ti] = forfeited[ti] - prevForfeited_[ti];
        obs.reassigned[ti] = reassigned[ti] - prevReassigned_[ti];
        obs.decoded[ti] = decoded[ti] - prevDecoded_[ti];
    }
    prevGranted_ = granted;
    prevForfeited_ = forfeited;
    prevReassigned_ = reassigned;
    prevDecoded_ = decoded;

    check(obs);
}

void
DecodeSlotChecker::check(const Observation &obs)
{
    const ExpectedGrant expect =
        expectedGrant(obs.prioP, obs.prioS, obs.cycle, obs.decodeWidth,
                      obs.minorityWidth);

    const auto pair = "(" + std::to_string(obs.prioP) + "," +
                      std::to_string(obs.prioS) + ")";

    if (expect.owner < 0) {
        for (ThreadId t = 0; t < num_hw_threads; ++t) {
            const auto ti = static_cast<std::size_t>(t);
            if (obs.granted[ti] || obs.forfeited[ti] ||
                obs.reassigned[ti] || obs.decoded[ti]) {
                fail(obs.cycle, t, "slot-activity-when-idle",
                     "no decode activity for pair " + pair,
                     "granted=" + std::to_string(obs.granted[ti]) +
                         " forfeited=" + std::to_string(obs.forfeited[ti]) +
                         " decoded=" + std::to_string(obs.decoded[ti]));
            }
        }
        checkWindowConformance(obs, expect);
        return;
    }

    const auto o = static_cast<std::size_t>(expect.owner);
    const auto s = static_cast<std::size_t>(1 - expect.owner);
    const int max_decode =
        expect.maxWidth < obs.groupSize ? expect.maxWidth : obs.groupSize;

    if (obs.granted[o] + obs.forfeited[o] != 1) {
        fail(obs.cycle, expect.owner, "slot-ownership",
             "exactly one grant or forfeit for the slot owner of pair " +
                 pair,
             "granted=" + std::to_string(obs.granted[o]) +
                 " forfeited=" + std::to_string(obs.forfeited[o]));
    }
    if (obs.granted[s] != 0 || obs.forfeited[s] != 0) {
        fail(obs.cycle, static_cast<ThreadId>(s), "sibling-slot-activity",
             "no grant/forfeit for the non-owner of pair " + pair,
             "granted=" + std::to_string(obs.granted[s]) +
                 " forfeited=" + std::to_string(obs.forfeited[s]));
    }
    if (obs.reassigned[o] != 0) {
        fail(obs.cycle, expect.owner, "reassigned-to-owner",
             "no reassignment to the slot owner",
             std::to_string(obs.reassigned[o]));
    }

    if (obs.granted[o] == 1) {
        if (obs.decoded[o] < 1 ||
            obs.decoded[o] > static_cast<std::uint64_t>(max_decode)) {
            fail(obs.cycle, expect.owner, "decode-width",
                 "1.." + std::to_string(max_decode) +
                     " instructions decoded in a granted slot",
                 std::to_string(obs.decoded[o]));
        }
        if (obs.decoded[s] != 0 || obs.reassigned[s] != 0) {
            fail(obs.cycle, static_cast<ThreadId>(s), "sibling-decode",
                 "no sibling decode while the owner used its slot",
                 "decoded=" + std::to_string(obs.decoded[s]) +
                     " reassigned=" + std::to_string(obs.reassigned[s]));
        }
    } else if (obs.forfeited[o] == 1) {
        if (obs.decoded[o] != 0) {
            fail(obs.cycle, expect.owner, "decode-after-forfeit",
                 "no decode by a thread that forfeited its slot",
                 std::to_string(obs.decoded[o]));
        }
        if (obs.reassigned[s] == 1) {
            if (!obs.workConserving) {
                fail(obs.cycle, static_cast<ThreadId>(s),
                     "reassign-without-work-conserving",
                     "strictly owned slots (workConservingSlots=false)",
                     "slot reassigned to sibling");
            }
            if (obs.decoded[s] < 1 ||
                obs.decoded[s] > static_cast<std::uint64_t>(max_decode)) {
                fail(obs.cycle, static_cast<ThreadId>(s),
                     "reassigned-width",
                     "1.." + std::to_string(max_decode) +
                         " instructions decoded in a reassigned slot",
                     std::to_string(obs.decoded[s]));
            }
        } else if (obs.decoded[s] != 0) {
            fail(obs.cycle, static_cast<ThreadId>(s),
                 "decode-without-slot",
                 "no decode without a granted or reassigned slot",
                 std::to_string(obs.decoded[s]));
        }
    }

    checkWindowConformance(obs, expect);
}

void
DecodeSlotChecker::checkWindowConformance(const Observation &obs,
                                          const ExpectedGrant &expect)
{
    (void)expect;
    // The R-1:1 window invariant only applies in Dual mode (both
    // priorities 1..6, not both 1).
    const bool dual = obs.prioP >= 1 && obs.prioP <= 6 &&
                      obs.prioS >= 1 && obs.prioS <= 6 &&
                      !(obs.prioP == 1 && obs.prioS == 1);
    if (!dual) {
        winPrioP_ = -1;
        winPrioS_ = -1;
        winObserved_ = 0;
        return;
    }

    const int r = 1 << (std::abs(obs.prioP - obs.prioS) + 1);
    const Cycle pos = obs.cycle % static_cast<Cycle>(r);
    if (obs.prioP != winPrioP_ || obs.prioS != winPrioS_) {
        winPrioP_ = obs.prioP;
        winPrioS_ = obs.prioS;
        winObserved_ = 0;
        winOwned_ = {};
    }
    if (pos == 0) {
        winObserved_ = 0;
        winOwned_ = {};
    }

    // The observed owner of this cycle's slot, whether used or not.
    int owner = -1;
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        if (obs.granted[ti] + obs.forfeited[ti] == 1 && owner < 0)
            owner = t;
    }
    if (owner >= 0)
        ++winOwned_[static_cast<std::size_t>(owner)];
    ++winObserved_;

    if (pos == static_cast<Cycle>(r - 1) &&
        winObserved_ == static_cast<Cycle>(r)) {
        int expect0;
        if (obs.prioP > obs.prioS)
            expect0 = r - 1;
        else if (obs.prioS > obs.prioP)
            expect0 = 1;
        else
            expect0 = r / 2;
        const int expect1 = r - expect0;
        if (winOwned_[0] != expect0 || winOwned_[1] != expect1) {
            fail(obs.cycle, -1, "r-window-conformance",
                 "ownership " + std::to_string(expect0) + ":" +
                     std::to_string(expect1) + " over the R=" +
                     std::to_string(r) + " window of pair (" +
                     std::to_string(obs.prioP) + "," +
                     std::to_string(obs.prioS) + ")",
                 std::to_string(winOwned_[0]) + ":" +
                     std::to_string(winOwned_[1]));
        }
    }
}

} // namespace p5::check
