#include "check/checkers.hh"

#include "core/smt_core.hh"

namespace p5::check {

void
GctChecker::onCycle(const SmtCore &core, Cycle cycle)
{
    const Gct &gct = core.gct();

    // Occupancy conservation: per-thread occupancies sum to the total
    // and never exceed capacity. Recounted from the group lists rather
    // than trusting the occupancy accessors.
    int occ_sum = 0;
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const int listed = static_cast<int>(gct.groupsOf(t).size());
        if (listed != gct.occupancyOf(t)) {
            fail(cycle, t, "occupancy-accessor",
                 std::to_string(listed) + " groups listed",
                 std::to_string(gct.occupancyOf(t)));
        }
        occ_sum += listed;
    }
    if (occ_sum != gct.occupancy()) {
        fail(cycle, -1, "occupancy-sum",
             std::to_string(occ_sum) + " (thread occupancies)",
             std::to_string(gct.occupancy()));
    }
    if (occ_sum > gct.capacity()) {
        fail(cycle, -1, "capacity",
             "occupancy <= " + std::to_string(gct.capacity()),
             std::to_string(occ_sum));
    }

    // Allocation accounting: groups can leave the GCT by retirement or
    // squash only, so live groups never exceed allocated - retired, and
    // at most one group is dispatched per cycle.
    const std::uint64_t allocated = gct.allocated();
    const std::uint64_t retired = gct.retired();
    if (allocated < retired + static_cast<std::uint64_t>(occ_sum)) {
        fail(cycle, -1, "allocation-accounting",
             "allocated >= retired + live (" + std::to_string(retired) +
                 " + " + std::to_string(occ_sum) + ")",
             std::to_string(allocated));
    }
    if (primed_) {
        if (allocated < prevAllocated_ ||
            allocated - prevAllocated_ > 1) {
            fail(cycle, -1, "allocation-rate",
                 "at most one group allocated per cycle",
                 std::to_string(allocated) + " after " +
                     std::to_string(prevAllocated_));
        }
        if (retired < prevRetired_ ||
            retired - prevRetired_ >
                static_cast<std::uint64_t>(num_hw_threads)) {
            fail(cycle, -1, "retire-rate",
                 "at most one group retired per thread per cycle",
                 std::to_string(retired) + " after " +
                     std::to_string(prevRetired_));
        }
    }
    prevAllocated_ = allocated;
    prevRetired_ = retired;
    primed_ = true;

    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        const auto &groups = gct.groupsOf(t);
        const auto &win = core.thread(t).window;

        // Group shape: positive counts, contiguous seq ranges, oldest
        // first.
        std::uint64_t instrs = 0;
        bool shape_ok = true;
        SeqNum next_seq = 0;
        bool first = true;
        for (const GctGroup &g : groups) {
            if (g.count <= 0) {
                fail(cycle, t, "group-count",
                     "positive instruction count",
                     std::to_string(g.count));
                shape_ok = false;
                break;
            }
            if (!first && g.startSeq != next_seq) {
                fail(cycle, t, "group-contiguity",
                     "group starts at seq " + std::to_string(next_seq),
                     std::to_string(g.startSeq));
                shape_ok = false;
                break;
            }
            first = false;
            next_seq = g.startSeq + static_cast<SeqNum>(g.count);
            instrs += static_cast<std::uint64_t>(g.count);
        }

        // Conservation against the in-flight window: the GCT tracks
        // exactly the dispatched-but-not-retired instructions.
        if (shape_ok && instrs != win.size()) {
            fail(cycle, t, "window-conservation",
                 std::to_string(win.size()) +
                     " in-flight instructions (window)",
                 std::to_string(instrs) + " (GCT groups)");
        }
        if (shape_ok && !groups.empty() && !win.empty()) {
            if (win.front().di.seq != groups.front().startSeq) {
                fail(cycle, t, "front-alignment",
                     "window head at seq " +
                         std::to_string(groups.front().startSeq),
                     std::to_string(win.front().di.seq));
            }
            if (win.back().di.seq != next_seq - 1) {
                fail(cycle, t, "back-alignment",
                     "window tail at seq " +
                         std::to_string(next_seq - 1),
                     std::to_string(win.back().di.seq));
            }
        }

        // Program-order retirement: the oldest live seq of a thread
        // never moves backwards while the same program is attached
        // (squashes only remove younger instructions).
        const bool attached = core.thread(t).attached();
        const std::uint64_t committed = core.committedOf(t);
        const bool rebase = !prevAttached_[ti] || !attached ||
                            committed < prevCommitted_[ti];
        if (!rebase && prevHadFront_[ti] && !groups.empty() &&
            groups.front().startSeq < prevFrontSeq_[ti]) {
            fail(cycle, t, "program-order",
                 "oldest seq >= " + std::to_string(prevFrontSeq_[ti]),
                 std::to_string(groups.front().startSeq));
        }
        prevAttached_[ti] = attached;
        prevCommitted_[ti] = committed;
        prevHadFront_[ti] = !groups.empty();
        if (!groups.empty())
            prevFrontSeq_[ti] = groups.front().startSeq;
    }
}

} // namespace p5::check
