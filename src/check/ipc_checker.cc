#include "check/checkers.hh"

#include "core/smt_core.hh"

namespace p5::check {

void
IpcChecker::onCycle(const SmtCore &core, Cycle cycle)
{
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        const ThreadState &ts = core.thread(t);
        ThreadCounters cur;
        cur.committed = ts.committed;
        cur.committedCtr = ts.committedCtr.value();
        cur.attached = ts.attached();

        const ThreadCounters &prev = prev_[ti];
        const bool stable = primed_ && cur.attached == prev.attached &&
                            cur.committed >= prev.committed;
        if (stable) {
            // The architectural retirement count and the stats-layer
            // counter are written together at commit; any divergence
            // means the accounting drifted.
            const std::uint64_t arch_d = cur.committed - prev.committed;
            if (cur.committedCtr < prev.committedCtr ||
                cur.committedCtr - prev.committedCtr != arch_d) {
                fail(cycle, t, "committed-counter-coherence",
                     "stats counter advances by " +
                         std::to_string(arch_d) + " with retirement",
                     std::to_string(cur.committedCtr) + " after " +
                         std::to_string(prev.committedCtr));
            }
            // In-order commit retires at most one group per thread per
            // cycle.
            const auto group_size =
                static_cast<std::uint64_t>(core.params().groupSize);
            if (arch_d > group_size) {
                fail(cycle, t, "commit-width",
                     "at most " + std::to_string(group_size) +
                         " instructions committed per cycle",
                     std::to_string(arch_d));
            }
        }
        prev_[ti] = cur;

        // The stats layer must expose the same retirement counter.
        const std::string stat =
            "thread" + std::to_string(t) + ".committed";
        if (!core.stats().has(stat)) {
            fail(cycle, t, "stats-registration",
                 "statistic '" + stat + "' registered", "missing");
        } else {
            const auto stat_val =
                static_cast<std::uint64_t>(core.stats().value(stat));
            if (stat_val != cur.committedCtr) {
                fail(cycle, t, "stats-coherence",
                     std::to_string(cur.committedCtr) +
                         " committed (counter)",
                     std::to_string(stat_val) + " (stats layer)");
            }
        }

        if (!cur.attached)
            continue;

        // Execution accounting is a pure function of the committed
        // count for in-order commit.
        const std::uint64_t expected_execs =
            ts.stream().executionsAt(cur.committed);
        if (core.executionsOf(t) != expected_execs) {
            fail(cycle, t, "execution-accounting",
                 std::to_string(expected_execs) +
                     " executions at committed=" +
                     std::to_string(cur.committed),
                 std::to_string(core.executionsOf(t)));
        }
        if (core.lastExecutionCycleOf(t) > cycle + 1) {
            fail(cycle, t, "execution-cycle-bound",
                 "last execution retired by cycle " +
                     std::to_string(cycle + 1),
                 std::to_string(core.lastExecutionCycleOf(t)));
        }
    }
    primed_ = true;
}

} // namespace p5::check
