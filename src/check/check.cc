#include "check/check.hh"

#include <utility>

#include "check/checkers.hh"
#include "common/log.hh"
#include "core/smt_core.hh"

namespace p5::check {

std::string
CheckFailure::describe() const
{
    std::string s = "cycle " + std::to_string(cycle) + " [" + checker +
                    "] " + invariant;
    if (tid >= 0)
        s += " (thread " + std::to_string(tid) + ")";
    s += ": expected " + expected + ", actual " + actual;
    return s;
}

void
InvariantChecker::fail(Cycle cycle, ThreadId tid, std::string invariant,
                       std::string expected, std::string actual)
{
    if (!registry_)
        panic("p5check: checker '%s' fired before registration", name());
    CheckFailure f;
    f.cycle = cycle;
    f.tid = tid;
    f.checker = name();
    f.invariant = std::move(invariant);
    f.expected = std::move(expected);
    f.actual = std::move(actual);
    registry_->report(std::move(f));
}

void
CheckRegistry::add(std::unique_ptr<InvariantChecker> checker)
{
    if (!checker)
        panic("CheckRegistry::add(null checker)");
    checker->registry_ = this;
    checkers_.push_back(std::move(checker));
}

void
CheckRegistry::onCycle(const SmtCore &core, Cycle cycle)
{
    ++cyclesChecked_;
    for (auto &c : checkers_)
        c->onCycle(core, cycle);
}

void
CheckRegistry::onSkip(const SmtCore &core, Cycle from, Cycle to)
{
    cyclesSkipped_ += to - from;
    for (auto &c : checkers_)
        c->onSkip(core, from, to);
}

bool
CheckRegistry::has(const std::string &name) const
{
    for (const auto &c : checkers_)
        if (name == c->name())
            return true;
    return false;
}

void
CheckRegistry::clearFailures()
{
    failures_.clear();
    failureCount_ = 0;
}

void
CheckRegistry::report(CheckFailure f)
{
    if (fatal_)
        panic("p5check violation: %s", f.describe().c_str());
    ++failureCount_;
    checkfail("%s", f.describe().c_str());
    if (failures_.size() < max_stored_failures)
        failures_.push_back(std::move(f));
}

void
installStandardCheckers(SmtCore &core)
{
    CheckRegistry &reg = core.checks();
    if (!reg.has("decode-slot"))
        reg.add(std::make_unique<DecodeSlotChecker>());
    if (!reg.has("gct"))
        reg.add(std::make_unique<GctChecker>());
    if (!reg.has("flow"))
        reg.add(std::make_unique<FlowChecker>());
    if (!reg.has("mem"))
        reg.add(std::make_unique<MemChecker>());
    if (!reg.has("ipc"))
        reg.add(std::make_unique<IpcChecker>());
}

} // namespace p5::check
