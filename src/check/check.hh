/**
 * @file
 * p5check: runtime verification of microarchitectural invariants.
 *
 * An InvariantChecker observes one SmtCore at cycle boundaries and
 * cross-checks the model's bookkeeping against independently recomputed
 * expectations (the paper's R-1:1 decode formula, GCT conservation,
 * issue/FU flow conservation, LMQ/cache counter coherence, committed-IPC
 * accounting). Checkers are registered with a core's CheckRegistry; a
 * core without a registry pays a single null-pointer test per cycle.
 *
 * Building with -DP5SIM_CHECK=ON installs the standard checker suite on
 * every core and makes violations fatal; without it, checkers are only
 * active where tests register them explicitly.
 */

#ifndef P5SIM_CHECK_CHECK_HH
#define P5SIM_CHECK_CHECK_HH

#include <memory>
#include <string>
#include <vector>

#include "common/annotate.hh"
#include "common/types.hh"

namespace p5 {

class SmtCore;

namespace check {

class CheckRegistry;

/** A detected invariant violation, with enough context to debug it. */
struct CheckFailure
{
    Cycle cycle = 0;

    /** Offending hardware thread, or -1 when not thread-specific. */
    ThreadId tid = -1;

    /** Name of the checker that fired. */
    std::string checker;

    /** The invariant that was violated (short identifier). */
    std::string invariant;

    /** What the checker expected to observe. */
    std::string expected;

    /** What the model actually held. */
    std::string actual;

    /** One-line human-readable rendering. */
    std::string describe() const;
};

/**
 * Base class of all invariant checkers.
 *
 * onCycle() runs at the end of every SmtCore::tick(), after all pipeline
 * stages, with the cycle number that just executed. Checkers that track
 * counter deltas must treat their first observation as a baseline (cores
 * may have run before the checker was attached).
 */
class InvariantChecker
{
  public:
    virtual ~InvariantChecker() = default;

    /** Stable name used in CheckFailure records and tests. */
    virtual const char *name() const = 0;

    /** Inspect @p core after cycle @p cycle has fully executed. */
    virtual void onCycle(const SmtCore &core, Cycle cycle) = 0;

    /**
     * The core fast-forwarded from cycle @p from to @p to: cycles
     * [from, to) were verified idle and skipped in one jump, with
     * counters advanced arithmetically, and the next onCycle() call
     * will be for cycle @p to. The default is a no-op, correct for any
     * checker whose tracked quantities are constant while the core is
     * idle (all delta-based checkers: their spanning deltas stay
     * consistent). Checkers with per-cycle expectations (the decode-
     * slot R-window) must override this to verify the bulk deltas and
     * rebuild their rolling state.
     */
    virtual void
    onSkip(const SmtCore &core, Cycle from, Cycle to)
    {
        (void)core;
        (void)from;
        (void)to;
    }

  protected:
    /** Record a violation with the owning registry. */
    void fail(Cycle cycle, ThreadId tid, std::string invariant,
              std::string expected, std::string actual);

  private:
    friend class CheckRegistry;
    CheckRegistry *registry_ = nullptr;
};

/**
 * Owns a core's checkers and collects their failures.
 *
 * In fatal mode (the default of checked builds) the first violation
 * panics; in collect mode failures are recorded (up to a cap) and
 * surfaced through log.hh as checkfail() messages, so tests can corrupt
 * state on purpose and assert that the right checker fired.
 */
class CheckRegistry
{
  public:
    explicit CheckRegistry(bool fatal = false) : fatal_(fatal) {}

    CheckRegistry(const CheckRegistry &) = delete;
    CheckRegistry &operator=(const CheckRegistry &) = delete;

    /** Register @p checker; the registry takes ownership. */
    void add(std::unique_ptr<InvariantChecker> checker);

    // P5_ALLOW(hot_path_no_alloc): checkers are a debug-mode facility —
    // collect mode stores failure records (capped), and individual
    // checkers keep growable shadow state. Release runs attach no
    // checkers, so the busy path never reaches these.
    /** Run every checker against @p core for cycle @p cycle. */
    P5_ALLOW(hot_path_no_alloc)
    void onCycle(const SmtCore &core, Cycle cycle);

    /** Notify every checker of a fast-forward skip over [from, to). */
    P5_ALLOW(hot_path_no_alloc)
    void onSkip(const SmtCore &core, Cycle from, Cycle to);

    /** Violations panic (true) or are collected (false). */
    void setFatal(bool fatal) { fatal_ = fatal; }
    bool fatal() const { return fatal_; }

    /** True iff a checker named @p name is registered. */
    bool has(const std::string &name) const;

    std::size_t numCheckers() const { return checkers_.size(); }

    /** Collected violations (collect mode; capped). */
    const std::vector<CheckFailure> &failures() const { return failures_; }

    /** Total violations seen, including those beyond the storage cap. */
    std::uint64_t failureCount() const { return failureCount_; }

    /** Cycles onCycle() has been driven for (observability in tests). */
    std::uint64_t cyclesChecked() const { return cyclesChecked_; }

    /** Cycles crossed via onSkip() fast-forward jumps. */
    std::uint64_t cyclesSkipped() const { return cyclesSkipped_; }

    void clearFailures();

    /** Failures kept in failures(); further ones only count. */
    static constexpr std::size_t max_stored_failures = 256;

  private:
    friend class InvariantChecker;
    void report(CheckFailure f);

    std::vector<std::unique_ptr<InvariantChecker>> checkers_;
    std::vector<CheckFailure> failures_;
    std::uint64_t failureCount_ = 0;
    std::uint64_t cyclesChecked_ = 0;
    std::uint64_t cyclesSkipped_ = 0;
    bool fatal_ = false;
};

/**
 * Register the standard five-checker suite on @p core's registry:
 * decode-slot conformance, GCT conservation, flow conservation,
 * memory-counter coherence and IPC accounting.
 */
void installStandardCheckers(SmtCore &core);

} // namespace check
} // namespace p5

#endif // P5SIM_CHECK_CHECK_HH
