/**
 * @file
 * Chip-level conservation invariants across cores and migrations.
 *
 * The per-core checkers (check.hh) verify one SmtCore at cycle
 * boundaries; ChipConservation verifies the properties an allocation
 * study depends on at *quantum* boundaries:
 *
 *  - lockstep: every core is at the same cycle whenever the scheduler
 *    looks (a violation means someone advanced a core behind the
 *    chip's back);
 *  - monotonicity: the per-slot committed / beyond-L2 counters the
 *    engine attributes work from never decrease, across migrations,
 *    detach/attach and fast-forward skips alike;
 *  - conservation: the instructions the engine attributed to runnable
 *    threads over a quantum equal the chip-wide committed delta —
 *    nothing is double-counted or lost when threads move.
 *
 * Violations go through checkfail() (counted; warn-level log) so a
 * study can run to completion and report them, exactly like the
 * collect-mode per-core registries.
 */

#ifndef P5SIM_CHECK_CHIP_CHECKER_HH
#define P5SIM_CHECK_CHIP_CHECKER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace p5 {

class Chip;

namespace check {

/** Quantum-boundary conservation checker for one Chip. */
class ChipConservation
{
  public:
    explicit ChipConservation(const Chip &chip);

    /**
     * Verify the invariants at a quantum boundary.
     *
     * @param attributed_committed committed-instruction delta the
     *        caller attributed to runnable threads since the previous
     *        call. The first call only records baselines.
     */
    void onQuantumBoundary(std::uint64_t attributed_committed);

    /** Violations detected so far. */
    std::uint64_t violations() const { return violations_; }

  private:
    const Chip &chip_;
    bool baselined_ = false;
    Cycle lastCycle_ = 0;
    std::vector<std::array<std::uint64_t, num_hw_threads>> committed_;
    std::vector<std::array<std::uint64_t, num_hw_threads>> beyondL2_;
    std::uint64_t violations_ = 0;
};

} // namespace check
} // namespace p5

#endif // P5SIM_CHECK_CHIP_CHECKER_HH
