/**
 * @file
 * The standard p5check invariant checkers.
 *
 * Each checker independently recomputes what the core's bookkeeping must
 * look like — from the paper's formulas and from conservation laws —
 * rather than trusting the component that produced the numbers:
 *
 *  - DecodeSlotChecker: the decode grant stream matches the R-1:1
 *    pattern of R = 2^(|PrioP - PrioS| + 1) (Sec. 3.2), including the
 *    priority-0/7 and low-power special cases;
 *  - GctChecker: per-thread GCT occupancies are conserved against the
 *    instruction windows, capacity is never exceeded, groups stay
 *    contiguous and retire in program order;
 *  - FlowChecker: decoded = committed + squashed + in-flight per thread,
 *    ready-queue entries and window phases agree, FU busy counts stay
 *    within the pool;
 *  - MemChecker: LMQ occupancy and L1/LMQ/LSU counters cohere;
 *  - IpcChecker: the duplicated committed/executions accounting and the
 *    stats layer agree with the architectural state.
 *
 * Delta-based checks treat their first observation as a baseline, so a
 * checker may be attached to a core that has already run.
 */

#ifndef P5SIM_CHECK_CHECKERS_HH
#define P5SIM_CHECK_CHECKERS_HH

#include <array>
#include <cstdint>

#include "check/check.hh"
#include "common/types.hh"

namespace p5::check {

/** Per-thread counter snapshot used by the delta-based checkers. */
struct ThreadCounters
{
    std::uint64_t decoded = 0;
    std::uint64_t committed = 0;
    std::uint64_t committedCtr = 0;
    std::uint64_t squashed = 0;
    std::size_t windowSize = 0;
    bool attached = false;
};

/** Decode-slot conformance against the paper's R-1:1 formula. */
class DecodeSlotChecker : public InvariantChecker
{
  public:
    /**
     * Everything the checker needs to know about one decode cycle.
     * onCycle() derives it from the core; tests may build corrupted
     * observations and feed them to check() directly.
     */
    struct Observation
    {
        Cycle cycle = 0;
        int prioP = 0;
        int prioS = 0;
        int decodeWidth = 5;
        int minorityWidth = 2;
        int groupSize = 5;
        bool workConserving = false;

        /** This cycle's counter deltas, indexed by thread. */
        std::array<std::uint64_t, num_hw_threads> granted{};
        std::array<std::uint64_t, num_hw_threads> forfeited{};
        std::array<std::uint64_t, num_hw_threads> reassigned{};
        std::array<std::uint64_t, num_hw_threads> decoded{};
    };

    /** Expected slot ownership for one cycle (pure formula). */
    struct ExpectedGrant
    {
        ThreadId owner = -1; ///< -1: nobody owns the decode stage
        int maxWidth = 0;
    };

    /**
     * Independent recomputation of the decode-slot pattern (Sec. 3.2);
     * deliberately does not call DecodeSlotAllocator::grantAt().
     */
    static ExpectedGrant expectedGrant(int prio_p, int prio_s,
                                       Cycle cycle, int decode_width,
                                       int minority_width);

    /**
     * Slots in [begin, end) the formula assigns to each thread.
     * Computed from expectedGrant() per cycle-mod-64 residue class (the
     * pattern's period in every mode divides 64), so it is O(64) and
     * still independent of DecodeSlotAllocator.
     */
    static std::array<std::uint64_t, num_hw_threads>
    expectedOwnedInRange(int prio_p, int prio_s, int decode_width,
                         int minority_width, Cycle begin, Cycle end);

    const char *name() const override { return "decode-slot"; }
    void onCycle(const SmtCore &core, Cycle cycle) override;

    /**
     * Skip-aware mode: verify that the bulk counter deltas over the
     * skipped gap [from, to) are exactly what per-cycle checking would
     * have accepted — no grants, reassignments or decodes, and one
     * forfeit per formula-owned slot — then rebuild the rolling
     * R-window state for the partial window containing @p to.
     */
    void onSkip(const SmtCore &core, Cycle from, Cycle to) override;

    /** Test seam: validate one observation against the formula. */
    void check(const Observation &obs);

  private:
    void checkWindowConformance(const Observation &obs,
                                const ExpectedGrant &expect);
    void rebuildWindowAfterSkip(int prio_p, int prio_s, int decode_width,
                                int minority_width, Cycle from, Cycle to);

    bool primed_ = false;
    std::array<std::uint64_t, num_hw_threads> prevGranted_{};
    std::array<std::uint64_t, num_hw_threads> prevForfeited_{};
    std::array<std::uint64_t, num_hw_threads> prevReassigned_{};
    std::array<std::uint64_t, num_hw_threads> prevDecoded_{};

    /** Rolling R-cycle window ownership accounting (Dual mode). */
    int winPrioP_ = -1;
    int winPrioS_ = -1;
    Cycle winObserved_ = 0; ///< cycles of the current window seen
    std::array<int, num_hw_threads> winOwned_{};
};

/** GCT conservation and program-order retirement. */
class GctChecker : public InvariantChecker
{
  public:
    const char *name() const override { return "gct"; }
    void onCycle(const SmtCore &core, Cycle cycle) override;

  private:
    bool primed_ = false;
    std::uint64_t prevAllocated_ = 0;
    std::uint64_t prevRetired_ = 0;
    std::array<bool, num_hw_threads> prevAttached_{};
    std::array<std::uint64_t, num_hw_threads> prevCommitted_{};
    std::array<SeqNum, num_hw_threads> prevFrontSeq_{};
    std::array<bool, num_hw_threads> prevHadFront_{};
};

/** Dispatch/issue/commit flow conservation and ready-queue sanity. */
class FlowChecker : public InvariantChecker
{
  public:
    const char *name() const override { return "flow"; }
    void onCycle(const SmtCore &core, Cycle cycle) override;

  private:
    bool primed_ = false;
    std::array<ThreadCounters, num_hw_threads> prev_{};
};

/** LMQ occupancy and memory-counter coherence. */
class MemChecker : public InvariantChecker
{
  public:
    const char *name() const override { return "mem"; }
    void onCycle(const SmtCore &core, Cycle cycle) override;

  private:
    bool primed_ = false;
    std::uint64_t prevL1Hits_ = 0;
    std::uint64_t prevL1Misses_ = 0;
    std::uint64_t prevL1Insertions_ = 0;
    std::uint64_t prevL1Evictions_ = 0;
    std::uint64_t prevLmqAllocations_ = 0;
    std::uint64_t prevLmqQueuedMisses_ = 0;
    std::array<std::uint64_t, num_hw_threads> prevThreadL1Misses_{};
    std::array<std::uint64_t, num_hw_threads> prevBeyondL2_{};
    std::array<std::uint64_t, num_hw_threads> prevLoads_{};
    std::uint64_t prevLevelLoads_ = 0;
};

/** Committed-IPC accounting vs the stats layer. */
class IpcChecker : public InvariantChecker
{
  public:
    const char *name() const override { return "ipc"; }
    void onCycle(const SmtCore &core, Cycle cycle) override;

  private:
    bool primed_ = false;
    std::array<ThreadCounters, num_hw_threads> prev_{};
};

} // namespace p5::check

#endif // P5SIM_CHECK_CHECKERS_HH
