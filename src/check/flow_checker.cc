#include "check/checkers.hh"

#include <set>
#include <tuple>

#include "core/smt_core.hh"

namespace p5::check {

namespace {

/** Const re-implementation of ThreadState::find() for observers. */
const InFlight *
findInWindow(const ThreadState &ts, SeqNum seq, std::uint64_t epoch)
{
    const auto &win = ts.window;
    if (win.empty())
        return nullptr;
    const SeqNum head = win.front().di.seq;
    if (seq < head)
        return nullptr;
    const std::uint64_t idx = seq - head;
    if (idx >= win.size())
        return nullptr;
    const InFlight *e = &win[static_cast<std::size_t>(idx)];
    return e->epoch == epoch ? e : nullptr;
}

} // namespace

void
FlowChecker::onCycle(const SmtCore &core, Cycle cycle)
{
    // Flow conservation per thread: every decoded instruction is either
    // committed, squashed/flushed, or still in flight. Checked in delta
    // form each cycle so drift is caught the moment it appears.
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const auto ti = static_cast<std::size_t>(t);
        const ThreadState &ts = core.thread(t);
        ThreadCounters cur;
        cur.decoded = core.decodedOf(t);
        cur.committed = core.committedOf(t);
        cur.squashed = ts.squashedCtr.value();
        cur.windowSize = ts.window.size();
        cur.attached = ts.attached();

        const ThreadCounters &prev = prev_[ti];
        const bool stable = primed_ && cur.attached == prev.attached &&
                            cur.committed >= prev.committed &&
                            cur.decoded >= prev.decoded;
        if (stable) {
            const auto decoded_d =
                static_cast<std::int64_t>(cur.decoded - prev.decoded);
            const auto retired_d =
                static_cast<std::int64_t>(cur.committed - prev.committed) +
                static_cast<std::int64_t>(cur.squashed - prev.squashed);
            const auto window_d =
                static_cast<std::int64_t>(cur.windowSize) -
                static_cast<std::int64_t>(prev.windowSize);
            if (decoded_d != retired_d + window_d) {
                fail(cycle, t, "flow-conservation",
                     "decoded == committed + squashed + in-flight "
                     "(delta " +
                         std::to_string(retired_d + window_d) + ")",
                     "decoded delta " + std::to_string(decoded_d));
            }
        }
        prev_[ti] = cur;
    }
    primed_ = true;

    // FU accounting: free units stay within the configured pool.
    static constexpr FuClass fu_classes[] = {FuClass::FX, FuClass::FP,
                                             FuClass::LS, FuClass::BR};
    for (FuClass fc : fu_classes) {
        const int free = core.fuPool().freeUnits(fc, cycle);
        const int count = core.fuPool().unitCount(fc);
        if (free < 0 || free > count) {
            fail(cycle, -1, "fu-busy-count",
                 "0.." + std::to_string(count) + " free " +
                     fuClassName(fc) + " units",
                 std::to_string(free));
        }
    }

    // Ready-queue sanity: every live entry references a dispatched,
    // operand-ready instruction of the right unit class, exactly once;
    // conversely every ready-to-issue instruction is queued (no lost
    // wakeups).
    std::set<std::tuple<ThreadId, SeqNum, std::uint64_t>> queued;
    for (FuClass fc : fu_classes) {
        for (const ReadyRef &ref : core.readyQueue().entries(fc)) {
            const InFlight *e =
                findInWindow(core.thread(ref.tid), ref.seq, ref.epoch);
            if (!e)
                continue; // squashed since enqueue: stale, harmless
            if (!queued.emplace(ref.tid, ref.seq, ref.epoch).second) {
                fail(cycle, ref.tid, "ready-duplicate",
                     "each in-flight instruction queued at most once",
                     "seq " + std::to_string(ref.seq) +
                         " queued twice");
                continue;
            }
            if (fuClassOf(e->di.op) != fc) {
                fail(cycle, ref.tid, "ready-class",
                     std::string(fuClassName(fuClassOf(e->di.op))) +
                         " queue for seq " + std::to_string(ref.seq),
                     fuClassName(fc));
            }
            if (e->phase != InstrPhase::Dispatched) {
                fail(cycle, ref.tid, "ready-phase",
                     "queued instruction still dispatched (seq " +
                         std::to_string(ref.seq) + ")",
                     "phase " +
                         std::to_string(static_cast<int>(e->phase)));
            } else if (e->pendingSrcs != 0) {
                fail(cycle, ref.tid, "ready-pending-sources",
                     "queued instruction has no pending sources",
                     std::to_string(e->pendingSrcs) + " pending");
            } else if (!e->inReadyQueue) {
                fail(cycle, ref.tid, "ready-flag",
                     "queued instruction flagged inReadyQueue",
                     "flag clear for seq " + std::to_string(ref.seq));
            }
        }
    }
    for (ThreadId t = 0; t < num_hw_threads; ++t) {
        const ThreadState &ts = core.thread(t);
        if (!ts.attached())
            continue;
        for (const InFlight &e : ts.window) {
            if (e.phase != InstrPhase::Dispatched || e.pendingSrcs != 0 ||
                fuClassOf(e.di.op) == FuClass::None)
                continue;
            if (!queued.count({t, e.di.seq, e.epoch})) {
                fail(cycle, t, "lost-wakeup",
                     "ready instruction present in the issue queues "
                     "(seq " +
                         std::to_string(e.di.seq) + ")",
                     "not queued");
            }
        }
    }
}

} // namespace p5::check
