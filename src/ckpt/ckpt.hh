/**
 * @file
 * Checkpoint container format and on-disk checkpoint store.
 *
 * A Checkpoint is a warmed core's serialized architectural state plus
 * the identity it was warmed under: the canonical *warm key* (the
 * priority- and measurement-free slice of a simulation's identity, see
 * ckpt_manager.hh) and its 16-hex-digit fingerprint. All 36 priority
 * pairs of one pair-mix share one warm key, which is the whole point —
 * one warm-up amortizes across the pair matrix.
 *
 * On disk a checkpoint is one file per fingerprint under the same
 * two-hex-shard layout as the ResultStore:
 *
 *     <dir>/<fp[0:2]>/<fp>-ckpt-v<version>.bin
 *
 * File format: a single JSON header line (magic, versions, fingerprint,
 * byte count, checksum, the full warm key) terminated by '\n', followed
 * by the raw state bytes. The header is line-oriented so `head -1` can
 * inspect any checkpoint; the payload is the exact CkptWriter stream.
 * Publication is atomic (temp file + rename) and every invalid file —
 * truncated, corrupt, checksum or version mismatch, foreign warm key —
 * is quarantined to "<name>.bad" and treated as a miss, mirroring the
 * ResultStore's crash/corruption discipline. A ckpt_meta.json at the
 * root pins the format and config schema versions; opening a directory
 * written by a different version is fatal.
 */

#ifndef P5SIM_CKPT_CKPT_HH
#define P5SIM_CKPT_CKPT_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "config/config.hh"

namespace p5 {

/** Version of the checkpoint container + state stream layout. */
constexpr int ckpt_format_version = 1;

/** A warmed core's serialized state plus its warm identity. */
struct Checkpoint
{
    /** Canonical warm-phase identity text (see SimJob::warmKey()). */
    std::string warmKey;

    /** 16-hex-digit content address: hash of warmKey. */
    std::string fingerprint;

    /** Core cycle at snapshot time (observability / reporting only). */
    Cycle warmCycles = 0;

    /** The CkptWriter stream from SmtCore::saveState(). */
    std::vector<std::uint8_t> state;
};

/** 16-hex-digit content address of a warm key. */
std::string ckptFingerprintHex(const std::string &warm_key);

/** Persistent checkpoint area (usually "<result-store>/ckpt"). */
class CkptStore
{
  public:
    /**
     * Open @p dir, creating it (and ckpt_meta.json) when absent. Fatal
     * when an existing area was written by a different checkpoint
     * format or config schema version.
     */
    explicit CkptStore(std::string dir,
                       int schema_version = config_schema_version);

    CkptStore(const CkptStore &) = delete;
    CkptStore &operator=(const CkptStore &) = delete;

    const std::string &dir() const { return dir_; }

    /** Absolute path a fingerprint maps to under this area. */
    std::string pathFor(const std::string &fp_hex) const;

    /**
     * Validated read of the checkpoint for @p warm_key. A missing file
     * is a plain miss; a file that fails any validation (header,
     * version, checksum, byte count, embedded warm key) is quarantined
     * to .bad and reported as a miss.
     */
    bool load(const std::string &warm_key, Checkpoint &out);

    /** Publish @p ckpt atomically under its fingerprint. */
    void put(const Checkpoint &ckpt);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t writes() const { return writes_.load(); }
    std::uint64_t quarantined() const { return quarantined_.load(); }

  private:
    void quarantine(const std::string &path);

    std::string dir_;
    int schemaVersion_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> writes_{0};
    std::atomic<std::uint64_t> quarantined_{0};
    std::atomic<std::uint64_t> tempCounter_{0};
};

} // namespace p5

#endif // P5SIM_CKPT_CKPT_HH
