#include "ckpt/ckpt_manager.hh"

#include <utility>

#include "common/log.hh"

namespace p5 {

CkptManager::Acquired
CkptManager::acquire(const std::string &warm_key, const WarmFn &warm)
{
    std::promise<Shared> promise;
    std::shared_future<Shared> future;
    bool claimed = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = cache_.find(warm_key);
        if (it == cache_.end()) {
            future = promise.get_future().share();
            cache_.emplace(warm_key, future);
            claimed = true;
        } else {
            future = it->second;
        }
    }

    if (!claimed) {
        // A sibling holds the claim; wait for its image and fork.
        Acquired out;
        out.ckpt = future.get();
        memForks_.fetch_add(1);
        return out;
    }

    // First claimant. The persistent area, when attached, stands in for
    // a warm-up that some earlier process already paid for.
    if (store_) {
        auto loaded = std::make_shared<Checkpoint>();
        if (store_->load(warm_key, *loaded)) {
            Acquired out;
            out.ckpt = std::move(loaded);
            promise.set_value(out.ckpt);
            storeForks_.fetch_add(1);
            return out;
        }
    }

    // Warm for real. warm() runs on the caller's own core, which is the
    // point: the creator measures on the very state it serialized.
    // fatal() aborts the process, so an exception path out of warm()
    // does not need to unblock siblings.
    auto created = std::make_shared<Checkpoint>(warm());
    if (created->warmKey != warm_key)
        fatal("checkpoint created under key '%s' but claimed as '%s'",
              created->warmKey.c_str(), warm_key.c_str());
    if (store_)
        store_->put(*created);
    Acquired out;
    out.ckpt = std::move(created);
    promise.set_value(out.ckpt);
    warms_.fetch_add(1);
    out.created = true;
    return out;
}

} // namespace p5
