#include "ckpt/ckpt.hh"

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "ckpt/ckpt_io.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/rng.hh"

namespace p5 {

namespace {

constexpr const char *meta_name = "ckpt_meta.json";
constexpr const char *header_magic = "p5sim-ckpt";

/**
 * mkdir -p: the checkpoint area often lives *inside* a result store
 * that has not been created yet (sweep defaults to "<store>/ckpt" and
 * opens the checkpoint area first), so every missing component is
 * created, not just the leaf.
 */
void
makeDir(const std::string &path)
{
    for (std::size_t i = 1; i <= path.size(); ++i) {
        if (i != path.size() && path[i] != '/')
            continue;
        const std::string prefix = path.substr(0, i);
        if (prefix == "/")
            continue;
        if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST)
            fatal("cannot create checkpoint directory '%s': %s",
                  prefix.c_str(), std::strerror(errno));
    }
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

std::string
readFileBinary(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return "";
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
}

/** Binary-safe atomic publish (temp file + rename). */
void
writeFileAtomicBinary(const std::string &path, const std::string &temp,
                      const std::string &bytes)
{
    {
        std::ofstream os(temp, std::ios::binary);
        if (!os)
            fatal("cannot write checkpoint file '%s'", temp.c_str());
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
        if (!os.flush())
            fatal("short write to checkpoint file '%s'", temp.c_str());
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0)
        fatal("cannot publish checkpoint file '%s': %s", path.c_str(),
              std::strerror(errno));
}

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

std::string
ckptFingerprintHex(const std::string &warm_key)
{
    // Its own chain constant, so checkpoint addresses are independent
    // of both the result-store addresses and the job RNG streams even
    // for keys that happen to share text.
    std::uint64_t h = hashMix(0xc4b7a11ced15f0e3ULL ^ warm_key.size());
    for (char c : warm_key)
        h = hashCombine(h, static_cast<unsigned char>(c));
    return hex16(h);
}

CkptStore::CkptStore(std::string dir, int schema_version)
    : dir_(std::move(dir)), schemaVersion_(schema_version)
{
    if (dir_.empty())
        fatal("checkpoint directory must not be empty");
    while (dir_.size() > 1 && dir_.back() == '/')
        dir_.pop_back();
    makeDir(dir_);

    const std::string meta_path = dir_ + "/" + meta_name;
    const std::string meta_text = readFileBinary(meta_path);
    if (!meta_text.empty()) {
        JsonValue meta;
        std::string error;
        if (!tryParseJson(meta_text, meta, &error, meta_path))
            fatal("corrupt checkpoint metadata: %s", error.c_str());
        const JsonValue *ckpt_v =
            meta.isObject() ? meta.find("ckptVersion") : nullptr;
        const JsonValue *schema_v =
            meta.isObject() ? meta.find("schemaVersion") : nullptr;
        if (!ckpt_v || !ckpt_v->isInt() || !schema_v ||
            !schema_v->isInt())
            fatal("checkpoint metadata '%s' is missing its version "
                  "members", meta_path.c_str());
        if (ckpt_v->asInt() != ckpt_format_version)
            fatal("checkpoint area '%s' uses format v%lld; this binary "
                  "writes v%d — refusing to mix formats",
                  dir_.c_str(),
                  static_cast<long long>(ckpt_v->asInt()),
                  ckpt_format_version);
        if (schema_v->asInt() != schemaVersion_)
            fatal("checkpoint area '%s' was written under config schema "
                  "version %lld; this binary uses version %d — "
                  "refusing to restore from an incompatible area",
                  dir_.c_str(),
                  static_cast<long long>(schema_v->asInt()),
                  schemaVersion_);
    } else {
        std::ostringstream os;
        {
            JsonWriter w(os);
            w.beginObject();
            w.member("ckptVersion", ckpt_format_version);
            w.member("schemaVersion", schemaVersion_);
            w.endObject();
        }
        writeFileAtomicBinary(meta_path,
                              meta_path + ".tmp." +
                                  std::to_string(::getpid()),
                              os.str());
    }
}

std::string
CkptStore::pathFor(const std::string &fp_hex) const
{
    return dir_ + "/" + fp_hex.substr(0, 2) + "/" + fp_hex + "-ckpt-v" +
           std::to_string(ckpt_format_version) + ".bin";
}

void
CkptStore::quarantine(const std::string &path)
{
    std::rename(path.c_str(), (path + ".bad").c_str());
    quarantined_.fetch_add(1);
    warn("quarantined corrupt checkpoint file '%s' (now .bad)",
         path.c_str());
}

bool
CkptStore::load(const std::string &warm_key, Checkpoint &out)
{
    const std::string fp = ckptFingerprintHex(warm_key);
    const std::string path = pathFor(fp);
    const std::string bytes = readFileBinary(path);
    if (bytes.empty()) {
        if (fileExists(path))
            quarantine(path); // zero-byte corpse
        misses_.fetch_add(1);
        return false;
    }

    const std::size_t nl = bytes.find('\n');
    if (nl == std::string::npos) {
        quarantine(path);
        misses_.fetch_add(1);
        return false;
    }
    JsonValue header;
    std::string error;
    if (!tryParseJson(bytes.substr(0, nl), header, &error, path) ||
        !header.isObject()) {
        quarantine(path);
        misses_.fetch_add(1);
        return false;
    }
    const JsonValue *magic = header.find("magic");
    const JsonValue *version = header.find("ckptVersion");
    const JsonValue *schema = header.find("schemaVersion");
    const JsonValue *fp_v = header.find("fingerprint");
    const JsonValue *count = header.find("bytes");
    const JsonValue *checksum = header.find("checksum");
    const JsonValue *key_v = header.find("warmKey");
    const JsonValue *cycles = header.find("warmCycles");
    if (!magic || !magic->isString() ||
        magic->asString() != header_magic || !version ||
        !version->isInt() || version->asInt() != ckpt_format_version ||
        !schema || !schema->isInt() ||
        schema->asInt() != schemaVersion_ || !fp_v ||
        !fp_v->isString() || fp_v->asString() != fp || !count ||
        !count->isInt() || !checksum || !checksum->isString() ||
        !key_v || !key_v->isString() || !cycles || !cycles->isInt()) {
        quarantine(path);
        misses_.fetch_add(1);
        return false;
    }
    // The embedded warm key turns a fingerprint collision (or a
    // misplaced file) into a miss instead of a foreign-state restore.
    if (key_v->asString() != warm_key) {
        quarantine(path);
        misses_.fetch_add(1);
        return false;
    }

    const auto payload = static_cast<std::size_t>(count->asInt());
    if (bytes.size() - nl - 1 != payload) {
        quarantine(path); // truncated or padded payload
        misses_.fetch_add(1);
        return false;
    }
    const auto *data =
        reinterpret_cast<const std::uint8_t *>(bytes.data() + nl + 1);
    if (hex16(CkptWriter::ckptChecksum(data, payload)) !=
        checksum->asString()) {
        quarantine(path);
        misses_.fetch_add(1);
        return false;
    }

    out.warmKey = warm_key;
    out.fingerprint = fp;
    out.warmCycles = static_cast<Cycle>(cycles->asInt());
    out.state.assign(data, data + payload);
    hits_.fetch_add(1);
    return true;
}

void
CkptStore::put(const Checkpoint &ckpt)
{
    const std::string fp = ckpt.fingerprint.empty()
                               ? ckptFingerprintHex(ckpt.warmKey)
                               : ckpt.fingerprint;
    makeDir(dir_ + "/" + fp.substr(0, 2));
    const std::string path = pathFor(fp);

    std::ostringstream os;
    {
        // Compact mode: the header must be exactly one line (the
        // payload starts after the first '\n').
        JsonWriter w(os, -1);
        w.beginObject();
        w.member("magic", header_magic);
        w.member("ckptVersion", ckpt_format_version);
        w.member("schemaVersion", schemaVersion_);
        w.member("fingerprint", fp);
        w.member("warmCycles", static_cast<std::int64_t>(ckpt.warmCycles));
        w.member("bytes", static_cast<std::int64_t>(ckpt.state.size()));
        w.member("checksum",
                 hex16(CkptWriter::ckptChecksum(ckpt.state.data(),
                                                ckpt.state.size())));
        w.member("warmKey", ckpt.warmKey);
        w.endObject();
    }
    os << '\n';
    os.write(reinterpret_cast<const char *>(ckpt.state.data()),
             static_cast<std::streamsize>(ckpt.state.size()));

    const std::string temp = path + ".tmp." +
                             std::to_string(::getpid()) + "." +
                             std::to_string(tempCounter_.fetch_add(1));
    writeFileAtomicBinary(path, temp, os.str());
    writes_.fetch_add(1);
}

} // namespace p5
