/**
 * @file
 * Warm-state sharing across the jobs of one process, plus optional
 * persistence through a CkptStore.
 *
 * The manager implements the checkpoint/fork execution model: jobs that
 * share a *warm key* (the priority- and measurement-free slice of their
 * identity — same programs, same core geometry, same warm-up policy)
 * share one warm-up. The first job to ask for a key claims it and either
 * loads the warm image from the attached store (a *store fork*) or runs
 * the warm-up itself and publishes the serialized state; every later job
 * blocks on the claim and restores the shared image into its own fresh
 * core (an *in-memory fork*). With 36 priority pairs per pair-mix this
 * turns 36 warm-ups into one.
 *
 * Claim semantics mirror the SimRunner's ResultCache: a
 * shared_future per key, first-claimant-computes. Blocking a pool
 * thread on the future cannot deadlock because an entry only exists
 * while (or after) its creator is actively warming on another pool
 * thread.
 */

#ifndef P5SIM_CKPT_CKPT_MANAGER_HH
#define P5SIM_CKPT_CKPT_MANAGER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "ckpt/ckpt.hh"

namespace p5 {

/** In-process checkpoint cache with claim/fork semantics. */
class CkptManager
{
  public:
    CkptManager() = default;
    CkptManager(const CkptManager &) = delete;
    CkptManager &operator=(const CkptManager &) = delete;

    /**
     * Attach a persistent area. Claims consult it before warming and
     * write freshly created checkpoints through to it. Not owned; must
     * outlive the manager.
     */
    void setStore(CkptStore *store) { store_ = store; }

    CkptStore *store() const { return store_; }

    /** Builds (warms + serializes) the checkpoint for a claimed key. */
    using WarmFn = std::function<Checkpoint()>;

    /** Outcome of acquire(): the shared image plus how it was obtained. */
    struct Acquired
    {
        std::shared_ptr<const Checkpoint> ckpt;

        /** This caller ran the warm-up inline (its core is now warm). */
        bool created = false;
    };

    /**
     * Get the checkpoint for @p warm_key, warming at most once per key
     * per area. The first caller claims the key: it loads from the
     * attached store when possible, otherwise runs @p warm inline and
     * publishes (write-through to the store). Later callers block until
     * the claimant finishes and receive the shared image.
     *
     * When Acquired.created is true the caller's own core already holds
     * the warm state (warm ran on it) and must NOT restore; otherwise
     * the caller forks by deserializing Acquired.ckpt into a fresh core.
     */
    Acquired acquire(const std::string &warm_key, const WarmFn &warm);

    /** Warm-ups actually simulated (checkpoint creations). */
    std::uint64_t warms() const { return warms_.load(); }

    /** Jobs satisfied by restoring an in-process sibling's image. */
    std::uint64_t memForks() const { return memForks_.load(); }

    /** Keys satisfied by loading the persistent area. */
    std::uint64_t storeForks() const { return storeForks_.load(); }

    /** Total jobs that skipped their warm-up (all fork flavors). */
    std::uint64_t forks() const { return memForks() + storeForks(); }

  private:
    using Shared = std::shared_ptr<const Checkpoint>;

    std::mutex mutex_;
    std::map<std::string, std::shared_future<Shared>> cache_;
    CkptStore *store_ = nullptr;
    std::atomic<std::uint64_t> warms_{0};
    std::atomic<std::uint64_t> memForks_{0};
    std::atomic<std::uint64_t> storeForks_{0};
};

} // namespace p5

#endif // P5SIM_CKPT_CKPT_MANAGER_HH
