/**
 * @file
 * Checkpoint byte-stream primitives.
 *
 * CkptWriter/CkptReader serialize architectural state into a flat,
 * versioned byte stream with a fixed little-endian wire format, so a
 * checkpoint produced on any host restores identically on any other.
 * Values are written field-wise (never by memcpy of a struct), which
 * keeps padding bytes out of the stream — the stream is a pure function
 * of simulated state, and therefore deterministic across runs. That
 * determinism is what lets the equivalence suite compare checksums and
 * what the p5lint determinism rule audits serialization code for.
 *
 * The reader treats underrun or trailing bytes as fatal: every blob it
 * sees has already passed the file-level length + checksum validation
 * (see ckpt.hh), so a structural mismatch means a version-skew bug, not
 * a corrupt file.
 */

#ifndef P5SIM_CKPT_CKPT_IO_HH
#define P5SIM_CKPT_CKPT_IO_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace p5 {

/** Appends fixed-width little-endian fields to a growing byte buffer. */
class CkptWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        bytes_.push_back(v);
    }

    void b(bool v) { u8(v ? 1 : 0); }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    void
    f64(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void counter(const Counter &c) { u64(c.value()); }

    void
    str(const std::string &s)
    {
        u64(s.size());
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    const std::vector<std::uint8_t> &data() const { return bytes_; }
    std::size_t size() const { return bytes_.size(); }

    /** Stable 64-bit digest of the stream (SplitMix64 chain). */
    std::uint64_t
    checksum() const
    {
        return ckptChecksum(bytes_.data(), bytes_.size());
    }

    /** Digest over an arbitrary byte range (same chain as checksum()). */
    static std::uint64_t
    ckptChecksum(const std::uint8_t *data, std::size_t size)
    {
        std::uint64_t h = hashMix(0x9c5dab1ec4f00d5eULL ^ size);
        std::size_t i = 0;
        for (; i + 8 <= size; i += 8) {
            std::uint64_t word = 0;
            std::memcpy(&word, data + i, 8);
            h = hashCombine(h, word);
        }
        std::uint64_t tail = 0;
        for (std::size_t k = 0; i < size; ++i, ++k)
            tail |= static_cast<std::uint64_t>(data[i]) << (8 * k);
        return hashCombine(h, tail);
    }

  private:
    std::vector<std::uint8_t> bytes_;
};

/** Consumes a CkptWriter stream; fatal() on structural mismatch. */
class CkptReader
{
  public:
    CkptReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    explicit CkptReader(const std::vector<std::uint8_t> &bytes)
        : CkptReader(bytes.data(), bytes.size())
    {}

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    bool b() { return u8() != 0; }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    void counter(Counter &c) { c.restore(u64()); }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    std::size_t remaining() const { return size_ - pos_; }
    bool exhausted() const { return pos_ == size_; }

    /** Assert the whole stream was consumed (end-of-restore check). */
    void
    expectEnd() const
    {
        if (!exhausted())
            fatal("checkpoint blob has %zu trailing bytes "
                  "(serializer/deserializer version skew)",
                  remaining());
    }

  private:
    void
    need(std::uint64_t n) const
    {
        if (n > size_ - pos_)
            fatal("checkpoint blob underrun: want %llu bytes, have %zu "
                  "(serializer/deserializer version skew)",
                  static_cast<unsigned long long>(n), size_ - pos_);
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace p5

#endif // P5SIM_CKPT_CKPT_IO_HH
