/**
 * @file
 * Architectural-state serialization for every checkpointable component.
 *
 * All saveState()/restoreState() bodies live in this one translation
 * unit so the complete set of bytes that enters a checkpoint can be
 * audited in a single place (the p5lint determinism rule points here).
 * Two contracts hold throughout:
 *
 *  1. The stream is a pure function of simulated state. Every field is
 *     written individually in a fixed order through CkptWriter's
 *     little-endian primitives; no struct is ever written via memcpy
 *     (padding bytes are indeterminate) and no unordered container is
 *     ever iterated (there are none in the saved state — heaps are
 *     explicit vectors, maps are std::map).
 *
 *  2. Restore reproduces *physical* layout wherever physical-slot
 *     handles exist. The in-flight window ring is saved slot-by-slot
 *     (vacant slots included) together with its head index, so the slot
 *     hints recorded in ready-queue and completion-heap entries resolve
 *     to the same slots after restore; stats stay bit-identical by
 *     construction rather than by luck. Structures nothing points into
 *     (GCT group rings) are saved logically.
 *
 * Configuration is deliberately NOT in the stream: a checkpoint is only
 * ever restored into a core built with the same params and programs,
 * which the warm-phase fingerprint in the checkpoint key guarantees.
 * Geometry reads double as sanity checks and fatal() on mismatch.
 */

#include "branch/bht.hh"
#include "ckpt/ckpt_io.hh"
#include "common/log.hh"
#include "core/balancer.hh"
#include "core/decode_arbiter.hh"
#include "core/fu_pool.hh"
#include "core/gct.hh"
#include "core/issue_queue.hh"
#include "core/lsu.hh"
#include "core/smt_core.hh"
#include "core/thread_state.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/lmq.hh"
#include "mem/tlb.hh"

namespace p5 {

namespace {

void
expectGeom(const char *what, std::uint64_t saved, std::uint64_t built)
{
    if (saved != built)
        fatal("checkpoint geometry mismatch: %s is %llu in the stream "
              "but %llu in the restoring core (checkpoint key bug?)",
              what, static_cast<unsigned long long>(saved),
              static_cast<unsigned long long>(built));
}

} // namespace

// --- Cache ------------------------------------------------------------

void
Cache::saveState(CkptWriter &w) const
{
    w.u64(static_cast<std::uint64_t>(lines_.size()));
    for (const Line &line : lines_) {
        w.u64(line.tag);
        w.b(line.valid);
        w.u64(line.lastUse);
    }
    w.u64(useClock_);
    w.u64(nextFree_);
    w.counter(hits_);
    w.counter(misses_);
    w.counter(insertions_);
    w.counter(evictions_);
}

void
Cache::restoreState(CkptReader &r)
{
    expectGeom("cache lines", r.u64(), lines_.size());
    for (Line &line : lines_) {
        line.tag = r.u64();
        line.valid = r.b();
        line.lastUse = r.u64();
    }
    useClock_ = r.u64();
    nextFree_ = r.u64();
    r.counter(hits_);
    r.counter(misses_);
    r.counter(insertions_);
    r.counter(evictions_);
}

// --- Tlb --------------------------------------------------------------

void
Tlb::saveState(CkptWriter &w) const
{
    w.u64(static_cast<std::uint64_t>(entries_.size()));
    for (const Entry &e : entries_) {
        w.u64(e.vpn);
        w.b(e.valid);
        w.u64(e.lastUse);
    }
    w.u64(useClock_);
    w.counter(hits_);
    w.counter(misses_);
}

void
Tlb::restoreState(CkptReader &r)
{
    expectGeom("TLB entries", r.u64(), entries_.size());
    for (Entry &e : entries_) {
        e.vpn = r.u64();
        e.valid = r.b();
        e.lastUse = r.u64();
    }
    useClock_ = r.u64();
    r.counter(hits_);
    r.counter(misses_);
}

// --- Bht --------------------------------------------------------------

void
Bht::saveState(CkptWriter &w) const
{
    w.u64(static_cast<std::uint64_t>(counters_.size()));
    for (std::uint8_t c : counters_)
        w.u8(c);
    w.counter(lookups_);
    w.counter(correct_);
    w.counter(mispredicts_);
}

void
Bht::restoreState(CkptReader &r)
{
    expectGeom("BHT counters", r.u64(), counters_.size());
    for (std::uint8_t &c : counters_)
        c = r.u8();
    r.counter(lookups_);
    r.counter(correct_);
    r.counter(mispredicts_);
}

// --- Lmq --------------------------------------------------------------

void
Lmq::saveState(CkptWriter &w) const
{
    // Window order matters: updateLastRelease() targets the newest
    // reservation and recycle() compacts in place, so the vector is
    // reproduced verbatim.
    w.u64(static_cast<std::uint64_t>(windows_.size()));
    for (const Window &win : windows_) {
        w.i32(win.tid);
        w.u64(win.startCycle);
        w.u64(win.releaseCycle);
    }
    w.counter(allocations_);
    w.counter(queuedMisses_);
    w.counter(queuedCycles_);
}

void
Lmq::restoreState(CkptReader &r)
{
    windows_.resize(static_cast<std::size_t>(r.u64()));
    for (Window &win : windows_) {
        win.tid = r.i32();
        win.startCycle = r.u64();
        win.releaseCycle = r.u64();
    }
    r.counter(allocations_);
    r.counter(queuedMisses_);
    r.counter(queuedCycles_);
}

// --- FuPool -----------------------------------------------------------

void
FuPool::saveState(CkptWriter &w) const
{
    for (int fc = 0; fc < static_cast<int>(FuClass::NumFuClasses); ++fc) {
        const std::vector<Cycle> &units = busyUntil_[fc];
        w.u64(static_cast<std::uint64_t>(units.size()));
        for (Cycle c : units)
            w.u64(c);
        w.counter(acquisitions_[fc]);
    }
}

void
FuPool::restoreState(CkptReader &r)
{
    for (int fc = 0; fc < static_cast<int>(FuClass::NumFuClasses); ++fc) {
        std::vector<Cycle> &units = busyUntil_[fc];
        expectGeom("FU units", r.u64(), units.size());
        for (Cycle &c : units)
            c = r.u64();
        r.counter(acquisitions_[fc]);
    }
}

// --- IssueQueue -------------------------------------------------------

void
IssueQueue::saveState(CkptWriter &w) const
{
    // Each queue is an explicit binary heap over a vector; saving the
    // array verbatim preserves the exact heap layout, so post-restore
    // pops break stamp ties (there are none — stamps are unique) and
    // sift elements identically.
    for (const std::vector<ReadyRef> &q : queues_) {
        w.u64(static_cast<std::uint64_t>(q.size()));
        for (const ReadyRef &ref : q) {
            w.u64(ref.stamp);
            w.i32(ref.tid);
            w.u64(ref.seq);
            w.u64(ref.epoch);
            w.u32(ref.slot);
        }
    }
}

void
IssueQueue::restoreState(CkptReader &r)
{
    for (std::vector<ReadyRef> &q : queues_) {
        q.resize(static_cast<std::size_t>(r.u64()));
        for (ReadyRef &ref : q) {
            ref.stamp = r.u64();
            ref.tid = r.i32();
            ref.seq = r.u64();
            ref.epoch = r.u64();
            ref.slot = r.u32();
        }
    }
}

// --- Gct --------------------------------------------------------------

void
Gct::saveState(CkptWriter &w) const
{
    // Nothing holds physical-slot handles into the group rings, so
    // logical (oldest-first) serialization suffices.
    for (const RingDeque<GctGroup> &ring : groups_) {
        w.u64(static_cast<std::uint64_t>(ring.size()));
        for (const GctGroup &g : ring) {
            w.u64(g.startSeq);
            w.i32(g.count);
        }
    }
    w.counter(allocated_);
    w.counter(retired_);
}

void
Gct::restoreState(CkptReader &r)
{
    for (RingDeque<GctGroup> &ring : groups_) {
        ring.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            GctGroup &g = ring.pushSlot();
            g.startSeq = r.u64();
            g.count = r.i32();
        }
    }
    r.counter(allocated_);
    r.counter(retired_);
}

// --- Lsu --------------------------------------------------------------

void
Lsu::saveState(CkptWriter &w) const
{
    w.u64(walkerNextFree_);
    for (Cycle c : lastWalkRequest_)
        w.u64(c);
    for (Cycle c : walkUntil_)
        w.u64(c);
    w.i32(walkerTid_);
    w.u64(walkerServiceUntil_);
    w.u64(portNextFree_);
    for (const Counter &c : loads_)
        w.counter(c);
    for (const Counter &c : stores_)
        w.counter(c);
    for (const Counter &c : walks_)
        w.counter(c);
    for (const Counter &c : levelCounts_)
        w.counter(c);
}

void
Lsu::restoreState(CkptReader &r)
{
    walkerNextFree_ = r.u64();
    for (Cycle &c : lastWalkRequest_)
        c = r.u64();
    for (Cycle &c : walkUntil_)
        c = r.u64();
    walkerTid_ = r.i32();
    walkerServiceUntil_ = r.u64();
    portNextFree_ = r.u64();
    for (Counter &c : loads_)
        r.counter(c);
    for (Counter &c : stores_)
        r.counter(c);
    for (Counter &c : walks_)
        r.counter(c);
    for (Counter &c : levelCounts_)
        r.counter(c);
}

// --- Balancer ---------------------------------------------------------

void
Balancer::saveState(CkptWriter &w) const
{
    for (const Counter &c : gctBlocks_)
        w.counter(c);
    for (const Counter &c : lmqBlocks_)
        w.counter(c);
    for (const Counter &c : tlbBlocks_)
        w.counter(c);
    for (const Counter &c : flushes_)
        w.counter(c);
}

void
Balancer::restoreState(CkptReader &r)
{
    for (Counter &c : gctBlocks_)
        r.counter(c);
    for (Counter &c : lmqBlocks_)
        r.counter(c);
    for (Counter &c : tlbBlocks_)
        r.counter(c);
    for (Counter &c : flushes_)
        r.counter(c);
}

// --- DecodeArbiter ----------------------------------------------------

void
DecodeArbiter::saveState(CkptWriter &w) const
{
    for (const Counter &c : granted_)
        w.counter(c);
    for (const Counter &c : forfeited_)
        w.counter(c);
    for (const Counter &c : reassigned_)
        w.counter(c);
}

void
DecodeArbiter::restoreState(CkptReader &r)
{
    for (Counter &c : granted_)
        r.counter(c);
    for (Counter &c : forfeited_)
        r.counter(c);
    for (Counter &c : reassigned_)
        r.counter(c);
}

// --- MemBackside / CacheHierarchy -------------------------------------

void
MemBackside::saveState(CkptWriter &w) const
{
    l2_.saveState(w);
    l3_.saveState(w);
    w.u64(dramNextFree_);
}

void
MemBackside::restoreState(CkptReader &r)
{
    l2_.restoreState(r);
    l3_.restoreState(r);
    dramNextFree_ = r.u64();
}

void
CacheHierarchy::saveState(CkptWriter &w) const
{
    if (backside_ != ownedBackside_.get())
        fatal("checkpointing a shared-backside hierarchy is not "
              "supported (the snapshot would tear chip-wide state)");
    l1d_.saveState(w);
    for (const auto &tlb : tlbs_)
        tlb->saveState(w);
    backside_->saveState(w);
    for (const Counter &c : tlbMisses_)
        w.counter(c);
    for (const Counter &c : l1Misses_)
        w.counter(c);
    for (const Counter &c : beyondL2_)
        w.counter(c);
}

void
CacheHierarchy::restoreState(CkptReader &r)
{
    if (backside_ != ownedBackside_.get())
        fatal("restoring into a shared-backside hierarchy is not "
              "supported");
    l1d_.restoreState(r);
    for (const auto &tlb : tlbs_)
        tlb->restoreState(r);
    backside_->restoreState(r);
    for (Counter &c : tlbMisses_)
        r.counter(c);
    for (Counter &c : l1Misses_)
        r.counter(c);
    for (Counter &c : beyondL2_)
        r.counter(c);
}

// --- ThreadState ------------------------------------------------------

namespace {

void
saveDynInstr(CkptWriter &w, const DynInstr &di)
{
    w.i32(di.tid);
    w.u64(di.seq);
    w.u8(static_cast<std::uint8_t>(di.op));
    w.i32(di.dst);
    w.i32(di.src0);
    w.i32(di.src1);
    w.u64(di.addr);
    w.b(di.branchTaken);
    w.b(di.branchPredictedTaken);
    w.i32(di.prioNopReg);
    w.u64(di.pc);
    w.u8(static_cast<std::uint8_t>(di.phase));
    w.u64(di.completeCycle);
}

void
restoreDynInstr(CkptReader &r, DynInstr &di)
{
    di.tid = r.i32();
    di.seq = r.u64();
    di.op = static_cast<OpClass>(r.u8());
    di.dst = static_cast<RegIndex>(r.i32());
    di.src0 = static_cast<RegIndex>(r.i32());
    di.src1 = static_cast<RegIndex>(r.i32());
    di.addr = r.u64();
    di.branchTaken = r.b();
    di.branchPredictedTaken = r.b();
    di.prioNopReg = r.i32();
    di.pc = r.u64();
    di.phase = static_cast<InstrPhase>(r.u8());
    di.completeCycle = r.u64();
}

void
saveInFlight(CkptWriter &w, const InFlight &e)
{
    saveDynInstr(w, e.di);
    w.u8(static_cast<std::uint8_t>(e.phase));
    w.i32(e.pendingSrcs);
    w.u64(e.epoch);
    w.u64(e.stamp);
    w.b(e.inReadyQueue);
    w.u64(static_cast<std::uint64_t>(e.dependents.size()));
    for (const InFlightRef &dep : e.dependents) {
        w.u32(dep.slot);
        w.u64(dep.seq);
        w.u64(dep.epoch);
    }
}

void
restoreInFlight(CkptReader &r, InFlight &e)
{
    restoreDynInstr(r, e.di);
    e.phase = static_cast<InstrPhase>(r.u8());
    e.pendingSrcs = r.i32();
    e.epoch = r.u64();
    e.stamp = r.u64();
    e.inReadyQueue = r.b();
    e.dependents.clear();
    const std::uint64_t n = r.u64();
    e.dependents.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        InFlightRef dep;
        dep.slot = r.u32();
        dep.seq = r.u64();
        dep.epoch = r.u64();
        e.dependents.push_back(dep);
    }
}

} // namespace

void
ThreadState::saveState(CkptWriter &w) const
{
    w.b(attached());
    if (!attached())
        return;

    // The window ring, physically: every slot verbatim (vacant ones
    // carry deterministic leftovers from this run and are overwritten
    // field-wise before any reuse), so the slot hints held by the
    // ready queues and the completion heap stay valid after restore.
    w.u64(static_cast<std::uint64_t>(window.capacity()));
    w.u64(static_cast<std::uint64_t>(window.headIndex()));
    w.u64(static_cast<std::uint64_t>(window.size()));
    for (std::size_t phys = 0; phys < window.capacity(); ++phys)
        saveInFlight(w, window.slotAt(phys));

    for (const RenameEntry &re : renameMap) {
        w.b(re.valid);
        w.u64(re.seq);
        w.u64(re.epoch);
    }

    w.u64(epoch);
    w.u64(decodeBlockedUntil);
    w.u8(static_cast<std::uint8_t>(privilege));
    w.u64(committed);
    w.u64(executionsCompleted);
    w.u64(lastExecutionCycle);
    w.u64(stream_->nextSeq());

    w.counter(committedCtr);
    w.counter(squashedCtr);
    w.counter(mispredictsCtr);
    w.counter(prioNopsApplied);
    w.counter(prioNopsIgnored);
}

void
ThreadState::restoreState(CkptReader &r)
{
    const bool was_attached = r.b();
    if (was_attached != attached())
        fatal("checkpoint thread-attachment mismatch on thread %d "
              "(checkpoint key bug?)", tid_);
    if (!was_attached)
        return;

    const auto cap = static_cast<std::size_t>(r.u64());
    window.reserve(cap);
    expectGeom("window capacity", cap, window.capacity());
    const auto head = static_cast<std::size_t>(r.u64());
    const auto size = static_cast<std::size_t>(r.u64());
    for (std::size_t phys = 0; phys < cap; ++phys)
        restoreInFlight(r, window.slotAt(phys));
    window.setShape(head, size);

    for (RenameEntry &re : renameMap) {
        re.valid = r.b();
        re.seq = r.u64();
        re.epoch = r.u64();
    }

    epoch = r.u64();
    decodeBlockedUntil = r.u64();
    privilege = static_cast<PrivilegeLevel>(r.u8());
    committed = r.u64();
    executionsCompleted = r.u64();
    lastExecutionCycle = r.u64();
    stream_->seekTo(r.u64());

    r.counter(committedCtr);
    r.counter(squashedCtr);
    r.counter(mispredictsCtr);
    r.counter(prioNopsApplied);
    r.counter(prioNopsIgnored);
}

// --- SmtCore ----------------------------------------------------------

void
SmtCore::saveState(CkptWriter &w) const
{
    w.u64(cycle_);
    w.u64(dispatchStamp_);
    w.u64(idleSkipped_);
    w.u64(ffProbes_);
    w.b(tickProgress_);
    w.u32(idleStreak_);

    for (const auto &ts : threads_)
        ts->saveState(w);

    hierarchy_.saveState(w);
    lmq_.saveState(w);
    lsu_.saveState(w);
    bht_.saveState(w);
    gct_.saveState(w);
    fuPool_.saveState(w);
    readyQ_.saveState(w);
    arbiter_.saveState(w);
    balancer_.saveState(w);

    // The completion heap array verbatim (heap layout preserved).
    w.u64(static_cast<std::uint64_t>(completions_.size()));
    for (const Completion &c : completions_) {
        w.u64(c.cycle);
        w.i32(c.tid);
        w.u64(c.seq);
        w.u64(c.epoch);
        w.u32(c.slot);
    }

    for (const Counter &c : decoded_)
        w.counter(c);
    for (const Counter &c : stallBalancer_)
        w.counter(c);
    for (const Counter &c : stallRedirect_)
        w.counter(c);
    for (const Counter &c : stallGct_)
        w.counter(c);
    for (const Counter &c : flushedInstrs_)
        w.counter(c);
}

void
SmtCore::restoreState(CkptReader &r)
{
    cycle_ = r.u64();
    dispatchStamp_ = r.u64();
    idleSkipped_ = r.u64();
    ffProbes_ = r.u64();
    tickProgress_ = r.b();
    idleStreak_ = r.u32();

    for (const auto &ts : threads_)
        ts->restoreState(r);

    hierarchy_.restoreState(r);
    lmq_.restoreState(r);
    lsu_.restoreState(r);
    bht_.restoreState(r);
    gct_.restoreState(r);
    fuPool_.restoreState(r);
    readyQ_.restoreState(r);
    arbiter_.restoreState(r);
    balancer_.restoreState(r);

    completions_.resize(static_cast<std::size_t>(r.u64()));
    for (Completion &c : completions_) {
        c.cycle = r.u64();
        c.tid = r.i32();
        c.seq = r.u64();
        c.epoch = r.u64();
        c.slot = r.u32();
    }

    for (Counter &c : decoded_)
        r.counter(c);
    for (Counter &c : stallBalancer_)
        r.counter(c);
    for (Counter &c : stallRedirect_)
        r.counter(c);
    for (Counter &c : stallGct_)
        r.counter(c);
    for (Counter &c : flushedInstrs_)
        r.counter(c);
}

} // namespace p5
