/**
 * @file
 * Renderers that lay experiment data out in the paper's table/figure
 * format (plus CSV for plotting).
 */

#ifndef P5SIM_EXP_REPORT_HH
#define P5SIM_EXP_REPORT_HH

#include <ostream>
#include <vector>

#include "common/json.hh"
#include "common/table.hh"
#include "exp/experiments.hh"

namespace p5 {

/** Paper Table 1: priority levels, privilege, or-nop encodings. */
Table renderTable1();

/** Paper Table 2: the micro-benchmark loop bodies. */
Table renderTable2();

/** Paper Table 3: ST IPC + SMT(4,4) matrix (pt and tt columns). */
Table renderTable3(const Table3Data &data);

/** Figures 2/3: one table per PThread, series = SThreads. */
std::vector<Table> renderPrioCurves(const PrioCurveData &data,
                                    const char *caption_prefix);

/** Figure 4: throughput w.r.t. (4,4), one table per PThread. */
std::vector<Table> renderFig4(const ThroughputData &data);

/** Figure 5: case-study IPC series. */
Table renderFig5(const CaseStudyData &data);

/** Table 4: FFT/LU pipeline timings (cycles and normalized). */
Table renderTable4(const Table4Data &data);

/** Figure 6 panels (a)-(d). */
std::vector<Table> renderFig6(const TransparencyData &data);

/** Allocation-policy comparison (`p5sim alloc`). */
Table renderAllocStudy(const AllocStudyData &data);

// --- machine-readable (JSON) reports -----------------------------------
//
// Each overload writes one JSON value (an object tagged with a "kind"
// discriminator) at the writer's current position, so callers can embed
// experiment data inside a larger report envelope — the bench binaries'
// --json=FILE output wraps these with run metadata (jobs, cache stats).

void writeJson(JsonWriter &w, const Table &table);
void writeJson(JsonWriter &w, const Table3Data &data);
void writeJson(JsonWriter &w, const PrioCurveData &data);
void writeJson(JsonWriter &w, const ThroughputData &data);
void writeJson(JsonWriter &w, const CaseStudyData &data);
void writeJson(JsonWriter &w, const Table4Data &data);
void writeJson(JsonWriter &w, const TransparencyData &data);
void writeJson(JsonWriter &w, const AllocStudyData &data);

/** Write @p data to @p os as a complete JSON document. */
template <typename Data>
void
writeJson(std::ostream &os, const Data &data)
{
    JsonWriter w(os);
    writeJson(w, data);
}

} // namespace p5

#endif // P5SIM_EXP_REPORT_HH
