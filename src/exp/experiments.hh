/**
 * @file
 * Experiment harness: one producer per table/figure of the paper's
 * evaluation (Sec. 5). Each producer returns plain data; exp/report.hh
 * renders it in the paper's row/series layout.
 */

#ifndef P5SIM_EXP_EXPERIMENTS_HH
#define P5SIM_EXP_EXPERIMENTS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotate.hh"
#include "core/params.hh"
#include "fame/fame.hh"
#include "sched/sched_params.hh"
#include "ubench/ubench.hh"
#include "workloads/pipeline_app.hh"
#include "workloads/spec_proxy.hh"

namespace p5 {

class CkptManager;
class ResultCache;

/** Shared experiment configuration. */
struct P5_CONFIG_STRUCT ExpConfig
{
    CoreParams core;
    FameParams fame;

    /** Cores per chip for chip-level studies (chip.num_cores). */
    int numCores = 2;

    /** Scheduler configuration for allocation studies (sched.*). */
    SchedParams sched;

    /** Work multiplier for micro-benchmark executions. */
    double ubenchScale = 1.0;

    /** Micro-benchmarks to sweep (defaults to the paper's six). */
    std::vector<UbenchId> benchmarks = presentedUbench();

    /**
     * Path to a recorded trace replayed as the primary thread's
     * workload ("" keeps the synthetic generator). The path itself is
     * a location, not an identity — the companion fingerprint below is
     * what enters the config identity.
     */
    std::string workloadTrace;

    /**
     * Content fingerprint of workloadTrace ("" when unset). Derived by
     * the config layer whenever workload.trace is assigned; identity —
     * folded into the config fingerprint so a trace-driven run can
     * never alias a synthetic one in the result or checkpoint stores.
     */
    std::string workloadTraceFp;

    /** Like workloadTrace, for the secondary thread. */
    std::string workloadTraceSecondary;

    /** Content fingerprint of workloadTraceSecondary ("" when unset). */
    std::string workloadTraceSecondaryFp;

    /**
     * Simulation worker threads per producer batch; 0 selects the
     * hardware concurrency. Results are bit-identical for any value.
     */
    unsigned jobs = 0;

    /**
     * Result cache the producers run through; nullptr selects the
     * process-wide ResultCache (so e.g. the (4,4) baselines shared by
     * Table 3 and Figs. 2-4 simulate once per process). Tests inject a
     * private cache to force re-execution.
     */
    P5_ALLOW(config_completeness) ResultCache *cache = nullptr;

    /**
     * Checkpoint manager the producers' runners warm FAME jobs through;
     * nullptr runs every warm-up inline (the pre-checkpoint behaviour,
     * bit-identical by construction). The driver owns one per
     * invocation and optionally backs it with a persistent CkptStore.
     */
    P5_ALLOW(config_completeness) CkptManager *checkpoints = nullptr;

    /**
     * Master seed folded into the config fingerprint; per-job RNG
     * streams derive from the job key (which embeds the fingerprint via
     * configTag), so changing the seed re-keys every randomized draw a
     * job ever grows without touching any other configuration.
     */
    std::uint64_t seed = 0;

    /**
     * Config-tree fingerprint of the run this config was materialized
     * from ("" when the config was built in code rather than through a
     * ConfigTree). Producers fold it into every enumerated SimJob key;
     * see SimJob::configTag.
     */
    P5_ALLOW(config_completeness) std::string configTag;

    /**
     * Warm-phase fingerprint of the run this config was materialized
     * from ("" for code-built configs). Producers fold it into every
     * enumerated FAME job's warm key; see SimJob::warmTag.
     */
    P5_ALLOW(config_completeness) std::string warmTag;

    /** Reduced-accuracy configuration for smoke tests. */
    static ExpConfig fast();
};

/**
 * Map a priority difference to the (PrioP, PrioS) pair used in the
 * sweeps: +1 -> (5,4), +2 -> (6,4), +3 -> (6,3), +4 -> (6,2),
 * +5 -> (6,1); negative differences mirror. Difference 0 is (4,4).
 * Stays within the supervisor range 1..6 like the paper's kernel patch.
 */
std::pair<int, int> prioPairForDiff(int diff);

// --- Table 3 ----------------------------------------------------------

/** ST IPC plus the pairwise SMT(4,4) IPC matrix. */
struct Table3Data
{
    std::vector<UbenchId> benchmarks;

    /** Single-thread IPC per benchmark. */
    std::vector<double> stIpc;

    /** pt[i][j]: IPC of benchmark i when co-run with j at (4,4). */
    std::vector<std::vector<double>> pt;

    /** tt[i][j]: total IPC of the (i, j) pair at (4,4). */
    std::vector<std::vector<double>> tt;
};

Table3Data runTable3(const ExpConfig &config);

// --- Figures 2 and 3 ---------------------------------------------------

/**
 * Relative performance of the PThread as its priority moves away from
 * the SThread's (Fig. 2: positive, Fig. 3: negative).
 */
struct PrioCurveData
{
    std::vector<UbenchId> benchmarks;

    /** Priority differences, e.g. {+1..+5} or {-1..-5}. */
    std::vector<int> diffs;

    /**
     * rel[p][s][d]: PThread p's performance with SThread s at diff
     * diffs[d], relative to the (4,4) baseline (execution-time ratio
     * baseline/current; >1 is speedup, <1 slowdown).
     */
    std::vector<std::vector<std::vector<double>>> rel;
};

PrioCurveData runFig2(const ExpConfig &config);
PrioCurveData runFig3(const ExpConfig &config);

// --- Figure 4 ----------------------------------------------------------

/** Total IPC across priority differences, relative to (4,4). */
struct ThroughputData
{
    std::vector<UbenchId> benchmarks;
    std::vector<int> diffs; ///< -4..+4

    /** ratio[p][s][d]: total IPC at diffs[d] / total IPC at (4,4). */
    std::vector<std::vector<std::vector<double>>> ratio;

    /** stIpc[p]: single-thread IPC (the figure's legend). */
    std::vector<double> stIpc;
};

ThroughputData runFig4(const ExpConfig &config);

// --- Figure 5 ----------------------------------------------------------

/** Case-study IPCs as the high-IPC thread's priority increases. */
struct CaseStudyData
{
    SpecProxyId primary;
    SpecProxyId secondary;
    std::vector<int> diffs; ///< 0..+5

    std::vector<double> ipcPrimary;
    std::vector<double> ipcSecondary;
    std::vector<double> ipcTotal;
};

CaseStudyData runFig5(SpecProxyId primary, SpecProxyId secondary,
                      const ExpConfig &config);

// --- Table 4 -----------------------------------------------------------

/** FFT/LU pipeline timings per priority configuration. */
struct Table4Row
{
    bool singleThread = false;
    int prioFft = default_priority;
    int prioLu = default_priority;
    double fftCycles = 0.0;
    double luCycles = 0.0;
    double iterationCycles = 0.0;
};

struct Table4Data
{
    std::vector<Table4Row> rows;
};

Table4Data runTable4(const ExpConfig &config);

// --- Figure 6 ----------------------------------------------------------

/** Transparent-execution study. */
struct TransparencyData
{
    /** Foreground benchmarks of panels (a)/(b). */
    std::vector<UbenchId> foregrounds;

    /** Background benchmarks (legend of panels (a)/(b)). */
    std::vector<UbenchId> backgrounds;

    /**
     * relExec[fgPrioIdx][f][b]: foreground f's execution time with
     * background b at priority 1, relative to f's ST execution time
     * (1.0 = fully transparent). fgPrioIdx 0 -> priority 6, 1 -> 5.
     */
    std::array<std::vector<std::vector<double>>, 2> relExec;

    /** Panel (c): worst-case background (ldint_mem) as the foreground
     *  priority drops 6,5,4,3,2 (background stays at 1). */
    std::vector<UbenchId> panelCForegrounds;
    std::vector<int> panelCPriorities;
    std::vector<std::vector<double>> panelCRelExec; ///< [prio][fg]

    /** Panel (d): average background IPC per (fgPrio, bg). */
    std::vector<std::vector<double>> bgIpc; ///< [prio][bg]
};

TransparencyData runFig6(const ExpConfig &config);

// --- Allocation studies (src/sched) ------------------------------------

/** One allocation policy's outcome on one thread mix. */
struct AllocPolicyOutcome
{
    AllocPolicy policy = AllocPolicy::Pinned;

    /** Chip-wide committed IPC over the study. */
    double aggregateIpc = 0.0;

    std::uint64_t migrations = 0;
    std::uint64_t quanta = 0;

    /** ChipConservation violations (0 on a healthy run). */
    std::uint64_t checkViolations = 0;

    /** Per-runnable-thread IPC over its scheduled cycles. */
    std::vector<double> threadIpc;

    /** rngSeed of the job (provenance for offline replay). */
    std::uint64_t rngSeed = 0;
};

/** Policy comparison on a fixed mix (the `p5sim alloc` experiment). */
struct AllocStudyData
{
    /** Benchmark name per runnable thread, workload order. */
    std::vector<std::string> mixNames;

    int numCores = 2;
    Cycle cycles = 0;

    /** One outcome per requested policy, request order. */
    std::vector<AllocPolicyOutcome> outcomes;
};

/**
 * Run the mix under each policy (config.sched supplies quantum and
 * history depth; its policy field is overridden per outcome) on a
 * config.numCores-core chip for @p cycles chip cycles.
 */
AllocStudyData runAllocStudy(const std::vector<UbenchId> &mix,
                             const std::vector<AllocPolicy> &policies,
                             Cycle cycles, const ExpConfig &config);

} // namespace p5

#endif // P5SIM_EXP_EXPERIMENTS_HH
